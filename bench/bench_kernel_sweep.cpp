// E8 — beyond DAXPY: offload behaviour and per-kernel runtime models for the
// whole kernel library (generality of the paper's methodology).
//
// For each kernel we sweep the cluster count on the extended design, fit the
// t0 + a*N + b*N/M model from simulated samples and report its MAPE — showing
// the modeling approach of Eq. (1) carries over to other kernels. Kernels
// with different data/compute shapes (reductions with host epilogues, GEMV
// with replicated inputs) show different constants and fit quality.
#include "bench_common.h"

#include "model/fitter.h"
#include "model/mape.h"

namespace {

using namespace mco;
using namespace mco::bench;

sim::Cycles kernel_cycles(const char* kernel, std::uint64_t n, unsigned m) {
  soc::Soc soc(soc::SocConfig::extended(32));
  return soc::run_verified(soc, kernel, n, m, kSeed, 1e-5).total();
}

void print_tables() {
  banner("E8: kernel sweep on the extended design — runtimes and fitted models",
         "generalization of Eq. (1), Colagrande & Benini, DATE 2024");

  const std::vector<const char*> kernels{"daxpy", "saxpy",  "axpby",  "scale", "vecadd",
                                         "vecmul", "relu",  "fill",   "memcpy", "dot",   "vecsum",
                                         "gemv",  "gemm"};
  const std::vector<unsigned> ms{1, 2, 4, 8, 16, 32};

  std::printf("runtime [cycles] at N=1024 (N=96 rows for gemv):\n\n");
  std::vector<std::string> header{"kernel"};
  for (const unsigned m : ms) header.push_back("M=" + fmt_u64(m));
  util::TablePrinter table(header);
  for (const char* k : kernels) {
    const std::string ks(k);
    const std::uint64_t n = ks == "gemv" ? 96 : ks == "gemm" ? 64 : 1024;
    std::vector<std::string> row{k};
    for (const unsigned m : ms) row.push_back(fmt_u64(kernel_cycles(k, n, m)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::printf("\nfitted t0 + a*N + b*N/M models (extended design):\n\n");
  util::TablePrinter fits({"kernel", "t0", "a", "b", "R^2", "MAPE[%]"});
  for (const char* k : kernels) {
    const std::string ks2(k);
    const bool is_gemv = ks2 == "gemv" || ks2 == "gemm";
    std::vector<model::Sample> samples;
    for (const std::uint64_t n :
         is_gemv ? std::vector<std::uint64_t>{32, 64, 96, 128}
                 : std::vector<std::uint64_t>{256, 512, 1024, 2048}) {
      for (const unsigned m : ms) {
        samples.push_back(model::Sample{m, n, static_cast<double>(kernel_cycles(k, n, m))});
      }
    }
    const auto fit = model::fit_runtime_model(samples);
    fits.add_row({k, fmt_fix(fit.model.t0, 1), fmt_fix(fit.model.a, 4),
                  fmt_fix(fit.model.b, 4), fmt_fix(fit.r_squared, 5),
                  fmt_fix(model::mape(fit.model, samples), 3)});
  }
  fits.print(std::cout);
  std::printf("\nnote: b reflects per-item compute (daxpy ~2.6/8); a reflects the shared-\n"
              "bandwidth data volume per item (daxpy 3 doubles -> 0.25; memcpy 2 -> ~0.167;\n"
              "saxpy half-width -> ~0.125). gemv costs scale with the row length instead.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_tables();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "dot", 1024, 32);
  for (const char* k : {"dot", "gemv", "memcpy"}) {
    register_offload_benchmark(std::string("kernel_sweep/") + k,
                               mco::soc::SocConfig::extended(32), k,
                               std::string(k) == "gemv" ? 96 : 1024, 32);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
