// E8 — beyond DAXPY: offload behaviour and per-kernel runtime models for the
// whole kernel library (generality of the paper's methodology).
//
// For each kernel we sweep the cluster count on the extended design, fit the
// t0 + a*N + b*N/M model from simulated samples and report its MAPE — showing
// the modeling approach of Eq. (1) carries over to other kernels. Kernels
// with different data/compute shapes (reductions with host epilogues, GEMV
// with replicated inputs) show different constants and fit quality.
#include "bench_common.h"

#include <set>
#include <tuple>

#include "model/fitter.h"
#include "model/mape.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<const char*> kKernels{"daxpy", "saxpy",  "axpby",  "scale", "vecadd",
                                        "vecmul", "relu",  "fill",   "memcpy", "dot",   "vecsum",
                                        "gemv",  "gemm"};
const std::vector<unsigned> kMs{1, 2, 4, 8, 16, 32};

std::vector<std::uint64_t> fit_ns(const std::string& kernel) {
  const bool is_matrix = kernel == "gemv" || kernel == "gemm";
  return is_matrix ? std::vector<std::uint64_t>{32, 64, 96, 128}
                   : std::vector<std::uint64_t>{256, 512, 1024, 2048};
}

std::uint64_t table_n(const std::string& kernel) {
  return kernel == "gemv" ? 96 : kernel == "gemm" ? 64 : 1024;
}

void print_tables(exp::SweepRunner& runner) {
  banner("E8: kernel sweep on the extended design — runtimes and fitted models",
         "generalization of Eq. (1), Colagrande & Benini, DATE 2024");

  // One deduplicated sweep feeds both the runtime table and the model fits
  // (the table's (kernel, N) points are a subset of the fit grids).
  std::vector<exp::RunPoint> points_to_run;
  std::set<std::tuple<std::string, std::uint64_t, unsigned>> seen;
  const auto need = [&](const char* k, std::uint64_t n, unsigned m) {
    if (seen.insert({k, n, m}).second) {
      points_to_run.push_back(
          point("extended", soc::SocConfig::extended(32), k, n, m, 1e-5));
    }
  };
  for (const char* k : kKernels) {
    for (const unsigned m : kMs) need(k, table_n(k), m);
    for (const std::uint64_t n : fit_ns(k)) {
      for (const unsigned m : kMs) need(k, n, m);
    }
  }
  const exp::ResultSet rs = runner.run("kernel_sweep", points_to_run);

  std::printf("runtime [cycles] at N=1024 (N=96 rows for gemv):\n\n");
  std::vector<std::string> header{"kernel"};
  for (const unsigned m : kMs) header.push_back("M=" + fmt_u64(m));
  util::TablePrinter table(header);
  for (const char* k : kKernels) {
    std::vector<std::string> row{k};
    for (const unsigned m : kMs) row.push_back(fmt_u64(rs.cycles("extended", k, table_n(k), m)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::printf("\nfitted t0 + a*N + b*N/M models (extended design):\n\n");
  util::TablePrinter fits({"kernel", "t0", "a", "b", "R^2", "MAPE[%]"});
  for (const char* k : kKernels) {
    std::vector<model::Sample> samples;
    for (const std::uint64_t n : fit_ns(k)) {
      for (const unsigned m : kMs) {
        samples.push_back(
            model::Sample{m, n, static_cast<double>(rs.cycles("extended", k, n, m))});
      }
    }
    const auto fit = model::fit_runtime_model(samples);
    fits.add_row({k, fmt_fix(fit.model.t0, 1), fmt_fix(fit.model.a, 4),
                  fmt_fix(fit.model.b, 4), fmt_fix(fit.r_squared, 5),
                  fmt_fix(model::mape(fit.model, samples), 3)});
  }
  fits.print(std::cout);
  std::printf("\nnote: b reflects per-item compute (daxpy ~2.6/8); a reflects the shared-\n"
              "bandwidth data volume per item (daxpy 3 doubles -> 0.25; memcpy 2 -> ~0.167;\n"
              "saxpy half-width -> ~0.125). gemv costs scale with the row length instead.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_tables(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "dot", 1024, 32);
  for (const char* k : {"dot", "gemv", "memcpy"}) {
    register_offload_benchmark(std::string("kernel_sweep/") + k,
                               mco::soc::SocConfig::extended(32), k,
                               std::string(k) == "gemv" ? 96 : 1024, 32);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
