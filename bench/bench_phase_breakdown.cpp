// E7 — where do the overhead cycles go? Host-side phase breakdown of the
// offload (marshal / sync setup / dispatch / wait / epilogue) for both
// designs, plus the cluster-side timeline of the last cluster at M = 32.
//
// This quantifies the paper's SII narrative: the 367-cycle constant of
// Eq. (1) decomposes into dispatch, wakeup, team start, data movement
// bring-up and completion signalling.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

void print_tables() {
  banner("E7: offload phase breakdown (DAXPY N=1024)",
         "SII implementation narrative, Colagrande & Benini, DATE 2024");

  for (const bool extended : {false, true}) {
    std::printf("%s design:\n\n", extended ? "extended" : "baseline");
    util::TablePrinter table({"M", "marshal", "sync", "dispatch", "wait", "epilogue", "total"});
    for (const unsigned m : {1u, 8u, 32u}) {
      const soc::SocConfig cfg =
          extended ? soc::SocConfig::extended(32) : soc::SocConfig::baseline(32);
      soc::Soc soc(cfg);
      const auto r = soc::run_verified(soc, "daxpy", 1024, m, kSeed);
      const auto p = r.phases();
      table.add_row({fmt_u64(m), fmt_u64(p.marshal), fmt_u64(p.sync_setup),
                     fmt_u64(p.dispatch), fmt_u64(p.wait), fmt_u64(p.epilogue),
                     fmt_u64(r.total())});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("cluster-side timeline, cluster 31 of 32 (extended, N=1024),\n"
              "cycles relative to the offload call:\n\n");
  soc::Soc soc(soc::SocConfig::extended(32));
  const auto r = soc::run_verified(soc, "daxpy", 1024, 32, kSeed);
  const auto& t = *soc.cluster(31).last_timing();
  util::TablePrinter tl({"event", "cycle"});
  const sim::Cycle t0 = r.ts.call;
  tl.add_row({"doorbell (dispatch arrived)", fmt_u64(t.doorbell - t0)});
  tl.add_row({"team barrier arrival", fmt_u64(t.team_arrive - t0)});
  tl.add_row({"team released, DMA-in starts", fmt_u64(t.job_start - t0)});
  tl.add_row({"DMA-in done, compute starts", fmt_u64(t.dma_in_done - t0)});
  tl.add_row({"compute done (cluster barrier)", fmt_u64(t.compute_done - t0)});
  tl.add_row({"DMA-out done", fmt_u64(t.dma_out_done - t0)});
  tl.add_row({"completion credit sent", fmt_u64(t.signal_sent - t0)});
  tl.add_row({"host runtime returned", fmt_u64(r.ts.ret - t0)});
  tl.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_tables();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  register_offload_benchmark("phase_breakdown/extended/M=32",
                             mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
