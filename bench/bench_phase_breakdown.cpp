// E7 — where do the overhead cycles go? Host-side phase breakdown of the
// offload (marshal / sync setup / dispatch / wait / epilogue) for both
// designs, plus the cluster-side timeline of the last cluster at M = 32.
//
// This quantifies the paper's SII narrative: the 367-cycle constant of
// Eq. (1) decomposes into dispatch, wakeup, team start, data movement
// bring-up and completion signalling.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<unsigned> kMs{1, 8, 32};

exp::ExperimentSpec make_spec() {
  exp::ExperimentSpec spec;
  spec.name = "phase_breakdown";
  spec.configs = {{"baseline", soc::SocConfig::baseline(32)},
                  {"extended", soc::SocConfig::extended(32)}};
  spec.ms = kMs;
  return spec;
}

void print_tables(exp::SweepRunner& runner) {
  banner("E7: offload phase breakdown (DAXPY N=1024)",
         "SII implementation narrative, Colagrande & Benini, DATE 2024");

  const exp::ResultSet rs = runner.run(make_spec());

  for (const bool extended : {false, true}) {
    std::printf("%s design:\n\n", extended ? "extended" : "baseline");
    util::TablePrinter table({"M", "marshal", "sync", "dispatch", "wait", "epilogue", "total"});
    for (const unsigned m : kMs) {
      const exp::PointResult& r =
          rs.find(extended ? "extended" : "baseline", "daxpy", 1024, m);
      const auto& p = r.phases;
      table.add_row({fmt_u64(m), fmt_u64(p.marshal), fmt_u64(p.sync_setup),
                     fmt_u64(p.dispatch), fmt_u64(p.wait), fmt_u64(p.epilogue),
                     fmt_u64(r.total)});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  // The timeline needs access to the cluster's timing record, so this one
  // simulation runs on a locally owned Soc rather than through the runner.
  std::printf("cluster-side timeline, cluster 31 of 32 (extended, N=1024),\n"
              "cycles relative to the offload call:\n\n");
  soc::Soc soc(soc::SocConfig::extended(32));
  const auto r = soc::run_verified(soc, "daxpy", 1024, 32, kSeed);
  runner.note_cycles(r.total());
  const auto& t = *soc.cluster(31).last_timing();
  util::TablePrinter tl({"event", "cycle"});
  const sim::Cycle t0 = r.ts.call;
  tl.add_row({"doorbell (dispatch arrived)", fmt_u64(t.doorbell - t0)});
  tl.add_row({"team barrier arrival", fmt_u64(t.team_arrive - t0)});
  tl.add_row({"team released, DMA-in starts", fmt_u64(t.job_start - t0)});
  tl.add_row({"DMA-in done, compute starts", fmt_u64(t.dma_in_done - t0)});
  tl.add_row({"compute done (cluster barrier)", fmt_u64(t.compute_done - t0)});
  tl.add_row({"DMA-out done", fmt_u64(t.dma_out_done - t0)});
  tl.add_row({"completion credit sent", fmt_u64(t.signal_sent - t0)});
  tl.add_row({"host runtime returned", fmt_u64(r.ts.ret - t0)});
  tl.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_tables(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  register_offload_benchmark("phase_breakdown/extended/M=32",
                             mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
