// E2 — Fig. 1 (right): speedup of the extended design over the baseline for
// various problem sizes and numbers of clusters.
//
// Paper shape to reproduce: speedup is always > 1; for a fixed cluster count
// it decreases with the problem size (the constant dispatch saving amortizes
// over a longer job); the maximum — 1.479× — is at the smallest plotted
// vector dimension (N = 1024) on 32 clusters.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<std::uint64_t> kNs{1024, 2048, 4096, 8192, 16384};
const std::vector<unsigned> kMs{1, 2, 4, 8, 16, 32};

exp::ExperimentSpec make_spec() {
  exp::ExperimentSpec spec;
  spec.name = "fig1_right";
  spec.configs = {{"baseline", soc::SocConfig::baseline(32)},
                  {"extended", soc::SocConfig::extended(32)}};
  spec.ns = kNs;
  spec.ms = kMs;
  return spec;
}

void print_table(exp::SweepRunner& runner) {
  banner("E2: extended-over-baseline DAXPY speedup vs. (N, M)",
         "Fig. 1 (right), Colagrande & Benini, DATE 2024");

  const exp::ResultSet rs = runner.run(make_spec());

  std::vector<std::string> header{"N \\ M"};
  for (const unsigned m : kMs) header.push_back(fmt_u64(m));
  util::TablePrinter table(header);

  double max_speedup = 0.0;
  std::uint64_t max_n = 0;
  unsigned max_m = 0;
  bool always_above_one = true;
  for (const std::uint64_t n : kNs) {
    std::vector<std::string> row{fmt_u64(n)};
    for (const unsigned m : kMs) {
      const auto base = rs.cycles("baseline", "daxpy", n, m);
      const auto ext = rs.cycles("extended", "daxpy", n, m);
      const double s = static_cast<double>(base) / static_cast<double>(ext);
      always_above_one &= s > 1.0;
      if (s > max_speedup) {
        max_speedup = s;
        max_n = n;
        max_m = m;
      }
      row.push_back(fmt_fix(s));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nmax speedup: %.3fx at (N=%llu, M=%u) — paper: 1.479x at (1024, 32)\n",
              max_speedup, static_cast<unsigned long long>(max_n), max_m);
  std::printf("speedup always > 1: %s (paper: yes)\n", always_above_one ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 8192, 32);
  for (const std::uint64_t n : {1024ull, 8192ull}) {
    register_offload_benchmark("fig1_right/extended/N=" + std::to_string(n),
                               mco::soc::SocConfig::extended(32), "daxpy", n, 32);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
