// E15 — data-preparation overhead and the offload decision.
//
// The paper's related work (Pei et al. [6][7]) extends Amdahl's law with the
// "overhead of data preparation": if the host must first materialize the
// inputs in shared memory (e.g. produce/convert them at streaming-store
// bandwidth), that cost belongs to the offload side of the decision — when
// the host computes locally it consumes its data in place.
//
// This bench adds a host data-preparation phase (input bytes at 8 B/cycle
// streaming stores) on top of the measured offload latency and shows how the
// offload-vs-host break-even problem size moves: prep roughly doubles the
// break-even N for DAXPY. The paper's offload model composes cleanly with
// the Pei-style correction.
#include "bench_common.h"

#include <set>

#include "model/fitter.h"

namespace {

using namespace mco;
using namespace mco::bench;

constexpr double kHostStreamBytesPerCycle = 8.0;
constexpr double kHostCyclesPerElem = 4.0;  // scalar host executing DAXPY

const std::vector<std::uint64_t> kTableNs{64, 128, 192, 256, 384, 512, 1024};
const std::vector<std::uint64_t> kFitNs{256, 512, 1024, 2048};
const std::vector<unsigned> kFitMs{1, 4, 8, 16, 32};

double prep_cycles(std::uint64_t n) {
  // DAXPY inputs: x and y, 16 bytes per element, streamed to HBM.
  return static_cast<double>(16 * n) / kHostStreamBytesPerCycle;
}

void print_tables(exp::SweepRunner& runner) {
  banner("E15: offload decision with data-preparation overhead",
         "composition with Pei et al. [6][7], referenced by SI, DATE 2024");

  // One deduplicated sweep covers both the decision table (M=32 points) and
  // the model-fit grid.
  std::vector<exp::RunPoint> points_to_run;
  std::set<std::pair<std::uint64_t, unsigned>> seen;
  const auto need = [&](std::uint64_t n, unsigned m) {
    if (seen.insert({n, m}).second) {
      points_to_run.push_back(point("extended", soc::SocConfig::extended(32), "daxpy", n, m));
    }
  };
  for (const std::uint64_t n : kTableNs) need(n, 32);
  for (const std::uint64_t n : kFitNs) {
    for (const unsigned m : kFitMs) need(n, m);
  }
  const exp::ResultSet rs = runner.run("data_prep", points_to_run);

  util::TablePrinter table({"N", "t_offl", "t_prep", "t_offl+prep", "t_host",
                            "wins (no prep)", "wins (with prep)"});
  for (const std::uint64_t n : kTableNs) {
    const auto t_off = static_cast<double>(rs.cycles("extended", "daxpy", n, 32));
    const double t_prep = prep_cycles(n);
    const double t_host = kHostCyclesPerElem * static_cast<double>(n);
    table.add_row({fmt_u64(n), fmt_fix(t_off, 0), fmt_fix(t_prep, 0),
                   fmt_fix(t_off + t_prep, 0), fmt_fix(t_host, 0),
                   t_off < t_host ? "offload" : "host",
                   t_off + t_prep < t_host ? "offload" : "host"});
  }
  table.print(std::cout);

  // Break-even sizes from the fitted model, with and without prep.
  std::vector<model::Sample> samples;
  for (const std::uint64_t n : kFitNs) {
    for (const unsigned m : kFitMs) {
      samples.push_back(
          model::Sample{m, n, static_cast<double>(rs.cycles("extended", "daxpy", n, m))});
    }
  }
  const auto fit = model::fit_runtime_model(samples);
  const auto solve = [&](double extra_per_elem) {
    // t0 + (a + b/32 + extra)·N < 4·N  →  N > t0 / (4 − a − b/32 − extra)
    const double slope = fit.model.a + fit.model.b / 32.0 + extra_per_elem;
    return kHostCyclesPerElem > slope ? fit.model.t0 / (kHostCyclesPerElem - slope) : -1.0;
  };
  std::printf("\nmodel-derived break-even N at M=32: %.0f without prep, %.0f with prep\n",
              solve(0.0), solve(16.0 / kHostStreamBytesPerCycle));
  std::printf("(data preparation adds %.1f cycles/element to the offload side,\n"
              "shifting the decision boundary — exactly the correction [6] argues for.)\n",
              16.0 / kHostStreamBytesPerCycle);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_tables(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
