// E15 — data-preparation overhead and the offload decision.
//
// The paper's related work (Pei et al. [6][7]) extends Amdahl's law with the
// "overhead of data preparation": if the host must first materialize the
// inputs in shared memory (e.g. produce/convert them at streaming-store
// bandwidth), that cost belongs to the offload side of the decision — when
// the host computes locally it consumes its data in place.
//
// This bench adds a host data-preparation phase (input bytes at 8 B/cycle
// streaming stores) on top of the measured offload latency and shows how the
// offload-vs-host break-even problem size moves: prep roughly doubles the
// break-even N for DAXPY. The paper's offload model composes cleanly with
// the Pei-style correction.
#include "bench_common.h"

#include "model/fitter.h"

namespace {

using namespace mco;
using namespace mco::bench;

constexpr double kHostStreamBytesPerCycle = 8.0;
constexpr double kHostCyclesPerElem = 4.0;  // scalar host executing DAXPY

double prep_cycles(std::uint64_t n) {
  // DAXPY inputs: x and y, 16 bytes per element, streamed to HBM.
  return static_cast<double>(16 * n) / kHostStreamBytesPerCycle;
}

void print_tables() {
  banner("E15: offload decision with data-preparation overhead",
         "composition with Pei et al. [6][7], referenced by SI, DATE 2024");

  util::TablePrinter table({"N", "t_offl", "t_prep", "t_offl+prep", "t_host",
                            "wins (no prep)", "wins (with prep)"});
  for (const std::uint64_t n : {64ull, 128ull, 192ull, 256ull, 384ull, 512ull, 1024ull}) {
    const auto t_off = static_cast<double>(daxpy_cycles(soc::SocConfig::extended(32), n, 32));
    const double t_prep = prep_cycles(n);
    const double t_host = kHostCyclesPerElem * static_cast<double>(n);
    table.add_row({fmt_u64(n), fmt_fix(t_off, 0), fmt_fix(t_prep, 0),
                   fmt_fix(t_off + t_prep, 0), fmt_fix(t_host, 0),
                   t_off < t_host ? "offload" : "host",
                   t_off + t_prep < t_host ? "offload" : "host"});
  }
  table.print(std::cout);

  // Break-even sizes from the fitted model, with and without prep.
  std::vector<model::Sample> samples;
  for (const std::uint64_t n : {256ull, 512ull, 1024ull, 2048ull}) {
    for (const unsigned m : {1u, 4u, 8u, 16u, 32u}) {
      samples.push_back(
          model::Sample{m, n, static_cast<double>(daxpy_cycles(soc::SocConfig::extended(32), n, m))});
    }
  }
  const auto fit = model::fit_runtime_model(samples);
  const auto solve = [&](double extra_per_elem) {
    // t0 + (a + b/32 + extra)·N < 4·N  →  N > t0 / (4 − a − b/32 − extra)
    const double slope = fit.model.a + fit.model.b / 32.0 + extra_per_elem;
    return kHostCyclesPerElem > slope ? fit.model.t0 / (kHostCyclesPerElem - slope) : -1.0;
  };
  std::printf("\nmodel-derived break-even N at M=32: %.0f without prep, %.0f with prep\n",
              solve(0.0), solve(16.0 / kHostStreamBytesPerCycle));
  std::printf("(data preparation adds %.1f cycles/element to the offload side,\n"
              "shifting the decision boundary — exactly the correction [6] argues for.)\n",
              16.0 / kHostStreamBytesPerCycle);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_tables();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
