// E9 — energy account of offloading (extension; the paper's introduction
// motivates overhead reduction for energy as well as runtime).
//
// Sweeps the cluster count for both designs and reports total energy and
// energy-delay product per offload, plus the energy-optimal cluster count —
// which lands *below* the runtime-optimal one because idle-worker and
// leakage energy grow with M while the runtime saving saturates (Amdahl).
#include "bench_common.h"

#include "energy/energy_model.h"

namespace {

using namespace mco;
using namespace mco::bench;

void print_tables() {
  banner("E9: energy per DAXPY offload (N=1024)",
         "extension of SI motivation, Colagrande & Benini, DATE 2024");

  const energy::EnergyConfig ecfg;
  util::TablePrinter table({"M", "base[cyc]", "base[nJ]", "ext[cyc]", "ext[nJ]",
                            "ext EDP[nJ*kcyc]"});
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto base =
        energy::measure_offload_energy(soc::SocConfig::baseline(32), ecfg, "daxpy", 1024, m);
    const auto ext =
        energy::measure_offload_energy(soc::SocConfig::extended(32), ecfg, "daxpy", 1024, m);
    table.add_row({fmt_u64(m), fmt_u64(base.cycles), fmt_fix(base.report.total_pj() / 1e3, 1),
                   fmt_u64(ext.cycles), fmt_fix(ext.report.total_pj() / 1e3, 1),
                   fmt_fix(ext.report.edp(ext.cycles) / 1e6, 1)});
  }
  table.print(std::cout);

  const unsigned m_energy =
      energy::energy_optimal_m(soc::SocConfig::extended(32), ecfg, "daxpy", 1024, 32);
  std::printf("\nenergy-optimal M (extended): %u    runtime-optimal M: 32\n", m_energy);
  std::printf("-> minimizing energy favours fewer clusters than minimizing runtime.\n");

  std::printf("\nbreakdown at M=32 (extended): %s\n",
              energy::measure_offload_energy(soc::SocConfig::extended(32), ecfg, "daxpy", 1024,
                                             32)
                  .report.to_string()
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_tables();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 8);
  register_offload_benchmark("energy/extended/M=8", mco::soc::SocConfig::extended(32), "daxpy",
                             1024, 8);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
