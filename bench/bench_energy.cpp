// E9 — energy account of offloading (extension; the paper's introduction
// motivates overhead reduction for energy as well as runtime).
//
// Sweeps the cluster count for both designs and reports total energy and
// energy-delay product per offload, plus the energy-optimal cluster count —
// which lands *below* the runtime-optimal one because idle-worker and
// leakage energy grow with M while the runtime saving saturates (Amdahl).
#include "bench_common.h"

#include "energy/energy_model.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<unsigned> kMs{1, 2, 4, 8, 16, 32};

struct EnergyRow {
  energy::OffloadEnergy base;
  energy::OffloadEnergy ext;
};

void print_tables(exp::SweepRunner& runner) {
  banner("E9: energy per DAXPY offload (N=1024)",
         "extension of SI motivation, Colagrande & Benini, DATE 2024");

  const energy::EnergyConfig ecfg;
  // Energy measurement owns its Soc, so the sweep uses the runner's generic
  // map — same ordered-slot determinism as the standard run points.
  const std::vector<EnergyRow> rows = runner.map(kMs, [&](const unsigned& m) {
    EnergyRow row;
    row.base =
        energy::measure_offload_energy(soc::SocConfig::baseline(32), ecfg, "daxpy", 1024, m);
    row.ext =
        energy::measure_offload_energy(soc::SocConfig::extended(32), ecfg, "daxpy", 1024, m);
    runner.note_cycles(row.base.cycles);
    runner.note_cycles(row.ext.cycles);
    return row;
  });

  util::TablePrinter table({"M", "base[cyc]", "base[nJ]", "ext[cyc]", "ext[nJ]",
                            "ext EDP[nJ*kcyc]"});
  for (std::size_t i = 0; i < kMs.size(); ++i) {
    const EnergyRow& r = rows[i];
    table.add_row({fmt_u64(kMs[i]), fmt_u64(r.base.cycles),
                   fmt_fix(r.base.report.total_pj() / 1e3, 1),
                   fmt_u64(r.ext.cycles), fmt_fix(r.ext.report.total_pj() / 1e3, 1),
                   fmt_fix(r.ext.report.edp(r.ext.cycles) / 1e6, 1)});
  }
  table.print(std::cout);

  const unsigned m_energy =
      energy::energy_optimal_m(soc::SocConfig::extended(32), ecfg, "daxpy", 1024, 32);
  std::printf("\nenergy-optimal M (extended): %u    runtime-optimal M: 32\n", m_energy);
  std::printf("-> minimizing energy favours fewer clusters than minimizing runtime.\n");

  std::printf("\nbreakdown at M=32 (extended): %s\n",
              energy::measure_offload_energy(soc::SocConfig::extended(32), ecfg, "daxpy", 1024,
                                             32)
                  .report.to_string()
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_tables(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 8);
  register_offload_benchmark("energy/extended/M=8", mco::soc::SocConfig::extended(32), "daxpy",
                             1024, 8);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
