// E3 — Eq. (1) + Eq. (2): validation of the analytical runtime model.
//
// Paper claim to reproduce: for every problem size N ∈ {256, 512, 768, 1024},
// the MAPE of t̂(M,N) = 367 + N/4 + 2.6·N/(8·M) over the cluster sweep
// M ∈ {1, 2, 4, 8, 16, 32} is consistently below 1 %.
//
// In addition to the paper's hand-derived constants we also *fit* the model
// from the simulated samples (how a user without RTL access would obtain it)
// and report the recovered coefficients.
#include "bench_common.h"

#include "model/fitter.h"
#include "model/mape.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<std::uint64_t> kNs{256, 512, 768, 1024};
const std::vector<unsigned> kMs{1, 2, 4, 8, 16, 32};

exp::ExperimentSpec make_spec() {
  exp::ExperimentSpec spec;
  spec.name = "model_mape";
  spec.ns = kNs;  // default config: one extended(32) variant
  spec.ms = kMs;
  return spec;
}

void print_tables(exp::SweepRunner& runner) {
  banner("E3: runtime-model accuracy (MAPE per problem size)",
         "Eq. (1) and Eq. (2), Colagrande & Benini, DATE 2024");

  const exp::ResultSet rs = runner.run(make_spec());

  // points() expands n (outer) × m (inner) — the sample order the tables use.
  std::vector<model::Sample> samples;
  for (const exp::PointResult& r : rs.rows()) {
    samples.push_back(model::Sample{r.point.m, r.point.n, static_cast<double>(r.total)});
  }

  const model::RuntimeModel paper = model::paper_daxpy_model();
  const auto fit = model::fit_runtime_model(samples);

  std::printf("paper model : %s\n", paper.describe().c_str());
  std::printf("fitted model: %s  (R^2 = %.6f)\n\n", fit.model.describe().c_str(),
              fit.r_squared);

  util::TablePrinter table({"N", "MAPE(paper)[%]", "MAPE(fitted)[%]", "<1% (paper claim)"});
  const auto paper_by_n = model::mape_by_n(paper, samples);
  const auto fit_by_n = model::mape_by_n(fit.model, samples);
  for (const std::uint64_t n : kNs) {
    table.add_row({fmt_u64(n), fmt_fix(paper_by_n.at(n)), fmt_fix(fit_by_n.at(n)),
                   paper_by_n.at(n) < 1.0 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\noverall MAPE (paper model): %.3f %%\n", model::mape(paper, samples));

  std::printf("\nper-sample detail (measured vs. predicted):\n\n");
  util::TablePrinter detail({"N", "M", "measured", "predicted", "err[%]"});
  for (const auto& s : samples) {
    const double pred = paper.predict(s.m, s.n);
    detail.add_row({fmt_u64(s.n), fmt_u64(s.m), fmt_fix(s.t, 0), fmt_fix(pred, 1),
                    fmt_fix(100.0 * std::abs(s.t - pred) / s.t)});
  }
  detail.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_tables(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  for (const std::uint64_t n : kNs) {
    register_offload_benchmark("model_mape/extended/N=" + std::to_string(n),
                               mco::soc::SocConfig::extended(32), "daxpy", n, 32);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
