// E6 — feature ablation (extends the paper's analysis): how much of the
// speedup comes from the multicast dispatch path and how much from the
// dedicated synchronization unit.
//
// The paper evaluates baseline vs. both-extensions; here the two mechanisms
// toggle independently. Expected: multicast removes the linear-in-M dispatch
// term (the dominant cost at many clusters); the sync unit removes a
// constant polling/atomic overhead.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

void print_table() {
  banner("E6: ablation of the two hardware extensions (DAXPY N=1024)",
         "extension of SIII, Colagrande & Benini, DATE 2024");

  util::TablePrinter table(
      {"M", "baseline", "+multicast", "+hw-sync", "+both", "mc gain", "sync gain"});
  for (const unsigned m : {1u, 4u, 8u, 16u, 32u}) {
    const auto base = daxpy_cycles(soc::SocConfig::with_features(32, {false, false}), 1024, m);
    const auto mc = daxpy_cycles(soc::SocConfig::with_features(32, {true, false}), 1024, m);
    const auto hw = daxpy_cycles(soc::SocConfig::with_features(32, {false, true}), 1024, m);
    const auto both = daxpy_cycles(soc::SocConfig::with_features(32, {true, true}), 1024, m);
    const auto sdiff = [](sim::Cycles a, sim::Cycles b) {
      return util::format("%lld", static_cast<long long>(a) - static_cast<long long>(b));
    };
    table.add_row({fmt_u64(m), fmt_u64(base), fmt_u64(mc), fmt_u64(hw), fmt_u64(both),
                   sdiff(base, mc), sdiff(base, hw)});
  }
  table.print(std::cout);
  std::printf("\nat many clusters the multicast gain dominates (linear dispatch term);\n"
              "the sync-unit gain is a constant (polling + uncached atomic removal).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_table();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::with_features(32, {true, false}), "daxpy", 1024, 32);
  register_offload_benchmark("ablation/multicast_only/M=32",
                             mco::soc::SocConfig::with_features(32, {true, false}), "daxpy",
                             1024, 32);
  register_offload_benchmark("ablation/hw_sync_only/M=32",
                             mco::soc::SocConfig::with_features(32, {false, true}), "daxpy",
                             1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
