// E6 — feature ablation (extends the paper's analysis): how much of the
// speedup comes from the multicast dispatch path and how much from the
// dedicated synchronization unit.
//
// The paper evaluates baseline vs. both-extensions; here the two mechanisms
// toggle independently. Expected: multicast removes the linear-in-M dispatch
// term (the dominant cost at many clusters); the sync unit removes a
// constant polling/atomic overhead.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<unsigned> kMs{1, 4, 8, 16, 32};

exp::ExperimentSpec make_spec() {
  exp::ExperimentSpec spec;
  spec.name = "ablation_features";
  spec.configs = {{"baseline", soc::SocConfig::with_features(32, {false, false})},
                  {"multicast", soc::SocConfig::with_features(32, {true, false})},
                  {"hw_sync", soc::SocConfig::with_features(32, {false, true})},
                  {"both", soc::SocConfig::with_features(32, {true, true})}};
  spec.ms = kMs;
  return spec;
}

void print_table(exp::SweepRunner& runner) {
  banner("E6: ablation of the two hardware extensions (DAXPY N=1024)",
         "extension of SIII, Colagrande & Benini, DATE 2024");

  const exp::ResultSet rs = runner.run(make_spec());

  util::TablePrinter table(
      {"M", "baseline", "+multicast", "+hw-sync", "+both", "mc gain", "sync gain"});
  for (const unsigned m : kMs) {
    const auto base = rs.cycles("baseline", "daxpy", 1024, m);
    const auto mc = rs.cycles("multicast", "daxpy", 1024, m);
    const auto hw = rs.cycles("hw_sync", "daxpy", 1024, m);
    const auto both = rs.cycles("both", "daxpy", 1024, m);
    const auto sdiff = [](sim::Cycles a, sim::Cycles b) {
      return util::format("%lld", static_cast<long long>(a) - static_cast<long long>(b));
    };
    table.add_row({fmt_u64(m), fmt_u64(base), fmt_u64(mc), fmt_u64(hw), fmt_u64(both),
                   sdiff(base, mc), sdiff(base, hw)});
  }
  table.print(std::cout);
  std::printf("\nat many clusters the multicast gain dominates (linear dispatch term);\n"
              "the sync-unit gain is a constant (polling + uncached atomic removal).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::with_features(32, {true, false}), "daxpy", 1024, 32);
  register_offload_benchmark("ablation/multicast_only/M=32",
                             mco::soc::SocConfig::with_features(32, {true, false}), "daxpy",
                             1024, 32);
  register_offload_benchmark("ablation/hw_sync_only/M=32",
                             mco::soc::SocConfig::with_features(32, {false, true}), "daxpy",
                             1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
