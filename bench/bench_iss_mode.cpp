// E13 — the offload study repeated with instruction-level compute.
//
// Replaces the calibrated 2.6-cycles/element compute model with the
// worker-core ISS running actual DAXPY inner loops, at three optimization
// levels, and re-measures the extended design's runtime and the fitted
// Eq. (1)-style coefficients. The b coefficient tracks the inner loop's
// measured cycles/element (over 8 workers), confirming the timing stack is
// consistent from instructions to the system-level model.
#include "bench_common.h"

#include "model/fitter.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<unsigned> kMs{1, 4, 8, 16, 32};
const std::vector<std::uint64_t> kNs{512, 1024, 2048};

soc::SocConfig iss_cfg(kernels::Kernel::IssVariant v) {
  soc::SocConfig cfg = soc::SocConfig::extended(32);
  cfg.cluster.use_iss_compute = true;
  cfg.cluster.iss_variant = v;
  return cfg;
}

exp::ExperimentSpec make_spec() {
  exp::ExperimentSpec spec;
  spec.name = "iss_mode";
  spec.configs = {{"rate 2.6 (paper calib.)", soc::SocConfig::extended(32)},
                  {"ISS scalar", iss_cfg(kernels::Kernel::IssVariant::kScalar)},
                  {"ISS unrolled4", iss_cfg(kernels::Kernel::IssVariant::kUnrolled4)},
                  {"ISS ssr+frep", iss_cfg(kernels::Kernel::IssVariant::kSsrFrep)}};
  spec.ns = kNs;
  spec.ms = kMs;
  return spec;
}

void print_tables(exp::SweepRunner& runner) {
  banner("E13: DAXPY offload with instruction-level worker execution",
         "consistency of Eq. (1) down to the inner loop, DATE 2024");

  const exp::ExperimentSpec spec = make_spec();
  const exp::ResultSet rs = runner.run(spec);

  std::vector<std::string> header{"compute model"};
  for (const unsigned m : kMs) header.push_back("M=" + fmt_u64(m));
  header.push_back("fitted b");
  header.push_back("~cyc/elem");
  util::TablePrinter table(header);

  for (const exp::ConfigVariant& mode : spec.configs) {
    std::vector<std::string> row{mode.label};
    std::vector<model::Sample> samples;
    for (const unsigned m : kMs) {
      row.push_back(fmt_u64(rs.cycles(mode.label, "daxpy", 1024, m)));
      for (const std::uint64_t n : kNs) {
        samples.push_back(
            model::Sample{m, n, static_cast<double>(rs.cycles(mode.label, "daxpy", n, m))});
      }
    }
    const auto fit = model::fit_runtime_model(samples);
    row.push_back(fmt_fix(fit.model.b, 4));
    row.push_back(fmt_fix(fit.model.b * 8, 2));  // b = rate/workers
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nfitted b times 8 workers recovers each inner loop's cycles/element\n"
              "(13 scalar, 5.5 unrolled, ~1 ssr+frep; 2.6 for the paper's calibration),\n"
              "so Eq. (1)'s compute term is exactly 'inner-loop rate / worker count'.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_tables(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
