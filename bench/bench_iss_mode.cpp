// E13 — the offload study repeated with instruction-level compute.
//
// Replaces the calibrated 2.6-cycles/element compute model with the
// worker-core ISS running actual DAXPY inner loops, at three optimization
// levels, and re-measures the extended design's runtime and the fitted
// Eq. (1)-style coefficients. The b coefficient tracks the inner loop's
// measured cycles/element (over 8 workers), confirming the timing stack is
// consistent from instructions to the system-level model.
#include "bench_common.h"

#include "model/fitter.h"

namespace {

using namespace mco;
using namespace mco::bench;

soc::SocConfig iss_cfg(kernels::Kernel::IssVariant v) {
  soc::SocConfig cfg = soc::SocConfig::extended(32);
  cfg.cluster.use_iss_compute = true;
  cfg.cluster.iss_variant = v;
  return cfg;
}

void print_tables() {
  banner("E13: DAXPY offload with instruction-level worker execution",
         "consistency of Eq. (1) down to the inner loop, DATE 2024");

  struct Mode {
    std::string label;
    soc::SocConfig cfg;
  };
  const std::vector<Mode> modes = {
      {"rate 2.6 (paper calib.)", soc::SocConfig::extended(32)},
      {"ISS scalar", iss_cfg(kernels::Kernel::IssVariant::kScalar)},
      {"ISS unrolled4", iss_cfg(kernels::Kernel::IssVariant::kUnrolled4)},
      {"ISS ssr+frep", iss_cfg(kernels::Kernel::IssVariant::kSsrFrep)},
  };

  std::vector<std::string> header{"compute model"};
  for (const unsigned m : {1u, 4u, 8u, 16u, 32u}) header.push_back("M=" + fmt_u64(m));
  header.push_back("fitted b");
  header.push_back("~cyc/elem");
  util::TablePrinter table(header);

  for (const auto& mode : modes) {
    std::vector<std::string> row{mode.label};
    std::vector<model::Sample> samples;
    for (const unsigned m : {1u, 4u, 8u, 16u, 32u}) {
      const auto t = daxpy_cycles(mode.cfg, 1024, m);
      row.push_back(fmt_u64(t));
      for (const std::uint64_t n : {512ull, 1024ull, 2048ull}) {
        samples.push_back(
            model::Sample{m, n, static_cast<double>(daxpy_cycles(mode.cfg, n, m))});
      }
    }
    const auto fit = model::fit_runtime_model(samples);
    row.push_back(fmt_fix(fit.model.b, 4));
    row.push_back(fmt_fix(fit.model.b * 8, 2));  // b = rate/workers
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nfitted b times 8 workers recovers each inner loop's cycles/element\n"
              "(13 scalar, 5.5 unrolled, ~1 ssr+frep; 2.6 for the paper's calibration),\n"
              "so Eq. (1)'s compute term is exactly 'inner-loop rate / worker count'.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_tables();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
