// E4 — headline claims: 47.9 % speedup, > 300-cycle gap at 32 clusters, and
// negligible further gain beyond 32 clusters (Amdahl).
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

void print_table(exp::SweepRunner& runner) {
  banner("E4: headline numbers at N=1024",
         "Abstract + SIII closing numbers, Colagrande & Benini, DATE 2024");

  const exp::ResultSet rs = runner.run(
      "headline", {point("baseline32", soc::SocConfig::baseline(32), "daxpy", 1024, 32),
                   point("extended32", soc::SocConfig::extended(32), "daxpy", 1024, 32),
                   point("extended64", soc::SocConfig::extended(64), "daxpy", 1024, 32),
                   point("extended64", soc::SocConfig::extended(64), "daxpy", 1024, 64)});

  const auto base32 = rs.cycles("baseline32", "daxpy", 1024, 32);
  const auto ext32 = rs.cycles("extended32", "daxpy", 1024, 32);
  const auto ext32of64 = rs.cycles("extended64", "daxpy", 1024, 32);
  const auto ext64 = rs.cycles("extended64", "daxpy", 1024, 64);
  const double speedup = static_cast<double>(base32) / static_cast<double>(ext32);

  util::TablePrinter table({"claim", "paper", "measured", "ok"});
  table.add_row({"speedup at (N=1024, M=32)", "1.479x", fmt_fix(speedup) + "x",
                 std::abs(speedup - 1.479) < 0.02 ? "yes" : "NO"});
  table.add_row({"runtime difference at M=32", ">300 cyc", fmt_u64(base32 - ext32) + " cyc",
                 base32 - ext32 > 300 ? "yes" : "NO"});
  table.add_row({"extended runtime at (1024, 32)", "~633 cyc (Eq.1)", fmt_u64(ext32) + " cyc",
                 std::abs(static_cast<double>(ext32) - 633.4) < 10 ? "yes" : "NO"});
  const double gain64 =
      100.0 * static_cast<double>(ext32of64 - ext64) / static_cast<double>(ext32of64);
  table.add_row({"gain from 32 -> 64 clusters", "negligible", fmt_fix(gain64, 2) + " %",
                 gain64 < 3.0 ? "yes" : "NO"});
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  register_offload_benchmark("headline/baseline/M=32", mco::soc::SocConfig::baseline(32),
                             "daxpy", 1024, 32);
  register_offload_benchmark("headline/extended/M=32", mco::soc::SocConfig::extended(32),
                             "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
