// E20 — chaos scenarios: scripted fault/traffic/operator episodes, judged.
//
// Each scenario file (scenarios/*.scn, see docs/scenarios.md) scripts one
// timed episode against the serving layer — fault-injector activations,
// traffic phases over the E19 generator, and operator drain/undrain/restart
// actions — and declares machine-checked verdicts (`expect` lines). The
// catalog runs through exp::SweepRunner::map with index-addressed slots;
// each episode's replay is serial and virtual-time deterministic, so every
// table and the "mco-scenario-v1" report (golden-pinned by
// scripts/metrics_regression.py) are byte-identical for any --jobs.
//
// Extra flags (stripped before benchmark::Initialize):
//   --scenario=F       run a single scenario file instead of the catalog
//   --scenario-dir=D   catalog directory (default: the repo's scenarios/)
//   --report-out=F     write the "mco-scenario-v1" JSON report to F
#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>

#include "scenario/scenario_runner.h"

#ifndef MCO_SCENARIO_DIR
#define MCO_SCENARIO_DIR "scenarios"
#endif

namespace {

using namespace mco;
using namespace mco::bench;

/// The catalog: every *.scn under `dir`, sorted by filename for a
/// deterministic run order.
std::vector<std::string> catalog_files(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot read scenario directory '%s': %s\n", dir.c_str(),
                 ec.message().c_str());
    std::exit(2);
  }
  std::vector<std::string> files;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".scn") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "error: no *.scn scenario files in '%s'\n", dir.c_str());
    std::exit(2);
  }
  return files;
}

/// Parse the whole catalog up front: a malformed or missing scenario file is
/// a fail-fast CLI error (exit 2, "error:" on stderr, nothing on stdout).
std::vector<scenario::ScenarioSpec> load_catalog(const std::vector<std::string>& files) {
  std::vector<scenario::ScenarioSpec> specs;
  for (const std::string& file : files) {
    try {
      specs.push_back(scenario::load_scenario_file(file));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", file.c_str(), e.what());
      std::exit(2);
    }
  }
  return specs;
}

void run_e20(exp::SweepRunner& runner, const std::vector<scenario::ScenarioSpec>& specs,
             const std::string& report_out) {
  banner("E20: declarative chaos scenarios against the offload service",
         "fault -> degrade -> operator recovery episodes, with judged verdicts");

  const scenario::ScenarioRunConfig run_cfg;
  const std::vector<scenario::ScenarioResult> results =
      runner.map(specs, [&](const scenario::ScenarioSpec& spec) {
        scenario::ScenarioResult r = scenario::run_scenario(spec, run_cfg);
        runner.note_cycles(r.makespan);
        return r;
      });

  util::TablePrinter table({"scenario", "jobs", "met", "missed", "shed", "failed", "SLO %",
                            "quar", "restarts", "drains", "crashes", "violations", "verdicts",
                            "pass"});
  std::uint64_t violations = 0;
  std::size_t passed = 0;
  for (const scenario::ScenarioResult& r : results) {
    violations += r.soc_violations + r.serve_violations;
    if (r.passed) ++passed;
    std::size_t verdicts_ok = 0;
    for (const scenario::VerdictResult& v : r.verdicts) verdicts_ok += v.passed ? 1 : 0;
    table.add_row({r.name, fmt_u64(r.jobs), fmt_u64(r.met), fmt_u64(r.missed), fmt_u64(r.shed),
                   fmt_u64(r.failed), fmt_fix(100.0 * r.slo_attainment, 1),
                   fmt_u64(r.quarantines), fmt_u64(r.restarts), fmt_u64(r.drains),
                   fmt_u64(r.crashes), fmt_u64(r.soc_violations + r.serve_violations),
                   util::format("%zu/%zu", verdicts_ok, r.verdicts.size()),
                   r.passed ? "yes" : "NO"});
  }
  table.print(std::cout);

  // Failed verdicts in full, so a red row is diagnosable from the log alone.
  for (const scenario::ScenarioResult& r : results) {
    for (const scenario::VerdictResult& v : r.verdicts) {
      if (!v.passed) {
        std::printf("[e20] %s: FAILED expect %s (actual %.6g)\n", r.name.c_str(),
                    v.text.c_str(), v.actual);
      }
    }
  }

  std::printf("\n%zu/%zu scenarios passed, %llu violation(s)\n", passed, results.size(),
              static_cast<unsigned long long>(violations));

  if (!report_out.empty()) {
    std::ofstream f(report_out);
    if (!f) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n", report_out.c_str());
      std::exit(2);
    }
    f << scenario::scenario_report_json(results);
    std::printf("[e20] scenario report written to %s\n", report_out.c_str());
  }
}

/// Strip --scenario=F / --scenario-dir=D / --report-out=F (same discipline
/// as the shared bench flags: consume before benchmark::Initialize).
void e20_args(int& argc, char** argv, std::string& scenario_file, std::string& scenario_dir,
              std::string& report_out) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      scenario_file = argv[i] + 11;
      continue;
    }
    if (std::strncmp(argv[i], "--scenario-dir=", 15) == 0) {
      scenario_dir = argv[i] + 15;
      continue;
    }
    if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_file;
  std::string scenario_dir = MCO_SCENARIO_DIR;
  std::string report_out;
  e20_args(argc, argv, scenario_file, scenario_dir, report_out);
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  const std::vector<std::string> files =
      scenario_file.empty() ? catalog_files(scenario_dir)
                            : std::vector<std::string>{scenario_file};
  const std::vector<mco::scenario::ScenarioSpec> specs = load_catalog(files);
  run_e20(runner, specs, report_out);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(8), "daxpy", 2048, 8);
  register_offload_benchmark("scenario/extended8/M=8", mco::soc::SocConfig::extended(8),
                             "daxpy", 2048, 8);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
