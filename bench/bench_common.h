// Shared helpers for the paper-reproduction benches.
//
// Every bench binary does two things:
//  1. prints the paper-style table/series for its experiment (primary
//     artifact, always emitted, deterministic);
//  2. registers google-benchmark cases that re-run the underlying
//     simulations, reporting the simulated cycle counts as counters — so the
//     standard `for b in build/bench/*; do $b; done` loop exercises them and
//     reports both simulator wall time and simulated time.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/sweep_runner.h"
#include "soc/observability.h"
#include "soc/soc.h"
#include "soc/workloads.h"
#include "util/strings.h"
#include "util/table.h"

namespace mco::bench {

inline constexpr std::uint64_t kSeed = 42;

/// The shared bench flags, stripped from argv before benchmark::Initialize
/// rejects them: --jobs=N (sweep parallelism, see exp::SweepRunner) and the
/// observability flags (--trace-out/--metrics-out).
struct BenchArgs {
  soc::ObservabilityOptions obs;
  unsigned jobs = 1;
};

inline BenchArgs bench_args(int& argc, char** argv) {
  BenchArgs args;
  args.jobs = exp::SweepRunner::jobs_from_args(argc, argv);
  args.obs = soc::observability_from_args(argc, argv);
  return args;
}

/// Build one explicit sweep point with the bench seed.
inline exp::RunPoint point(std::string config_label, soc::SocConfig cfg, std::string kernel,
                           std::uint64_t n, unsigned m, double tolerance = 1e-9) {
  exp::RunPoint p;
  p.config_label = std::move(config_label);
  p.cfg = cfg;
  p.kernel = std::move(kernel);
  p.n = n;
  p.m = m;
  p.seed = kSeed;
  p.tolerance = tolerance;
  return p;
}

/// Machine-readable sweep summary. Integer sums only, accumulated in
/// index-addressed slots, so the line — like the tables above it — is
/// byte-identical for any --jobs value.
inline void sweep_footer(const exp::SweepRunner& runner) {
  std::printf("\n[sweep] points=%llu sim_cycles=%llu\n",
              static_cast<unsigned long long>(runner.points_run()),
              static_cast<unsigned long long>(runner.sim_cycles()));
}

/// Simulated cycles of a verified DAXPY offload.
inline sim::Cycles daxpy_cycles(const soc::SocConfig& cfg, std::uint64_t n, unsigned m) {
  return soc::run_daxpy(cfg, n, m, kSeed).total();
}

/// Register a google-benchmark case that runs one offload per iteration and
/// reports the simulated cycles as a counter.
inline void register_offload_benchmark(const std::string& name, soc::SocConfig cfg,
                                       std::string kernel, std::uint64_t n, unsigned m) {
  benchmark::RegisterBenchmark(name.c_str(), [cfg, kernel, n, m](benchmark::State& state) {
    sim::Cycles cycles = 0;
    for (auto _ : state) {
      soc::Soc soc(cfg);
      cycles = soc::run_verified(soc, kernel, n, m, kSeed, 1e-5).total();
      benchmark::DoNotOptimize(cycles);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
  });
}

/// --trace-out/--metrics-out support: strip the shared observability flags
/// from argv (before benchmark::Initialize rejects them) and, when either was
/// given, re-run the bench's canonical configuration once with the trace sink
/// armed, writing the requested artifacts. The canonical run is separate from
/// the table runs above it, so the printed numbers stay bit-identical whether
/// or not the flags are present.
inline void export_canonical_run(const soc::ObservabilityOptions& opts, soc::SocConfig cfg,
                                 const std::string& kernel, std::uint64_t n, unsigned m) {
  soc::export_canonical_offload(opts, std::move(cfg), kernel, n, m, kSeed);
}

/// Print the standard bench banner.
inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("(cycles @ 1 GHz; deterministic simulation, seed %llu)\n",
              static_cast<unsigned long long>(kSeed));
  std::printf("================================================================\n\n");
}

inline std::string fmt_u64(std::uint64_t v) {
  return util::format("%llu", static_cast<unsigned long long>(v));
}

inline std::string fmt_fix(double v, int prec = 3) { return util::format("%.*f", prec, v); }

}  // namespace mco::bench
