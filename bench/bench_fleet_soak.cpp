// E22 — fleet soak: the sharded multi-SoC serving fleet under offered load
// that saturates a single shard.
//
// One seeded job trace (the E19 generator pressed ~2.5x harder, see
// serve::fleet_trace_config) is served by a serve::FleetRouter per grid
// point: shard-count scaling {1, 2, 4, 8} with same-kernel batching and
// cross-shard stealing on, plus the 4-shard ablations (no-batch, no-steal,
// neither). Reported per point: SLO attainment, goodput, steal/batch
// activity, and the invariant audits (per-shard backing Socs + the fleet
// trace's per-shard serve_isolation shadows). The "mco-fleet-v1" document is
// byte-compared across --jobs levels by tests/test_fleet.cpp.
//
// Point-level parallelism uses exp::SweepRunner::map with index-addressed
// slots; each point's replay is serial and virtual-time deterministic, so
// every table, the machine-readable [fleet] lines and the report document
// are byte-identical for any --jobs.
//
// Extra flags (stripped before benchmark::Initialize):
//   --fleet-jobs=N   jobs in the generated trace (default 600)
//   --report-out=F   write the "mco-fleet-v1" JSON report to F
#include "bench_common.h"

#include <cstring>
#include <fstream>

#include "serve/fleet_soak.h"

namespace {

using namespace mco;
using namespace mco::bench;

void run_e22(exp::SweepRunner& runner, std::size_t fleet_jobs, const std::string& report_out) {
  banner("E22: fleet soak — sharded serving with batching and work stealing",
         "one admission front-end, N independent DATE 2024 fabrics");

  serve::SoakTraceConfig trace_cfg = serve::fleet_trace_config(fleet_jobs);
  trace_cfg.seed = kSeed;
  serve::FleetSoakConfig run_cfg;
  const std::vector<serve::ServeJob> trace = serve::generate_trace(trace_cfg, run_cfg.model);
  const std::vector<serve::FleetSoakPoint> grid = serve::fleet_soak_grid();

  const std::vector<serve::FleetSoakResult> results =
      runner.map(grid, [&](const serve::FleetSoakPoint& pt) {
        serve::FleetSoakResult r = serve::run_fleet_point(pt, trace, run_cfg);
        runner.note_cycles(r.makespan);
        return r;
      });

  util::TablePrinter table({"point", "shards", "batch", "steal", "met", "missed", "shed",
                            "SLO %", "goodput", "steals", "batches", "mean_b", "violations"});
  std::uint64_t violations = 0;
  for (const serve::FleetSoakResult& r : results) {
    violations += r.soc_violations + r.serve_violations;
    table.add_row({r.name, fmt_u64(r.shards), fmt_u64(r.max_batch), r.stealing ? "on" : "off",
                   fmt_u64(r.met), fmt_u64(r.missed), fmt_u64(r.shed),
                   fmt_fix(100.0 * r.slo_attainment, 1), fmt_fix(r.goodput, 3),
                   fmt_u64(r.steals), fmt_u64(r.batches), fmt_fix(r.mean_batch, 2),
                   fmt_u64(r.soc_violations + r.serve_violations)});
  }
  table.print(std::cout);

  // Machine-readable lines for scripts/bench_report.py (virtual-time only;
  // jobs/sec is computed there from host wall time, like SIMSPEED).
  for (const serve::FleetSoakResult& r : results) {
    std::printf("[fleet] point=%s shards=%u slo=%.4f goodput=%.6f makespan=%llu steals=%llu "
                "batches=%llu\n",
                r.name.c_str(), r.shards, r.slo_attainment, r.goodput,
                static_cast<unsigned long long>(r.makespan),
                static_cast<unsigned long long>(r.steals),
                static_cast<unsigned long long>(r.batches));
  }

  // The E22 acceptance line: a >= 4-shard fleet with both mechanisms on must
  // beat the 1-shard baseline on SLO attainment at the same offered load.
  const serve::FleetSoakResult& base = results[0];   // 1shard
  const serve::FleetSoakResult& fleet = results[2];  // 4shard, batch + steal
  const bool scaled = fleet.slo_attainment > base.slo_attainment;
  std::printf("\n%zu jobs x %zu points: 4-shard SLO %.4f vs 1-shard %.4f (%s), "
              "%llu violation(s)\n",
              trace.size(), grid.size(), fleet.slo_attainment, base.slo_attainment,
              scaled ? "fleet scales" : "FLEET DOES NOT SCALE",
              static_cast<unsigned long long>(violations));

  if (!report_out.empty()) {
    std::ofstream f(report_out);
    if (!f) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n", report_out.c_str());
      std::exit(2);
    }
    f << serve::fleet_report_json(results, trace_cfg);
    std::printf("[e22] fleet report written to %s\n", report_out.c_str());
  }
}

/// Strip --fleet-jobs=N / --report-out=F (same discipline as the shared
/// bench flags: consume before benchmark::Initialize).
void e22_args(int& argc, char** argv, std::size_t& fleet_jobs, std::string& report_out) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fleet-jobs=", 13) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[i] + 13, &end, 10);
      if (*end != '\0' || v < 1 || v > 1'000'000) {
        std::fprintf(
            stderr,
            "error: invalid --fleet-jobs value '%s': expected an integer in [1, 1000000]\n",
            argv[i] + 13);
        std::exit(2);
      }
      fleet_jobs = static_cast<std::size_t>(v);
      continue;
    }
    if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t fleet_jobs = 600;
  std::string report_out;
  e22_args(argc, argv, fleet_jobs, report_out);
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  run_e22(runner, fleet_jobs, report_out);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(8), "daxpy", 2048, 8);
  register_offload_benchmark("fleet_soak/extended8/M=8", mco::soc::SocConfig::extended(8),
                             "daxpy", 2048, 8);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
