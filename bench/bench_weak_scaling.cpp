// E14 — weak scaling: grow the problem with the machine (N = 1024·M).
//
// Strong scaling (Fig. 1 left) fixes N and shrinks per-cluster work until
// overheads dominate. Weak scaling fixes the per-cluster work instead — and
// exposes a different wall: the shared HBM bandwidth. The data term is
// N/4 = 256·M cycles, growing linearly with the machine, while compute per
// cluster stays constant; efficiency therefore decays as the fabric grows
// no matter how cheap dispatch is. Offload overhead optimization (the
// paper) and memory-system scaling are orthogonal problems.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

void print_table() {
  banner("E14: weak scaling — DAXPY with N = 1024 x M",
         "systems-level extension of SIII, DATE 2024");

  util::TablePrinter table({"M", "N", "baseline[cyc]", "extended[cyc]", "ideal[cyc]",
                            "efficiency", "HBM-bound frac"});
  sim::Cycles ext1 = 0;
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const std::uint64_t n = 1024ull * m;
    const auto base = daxpy_cycles(soc::SocConfig::baseline(32), n, m);
    const auto ext = daxpy_cycles(soc::SocConfig::extended(32), n, m);
    if (m == 1) ext1 = ext;
    // Ideal weak scaling: constant runtime (the M=1 time).
    const double eff = static_cast<double>(ext1) / static_cast<double>(ext);
    const double data_frac = (static_cast<double>(n) / 4.0) / static_cast<double>(ext);
    table.add_row({fmt_u64(m), fmt_u64(n), fmt_u64(base), fmt_u64(ext), fmt_u64(ext1),
                   fmt_fix(eff), fmt_fix(data_frac, 2)});
  }
  table.print(std::cout);
  std::printf("\nper-cluster work is constant, yet runtime grows ~linearly: the shared\n"
              "12-doubles/cycle HBM channel serializes the growing data volume (its\n"
              "share of the runtime rises toward 1). Dispatch/sync optimization cannot\n"
              "help here — weak scaling needs memory-system scaling.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_table();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "daxpy", 32768, 32);
  register_offload_benchmark("weak_scaling/extended/M=32", mco::soc::SocConfig::extended(32),
                             "daxpy", 32768, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
