// E14 — weak scaling: grow the problem with the machine (N = 1024·M).
//
// Strong scaling (Fig. 1 left) fixes N and shrinks per-cluster work until
// overheads dominate. Weak scaling fixes the per-cluster work instead — and
// exposes a different wall: the shared HBM bandwidth. The data term is
// N/4 = 256·M cycles, growing linearly with the machine, while compute per
// cluster stays constant; efficiency therefore decays as the fabric grows
// no matter how cheap dispatch is. Offload overhead optimization (the
// paper) and memory-system scaling are orthogonal problems.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<unsigned> kMs{1, 2, 4, 8, 16, 32};

void print_table(exp::SweepRunner& runner) {
  banner("E14: weak scaling — DAXPY with N = 1024 x M",
         "systems-level extension of SIII, DATE 2024");

  // Weak scaling couples N to M (N = 1024·M), so this is an explicit point
  // list rather than a rectangular grid.
  std::vector<exp::RunPoint> points_to_run;
  for (const unsigned m : kMs) {
    const std::uint64_t n = 1024ull * m;
    points_to_run.push_back(point("baseline", soc::SocConfig::baseline(32), "daxpy", n, m));
    points_to_run.push_back(point("extended", soc::SocConfig::extended(32), "daxpy", n, m));
  }
  const exp::ResultSet rs = runner.run("weak_scaling", points_to_run);

  util::TablePrinter table({"M", "N", "baseline[cyc]", "extended[cyc]", "ideal[cyc]",
                            "efficiency", "HBM-bound frac"});
  const sim::Cycles ext1 = rs.cycles("extended", "daxpy", 1024, 1);
  for (const unsigned m : kMs) {
    const std::uint64_t n = 1024ull * m;
    const auto base = rs.cycles("baseline", "daxpy", n, m);
    const auto ext = rs.cycles("extended", "daxpy", n, m);
    // Ideal weak scaling: constant runtime (the M=1 time).
    const double eff = static_cast<double>(ext1) / static_cast<double>(ext);
    const double data_frac = (static_cast<double>(n) / 4.0) / static_cast<double>(ext);
    table.add_row({fmt_u64(m), fmt_u64(n), fmt_u64(base), fmt_u64(ext), fmt_u64(ext1),
                   fmt_fix(eff), fmt_fix(data_frac, 2)});
  }
  table.print(std::cout);
  std::printf("\nper-cluster work is constant, yet runtime grows ~linearly: the shared\n"
              "12-doubles/cycle HBM channel serializes the growing data volume (its\n"
              "share of the runtime rises toward 1). Dispatch/sync optimization cannot\n"
              "help here — weak scaling needs memory-system scaling.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 32768, 32);
  register_offload_benchmark("weak_scaling/extended/M=32", mco::soc::SocConfig::extended(32),
                             "daxpy", 32768, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
