// E21 — simulator fast-path throughput: simulated cycles per wall-second.
//
// Unlike E1–E20 this bench measures the *simulator*, not the simulated SoC:
// how fast the event loop retires events, on the calendar-queue fast engine
// versus the original comparator-heap engine (EngineKind::kLegacyHeap, kept
// verbatim as the pre-optimization reference). Four workloads isolate the
// layers of docs/performance.md's cost model:
//
//   queue_micro   — pure kernel: self-rescheduling actors exercising wheel,
//                   same-cycle lanes, priorities and the overflow map;
//   e1_daxpy      — the full E1 sweep (fig1_left workload) per engine; its
//                   sim-cycles/wall-second ratio is the headline series that
//                   scripts/bench_report.py records in BENCH_sweep.json;
//   sink_dispatch — TraceSink paths: dormant, raw observer, boxed observer,
//                   arena-interned storage;
//   arena         — raw bump-allocator throughput and reuse-after-reset.
//
// Tables are deterministic (counts and simulated cycles only — byte-identical
// on any machine and --jobs value, and identical across the two engines by
// construction, which the "ok" column asserts). Wall-clock rates are
// machine-dependent and therefore quarantined on the trailing
// "[simspeed] ..." machine lines, which bench_report.py parses.
#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "sim/arena.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace {

using namespace mco;
using namespace mco::bench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------- queue micro

struct MicroState {
  sim::Simulator* sim = nullptr;
  std::uint64_t remaining = 0;
  std::array<std::uint32_t, 8> rng{};
};

/// One self-rescheduling actor: every execution draws a deterministic LCG
/// delta (0 = same cycle, 1..12 = wheel, sporadic 1500 = overflow map) and a
/// priority, then schedules its successor. 16 bytes — inline in EventFn.
struct Actor {
  MicroState* st;
  unsigned id;
  void operator()() const {
    if (st->remaining == 0) return;
    --st->remaining;
    std::uint32_t& r = st->rng[id];
    r = r * 1664525u + 1013904223u;
    sim::Cycles d = (r >> 16) % 13u;
    if ((r & 63u) == 0) d = 1500;
    const auto prio = static_cast<sim::Priority>((r >> 8) % 5u);
    st->sim->schedule_in(d, Actor{st, id}, prio);
  }
};

struct QueueMicroResult {
  std::uint64_t events = 0;
  std::uint64_t final_cycle = 0;
  std::uint64_t heap_spills = 0;
  double best_seconds = 0.0;
};

QueueMicroResult run_queue_micro(sim::EngineKind engine, std::uint64_t budget, unsigned reps) {
  QueueMicroResult out;
  out.best_seconds = 1e100;
  for (unsigned rep = 0; rep < reps; ++rep) {
    sim::Simulator sim(engine);
    MicroState st;
    st.sim = &sim;
    st.remaining = budget;
    for (unsigned i = 0; i < st.rng.size(); ++i) {
      st.rng[i] = 0x9e3779b9u * (i + 1);
      sim.schedule_in(i % 3, Actor{&st, i});
    }
    const auto t0 = Clock::now();
    sim.run();
    const double s = seconds_since(t0);
    out.events = sim.events_executed();
    out.final_cycle = sim.now();
    out.heap_spills = sim.event_heap_spills();
    if (s < out.best_seconds) out.best_seconds = s;
  }
  return out;
}

// ---------------------------------------------------------------- E1 workload

struct E1Result {
  std::uint64_t points = 0;
  std::uint64_t sim_cycles = 0;
  double best_seconds = 0.0;
};

/// The fig1_left sweep (baseline(64) + extended(64), M in {1..64}), run
/// serially on one engine. Legacy also restores eager HBM zeroing — the
/// pre-PR Soc construction cost is part of what the fast path removed.
E1Result run_e1(bool legacy, unsigned reps) {
  const std::vector<unsigned> ms{1, 2, 4, 8, 16, 32, 64};
  E1Result out;
  out.best_seconds = 1e100;
  for (unsigned rep = 0; rep < reps; ++rep) {
    std::uint64_t cycles = 0;
    std::uint64_t points = 0;
    const auto t0 = Clock::now();
    for (const bool extended : {false, true}) {
      for (const unsigned m : ms) {
        soc::SocConfig cfg =
            extended ? soc::SocConfig::extended(64) : soc::SocConfig::baseline(64);
        cfg.sim.legacy_heap_queue = legacy;
        cfg.sim.eager_hbm_zero = legacy;
        cycles += daxpy_cycles(cfg, 1024, m);
        ++points;
      }
    }
    const double s = seconds_since(t0);
    out.points = points;
    out.sim_cycles = cycles;
    if (s < out.best_seconds) out.best_seconds = s;
  }
  return out;
}

// -------------------------------------------------------------- sink dispatch

struct SinkResult {
  std::uint64_t calls = 0;
  std::uint64_t observed_raw = 0;
  std::uint64_t observed_boxed = 0;
  std::uint64_t stored = 0;
  std::uint64_t interned_bytes = 0;
  bool reuse_ok = false;
  double dormant_seconds = 0.0;
  double raw_seconds = 0.0;
  double boxed_seconds = 0.0;
  double storage_seconds = 0.0;
};

SinkResult run_sink_dispatch(std::uint64_t calls, std::uint64_t stored_records) {
  SinkResult out;
  out.calls = calls;
  sim::TraceSink sink;

  // Dormant: armed() is false, the call is a flag test and return.
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < calls; ++i)
    sink.record(i, "soc.cluster0", "doorbell");
  out.dormant_seconds = seconds_since(t0);

  // Raw observer: one function-pointer hop into a counting callback.
  std::uint64_t seen = 0;
  sink.set_observer(
      [](void* ctx, const sim::TraceRecord&) { ++*static_cast<std::uint64_t*>(ctx); }, &seen);
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < calls; ++i)
    sink.record(i, "soc.cluster0", "doorbell");
  out.raw_seconds = seconds_since(t0);
  out.observed_raw = seen;

  // Boxed observer: std::function compatibility adapter over the same path.
  std::uint64_t seen_boxed = 0;
  sink.set_observer([&seen_boxed](const sim::TraceRecord&) { ++seen_boxed; });
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < calls; ++i)
    sink.record(i, "soc.cluster0", "doorbell");
  out.boxed_seconds = seconds_since(t0);
  out.observed_boxed = seen_boxed;

  // Storage: interned compact records. Fill, clear, refill — the second fill
  // must not grow the arena (reuse-after-reset), which reuse_ok asserts.
  sink.set_observer(nullptr, nullptr);
  sink.enable(true);
  const char* const details[4] = {"tile=0", "tile=1", "tile=2", "tile=3"};
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < stored_records; ++i)
    sink.record(i, "soc.cluster0", "dma_in_done", details[i % 4]);
  out.storage_seconds = seconds_since(t0);
  out.stored = sink.stored();
  out.interned_bytes = sink.interned_bytes();
  const std::size_t bytes_first = sink.interned_bytes();
  sink.clear();
  for (std::uint64_t i = 0; i < stored_records; ++i)
    sink.record(i, "soc.cluster0", "dma_in_done", details[i % 4]);
  out.reuse_ok = sink.stored() == stored_records && sink.interned_bytes() == bytes_first;
  return out;
}

// ---------------------------------------------------------------- arena micro

struct ArenaResult {
  std::uint64_t allocs = 0;
  std::uint64_t bytes_per_round = 0;
  std::uint64_t capacity = 0;
  bool reuse_ok = false;
  double best_seconds = 0.0;
};

ArenaResult run_arena_micro(std::uint64_t allocs_per_round, unsigned rounds) {
  ArenaResult out;
  out.allocs = allocs_per_round * rounds;
  out.best_seconds = 1e100;
  sim::Arena arena;
  std::size_t capacity_after_first = 0;
  for (unsigned round = 0; round < rounds; ++round) {
    arena.reset();
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < allocs_per_round; ++i) {
      void* p = arena.allocate(16 + (i % 5) * 8, 8);
      benchmark::DoNotOptimize(p);
    }
    const double s = seconds_since(t0);
    if (s < out.best_seconds) out.best_seconds = s;
    out.bytes_per_round = arena.bytes_allocated();
    if (round == 0) capacity_after_first = arena.capacity();
  }
  out.capacity = arena.capacity();
  // Reset-reuse contract: rounds after the first allocate no new chunks.
  out.reuse_ok = arena.capacity() == capacity_after_first;
  return out;
}

// -------------------------------------------------------------------- driver

struct SimspeedArgs {
  double assert_speedup = 0.0;  // 0 = no assertion
  unsigned reps = 3;
};

SimspeedArgs simspeed_args(int& argc, char** argv) {
  SimspeedArgs out;
  const auto die = [](const char* msg, const char* v) {
    std::fprintf(stderr, "error: %s '%s'\n", msg, v);
    std::exit(2);
  };
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--assert-speedup=", 17) == 0) {
      char* end = nullptr;
      out.assert_speedup = std::strtod(arg + 17, &end);
      if (end == arg + 17 || *end != '\0' || out.assert_speedup <= 0.0)
        die("--assert-speedup expects a positive number, got", arg + 17);
      continue;
    }
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      char* end = nullptr;
      const long v = std::strtol(arg + 7, &end, 10);
      if (end == arg + 7 || *end != '\0' || v < 1 || v > 100)
        die("--reps expects an integer in [1, 100], got", arg + 7);
      out.reps = static_cast<unsigned>(v);
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
  return out;
}

std::string fmt_rate(double per_sec) { return util::format("%.3e", per_sec); }

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = bench_args(argc, argv);
  const SimspeedArgs sargs = simspeed_args(argc, argv);
  (void)args;

  banner("E21: simulator fast-path throughput (sim-cycles per wall-second)",
         "n/a — simulator engineering bench (docs/performance.md)");

  constexpr std::uint64_t kMicroBudget = 400000;
  const QueueMicroResult qfast =
      run_queue_micro(sim::EngineKind::kFast, kMicroBudget, sargs.reps);
  const QueueMicroResult qlegacy =
      run_queue_micro(sim::EngineKind::kLegacyHeap, kMicroBudget, sargs.reps);

  const E1Result efast = run_e1(/*legacy=*/false, sargs.reps);
  const E1Result elegacy = run_e1(/*legacy=*/true, sargs.reps);

  const SinkResult sink = run_sink_dispatch(/*calls=*/2000000, /*stored_records=*/200000);
  const ArenaResult arena = run_arena_micro(/*allocs_per_round=*/500000, /*rounds=*/4);

  util::TablePrinter engines({"workload", "engine", "events", "sim_cycles", "heap_spills", "ok"});
  engines.add_row({"queue_micro", "fast", fmt_u64(qfast.events), fmt_u64(qfast.final_cycle),
                   fmt_u64(qfast.heap_spills),
                   qfast.final_cycle == qlegacy.final_cycle && qfast.events == qlegacy.events
                       ? "yes"
                       : "NO"});
  engines.add_row({"queue_micro", "legacy", fmt_u64(qlegacy.events),
                   fmt_u64(qlegacy.final_cycle), "n/a", "yes"});
  engines.add_row({"e1_daxpy", "fast", fmt_u64(efast.points), fmt_u64(efast.sim_cycles), "0",
                   efast.sim_cycles == elegacy.sim_cycles ? "yes" : "NO"});
  engines.add_row({"e1_daxpy", "legacy", fmt_u64(elegacy.points), fmt_u64(elegacy.sim_cycles),
                   "n/a", "yes"});
  engines.print(std::cout);
  std::printf("(queue_micro sim_cycles column = final simulated cycle; e1_daxpy events\n"
              "column = sweep points. 'ok' asserts both engines agree bit-exactly.)\n\n");

  util::TablePrinter sinks({"dispatch_path", "calls", "seen/stored", "reuse_ok"});
  sinks.add_row({"dormant", fmt_u64(sink.calls), "0", "-"});
  sinks.add_row({"observer_raw", fmt_u64(sink.calls), fmt_u64(sink.observed_raw), "-"});
  sinks.add_row({"observer_boxed", fmt_u64(sink.calls), fmt_u64(sink.observed_boxed), "-"});
  sinks.add_row({"storage", fmt_u64(sink.stored),
                 fmt_u64(sink.stored) + " (" + fmt_u64(sink.interned_bytes) + " B interned)",
                 sink.reuse_ok ? "yes" : "NO"});
  sinks.print(std::cout);

  util::TablePrinter arenas({"workload", "allocs", "bytes/round", "capacity", "reuse_ok"});
  arenas.add_row({"arena", fmt_u64(arena.allocs), fmt_u64(arena.bytes_per_round),
                  fmt_u64(arena.capacity), arena.reuse_ok ? "yes" : "NO"});
  arenas.print(std::cout);

  const double fast_rate = static_cast<double>(efast.sim_cycles) / efast.best_seconds;
  const double legacy_rate = static_cast<double>(elegacy.sim_cycles) / elegacy.best_seconds;
  const double speedup = fast_rate / legacy_rate;
  const double qfast_rate = static_cast<double>(qfast.events) / qfast.best_seconds;
  const double qlegacy_rate = static_cast<double>(qlegacy.events) / qlegacy.best_seconds;

  std::printf("\nmachine-dependent rates (NOT part of the deterministic artifact):\n");
  std::printf("[simspeed] workload=queue_micro fast_events_per_sec=%s legacy_events_per_sec=%s "
              "speedup=%.2f\n",
              fmt_rate(qfast_rate).c_str(), fmt_rate(qlegacy_rate).c_str(),
              qfast_rate / qlegacy_rate);
  std::printf("[simspeed] workload=e1_daxpy sim_cycles_per_sec=%s "
              "legacy_sim_cycles_per_sec=%s speedup_vs_legacy=%.2f\n",
              fmt_rate(fast_rate).c_str(), fmt_rate(legacy_rate).c_str(), speedup);
  std::printf("[simspeed] workload=sink_dispatch dormant_calls_per_sec=%s "
              "raw_calls_per_sec=%s boxed_calls_per_sec=%s stored_records_per_sec=%s\n",
              fmt_rate(static_cast<double>(sink.calls) / sink.dormant_seconds).c_str(),
              fmt_rate(static_cast<double>(sink.calls) / sink.raw_seconds).c_str(),
              fmt_rate(static_cast<double>(sink.calls) / sink.boxed_seconds).c_str(),
              fmt_rate(static_cast<double>(sink.stored) / sink.storage_seconds).c_str());
  std::printf("[simspeed] workload=arena allocs_per_sec=%s\n",
              fmt_rate(static_cast<double>(arena.allocs) / (arena.best_seconds * 4.0)).c_str());

  std::printf("\n[sweep] points=%llu sim_cycles=%llu\n",
              static_cast<unsigned long long>(efast.points),
              static_cast<unsigned long long>(efast.sim_cycles));

  bool ok = qfast.final_cycle == qlegacy.final_cycle && qfast.events == qlegacy.events &&
            efast.sim_cycles == elegacy.sim_cycles && sink.observed_raw == sink.calls &&
            sink.observed_boxed == sink.calls && sink.reuse_ok && arena.reuse_ok;
  if (sim::TraceSink::kCompiledOut) {
    // MCO_FAST builds compile tracing out: the sink sections legitimately see
    // zero records; only the engine-equivalence checks remain meaningful.
    ok = qfast.final_cycle == qlegacy.final_cycle && efast.sim_cycles == elegacy.sim_cycles;
  }
  if (!ok) {
    std::fprintf(stderr, "bench_simspeed: deterministic cross-checks FAILED\n");
    return 1;
  }
  if (sargs.assert_speedup > 0.0 && speedup < sargs.assert_speedup) {
    std::fprintf(stderr,
                 "bench_simspeed: speedup_vs_legacy %.2f below required %.2f "
                 "(fast %.3e, legacy %.3e sim-cycles/s)\n",
                 speedup, sargs.assert_speedup, fast_rate, legacy_rate);
    return 1;
  }

  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024,
                                   32);
  register_offload_benchmark("simspeed/e1_point/fast", mco::soc::SocConfig::extended(64),
                             "daxpy", 1024, 32);
  {
    mco::soc::SocConfig legacy_cfg = mco::soc::SocConfig::extended(64);
    legacy_cfg.sim.legacy_heap_queue = true;
    legacy_cfg.sim.eager_hbm_zero = true;
    register_offload_benchmark("simspeed/e1_point/legacy", legacy_cfg, "daxpy", 1024, 32);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
