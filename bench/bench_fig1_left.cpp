// E1 — Fig. 1 (left): runtime of a 1024-dimension DAXPY job for various
// numbers of clusters, baseline vs. extended implementation.
//
// Paper shape to reproduce: the baseline curve has a global minimum around
// M ≈ 4–8 (sequential dispatch overhead grows linearly in M while per-cluster
// work shrinks); the extended curve decreases monotonically up to 32
// clusters, with > 300 cycles of difference at M = 32.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<unsigned> kMs{1, 2, 4, 8, 16, 32, 64};

exp::ExperimentSpec make_spec() {
  exp::ExperimentSpec spec;
  spec.name = "fig1_left";
  spec.configs = {{"baseline", soc::SocConfig::baseline(64)},
                  {"extended", soc::SocConfig::extended(64)}};
  spec.ms = kMs;
  return spec;
}

void print_table(exp::SweepRunner& runner) {
  banner("E1: DAXPY N=1024 runtime vs. number of clusters",
         "Fig. 1 (left), Colagrande & Benini, DATE 2024");

  const exp::ResultSet rs = runner.run(make_spec());

  util::TablePrinter table({"M", "baseline[cyc]", "extended[cyc]", "diff[cyc]", "speedup"});
  std::uint64_t min_base = ~0ull;
  unsigned min_base_m = 0;
  for (const unsigned m : kMs) {
    const auto base = rs.cycles("baseline", "daxpy", 1024, m);
    const auto ext = rs.cycles("extended", "daxpy", 1024, m);
    if (base < min_base) {
      min_base = base;
      min_base_m = m;
    }
    table.add_row({fmt_u64(m), fmt_u64(base), fmt_u64(ext),
                   fmt_u64(base - ext),
                   fmt_fix(static_cast<double>(base) / static_cast<double>(ext))});
  }
  table.print(std::cout);
  std::printf("\nbaseline global minimum at M=%u (%llu cycles) — paper: \"above four\n"
              "clusters the offload overhead starts to dominate\"\n",
              min_base_m, static_cast<unsigned long long>(min_base));
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::baseline(32), "daxpy", 1024, 32);
  for (const unsigned m : {1u, 4u, 8u, 32u}) {
    register_offload_benchmark("fig1_left/baseline/M=" + std::to_string(m),
                               mco::soc::SocConfig::baseline(32), "daxpy", 1024, m);
    register_offload_benchmark("fig1_left/extended/M=" + std::to_string(m),
                               mco::soc::SocConfig::extended(32), "daxpy", 1024, m);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
