// E1 — Fig. 1 (left): runtime of a 1024-dimension DAXPY job for various
// numbers of clusters, baseline vs. extended implementation.
//
// Paper shape to reproduce: the baseline curve has a global minimum around
// M ≈ 4–8 (sequential dispatch overhead grows linearly in M while per-cluster
// work shrinks); the extended curve decreases monotonically up to 32
// clusters, with > 300 cycles of difference at M = 32.
#include "bench_common.h"

namespace {

using namespace mco;
using namespace mco::bench;

void print_table() {
  banner("E1: DAXPY N=1024 runtime vs. number of clusters",
         "Fig. 1 (left), Colagrande & Benini, DATE 2024");

  util::TablePrinter table({"M", "baseline[cyc]", "extended[cyc]", "diff[cyc]", "speedup"});
  std::uint64_t min_base = ~0ull;
  unsigned min_base_m = 0;
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto base = daxpy_cycles(soc::SocConfig::baseline(64), 1024, m);
    const auto ext = daxpy_cycles(soc::SocConfig::extended(64), 1024, m);
    if (base < min_base) {
      min_base = base;
      min_base_m = m;
    }
    table.add_row({fmt_u64(m), fmt_u64(base), fmt_u64(ext),
                   fmt_u64(base - ext),
                   fmt_fix(static_cast<double>(base) / static_cast<double>(ext))});
  }
  table.print(std::cout);
  std::printf("\nbaseline global minimum at M=%u (%llu cycles) — paper: \"above four\n"
              "clusters the offload overhead starts to dominate\"\n",
              min_base_m, static_cast<unsigned long long>(min_base));
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_table();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::baseline(32), "daxpy", 1024, 32);
  for (const unsigned m : {1u, 4u, 8u, 32u}) {
    register_offload_benchmark("fig1_left/baseline/M=" + std::to_string(m),
                               mco::soc::SocConfig::baseline(32), "daxpy", 1024, m);
    register_offload_benchmark("fig1_left/extended/M=" + std::to_string(m),
                               mco::soc::SocConfig::extended(32), "daxpy", 1024, m);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
