// E23 — fleet chaos: shard crash/partition arcs against a saturated fleet,
// with exactly-once failover accounting and time-to-recover verdicts.
//
// One seeded job trace (the E22 generator, serve::fleet_trace_config) is
// served by a 4-shard serve::FleetRouter per grid point while a scripted
// fault::FleetFaultPlan kills or partitions shards mid-saturation: the
// fault-free control, the headline 1-of-4 crash, a router partition whose
// buffered completions replay as suppressed stale completions at heal, a
// staggered double crash, a zero-failover-budget ablation and a seeded
// random storm. Reported per point: SLO attainment (whole episode and after
// the hit), failover traffic (re-dispatches, re-queues, lost jobs, stale
// completions), time_to_recover and p99_slack, and the invariant audits —
// serve_exactly_once proves no job was lost or double-executed. The
// "mco-chaos-v1" document is byte-compared across --jobs levels by
// tests/test_fleet_chaos.cpp.
//
// Point-level parallelism uses exp::SweepRunner::map with index-addressed
// slots; each point's replay is serial and virtual-time deterministic, so
// every table, the machine-readable [chaos] lines and the report document
// are byte-identical for any --jobs.
//
// Extra flags (stripped before benchmark::Initialize):
//   --chaos-jobs=N   jobs in the generated trace (default 600)
//   --report-out=F   write the "mco-chaos-v1" JSON report to F
#include "bench_common.h"

#include <cstring>
#include <fstream>

#include "serve/fleet_chaos.h"

namespace {

using namespace mco;
using namespace mco::bench;

void run_e23(exp::SweepRunner& runner, std::size_t chaos_jobs, const std::string& report_out) {
  banner("E23: fleet chaos — shard fault domains, exactly-once failover",
         "crash-stop and partition arcs against a saturated 4-shard fleet");

  serve::SoakTraceConfig trace_cfg = serve::fleet_trace_config(chaos_jobs);
  trace_cfg.seed = kSeed;
  serve::FleetSoakConfig run_cfg;
  const std::vector<serve::ServeJob> trace = serve::generate_trace(trace_cfg, run_cfg.model);
  const std::vector<serve::FleetChaosPoint> grid = serve::fleet_chaos_grid(chaos_jobs);

  const std::vector<serve::FleetChaosResult> results =
      runner.map(grid, [&](const serve::FleetChaosPoint& pt) {
        serve::FleetChaosResult r = serve::run_fleet_chaos_point(pt, trace, run_cfg);
        runner.note_cycles(r.makespan);
        return r;
      });

  util::TablePrinter table({"point", "budget", "met", "failed", "SLO %", "SLO>hit %",
                            "failovers", "lost", "stale", "ttr_us", "p99_slack",
                            "violations"});
  std::uint64_t violations = 0;
  for (const serve::FleetChaosResult& r : results) {
    violations += r.soc_violations + r.serve_violations;
    table.add_row({r.name, fmt_u64(r.failover_budget), fmt_u64(r.met), fmt_u64(r.failed),
                   fmt_fix(100.0 * r.slo_attainment, 1), fmt_fix(100.0 * r.slo_after_mark, 1),
                   fmt_u64(r.failover_redispatches + r.failover_requeues),
                   fmt_u64(r.failover_lost), fmt_u64(r.stale_completions),
                   fmt_fix(static_cast<double>(r.time_to_recover) / 1000.0, 1),
                   fmt_fix(r.p99_slack, 1), fmt_u64(r.soc_violations + r.serve_violations)});
  }
  table.print(std::cout);

  // Machine-readable lines for scripts/bench_report.py and the
  // metrics_regression.py anchor (virtual-time only).
  for (const serve::FleetChaosResult& r : results) {
    std::printf(
        "[chaos] point=%s shards=%u budget=%u slo=%.4f slo_after=%.4f ttr_us=%.1f "
        "p99_slack=%.1f failovers=%llu lost=%llu stale=%llu fails=%llu partitions=%llu "
        "heals=%llu violations=%llu\n",
        r.name.c_str(), r.shards, r.failover_budget, r.slo_attainment, r.slo_after_mark,
        static_cast<double>(r.time_to_recover) / 1000.0, r.p99_slack,
        static_cast<unsigned long long>(r.failover_redispatches + r.failover_requeues),
        static_cast<unsigned long long>(r.failover_lost),
        static_cast<unsigned long long>(r.stale_completions),
        static_cast<unsigned long long>(r.shard_fails),
        static_cast<unsigned long long>(r.shard_partitions),
        static_cast<unsigned long long>(r.heals),
        static_cast<unsigned long long>(r.soc_violations + r.serve_violations));
  }

  // The E23 acceptance line: the headline crash point must recover the SLO
  // after the hit with zero lost jobs and a clean exactly-once audit.
  const serve::FleetChaosResult& crash = results[1];  // crash_1of4
  const bool recovered = crash.slo_after_mark >= serve::kRecoverTarget &&
                         crash.failover_lost == 0 && crash.serve_violations == 0;
  std::printf("\n%zu jobs x %zu points: crash_1of4 post-hit SLO %.4f, ttr %.1fus, "
              "%llu lost (%s), %llu violation(s)\n",
              trace.size(), grid.size(), crash.slo_after_mark,
              static_cast<double>(crash.time_to_recover) / 1000.0,
              static_cast<unsigned long long>(crash.failover_lost),
              recovered ? "fleet recovers" : "FLEET DOES NOT RECOVER",
              static_cast<unsigned long long>(violations));

  if (!report_out.empty()) {
    std::ofstream f(report_out);
    if (!f) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n", report_out.c_str());
      std::exit(2);
    }
    f << serve::chaos_report_json(results, trace_cfg);
    std::printf("[e23] chaos report written to %s\n", report_out.c_str());
  }
}

/// Strip --chaos-jobs=N / --report-out=F (same discipline as the shared
/// bench flags: consume before benchmark::Initialize).
void e23_args(int& argc, char** argv, std::size_t& chaos_jobs, std::string& report_out) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--chaos-jobs=", 13) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[i] + 13, &end, 10);
      if (*end != '\0' || v < 1 || v > 1'000'000) {
        std::fprintf(
            stderr,
            "error: invalid --chaos-jobs value '%s': expected an integer in [1, 1000000]\n",
            argv[i] + 13);
        std::exit(2);
      }
      chaos_jobs = static_cast<std::size_t>(v);
      continue;
    }
    if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t chaos_jobs = 600;
  std::string report_out;
  e23_args(argc, argv, chaos_jobs, report_out);
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  run_e23(runner, chaos_jobs, report_out);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(8), "daxpy", 2048, 8);
  register_offload_benchmark("fleet_chaos/extended8/M=8", mco::soc::SocConfig::extended(8),
                             "daxpy", 2048, 8);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
