// E10 — pipelined back-to-back offloads (extension of the paper's
// fine-grained-execution motivation).
//
// Applications like the solver example launch small kernels continuously.
// Software-pipelining the runtime — marshalling job k+1 while the
// accelerator executes job k — hides the marshalling cost of every job but
// the first. This bench measures effective per-job latency for trains of
// DAXPY jobs, serial vs. pipelined, on both designs.
#include "bench_common.h"

#include "kernels/blas1.h"

namespace {

using namespace mco;
using namespace mco::bench;

sim::Cycles run_train(const soc::SocConfig& cfg, unsigned jobs, std::uint64_t n, unsigned m,
                      bool pipelined) {
  soc::Soc soc(cfg);
  sim::Rng rng(kSeed);
  std::vector<kernels::JobArgs> train;
  for (unsigned i = 0; i < jobs; ++i) {
    train.push_back(
        soc::prepare_workload(soc, soc.kernels().by_name("daxpy"), n, m, rng).args);
  }
  return soc.runtime().offload_sequence_blocking(std::move(train), m, pipelined).total();
}

struct TrainPoint {
  bool extended = false;
  std::uint64_t n = 0;
};

struct TrainResult {
  sim::Cycles serial = 0;
  sim::Cycles pipelined = 0;
};

void print_table(exp::SweepRunner& runner) {
  banner("E10: back-to-back offload trains — serial vs. pipelined runtime",
         "extension of SI motivation (fine-grained execution), DATE 2024");

  const unsigned jobs = 8;
  const unsigned m = 8;
  std::vector<TrainPoint> grid;
  for (const bool extended : {false, true}) {
    for (const std::uint64_t n : {256ull, 1024ull, 4096ull}) grid.push_back({extended, n});
  }
  const std::vector<TrainResult> results = runner.map(grid, [&](const TrainPoint& p) {
    const soc::SocConfig cfg =
        p.extended ? soc::SocConfig::extended(32) : soc::SocConfig::baseline(32);
    TrainResult r;
    r.serial = run_train(cfg, jobs, p.n, m, false);
    r.pipelined = run_train(cfg, jobs, p.n, m, true);
    runner.note_cycles(r.serial);
    runner.note_cycles(r.pipelined);
    return r;
  });

  util::TablePrinter table({"design", "N", "M", "serial[cyc]", "pipelined[cyc]",
                            "saved/job", "per-job latency"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const TrainResult& r = results[i];
    table.add_row({grid[i].extended ? "extended" : "baseline", fmt_u64(grid[i].n), fmt_u64(m),
                   fmt_u64(r.serial), fmt_u64(r.pipelined),
                   fmt_fix(static_cast<double>(r.serial - r.pipelined) / (jobs - 1), 1),
                   fmt_u64(r.pipelined / jobs)});
  }
  table.print(std::cout);
  std::printf("\n%u-job trains; pipelining hides ~the marshalling cost (%u+ cycles) of\n"
              "every job but the first, on top of the paper's hardware extensions.\n",
              jobs, 96);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 8);
  benchmark::RegisterBenchmark("pipeline/extended/8jobs", [](benchmark::State& state) {
    sim::Cycles cycles = 0;
    for (auto _ : state) {
      cycles = run_train(mco::soc::SocConfig::extended(32), 8, 1024, 8, true);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
