// E10 — pipelined back-to-back offloads (extension of the paper's
// fine-grained-execution motivation).
//
// Applications like the solver example launch small kernels continuously.
// Software-pipelining the runtime — marshalling job k+1 while the
// accelerator executes job k — hides the marshalling cost of every job but
// the first. This bench measures effective per-job latency for trains of
// DAXPY jobs, serial vs. pipelined, on both designs.
#include "bench_common.h"

#include "kernels/blas1.h"

namespace {

using namespace mco;
using namespace mco::bench;

sim::Cycles run_train(const soc::SocConfig& cfg, unsigned jobs, std::uint64_t n, unsigned m,
                      bool pipelined) {
  soc::Soc soc(cfg);
  sim::Rng rng(kSeed);
  std::vector<kernels::JobArgs> train;
  for (unsigned i = 0; i < jobs; ++i) {
    train.push_back(
        soc::prepare_workload(soc, soc.kernels().by_name("daxpy"), n, m, rng).args);
  }
  return soc.runtime().offload_sequence_blocking(std::move(train), m, pipelined).total();
}

void print_table() {
  banner("E10: back-to-back offload trains — serial vs. pipelined runtime",
         "extension of SI motivation (fine-grained execution), DATE 2024");

  const unsigned jobs = 8;
  util::TablePrinter table({"design", "N", "M", "serial[cyc]", "pipelined[cyc]",
                            "saved/job", "per-job latency"});
  for (const bool extended : {false, true}) {
    for (const std::uint64_t n : {256ull, 1024ull, 4096ull}) {
      const unsigned m = 8;
      const soc::SocConfig cfg =
          extended ? soc::SocConfig::extended(32) : soc::SocConfig::baseline(32);
      const auto serial = run_train(cfg, jobs, n, m, false);
      const auto pipelined = run_train(cfg, jobs, n, m, true);
      table.add_row({extended ? "extended" : "baseline", fmt_u64(n), fmt_u64(m),
                     fmt_u64(serial), fmt_u64(pipelined),
                     fmt_fix(static_cast<double>(serial - pipelined) / (jobs - 1), 1),
                     fmt_u64(pipelined / jobs)});
    }
  }
  table.print(std::cout);
  std::printf("\n%u-job trains; pipelining hides ~the marshalling cost (%u+ cycles) of\n"
              "every job but the first, on top of the paper's hardware extensions.\n",
              jobs, 96);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_table();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 8);
  benchmark::RegisterBenchmark("pipeline/extended/8jobs", [](benchmark::State& state) {
    sim::Cycles cycles = 0;
    for (auto _ : state) {
      cycles = run_train(mco::soc::SocConfig::extended(32), 8, 1024, 8, true);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
