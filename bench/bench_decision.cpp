// E5 — Eq. (3): offload decisions under a runtime deadline, validated in
// simulation.
//
// For each deadline t_max the model picks the minimum cluster count
// M_min = ceil(2.6*N / (8*(t_max - 367 - N/4))); we then *run* the offload at
// M_min (and at M_min - 1) and check the deadline is met (and would not be
// met with one cluster fewer). Also reports the offload-vs-host break-even
// problem size for a scalar host at 4 cycles/element.
#include "bench_common.h"

#include <set>

#include "model/decision.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<std::uint64_t> kNs{512, 1024, 2048};
const std::vector<double> kSlacks{1.05, 1.12, 1.25, 1.60};

void print_tables(exp::SweepRunner& runner) {
  banner("E5: offload decisions under deadline constraints",
         "Eq. (3) + SIII closing discussion, Colagrande & Benini, DATE 2024");

  const model::RuntimeModel m = model::paper_daxpy_model();

  // The deadline query is pure model math, so the simulation points it needs
  // are known up front: gather the unique (N, M) pairs and sweep them once.
  std::vector<exp::RunPoint> points_to_run;
  std::set<std::pair<std::uint64_t, unsigned>> seen;
  const auto need = [&](std::uint64_t n, unsigned mm) {
    if (seen.insert({n, mm}).second) {
      points_to_run.push_back(point("extended", soc::SocConfig::extended(32), "daxpy", n, mm));
    }
  };
  for (const std::uint64_t n : kNs) {
    for (const double slack : kSlacks) {
      const double t_max = m.predict(32, n) * slack;
      const auto m_min = model::min_clusters_for_deadline(m, n, t_max, 32);
      if (!m_min) continue;
      need(n, *m_min);
      if (*m_min > 1) need(n, *m_min - 1);
    }
  }
  const exp::ResultSet rs = runner.run("decision", points_to_run);

  util::TablePrinter table(
      {"N", "t_max", "M_min(Eq.3)", "t_sim(M_min)", "met", "t_sim(M_min-1)", "tight"});
  for (const std::uint64_t n : kNs) {
    for (const double slack : kSlacks) {
      const double t_max = m.predict(32, n) * slack;
      const auto m_min = model::min_clusters_for_deadline(m, n, t_max, 32);
      if (!m_min) {
        table.add_row({fmt_u64(n), fmt_fix(t_max, 0), "infeasible", "-", "-", "-", "-"});
        continue;
      }
      const auto t_sim = rs.cycles("extended", "daxpy", n, *m_min);
      const bool met = static_cast<double>(t_sim) <= t_max * 1.01;
      std::string t_less = "-";
      std::string tight = "-";
      if (*m_min > 1) {
        const auto t_sim_less = rs.cycles("extended", "daxpy", n, *m_min - 1);
        t_less = fmt_u64(t_sim_less);
        tight = static_cast<double>(t_sim_less) > t_max * 0.99 ? "yes" : "NO";
      }
      table.add_row({fmt_u64(n), fmt_fix(t_max, 0), fmt_u64(*m_min), fmt_u64(t_sim),
                     met ? "yes" : "NO", t_less, tight});
    }
  }
  table.print(std::cout);

  std::printf("\noffload-vs-host break-even (scalar host, 4 cycles/element):\n\n");
  util::TablePrinter be({"M", "break-even N", "t_off(N)", "t_host(N)"});
  for (const unsigned mm : {1u, 4u, 8u, 32u}) {
    const auto n0 = model::break_even_n(m, mm, 4.0);
    if (!n0) {
      be.add_row({fmt_u64(mm), "never", "-", "-"});
      continue;
    }
    be.add_row({fmt_u64(mm), fmt_u64(*n0), fmt_fix(m.predict(mm, *n0), 0),
                fmt_fix(4.0 * static_cast<double>(*n0), 0)});
  }
  be.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_tables(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 5);
  register_offload_benchmark("decision/extended/N=1024/M=5",
                             mco::soc::SocConfig::extended(32), "daxpy", 1024, 5);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
