// E18 — schedule stress: protocol invariants under same-cycle commit-order
// exploration. Every point of the E1 grid (both designs, M ∈ {1..64}) and
// the E4 headline anchors run under N seeded permutations of each
// simultaneously-ready wire batch (check::ScheduleExplorer), with a
// check::ProtocolMonitor attached; then each PR 1 fault scenario
// (fault::scenario_catalog) is explored the same way at the (N=1024, M=32)
// anchor on both designs. The paper's protocol claim, machine-checked:
//   * zero invariant violations on every schedule of every point;
//   * fault-free cycle counts bit-identical across schedules (the protocol
//     is commit-order invariant, so the paper's numbers are not an accident
//     of the simulator's FIFO tie-break);
//   * faulted runs stay numerically correct (each schedule is a different
//     legal fault pattern, so cycles may spread — that spread is reported).
//
// Extra flags (stripped before benchmark::Initialize):
//   --schedules=N        seeded schedules per point (default 8; min 2)
//   --violations-out=F   write the aggregate "mco-violations-v1" JSON to F
#include "bench_common.h"

#include <cstring>
#include <fstream>

#include "check/schedule_explorer.h"
#include "fault/fault_injector.h"

namespace {

using namespace mco;
using namespace mco::bench;

constexpr std::uint64_t kN = 1024;
constexpr unsigned kAnchorM = 32;
constexpr sim::Cycles kWatchdog = 2000;

soc::SocConfig with_fault(soc::SocConfig cfg, const fault::FaultConfig& fc) {
  cfg.runtime.watchdog_wait_cycles = kWatchdog;
  cfg.fault = fc;
  return cfg;
}

/// The explored grid: E1 (both designs × M sweep, fault-free) + the E4
/// anchors + every catalog scenario on both designs at the anchor point.
std::vector<exp::RunPoint> e18_points() {
  std::vector<exp::RunPoint> points;
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    points.push_back(point("baseline", soc::SocConfig::baseline(64), "daxpy", kN, m));
    points.push_back(point("extended", soc::SocConfig::extended(64), "daxpy", kN, m));
  }
  points.push_back(point("baseline32", soc::SocConfig::baseline(32), "daxpy", kN, kAnchorM));
  points.push_back(point("extended32", soc::SocConfig::extended(32), "daxpy", kN, kAnchorM));
  for (const fault::NamedScenario& sc : fault::scenario_catalog()) {
    points.push_back(point("extended32/" + sc.name,
                           with_fault(soc::SocConfig::extended(32), sc.cfg), "daxpy", kN,
                           kAnchorM, 1e-5));
    points.push_back(point("baseline32/" + sc.name,
                           with_fault(soc::SocConfig::baseline(32), sc.cfg), "daxpy", kN,
                           kAnchorM, 1e-5));
  }
  return points;
}

void run_e18(exp::SweepRunner& runner, unsigned schedules, const std::string& violations_out) {
  banner("E18: protocol invariants under schedule exploration",
         "correctness guard for the protocol of Colagrande & Benini, DATE 2024");

  check::ScheduleExplorerConfig ec;
  ec.schedules = schedules;
  const check::ScheduleExplorer explorer(ec);

  const std::vector<exp::RunPoint> points = e18_points();
  const std::vector<check::ScheduleReport> reports =
      runner.map(points, [&](const exp::RunPoint& p) {
        check::ScheduleReport r = explorer.explore(p);
        for (const check::ScheduleRun& run : r.runs) runner.note_cycles(run.total);
        return r;
      });

  util::TablePrinter table(
      {"config", "M", "faults", "cycles (FIFO)", "spread", "identical", "violations"});
  std::uint64_t total_violations = 0;
  std::uint64_t fault_free_divergences = 0;
  for (const check::ScheduleReport& r : reports) {
    total_violations += r.total_violations;
    if (r.fault_free && !r.cycles_identical) ++fault_free_divergences;
    table.add_row({r.point.config_label, fmt_u64(r.point.m),
                   r.fault_free ? "none" : "injected", fmt_u64(r.runs.front().total),
                   fmt_u64(r.max_total - r.min_total), r.cycles_identical ? "yes" : "no",
                   fmt_u64(r.total_violations)});
  }
  table.print(std::cout);

  std::printf("\n%zu points x %u schedules: %llu invariant violation(s), "
              "%llu fault-free divergence(s)\n",
              points.size(), schedules,
              static_cast<unsigned long long>(total_violations),
              static_cast<unsigned long long>(fault_free_divergences));
  if (total_violations > 0) {
    for (const check::ScheduleReport& r : reports) {
      for (const check::Violation& v : r.violations) {
        std::printf("  [%s] %s M=%u t=%llu %s: %s\n", v.invariant.c_str(),
                    r.point.config_label.c_str(), r.point.m,
                    static_cast<unsigned long long>(v.time), v.subject.c_str(),
                    v.message.c_str());
      }
    }
  }

  if (!violations_out.empty()) {
    // Aggregate document, same schema as ProtocolMonitor::to_json(); clean
    // grids produce an empty violation list (the E18 regression golden).
    std::string out = "{\n  \"schema\": \"mco-violations-v1\",\n";
    out += util::format("  \"points\": %zu,\n", points.size());
    out += util::format("  \"schedules_per_point\": %u,\n", schedules);
    out += util::format("  \"fault_free_divergences\": %llu,\n",
                        static_cast<unsigned long long>(fault_free_divergences));
    out += util::format("  \"total_violations\": %llu,\n",
                        static_cast<unsigned long long>(total_violations));
    out += "  \"violations\": [";
    bool first = true;
    for (const check::ScheduleReport& r : reports) {
      for (const check::Violation& v : r.violations) {
        out += first ? "\n" : ",\n";
        first = false;
        out += util::format("    {\"invariant\": \"%s\", \"point\": \"%s/M=%u\", "
                            "\"time\": %llu, \"subject\": \"%s\"}",
                            v.invariant.c_str(), r.point.config_label.c_str(), r.point.m,
                            static_cast<unsigned long long>(v.time), v.subject.c_str());
      }
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    std::ofstream f(violations_out);
    if (!f) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n", violations_out.c_str());
      std::exit(2);
    }
    f << out;
    std::printf("[e18] violations document written to %s\n", violations_out.c_str());
  }
}

/// Strip --schedules=N / --violations-out=F (same discipline as the shared
/// bench flags: consume before benchmark::Initialize).
void e18_args(int& argc, char** argv, unsigned& schedules, std::string& violations_out) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--schedules=", 12) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[i] + 12, &end, 10);
      if (*end != '\0' || v < 2 || v > 1024) {
        std::fprintf(stderr,
                     "error: invalid --schedules value '%s': expected an integer in [2, 1024]\n",
                     argv[i] + 12);
        std::exit(2);
      }
      schedules = static_cast<unsigned>(v);
      continue;
    }
    if (std::strncmp(argv[i], "--violations-out=", 17) == 0) {
      violations_out = argv[i] + 17;
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned schedules = 8;
  std::string violations_out;
  e18_args(argc, argv, schedules, violations_out);
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  run_e18(runner, schedules, violations_out);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", kN,
                                   kAnchorM);
  register_offload_benchmark("schedule_stress/extended/M=32", mco::soc::SocConfig::extended(32),
                             "daxpy", kN, kAnchorM);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
