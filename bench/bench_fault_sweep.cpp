// E16 — fault sweep: expected-runtime inflation of both designs under
// increasing per-dispatch fault probability, measured against the
// first-order analytical model (expected_runtime_under_faults), and the
// fault-rate break-even of the paper's speedup claim — the largest loss
// probability at which the extended design still beats the fault-free
// baseline's Eq. (1) runtime at (N=1024, M=32).
#include "bench_common.h"

#include "model/fault_model.h"
#include "model/runtime_model.h"

namespace {

using namespace mco;
using namespace mco::bench;

constexpr std::uint64_t kN = 1024;
constexpr unsigned kM = 32;
constexpr sim::Cycles kWatchdog = 2000;
constexpr std::uint64_t kReps = 30;

soc::SocConfig faulted(soc::SocConfig cfg, double q, std::uint64_t seed) {
  cfg.runtime.watchdog_wait_cycles = kWatchdog;
  cfg.fault.dispatch_drop_prob = q;
  cfg.fault.seed = seed;
  return cfg;
}

/// Mean measured cycles over kReps runs with distinct fault seeds (each run
/// individually deterministic and functionally verified).
double mean_cycles(const soc::SocConfig& base, double q) {
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < kReps; ++i) {
    sum += soc::run_daxpy(faulted(base, q, kSeed + 1000 * i), kN, kM).total();
  }
  return static_cast<double>(sum) / kReps;
}

model::FaultModelParams sweep_params(double q) {
  model::FaultModelParams p;
  p.dispatch_loss_prob = q;
  p.watchdog_wait_cycles = static_cast<double>(kWatchdog);
  return p;
}

void print_table() {
  banner("E16: offload runtime under dispatch faults at (N=1024, M=32)",
         "robustness extension of Eq. (1), Colagrande & Benini, DATE 2024");

  const model::RuntimeModel ext_model = model::paper_daxpy_model();
  model::RuntimeModel base_model = ext_model;
  base_model.c = 9.0;  // fitted sequential-dispatch slope (see E7)

  const double ext0 = mean_cycles(soc::SocConfig::extended(32), 0.0);
  const double base0 = mean_cycles(soc::SocConfig::baseline(32), 0.0);

  util::TablePrinter table({"loss prob", "base meas", "ext meas", "ext model", "ext inflation",
                            "ext < base(0)?"});
  for (const double q : {0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.2}) {
    const double bm = mean_cycles(soc::SocConfig::baseline(32), q);
    const double em = mean_cycles(soc::SocConfig::extended(32), q);
    const double et = model::expected_runtime_under_faults(ext_model, kM, kN, sweep_params(q));
    table.add_row({fmt_fix(q, 3), fmt_fix(bm, 1), fmt_fix(em, 1), fmt_fix(et, 1),
                   fmt_fix(em / ext0, 3) + "x", em < base0 ? "yes" : "no"});
  }
  table.print(std::cout);

  const double breakeven =
      model::fault_breakeven_prob(ext_model, base_model, kM, kN, sweep_params(0.0));
  std::printf(
      "\nmodel break-even: the extended design's expected runtime under faults\n"
      "stays below the fault-free baseline's Eq. (1) prediction (%.0f cyc) up to\n"
      "a per-dispatch loss probability of %.4f (watchdog window %llu cyc).\n",
      base_model.predict(kM, kN), breakeven,
      static_cast<unsigned long long>(kWatchdog));
  std::printf(
      "The speedup margin (~%.0f cyc) buys roughly one expected recovery round\n"
      "in every 1/%.4f = %.0f offloads before the designs tie.\n",
      base_model.predict(kM, kN) - ext_model.predict(kM, kN), breakeven,
      breakeven > 0.0 ? 1.0 / breakeven : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_table();
  mco::bench::export_canonical_run(obs, faulted(mco::soc::SocConfig::extended(32), 0.05, mco::bench::kSeed), "daxpy", kN, kM);
  register_offload_benchmark("fault_sweep/extended/q=0.05",
                             faulted(mco::soc::SocConfig::extended(32), 0.05, kSeed), "daxpy",
                             kN, kM);
  register_offload_benchmark("fault_sweep/baseline/q=0.05",
                             faulted(mco::soc::SocConfig::baseline(32), 0.05, kSeed), "daxpy",
                             kN, kM);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
