// E16 — fault sweep: expected-runtime inflation of both designs under
// increasing per-dispatch fault probability, measured against the
// first-order analytical model (expected_runtime_under_faults), and the
// fault-rate break-even of the paper's speedup claim — the largest loss
// probability at which the extended design still beats the fault-free
// baseline's Eq. (1) runtime at (N=1024, M=32).
#include "bench_common.h"

#include "model/fault_model.h"
#include "model/runtime_model.h"

namespace {

using namespace mco;
using namespace mco::bench;

constexpr std::uint64_t kN = 1024;
constexpr unsigned kM = 32;
constexpr sim::Cycles kWatchdog = 2000;
constexpr std::uint64_t kReps = 30;

const std::vector<double> kQs{0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.2};

soc::SocConfig faulted(soc::SocConfig cfg, double q, std::uint64_t seed) {
  cfg.runtime.watchdog_wait_cycles = kWatchdog;
  cfg.fault.dispatch_drop_prob = q;
  cfg.fault.seed = seed;
  return cfg;
}

/// One repetition of one (design, loss-prob) cell: an individually
/// deterministic, functionally verified faulted run with its own fault seed.
struct FaultRep {
  bool extended = false;
  double q = 0.0;
  std::uint64_t rep = 0;
};

void print_table(exp::SweepRunner& runner) {
  banner("E16: offload runtime under dispatch faults at (N=1024, M=32)",
         "robustness extension of Eq. (1), Colagrande & Benini, DATE 2024");

  const model::RuntimeModel ext_model = model::paper_daxpy_model();
  model::RuntimeModel base_model = ext_model;
  base_model.c = 9.0;  // fitted sequential-dispatch slope (see E7)

  // The 2 designs × |kQs| × kReps grid is this suite's heaviest sweep (420
  // simulations); it parallelizes at single-repetition granularity.
  std::vector<FaultRep> reps;
  for (const bool extended : {false, true}) {
    for (const double q : kQs) {
      for (std::uint64_t i = 0; i < kReps; ++i) reps.push_back({extended, q, i});
    }
  }
  const std::vector<std::uint64_t> cycles = runner.map(reps, [&](const FaultRep& r) {
    const soc::SocConfig base =
        r.extended ? soc::SocConfig::extended(32) : soc::SocConfig::baseline(32);
    const std::uint64_t t =
        soc::run_daxpy(faulted(base, r.q, kSeed + 1000 * r.rep), kN, kM).total();
    runner.note_cycles(t);
    return t;
  });
  const auto mean_cycles = [&](bool extended, double q) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < reps.size(); ++i) {
      if (reps[i].extended == extended && reps[i].q == q) sum += cycles[i];
    }
    return static_cast<double>(sum) / kReps;
  };

  const double ext0 = mean_cycles(true, 0.0);
  const double base0 = mean_cycles(false, 0.0);

  util::TablePrinter table({"loss prob", "base meas", "ext meas", "ext model", "ext inflation",
                            "ext < base(0)?"});
  for (const double q : kQs) {
    const double bm = mean_cycles(false, q);
    const double em = mean_cycles(true, q);
    model::FaultModelParams params;
    params.dispatch_loss_prob = q;
    params.watchdog_wait_cycles = static_cast<double>(kWatchdog);
    const double et = model::expected_runtime_under_faults(ext_model, kM, kN, params);
    table.add_row({fmt_fix(q, 3), fmt_fix(bm, 1), fmt_fix(em, 1), fmt_fix(et, 1),
                   fmt_fix(em / ext0, 3) + "x", em < base0 ? "yes" : "no"});
  }
  table.print(std::cout);

  model::FaultModelParams be_params;
  be_params.watchdog_wait_cycles = static_cast<double>(kWatchdog);
  const double breakeven =
      model::fault_breakeven_prob(ext_model, base_model, kM, kN, be_params);
  std::printf(
      "\nmodel break-even: the extended design's expected runtime under faults\n"
      "stays below the fault-free baseline's Eq. (1) prediction (%.0f cyc) up to\n"
      "a per-dispatch loss probability of %.4f (watchdog window %llu cyc).\n",
      base_model.predict(kM, kN), breakeven,
      static_cast<unsigned long long>(kWatchdog));
  std::printf(
      "The speedup margin (~%.0f cyc) buys roughly one expected recovery round\n"
      "in every 1/%.4f = %.0f offloads before the designs tie.\n",
      base_model.predict(kM, kN) - ext_model.predict(kM, kN), breakeven,
      breakeven > 0.0 ? 1.0 / breakeven : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, faulted(mco::soc::SocConfig::extended(32), 0.05, mco::bench::kSeed), "daxpy", kN, kM);
  register_offload_benchmark("fault_sweep/extended/q=0.05",
                             faulted(mco::soc::SocConfig::extended(32), 0.05, kSeed), "daxpy",
                             kN, kM);
  register_offload_benchmark("fault_sweep/baseline/q=0.05",
                             faulted(mco::soc::SocConfig::baseline(32), 0.05, kSeed), "daxpy",
                             kN, kM);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
