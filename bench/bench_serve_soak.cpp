// E19 — SLO soak: the deadline-aware offload service under sustained load.
//
// One seeded multi-thousand-job trace (kernel, N, deadline, priority) is
// served by a serve::OffloadService per fault scenario (serve::soak_scenarios:
// fault-free control, lost completions, chaos mix, and a targeted sick
// cluster that exercises the circuit breaker end to end). Reported per
// scenario: SLO attainment, goodput, shed/failed counts, quarantine and
// re-admission activity, and the invariant-audit results of the two
// ProtocolMonitors (backing Soc + service trace). The aggregate
// "mco-serve-v1" document is golden-pinned by scripts/metrics_regression.py.
//
// Scenario-level parallelism uses exp::SweepRunner::map with index-addressed
// slots; each scenario's replay is serial and virtual-time deterministic, so
// every table and the report document are byte-identical for any --jobs.
//
// Extra flags (stripped before benchmark::Initialize):
//   --serve-jobs=N   jobs in the generated trace (default 1000)
//   --report-out=F   write the "mco-serve-v1" JSON report to F
#include "bench_common.h"

#include <cstring>
#include <fstream>

#include "serve/soak.h"

namespace {

using namespace mco;
using namespace mco::bench;

void run_e19(exp::SweepRunner& runner, std::size_t serve_jobs, const std::string& report_out) {
  banner("E19: SLO soak of the deadline-aware offload service",
         "Eq. (3) admission + partitioned offloads on the DATE 2024 fabric");

  serve::SoakTraceConfig trace_cfg;
  trace_cfg.num_jobs = serve_jobs;
  trace_cfg.seed = kSeed;
  serve::SoakRunConfig run_cfg;
  const std::vector<serve::ServeJob> trace =
      serve::generate_trace(trace_cfg, run_cfg.model);
  const std::vector<serve::SoakScenario> scenarios = serve::soak_scenarios();

  const std::vector<serve::SoakResult> results =
      runner.map(scenarios, [&](const serve::SoakScenario& sc) {
        serve::SoakResult r = serve::run_soak_scenario(sc, trace, run_cfg);
        runner.note_cycles(r.makespan);
        return r;
      });

  util::TablePrinter table({"scenario", "met", "missed", "shed", "failed", "SLO %",
                            "goodput", "quar", "readmit", "probes", "crashes", "violations"});
  std::uint64_t soc_violations = 0;
  std::uint64_t serve_violations = 0;
  for (const serve::SoakResult& r : results) {
    soc_violations += r.soc_violations;
    serve_violations += r.serve_violations;
    table.add_row({r.scenario, fmt_u64(r.met), fmt_u64(r.missed), fmt_u64(r.shed),
                   fmt_u64(r.failed), fmt_fix(100.0 * r.slo_attainment, 1),
                   fmt_fix(r.goodput, 3), fmt_u64(r.quarantines), fmt_u64(r.readmissions),
                   fmt_u64(r.probes), fmt_u64(r.crashes),
                   fmt_u64(r.soc_violations + r.serve_violations)});
  }
  table.print(std::cout);

  std::printf("\n%zu jobs x %zu scenarios: %llu soc violation(s), %llu serve violation(s)\n",
              trace.size(), scenarios.size(),
              static_cast<unsigned long long>(soc_violations),
              static_cast<unsigned long long>(serve_violations));

  if (!report_out.empty()) {
    std::ofstream f(report_out);
    if (!f) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n", report_out.c_str());
      std::exit(2);
    }
    f << serve::soak_report_json(results, trace_cfg);
    std::printf("[e19] serve report written to %s\n", report_out.c_str());
  }
}

/// Strip --serve-jobs=N / --report-out=F (same discipline as the shared
/// bench flags: consume before benchmark::Initialize).
void e19_args(int& argc, char** argv, std::size_t& serve_jobs, std::string& report_out) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--serve-jobs=", 13) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[i] + 13, &end, 10);
      if (*end != '\0' || v < 1 || v > 1'000'000) {
        std::fprintf(
            stderr,
            "error: invalid --serve-jobs value '%s': expected an integer in [1, 1000000]\n",
            argv[i] + 13);
        std::exit(2);
      }
      serve_jobs = static_cast<std::size_t>(v);
      continue;
    }
    if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t serve_jobs = 1000;
  std::string report_out;
  e19_args(argc, argv, serve_jobs, report_out);
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  run_e19(runner, serve_jobs, report_out);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(8), "daxpy", 2048, 8);
  register_offload_benchmark("serve_soak/extended8/M=8", mco::soc::SocConfig::extended(8),
                             "daxpy", 2048, 8);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
