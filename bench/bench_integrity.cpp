// E24 — end-to-end integrity: silent-data-corruption pressure against an
// attested fleet, with escape-rate and attestation-overhead accounting.
//
// One seeded job trace (the E22 generator, serve::fleet_trace_config) is
// served by a 4-shard serve::FleetRouter per grid point while shard 0's Soc
// silently corrupts offload results at a scripted per-chunk rate: the clean
// control, a payload-flip dose-response (low/high), the mix of every
// digest-detectable mode, the checksum-blind stale-read row backstopped by
// a full audit, a sampled-audit flip row, and the attestation-off ablation.
// Reported per point: detections, escapes, disjoint re-executions,
// integrity_failed retirements, audit traffic, breaker quarantines, the
// attestation bill (verify cycles, % of makespan) and the invariant audits
// — serve_integrity proves no corrupted result was delivered while checks
// were on. The "mco-integrity-v1" document is byte-compared across --jobs
// levels by tests/test_integrity.cpp.
//
// Point-level parallelism uses exp::SweepRunner::map with index-addressed
// slots; each point's replay is serial and virtual-time deterministic, so
// every table, the machine-readable [integrity] lines and the report
// document are byte-identical for any --jobs.
//
// Extra flags (stripped before benchmark::Initialize):
//   --integrity-jobs=N   jobs in the generated trace (default 600)
//   --report-out=F       write the "mco-integrity-v1" JSON report to F
#include "bench_common.h"

#include <cstring>
#include <fstream>

#include "serve/fleet_integrity.h"

namespace {

using namespace mco;
using namespace mco::bench;

void run_e24(exp::SweepRunner& runner, std::size_t integrity_jobs,
             const std::string& report_out) {
  banner("E24: end-to-end integrity — silent corruption, attestation, audits",
         "seeded SDC pressure on one shard of an attested 4-shard fleet");

  serve::SoakTraceConfig trace_cfg = serve::fleet_trace_config(integrity_jobs);
  trace_cfg.seed = kSeed;
  serve::FleetSoakConfig run_cfg;
  const std::vector<serve::ServeJob> trace = serve::generate_trace(trace_cfg, run_cfg.model);
  const std::vector<serve::FleetIntegrityPoint> grid = serve::fleet_integrity_grid();

  const std::vector<serve::FleetIntegrityResult> results =
      runner.map(grid, [&](const serve::FleetIntegrityPoint& pt) {
        serve::FleetIntegrityResult r = serve::run_fleet_integrity_point(pt, trace, run_cfg);
        runner.note_cycles(r.makespan);
        return r;
      });

  util::TablePrinter table({"point", "checks", "audit", "rate", "met", "SLO %", "detected",
                            "escapes", "retries", "audits", "quar", "verify %",
                            "violations"});
  std::uint64_t violations = 0;
  for (const serve::FleetIntegrityResult& r : results) {
    violations += r.soc_violations + r.serve_violations;
    table.add_row({r.name, r.checks ? "on" : "off", fmt_fix(r.audit_fraction, 2),
                   fmt_fix(r.rate, 3), fmt_u64(r.met), fmt_fix(100.0 * r.slo_attainment, 1),
                   fmt_u64(r.detected), fmt_u64(r.escapes), fmt_u64(r.integrity_retries),
                   fmt_u64(r.audits), fmt_u64(r.quarantines), fmt_fix(r.overhead_pct, 3),
                   fmt_u64(r.soc_violations + r.serve_violations)});
  }
  table.print(std::cout);

  // Machine-readable lines for scripts/bench_report.py and the
  // metrics_regression.py anchor (virtual-time only).
  for (const serve::FleetIntegrityResult& r : results) {
    std::printf(
        "[integrity] point=%s checks=%d audit=%.2f rate=%.3f slo=%.4f detected=%llu "
        "escapes=%llu retries=%llu int_failed=%llu audits=%llu mismatches=%llu "
        "quarantines=%llu verify_cycles=%llu overhead_pct=%.3f violations=%llu\n",
        r.name.c_str(), r.checks ? 1 : 0, r.audit_fraction, r.rate, r.slo_attainment,
        static_cast<unsigned long long>(r.detected),
        static_cast<unsigned long long>(r.escapes),
        static_cast<unsigned long long>(r.integrity_retries),
        static_cast<unsigned long long>(r.integrity_failed),
        static_cast<unsigned long long>(r.audits),
        static_cast<unsigned long long>(r.audit_mismatches),
        static_cast<unsigned long long>(r.quarantines),
        static_cast<unsigned long long>(r.verify_cycles), r.overhead_pct,
        static_cast<unsigned long long>(r.soc_violations + r.serve_violations));
  }

  // The E24 acceptance line: with checks on, NOTHING corrupt may be
  // delivered at any rate; the blind ablation must leak (that contrast is
  // the evidence the layer earns its verify cycles).
  std::uint64_t checked_escapes = 0;
  std::uint64_t checked_detected = 0;
  std::uint64_t blind_escapes = 0;
  double worst_overhead = 0.0;
  for (const serve::FleetIntegrityResult& r : results) {
    if (r.checks) {
      checked_escapes += r.escapes;
      checked_detected += r.detected;
      if (r.overhead_pct > worst_overhead) worst_overhead = r.overhead_pct;
    } else {
      blind_escapes += r.escapes;
    }
  }
  const bool sealed = checked_escapes == 0 && checked_detected > 0 && blind_escapes > 0;
  std::printf("\n%zu jobs x %zu points: %llu detected, %llu escapes with checks on (%s), "
              "%llu blind escapes, worst attestation overhead %.3f%%, %llu violation(s)\n",
              trace.size(), grid.size(),
              static_cast<unsigned long long>(checked_detected),
              static_cast<unsigned long long>(checked_escapes),
              sealed ? "fleet is sealed" : "SILENT CORRUPTION ESCAPED",
              static_cast<unsigned long long>(blind_escapes), worst_overhead,
              static_cast<unsigned long long>(violations));

  if (!report_out.empty()) {
    std::ofstream f(report_out);
    if (!f) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n", report_out.c_str());
      std::exit(2);
    }
    f << serve::integrity_report_json(results, trace_cfg);
    std::printf("[e24] integrity report written to %s\n", report_out.c_str());
  }
}

/// Strip --integrity-jobs=N / --report-out=F (same discipline as the shared
/// bench flags: consume before benchmark::Initialize).
void e24_args(int& argc, char** argv, std::size_t& integrity_jobs, std::string& report_out) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--integrity-jobs=", 17) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[i] + 17, &end, 10);
      if (*end != '\0' || v < 1 || v > 1'000'000) {
        std::fprintf(
            stderr,
            "error: invalid --integrity-jobs value '%s': expected an integer in [1, 1000000]\n",
            argv[i] + 17);
        std::exit(2);
      }
      integrity_jobs = static_cast<std::size_t>(v);
      continue;
    }
    if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t integrity_jobs = 600;
  std::string report_out;
  e24_args(argc, argv, integrity_jobs, report_out);
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  run_e24(runner, integrity_jobs, report_out);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(8), "daxpy", 2048, 8);
  register_offload_benchmark("integrity/extended8/M=8", mco::soc::SocConfig::extended(8),
                             "daxpy", 2048, 8);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
