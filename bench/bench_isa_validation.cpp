// E11 — microarchitectural validation of the calibrated compute rate.
//
// The paper derives its 2.6 cycles/element DAXPY throughput "by inspecting
// the hardware and the compiled application". Here the inspection is
// executable: three DAXPY inner loops (naive scalar, 4x-unrolled, and
// hand-optimal SSR+FREP) run on the cycle-accurate worker-core ISS and
// report measured cycles/element. The calibrated 2.6 used by the cluster
// timing model must fall inside the bracket real code achieves.
#include "bench_common.h"

#include "isa/microkernels.h"

namespace {

using namespace mco;
using namespace mco::bench;

struct DaxpyCase {
  isa::DaxpyVariant variant = isa::DaxpyVariant::kScalar;
  std::uint64_t n = 0;
};

struct SumCase {
  isa::SumVariant variant = isa::SumVariant::kSingleAccumulator;
  std::uint64_t n = 0;
};

void print_table(exp::SweepRunner& runner) {
  banner("E11: DAXPY inner-loop throughput on the worker-core ISS",
         "validation of Eq. (1)'s 2.6 cycles/element, DATE 2024");

  // ISS microbenchmarks run no Soc, but each case is an independent
  // simulation — the runner's map gives them the same ordered parallelism.
  std::vector<DaxpyCase> daxpy_cases;
  for (const auto v : {isa::DaxpyVariant::kScalar, isa::DaxpyVariant::kUnrolled4,
                       isa::DaxpyVariant::kSsrFrep}) {
    for (const std::uint64_t n : {64ull, 256ull, 1024ull}) daxpy_cases.push_back({v, n});
  }
  const auto daxpy_results = runner.map(daxpy_cases, [&](const DaxpyCase& c) {
    const isa::MicroMeasurement m = isa::measure_daxpy(c.variant, c.n, kSeed);
    runner.note_cycles(m.cycles);
    return m;
  });

  util::TablePrinter table(
      {"variant", "n", "cycles", "instructions", "cycles/element", "verified"});
  for (std::size_t i = 0; i < daxpy_cases.size(); ++i) {
    const auto& m = daxpy_results[i];
    table.add_row({isa::to_string(daxpy_cases[i].variant), fmt_u64(daxpy_cases[i].n),
                   fmt_u64(m.cycles), fmt_u64(m.instructions),
                   fmt_fix(m.cycles_per_element, 3), m.verified ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::printf("\nvector-sum accumulator study (vecsum rate 1.8 cycles/element):\n\n");
  std::vector<SumCase> sum_cases;
  for (const auto v : {isa::SumVariant::kSingleAccumulator, isa::SumVariant::kSplitAccumulators}) {
    for (const std::uint64_t n : {96ull, 768ull}) sum_cases.push_back({v, n});
  }
  const auto sum_results = runner.map(sum_cases, [&](const SumCase& c) {
    const isa::MicroMeasurement m = isa::measure_sum(c.variant, c.n, kSeed);
    runner.note_cycles(m.cycles);
    return m;
  });
  util::TablePrinter sums({"variant", "n", "cycles/element", "verified"});
  for (std::size_t i = 0; i < sum_cases.size(); ++i) {
    sums.add_row({isa::to_string(sum_cases[i].variant), fmt_u64(sum_cases[i].n),
                  fmt_fix(sum_results[i].cycles_per_element, 3),
                  sum_results[i].verified ? "yes" : "NO"});
  }
  sums.print(std::cout);

  const double scalar = isa::measure_daxpy(isa::DaxpyVariant::kScalar, 1024).cycles_per_element;
  const double ssr = isa::measure_daxpy(isa::DaxpyVariant::kSsrFrep, 1024).cycles_per_element;
  std::printf("\ncalibrated rate 2.6 cycles/element is bracketed by real code:\n"
              "  hand-optimal SSR+FREP %.2f  <  2.6  <  naive scalar %.2f\n"
              "i.e. the paper's compiled DAXPY corresponds to moderately optimized\n"
              "code (SSR streams with an explicit store loop / partial unrolling).\n",
              ssr, scalar);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::RegisterBenchmark("isa/daxpy_ssr_frep/n=1024", [](benchmark::State& state) {
    double cpe = 0;
    for (auto _ : state) {
      cpe = isa::measure_daxpy(isa::DaxpyVariant::kSsrFrep, 1024).cycles_per_element;
    }
    state.counters["cycles_per_elem"] = cpe;
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
