// E11 — microarchitectural validation of the calibrated compute rate.
//
// The paper derives its 2.6 cycles/element DAXPY throughput "by inspecting
// the hardware and the compiled application". Here the inspection is
// executable: three DAXPY inner loops (naive scalar, 4x-unrolled, and
// hand-optimal SSR+FREP) run on the cycle-accurate worker-core ISS and
// report measured cycles/element. The calibrated 2.6 used by the cluster
// timing model must fall inside the bracket real code achieves.
#include "bench_common.h"

#include "isa/microkernels.h"

namespace {

using namespace mco;
using namespace mco::bench;

void print_table() {
  banner("E11: DAXPY inner-loop throughput on the worker-core ISS",
         "validation of Eq. (1)'s 2.6 cycles/element, DATE 2024");

  util::TablePrinter table(
      {"variant", "n", "cycles", "instructions", "cycles/element", "verified"});
  for (const auto v : {isa::DaxpyVariant::kScalar, isa::DaxpyVariant::kUnrolled4,
                       isa::DaxpyVariant::kSsrFrep}) {
    for (const std::uint64_t n : {64ull, 256ull, 1024ull}) {
      const auto m = isa::measure_daxpy(v, n, kSeed);
      table.add_row({isa::to_string(v), fmt_u64(n), fmt_u64(m.cycles),
                     fmt_u64(m.instructions), fmt_fix(m.cycles_per_element, 3),
                     m.verified ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  std::printf("\nvector-sum accumulator study (vecsum rate 1.8 cycles/element):\n\n");
  util::TablePrinter sums({"variant", "n", "cycles/element", "verified"});
  for (const auto v : {isa::SumVariant::kSingleAccumulator, isa::SumVariant::kSplitAccumulators}) {
    for (const std::uint64_t n : {96ull, 768ull}) {
      const auto m = isa::measure_sum(v, n, kSeed);
      sums.add_row({isa::to_string(v), fmt_u64(n), fmt_fix(m.cycles_per_element, 3),
                    m.verified ? "yes" : "NO"});
    }
  }
  sums.print(std::cout);

  const double scalar = isa::measure_daxpy(isa::DaxpyVariant::kScalar, 1024).cycles_per_element;
  const double ssr = isa::measure_daxpy(isa::DaxpyVariant::kSsrFrep, 1024).cycles_per_element;
  std::printf("\ncalibrated rate 2.6 cycles/element is bracketed by real code:\n"
              "  hand-optimal SSR+FREP %.2f  <  2.6  <  naive scalar %.2f\n"
              "i.e. the paper's compiled DAXPY corresponds to moderately optimized\n"
              "code (SSR streams with an explicit store loop / partial unrolling).\n",
              ssr, scalar);
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_table();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::RegisterBenchmark("isa/daxpy_ssr_frep/n=1024", [](benchmark::State& state) {
    double cpe = 0;
    for (auto _ : state) {
      cpe = isa::measure_daxpy(isa::DaxpyVariant::kSsrFrep, 1024).cycles_per_element;
    }
    state.counters["cycles_per_elem"] = cpe;
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
