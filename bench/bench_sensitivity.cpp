// E12 — sensitivity of the paper's conclusions to calibration parameters.
//
// The simulator's latencies were calibrated to the paper's numbers; this
// bench perturbs each key parameter and re-measures (a) the headline
// extended-over-baseline speedup at (N=1024, M=32) and (b) the baseline
// curve's optimal cluster count. The *qualitative* conclusions — extended
// always wins at many clusters, the baseline has an interior optimum —
// must hold across the whole perturbation range; only magnitudes move.
#include "bench_common.h"

#include <functional>

#include "soc/config_io.h"

namespace {

using namespace mco;
using namespace mco::bench;

const std::vector<unsigned> kMs{1, 2, 4, 8, 16, 32};

struct Row {
  std::string label;
  std::function<void(soc::SocConfig&)> tweak;
};

const std::vector<Row>& rows() {
  static const std::vector<Row> kRows = {
      {"calibrated (reference)", [](soc::SocConfig&) {}},
      {"HBM bandwidth 8 B/cyc", [](soc::SocConfig& c) { c.hbm.beats_per_cycle = 8; }},
      {"HBM bandwidth 24 B/cyc", [](soc::SocConfig& c) { c.hbm.beats_per_cycle = 24; }},
      {"mailbox store 1.0 cyc/word",
       [](soc::SocConfig& c) {
         c.host.store_cost_num = 1;
         c.host.store_cost_den = 1;
       }},
      {"mailbox store 3.0 cyc/word",
       [](soc::SocConfig& c) {
         c.host.store_cost_num = 3;
         c.host.store_cost_den = 1;
       }},
      {"NoC latency x2",
       [](soc::SocConfig& c) {
         c.noc.host_to_cluster_latency *= 2;
         c.noc.cluster_to_sync_latency *= 2;
         c.noc.cluster_to_hbm_latency *= 2;
       }},
      {"AMO latency 30 cyc", [](soc::SocConfig& c) { c.shared_counter.amo_latency_cycles = 30; }},
      {"AMO latency 120 cyc",
       [](soc::SocConfig& c) { c.shared_counter.amo_latency_cycles = 120; }},
      {"poll period x2", [](soc::SocConfig& c) { c.host.hbm_load_cycles *= 2; }},
      {"4 workers per cluster", [](soc::SocConfig& c) { c.cluster.num_workers = 4; }},
      {"slow wakeup (60 cyc)", [](soc::SocConfig& c) { c.cluster.wakeup_latency = 60; }},
  };
  return kRows;
}

void print_table(exp::SweepRunner& runner) {
  banner("E12: robustness of the conclusions to calibration parameters",
         "sensitivity analysis (methodological extension), DATE 2024");

  // Every perturbation is just another labeled config variant: the baseline
  // cluster sweep plus the extended design at M=32, all in one point list.
  std::vector<exp::RunPoint> points_to_run;
  for (const Row& row : rows()) {
    soc::SocConfig base_cfg = soc::SocConfig::baseline(32);
    soc::SocConfig ext_cfg = soc::SocConfig::extended(32);
    row.tweak(base_cfg);
    row.tweak(ext_cfg);
    for (const unsigned m : kMs) {
      points_to_run.push_back(point(row.label + "/base", base_cfg, "daxpy", 1024, m));
    }
    points_to_run.push_back(point(row.label + "/ext", ext_cfg, "daxpy", 1024, 32));
  }
  const exp::ResultSet rs = runner.run("sensitivity", points_to_run);

  util::TablePrinter table({"perturbation", "speedup@(1024,32)", "baseline best M",
                            "ext wins", "interior min"});
  for (const Row& row : rows()) {
    sim::Cycles best = ~0ull;
    unsigned best_m = 0;
    for (const unsigned m : kMs) {
      const auto t = rs.cycles(row.label + "/base", "daxpy", 1024, m);
      if (t < best) {
        best = t;
        best_m = m;
      }
    }
    const double speedup32 =
        static_cast<double>(rs.cycles(row.label + "/base", "daxpy", 1024, 32)) /
        static_cast<double>(rs.cycles(row.label + "/ext", "daxpy", 1024, 32));
    table.add_row({row.label, fmt_fix(speedup32), fmt_u64(best_m),
                   speedup32 > 1.0 ? "yes" : "NO",
                   best_m > 1 && best_m < 32 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\nthe magnitude of the speedup moves with the calibration, the paper's\n"
              "qualitative claims (extended wins at M=32; baseline has an interior\n"
              "optimum) hold across every perturbation.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::bench::BenchArgs args = mco::bench::bench_args(argc, argv);
  mco::exp::SweepRunner runner(args.jobs);
  print_table(runner);
  mco::bench::sweep_footer(runner);
  mco::bench::export_canonical_run(args.obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
