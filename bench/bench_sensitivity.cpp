// E12 — sensitivity of the paper's conclusions to calibration parameters.
//
// The simulator's latencies were calibrated to the paper's numbers; this
// bench perturbs each key parameter and re-measures (a) the headline
// extended-over-baseline speedup at (N=1024, M=32) and (b) the baseline
// curve's optimal cluster count. The *qualitative* conclusions — extended
// always wins at many clusters, the baseline has an interior optimum —
// must hold across the whole perturbation range; only magnitudes move.
#include "bench_common.h"

#include <functional>

#include "soc/config_io.h"

namespace {

using namespace mco;
using namespace mco::bench;

struct Probe {
  double speedup32 = 0;
  unsigned baseline_best_m = 0;
};

Probe probe(const std::function<void(soc::SocConfig&)>& tweak) {
  soc::SocConfig base_cfg = soc::SocConfig::baseline(32);
  soc::SocConfig ext_cfg = soc::SocConfig::extended(32);
  tweak(base_cfg);
  tweak(ext_cfg);

  Probe p;
  sim::Cycles best = ~0ull;
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto t = daxpy_cycles(base_cfg, 1024, m);
    if (t < best) {
      best = t;
      p.baseline_best_m = m;
    }
  }
  p.speedup32 = static_cast<double>(daxpy_cycles(base_cfg, 1024, 32)) /
                static_cast<double>(daxpy_cycles(ext_cfg, 1024, 32));
  return p;
}

void print_table() {
  banner("E12: robustness of the conclusions to calibration parameters",
         "sensitivity analysis (methodological extension), DATE 2024");

  struct Row {
    std::string label;
    std::function<void(soc::SocConfig&)> tweak;
  };
  const std::vector<Row> rows = {
      {"calibrated (reference)", [](soc::SocConfig&) {}},
      {"HBM bandwidth 8 B/cyc", [](soc::SocConfig& c) { c.hbm.beats_per_cycle = 8; }},
      {"HBM bandwidth 24 B/cyc", [](soc::SocConfig& c) { c.hbm.beats_per_cycle = 24; }},
      {"mailbox store 1.0 cyc/word",
       [](soc::SocConfig& c) {
         c.host.store_cost_num = 1;
         c.host.store_cost_den = 1;
       }},
      {"mailbox store 3.0 cyc/word",
       [](soc::SocConfig& c) {
         c.host.store_cost_num = 3;
         c.host.store_cost_den = 1;
       }},
      {"NoC latency x2",
       [](soc::SocConfig& c) {
         c.noc.host_to_cluster_latency *= 2;
         c.noc.cluster_to_sync_latency *= 2;
         c.noc.cluster_to_hbm_latency *= 2;
       }},
      {"AMO latency 30 cyc", [](soc::SocConfig& c) { c.shared_counter.amo_latency_cycles = 30; }},
      {"AMO latency 120 cyc",
       [](soc::SocConfig& c) { c.shared_counter.amo_latency_cycles = 120; }},
      {"poll period x2", [](soc::SocConfig& c) { c.host.hbm_load_cycles *= 2; }},
      {"4 workers per cluster", [](soc::SocConfig& c) { c.cluster.num_workers = 4; }},
      {"slow wakeup (60 cyc)", [](soc::SocConfig& c) { c.cluster.wakeup_latency = 60; }},
  };

  util::TablePrinter table({"perturbation", "speedup@(1024,32)", "baseline best M",
                            "ext wins", "interior min"});
  for (const auto& row : rows) {
    const Probe p = probe(row.tweak);
    table.add_row({row.label, fmt_fix(p.speedup32), fmt_u64(p.baseline_best_m),
                   p.speedup32 > 1.0 ? "yes" : "NO",
                   p.baseline_best_m > 1 && p.baseline_best_m < 32 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\nthe magnitude of the speedup moves with the calibration, the paper's\n"
              "qualitative claims (extended wins at M=32; baseline has an interior\n"
              "optimum) hold across every perturbation.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const mco::soc::ObservabilityOptions obs =
      mco::soc::observability_from_args(argc, argv);
  print_table();
  mco::bench::export_canonical_run(obs, mco::soc::SocConfig::extended(32), "daxpy", 1024, 32);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
