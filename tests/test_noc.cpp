// Unit tests for the interconnect: unicast/multicast dispatch, credit and
// AMO routing, latencies, and the multicast feature gate.
#include <gtest/gtest.h>

#include <vector>

#include "noc/interconnect.h"
#include "sim/simulator.h"

namespace {

using namespace mco;
using namespace mco::noc;

struct NocFixture : ::testing::Test {
  sim::Simulator sim;

  Interconnect make(bool multicast, unsigned clusters = 4) {
    NocConfig cfg;
    cfg.multicast_enabled = multicast;
    cfg.host_to_cluster_latency = 14;
    cfg.multicast_tree_latency = 3;
    cfg.cluster_to_sync_latency = 12;
    cfg.cluster_to_hbm_latency = 12;
    return Interconnect(sim, "noc", cfg, clusters);
  }
};

TEST_F(NocFixture, UnicastDeliversAfterLatency) {
  auto noc = make(false);
  sim::Cycle delivered_at = 0;
  std::size_t words = 0;
  noc.set_cluster_sink(2, [&](const DispatchMessage& m) {
    delivered_at = sim.now();
    words = m.size_words();
  });
  noc.unicast_dispatch(2, DispatchMessage{{1, 2, 3}});
  sim.run();
  EXPECT_EQ(delivered_at, 14u);
  EXPECT_EQ(words, 3u);
  EXPECT_EQ(noc.unicasts_sent(), 1u);
}

TEST_F(NocFixture, MulticastDeliversToAllTargetsSameCycle) {
  auto noc = make(true);
  std::vector<sim::Cycle> delivered(4, 0);
  for (unsigned i = 0; i < 4; ++i) {
    noc.set_cluster_sink(i, [&, i](const DispatchMessage&) { delivered[i] = sim.now(); });
  }
  noc.multicast_dispatch({0, 1, 3}, DispatchMessage{{7}});
  sim.run();
  EXPECT_EQ(delivered[0], 17u);  // 14 + 3 tree latency
  EXPECT_EQ(delivered[1], 17u);
  EXPECT_EQ(delivered[2], 0u);  // not targeted
  EXPECT_EQ(delivered[3], 17u);
  EXPECT_EQ(noc.multicasts_sent(), 1u);
}

TEST_F(NocFixture, MulticastWithoutExtensionThrows) {
  auto noc = make(false);
  noc.set_cluster_sink(0, [](const DispatchMessage&) {});
  EXPECT_THROW(noc.multicast_dispatch({0}, DispatchMessage{{1}}), std::logic_error);
}

TEST_F(NocFixture, EmptyMulticastSetThrows) {
  auto noc = make(true);
  EXPECT_THROW(noc.multicast_dispatch({}, DispatchMessage{{1}}), std::invalid_argument);
}

TEST_F(NocFixture, UnwiredSinkThrows) {
  auto noc = make(false);
  EXPECT_THROW(noc.unicast_dispatch(1, DispatchMessage{{1}}), std::logic_error);
}

TEST_F(NocFixture, OutOfRangeClusterThrows) {
  auto noc = make(true);
  noc.set_cluster_sink(0, [](const DispatchMessage&) {});
  EXPECT_THROW(noc.unicast_dispatch(4, DispatchMessage{{1}}), std::out_of_range);
  EXPECT_THROW(noc.multicast_dispatch({0, 9}, DispatchMessage{{1}}), std::out_of_range);
}

TEST_F(NocFixture, CreditRoutedWithLatency) {
  auto noc = make(true);
  sim::Cycle at = 0;
  unsigned who = 99;
  noc.set_credit_sink([&](unsigned c) {
    at = sim.now();
    who = c;
  });
  noc.send_credit(3);
  sim.run();
  EXPECT_EQ(at, 12u);
  EXPECT_EQ(who, 3u);
  EXPECT_EQ(noc.credits_routed(), 1u);
}

TEST_F(NocFixture, AmoRoutedWithLatency) {
  auto noc = make(false);
  sim::Cycle at = 0;
  noc.set_amo_sink([&](unsigned) { at = sim.now(); });
  noc.send_amo(1);
  sim.run();
  EXPECT_EQ(at, 12u);
  EXPECT_EQ(noc.amos_routed(), 1u);
}

TEST_F(NocFixture, CreditWithoutSinkThrows) {
  auto noc = make(false);
  EXPECT_THROW(noc.send_credit(0), std::logic_error);
}

TEST_F(NocFixture, ZeroClustersRejected) {
  EXPECT_THROW(Interconnect(sim, "noc", NocConfig{}, 0), std::invalid_argument);
}

TEST_F(NocFixture, UnicastsToDistinctClustersAreIndependent) {
  auto noc = make(false);
  int hits = 0;
  for (unsigned i = 0; i < 4; ++i) {
    noc.set_cluster_sink(i, [&](const DispatchMessage&) { ++hits; });
  }
  for (unsigned i = 0; i < 4; ++i) noc.unicast_dispatch(i, DispatchMessage{{i}});
  sim.run();
  EXPECT_EQ(hits, 4);
  EXPECT_EQ(noc.unicasts_sent(), 4u);
}

}  // namespace
