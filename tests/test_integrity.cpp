// End-to-end integrity tests: the FNV-1a attestation chain
// (offload/integrity.h), the runtime's completion-gather verify pass under
// every silent-data-corruption mode at probability 1.0 (detectable modes
// convict, stale reads stay checksum-blind, a dormant injector is
// bit-identical to the seed), the FleetRouter conviction machinery (disjoint
// re-execution, retry budget, audit lottery, breaker quarantine, escape
// stamping), the serve_integrity shadow of check::ProtocolMonitor, the
// deadline-aware kTightestSlack steal policy, and the byte-identity of the
// E24 integrity report across SweepRunner --jobs levels.
//
// Router tests script the Executor seam (CorruptingFakeExecutor, mirroring
// test_fleet_chaos.cpp) so every conviction is an exact virtual-time schedule
// with hand-computable outcomes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/protocol_monitor.h"
#include "exp/sweep_runner.h"
#include "noc/message.h"
#include "offload/integrity.h"
#include "serve/fleet.h"
#include "serve/fleet_integrity.h"
#include "serve/fleet_soak.h"
#include "serve/soc_executor.h"
#include "sim/trace.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using serve::BatchExecutionOutcome;
using serve::ExecutionOutcome;
using serve::FleetConfig;
using serve::FleetRouter;
using serve::JobOutcome;
using serve::JobVerdict;
using serve::ServeJob;

// ---- the attestation chain (offload/integrity.h) ----------------------------

TEST(Fnv1a, IsDeterministicChainsAndSeesEveryByte) {
  const std::uint8_t bytes[] = {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0};
  const std::uint64_t d1 = offload::fnv1a(bytes, sizeof(bytes));
  EXPECT_EQ(d1, offload::fnv1a(bytes, sizeof(bytes)));

  // Chaining: hashing the halves with the first half's digest as basis
  // equals hashing the whole range at once.
  const std::uint64_t half = offload::fnv1a(bytes, 4);
  EXPECT_EQ(d1, offload::fnv1a(bytes + 4, 4, half));

  // Sensitivity: any single-byte change (or a truncation) moves the digest.
  std::uint8_t flipped[sizeof(bytes)];
  for (std::size_t i = 0; i < sizeof(bytes); ++i) {
    std::copy(bytes, bytes + sizeof(bytes), flipped);
    flipped[i] ^= 0x01;
    EXPECT_NE(d1, offload::fnv1a(flipped, sizeof(flipped))) << "byte " << i;
  }
  EXPECT_NE(d1, offload::fnv1a(bytes, sizeof(bytes) - 1));
}

TEST(PayloadDigest, DistinguishesPayloads) {
  noc::DispatchMessage a;
  a.words = {1, 2, 3, 4};
  noc::DispatchMessage b = a;
  EXPECT_EQ(offload::payload_digest(a), offload::payload_digest(b));
  b.words[2] = 99;
  EXPECT_NE(offload::payload_digest(a), offload::payload_digest(b));
}

// ---- runtime verify pass under injected corruption --------------------------

constexpr std::uint64_t kN = 512;
constexpr unsigned kM = 8;

/// Run one daxpy offload without the functional check (corrupted results are
/// numerically wrong by design — the integrity report is the subject here).
offload::OffloadResult run_unverified(const soc::SocConfig& cfg) {
  soc::Soc soc(cfg);
  sim::Rng rng(42);
  soc::PreparedJob job =
      prepare_workload(soc, soc.kernels().by_name("daxpy"), kN, soc.num_clusters(), rng);
  return soc.run_offload(job.args, kM);
}

TEST(RuntimeAttestation, CleanRunVerifiesEveryChunkAndOnlyAddsTheVerifyPhase) {
  soc::SocConfig cfg = soc::SocConfig::extended(kM);
  const offload::OffloadResult off = soc::run_daxpy(cfg, kN, kM);
  cfg.runtime.integrity.enabled = true;
  const offload::OffloadResult on = soc::run_daxpy(cfg, kN, kM);

  EXPECT_TRUE(on.integrity.checks_enabled);
  EXPECT_EQ(on.integrity.chunks_checked, kM);
  EXPECT_EQ(on.integrity.digest_mismatches, 0u);
  EXPECT_TRUE(on.integrity.silent_clusters.empty());
  EXPECT_GT(on.phases().verify, 0u);
  EXPECT_GT(on.ts.verify_done, 0u);

  // The verify pass runs strictly after the completion gather: everything up
  // to the completion observation is bit-identical to the checks-off run.
  EXPECT_EQ(on.ts.completion, off.ts.completion);
  EXPECT_EQ(on.phases().marshal, off.phases().marshal);
  EXPECT_EQ(on.phases().dispatch, off.phases().dispatch);
  EXPECT_EQ(on.phases().wait, off.phases().wait);
  EXPECT_EQ(off.phases().verify, 0u);
  EXPECT_EQ(off.ts.verify_done, 0u);
  EXPECT_GT(on.total(), off.total());
}

TEST(RuntimeAttestation, EveryDetectableModeConvictsAtTheGather) {
  struct Mode {
    const char* name;
    double fault::FaultConfig::* prob;
  };
  const Mode modes[] = {{"payload_flip", &fault::FaultConfig::payload_flip_prob},
                        {"chunk_truncate", &fault::FaultConfig::chunk_truncate_prob},
                        {"meta_corrupt", &fault::FaultConfig::meta_corrupt_prob}};
  for (const Mode& m : modes) {
    soc::SocConfig cfg = soc::SocConfig::extended(kM);
    cfg.runtime.integrity.enabled = true;
    cfg.fault.seed = 7;
    cfg.fault.*(m.prob) = 1.0;
    const offload::OffloadResult r = run_unverified(cfg);
    EXPECT_EQ(r.integrity.chunks_checked, kM) << m.name;
    EXPECT_EQ(r.integrity.digest_mismatches, kM) << m.name;
    EXPECT_EQ(r.integrity.corrupted_clusters.size(), kM) << m.name;
    EXPECT_TRUE(r.integrity.silent_clusters.empty()) << m.name;
    EXPECT_TRUE(r.integrity.detected(0)) << m.name;
  }
}

TEST(RuntimeAttestation, StaleReadIsChecksumBlind) {
  // The cluster computed honestly over wrong inputs: its digest verifies, so
  // the corruption lands in the silent oracle list, never in a mismatch.
  soc::SocConfig cfg = soc::SocConfig::extended(kM);
  cfg.runtime.integrity.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.stale_read_prob = 1.0;
  const offload::OffloadResult r = run_unverified(cfg);
  EXPECT_EQ(r.integrity.digest_mismatches, 0u);
  EXPECT_TRUE(r.integrity.corrupted_clusters.empty());
  EXPECT_EQ(r.integrity.silent_clusters.size(), kM);
  EXPECT_TRUE(r.integrity.silent(0));
  EXPECT_FALSE(r.integrity.detected(0));
}

TEST(RuntimeAttestation, ChecksOffIsBlindToEveryMode) {
  soc::SocConfig cfg = soc::SocConfig::extended(kM);
  cfg.fault.seed = 7;
  cfg.fault.payload_flip_prob = 1.0;
  const offload::OffloadResult r = run_unverified(cfg);
  EXPECT_FALSE(r.integrity.checks_enabled);
  EXPECT_EQ(r.integrity.chunks_checked, 0u);
  EXPECT_EQ(r.integrity.digest_mismatches, 0u);
  EXPECT_EQ(r.integrity.silent_clusters.size(), kM);
  EXPECT_EQ(r.phases().verify, 0u);
}

TEST(RuntimeAttestation, DormantInjectorAndDisabledChecksAreBitIdenticalToTheSeed) {
  // The headline pin: an all-zero corruption config with attestation off
  // must not move a single cycle, whatever the fault seed.
  const soc::SocConfig seed_cfg = soc::SocConfig::extended(kM);
  soc::SocConfig dormant = seed_cfg;
  dormant.fault.seed = 0xDEADBEEF;  // injector is never armed, seed is inert
  const offload::OffloadResult a = soc::run_daxpy(seed_cfg, kN, kM);
  const offload::OffloadResult b = soc::run_daxpy(dormant, kN, kM);
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.ts.completion, b.ts.completion);
  EXPECT_EQ(a.ts.ret, b.ts.ret);
  EXPECT_FALSE(b.integrity.any_corruption());
}

// ---- router conviction machinery (scripted executor seam) -------------------

/// Scripted executor: per-job queues of outcomes, served in call order (the
/// last script entry repeats once exhausted; unscripted jobs run clean).
class CorruptingFakeExecutor : public serve::Executor {
 public:
  explicit CorruptingFakeExecutor(sim::Cycles duration = 100) : duration_(duration) {}

  std::map<std::uint64_t, std::vector<ExecutionOutcome>> scripts;
  std::vector<std::vector<std::uint64_t>> calls;  ///< ids per execute/batch call
  std::uint64_t restarts = 0;

  ExecutionOutcome execute(const ServeJob& job, unsigned, bool probe) override {
    if (!probe) calls.push_back({job.id});
    ExecutionOutcome out = next_for(job.id);
    out.duration = duration_;
    return out;
  }

  BatchExecutionOutcome execute_batch(const std::vector<ServeJob>& jobs, unsigned) override {
    std::vector<std::uint64_t> ids;
    for (const ServeJob& j : jobs) ids.push_back(j.id);
    calls.push_back(ids);
    BatchExecutionOutcome out;
    sim::Cycles offset = 0;
    for (const ServeJob& j : jobs) {
      ExecutionOutcome one = next_for(j.id);
      offset += duration_;
      one.duration = offset;
      out.jobs.push_back(one);
    }
    return out;
  }

  void restart() override { ++restarts; }

 private:
  ExecutionOutcome next_for(std::uint64_t id) {
    auto it = scripts.find(id);
    if (it == scripts.end() || it->second.empty()) return ExecutionOutcome{};
    ExecutionOutcome out = it->second.front();
    if (it->second.size() > 1) it->second.erase(it->second.begin());
    return out;
  }

  sim::Cycles duration_;
};

model::RuntimeModel linear_model() {
  model::RuntimeModel m;
  m.t0 = 100.0;
  m.b = 1.0;
  return m;
}

FleetConfig config(unsigned shards, unsigned clusters_per_shard, std::size_t max_batch = 1,
                   bool stealing = false) {
  FleetConfig cfg;
  cfg.num_shards = shards;
  cfg.clusters_per_shard = clusters_per_shard;
  cfg.model = linear_model();
  cfg.max_batch = max_batch;
  cfg.stealing = stealing;
  return cfg;
}

ServeJob job(std::uint64_t id, std::uint64_t n, sim::Cycle arrival, sim::Cycles t_max) {
  ServeJob j;
  j.id = id;
  j.n = n;
  j.arrival = arrival;
  j.t_max = t_max;
  return j;
}

/// One scripted outcome: digest-convicted members and/or the silent oracle.
ExecutionOutcome outcome_with(std::vector<unsigned> corrupted, bool silent, bool checked) {
  ExecutionOutcome out;
  out.corrupted_members = std::move(corrupted);
  out.silent_corruption = silent;
  out.integrity_checked = checked;
  return out;
}

TEST(FleetIntegrity, ConvictionReExecutesOnADisjointPartitionAndRetiresMet) {
  CorruptingFakeExecutor e0, e1;
  // First attempt of j1 on shard 0 is digest-convicted; any re-execution is
  // clean.
  e0.scripts[1] = {outcome_with({0}, true, true), ExecutionOutcome{}};
  FleetRouter fleet(config(2, 1), {&e0, &e1});
  check::ProtocolMonitor mon;
  fleet.trace().set_observer([&mon](const sim::TraceRecord& rec) { mon.observe(rec); });
  const std::vector<JobOutcome> out = fleet.run({job(1, 100, 0, 100'000)});
  mon.finish();

  EXPECT_EQ(fleet.corruptions_detected(), 1u);
  EXPECT_EQ(fleet.integrity_retries(), 1u);
  EXPECT_EQ(fleet.corruption_escapes(), 0u);
  EXPECT_EQ(fleet.integrity_failed_jobs(), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kMet);
  EXPECT_EQ(out[0].integrity_retries, 1u);
  // The retry is disjoint from the convicted (shard 0, cluster 0) pair: it
  // must land on shard 1.
  ASSERT_EQ(e0.calls.size(), 1u);
  ASSERT_EQ(e1.calls.size(), 1u);
  EXPECT_EQ(e1.calls[0], std::vector<std::uint64_t>{1});
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

TEST(FleetIntegrity, ExhaustedRetryBudgetRetiresIntegrityFailed) {
  CorruptingFakeExecutor e0, e1;
  e0.scripts[1] = {outcome_with({0}, true, true)};
  FleetConfig cfg = config(2, 1);
  cfg.integrity.retry_budget = 0;
  FleetRouter fleet(cfg, {&e0, &e1});
  check::ProtocolMonitor mon;
  fleet.trace().set_observer([&mon](const sim::TraceRecord& rec) { mon.observe(rec); });
  const std::vector<JobOutcome> out = fleet.run({job(1, 100, 0, 100'000)});
  mon.finish();

  EXPECT_EQ(fleet.corruptions_detected(), 1u);
  EXPECT_EQ(fleet.integrity_retries(), 0u);
  EXPECT_EQ(fleet.integrity_failed_jobs(), 1u);
  EXPECT_EQ(fleet.corruption_escapes(), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kFailed);
  EXPECT_EQ(out[0].reason, "integrity_failed");
  // A convicted job may retire failed — the monitor only forbids a
  // *delivered* verdict.
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

TEST(FleetIntegrity, AuditLotteryCatchesAChecksumBlindResult) {
  CorruptingFakeExecutor e0, e1;
  // Stale-read shape: digests verify (no corrupted members) but the oracle
  // bit is set. Only the dual-execution audit can convict it.
  e0.scripts[1] = {outcome_with({}, true, true), ExecutionOutcome{}};
  FleetConfig cfg = config(2, 1);
  cfg.integrity.audit_fraction = 1.0;
  FleetRouter fleet(cfg, {&e0, &e1});
  check::ProtocolMonitor mon;
  fleet.trace().set_observer([&mon](const sim::TraceRecord& rec) { mon.observe(rec); });
  const std::vector<JobOutcome> out = fleet.run({job(1, 100, 0, 100'000)});
  mon.finish();

  // Both executions are audited (fraction 1.0): the first convicts, the
  // clean re-execution passes.
  EXPECT_EQ(fleet.audits(), 2u);
  EXPECT_EQ(fleet.audit_mismatches(), 1u);
  EXPECT_EQ(fleet.integrity_retries(), 1u);
  EXPECT_EQ(fleet.corruption_escapes(), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kMet);
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

TEST(FleetIntegrity, BlindEscapeIsCountedButNotABreach) {
  // Attestation off: the silently corrupted result retires met, the escape
  // counter ticks, and the blind=1 stamp keeps the monitor clean — leaking
  // was the config's stated choice.
  CorruptingFakeExecutor e0, e1;
  e0.scripts[1] = {outcome_with({}, true, false)};
  FleetRouter fleet(config(2, 1), {&e0, &e1});
  check::ProtocolMonitor mon;
  fleet.trace().set_observer([&mon](const sim::TraceRecord& rec) { mon.observe(rec); });
  const std::vector<JobOutcome> out = fleet.run({job(1, 100, 0, 100'000)});
  mon.finish();

  EXPECT_EQ(fleet.corruption_escapes(), 1u);
  EXPECT_EQ(fleet.corruptions_detected(), 0u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kMet);
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

TEST(FleetIntegrity, CheckedEscapeIsConvictedByTheMonitor) {
  // The scripted escape double: checks were on, every defense missed (no
  // digest mismatch, no audit), and the corrupt result retired met. The
  // router cannot see it — but the corrupt=1 stamp lets the serve_integrity
  // invariant convict the run from the trace.
  CorruptingFakeExecutor e0, e1;
  e0.scripts[1] = {outcome_with({}, true, true)};
  FleetRouter fleet(config(2, 1), {&e0, &e1});
  check::ProtocolMonitor mon;
  fleet.trace().set_observer([&mon](const sim::TraceRecord& rec) { mon.observe(rec); });
  const std::vector<JobOutcome> out = fleet.run({job(1, 100, 0, 100'000)});
  mon.finish();

  EXPECT_EQ(fleet.corruption_escapes(), 1u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kMet);
  ASSERT_GE(mon.total_violations(), 1u);
  bool integrity = false;
  for (const check::Violation& v : mon.violations()) {
    if (v.invariant == "serve_integrity") integrity = true;
  }
  EXPECT_TRUE(integrity) << mon.to_json();
}

TEST(FleetIntegrity, RepeatOffenderQuarantinesThroughTheBreaker) {
  CorruptingFakeExecutor e0, e1;
  e0.scripts[1] = {outcome_with({0}, true, true), ExecutionOutcome{}};
  FleetConfig cfg = config(2, 1);
  cfg.health.failure_threshold = 1;  // one conviction trips the breaker
  FleetRouter fleet(cfg, {&e0, &e1});
  check::ProtocolMonitor mon;
  fleet.trace().set_observer([&mon](const sim::TraceRecord& rec) { mon.observe(rec); });
  const std::vector<JobOutcome> out = fleet.run({job(1, 100, 0, 100'000)});
  mon.finish();

  EXPECT_EQ(fleet.corruptions_detected(), 1u);
  EXPECT_GE(fleet.health(0).quarantines(), 1u);
  EXPECT_EQ(fleet.health(1).quarantines(), 0u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kMet);
  // serve_quarantine lands after the serve_corruption that justifies it, so
  // the pending-quarantine shadow closes cleanly.
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

// ---- the serve_integrity shadow (synthetic stories) -------------------------

void feed(check::ProtocolMonitor& mon, sim::Cycle t, const std::string& what,
          const std::string& detail) {
  sim::TraceRecord rec;
  rec.time = t;
  rec.who = "serve";
  rec.what = what;
  rec.detail = detail;
  rec.phase = sim::TracePhase::kInstant;
  mon.observe(rec);
}

bool has_invariant(const check::ProtocolMonitor& mon, const std::string& name) {
  return std::any_of(mon.violations().begin(), mon.violations().end(),
                     [&](const check::Violation& v) { return v.invariant == name; });
}

TEST(ServeIntegrityShadow, CleanConvictionRetryStoryHasNoViolations) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
  feed(mon, 110, "serve_corruption", "job=1 shard=0 members=0 clusters=0");
  feed(mon, 110, "serve_integrity_retry", "job=1 epoch=1 from=0");
  feed(mon, 110, "serve_dispatch", "job=1 shard=1 m=1 batch=0 clusters=0");
  feed(mon, 210, "serve_complete", "job=1 shard=1 verdict=met clusters=0");
  mon.finish();
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

TEST(ServeIntegrityShadow, ConvictedResultRetiringDeliveredIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
  feed(mon, 110, "serve_corruption", "job=1 shard=0 members=0 clusters=0");
  feed(mon, 120, "serve_complete", "job=1 shard=0 verdict=met");
  mon.finish();
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_integrity")) << mon.to_json();
}

TEST(ServeIntegrityShadow, CorruptResultRetiringMetUnderAttestationIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
  feed(mon, 110, "serve_complete", "job=1 shard=0 verdict=met corrupt=1 clusters=0");
  mon.finish();
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_integrity")) << mon.to_json();
}

TEST(ServeIntegrityShadow, BlindEscapeIsNotAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
  feed(mon, 110, "serve_complete", "job=1 shard=0 verdict=met corrupt=1 blind=1 clusters=0");
  mon.finish();
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

TEST(ServeIntegrityShadow, RetryWithoutAConvictionIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
  feed(mon, 110, "serve_integrity_retry", "job=1 epoch=1 from=0");
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_integrity")) << mon.to_json();
}

TEST(ServeIntegrityShadow, ConvictionOrAuditOfARetiredJobIsAViolation) {
  {
    check::ProtocolMonitor mon;
    feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
    feed(mon, 110, "serve_complete", "job=1 shard=0 verdict=met clusters=0");
    feed(mon, 120, "serve_corruption", "job=1 shard=0 members=0");
    EXPECT_TRUE(has_invariant(mon, "serve_integrity")) << mon.to_json();
  }
  {
    check::ProtocolMonitor mon;
    feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
    feed(mon, 110, "serve_complete", "job=1 shard=0 verdict=met clusters=0");
    feed(mon, 120, "serve_audit", "job=1 shard=0 mismatch=0");
    EXPECT_TRUE(has_invariant(mon, "serve_integrity")) << mon.to_json();
  }
}

TEST(ServeIntegrityShadow, TrippedBreakerMustQuarantineBeforeTheNextDispatch) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
  feed(mon, 110, "serve_corruption", "job=1 shard=0 members=0 tripped=0 clusters=0");
  // Dispatching onto the convicted cluster before its serve_quarantine
  // record is the sick-silicon leak the invariant exists to catch.
  feed(mon, 120, "serve_dispatch", "job=2 shard=0 m=1 batch=0 clusters=0");
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_integrity")) << mon.to_json();
}

TEST(ServeIntegrityShadow, PendingQuarantineAndOpenConvictionAreCaughtAtFinish) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=1 batch=0 clusters=0");
  feed(mon, 110, "serve_corruption", "job=1 shard=0 members=0 tripped=0 clusters=0");
  mon.finish();
  // Two open integrity obligations: the conviction never resolved into a
  // retry/failure, and the tripped breaker never quarantined.
  ASSERT_GE(mon.total_violations(), 2u);
  EXPECT_TRUE(has_invariant(mon, "serve_integrity")) << mon.to_json();
}

// ---- deadline-aware work stealing -------------------------------------------

TEST(StealPolicy, TightestSlackRescuesTheExpiringJobFirst) {
  // Shard 0 is slow (1000-cycle jobs) and ends up with a two-deep backlog
  // [j3 (loose deadline), j5 (tight deadline)]; shard 1 is fast and starts
  // stealing at t=200. Backlog-head pulls in id order; tightest-slack
  // rescues j5 first.
  auto run = [](serve::StealPolicy policy) {
    CorruptingFakeExecutor e0(1000), e1(100);
    FleetConfig cfg = config(2, 1, 1, /*stealing=*/true);
    cfg.steal_policy = policy;
    FleetRouter fleet(cfg, {&e0, &e1});
    const std::vector<ServeJob> jobs = {job(1, 100, 0, 100'000), job(2, 100, 0, 100'000),
                                        job(3, 100, 0, 50'000), job(4, 100, 0, 100'000),
                                        job(5, 100, 0, 5'000)};
    const std::vector<JobOutcome> out = fleet.run(jobs);
    for (const JobOutcome& o : out) EXPECT_EQ(o.verdict, JobVerdict::kMet) << o.job_id;
    EXPECT_GE(fleet.steals(), 2u);
    std::vector<std::uint64_t> order;
    for (const auto& call : e1.calls) order.insert(order.end(), call.begin(), call.end());
    return order;
  };
  EXPECT_EQ(run(serve::StealPolicy::kBacklogHead),
            (std::vector<std::uint64_t>{2, 4, 3, 5}));
  EXPECT_EQ(run(serve::StealPolicy::kTightestSlack),
            (std::vector<std::uint64_t>{2, 4, 5, 3}));
}

TEST(StealPolicy, TightestSlackReplayIsBitIdentical) {
  // Two independent replays of the same saturating trace under the
  // deadline-aware policy must emit byte-identical steal streams and
  // verdicts (the policy is a pure function of the trace).
  serve::SoakTraceConfig tc = serve::fleet_trace_config(200);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  auto replay = [&]() {
    std::vector<std::unique_ptr<serve::SocExecutor>> execs;
    std::vector<serve::Executor*> ptrs;
    for (unsigned s = 0; s < 2; ++s) {
      serve::SocExecutorConfig xc;
      xc.soc = soc::SocConfig::extended(cfg.clusters_per_shard);
      xc.tolerance = cfg.tolerance;
      xc.workload_seed = cfg.workload_seed + s;
      execs.push_back(std::make_unique<serve::SocExecutor>(xc));
      ptrs.push_back(execs.back().get());
    }
    serve::FleetConfig fc;
    fc.num_shards = 2;
    fc.clusters_per_shard = cfg.clusters_per_shard;
    fc.model = cfg.model;
    fc.max_queue = cfg.max_queue;
    fc.max_clusters_per_job = cfg.max_clusters_per_job;
    fc.health = cfg.health;
    fc.steal_policy = serve::StealPolicy::kTightestSlack;
    FleetRouter fleet(fc, ptrs);
    std::vector<std::string> records;
    fleet.trace().set_observer([&records](const sim::TraceRecord& rec) {
      if (rec.what == "serve_steal") {
        records.push_back(std::to_string(rec.time) + " " + rec.detail);
      }
    });
    const std::vector<JobOutcome> out = fleet.run(trace);
    for (const JobOutcome& o : out) {
      records.push_back("verdict " + std::to_string(o.job_id) + " " +
                        std::string(serve::to_string(o.verdict)));
    }
    return records;
  };
  const std::vector<std::string> first = replay();
  EXPECT_EQ(first, replay());
  EXPECT_GT(first.size(), trace.size());  // at least one steal record
}

// ---- the E24 grid -----------------------------------------------------------

TEST(FleetIntegrityGrid, CoversTheScriptedDefenses) {
  const std::vector<serve::FleetIntegrityPoint> grid = serve::fleet_integrity_grid();
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_EQ(grid[0].name, "control");
  EXPECT_EQ(grid[1].name, "flip_low");
  EXPECT_EQ(grid[2].name, "flip_high");
  EXPECT_EQ(grid[3].name, "mix_detectable");
  EXPECT_EQ(grid[4].name, "stale_audit");
  EXPECT_EQ(grid[5].name, "flip_audit");
  EXPECT_EQ(grid[6].name, "blind_off");
  for (const serve::FleetIntegrityPoint& p : grid) {
    EXPECT_EQ(p.num_shards, 4u) << p.name;
    EXPECT_EQ(p.checks, p.name != "blind_off") << p.name;
  }
  EXPECT_EQ(grid[0].rate, 0.0);
  EXPECT_FALSE(grid[0].corruption.corruption_enabled());
  // The checksum-blind row keeps every completion auditable.
  EXPECT_EQ(grid[4].max_batch, 1u);
  EXPECT_EQ(grid[4].audit_fraction, 1.0);
  EXPECT_GT(grid[6].rate, 0.0);
}

TEST(FleetIntegrityGrid, PointsRunSealedUnderTheMonitors) {
  serve::SoakTraceConfig tc = serve::fleet_trace_config(150);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  for (const serve::FleetIntegrityPoint& pt : serve::fleet_integrity_grid()) {
    const serve::FleetIntegrityResult r = serve::run_fleet_integrity_point(pt, trace, cfg);
    EXPECT_EQ(r.soc_violations, 0u) << pt.name;
    EXPECT_EQ(r.serve_violations, 0u) << pt.name;
    EXPECT_EQ(r.met + r.missed + r.shed + r.failed, r.jobs) << pt.name;
    if (pt.checks) {
      // The tentpole property at any trace length: attestation + audit admit
      // zero corrupted verdicts.
      EXPECT_EQ(r.escapes, 0u) << pt.name;
      EXPECT_GT(r.verify_cycles, 0u) << pt.name;
    } else {
      EXPECT_EQ(r.detected, 0u) << pt.name;
      EXPECT_EQ(r.verify_cycles, 0u) << pt.name;
    }
    if (pt.name == "control") {
      EXPECT_EQ(r.detected, 0u);
    }
    if (pt.name == "flip_high") {
      EXPECT_GT(r.detected, 0u);
    }
    if (pt.name == "blind_off") {
      EXPECT_GT(r.escapes, 0u);
    }
  }
}

TEST(FleetIntegrityReport, IsByteIdenticalAcrossJobsLevels) {
  serve::SoakTraceConfig tc = serve::fleet_trace_config(120);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  const std::vector<serve::FleetIntegrityPoint> grid = serve::fleet_integrity_grid();
  auto report_at = [&](unsigned jobs) {
    exp::SweepRunner runner(jobs);
    const std::vector<serve::FleetIntegrityResult> results =
        runner.map(grid, [&](const serve::FleetIntegrityPoint& pt) {
          return serve::run_fleet_integrity_point(pt, trace, cfg);
        });
    return serve::integrity_report_json(results, tc);
  };
  const std::string at1 = report_at(1);
  EXPECT_EQ(at1, report_at(4));
  EXPECT_EQ(at1, report_at(16));
}

}  // namespace
