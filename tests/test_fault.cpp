// Fault-injection + recovery-layer tests: determinism of the injected fault
// stream, correctness of the watchdog/retry/redistribute engine under every
// fault type at probability 1.0, and the zero-probability guarantee that the
// machinery costs nothing when dormant (the paper's headline numbers are
// bit-identical to the fault-free seed).
#include <gtest/gtest.h>

#include <tuple>

#include "model/fault_model.h"
#include "model/runtime_model.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using namespace mco::soc;

constexpr std::uint64_t kN = 1024;
constexpr unsigned kM = 32;

/// A fast-recovery config: short watchdog rounds so faulted runs stay cheap.
SocConfig faulty(SocConfig cfg) {
  cfg.runtime.watchdog_wait_cycles = 2000;
  return cfg;
}

/// Everything the recovery layer reports, as one comparable tuple.
auto recovery_tuple(const offload::OffloadResult& r) {
  return std::make_tuple(r.recovery.degraded, r.recovery.watchdog_timeouts,
                         r.recovery.retries, r.recovery.probes,
                         r.recovery.credits_recovered, r.recovery.clusters_redistributed,
                         r.recovery.failed_clusters, r.recovery.recovery_cycles);
}

// ---- (a) determinism --------------------------------------------------------

// Same seed + same config ⇒ bit-identical cycle counts and recovery stats,
// with several fault types enabled at once across independent Soc instances.
TEST(FaultDeterminism, SameSeedSameConfigBitIdentical) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.seed = 0xC0FFEE;
  cfg.fault.dispatch_drop_prob = 0.15;
  cfg.fault.credit_drop_prob = 0.10;
  cfg.fault.cluster_straggle_prob = 0.20;
  cfg.fault.straggle_cycles = 3000;
  cfg.fault.irq_swallow_prob = 0.10;

  const auto r1 = run_daxpy(cfg, 512, 16);
  const auto r2 = run_daxpy(cfg, 512, 16);
  EXPECT_EQ(r1.total(), r2.total());
  EXPECT_EQ(recovery_tuple(r1), recovery_tuple(r2));
  EXPECT_EQ(r1.ts.completion, r2.ts.completion);
}

// The sw-sync/polling (baseline) recovery path is deterministic too.
TEST(FaultDeterminism, BaselinePathBitIdentical) {
  SocConfig cfg = faulty(SocConfig::baseline(32));
  cfg.fault.seed = 99;
  cfg.fault.dispatch_drop_prob = 0.25;
  cfg.fault.credit_drop_prob = 0.10;

  const auto r1 = run_daxpy(cfg, 512, 16);
  const auto r2 = run_daxpy(cfg, 512, 16);
  EXPECT_EQ(r1.total(), r2.total());
  EXPECT_EQ(recovery_tuple(r1), recovery_tuple(r2));
}

// A different seed still completes and verifies (whatever pattern it draws).
TEST(FaultDeterminism, OtherSeedsStillCompleteCorrectly) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SocConfig cfg = faulty(SocConfig::extended(32));
    cfg.fault.seed = seed;
    cfg.fault.dispatch_drop_prob = 0.2;
    EXPECT_NO_THROW(run_daxpy(cfg, 512, 16)) << "seed=" << seed;
  }
}

// ---- (b) every fault type at probability 1.0 --------------------------------

// A dispatch that never arrives: retries are dropped too (p = 1), so the
// victim is declared failed and its chunk redistributed — degraded but
// numerically correct (run_daxpy verifies the output).
TEST(FaultTypes, DispatchDropExhaustsRetriesThenDegrades) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.target_cluster = 3;
  cfg.fault.dispatch_drop_prob = 1.0;

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_TRUE(r.recovery.degraded);
  EXPECT_EQ(r.recovery.failed_clusters, std::vector<unsigned>{3});
  EXPECT_EQ(r.recovery.retries, cfg.runtime.max_retries);
  EXPECT_GE(r.recovery.watchdog_timeouts, 1u);
  EXPECT_EQ(r.recovery.clusters_redistributed, 1u);
  EXPECT_GT(r.recovery.recovery_cycles, 0u);
}

// A delayed dispatch is not a loss: the job completes inside the watchdog
// window, with no timeouts, retries or degradation.
TEST(FaultTypes, DispatchDelayCompletesCleanly) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.target_cluster = 3;
  cfg.fault.dispatch_delay_prob = 1.0;
  cfg.fault.dispatch_delay_cycles = 200;

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_FALSE(r.recovery.degraded);
  EXPECT_EQ(r.recovery.watchdog_timeouts, 0u);
  EXPECT_EQ(r.recovery.retries, 0u);
}

// A lost completion credit: the watchdog expires, the probe finds the victim
// idle with the job completed, and the completion is recovered from the
// status registers — no retry, no degradation.
TEST(FaultTypes, CreditDropRecoveredByProbeHwSync) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.target_cluster = 3;
  cfg.fault.credit_drop_prob = 1.0;

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_FALSE(r.recovery.degraded);
  EXPECT_GE(r.recovery.watchdog_timeouts, 1u);
  EXPECT_GE(r.recovery.credits_recovered, 1u);
  EXPECT_EQ(r.recovery.retries, 0u);
}

// Same, on the baseline design (lost completion AMO, polling wait path).
TEST(FaultTypes, CreditDropRecoveredByProbeSwSync) {
  SocConfig cfg = faulty(SocConfig::baseline(32));
  cfg.fault.target_cluster = 3;
  cfg.fault.credit_drop_prob = 1.0;

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_FALSE(r.recovery.degraded);
  EXPECT_GE(r.recovery.credits_recovered, 1u);
  EXPECT_EQ(r.recovery.retries, 0u);
}

// Duplicated credits inflate the hw counter and fire the completion IRQ
// early; the runtime checks the per-cluster bitmap, re-arms for what is
// actually missing and completes correctly once every bit is set.
TEST(FaultTypes, CreditDuplicateSurvivesPrematureIrq) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.credit_duplicate_prob = 1.0;  // every cluster's credit, doubled

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_FALSE(r.recovery.degraded);
  EXPECT_EQ(r.recovery.retries, 0u);
  EXPECT_TRUE(r.recovery.failed_clusters.empty());
}

// A swallowed completion IRQ: the watchdog expires, the bitmap already shows
// every participant done, and the offload finishes without retries.
TEST(FaultTypes, IrqSwallowFinishesViaWatchdogAndBitmap) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.irq_swallow_prob = 1.0;

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_FALSE(r.recovery.degraded);
  EXPECT_GE(r.recovery.watchdog_timeouts, 1u);
  EXPECT_EQ(r.recovery.retries, 0u);
  EXPECT_GT(r.total(), 2000u);  // paid the full watchdog window
}

// The acceptance scenario: one permanently hung cluster at M=32, N=1024.
// Every wakeup (including retried dispatches) hangs, so after max_retries
// the chunk is redistributed to a survivor. Completes degraded, numerically
// correct, with recovery_cycles > 0.
TEST(FaultTypes, PermanentClusterHangDegradedCompletionHwSync) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.target_cluster = 5;
  cfg.fault.cluster_hang_prob = 1.0;

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_TRUE(r.recovery.degraded);
  EXPECT_EQ(r.recovery.failed_clusters, std::vector<unsigned>{5});
  EXPECT_EQ(r.recovery.retries, cfg.runtime.max_retries);
  EXPECT_EQ(r.recovery.clusters_redistributed, 1u);
  EXPECT_GT(r.recovery.recovery_cycles, 0u);
  EXPECT_GT(r.total(), 633u);  // strictly slower than the fault-free run
}

// Same permanent hang on the baseline (polling) design.
TEST(FaultTypes, PermanentClusterHangDegradedCompletionSwSync) {
  SocConfig cfg = faulty(SocConfig::baseline(32));
  cfg.fault.target_cluster = 5;
  cfg.fault.cluster_hang_prob = 1.0;

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_TRUE(r.recovery.degraded);
  EXPECT_EQ(r.recovery.failed_clusters, std::vector<unsigned>{5});
  EXPECT_EQ(r.recovery.clusters_redistributed, 1u);
  EXPECT_GT(r.recovery.recovery_cycles, 0u);
}

// A straggler that outlives the watchdog window: the probe finds it busy and
// the host waits it out — never killed, never retried, not degraded.
TEST(FaultTypes, StragglerWaitedOutNotKilled) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.target_cluster = 7;
  cfg.fault.cluster_straggle_prob = 1.0;
  cfg.fault.straggle_cycles = 5000;  // > watchdog_wait_cycles = 2000

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_FALSE(r.recovery.degraded);
  EXPECT_GE(r.recovery.watchdog_timeouts, 1u);
  EXPECT_GE(r.recovery.probes, 1u);
  EXPECT_EQ(r.recovery.retries, 0u);
  EXPECT_GT(r.total(), 5000u);  // paid the straggle
}

// Stalled DMA setup slows the victim but the job still completes correctly.
TEST(FaultTypes, DmaStallCompletesCorrectly) {
  SocConfig cfg = faulty(SocConfig::extended(32));
  cfg.fault.target_cluster = 2;
  cfg.fault.dma_stall_prob = 1.0;
  cfg.fault.dma_stall_cycles = 500;

  const auto r = run_daxpy(cfg, kN, kM);
  EXPECT_FALSE(r.recovery.degraded);
  EXPECT_EQ(r.recovery.retries, 0u);
}

// Delayed dispatches must be distinguishable from lost ones: the SoC rejects
// a watchdog window shorter than the worst-case fabric delay.
TEST(FaultTypes, RejectsWatchdogShorterThanDispatchDelay)
{
  SocConfig cfg = SocConfig::extended(4);
  cfg.fault.dispatch_delay_prob = 0.5;
  cfg.fault.dispatch_delay_cycles = 5000;
  cfg.runtime.watchdog_wait_cycles = 1000;  // < 5000 + 100
  EXPECT_THROW(Soc soc(cfg), std::invalid_argument);
}

// Reductions cannot re-express a chunk as a sub-job, so a permanent failure
// surfaces as an explicit error instead of a silently incomplete result.
TEST(FaultTypes, NonRedistributableKernelFailsLoudly) {
  SocConfig cfg = faulty(SocConfig::extended(8));
  cfg.fault.target_cluster = 1;
  cfg.fault.cluster_hang_prob = 1.0;
  Soc soc(cfg);
  EXPECT_THROW(run_verified(soc, "dot", 256, 8), std::runtime_error);
}

// ---- (c) zero probability ⇒ the seed's exact numbers ------------------------

// An all-zero FaultConfig is the default; the injector is not even
// constructed, so the paper's headline cycle counts are reproduced exactly:
// t_ext(32, 1024) = 633, t_base(32, 1024) = 936, speedup 1.479x.
TEST(FaultDormant, ZeroProbReproducesSeedCyclesExactly) {
  SocConfig ext = SocConfig::extended(32);
  SocConfig base = SocConfig::baseline(32);
  ASSERT_FALSE(ext.fault.any_enabled());

  const auto re = run_daxpy(ext, kN, kM);
  const auto rb = run_daxpy(base, kN, kM);
  EXPECT_EQ(re.total(), 633u);
  EXPECT_EQ(rb.total(), 936u);
  EXPECT_NEAR(static_cast<double>(rb.total()) / static_cast<double>(re.total()), 1.479, 0.02);

  for (const auto* r : {&re, &rb}) {
    EXPECT_FALSE(r->recovery.degraded);
    EXPECT_EQ(r->recovery.watchdog_timeouts, 0u);
    EXPECT_EQ(r->recovery.retries, 0u);
    EXPECT_EQ(r->recovery.probes, 0u);
    EXPECT_EQ(r->recovery.credits_recovered, 0u);
    EXPECT_EQ(r->recovery.clusters_redistributed, 0u);
    EXPECT_TRUE(r->recovery.failed_clusters.empty());
    EXPECT_EQ(r->recovery.recovery_cycles, 0u);
  }
}

// Zero-probability config leaves the injector unwired entirely.
TEST(FaultDormant, InjectorAbsentWhenAllProbsZero) {
  Soc soc(SocConfig::extended(4));
  EXPECT_EQ(soc.fault_injector(), nullptr);
  EXPECT_FALSE(soc.config().runtime.recovery_enabled);
}

// ---- satellite: hard watchdog ceiling on blocking helpers -------------------

// A deadlocked offload (hung cluster, recovery disabled because the run is
// driven with a tiny global ceiling) errors out instead of spinning forever.
TEST(Watchdog, BlockingHelperCeilingFiresOnDeadlock) {
  SocConfig cfg = SocConfig::extended(4);
  cfg.runtime.watchdog_cycles = 50;  // far below the ~650-cycle offload
  Soc soc(cfg);
  EXPECT_THROW(run_verified(soc, "daxpy", 256, 4), std::runtime_error);
}

// ---- expected-runtime-under-faults model ------------------------------------

TEST(FaultModel, OverheadZeroAtZeroProbAndMonotone) {
  model::FaultModelParams p;
  p.watchdog_wait_cycles = 2000;
  p.redistribute_cycles = 700;
  p.dispatch_loss_prob = 0.0;
  EXPECT_EQ(model::expected_fault_overhead(p), 0.0);
  double prev = 0.0;
  for (const double q : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    p.dispatch_loss_prob = q;
    const double o = model::expected_fault_overhead(p);
    EXPECT_GT(o, prev) << q;
    prev = o;
  }
  EXPECT_THROW({
    p.dispatch_loss_prob = 1.5;
    model::expected_fault_overhead(p);
  }, std::invalid_argument);
}

TEST(FaultModel, ExpectedRuntimeAddsOverheadToEq1) {
  const model::RuntimeModel m = model::paper_daxpy_model();
  model::FaultModelParams p;
  p.watchdog_wait_cycles = 2000;
  p.dispatch_loss_prob = 0.05;
  const double t = model::expected_runtime_under_faults(m, kM, kN, p);
  EXPECT_GT(t, m.predict(kM, kN));
  p.dispatch_loss_prob = 0.0;
  EXPECT_DOUBLE_EQ(model::expected_runtime_under_faults(m, kM, kN, p), m.predict(kM, kN));
}

// The paper's speedup margin at (32, 1024) is ~303 cycles; with a 2000-cycle
// watchdog round the break-even fault probability lands strictly inside
// (0, 1), and raising the watchdog cost lowers it.
TEST(FaultModel, BreakevenProbInsideUnitIntervalAndMonotone) {
  const model::RuntimeModel ext = model::paper_daxpy_model();
  model::RuntimeModel base = ext;
  base.c = 9.0;  // baseline: + c*M sequential-dispatch term

  model::FaultModelParams p;
  p.watchdog_wait_cycles = 2000;
  const double q1 = model::fault_breakeven_prob(ext, base, kM, kN, p);
  EXPECT_GT(q1, 0.0);
  EXPECT_LT(q1, 1.0);

  p.watchdog_wait_cycles = 20000;
  const double q2 = model::fault_breakeven_prob(ext, base, kM, kN, p);
  EXPECT_LT(q2, q1);
}

}  // namespace
