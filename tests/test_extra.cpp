// Additional cross-cutting property tests: memory-system conservation laws,
// timing-model algebra, functional equivalence between execution modes, and
// GEMM-specific plan geometry.
#include <gtest/gtest.h>

#include <numeric>

#include "kernels/gemm.h"
#include "mem/hbm_controller.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "soc/workloads.h"
#include "util/math.h"

namespace {

using namespace mco;
using namespace mco::soc;

// ---- HBM conservation under random traffic ---------------------------------------

class HbmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HbmFuzz, ServesEveryBeatExactlyOnceAndRespectsBandwidth) {
  sim::Rng rng(GetParam());
  sim::Simulator sim;
  mem::HbmConfig cfg;
  cfg.beats_per_cycle = static_cast<unsigned>(rng.uniform_int(1, 16));
  cfg.request_latency = static_cast<sim::Cycles>(rng.uniform_int(0, 12));
  cfg.num_ports = static_cast<unsigned>(rng.uniform_int(1, 8));
  mem::HbmController hbm(sim, "hbm", cfg);

  std::uint64_t total_beats = 0;
  unsigned completions = 0;
  const unsigned transfers = static_cast<unsigned>(rng.uniform_int(5, 40));
  sim::Cycle last_done = 0;
  sim::Cycle first_request = ~0ull;
  for (unsigned i = 0; i < transfers; ++i) {
    const auto at = static_cast<sim::Cycle>(rng.uniform_int(0, 200));
    const auto port = static_cast<unsigned>(rng.next_below(cfg.num_ports));
    const auto beats = static_cast<std::uint64_t>(rng.uniform_int(0, 300));
    total_beats += beats;
    first_request = std::min(first_request, at);
    sim.schedule_at(at, [&, port, beats] {
      hbm.request(port, beats, [&] {
        ++completions;
        last_done = std::max(last_done, sim.now());
      });
    });
  }
  sim.run();
  EXPECT_EQ(hbm.beats_served(), total_beats);
  EXPECT_EQ(completions, transfers);
  EXPECT_FALSE(hbm.busy());
  // Bandwidth bound: the span from first request to last completion must be
  // at least total_beats / beats_per_cycle.
  if (total_beats > 0) {
    const std::uint64_t span = last_done - first_request;
    EXPECT_GE(span, total_beats / cfg.beats_per_cycle);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HbmFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---- Rate algebra -----------------------------------------------------------------

TEST(RateProperties, CeilRateIsSubadditiveAndMonotone) {
  const util::Rate r{13, 5};
  sim::Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, 10000));
    const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, 10000));
    // Splitting work never makes the ceil-cost cheaper...
    EXPECT_GE(r.cycles_for(a) + r.cycles_for(b), r.cycles_for(a + b));
    // ...and by at most one rounding step.
    EXPECT_LE(r.cycles_for(a) + r.cycles_for(b), r.cycles_for(a + b) + 1);
    EXPECT_LE(r.cycles_for(a), r.cycles_for(a + b));
  }
}

// ---- execution-mode equivalence ----------------------------------------------------

TEST(ModeEquivalence, IssAndRateModesProduceBitIdenticalDaxpyResults) {
  // Same data, same split: the ISS fmadd models a*b+c in double (unfused),
  // identical to the rate-mode apply() expression, so results match bitwise.
  std::vector<double> rate_out, iss_out;
  for (const bool iss : {false, true}) {
    SocConfig cfg = SocConfig::extended(8);
    cfg.cluster.use_iss_compute = iss;
    Soc soc(cfg);
    sim::Rng rng(123);
    auto job = prepare_workload(soc, soc.kernels().by_name("daxpy"), 500, 8, rng);
    soc.run_offload(job.args, 8);
    auto out = soc.read_f64(job.args.out0, 500);
    (iss ? iss_out : rate_out) = std::move(out);
  }
  ASSERT_EQ(rate_out.size(), iss_out.size());
  for (std::size_t i = 0; i < rate_out.size(); ++i) {
    ASSERT_EQ(rate_out[i], iss_out[i]) << i;  // bitwise (both exact doubles)
  }
}

TEST(ModeEquivalence, HostAndOffloadBitIdenticalForElementwise) {
  for (const char* k : {"scale", "vecmul", "relu", "memcpy"}) {
    std::vector<double> host_out, off_out;
    for (const bool host : {false, true}) {
      Soc soc(SocConfig::extended(8));
      sim::Rng rng(321);
      auto job = prepare_workload(soc, soc.kernels().by_name(k), 300, 8, rng);
      if (host) {
        soc.runtime().execute_on_host_blocking(job.args);
      } else {
        soc.run_offload(job.args, 8);
      }
      auto out = soc.read_f64(job.args.out0, 300);
      (host ? host_out : off_out) = std::move(out);
    }
    for (std::size_t i = 0; i < host_out.size(); ++i) {
      ASSERT_EQ(host_out[i], off_out[i]) << k << " " << i;
    }
  }
}

// ---- GEMM plan geometry -------------------------------------------------------------

TEST(GemmPlan, ReplicatesBAndChunksAC) {
  const kernels::GemmKernel k;
  kernels::JobArgs args;
  args.kernel_id = kernels::kGemmId;
  args.n = 64;
  args.aux = 16;
  args.alpha = 1.0;
  args.in0 = 0x8000'0000;
  args.in1 = 0x8010'0000;
  args.out0 = 0x8020'0000;

  std::size_t total_a = 0;
  std::size_t total_b = 0;
  std::size_t total_c = 0;
  for (unsigned i = 0; i < 4; ++i) {
    const auto plan = k.plan_cluster(args, i, 4);
    ASSERT_EQ(plan.dma_in.size(), 2u);
    total_b += plan.dma_in[0].bytes;
    total_a += plan.dma_in[1].bytes;
    total_c += plan.bytes_out();
  }
  EXPECT_EQ(total_a, 64u * 16 * 8);       // A chunked exactly once
  EXPECT_EQ(total_c, 64u * 16 * 8);       // C chunked exactly once
  EXPECT_EQ(total_b, 4u * 16 * 16 * 8);   // B replicated per cluster
}

TEST(GemmPlan, ComputeDominatesDataUnlikeDaxpy) {
  // For GEMM the per-item compute (k^2 MACs) is far larger than the per-item
  // data movement, so unlike DAXPY more clusters keep paying off at small n.
  sim::Cycles t1 = 0, t8 = 0;
  {
    Soc soc(SocConfig::extended(8));
    t1 = run_verified(soc, "gemm", 64, 1, 5).total();
  }
  {
    Soc soc(SocConfig::extended(8));
    t8 = run_verified(soc, "gemm", 64, 8, 5).total();
  }
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t8), 3.0);
}

TEST(GemmErrors, ValidatesArguments) {
  const kernels::GemmKernel k;
  kernels::JobArgs args;
  args.kernel_id = kernels::kGemmId;
  args.n = 8;
  args.aux = 0;  // k == 0
  args.in0 = args.in1 = args.out0 = 0x8000'0000;
  EXPECT_THROW(k.validate(args), std::invalid_argument);
}

// ---- workload preparation ------------------------------------------------------------

TEST(Workloads, UnknownKernelRecipeThrows) {
  // A kernel the recipe switch does not know: simulate by passing gemv's id
  // through a custom kernel object is overkill — instead check the error for
  // an id that is valid in the registry but feed prepare_workload a kernel
  // object with an unexpected id via the registry path is impossible; the
  // public contract is: every registered kernel has a recipe. Assert that.
  Soc soc(SocConfig::extended(2));
  sim::Rng rng(1);
  for (const kernels::Kernel* k : soc.kernels().all()) {
    EXPECT_NO_THROW(prepare_workload(soc, *k, 32, 2, rng)) << k->name();
  }
}

TEST(Workloads, PreparedJobsAreIndependent) {
  // Two preparations on one SoC must not alias each other's arrays.
  Soc soc(SocConfig::extended(4));
  sim::Rng rng(2);
  auto a = prepare_workload(soc, soc.kernels().by_name("daxpy"), 64, 4, rng);
  auto b = prepare_workload(soc, soc.kernels().by_name("daxpy"), 64, 4, rng);
  EXPECT_NE(a.args.in0, b.args.in0);
  EXPECT_NE(a.args.out0, b.args.out0);
  soc.run_offload(a.args, 4);
  soc.run_offload(b.args, 4);
  EXPECT_LT(a.max_abs_error(soc), 1e-12);
  EXPECT_LT(b.max_abs_error(soc), 1e-12);
}

}  // namespace
