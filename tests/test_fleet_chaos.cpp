// Tests for the fleet fault-domain layer: the validated crash/partition/heal
// plan (fault/fleet_fault.h), FleetRouter failure detection and exactly-once
// job failover (per-job budget, epoch-tagged idempotence ledger), the
// serve_exactly_once shadow of check::ProtocolMonitor, the time_to_recover /
// p99_slack verdict math, and the byte-identity of the E23 chaos report
// across SweepRunner --jobs levels.
//
// Router tests script the Executor seam (FleetFakeExecutor, mirroring
// test_fleet.cpp) so every failover is an exact virtual-time schedule with
// hand-computable outcomes; the determinism audit replays the real
// SocExecutor seam twice and byte-compares the steal/failover interleaving.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/protocol_monitor.h"
#include "exp/sweep_runner.h"
#include "fault/fleet_fault.h"
#include "serve/fleet.h"
#include "serve/fleet_chaos.h"
#include "serve/fleet_soak.h"
#include "serve/soc_executor.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace {

using namespace mco;
using fault::FleetFaultEvent;
using fault::FleetFaultKind;
using fault::FleetFaultPlan;
using serve::BatchExecutionOutcome;
using serve::ExecutionOutcome;
using serve::FleetConfig;
using serve::FleetRouter;
using serve::JobOutcome;
using serve::JobVerdict;
using serve::ServeJob;

// ---- helpers (mirroring test_fleet.cpp) ------------------------------------

/// Scripted executor for the fleet seam: fixed per-job duration, recorded
/// execute/execute_batch calls, restart counter.
class FleetFakeExecutor : public serve::Executor {
 public:
  explicit FleetFakeExecutor(sim::Cycles duration = 100) : duration_(duration) {}

  struct Call {
    std::vector<std::uint64_t> ids;  ///< one id = plain execute(); more = batch
    unsigned m = 0;
    bool probe = false;
  };
  std::vector<Call> calls;
  std::uint64_t restarts = 0;

  ExecutionOutcome execute(const ServeJob& job, unsigned m, bool probe) override {
    calls.push_back({{job.id}, m, probe});
    ExecutionOutcome out;
    out.duration = duration_;
    return out;
  }

  BatchExecutionOutcome execute_batch(const std::vector<ServeJob>& jobs, unsigned m) override {
    Call call;
    for (const ServeJob& j : jobs) call.ids.push_back(j.id);
    call.m = m;
    calls.push_back(call);
    BatchExecutionOutcome out;
    sim::Cycles offset = 0;
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      ExecutionOutcome one;
      offset += duration_;
      one.duration = offset;  // back-to-back completion offsets
      out.jobs.push_back(one);
    }
    return out;
  }

  void restart() override { ++restarts; }

 private:
  sim::Cycles duration_;
};

/// t̂(M, N) = 100 + N/M: admission math is exact integer arithmetic.
model::RuntimeModel linear_model() {
  model::RuntimeModel m;
  m.t0 = 100.0;
  m.b = 1.0;
  return m;
}

FleetConfig config(unsigned shards, unsigned clusters_per_shard, std::size_t max_batch = 1,
                   bool stealing = false) {
  FleetConfig cfg;
  cfg.num_shards = shards;
  cfg.clusters_per_shard = clusters_per_shard;
  cfg.model = linear_model();
  cfg.max_batch = max_batch;
  cfg.stealing = stealing;
  return cfg;
}

ServeJob job(std::uint64_t id, std::uint64_t n, sim::Cycle arrival, sim::Cycles t_max) {
  ServeJob j;
  j.id = id;
  j.n = n;
  j.arrival = arrival;
  j.t_max = t_max;
  return j;
}

/// Feed one synthetic who=="serve" instant into a monitor.
void feed(check::ProtocolMonitor& mon, sim::Cycle t, const std::string& what,
          const std::string& detail) {
  sim::TraceRecord rec;
  rec.time = t;
  rec.who = "serve";
  rec.what = what;
  rec.detail = detail;
  rec.phase = sim::TracePhase::kInstant;
  mon.observe(rec);
}

bool has_invariant(const check::ProtocolMonitor& mon, const std::string& name) {
  return std::any_of(mon.violations().begin(), mon.violations().end(),
                     [&](const check::Violation& v) { return v.invariant == name; });
}

// ---- fault plan ------------------------------------------------------------

TEST(FleetFaultPlanTest, KeepsEventsOrderedAndPaired) {
  FleetFaultPlan plan(4);
  plan.add_crash(100, 0);
  plan.add_partition(100, 1);
  plan.add_heal(200, 1);
  plan.add_heal(300, 0);
  const std::vector<FleetFaultEvent>& ev = plan.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].kind, FleetFaultKind::kShardCrash);
  EXPECT_EQ(ev[0].shard, 0u);
  EXPECT_EQ(ev[0].at, 100u);
  EXPECT_EQ(ev[1].kind, FleetFaultKind::kRouterPartition);
  EXPECT_EQ(ev[1].shard, 1u);
  EXPECT_EQ(ev[2].kind, FleetFaultKind::kHeal);
  EXPECT_EQ(ev[2].shard, 1u);
  EXPECT_EQ(ev[3].kind, FleetFaultKind::kHeal);
  EXPECT_EQ(ev[3].shard, 0u);
  for (unsigned s = 0; s < 4; ++s) EXPECT_FALSE(plan.down_at_end(s));

  FleetFaultPlan open(4);
  open.add_crash(100, 2);
  EXPECT_TRUE(open.down_at_end(2));
  EXPECT_FALSE(open.down_at_end(0));
}

TEST(FleetFaultPlanTest, RejectsImpossibleSequences) {
  {
    FleetFaultPlan p(2);
    EXPECT_THROW(p.add_heal(0, 0), std::invalid_argument);  // heal of an up shard
  }
  {
    FleetFaultPlan p(2);
    p.add_crash(10, 0);
    EXPECT_THROW(p.add_crash(20, 0), std::invalid_argument);      // already down
    EXPECT_THROW(p.add_partition(20, 0), std::invalid_argument);  // already down
    EXPECT_THROW(p.add_heal(5, 0), std::invalid_argument);        // time went backwards
  }
  {
    FleetFaultPlan p(2);
    EXPECT_THROW(p.add_crash(10, 5), std::invalid_argument);  // shard out of range
  }
}

TEST(FleetFaultPlanTest, RandomPlanIsDeterministicAndAlwaysLeavesASurvivor) {
  fault::FleetFaultPlanConfig cfg;
  cfg.seed = 42;
  cfg.num_shards = 4;
  cfg.arcs = 3;
  const FleetFaultPlan a = fault::random_fleet_fault_plan(cfg);
  const FleetFaultPlan b = fault::random_fleet_fault_plan(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  std::size_t down = 0;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].shard, b.events()[i].shard);
    if (a.events()[i].kind == FleetFaultKind::kHeal) {
      --down;
    } else {
      ++down;
      EXPECT_LT(down, 4u) << "every prefix must leave at least one shard up";
    }
  }
  EXPECT_EQ(down, 0u) << "a random plan must end with every shard up";
  for (unsigned s = 0; s < 4; ++s) EXPECT_FALSE(a.down_at_end(s));

  cfg.arcs = 4;  // would allow all shards down at once
  EXPECT_THROW(fault::random_fleet_fault_plan(cfg), std::invalid_argument);
}

// ---- router failover -------------------------------------------------------

TEST(FleetFailover, CrashFailsOverInFlightAndQueuedJobsExactlyOnce) {
  // One cluster per shard, so round-robin at t=0 leaves j1 in flight on
  // shard 0, j2 on shard 1, j3 queued on shard 0 and j4 on shard 1. The
  // crash at t=50 displaces j1 (in-flight -> redispatch) and j3 (queued ->
  // requeue) onto the survivor; everyone meets the (generous) deadline.
  FleetFakeExecutor e0, e1;
  FleetRouter fleet(config(2, 1), {&e0, &e1});
  fleet.schedule_operator(50, serve::OperatorAction::kFail, 0);
  fleet.schedule_operator(10'000, serve::OperatorAction::kHeal, 0);
  const std::vector<ServeJob> jobs = {job(1, 100, 0, 100'000), job(2, 100, 0, 100'000),
                                      job(3, 100, 0, 100'000), job(4, 100, 0, 100'000)};
  const std::vector<JobOutcome> out = fleet.run(jobs);

  EXPECT_EQ(fleet.shard_fails(), 1u);
  EXPECT_EQ(fleet.heals(), 1u);
  EXPECT_EQ(fleet.failover_redispatches(), 1u);
  EXPECT_EQ(fleet.failover_requeues(), 1u);
  EXPECT_EQ(fleet.failover_lost(), 0u);
  EXPECT_EQ(fleet.stale_completions(), 0u);
  ASSERT_EQ(out.size(), 4u);
  for (const JobOutcome& o : out) EXPECT_EQ(o.verdict, JobVerdict::kMet) << o.job_id;
  EXPECT_EQ(out[0].failovers, 1u);
  EXPECT_EQ(out[1].failovers, 0u);
  EXPECT_EQ(out[2].failovers, 1u);
  EXPECT_EQ(out[3].failovers, 0u);
  // The displaced jobs re-executed on the survivor, never twice on shard 0.
  auto served = [](const FleetFakeExecutor& e, std::uint64_t id) {
    return std::count_if(e.calls.begin(), e.calls.end(), [&](const FleetFakeExecutor::Call& c) {
      return !c.probe && std::find(c.ids.begin(), c.ids.end(), id) != c.ids.end();
    });
  };
  EXPECT_EQ(served(e0, 1), 1);  // the attempt the crash killed
  EXPECT_EQ(served(e1, 1), 1);
  EXPECT_EQ(served(e0, 3), 0);  // queued: never reached shard 0's executor
  EXPECT_EQ(served(e1, 3), 1);
  // Heal after a crash is a cold boot: the executor restarts, the fabric
  // re-enters through canary probation.
  EXPECT_EQ(e0.restarts, 1u);
  EXPECT_EQ(e1.restarts, 0u);
}

TEST(FleetFailover, ExhaustedBudgetLosesTheDisplacedJobs) {
  FleetFakeExecutor e0, e1;
  FleetConfig cfg = config(2, 1);
  cfg.failover_budget = 0;
  FleetRouter fleet(cfg, {&e0, &e1});
  fleet.schedule_operator(50, serve::OperatorAction::kFail, 0);
  const std::vector<ServeJob> jobs = {job(1, 100, 0, 100'000), job(2, 100, 0, 100'000),
                                      job(3, 100, 0, 100'000), job(4, 100, 0, 100'000)};
  const std::vector<JobOutcome> out = fleet.run(jobs);

  EXPECT_EQ(fleet.failover_lost(), 2u);
  EXPECT_EQ(fleet.failover_redispatches(), 0u);
  EXPECT_EQ(fleet.failover_requeues(), 0u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kFailed);
  EXPECT_EQ(out[0].reason, "shard_lost");
  EXPECT_EQ(out[2].verdict, JobVerdict::kFailed);
  EXPECT_EQ(out[2].reason, "shard_lost");
  EXPECT_EQ(out[1].verdict, JobVerdict::kMet);
  EXPECT_EQ(out[3].verdict, JobVerdict::kMet);
  EXPECT_EQ(e0.restarts, 0u);
}

TEST(FleetFailover, PartitionRepliesStaleCompletionsThroughTheEpochLedger) {
  // The partitioned shard keeps executing j1 behind the cut link; the router
  // fails j1 over immediately, so the buffered completion replayed at heal
  // must be suppressed by the epoch ledger — under a clean monitor audit.
  FleetFakeExecutor e0, e1;
  FleetRouter fleet(config(2, 1), {&e0, &e1});
  check::ProtocolMonitor mon;
  fleet.trace().set_observer([&mon](const sim::TraceRecord& rec) { mon.observe(rec); });
  fleet.schedule_operator(50, serve::OperatorAction::kPartition, 0);
  fleet.schedule_operator(300, serve::OperatorAction::kHeal, 0);
  const std::vector<ServeJob> jobs = {job(1, 100, 0, 100'000), job(2, 100, 0, 100'000),
                                      job(3, 100, 0, 100'000), job(4, 100, 0, 100'000)};
  const std::vector<JobOutcome> out = fleet.run(jobs);
  mon.finish();

  EXPECT_EQ(fleet.shard_partitions(), 1u);
  EXPECT_EQ(fleet.heals(), 1u);
  EXPECT_EQ(fleet.failover_redispatches(), 1u);
  EXPECT_EQ(fleet.failover_requeues(), 1u);
  EXPECT_EQ(fleet.stale_completions(), 1u);
  EXPECT_EQ(fleet.failover_lost(), 0u);
  for (const JobOutcome& o : out) EXPECT_EQ(o.verdict, JobVerdict::kMet) << o.job_id;
  // A partition heal is not a cold boot: the fabric was healthy all along.
  EXPECT_EQ(e0.restarts, 0u);
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

// ---- the serve_exactly_once shadow -----------------------------------------

TEST(FleetExactlyOnce, CleanFailoverStoryHasNoViolations) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=4 batch=0 clusters=0");
  feed(mon, 50, "serve_fail", "shard=0 inflight=1 queued=0");
  feed(mon, 50, "serve_failover", "job=1 epoch=1 from=0");
  feed(mon, 50, "serve_dispatch", "job=1 shard=1 m=4 batch=0 clusters=0");
  feed(mon, 150, "serve_complete", "job=1 shard=1 clusters=0");
  feed(mon, 300, "serve_heal", "shard=0 mode=crash");
  mon.finish();
  EXPECT_TRUE(mon.clean()) << mon.to_json();
}

TEST(FleetExactlyOnce, RetiringAJobTwiceIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=4 batch=0 clusters=0");
  feed(mon, 20, "serve_complete", "job=1 shard=0 clusters=0");
  feed(mon, 30, "serve_complete", "job=1 shard=0");
  mon.finish();
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_exactly_once")) << mon.to_json();
}

TEST(FleetExactlyOnce, FailoverOfARetiredJobIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=4 batch=0 clusters=0");
  feed(mon, 20, "serve_complete", "job=1 shard=0 clusters=0");
  feed(mon, 50, "serve_fail", "shard=0 inflight=0 queued=0");
  feed(mon, 50, "serve_failover", "job=1 epoch=1 from=0");
  mon.finish();
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_exactly_once")) << mon.to_json();
}

TEST(FleetExactlyOnce, FailoverThatJumpsAnEpochIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=4 batch=0 clusters=0");
  feed(mon, 50, "serve_fail", "shard=0 inflight=1 queued=0");
  feed(mon, 50, "serve_failover", "job=1 epoch=2 from=0");
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_exactly_once")) << mon.to_json();
}

TEST(FleetExactlyOnce, StaleCompletionMustNotSuppressALiveEpoch) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=4 batch=0 clusters=0");
  feed(mon, 50, "serve_fail", "shard=0 inflight=1 queued=0");
  feed(mon, 50, "serve_failover", "job=1 epoch=1 from=0");
  feed(mon, 50, "serve_dispatch", "job=1 shard=1 m=4 batch=0 clusters=0");
  // A genuinely stale completion (epoch 0 < live epoch 1) is suppressed
  // silently…
  feed(mon, 120, "serve_stale_completion", "job=1 epoch=0 shard=0 batch_pos=0");
  EXPECT_EQ(mon.total_violations(), 0u);
  // …but one tagged with the live epoch would swallow the active attempt.
  feed(mon, 130, "serve_stale_completion", "job=1 epoch=1 shard=0 batch_pos=0");
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_exactly_once")) << mon.to_json();
}

TEST(FleetExactlyOnce, JobThatNeverRetiresIsCaughtAtFinish) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=4 batch=0 clusters=0");
  mon.finish();
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_TRUE(has_invariant(mon, "serve_exactly_once")) << mon.to_json();
}

TEST(FleetExactlyOnce, HealOfAServingShardIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_heal", "shard=0 mode=crash");
  EXPECT_GE(mon.total_violations(), 1u);
}

// ---- steal vs. crash/restart interleaving (determinism audit) --------------

TEST(FleetChaosDeterminism, StealAndFailoverInterleavingIsAPureFunctionOfTheTrace) {
  // Two independent replays of the same saturating trace — with a shard
  // crash/heal arc and a rolling restart spliced into the middle — must emit
  // byte-identical steal/failover/fault record streams and verdicts.
  serve::SoakTraceConfig tc = serve::fleet_trace_config(200);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  auto replay = [&]() {
    std::vector<std::unique_ptr<serve::SocExecutor>> execs;
    std::vector<serve::Executor*> ptrs;
    for (unsigned s = 0; s < 2; ++s) {
      serve::SocExecutorConfig xc;
      xc.soc = soc::SocConfig::extended(cfg.clusters_per_shard);
      xc.tolerance = cfg.tolerance;
      xc.workload_seed = cfg.workload_seed + s;
      xc.crash_penalty_cycles = cfg.crash_penalty_cycles;
      execs.push_back(std::make_unique<serve::SocExecutor>(xc));
      ptrs.push_back(execs.back().get());
    }
    serve::FleetConfig fc;
    fc.num_shards = 2;
    fc.clusters_per_shard = cfg.clusters_per_shard;
    fc.model = cfg.model;
    fc.max_queue = cfg.max_queue;
    fc.max_clusters_per_job = cfg.max_clusters_per_job;
    fc.health = cfg.health;
    FleetRouter fleet(fc, ptrs);
    FleetFaultPlan plan(2);
    plan.add_crash(10'000, 0);
    plan.add_heal(25'000, 0);
    fleet.schedule_plan(plan);
    fleet.schedule_operator(32'000, serve::OperatorAction::kRestart, 1);
    std::vector<std::string> records;
    fleet.trace().set_observer([&records](const sim::TraceRecord& rec) {
      if (rec.what == "serve_steal" || rec.what == "serve_fail" || rec.what == "serve_heal" ||
          rec.what == "serve_failover" || rec.what == "serve_stale_completion" ||
          rec.what == "serve_restart") {
        records.push_back(std::to_string(rec.time) + " " + rec.what + " " + rec.detail);
      }
    });
    const std::vector<JobOutcome> out = fleet.run(trace);
    for (const JobOutcome& o : out) {
      records.push_back("verdict " + std::to_string(o.job_id) + " " +
                        std::string(serve::to_string(o.verdict)) + " " +
                        std::to_string(o.failovers));
    }
    return records;
  };
  const std::vector<std::string> first = replay();
  const std::vector<std::string> second = replay();
  EXPECT_EQ(first, second);
  auto count = [&](const std::string& what) {
    return std::count_if(first.begin(), first.end(), [&](const std::string& r) {
      return r.find(" " + what + " ") != std::string::npos;
    });
  };
  EXPECT_EQ(count("serve_fail"), 1);
  EXPECT_EQ(count("serve_restart"), 1);
  EXPECT_GE(count("serve_failover"), 1);
}

// ---- recovery verdict math -------------------------------------------------

JobOutcome outcome(std::uint64_t id, JobVerdict verdict, sim::Cycle end) {
  JobOutcome o;
  o.job_id = id;
  o.verdict = verdict;
  o.end = end;
  return o;
}

TEST(RecoveryMath, TimeToRecoverIsZeroWhenTheFleetNeverDips) {
  std::vector<ServeJob> trace;
  std::vector<JobOutcome> outs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    trace.push_back(job(i, 100, i * 5'000, 1'000));
    outs.push_back(outcome(i, JobVerdict::kMet, i * 5'000 + 500));
  }
  EXPECT_EQ(serve::time_to_recover(trace, outs, 0, 30'000), 0u);
}

TEST(RecoveryMath, TimeToRecoverEndsAtTheLastBadWindow) {
  // Windows of 10k cycles from the mark: window 0 meets the target, window 1
  // misses it, windows 2..3 meet it again — recovery is sustained from the
  // start of window 2, i.e. 20k cycles after the mark.
  std::vector<ServeJob> trace = {job(1, 100, 1'000, 1'000),  job(2, 100, 2'000, 1'000),
                                 job(3, 100, 11'000, 1'000), job(4, 100, 12'000, 1'000),
                                 job(5, 100, 21'000, 1'000), job(6, 100, 30'000, 1'000)};
  std::vector<JobOutcome> outs = {
      outcome(1, JobVerdict::kMet, 1'500),     outcome(2, JobVerdict::kMet, 2'500),
      outcome(3, JobVerdict::kMissed, 15'000), outcome(4, JobVerdict::kMissed, 16'000),
      outcome(5, JobVerdict::kMet, 21'500),    outcome(6, JobVerdict::kMet, 30'500)};
  EXPECT_EQ(serve::time_to_recover(trace, outs, 0, 30'000), 20'000u);
  // Jobs before the mark are out of scope: measured from 10k the bad window
  // is window 0 and recovery starts one window later.
  EXPECT_EQ(serve::time_to_recover(trace, outs, 10'000, 30'000), 10'000u);
}

TEST(RecoveryMath, TimeToRecoverSaturatesWhenTheFleetNeverRecovers) {
  // The final non-empty window misses the target: the fleet never sustains
  // the SLO again, so the verdict saturates at horizon - mark.
  std::vector<ServeJob> trace = {job(1, 100, 1'000, 1'000), job(2, 100, 29'000, 1'000)};
  std::vector<JobOutcome> outs = {outcome(1, JobVerdict::kMet, 1'500),
                                  outcome(2, JobVerdict::kMissed, 32'000)};
  EXPECT_EQ(serve::time_to_recover(trace, outs, 0, 30'000), 30'000u);
}

TEST(RecoveryMath, P99SlackIsZeroWhenCompletionsAreOnTime) {
  std::vector<ServeJob> trace;
  std::vector<JobOutcome> outs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    trace.push_back(job(i, 100, i * 10, 1'000));
    outs.push_back(outcome(i, JobVerdict::kMet, i * 10 + 500));
  }
  EXPECT_DOUBLE_EQ(serve::p99_slack(trace, outs, 0), 0.0);
}

TEST(RecoveryMath, P99SlackGoesNegativeWhenMoreThanOnePercentAreTardy)  {
  // 98 on-time completions and 2 tardy by exactly 8000 cycles: the p99
  // tardiness is 8000, so the slack verdict is -8000.
  std::vector<ServeJob> trace;
  std::vector<JobOutcome> outs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    trace.push_back(job(i, 100, 0, 1'000));
    const bool tardy = i >= 98;
    outs.push_back(outcome(i, tardy ? JobVerdict::kMissed : JobVerdict::kMet,
                           tardy ? 9'000 : 500));
  }
  EXPECT_DOUBLE_EQ(serve::p99_slack(trace, outs, 0), -8'000.0);
  // Jobs that never completed (shed / failed) are excluded from the sample.
  outs[98].verdict = JobVerdict::kFailed;
  outs[99].verdict = JobVerdict::kShed;
  EXPECT_DOUBLE_EQ(serve::p99_slack(trace, outs, 0), 0.0);
}

// ---- the E23 grid ----------------------------------------------------------

TEST(FleetChaosGrid, CoversTheScriptedFaultArcs) {
  const std::vector<serve::FleetChaosPoint> grid = serve::fleet_chaos_grid(600);
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].name, "control");
  EXPECT_EQ(grid[1].name, "crash_1of4");
  EXPECT_EQ(grid[2].name, "partition_1of4");
  EXPECT_EQ(grid[3].name, "crash_2of4");
  EXPECT_EQ(grid[4].name, "crash_budget0");
  EXPECT_EQ(grid[5].name, "storm");
  EXPECT_TRUE(grid[0].plan.empty());
  EXPECT_EQ(grid[4].failover_budget, 0u);
  for (const serve::FleetChaosPoint& p : grid) {
    EXPECT_EQ(p.num_shards, 4u) << p.name;
    if (!p.plan.empty()) EXPECT_GT(p.mark, 0u) << p.name;
  }
}

TEST(FleetChaosGrid, PointsRunCleanUnderTheMonitors) {
  serve::SoakTraceConfig tc = serve::fleet_trace_config(150);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  for (const serve::FleetChaosPoint& pt : serve::fleet_chaos_grid(150)) {
    const serve::FleetChaosResult r = serve::run_fleet_chaos_point(pt, trace, cfg);
    EXPECT_EQ(r.soc_violations, 0u) << pt.name;
    EXPECT_EQ(r.serve_violations, 0u) << pt.name;
    EXPECT_EQ(r.met + r.missed + r.shed + r.failed, r.jobs) << pt.name;
    if (pt.name == "crash_1of4") {
      EXPECT_EQ(r.shard_fails, 1u);
      EXPECT_EQ(r.failover_lost, 0u);
      EXPECT_GE(r.failover_redispatches + r.failover_requeues, 1u);
    }
    if (pt.name == "partition_1of4") EXPECT_EQ(r.shard_partitions, 1u);
  }
}

TEST(FleetChaosReport, IsByteIdenticalAcrossJobsLevels) {
  serve::SoakTraceConfig tc = serve::fleet_trace_config(120);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  const std::vector<serve::FleetChaosPoint> grid = serve::fleet_chaos_grid(120);
  auto report_at = [&](unsigned jobs) {
    exp::SweepRunner runner(jobs);
    const std::vector<serve::FleetChaosResult> results =
        runner.map(grid, [&](const serve::FleetChaosPoint& pt) {
          return serve::run_fleet_chaos_point(pt, trace, cfg);
        });
    return serve::chaos_report_json(results, tc);
  };
  const std::string at1 = report_at(1);
  EXPECT_EQ(at1, report_at(4));
  EXPECT_EQ(at1, report_at(16));
}

}  // namespace
