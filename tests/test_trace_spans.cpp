// Observability layer: span nesting/balance, Chrome JSON well-formedness,
// histogram percentile edges, metrics export, bit-exactness of the headline
// numbers with and without instrumentation, and the docs cross-check that
// keeps docs/observability.md aligned with metric_reference() and with the
// names an instrumented run actually emits.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/scenario_runner.h"
#include "serve/fleet.h"
#include "serve/offload_service.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "sim/trace_export.h"
#include "soc/observability.h"
#include "soc/soc.h"
#include "soc/workloads.h"

namespace {

using namespace mco;

// ---- span mechanics --------------------------------------------------------

TEST(TraceSpans, NestAndBalanceOnOneTrack) {
  sim::TraceSink t;
  t.enable();
  t.begin_span(10, "runtime", "offload");
  t.begin_span(12, "runtime", "marshal");
  EXPECT_EQ(t.open_spans("runtime"), 2u);
  t.end_span(20, "runtime");  // closes marshal (innermost)
  t.end_span(30, "runtime");  // closes offload
  EXPECT_TRUE(t.balanced());

  const auto spans = t.all_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].what, "offload");
  EXPECT_EQ(spans[0].duration(), 20u);
  EXPECT_EQ(spans[1].what, "marshal");
  EXPECT_EQ(spans[1].duration(), 8u);
}

TEST(TraceSpans, TracksAreIndependent) {
  sim::TraceSink t;
  t.enable();
  t.begin_span(0, "a", "outer");
  t.begin_span(1, "b", "other");
  t.end_span(5, "a");  // must close a's span, not b's
  EXPECT_EQ(t.open_spans("a"), 0u);
  EXPECT_EQ(t.open_spans("b"), 1u);
  t.end_span(9, "b");
  const auto a = t.spans("outer");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].end, 5u);
}

TEST(TraceSpans, UnbalancedEndThrows) {
  sim::TraceSink t;
  t.enable();
  EXPECT_THROW(t.end_span(1, "runtime"), std::logic_error);
  t.begin_span(0, "a", "x");
  EXPECT_THROW(t.end_span(1, "b"), std::logic_error);
}

TEST(TraceSpans, DisabledSinkIsInert) {
  sim::TraceSink t;
  t.begin_span(0, "a", "x");
  EXPECT_NO_THROW(t.end_span(1, "a"));  // no open span, but disabled = no-op
  EXPECT_TRUE(t.records().empty());
  EXPECT_TRUE(t.balanced());
}

TEST(TraceSpans, SpanNamesAreSortedAndUnique) {
  sim::TraceSink t;
  t.enable();
  t.begin_span(0, "a", "zeta");
  t.begin_span(1, "a", "alpha");
  t.begin_span(2, "b", "alpha");
  const auto names = t.span_names();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "zeta"}));
}

// ---- Chrome JSON well-formedness -------------------------------------------

// Minimal JSON syntax checker (objects/arrays/strings/numbers/literals);
// throws on the first violation. Enough to guarantee a viewer can parse the
// export without dragging a JSON library into the test suite.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  void check() {
    skip_ws();
    value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
  }

 private:
  void value() {
    if (pos_ >= s_.size()) fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) return number();
    if (literal("true") || literal("false") || literal("null")) return;
    fail("unexpected character");
  }
  void object() {
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return; }
    while (true) {
      skip_ws();
      string();
      skip_ws();
      expect(':');
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return;
    }
  }
  void array() {
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return; }
    while (true) {
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return;
    }
  }
  void string() {
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char in string");
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0)
              fail("bad \\u escape");
            ++pos_;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          fail("bad escape char");
        }
      }
    }
  }
  void number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("bad number");
  }
  bool literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) == 0) { pos_ += len; return true; }
    return false;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < s_.size() && (std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)) ++pos_;
  }
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) + ": " + why);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, ExportIsValidJsonWithPairedSpans) {
  sim::TraceSink t;
  t.enable();
  t.record(1, "soc.host", "irq");
  t.begin_span(2, "runtime", "offload", "daxpy n=8");
  t.begin_span(3, "runtime", "marshal");
  t.end_span(5, "runtime");
  t.end_span(9, "runtime");
  const std::string json = sim::to_chrome_trace(t);
  EXPECT_NO_THROW(JsonChecker(json).check());

  // One B and one E per span, and the instant + two thread_name records.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t p = json.find(needle); p != std::string::npos; p = json.find(needle, p + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), 2u);
  EXPECT_EQ(count("\"ph\":\"E\""), 2u);
  EXPECT_EQ(count("\"ph\":\"i\""), 1u);
  EXPECT_EQ(count("\"ph\":\"M\""), 2u);
}

TEST(ChromeTrace, EscapesHostileStrings) {
  sim::TraceSink t;
  t.enable();
  t.record(0, "a\"b\\c", "x\ny", "tab\there");
  t.begin_span(1, "a\"b\\c", "quote\"span");
  t.end_span(2, "a\"b\\c");
  const std::string json = sim::to_chrome_trace(t);
  EXPECT_NO_THROW(JsonChecker(json).check());
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(json.find("x\\ny"), std::string::npos);
}

// ---- histogram percentile edges --------------------------------------------

TEST(Histogram, EmptyReadsAsZero) {
  sim::Histogram h(10.0, 8);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSampleReportsItselfEverywhere) {
  sim::Histogram h(10.0, 8);
  h.sample(37.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 37.0);
  EXPECT_EQ(h.max(), 37.0);
  EXPECT_EQ(h.p50(), 37.0);
  EXPECT_EQ(h.p95(), 37.0);
  EXPECT_EQ(h.p99(), 37.0);
  EXPECT_EQ(h.percentile(0.0), 37.0);
  EXPECT_EQ(h.percentile(100.0), 37.0);
}

TEST(Histogram, SaturationBucketKeepsExactMax) {
  sim::Histogram h(10.0, 4);  // bucketed range [0, 40)
  for (int i = 0; i < 9; ++i) h.sample(5.0);
  h.sample(1e6);  // saturates
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.max(), 1e6);
  EXPECT_EQ(h.p50(), 10.0);  // upper edge of the bucket holding the median
  EXPECT_EQ(h.p99(), 1e6);   // saturated rank reports the exact max
}

TEST(Histogram, PercentileMonotoneAndClamped) {
  sim::Histogram h(10.0, 8);
  for (int i = 1; i <= 100; ++i) h.sample(static_cast<double>(i % 70));
  double prev = 0.0;
  for (double p : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
}

TEST(Histogram, NegativeSamplesClampToFirstBucket) {
  sim::Histogram h(10.0, 4);
  h.sample(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.p50(), -5.0);  // clamped into [min, max]
}

// ---- metrics export --------------------------------------------------------

TEST(MetricsExport, JsonIsValidAndCarriesAllKinds) {
  sim::StatsRegistry reg;
  reg.counter("noc.unicasts").inc(32);
  reg.accumulator("model.error").sample(0.5);
  reg.histogram("noc.dispatch_latency_cycles", 8.0, 16).sample(21.0);
  const std::string json = reg.metrics_to_json();
  EXPECT_NO_THROW(JsonChecker(json).check());
  EXPECT_NE(json.find("\"schema\": \"mco-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"noc.unicasts\": 32"), std::string::npos);
  EXPECT_NE(json.find("noc.dispatch_latency_cycles"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsExport, CsvExpandsHistograms) {
  sim::StatsRegistry reg;
  reg.counter("runtime.offloads").inc();
  reg.histogram("runtime.offload_total_cycles").sample(633.0);
  const std::string csv = reg.metrics_to_csv();
  EXPECT_NE(csv.find("metric,value"), std::string::npos);
  EXPECT_NE(csv.find("runtime.offloads,1"), std::string::npos);
  EXPECT_NE(csv.find("runtime.offload_total_cycles.count,1"), std::string::npos);
  EXPECT_NE(csv.find("runtime.offload_total_cycles.p50,633"), std::string::npos);
}

// ---- end-to-end: instrumented offload --------------------------------------

TEST(OffloadSpans, PhaseSpansMatchPhaseBreakdown) {
  soc::Soc soc(soc::SocConfig::extended(32));
  soc.simulator().trace().enable();
  const auto r = soc::run_verified(soc, "daxpy", 1024, 32, 42);
  const auto p = r.phases();

  const sim::TraceSink& t = soc.simulator().trace();
  EXPECT_TRUE(t.balanced());
  const auto one = [&](const char* what) {
    const auto s = t.spans(what);
    EXPECT_EQ(s.size(), 1u) << what;
    return s.at(0).duration();
  };
  EXPECT_EQ(one("offload"), r.total());
  EXPECT_EQ(one("marshal"), p.marshal);
  EXPECT_EQ(one("sync_setup"), p.sync_setup);
  EXPECT_EQ(one("dispatch"), p.dispatch);
  EXPECT_EQ(one("wait"), p.wait);
  EXPECT_EQ(one("epilogue"), p.epilogue);

  // Registry mirrors: the phase counters sum to the offload total minus the
  // (zero-width) gaps — i.e. exactly the printed table's row.
  soc.publish_stats();
  const sim::StatsRegistry& reg = soc.simulator().stats();
  EXPECT_EQ(reg.counter_value("runtime.phase.marshal_cycles"), p.marshal);
  EXPECT_EQ(reg.counter_value("runtime.phase.wait_cycles"), p.wait);
  ASSERT_NE(reg.find_histogram("runtime.offload_total_cycles"), nullptr);
  EXPECT_EQ(reg.find_histogram("runtime.offload_total_cycles")->count(), 1u);
  EXPECT_EQ(reg.find_histogram("runtime.offload_total_cycles")->max(),
            static_cast<double>(r.total()));
}

TEST(OffloadSpans, ClusterTracksCarryTheJobPipeline) {
  const unsigned m = 4;
  soc::Soc soc(soc::SocConfig::extended(m));
  soc.simulator().trace().enable();
  soc::run_verified(soc, "daxpy", 1024, m, 42);
  const sim::TraceSink& t = soc.simulator().trace();
  EXPECT_TRUE(t.balanced());
  for (const char* what : {"job", "wakeup_parse", "team_wait", "dma_in", "compute",
                           "dma_out", "notify"}) {
    EXPECT_EQ(t.spans(what).size(), m) << what;
  }
  // The job span contains its children on each cluster track.
  for (const auto& job : t.spans("job")) {
    for (const auto& s : t.all_spans()) {
      if (s.who != job.who || s.what == "job") continue;
      EXPECT_GE(s.begin, job.begin) << s.what;
      EXPECT_LE(s.end, job.end) << s.what;
    }
  }
}

TEST(OffloadSpans, RecoverySpansAppearUnderFaults) {
  soc::SocConfig cfg = soc::SocConfig::extended(8);
  cfg.runtime.watchdog_wait_cycles = 2000;
  cfg.fault.target_cluster = 3;
  cfg.fault.cluster_hang_prob = 1.0;
  soc::Soc soc(cfg);
  soc.simulator().trace().enable();
  const auto r = soc::run_verified(soc, "daxpy", 1024, 8, 42);
  EXPECT_TRUE(r.recovery.degraded);

  const sim::TraceSink& t = soc.simulator().trace();
  EXPECT_TRUE(t.balanced());
  for (const char* what : {"watchdog_wait", "probe_round", "probe", "retry", "redistribute"}) {
    EXPECT_GE(t.spans(what).size(), 1u) << what;
  }
  // Fault counters are mirrored live into the registry.
  EXPECT_GE(soc.simulator().stats().counter_value("fault.cluster_hangs"), 1u);
  soc.publish_stats();
  EXPECT_EQ(soc.simulator().stats().counter_value("fault.cluster_hangs"),
            soc.fault_injector()->counters().cluster_hangs);
}

// ---- bit-exactness of the headline numbers ---------------------------------

TEST(BitExactness, HeadlineNumbersWithAndWithoutInstrumentation) {
  // Seed contract: extended 633, baseline 936, speedup 1.479x @ N=1024 M=32.
  const auto run = [](bool extended, bool traced) {
    soc::Soc soc(extended ? soc::SocConfig::extended(32) : soc::SocConfig::baseline(32));
    if (traced) soc.simulator().trace().enable();
    return soc::run_verified(soc, "daxpy", 1024, 32, 42).total();
  };
  EXPECT_EQ(run(true, false), 633u);
  EXPECT_EQ(run(false, false), 936u);
  EXPECT_EQ(run(true, true), 633u);    // tracing must not move a cycle
  EXPECT_EQ(run(false, true), 936u);
  const double speedup = 936.0 / 633.0;
  EXPECT_NEAR(speedup, 1.479, 0.0005);
}

// ---- docs cross-check ------------------------------------------------------

std::set<std::string> reference_names(const char* kind) {
  std::set<std::string> out;
  for (const auto& m : soc::metric_reference()) {
    if (kind == nullptr || std::string(kind) == m.kind) out.insert(m.name);
  }
  return out;
}

/// "cluster17.jobs" -> "cluster<i>.jobs" so per-instance names match the
/// reference patterns.
std::string normalize(const std::string& name) {
  if (name.rfind("cluster", 0) == 0) {
    std::size_t i = 7;
    while (i < name.size() && (std::isdigit(static_cast<unsigned char>(name[i])) != 0)) ++i;
    if (i > 7) return "cluster<i>" + name.substr(i);
  }
  return name;
}

TEST(DocsCrossCheck, EveryRuntimeNameIsInTheReferenceAndViceVersa) {
  // A faulted run (which also exercises recovery) plus publish_stats
  // registers every counter and histogram the simulator can emit. Integrity
  // checks are on so the verify phase counter and span fire too.
  soc::SocConfig cfg = soc::SocConfig::extended(8);
  cfg.runtime.watchdog_wait_cycles = 2000;
  cfg.runtime.integrity.enabled = true;
  cfg.fault.target_cluster = 3;
  cfg.fault.cluster_hang_prob = 1.0;
  soc::Soc soc(cfg);
  soc.simulator().trace().enable();
  soc::run_verified(soc, "daxpy", 1024, 8, 42);
  soc.publish_stats();
  // The serving layer registers its serve.* inventory eagerly (bind_stats /
  // register_serve_metrics) rather than through a Soc component; pull it
  // into the same registry so the reference check covers it. Serve spans
  // live only on the service's private trace sink and are documented in
  // docs/observability.md prose, not in the reference table.
  serve::register_serve_metrics(soc.simulator().stats());
  serve::register_fleet_metrics(soc.simulator().stats());
  scenario::register_scenario_metrics(soc.simulator().stats());

  const auto ref_counters = reference_names("counter");
  const auto ref_hists = reference_names("histogram");
  const auto ref_spans = reference_names("span");

  std::set<std::string> seen_counters;
  for (const auto& n : soc.simulator().stats().counter_names())
    seen_counters.insert(normalize(n));
  std::set<std::string> seen_hists;
  for (const auto& n : soc.simulator().stats().histogram_names()) seen_hists.insert(n);
  std::set<std::string> seen_spans;
  for (const auto& n : soc.simulator().trace().span_names()) seen_spans.insert(n);

  for (const auto& n : seen_counters) EXPECT_TRUE(ref_counters.count(n)) << "undocumented counter " << n;
  for (const auto& n : seen_hists) EXPECT_TRUE(ref_hists.count(n)) << "undocumented histogram " << n;
  for (const auto& n : seen_spans) EXPECT_TRUE(ref_spans.count(n)) << "undocumented span " << n;

  // Reverse direction: every reference counter/histogram was registered by
  // this run; spans need a fault-free run too (phase spans + cluster spans
  // all fire here as well, so seen_spans covers the reference).
  for (const auto& n : ref_counters) EXPECT_TRUE(seen_counters.count(n)) << "stale reference counter " << n;
  for (const auto& n : ref_hists) EXPECT_TRUE(seen_hists.count(n)) << "stale reference histogram " << n;
  for (const auto& n : ref_spans) EXPECT_TRUE(seen_spans.count(n)) << "stale reference span " << n;
}

#ifdef MCO_REPO_ROOT
TEST(DocsCrossCheck, ObservabilityDocMatchesReferenceBidirectionally) {
  const std::string path = std::string(MCO_REPO_ROOT) + "/docs/observability.md";
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open()) << path;
  // Inventory rows are markdown table rows whose first cell is a backticked
  // name: extract the first `...` token of every such line.
  std::set<std::string> documented;
  std::string line;
  while (std::getline(f, line)) {
    std::size_t p = line.find_first_not_of(' ');
    if (p == std::string::npos || line[p] != '|') continue;
    p = line.find('`', p);
    if (p == std::string::npos) continue;
    const std::size_t q = line.find('`', p + 1);
    if (q == std::string::npos) continue;
    documented.insert(line.substr(p + 1, q - p - 1));
  }
  std::set<std::string> reference;
  for (const auto& m : soc::metric_reference()) reference.insert(m.name);

  for (const auto& n : reference)
    EXPECT_TRUE(documented.count(n)) << "metric_reference() entry missing from docs: " << n;
  for (const auto& n : documented)
    EXPECT_TRUE(reference.count(n)) << "docs name not in metric_reference(): " << n;
}
#endif

}  // namespace
