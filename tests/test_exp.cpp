// Tests for the declarative experiment layer: spec expansion and file
// dialect, the deterministic sweep engine, and the paper-pinned grids
// (E1 / E4 / MAPE) emitted byte-identically at any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "exp/result_set.h"
#include "exp/spec.h"
#include "exp/sweep_runner.h"
#include "exp/thread_pool.h"
#include "model/mape.h"
#include "model/runtime_model.h"
#include "sim/rng.h"
#include "soc/config_io.h"
#include "soc/observability.h"

namespace mco::exp {
namespace {

// ---------------------------------------------------------------------------
// ExperimentSpec expansion

TEST(ExperimentSpec, ExpandsCrossProductInDeterministicOrder) {
  ExperimentSpec spec;
  spec.configs = {{"a", soc::SocConfig::baseline(32)}, {"b", soc::SocConfig::extended(32)}};
  spec.kernels = {"daxpy", "memcpy"};
  spec.ns = {256, 1024};
  spec.ms = {1, 8};
  spec.seeds = {42, 7};

  const std::vector<RunPoint> pts = spec.points();
  ASSERT_EQ(pts.size(), 2u * 2u * 2u * 2u * 2u);
  // config is the outermost axis, seed the innermost.
  EXPECT_EQ(pts[0].config_label, "a");
  EXPECT_EQ(pts[0].kernel, "daxpy");
  EXPECT_EQ(pts[0].n, 256u);
  EXPECT_EQ(pts[0].m, 1u);
  EXPECT_EQ(pts[0].seed, 42u);
  EXPECT_EQ(pts[1].seed, 7u);
  EXPECT_EQ(pts[2].m, 8u);
  EXPECT_EQ(pts[4].n, 1024u);
  EXPECT_EQ(pts[8].kernel, "memcpy");
  EXPECT_EQ(pts[16].config_label, "b");
  EXPECT_EQ(pts.back().config_label, "b");
  EXPECT_EQ(pts.back().seed, 7u);
}

TEST(ExperimentSpec, EmptyConfigsDefaultToExtended32) {
  ExperimentSpec spec;
  const std::vector<RunPoint> pts = spec.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].config_label, "extended");
  EXPECT_EQ(pts[0].cfg.num_clusters, 32u);
}

// ---------------------------------------------------------------------------
// Spec-file dialect

TEST(SpecText, ParsesGridAxesAndPresets) {
  const ExperimentSpec spec = load_spec_text(
      "# comment\n"
      "name = fig1_left\n"
      "kernel = daxpy\n"
      "n = 1024\n"
      "m = 1, 2, 4, 8, 16, 32, 64\n"
      "config.baseline = baseline(64)\n"
      "config.extended = extended(64)\n");
  EXPECT_EQ(spec.name, "fig1_left");
  ASSERT_EQ(spec.configs.size(), 2u);
  EXPECT_EQ(spec.configs[0].label, "baseline");
  EXPECT_EQ(spec.configs[0].cfg.num_clusters, 64u);
  EXPECT_FALSE(spec.configs[0].cfg.features.multicast);
  EXPECT_TRUE(spec.configs[1].cfg.features.multicast);
  EXPECT_EQ(spec.ms, (std::vector<unsigned>{1, 2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(spec.points().size(), 14u);
}

TEST(SpecText, FirstMentionOfAnAxisClearsItsDefault) {
  const ExperimentSpec spec = load_spec_text("n = 256\nn = 512\n");
  EXPECT_EQ(spec.ns, (std::vector<std::uint64_t>{256, 512}));
}

TEST(SpecText, AppliesDottedConfigOverrides) {
  const ExperimentSpec spec = load_spec_text(
      "config.slow = extended(32)\n"
      "config.slow.hbm.beats_per_cycle = 8\n");
  ASSERT_EQ(spec.configs.size(), 1u);
  EXPECT_EQ(spec.configs[0].cfg.hbm.beats_per_cycle, 8u);
  EXPECT_TRUE(spec.configs[0].cfg.features.multicast);
}

TEST(SpecText, RejectsUnknownKeys) {
  EXPECT_THROW(load_spec_text("frobnicate = 3\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("n = twelve\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("config.a = warp_drive\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("no_equals_sign\n"), std::invalid_argument);
}

TEST(SpecText, RejectsOverrideForUndeclaredVariant) {
  EXPECT_THROW(load_spec_text("config.ghost.hbm.beats_per_cycle = 8\n"),
               std::invalid_argument);
}

TEST(SpecText, RejectsDuplicateVariantLabels) {
  EXPECT_THROW(load_spec_text("config.a = baseline\nconfig.a = extended\n"),
               std::invalid_argument);
}

TEST(SpecText, UnknownConfigOverrideKeyIsAnError) {
  EXPECT_THROW(load_spec_text("config.a = extended\nconfig.a.not.a.key = 1\n"),
               std::invalid_argument);
}

TEST(SpecText, SaveLoadRoundTripIsExact) {
  ExperimentSpec spec;
  spec.name = "round_trip";
  spec.kernels = {"daxpy", "dot"};
  spec.ns = {256, 1024};
  spec.ms = {1, 32};
  spec.seeds = {42, 7};
  spec.tolerance = 1e-5;
  soc::SocConfig tweaked = soc::SocConfig::extended(16);
  tweaked.hbm.beats_per_cycle = 8;
  spec.configs = {{"base", soc::SocConfig::baseline(32)}, {"tweaked", tweaked}};

  const std::string text = save_spec_text(spec);
  const ExperimentSpec reloaded = load_spec_text(text);

  EXPECT_EQ(reloaded.name, spec.name);
  EXPECT_EQ(reloaded.kernels, spec.kernels);
  EXPECT_EQ(reloaded.ns, spec.ns);
  EXPECT_EQ(reloaded.ms, spec.ms);
  EXPECT_EQ(reloaded.seeds, spec.seeds);
  EXPECT_EQ(reloaded.tolerance, spec.tolerance);
  ASSERT_EQ(reloaded.configs.size(), 2u);
  EXPECT_EQ(reloaded.configs[1].cfg.hbm.beats_per_cycle, 8u);
  // The rendered dialect itself must be a fixed point.
  EXPECT_EQ(save_spec_text(reloaded), text);
  // And the reloaded configs must time identically to the originals.
  EXPECT_EQ(soc::save_text(reloaded.configs[0].cfg), soc::save_text(spec.configs[0].cfg));
  EXPECT_EQ(soc::save_text(reloaded.configs[1].cfg), soc::save_text(spec.configs[1].cfg));
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 4u}) {
    ThreadPool pool(jobs);
    constexpr std::size_t kCount = 257;
    std::vector<std::atomic<int>> hits(kCount);
    pool.for_each_index(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  pool.for_each_index(0, [&](std::size_t) { FAIL(); });
}

TEST(SweepRunner, MapPreservesInputOrder) {
  SweepRunner runner(4);
  std::vector<int> items;
  for (int i = 0; i < 100; ++i) items.push_back(i);
  const std::vector<int> out = runner.map(items, [](const int& v) { return v * v; });
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(SweepRunner, MapRethrowsFirstExceptionInItemOrder) {
  SweepRunner runner(4);
  const std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  try {
    runner.map(items, [](const int& v) -> int {
      if (v == 3 || v == 6) throw std::runtime_error("boom " + std::to_string(v));
      return v;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(SweepRunner, JobsFromArgsStripsTheFlag) {
  const char* argv_in[] = {"prog", "--benchmark_filter=x", "--jobs=4", "--other"};
  std::vector<char*> argv;
  for (const char* a : argv_in) argv.push_back(const_cast<char*>(a));
  argv.push_back(nullptr);
  int argc = 4;
  EXPECT_EQ(SweepRunner::jobs_from_args(argc, argv.data()), 4u);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--benchmark_filter=x");
  EXPECT_STREQ(argv[2], "--other");
  EXPECT_EQ(argv[3], nullptr);
}

TEST(SweepRunner, JobsFromArgsSpaceSeparatedForm) {
  const char* argv_in[] = {"prog", "--jobs", "16"};
  std::vector<char*> argv;
  for (const char* a : argv_in) argv.push_back(const_cast<char*>(a));
  argv.push_back(nullptr);
  int argc = 3;
  EXPECT_EQ(SweepRunner::jobs_from_args(argc, argv.data()), 16u);
  EXPECT_EQ(argc, 1);
}

// ---------------------------------------------------------------------------
// Determinism of the paper grids across worker counts

/// Run `spec` at several worker counts and require every emission to be
/// byte-identical to the serial reference.
ResultSet run_bit_identical(const ExperimentSpec& spec) {
  SweepRunner serial(1);
  ResultSet reference = serial.run(spec);
  for (const unsigned jobs : {4u, 16u}) {
    SweepRunner parallel(jobs);
    const ResultSet rs = parallel.run(spec);
    EXPECT_EQ(rs.to_csv(), reference.to_csv()) << spec.name << " --jobs " << jobs;
    EXPECT_EQ(rs.to_json(), reference.to_json()) << spec.name << " --jobs " << jobs;
  }
  return reference;
}

TEST(SweepDeterminism, E1GridIsByteIdenticalAcrossJobCounts) {
  ExperimentSpec spec;
  spec.name = "fig1_left";
  spec.configs = {{"baseline", soc::SocConfig::baseline(64)},
                  {"extended", soc::SocConfig::extended(64)}};
  spec.ms = {1, 2, 4, 8, 16, 32, 64};
  const ResultSet rs = run_bit_identical(spec);

  // Paper shape: baseline has an interior optimum, extended decreases
  // monotonically through M=32 and beats baseline by >300 cycles there.
  sim::Cycles best_base = ~0ull;
  unsigned best_m = 0;
  for (const unsigned m : spec.ms) {
    const sim::Cycles t = rs.cycles("baseline", "daxpy", 1024, m);
    if (t < best_base) {
      best_base = t;
      best_m = m;
    }
  }
  EXPECT_GT(best_m, 1u);
  EXPECT_LT(best_m, 32u);
  EXPECT_GT(rs.cycles("baseline", "daxpy", 1024, 32) - rs.cycles("extended", "daxpy", 1024, 32),
            300u);
}

TEST(SweepDeterminism, E4HeadlinePinsHold) {
  ExperimentSpec spec;
  spec.name = "headline";
  spec.configs = {{"baseline", soc::SocConfig::baseline(32)},
                  {"extended", soc::SocConfig::extended(32)}};
  spec.ms = {32};
  const ResultSet rs = run_bit_identical(spec);

  const sim::Cycles base32 = rs.cycles("baseline", "daxpy", 1024, 32);
  const sim::Cycles ext32 = rs.cycles("extended", "daxpy", 1024, 32);
  // The repo's pinned headline numbers (see bench_headline / ROADMAP).
  EXPECT_EQ(ext32, 633u);
  EXPECT_EQ(base32, 936u);
  const double speedup = static_cast<double>(base32) / static_cast<double>(ext32);
  EXPECT_NEAR(speedup, 1.479, 0.02);
}

TEST(SweepDeterminism, MapeGridStaysBelowOnePercent) {
  ExperimentSpec spec;
  spec.name = "model_mape";
  spec.ns = {256, 512, 768, 1024};
  spec.ms = {1, 2, 4, 8, 16, 32};
  const ResultSet rs = run_bit_identical(spec);

  std::vector<model::Sample> samples;
  for (const PointResult& r : rs.rows()) {
    samples.push_back(model::Sample{r.point.m, r.point.n, static_cast<double>(r.total)});
  }
  const auto by_n = model::mape_by_n(model::paper_daxpy_model(), samples);
  for (const auto& [n, mape] : by_n) {
    EXPECT_LT(mape, 1.0) << "N=" << n;
  }
}

// ---------------------------------------------------------------------------
// ResultSet

TEST(ResultSet, FindThrowsOnUnknownCoordinates) {
  SweepRunner runner(1);
  ExperimentSpec spec;
  spec.ms = {1};
  const ResultSet rs = runner.run(spec);
  EXPECT_NO_THROW(rs.find("extended", "daxpy", 1024, 1));
  EXPECT_THROW(rs.find("extended", "daxpy", 1024, 2), std::out_of_range);
  EXPECT_THROW(rs.find("baseline", "daxpy", 1024, 1), std::out_of_range);
}

TEST(ResultSet, EmissionsCarrySchemaAndCoordinates) {
  SweepRunner runner(1);
  ExperimentSpec spec;
  spec.name = "mini";
  spec.ms = {1, 2};
  const ResultSet rs = runner.run(spec);
  EXPECT_EQ(rs.size(), 2u);
  const std::string csv = rs.to_csv();
  EXPECT_NE(csv.find("config,kernel,n,m,seed,total_cycles"), std::string::npos);
  EXPECT_NE(csv.find("extended,daxpy,1024,1,42,"), std::string::npos);
  const std::string json = rs.to_json();
  EXPECT_NE(json.find("\"schema\": \"mco-sweep-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"mini\""), std::string::npos);
  EXPECT_NE(json.find("\"total_sim_cycles\""), std::string::npos);
}

TEST(SweepRunner, VerificationFailureSurfacesAsError) {
  SweepRunner runner(1);
  RunPoint p;
  p.config_label = "extended";
  p.cfg = soc::SocConfig::extended(32);
  p.m = 4;
  p.tolerance = 0.0;  // nothing passes a zero tolerance... unless exact
  // DAXPY on binary64 happens to be exact for these operands only rarely;
  // use an impossible negative tolerance to force the throw deterministically.
  p.tolerance = -1.0;
  EXPECT_THROW(runner.run("fail", {p}), std::runtime_error);
}

TEST(SweepRunner, CountsPointsAndCycles) {
  SweepRunner runner(2);
  ExperimentSpec spec;
  spec.ms = {1, 2, 4};
  const ResultSet rs = runner.run(spec);
  EXPECT_EQ(runner.points_run(), 3u);
  EXPECT_EQ(runner.sim_cycles(), rs.total_sim_cycles());
  EXPECT_GT(runner.sim_cycles(), 0u);
}

// ---------------------------------------------------------------------------
// CLI robustness: --jobs parsing and output-path validation

TEST(JobsParsing, AcceptsPlainDecimals) {
  EXPECT_EQ(SweepRunner::parse_jobs("1"), 1u);
  EXPECT_EQ(SweepRunner::parse_jobs("16"), 16u);
  EXPECT_EQ(SweepRunner::parse_jobs("1024"), 1024u);
  EXPECT_EQ(SweepRunner::parse_jobs(" 8 "), 8u);
}

TEST(JobsParsing, RejectsZeroNegativeAndGarbage) {
  EXPECT_THROW(SweepRunner::parse_jobs("0"), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("-1"), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("-64"), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("banana"), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("4x"), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("0x10"), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("4.5"), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs(""), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("  "), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("1025"), std::invalid_argument);
  EXPECT_THROW(SweepRunner::parse_jobs("99999999999999999999"), std::invalid_argument);
}

TEST(OutputPathValidation, AcceptsExistingDirsAndBareFilenames) {
  EXPECT_NO_THROW(soc::validate_output_path("", "--trace-out"));
  EXPECT_NO_THROW(soc::validate_output_path("trace.json", "--trace-out"));
  EXPECT_NO_THROW(soc::validate_output_path("/tmp/trace.json", "--trace-out"));
}

TEST(OutputPathValidation, RejectsMissingDirectoryNamingTheFlag) {
  try {
    soc::validate_output_path("/no/such/dir/trace.json", "--trace-out");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--trace-out"), std::string::npos);
    EXPECT_NE(msg.find("/no/such/dir"), std::string::npos);
    EXPECT_NE(msg.find("does not exist"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Spec parser: negative paths and a seeded mutation corpus

TEST(SpecNegative, MalformedPresetForms) {
  EXPECT_THROW(load_spec_text("config.a = baseline(64\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("config.a = baseline()\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("config.a = baseline(sixty-four)\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("config.a = baseline(0)\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("config.a = baseline(4096)\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("config. = extended\n"), std::invalid_argument);
}

TEST(SpecNegative, OutOfDomainAxisValues) {
  EXPECT_THROW(load_spec_text("n = 0\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("m = 0\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("m = 2000\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("m = 1,,2\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("tolerance = -1e-9\n"), std::invalid_argument);
  EXPECT_THROW(load_spec_text("tolerance = nan\n"), std::invalid_argument);
}

TEST(SpecNegative, ErrorsCarryTheLineNumber) {
  try {
    load_spec_text("name = ok\nkernel = daxpy\nm = 0\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SpecNegative, MissingFileIsACleanError) {
  EXPECT_THROW(load_spec_file("/no/such/spec.exp"), std::runtime_error);
}

TEST(SpecFuzz, SeededMutationCorpusNeverCrashes) {
  // Mutate a valid spec 500 ways (truncate / splice / corrupt bytes, seeded,
  // so failures replay) and require the parser to either accept the result
  // or reject it with a std::exception — never crash, hang or misbehave.
  const std::string valid = save_spec_text([] {
    ExperimentSpec s;
    s.name = "fuzz";
    s.configs.push_back({"ext", soc::SocConfig::extended(16)});
    return s;
  }());
  sim::Rng rng(0xF022ull);
  const std::string charset = "abcdefghijklmnopqrstuvwxyz0123456789.,=()# \n-";
  unsigned parsed = 0, rejected = 0;
  for (int i = 0; i < 500; ++i) {
    std::string text = valid;
    const unsigned op = static_cast<unsigned>(rng.next_below(4));
    if (op == 0 && !text.empty()) {  // truncate mid-file
      text.resize(rng.next_below(text.size()));
    } else if (op == 1 && !text.empty()) {  // corrupt one byte
      text[rng.next_below(text.size())] =
          charset[rng.next_below(charset.size())];
    } else if (op == 2 && !text.empty()) {  // delete a span
      const std::size_t at = rng.next_below(text.size());
      text.erase(at, rng.next_below(16) + 1);
    } else {  // splice random garbage
      std::string junk;
      for (unsigned k = 0; k < 12; ++k) junk += charset[rng.next_below(charset.size())];
      text.insert(text.empty() ? 0 : rng.next_below(text.size()), junk);
    }
    try {
      (void)load_spec_text(text);
      ++parsed;
    } catch (const std::exception& e) {
      EXPECT_NE(e.what()[0], '\0') << "empty diagnostic for mutant " << i;
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 500u);
  EXPECT_GT(rejected, 0u);  // the corpus does exercise error paths
}

}  // namespace
}  // namespace mco::exp
