// Unit tests for the synchronization primitives: the hardware credit counter
// unit, cluster mailboxes, the baseline shared-memory counter and the
// team-start barrier.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/trace.h"
#include "sync/credit_counter.h"
#include "sync/mailbox.h"
#include "sync/shared_counter.h"
#include "sync/team_barrier.h"

namespace {

using namespace mco;
using namespace mco::sync;

// ---- credit counter unit ---------------------------------------------------

struct CreditFixture : ::testing::Test {
  sim::Simulator sim;
  CreditCounterUnit unit{sim, "sync_unit", CreditCounterConfig{1}};
};

TEST_F(CreditFixture, FiresIrqAtThreshold) {
  sim::Cycle irq_at = 0;
  unit.set_irq_callback([&] { irq_at = sim.now(); });
  unit.arm(3);
  sim.schedule_at(10, [&] { unit.increment(); });
  sim.schedule_at(20, [&] { unit.increment(); });
  sim.schedule_at(30, [&] { unit.increment(); });
  sim.run();
  EXPECT_EQ(irq_at, 31u);  // trigger latency 1
  EXPECT_EQ(unit.interrupts_fired(), 1u);
}

TEST_F(CreditFixture, DoesNotFireBelowThreshold) {
  int irqs = 0;
  unit.set_irq_callback([&] { ++irqs; });
  unit.arm(2);
  unit.increment();
  sim.run();
  EXPECT_EQ(irqs, 0);
  EXPECT_EQ(unit.count(), 1u);
  EXPECT_TRUE(unit.armed());
}

TEST_F(CreditFixture, ThresholdOneFiresImmediately) {
  int irqs = 0;
  unit.set_irq_callback([&] { ++irqs; });
  unit.arm(1);
  unit.increment();
  sim.run();
  EXPECT_EQ(irqs, 1);
}

TEST_F(CreditFixture, ArmResetsCount) {
  unit.set_irq_callback([] {});
  unit.arm(1);
  unit.increment();
  sim.run();
  unit.arm(2);
  EXPECT_EQ(unit.count(), 0u);
  EXPECT_EQ(unit.threshold(), 2u);
}

TEST_F(CreditFixture, ReArmWhilePendingThrows) {
  unit.arm(2);
  unit.increment();
  EXPECT_THROW(unit.arm(3), std::logic_error);
}

TEST_F(CreditFixture, ZeroThresholdThrows) { EXPECT_THROW(unit.arm(0), std::invalid_argument); }

TEST_F(CreditFixture, SpuriousIncrementCountedNotFatal) {
  unit.increment();  // never armed
  EXPECT_EQ(unit.spurious_increments(), 1u);
  EXPECT_EQ(unit.count(), 0u);
}

TEST_F(CreditFixture, DisarmsAfterFiring) {
  unit.set_irq_callback([] {});
  unit.arm(1);
  unit.increment();
  sim.run();
  EXPECT_FALSE(unit.armed());
  unit.increment();  // late credit after completion is spurious
  EXPECT_EQ(unit.spurious_increments(), 1u);
}

TEST_F(CreditFixture, ResetClearsState) {
  unit.arm(5);
  unit.increment();
  unit.reset();
  EXPECT_FALSE(unit.armed());
  EXPECT_EQ(unit.count(), 0u);
  EXPECT_EQ(unit.threshold(), 0u);
}

TEST_F(CreditFixture, ReArmDuringIrqAssertionThrows) {
  // The threshold disarms the counter immediately, but the IRQ edge is still
  // in flight for trigger_latency cycles; re-arming inside that window would
  // attribute the stale edge to the new epoch.
  unit.set_irq_callback([] {});
  unit.arm(1);
  unit.increment();
  EXPECT_TRUE(unit.irq_pending());
  EXPECT_THROW(unit.arm(2), std::logic_error);
  sim.run();  // edge delivered, window closed
  EXPECT_FALSE(unit.irq_pending());
  EXPECT_NO_THROW(unit.arm(2));
}

TEST_F(CreditFixture, SpuriousIncrementEmitsTraceRecord) {
  sim.trace().enable();
  unit.increment(3);
  bool found = false;
  for (const sim::TraceRecord& r : sim.trace().records()) {
    if (r.what == "credit_spurious" && r.detail == "cluster=3") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(CreditFixture, ResetEmitsTraceRecord) {
  sim.trace().enable();
  unit.reset();
  bool found = false;
  for (const sim::TraceRecord& r : sim.trace().records()) {
    if (r.what == "sync_reset") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(CreditFixture, ObserverSeesRecordsWithoutStorage) {
  // The check layer's monitor tap: an observer receives every record while
  // the sink, left disabled, stores nothing.
  std::vector<std::string> seen;
  sim.trace().set_observer([&](const sim::TraceRecord& r) { seen.push_back(r.what); });
  unit.set_irq_callback([] {});
  unit.arm(1);
  unit.increment();
  sim.run();
  EXPECT_FALSE(sim.trace().enabled());
  EXPECT_TRUE(sim.trace().records().empty());
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen[0], "arm");
  EXPECT_EQ(seen[1], "credit");
}

// ---- mailbox ---------------------------------------------------------------

TEST(Mailbox, DoorbellFiresOnDelivery) {
  sim::Simulator sim;
  Mailbox mb(sim, "mb");
  int rings = 0;
  mb.set_doorbell([&] { ++rings; });
  mb.deliver(noc::DispatchMessage{{1, 2}});
  EXPECT_EQ(rings, 1);
  EXPECT_EQ(mb.depth(), 1u);
}

TEST(Mailbox, PopReturnsFifoOrder) {
  sim::Simulator sim;
  Mailbox mb(sim, "mb");
  mb.deliver(noc::DispatchMessage{{1}});
  mb.deliver(noc::DispatchMessage{{2}});
  EXPECT_EQ(mb.pop().words[0], 1u);
  EXPECT_EQ(mb.pop().words[0], 2u);
  EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, PopEmptyThrows) {
  sim::Simulator sim;
  Mailbox mb(sim, "mb");
  EXPECT_THROW(mb.pop(), std::logic_error);
}

TEST(Mailbox, CountsMessages) {
  sim::Simulator sim;
  Mailbox mb(sim, "mb");
  mb.deliver(noc::DispatchMessage{{1}});
  mb.deliver(noc::DispatchMessage{{2}});
  EXPECT_EQ(mb.messages_received(), 2u);
}

// ---- shared counter --------------------------------------------------------

TEST(SharedCounter, AmoCommitsAfterLatency) {
  sim::Simulator sim;
  SharedCounter c(sim, "ctr", SharedCounterConfig{60});
  c.store(0);
  c.amo_add();
  EXPECT_EQ(c.load(), 0u);  // not yet visible
  sim.run();
  EXPECT_EQ(c.load(), 1u);
  EXPECT_EQ(c.amos_serviced(), 1u);
}

TEST(SharedCounter, ConcurrentAmosCommitInParallel) {
  sim::Simulator sim;
  SharedCounter c(sim, "ctr", SharedCounterConfig{60});
  sim::Cycle all_committed = 0;
  for (int i = 0; i < 8; ++i) c.amo_add();
  sim.schedule_at(60, [&] { all_committed = c.load(); }, sim::Priority::kPostlude);
  sim.run();
  EXPECT_EQ(all_committed, 8u);  // pipelined datapath: all land at +latency
  EXPECT_EQ(c.max_in_flight(), 8u);
}

TEST(SharedCounter, StoreReinitializes) {
  sim::Simulator sim;
  SharedCounter c(sim, "ctr", SharedCounterConfig{1});
  c.amo_add();
  sim.run();
  c.store(0);
  EXPECT_EQ(c.load(), 0u);
}

TEST(SharedCounter, DeltaAdds) {
  sim::Simulator sim;
  SharedCounter c(sim, "ctr", SharedCounterConfig{1});
  c.amo_add(5);
  sim.run();
  EXPECT_EQ(c.load(), 5u);
}

// ---- team barrier ----------------------------------------------------------

TEST(TeamBarrier, ReleasesWhenTeamComplete) {
  sim::Simulator sim;
  TeamBarrier tb(sim, "tb", TeamBarrierConfig{12});
  std::vector<sim::Cycle> released;
  sim.schedule_at(10, [&] { tb.arrive(3, [&] { released.push_back(sim.now()); }); });
  sim.schedule_at(20, [&] { tb.arrive(3, [&] { released.push_back(sim.now()); }); });
  sim.schedule_at(50, [&] { tb.arrive(3, [&] { released.push_back(sim.now()); }); });
  sim.run();
  ASSERT_EQ(released.size(), 3u);
  for (const auto t : released) EXPECT_EQ(t, 62u);  // last arrival + 12
  EXPECT_EQ(tb.episodes_completed(), 1u);
}

TEST(TeamBarrier, SingleMemberTeam) {
  sim::Simulator sim;
  TeamBarrier tb(sim, "tb", TeamBarrierConfig{12});
  sim::Cycle at = 0;
  tb.arrive(1, [&] { at = sim.now(); });
  sim.run();
  EXPECT_EQ(at, 12u);
}

TEST(TeamBarrier, MismatchedExpectationThrows) {
  sim::Simulator sim;
  TeamBarrier tb(sim, "tb", TeamBarrierConfig{});
  tb.arrive(3, [] {});
  EXPECT_THROW(tb.arrive(2, [] {}), std::logic_error);
}

TEST(TeamBarrier, ZeroTeamThrows) {
  sim::Simulator sim;
  TeamBarrier tb(sim, "tb", TeamBarrierConfig{});
  EXPECT_THROW(tb.arrive(0, [] {}), std::invalid_argument);
}

TEST(TeamBarrier, ReusableAcrossEpisodes) {
  sim::Simulator sim;
  TeamBarrier tb(sim, "tb", TeamBarrierConfig{1});
  int releases = 0;
  tb.arrive(2, [&] { ++releases; });
  tb.arrive(2, [&] { ++releases; });
  sim.run();
  tb.arrive(1, [&] { ++releases; });  // next episode, different size: OK
  sim.run();
  EXPECT_EQ(releases, 3);
  EXPECT_EQ(tb.episodes_completed(), 2u);
}

TEST(TeamBarrier, WaitingCountVisible) {
  sim::Simulator sim;
  TeamBarrier tb(sim, "tb", TeamBarrierConfig{});
  tb.arrive(2, [] {});
  EXPECT_EQ(tb.waiting(), 1u);
}

}  // namespace
