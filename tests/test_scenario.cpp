// Tests for the chaos-scenario engine (src/scenario): the text dialect
// parser (positive grammar, every negative path, a seeded mutation fuzz),
// the phase-directed trace generator, verdict evaluation, the keyword
// inventory the docs cross-check pins, and — with MCO_REPO_ROOT — the
// shipped scenarios/ catalog: every file parses, and the headline
// drain+restart episode demonstrably recovers with zero invariant
// violations and a byte-stable report.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "scenario/scenario.h"
#include "scenario/scenario_runner.h"
#include "sim/rng.h"

namespace {

using namespace mco;
using scenario::load_scenario_text;
using scenario::ScenarioEventKind;
using scenario::ScenarioSpec;

const char* kValid = R"(# full-dialect scenario
name = parse_me
clusters = 4
seed = 9
horizon = 2ms
queue = 8
failure_threshold = 3
probation_probes = 2
probe_backoff = 4us
restart_penalty = 30us
watchdog = 2500
retries = 2

at 0 traffic steady
at 100us traffic burst gap=50..200 n=2..8 slack=1.0..1.5 priority=1..2 unmeetable=0
at 200us inject sick_cluster=3
at 300us drain
at 310us restart
at 400us undrain
at 400us mark recovery
at 500us inject none
at 1ms traffic lull
expect slo_met >= 0.9 after recovery
expect violations == 0
expect restarts <= 1
)";

// ---- positive grammar ------------------------------------------------------

TEST(ScenarioParse, FullDialectRoundTrip) {
  const ScenarioSpec s = load_scenario_text(kValid);
  EXPECT_EQ(s.name, "parse_me");
  EXPECT_EQ(s.clusters, 4u);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.horizon, 2'000'000u);
  EXPECT_EQ(s.max_queue, 8u);
  EXPECT_EQ(s.failure_threshold, 3u);
  EXPECT_EQ(s.probation_probes, 2u);
  EXPECT_EQ(s.probe_backoff_cycles, 4'000u);
  EXPECT_EQ(s.restart_penalty_cycles, 30'000u);
  EXPECT_EQ(s.watchdog_wait_cycles, 2'500u);
  EXPECT_EQ(s.max_retries, 2u);

  ASSERT_EQ(s.phases.size(), 3u);
  EXPECT_EQ(s.phases[0].profile, "steady");
  EXPECT_EQ(s.phases[1].start, 100'000u);
  EXPECT_EQ(s.phases[1].gap_min, 50u);
  EXPECT_EQ(s.phases[1].gap_max, 200u);
  EXPECT_EQ(s.phases[1].n_scale_min, 2u);
  EXPECT_EQ(s.phases[1].n_scale_max, 8u);
  EXPECT_DOUBLE_EQ(s.phases[1].slack_min, 1.0);
  EXPECT_DOUBLE_EQ(s.phases[1].slack_max, 1.5);
  EXPECT_EQ(s.phases[1].priority_min, 1u);
  EXPECT_EQ(s.phases[1].priority_max, 2u);
  EXPECT_EQ(s.phases[1].unmeetable_one_in, 0u);
  EXPECT_EQ(s.phases[2].profile, "lull");
  EXPECT_GT(s.phases[2].gap_min, s.phases[0].gap_min);  // lull stretches gaps

  ASSERT_EQ(s.events.size(), 9u);
  EXPECT_EQ(s.events[2].kind, ScenarioEventKind::kInject);
  EXPECT_EQ(s.events[2].label, "sick_cluster");
  EXPECT_EQ(s.events[3].kind, ScenarioEventKind::kDrain);
  EXPECT_EQ(s.events[4].kind, ScenarioEventKind::kRestart);
  EXPECT_EQ(s.events[5].kind, ScenarioEventKind::kUndrain);
  EXPECT_EQ(s.events[6].kind, ScenarioEventKind::kMark);

  // The per-cluster override rides on the preset.
  ASSERT_EQ(s.faults.steps().size(), 2u);
  EXPECT_EQ(s.faults.steps()[0].preset, "sick_cluster");
  EXPECT_EQ(s.faults.steps()[0].cfg.target_cluster, 3);
  EXPECT_FALSE(s.faults.steps()[1].cfg.any_enabled());
  EXPECT_EQ(s.faults.active_at(250'000).target_cluster, 3);
  EXPECT_FALSE(s.faults.active_at(0).any_enabled());

  EXPECT_EQ(s.mark_cycle("recovery"), 400'000u);
  ASSERT_EQ(s.verdicts.size(), 3u);
  EXPECT_EQ(s.verdicts[0].metric, "slo_met");
  EXPECT_EQ(s.verdicts[0].after, "recovery");
  EXPECT_EQ(s.verdicts[0].text, "slo_met >= 0.9 after recovery");
  EXPECT_EQ(s.verdicts[1].text, "violations == 0");
}

TEST(ScenarioParse, HeaderEqualsMayBeUnspaced) {
  const ScenarioSpec s = load_scenario_text("horizon=1000\nat 0 traffic steady\n");
  EXPECT_EQ(s.horizon, 1000u);
}

TEST(ScenarioParse, InjectClusterArgumentOverridesTheTarget) {
  const ScenarioSpec s = load_scenario_text(
      "horizon = 1000\nat 0 traffic steady\nat 10 inject cluster_hang cluster=5\n");
  ASSERT_EQ(s.faults.steps().size(), 1u);
  EXPECT_EQ(s.faults.steps()[0].cfg.target_cluster, 5);
}

// ---- negative paths --------------------------------------------------------

/// The parse must fail, with a diagnostic naming the offending line.
void expect_error(const std::string& text, const std::string& needle) {
  try {
    (void)load_scenario_text(text);
    FAIL() << "parse accepted:\n" << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(ScenarioParse, RejectsUnknownVerb) {
  expect_error("horizon = 1000\nat 0 explode everything\n", "unknown verb 'explode'");
  expect_error("horizon = 1000\nat 0 explode everything\n", "scenario line 2");
}

TEST(ScenarioParse, RejectsOutOfOrderTimestamps) {
  expect_error("horizon = 1000\nat 500 drain\nat 400 undrain\n", "non-decreasing");
}

TEST(ScenarioParse, RejectsDuplicateDrain) {
  expect_error("horizon = 1000\nat 0 drain\nat 10 drain\n", "already draining");
}

TEST(ScenarioParse, RejectsUnpairedUndrain) {
  expect_error("horizon = 1000\nat 0 undrain\n", "not draining");
}

TEST(ScenarioParse, RejectsVerdictOnUnknownMetric) {
  expect_error("horizon = 1000\nexpect happiness >= 1\n", "unknown metric 'happiness'");
}

TEST(ScenarioParse, RejectsVerdictWithUnknownOperator) {
  expect_error("horizon = 1000\nexpect jobs ~= 1\n", "unknown operator '~='");
}

TEST(ScenarioParse, RejectsScopedGlobalMetric) {
  expect_error("horizon = 1000\nat 0 mark m\nexpect violations == 0 after m\n",
               "episode-global");
}

TEST(ScenarioParse, RejectsVerdictAfterUnknownMark) {
  expect_error("horizon = 1000\nexpect jobs >= 1 after nowhere\n", "unknown mark");
}

TEST(ScenarioParse, RejectsMissingHorizon) {
  expect_error("name = x\nat 0 traffic steady\n", "missing required header 'horizon");
}

TEST(ScenarioParse, RejectsHeaderAfterScript) {
  expect_error("horizon = 1000\nat 0 traffic steady\nseed = 7\n", "headers go first");
}

TEST(ScenarioParse, RejectsUnknownHeaderKey) {
  expect_error("horizon = 1000\nflux_capacitance = 3\n", "unknown header key");
}

TEST(ScenarioParse, RejectsUnknownFaultPreset) {
  expect_error("horizon = 1000\nat 0 inject gremlins\n", "unknown preset 'gremlins'");
}

TEST(ScenarioParse, RejectsUnknownTrafficProfile) {
  expect_error("horizon = 1000\nat 0 traffic tsunami\n", "unknown traffic profile");
}

TEST(ScenarioParse, RejectsInvertedRanges) {
  expect_error("horizon = 1000\nat 0 traffic steady gap=900..100\n", "max below min");
}

TEST(ScenarioParse, RejectsTrailingOperatorArguments) {
  // Operator verbs accept only the optional shard=<k> argument.
  expect_error("horizon = 1000\nat 0 drain slowly\n", "unknown argument 'slowly'");
  expect_error("horizon = 1000\nat 0 restart now please\n", "unexpected trailing arguments");
}

TEST(ScenarioParse, RejectsDuplicateMarks) {
  expect_error("horizon = 1000\nat 0 mark a\nat 10 mark a\n", "duplicate mark");
}

TEST(ScenarioParse, RejectsMalformedNumbers) {
  expect_error("horizon = soon\n", "expects an unsigned integer");
  expect_error("horizon = 1000\nat 0 traffic steady slack=fast\n", "expects a number");
}

TEST(ScenarioFile, MissingFileIsARuntimeError) {
  EXPECT_THROW(scenario::load_scenario_file("/nonexistent/nope.scn"), std::runtime_error);
}

// ---- seeded mutation fuzz ---------------------------------------------------

TEST(ScenarioFuzz, SeededMutationCorpusNeverCrashes) {
  // Mutate the valid scenario 300 ways (truncate / corrupt / delete /
  // splice, seeded so failures replay) and require the parser to either
  // accept the result or reject it with a std::exception — never crash.
  const std::string valid = kValid;
  sim::Rng rng(0x5CE7A210ull);
  const std::string charset = "abcdefghijklmnopqrstuvwxyz0123456789.,=# \nat-";
  unsigned parsed = 0, rejected = 0;
  for (int i = 0; i < 300; ++i) {
    std::string text = valid;
    const unsigned op = static_cast<unsigned>(rng.next_below(4));
    if (op == 0 && !text.empty()) {  // truncate mid-file
      text.resize(rng.next_below(text.size()));
    } else if (op == 1 && !text.empty()) {  // corrupt one byte
      text[rng.next_below(text.size())] = charset[rng.next_below(charset.size())];
    } else if (op == 2 && !text.empty()) {  // delete a span
      const std::size_t at = rng.next_below(text.size());
      text.erase(at, rng.next_below(16) + 1);
    } else {  // splice random garbage
      std::string junk;
      for (unsigned k = 0; k < 12; ++k) junk += charset[rng.next_below(charset.size())];
      text.insert(text.empty() ? 0 : rng.next_below(text.size()), junk);
    }
    try {
      (void)load_scenario_text(text);
      ++parsed;
    } catch (const std::exception& e) {
      EXPECT_NE(e.what()[0], '\0') << "empty diagnostic for mutant " << i;
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 300u);
  EXPECT_GT(rejected, 0u);  // the corpus does exercise error paths
}

// ---- trace generation -------------------------------------------------------

TEST(ScenarioTrace, IsDeterministicAndPhaseDirected) {
  const ScenarioSpec s = load_scenario_text(
      "horizon = 100000\n"
      "at 0 traffic steady gap=100..100 n=1..1 priority=0..0 unmeetable=0\n"
      "at 50000 traffic steady gap=1000..1000 n=4..4 unmeetable=0\n");
  const model::RuntimeModel m = model::paper_daxpy_model();
  const auto a = scenario::scenario_trace(s, m);
  const auto b = scenario::scenario_trace(s, m);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i + 1);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].t_max, b[i].t_max);
    EXPECT_LE(a[i].arrival, 100'000u);
    if (a[i].arrival < 50'000) {
      EXPECT_EQ(a[i].n, 256u);  // first phase: n scale pinned to 1
      if (i > 0) EXPECT_EQ(a[i].arrival - a[i - 1].arrival, 100u);
    } else if (a[i].arrival > 51'000) {
      EXPECT_EQ(a[i].n, 1024u);  // second phase: n scale pinned to 4
    }
  }
}

TEST(ScenarioTrace, EmptyPhaseListYieldsNoJobs) {
  const ScenarioSpec s = load_scenario_text("horizon = 1000\nat 0 drain\n");
  EXPECT_TRUE(scenario::scenario_trace(s, model::paper_daxpy_model()).empty());
}

// ---- verdicts ---------------------------------------------------------------

TEST(ScenarioVerdicts, OperatorTableIsExact) {
  EXPECT_TRUE(scenario::verdict_holds("==", 2.0, 2.0));
  EXPECT_FALSE(scenario::verdict_holds("==", 2.0, 3.0));
  EXPECT_TRUE(scenario::verdict_holds("!=", 2.0, 3.0));
  EXPECT_TRUE(scenario::verdict_holds("<=", 2.0, 2.0));
  EXPECT_TRUE(scenario::verdict_holds(">=", 3.0, 2.0));
  EXPECT_TRUE(scenario::verdict_holds("<", 1.0, 2.0));
  EXPECT_FALSE(scenario::verdict_holds(">", 1.0, 2.0));
  EXPECT_THROW(scenario::verdict_holds("~=", 1.0, 2.0), std::invalid_argument);
}

// ---- keyword inventory ------------------------------------------------------

TEST(ScenarioKeywords, NamesAreUniqueAndKindsAreKnown) {
  const std::set<std::string> kinds = {"header", "verb", "profile", "preset", "arg", "metric"};
  std::set<std::string> seen;
  for (const auto& k : scenario::scenario_keyword_reference()) {
    EXPECT_TRUE(kinds.count(k.kind)) << k.kind;
    EXPECT_TRUE(seen.insert(k.name).second) << "duplicate keyword " << k.name;
  }
  EXPECT_GE(seen.size(), 40u);
}

TEST(ScenarioKeywords, PresetRowsMatchTheFaultLayer) {
  // The dialect's preset keywords are exactly fault::preset_names(): a new
  // preset must land in both (and in docs/scenarios.md, which
  // scripts/check_metrics_docs.py cross-checks against this table).
  std::set<std::string> table;
  for (const auto& k : scenario::scenario_keyword_reference()) {
    if (std::string(k.kind) == "preset") table.insert(k.name);
  }
  std::set<std::string> layer;
  for (const std::string& n : fault::preset_names()) layer.insert(n);
  EXPECT_EQ(table, layer);
}

TEST(ScenarioKeywords, EveryParserVerbAndProfileIsListed) {
  std::set<std::string> verbs, profiles, metrics;
  for (const auto& k : scenario::scenario_keyword_reference()) {
    if (std::string(k.kind) == "verb") verbs.insert(k.name);
    if (std::string(k.kind) == "profile") profiles.insert(k.name);
    if (std::string(k.kind) == "metric") metrics.insert(k.name);
  }
  for (const char* v : {"traffic", "inject", "drain", "undrain", "restart", "mark"})
    EXPECT_TRUE(verbs.count(v)) << v;
  for (const char* p : {"steady", "burst", "lull", "mix"}) EXPECT_TRUE(profiles.count(p)) << p;
  for (const char* m : {"slo_met", "violations", "restarts", "drains", "makespan"})
    EXPECT_TRUE(metrics.count(m)) << m;
}

// ---- runner -----------------------------------------------------------------

TEST(ScenarioRunner, TinyEpisodeRunsCleanAndJudges) {
  const ScenarioSpec s = load_scenario_text(
      "name = tiny\nclusters = 2\nhorizon = 20000\n"
      "at 0 traffic steady unmeetable=0\n"
      "expect jobs > 0\nexpect violations == 0\nexpect restarts == 0\n");
  const scenario::ScenarioResult r = scenario::run_scenario(s, {});
  EXPECT_EQ(r.name, "tiny");
  EXPECT_GT(r.jobs, 0u);
  EXPECT_EQ(r.soc_violations + r.serve_violations, 0u);
  ASSERT_EQ(r.verdicts.size(), 3u);
  for (const auto& v : r.verdicts) EXPECT_TRUE(v.passed) << v.text;
  EXPECT_TRUE(r.passed);
  const std::string doc = scenario::scenario_report_json({r});
  EXPECT_NE(doc.find("\"schema\": \"mco-scenario-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"tiny\""), std::string::npos);
  EXPECT_NE(doc.find("\"passed\": true"), std::string::npos);
  EXPECT_EQ(doc, scenario::scenario_report_json({r}));  // byte-stable
}

TEST(ScenarioRunner, FailedVerdictFailsTheEpisode) {
  const ScenarioSpec s = load_scenario_text(
      "clusters = 2\nhorizon = 20000\nat 0 traffic steady unmeetable=0\n"
      "expect restarts >= 5\n");
  const scenario::ScenarioResult r = scenario::run_scenario(s, {});
  ASSERT_EQ(r.verdicts.size(), 1u);
  EXPECT_FALSE(r.verdicts[0].passed);
  EXPECT_FALSE(r.passed);
}

// ---- shipped catalog --------------------------------------------------------

#ifdef MCO_REPO_ROOT
TEST(ScenarioCatalog, EveryShippedFileParses) {
  const std::string dir = std::string(MCO_REPO_ROOT) + "/scenarios";
  const char* files[] = {"happy_path.scn",
                         "sick_cluster_drain_restart.scn",
                         "mid_burst_chaos.scn",
                         "quarantine_rescue.scn",
                         "credit_storm.scn",
                         "straggler_redistribution.scn",
                         "deadline_storm_shed.scn",
                         "restart_during_inflight.scn"};
  for (const char* f : files) {
    SCOPED_TRACE(f);
    ScenarioSpec s;
    ASSERT_NO_THROW(s = scenario::load_scenario_file(dir + "/" + f));
    EXPECT_GT(s.horizon, 0u);
    EXPECT_FALSE(s.verdicts.empty());
    bool has_violations_verdict = false;
    for (const auto& v : s.verdicts)
      has_violations_verdict = has_violations_verdict || v.metric == "violations";
    EXPECT_TRUE(has_violations_verdict) << "catalog scenarios must pin violations";
  }
}

TEST(ScenarioCatalog, HeadlineEpisodeRecoversDeterministically) {
  // The tentpole demonstration: sick cluster, operator drain + restart, and
  // a declared post-recovery SLO verdict that actually holds — twice, with
  // byte-identical reports.
  const ScenarioSpec s = scenario::load_scenario_file(
      std::string(MCO_REPO_ROOT) + "/scenarios/sick_cluster_drain_restart.scn");
  const scenario::ScenarioResult a = scenario::run_scenario(s, {});
  EXPECT_TRUE(a.passed) << scenario::scenario_report_json({a});
  EXPECT_EQ(a.restarts, 1u);
  EXPECT_EQ(a.drains, 1u);
  EXPECT_GE(a.quarantines, 1u);
  EXPECT_EQ(a.soc_violations + a.serve_violations, 0u);
  bool recovery_verdict = false;
  for (const auto& v : a.verdicts) {
    if (v.text.find("after recovery") != std::string::npos) {
      recovery_verdict = true;
      EXPECT_TRUE(v.passed) << v.text << " actual " << v.actual;
    }
  }
  EXPECT_TRUE(recovery_verdict);
  const scenario::ScenarioResult b = scenario::run_scenario(s, {});
  EXPECT_EQ(scenario::scenario_report_json({a}), scenario::scenario_report_json({b}));
}
#endif

}  // namespace
