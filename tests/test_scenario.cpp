// Tests for the chaos-scenario engine (src/scenario): the text dialect
// parser (positive grammar, every negative path, a seeded mutation fuzz),
// the phase-directed trace generator, verdict evaluation, the keyword
// inventory the docs cross-check pins, and — with MCO_REPO_ROOT — the
// shipped scenarios/ catalog: every file parses, and the headline
// drain+restart episode demonstrably recovers with zero invariant
// violations and a byte-stable report.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "scenario/scenario.h"
#include "scenario/scenario_runner.h"
#include "sim/rng.h"

namespace {

using namespace mco;
using scenario::load_scenario_text;
using scenario::ScenarioEventKind;
using scenario::ScenarioSpec;

const char* kValid = R"(# full-dialect scenario
name = parse_me
clusters = 4
seed = 9
horizon = 2ms
queue = 8
failure_threshold = 3
probation_probes = 2
probe_backoff = 4us
restart_penalty = 30us
watchdog = 2500
retries = 2

at 0 traffic steady
at 100us traffic burst gap=50..200 n=2..8 slack=1.0..1.5 priority=1..2 unmeetable=0
at 200us inject sick_cluster=3
at 300us drain
at 310us restart
at 400us undrain
at 400us mark recovery
at 500us inject none
at 1ms traffic lull
expect slo_met >= 0.9 after recovery
expect violations == 0
expect restarts <= 1
)";

// ---- positive grammar ------------------------------------------------------

TEST(ScenarioParse, FullDialectRoundTrip) {
  const ScenarioSpec s = load_scenario_text(kValid);
  EXPECT_EQ(s.name, "parse_me");
  EXPECT_EQ(s.clusters, 4u);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.horizon, 2'000'000u);
  EXPECT_EQ(s.max_queue, 8u);
  EXPECT_EQ(s.failure_threshold, 3u);
  EXPECT_EQ(s.probation_probes, 2u);
  EXPECT_EQ(s.probe_backoff_cycles, 4'000u);
  EXPECT_EQ(s.restart_penalty_cycles, 30'000u);
  EXPECT_EQ(s.watchdog_wait_cycles, 2'500u);
  EXPECT_EQ(s.max_retries, 2u);

  ASSERT_EQ(s.phases.size(), 3u);
  EXPECT_EQ(s.phases[0].profile, "steady");
  EXPECT_EQ(s.phases[1].start, 100'000u);
  EXPECT_EQ(s.phases[1].gap_min, 50u);
  EXPECT_EQ(s.phases[1].gap_max, 200u);
  EXPECT_EQ(s.phases[1].n_scale_min, 2u);
  EXPECT_EQ(s.phases[1].n_scale_max, 8u);
  EXPECT_DOUBLE_EQ(s.phases[1].slack_min, 1.0);
  EXPECT_DOUBLE_EQ(s.phases[1].slack_max, 1.5);
  EXPECT_EQ(s.phases[1].priority_min, 1u);
  EXPECT_EQ(s.phases[1].priority_max, 2u);
  EXPECT_EQ(s.phases[1].unmeetable_one_in, 0u);
  EXPECT_EQ(s.phases[2].profile, "lull");
  EXPECT_GT(s.phases[2].gap_min, s.phases[0].gap_min);  // lull stretches gaps

  ASSERT_EQ(s.events.size(), 9u);
  EXPECT_EQ(s.events[2].kind, ScenarioEventKind::kInject);
  EXPECT_EQ(s.events[2].label, "sick_cluster");
  EXPECT_EQ(s.events[3].kind, ScenarioEventKind::kDrain);
  EXPECT_EQ(s.events[4].kind, ScenarioEventKind::kRestart);
  EXPECT_EQ(s.events[5].kind, ScenarioEventKind::kUndrain);
  EXPECT_EQ(s.events[6].kind, ScenarioEventKind::kMark);

  // The per-cluster override rides on the preset.
  ASSERT_EQ(s.faults.steps().size(), 2u);
  EXPECT_EQ(s.faults.steps()[0].preset, "sick_cluster");
  EXPECT_EQ(s.faults.steps()[0].cfg.target_cluster, 3);
  EXPECT_FALSE(s.faults.steps()[1].cfg.any_enabled());
  EXPECT_EQ(s.faults.active_at(250'000).target_cluster, 3);
  EXPECT_FALSE(s.faults.active_at(0).any_enabled());

  EXPECT_EQ(s.mark_cycle("recovery"), 400'000u);
  ASSERT_EQ(s.verdicts.size(), 3u);
  EXPECT_EQ(s.verdicts[0].metric, "slo_met");
  EXPECT_EQ(s.verdicts[0].after, "recovery");
  EXPECT_EQ(s.verdicts[0].text, "slo_met >= 0.9 after recovery");
  EXPECT_EQ(s.verdicts[1].text, "violations == 0");
}

TEST(ScenarioParse, HeaderEqualsMayBeUnspaced) {
  const ScenarioSpec s = load_scenario_text("horizon=1000\nat 0 traffic steady\n");
  EXPECT_EQ(s.horizon, 1000u);
}

TEST(ScenarioParse, InjectClusterArgumentOverridesTheTarget) {
  const ScenarioSpec s = load_scenario_text(
      "horizon = 1000\nat 0 traffic steady\nat 10 inject cluster_hang cluster=5\n");
  ASSERT_EQ(s.faults.steps().size(), 1u);
  EXPECT_EQ(s.faults.steps()[0].cfg.target_cluster, 5);
}

// ---- negative paths --------------------------------------------------------

/// The parse must fail, with a diagnostic naming the offending line.
void expect_error(const std::string& text, const std::string& needle) {
  try {
    (void)load_scenario_text(text);
    FAIL() << "parse accepted:\n" << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(ScenarioParse, RejectsUnknownVerb) {
  expect_error("horizon = 1000\nat 0 explode everything\n", "unknown verb 'explode'");
  expect_error("horizon = 1000\nat 0 explode everything\n", "scenario line 2");
}

TEST(ScenarioParse, RejectsOutOfOrderTimestamps) {
  expect_error("horizon = 1000\nat 500 drain\nat 400 undrain\n", "non-decreasing");
}

TEST(ScenarioParse, RejectsDuplicateDrain) {
  expect_error("horizon = 1000\nat 0 drain\nat 10 drain\n", "already draining");
}

TEST(ScenarioParse, RejectsUnpairedUndrain) {
  expect_error("horizon = 1000\nat 0 undrain\n", "not draining");
}

TEST(ScenarioParse, RejectsVerdictOnUnknownMetric) {
  expect_error("horizon = 1000\nexpect happiness >= 1\n", "unknown metric 'happiness'");
}

TEST(ScenarioParse, RejectsVerdictWithUnknownOperator) {
  expect_error("horizon = 1000\nexpect jobs ~= 1\n", "unknown operator '~='");
}

TEST(ScenarioParse, RejectsScopedGlobalMetric) {
  expect_error("horizon = 1000\nat 0 mark m\nexpect violations == 0 after m\n",
               "episode-global");
}

TEST(ScenarioParse, RejectsVerdictAfterUnknownMark) {
  expect_error("horizon = 1000\nexpect jobs >= 1 after nowhere\n", "unknown mark");
}

TEST(ScenarioParse, RejectsMissingHorizon) {
  expect_error("name = x\nat 0 traffic steady\n", "missing required header 'horizon");
}

TEST(ScenarioParse, RejectsHeaderAfterScript) {
  expect_error("horizon = 1000\nat 0 traffic steady\nseed = 7\n", "headers go first");
}

TEST(ScenarioParse, RejectsUnknownHeaderKey) {
  expect_error("horizon = 1000\nflux_capacitance = 3\n", "unknown header key");
}

TEST(ScenarioParse, RejectsUnknownFaultPreset) {
  expect_error("horizon = 1000\nat 0 inject gremlins\n", "unknown preset 'gremlins'");
}

TEST(ScenarioParse, RejectsUnknownTrafficProfile) {
  expect_error("horizon = 1000\nat 0 traffic tsunami\n", "unknown traffic profile");
}

TEST(ScenarioParse, RejectsInvertedRanges) {
  expect_error("horizon = 1000\nat 0 traffic steady gap=900..100\n", "max below min");
}

TEST(ScenarioParse, RejectsTrailingOperatorArguments) {
  // Operator verbs accept only their declared key=value arguments.
  expect_error("horizon = 1000\nat 0 drain slowly\n", "unknown argument 'slowly'");
  expect_error("horizon = 1000\nat 0 restart now please\n", "unknown argument 'now'");
}

TEST(ScenarioParse, RejectsDuplicateMarks) {
  expect_error("horizon = 1000\nat 0 mark a\nat 10 mark a\n", "duplicate mark");
}

TEST(ScenarioParse, RejectsMalformedNumbers) {
  expect_error("horizon = soon\n", "expects an unsigned integer");
  expect_error("horizon = 1000\nat 0 traffic steady slack=fast\n", "expects a number");
}

TEST(ScenarioFile, MissingFileIsARuntimeError) {
  EXPECT_THROW(scenario::load_scenario_file("/nonexistent/nope.scn"), std::runtime_error);
}

// ---- seeded mutation fuzz ---------------------------------------------------

TEST(ScenarioFuzz, SeededMutationCorpusNeverCrashes) {
  // Mutate the valid scenario 300 ways (truncate / corrupt / delete /
  // splice, seeded so failures replay) and require the parser to either
  // accept the result or reject it with a std::exception — never crash.
  const std::string valid = kValid;
  sim::Rng rng(0x5CE7A210ull);
  const std::string charset = "abcdefghijklmnopqrstuvwxyz0123456789.,=# \nat-";
  unsigned parsed = 0, rejected = 0;
  for (int i = 0; i < 300; ++i) {
    std::string text = valid;
    const unsigned op = static_cast<unsigned>(rng.next_below(4));
    if (op == 0 && !text.empty()) {  // truncate mid-file
      text.resize(rng.next_below(text.size()));
    } else if (op == 1 && !text.empty()) {  // corrupt one byte
      text[rng.next_below(text.size())] = charset[rng.next_below(charset.size())];
    } else if (op == 2 && !text.empty()) {  // delete a span
      const std::size_t at = rng.next_below(text.size());
      text.erase(at, rng.next_below(16) + 1);
    } else {  // splice random garbage
      std::string junk;
      for (unsigned k = 0; k < 12; ++k) junk += charset[rng.next_below(charset.size())];
      text.insert(text.empty() ? 0 : rng.next_below(text.size()), junk);
    }
    try {
      (void)load_scenario_text(text);
      ++parsed;
    } catch (const std::exception& e) {
      EXPECT_NE(e.what()[0], '\0') << "empty diagnostic for mutant " << i;
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 300u);
  EXPECT_GT(rejected, 0u);  // the corpus does exercise error paths
}

// ---- fleet fault-domain verbs ----------------------------------------------

const char* kFleetValid = R"(# fleet chaos scenario
name = fleet_parse
shards = 4
clusters = 8
seed = 3
horizon = 400us

at 0 traffic burst gap=400..1200
at 50us drain clusters=0,1 shard=3
at 90us undrain clusters=0,1 shard=3
at 100us mark hit
at 100us fail shard=1
at 120us partition shard=2
at 160us heal shard=1
at 180us heal shard=2
at 200us restart shard=* stagger=30us
expect failed == 0
expect time_to_recover <= 60000 after hit
expect p99_slack >= -1000 after hit
expect violations == 0
)";

TEST(ScenarioParseFleet, FullFaultDomainDialectRoundTrip) {
  const ScenarioSpec s = load_scenario_text(kFleetValid);
  EXPECT_EQ(s.shards, 4u);
  EXPECT_TRUE(s.needs_fleet());

  // 1 traffic + 2 cluster drains + 1 mark + fail/partition/2 heals + the
  // 4-shard rolling-restart expansion.
  ASSERT_EQ(s.events.size(), 12u);
  EXPECT_EQ(s.events[1].kind, ScenarioEventKind::kDrainClusters);
  EXPECT_EQ(s.events[1].shard, 3u);
  EXPECT_EQ(s.events[1].clusters, (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(s.events[2].kind, ScenarioEventKind::kUndrainClusters);
  EXPECT_EQ(s.events[4].kind, ScenarioEventKind::kFail);
  EXPECT_EQ(s.events[4].shard, 1u);
  EXPECT_EQ(s.events[5].kind, ScenarioEventKind::kPartition);
  EXPECT_EQ(s.events[5].shard, 2u);
  EXPECT_EQ(s.events[6].kind, ScenarioEventKind::kHeal);
  EXPECT_EQ(s.events[7].kind, ScenarioEventKind::kHeal);

  // The wave expands at parse time: shard s restarts at 200us + s*30us.
  for (unsigned i = 8; i < 12; ++i) {
    EXPECT_EQ(s.events[i].kind, ScenarioEventKind::kRestart);
    EXPECT_EQ(s.events[i].shard, i - 8);
    EXPECT_EQ(s.events[i].at, 200'000u + (i - 8) * 30'000u);
  }

  ASSERT_EQ(s.verdicts.size(), 4u);
  EXPECT_EQ(s.verdicts[1].metric, "time_to_recover");
  EXPECT_EQ(s.verdicts[1].after, "hit");
  EXPECT_EQ(s.verdicts[2].metric, "p99_slack");
}

TEST(ScenarioParseFleet, StaggerDefaultsToTheRestartPenalty) {
  const ScenarioSpec s = load_scenario_text(
      "shards = 2\nrestart_penalty = 25us\nhorizon = 200us\n"
      "at 0 traffic steady\nat 100us restart shard=*\n");
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[1].at, 100'000u);
  EXPECT_EQ(s.events[2].at, 125'000u);
}

TEST(ScenarioParseFleet, FaultDomainVerbsForceTheFleetPathAtOneShard) {
  const ScenarioSpec s = load_scenario_text(
      "horizon = 1000\nat 0 traffic steady\nat 10 fail\nat 500 heal\n");
  EXPECT_EQ(s.shards, 1u);
  EXPECT_TRUE(s.needs_fleet());
  EXPECT_FALSE(load_scenario_text("horizon = 1000\nat 0 traffic steady\n").needs_fleet());
}

TEST(ScenarioParseFleet, RejectsUnpairedFaultArcs) {
  expect_error("shards = 2\nhorizon = 1000\nat 0 fail shard=1\nat 10 fail shard=1\n",
               "fail: shard 1 is already down");
  expect_error("shards = 2\nhorizon = 1000\nat 0 heal shard=1\n", "heal: shard 1 is not down");
  expect_error("shards = 2\nhorizon = 1000\nat 0 fail shard=1\nat 10 partition shard=1\n",
               "partition: shard 1 is already down");
}

TEST(ScenarioParseFleet, RejectsOperatorsOnADownShard) {
  expect_error("shards = 2\nhorizon = 1000\nat 0 fail shard=1\nat 10 restart shard=1\n",
               "restart: shard 1 is down (heal it first)");
  expect_error("shards = 2\nhorizon = 1000\nat 0 fail shard=1\nat 10 drain shard=1\n",
               "drain: shard 1 is down (heal it first)");
  expect_error("shards = 2\nhorizon = 1000\nat 0 partition shard=0\nat 10 restart shard=*\n",
               "restart: shard 0 is down (heal it first)");
}

TEST(ScenarioParseFleet, RejectsMisusedWaveArguments) {
  expect_error("shards = 2\nhorizon = 1000\nat 0 restart stagger=10\n",
               "restart: stagger requires shard=*");
  expect_error("shards = 2\nhorizon = 1000\nat 0 drain shard=*\n",
               "drain: shard=* is only valid with restart");
  expect_error("shards = 2\nhorizon = 1000\nat 0 fail shard=7\n",
               "fail: shard 7 out of range (shards = 2)");
  expect_error("shards = 2\nhorizon = 1000\nat 0 restart clusters=0\n",
               "restart: unknown argument 'clusters=0'");
}

TEST(ScenarioParseFleet, RejectsBadClusterLists) {
  expect_error("clusters = 4\nhorizon = 1000\nat 0 drain clusters=0,,1\n",
               "malformed cluster list");
  expect_error("clusters = 4\nhorizon = 1000\nat 0 drain clusters=0,9\n",
               "drain: cluster 9 out of range (clusters = 4)");
  expect_error("clusters = 4\nhorizon = 1000\nat 0 drain clusters=1,1\n",
               "drain: duplicate cluster 1 in list");
  expect_error("clusters = 4\nhorizon = 1000\nat 0 undrain clusters=1\n",
               "undrain: cluster 1 of shard 0 is not drained");
  expect_error(
      "clusters = 4\nhorizon = 1000\nat 0 drain clusters=1\nat 10 drain clusters=1\n",
      "drain: cluster 1 of shard 0 is already drained");
}

TEST(ScenarioFleetFuzz, SeededMutationCorpusNeverCrashes) {
  // Same discipline as ScenarioFuzz, over the fleet fault-domain dialect:
  // 200 seeded mutants of the valid fleet scenario must parse or reject
  // with a diagnostic — never crash. Mutations concentrate on the verbs'
  // pairing state (fail/heal, drain/undrain clusters) and the wave syntax.
  const std::string valid = kFleetValid;
  sim::Rng rng(0xF1EE7C4405ull);
  const std::string charset = "abcdefghijklmnopqrstuvwxyz0123456789.,=*# \nat-";
  unsigned parsed = 0, rejected = 0;
  for (int i = 0; i < 200; ++i) {
    std::string text = valid;
    const unsigned op = static_cast<unsigned>(rng.next_below(4));
    if (op == 0 && !text.empty()) {  // truncate mid-file
      text.resize(rng.next_below(text.size()));
    } else if (op == 1 && !text.empty()) {  // corrupt one byte
      text[rng.next_below(text.size())] = charset[rng.next_below(charset.size())];
    } else if (op == 2 && !text.empty()) {  // delete a span
      const std::size_t at = rng.next_below(text.size());
      text.erase(at, rng.next_below(16) + 1);
    } else {  // splice random garbage
      std::string junk;
      for (unsigned k = 0; k < 12; ++k) junk += charset[rng.next_below(charset.size())];
      text.insert(text.empty() ? 0 : rng.next_below(text.size()), junk);
    }
    try {
      (void)load_scenario_text(text);
      ++parsed;
    } catch (const std::exception& e) {
      EXPECT_NE(e.what()[0], '\0') << "empty diagnostic for fleet mutant " << i;
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 200u);
  EXPECT_GT(rejected, 0u);
}

// ---- integrity dialect (corrupt / set / headers) ----------------------------

const char* kIntegrityValid = R"(# integrity scenario
name = integrity_parse
shards = 2
clusters = 8
seed = 5
horizon = 400us
integrity = on
audit = 0.25
batch = 1
steal = slack

at 0 traffic steady slack=1.2..2.0
at 80us set health.failure_threshold=1
at 100us mark hit
at 100us corrupt shard=1 cluster=0 rate=0.5 mode=stale_read
at 150us set integrity.audit=1.0
at 200us inject none
expect detected_corruptions >= 1
expect corruption_escapes == 0
expect violations == 0
)";

TEST(ScenarioIntegrityParse, FullDialectRoundTrip) {
  const ScenarioSpec s = load_scenario_text(kIntegrityValid);
  EXPECT_TRUE(s.integrity_checks);
  EXPECT_DOUBLE_EQ(s.audit_fraction, 0.25);
  EXPECT_EQ(s.max_batch, 1u);
  EXPECT_EQ(s.steal_policy, serve::StealPolicy::kTightestSlack);
  EXPECT_TRUE(s.needs_fleet());

  ASSERT_EQ(s.events.size(), 6u);
  const scenario::ScenarioEvent& set1 = s.events[1];
  EXPECT_EQ(set1.kind, ScenarioEventKind::kSet);
  EXPECT_EQ(set1.label, "health.failure_threshold");
  EXPECT_DOUBLE_EQ(set1.value, 1.0);

  const scenario::ScenarioEvent& corrupt = s.events[3];
  EXPECT_EQ(corrupt.kind, ScenarioEventKind::kCorrupt);
  EXPECT_EQ(corrupt.label, "stale_read");
  EXPECT_EQ(corrupt.shard, 1u);
  ASSERT_EQ(corrupt.clusters.size(), 1u);
  EXPECT_EQ(corrupt.clusters[0], 0u);
  EXPECT_DOUBLE_EQ(corrupt.value, 0.5);

  const scenario::ScenarioEvent& set2 = s.events[4];
  EXPECT_EQ(set2.kind, ScenarioEventKind::kSet);
  EXPECT_EQ(set2.label, "integrity.audit");
  EXPECT_DOUBLE_EQ(set2.value, 1.0);
}

TEST(ScenarioIntegrityParse, CorruptDefaultsToPayloadFlipAnyCluster) {
  const ScenarioSpec s = load_scenario_text(
      "shards = 2\nhorizon = 1000\nat 0 corrupt rate=0.1\nexpect violations == 0\n");
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, ScenarioEventKind::kCorrupt);
  EXPECT_EQ(s.events[0].label, "payload_flip");
  EXPECT_EQ(s.events[0].shard, 0u);
  EXPECT_TRUE(s.events[0].clusters.empty());
}

TEST(ScenarioIntegrityParse, CorruptAndIntegritySetForceTheFleetPathAtOneShard) {
  // Like fail/heal, corrupt is a fleet-only verb: a single-service spec that
  // scripts one runs through serve::FleetRouter even at shards = 1.
  const ScenarioSpec c = load_scenario_text(
      "horizon = 1000\nat 0 corrupt rate=0.1\nexpect violations == 0\n");
  EXPECT_EQ(c.shards, 1u);
  EXPECT_TRUE(c.needs_fleet());
  const ScenarioSpec s = load_scenario_text(
      "horizon = 1000\nat 0 set integrity.retries=2\nexpect violations == 0\n");
  EXPECT_TRUE(s.needs_fleet());
  const ScenarioSpec h = load_scenario_text(
      "horizon = 1000\nat 0 set health.probe_backoff=4us\nexpect violations == 0\n");
  EXPECT_FALSE(h.needs_fleet());
  EXPECT_DOUBLE_EQ(h.events[0].value, 4000.0);
}

TEST(ScenarioIntegrityParse, NegativePathsRejectWithDiagnostics) {
  // Every malformed corrupt/set/header line must throw a line-numbered
  // diagnostic, never crash or silently parse.
  const char* bad[] = {
      "shards = 2\nhorizon = 1000\nat 0 corrupt rate=0.1 foo=1\n",  // unknown arg
      "shards = 2\nhorizon = 1000\nat 0 corrupt\n",          // rate is mandatory
      "shards = 2\nhorizon = 1000\nat 0 corrupt rate=0\n",   // rate must be > 0
      "shards = 2\nhorizon = 1000\nat 0 corrupt rate=1.5\n", // rate must be <= 1
      "shards = 2\nhorizon = 1000\nat 0 corrupt rate=x\n",
      "shards = 2\nhorizon = 1000\nat 0 corrupt shard=9 rate=0.1\n",
      "shards = 2\nhorizon = 1000\nat 0 corrupt cluster=64 rate=0.1\n",
      "shards = 2\nhorizon = 1000\nat 0 corrupt rate=0.1 mode=bitrot\n",
      "horizon = 1000\nat 0 set\n",                          // key=value required
      "horizon = 1000\nat 0 set health.failure_threshold\n", // missing '='
      "horizon = 1000\nat 0 set no.such.key=1\n",            // whitelist only
      "horizon = 1000\nat 0 set health.failure_threshold=0\n",  // count >= 1
      "horizon = 1000\nat 0 set integrity.audit=1.5\n",      // fraction in [0,1]
      "horizon = 1000\nat 0 set integrity.audit=x\n",
      "integrity = maybe\nhorizon = 1000\n",
      "audit = 2.0\nhorizon = 1000\n",
      "batch = 0\nhorizon = 1000\n",
      "steal = random\nhorizon = 1000\n",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)load_scenario_text(text), std::invalid_argument) << text;
  }
}

TEST(ScenarioIntegrityFuzz, SeededMutationCorpusNeverCrashes) {
  // Same discipline as ScenarioFuzz/ScenarioFleetFuzz, over the integrity
  // dialect: 200 seeded mutants of the valid corrupt/set scenario must
  // parse or reject with a diagnostic — never crash. Mutations concentrate
  // on the dotted set keys, the rate/mode arguments and the new headers.
  const std::string valid = kIntegrityValid;
  sim::Rng rng(0x1D1617F00Dull);
  const std::string charset = "abcdefghijklmnopqrstuvwxyz0123456789.,=*# \nat-";
  unsigned parsed = 0, rejected = 0;
  for (int i = 0; i < 200; ++i) {
    std::string text = valid;
    const unsigned op = static_cast<unsigned>(rng.next_below(4));
    if (op == 0 && !text.empty()) {  // truncate mid-file
      text.resize(rng.next_below(text.size()));
    } else if (op == 1 && !text.empty()) {  // corrupt one byte
      text[rng.next_below(text.size())] = charset[rng.next_below(charset.size())];
    } else if (op == 2 && !text.empty()) {  // delete a span
      const std::size_t at = rng.next_below(text.size());
      text.erase(at, rng.next_below(16) + 1);
    } else {  // splice random garbage
      std::string junk;
      for (unsigned k = 0; k < 12; ++k) junk += charset[rng.next_below(charset.size())];
      text.insert(text.empty() ? 0 : rng.next_below(text.size()), junk);
    }
    try {
      (void)load_scenario_text(text);
      ++parsed;
    } catch (const std::exception& e) {
      EXPECT_NE(e.what()[0], '\0') << "empty diagnostic for integrity mutant " << i;
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 200u);
  EXPECT_GT(rejected, 0u);
}

TEST(ScenarioIntegritySettableKeys, WhitelistMatchesTheKeywordTable) {
  // Every settable key is also a "setting" row of the keyword reference
  // (and therefore a docs/scenarios.md row, via check_metrics_docs.py).
  std::set<std::string> table;
  for (const auto& k : scenario::scenario_keyword_reference()) {
    if (std::string(k.kind) == "setting") table.insert(k.name);
  }
  std::set<std::string> whitelist;
  for (const auto& k : scenario::scenario_settable_keys()) whitelist.insert(k.name);
  EXPECT_EQ(table, whitelist);
}

// ---- trace generation -------------------------------------------------------

TEST(ScenarioTrace, IsDeterministicAndPhaseDirected) {
  const ScenarioSpec s = load_scenario_text(
      "horizon = 100000\n"
      "at 0 traffic steady gap=100..100 n=1..1 priority=0..0 unmeetable=0\n"
      "at 50000 traffic steady gap=1000..1000 n=4..4 unmeetable=0\n");
  const model::RuntimeModel m = model::paper_daxpy_model();
  const auto a = scenario::scenario_trace(s, m);
  const auto b = scenario::scenario_trace(s, m);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i + 1);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].t_max, b[i].t_max);
    EXPECT_LE(a[i].arrival, 100'000u);
    if (a[i].arrival < 50'000) {
      EXPECT_EQ(a[i].n, 256u);  // first phase: n scale pinned to 1
      if (i > 0) EXPECT_EQ(a[i].arrival - a[i - 1].arrival, 100u);
    } else if (a[i].arrival > 51'000) {
      EXPECT_EQ(a[i].n, 1024u);  // second phase: n scale pinned to 4
    }
  }
}

TEST(ScenarioTrace, EmptyPhaseListYieldsNoJobs) {
  const ScenarioSpec s = load_scenario_text("horizon = 1000\nat 0 drain\n");
  EXPECT_TRUE(scenario::scenario_trace(s, model::paper_daxpy_model()).empty());
}

// ---- verdicts ---------------------------------------------------------------

TEST(ScenarioVerdicts, OperatorTableIsExact) {
  EXPECT_TRUE(scenario::verdict_holds("==", 2.0, 2.0));
  EXPECT_FALSE(scenario::verdict_holds("==", 2.0, 3.0));
  EXPECT_TRUE(scenario::verdict_holds("!=", 2.0, 3.0));
  EXPECT_TRUE(scenario::verdict_holds("<=", 2.0, 2.0));
  EXPECT_TRUE(scenario::verdict_holds(">=", 3.0, 2.0));
  EXPECT_TRUE(scenario::verdict_holds("<", 1.0, 2.0));
  EXPECT_FALSE(scenario::verdict_holds(">", 1.0, 2.0));
  EXPECT_THROW(scenario::verdict_holds("~=", 1.0, 2.0), std::invalid_argument);
}

// ---- keyword inventory ------------------------------------------------------

TEST(ScenarioKeywords, NamesAreUniquePerKindAndKindsAreKnown) {
  // A name may legitimately appear under two kinds ("clusters" is both the
  // shard-count header and the drain verb's cluster-set argument), but never
  // twice under the same kind.
  const std::set<std::string> kinds = {"header", "verb",    "profile", "preset",
                                       "arg",    "metric",  "mode",    "setting"};
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& k : scenario::scenario_keyword_reference()) {
    EXPECT_TRUE(kinds.count(k.kind)) << k.kind;
    EXPECT_TRUE(seen.insert({k.name, k.kind}).second)
        << "duplicate keyword " << k.name << " (" << k.kind << ")";
  }
  EXPECT_GE(seen.size(), 40u);
}

TEST(ScenarioKeywords, PresetRowsMatchTheFaultLayer) {
  // The dialect's preset keywords are exactly fault::preset_names(): a new
  // preset must land in both (and in docs/scenarios.md, which
  // scripts/check_metrics_docs.py cross-checks against this table).
  std::set<std::string> table;
  for (const auto& k : scenario::scenario_keyword_reference()) {
    if (std::string(k.kind) == "preset") table.insert(k.name);
  }
  std::set<std::string> layer;
  for (const std::string& n : fault::preset_names()) layer.insert(n);
  EXPECT_EQ(table, layer);
}

TEST(ScenarioKeywords, EveryParserVerbAndProfileIsListed) {
  std::set<std::string> verbs, profiles, metrics;
  for (const auto& k : scenario::scenario_keyword_reference()) {
    if (std::string(k.kind) == "verb") verbs.insert(k.name);
    if (std::string(k.kind) == "profile") profiles.insert(k.name);
    if (std::string(k.kind) == "metric") metrics.insert(k.name);
  }
  for (const char* v : {"traffic", "inject", "drain", "undrain", "restart", "mark", "fail",
                        "heal", "partition"})
    EXPECT_TRUE(verbs.count(v)) << v;
  for (const char* p : {"steady", "burst", "lull", "mix"}) EXPECT_TRUE(profiles.count(p)) << p;
  for (const char* m : {"slo_met", "violations", "restarts", "drains", "makespan",
                        "time_to_recover", "p99_slack"})
    EXPECT_TRUE(metrics.count(m)) << m;
}

// ---- runner -----------------------------------------------------------------

TEST(ScenarioRunner, TinyEpisodeRunsCleanAndJudges) {
  const ScenarioSpec s = load_scenario_text(
      "name = tiny\nclusters = 2\nhorizon = 20000\n"
      "at 0 traffic steady unmeetable=0\n"
      "expect jobs > 0\nexpect violations == 0\nexpect restarts == 0\n");
  const scenario::ScenarioResult r = scenario::run_scenario(s, {});
  EXPECT_EQ(r.name, "tiny");
  EXPECT_GT(r.jobs, 0u);
  EXPECT_EQ(r.soc_violations + r.serve_violations, 0u);
  ASSERT_EQ(r.verdicts.size(), 3u);
  for (const auto& v : r.verdicts) EXPECT_TRUE(v.passed) << v.text;
  EXPECT_TRUE(r.passed);
  const std::string doc = scenario::scenario_report_json({r});
  EXPECT_NE(doc.find("\"schema\": \"mco-scenario-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"tiny\""), std::string::npos);
  EXPECT_NE(doc.find("\"passed\": true"), std::string::npos);
  EXPECT_EQ(doc, scenario::scenario_report_json({r}));  // byte-stable
}

TEST(ScenarioRunner, FailedVerdictFailsTheEpisode) {
  const ScenarioSpec s = load_scenario_text(
      "clusters = 2\nhorizon = 20000\nat 0 traffic steady unmeetable=0\n"
      "expect restarts >= 5\n");
  const scenario::ScenarioResult r = scenario::run_scenario(s, {});
  ASSERT_EQ(r.verdicts.size(), 1u);
  EXPECT_FALSE(r.verdicts[0].passed);
  EXPECT_FALSE(r.passed);
}

// ---- shipped catalog --------------------------------------------------------

#ifdef MCO_REPO_ROOT
TEST(ScenarioCatalog, EveryShippedFileParses) {
  const std::string dir = std::string(MCO_REPO_ROOT) + "/scenarios";
  const char* files[] = {"happy_path.scn",
                         "sick_cluster_drain_restart.scn",
                         "mid_burst_chaos.scn",
                         "quarantine_rescue.scn",
                         "credit_storm.scn",
                         "straggler_redistribution.scn",
                         "deadline_storm_shed.scn",
                         "restart_during_inflight.scn",
                         "shard_crash_failover.scn",
                         "partition_heal_stale.scn",
                         "rolling_restart_wave.scn",
                         "partial_cluster_drain.scn"};
  for (const char* f : files) {
    SCOPED_TRACE(f);
    ScenarioSpec s;
    ASSERT_NO_THROW(s = scenario::load_scenario_file(dir + "/" + f));
    EXPECT_GT(s.horizon, 0u);
    EXPECT_FALSE(s.verdicts.empty());
    bool has_violations_verdict = false;
    for (const auto& v : s.verdicts)
      has_violations_verdict = has_violations_verdict || v.metric == "violations";
    EXPECT_TRUE(has_violations_verdict) << "catalog scenarios must pin violations";
  }
}

TEST(ScenarioCatalog, HeadlineEpisodeRecoversDeterministically) {
  // The tentpole demonstration: sick cluster, operator drain + restart, and
  // a declared post-recovery SLO verdict that actually holds — twice, with
  // byte-identical reports.
  const ScenarioSpec s = scenario::load_scenario_file(
      std::string(MCO_REPO_ROOT) + "/scenarios/sick_cluster_drain_restart.scn");
  const scenario::ScenarioResult a = scenario::run_scenario(s, {});
  EXPECT_TRUE(a.passed) << scenario::scenario_report_json({a});
  EXPECT_EQ(a.restarts, 1u);
  EXPECT_EQ(a.drains, 1u);
  EXPECT_GE(a.quarantines, 1u);
  EXPECT_EQ(a.soc_violations + a.serve_violations, 0u);
  bool recovery_verdict = false;
  for (const auto& v : a.verdicts) {
    if (v.text.find("after recovery") != std::string::npos) {
      recovery_verdict = true;
      EXPECT_TRUE(v.passed) << v.text << " actual " << v.actual;
    }
  }
  EXPECT_TRUE(recovery_verdict);
  const scenario::ScenarioResult b = scenario::run_scenario(s, {});
  EXPECT_EQ(scenario::scenario_report_json({a}), scenario::scenario_report_json({b}));
}
#endif

}  // namespace
