// Fast-path simulator core: calendar-queue engine, EventFn inline storage,
// arena reuse, TraceSink dispatch tiers — and the cross-engine bit-exactness
// contract that makes the fast path (and MCO_FAST builds) safe to trust.
//
// This binary is the only test target in -DMCO_FAST=ON builds: the rest of
// the suite asserts on trace records, which MCO_FAST compiles out. The paper
// pins (633 / 936 / 1.479x) therefore live here too, so both build modes
// re-verify them end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/schedule_explorer.h"
#include "exp/spec.h"
#include "sim/arena.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/small_fn.h"
#include "sim/trace.h"
#include "soc/config_io.h"
#include "soc/soc.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using sim::Cycle;
using sim::Priority;

// ---- CalendarQueue ---------------------------------------------------------

TEST(CalendarQueue, SameCycleSamePriorityIsFifo) {
  sim::CalendarQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.push(0, 10, Priority::kDefault, sim::EventFn([&order, i] { order.push_back(i); }));
  }
  ASSERT_EQ(q.size(), 8u);
  while (!q.empty()) {
    Cycle t = 0;
    Priority p{};
    q.pop(0, &t, &p)();
    EXPECT_EQ(t, 10u);
    EXPECT_EQ(p, Priority::kDefault);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(CalendarQueue, PriorityLanesDrainInEnumOrderWithinACycle) {
  sim::CalendarQueue q;
  std::vector<Priority> order;
  const Priority scrambled[] = {Priority::kPostlude, Priority::kCpu, Priority::kWire,
                                Priority::kDefault, Priority::kMemory, Priority::kWire};
  for (const Priority p : scrambled) {
    q.push(0, 5, p, sim::EventFn([&order, p] { order.push_back(p); }));
  }
  while (!q.empty()) {
    Cycle t = 0;
    Priority p{};
    q.pop(0, &t, &p)();
  }
  const std::vector<Priority> expected = {Priority::kWire, Priority::kWire, Priority::kMemory,
                                          Priority::kDefault, Priority::kCpu,
                                          Priority::kPostlude};
  EXPECT_EQ(order, expected);
}

TEST(CalendarQueue, OverflowBeyondTheWheelWindowPopsInTimeOrder) {
  sim::CalendarQueue q;
  std::vector<Cycle> popped;
  // Far beyond the 1024-slot window, interleaved with near events, pushed in
  // deliberately shuffled time order.
  for (const Cycle t : {50000ull, 3ull, 900000ull, 1023ull, 1024ull, 4096ull, 3ull}) {
    q.push(0, t, Priority::kDefault, sim::EventFn([] {}));
  }
  Cycle now = 0;
  while (!q.empty()) {
    const Cycle next = q.next_time(now);
    Cycle t = 0;
    Priority p{};
    q.pop(now, &t, &p);
    EXPECT_EQ(t, next);
    EXPECT_GE(t, now);  // monotone
    popped.push_back(t);
    now = t;
  }
  EXPECT_EQ(popped, (std::vector<Cycle>{3, 3, 1023, 1024, 4096, 50000, 900000}));
}

TEST(CalendarQueue, NextTimeReportsEarliestAcrossWheelAndOverflow) {
  sim::CalendarQueue q;
  EXPECT_EQ(q.next_time(0), sim::kCycleMax);
  q.push(0, 70000, Priority::kDefault, sim::EventFn([] {}));
  EXPECT_EQ(q.next_time(0), 70000u);
  q.push(0, 12, Priority::kDefault, sim::EventFn([] {}));
  EXPECT_EQ(q.next_time(0), 12u);
}

// ---- EventFn ---------------------------------------------------------------

TEST(EventFn, SmallCapturesStayInline) {
  int hit = 0;
  sim::EventFn fn([&hit] { ++hit; });
  EXPECT_TRUE(fn.inline_stored());
  fn();
  EXPECT_EQ(hit, 1);
}

TEST(EventFn, FatCapturesSpillToHeapButStillRun) {
  struct Fat {
    std::uint8_t blob[2 * sim::EventFn::kInlineBytes] = {};
    int* out;
  };
  int hit = 0;
  Fat fat;
  fat.blob[0] = 42;
  fat.out = &hit;
  sim::EventFn fn([fat] { *fat.out = fat.blob[0]; });
  EXPECT_FALSE(fn.inline_stored());
  fn();
  EXPECT_EQ(hit, 42);
}

TEST(EventFn, MoveOnlyCapturesWorkAndMoveTransfersOwnership) {
  auto owned = std::make_unique<int>(7);
  int got = 0;
  sim::EventFn a([owned = std::move(owned), &got] { got = *owned; });
  sim::EventFn b(std::move(a));
  b();
  EXPECT_EQ(got, 7);
}

TEST(EventFn, DestroysCaptureExactlyOnce) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> weak = tracked;
  {
    sim::EventFn fn([keep = std::move(tracked)] { (void)keep; });
    EXPECT_EQ(weak.use_count(), 1);
    sim::EventFn moved(std::move(fn));
    EXPECT_EQ(weak.use_count(), 1);
  }
  EXPECT_TRUE(weak.expired());
}

// ---- Arena -----------------------------------------------------------------

TEST(Arena, CopyReturnsStableIndependentViews) {
  sim::Arena arena;
  const std::string_view a = arena.copy("alpha");
  const std::string_view b = arena.copy("beta");
  EXPECT_EQ(a, "alpha");
  EXPECT_EQ(b, "beta");
  EXPECT_NE(a.data(), b.data());
  // Empty copies must still yield a valid (non-null) pointer.
  const std::string_view e = arena.copy({});
  EXPECT_NE(e.data(), nullptr);
  EXPECT_TRUE(e.empty());
}

TEST(Arena, ResetReusesChunksWithoutGrowingCapacity) {
  sim::Arena arena;
  for (int i = 0; i < 1000; ++i) arena.allocate(64);
  const std::size_t cap = arena.capacity();
  const std::size_t chunks = arena.chunks();
  const std::size_t bytes = arena.bytes_allocated();
  EXPECT_GT(cap, 0u);
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    for (int i = 0; i < 1000; ++i) arena.allocate(64);
    EXPECT_EQ(arena.capacity(), cap) << "round " << round;
    EXPECT_EQ(arena.chunks(), chunks) << "round " << round;
    EXPECT_EQ(arena.bytes_allocated(), bytes) << "round " << round;
  }
}

TEST(Arena, RespectsAlignment) {
  sim::Arena arena;
  arena.allocate(1, 1);
  void* p = arena.allocate(8, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t), 0u);
}

// ---- cross-engine equivalence ----------------------------------------------

// One pseudo-random torture schedule executed on a given engine: events
// re-schedule further events (same cycle, near future, far overflow), across
// all priorities, with occasional fat captures. Returns the full execution
// log (id, cycle) — the engines must produce identical logs.
std::vector<std::pair<int, Cycle>> run_torture(sim::EngineKind kind) {
  sim::Simulator simulator(kind);
  std::vector<std::pair<int, Cycle>> log;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  int ids = 0;
  const auto spawn = [&](auto&& self, int depth) -> void {
    const int id = ids++;
    const Cycle delta = (next() % 64 == 0) ? 5000 + next() % 4000 : next() % 16;
    const auto prio = static_cast<Priority>(next() % 5);
    simulator.schedule_at(simulator.now() + delta,
                          [&, self, id, depth] {
                            log.emplace_back(id, simulator.now());
                            if (depth < 4) {
                              self(self, depth + 1);
                              self(self, depth + 1);
                            }
                          },
                          prio);
  };
  for (int i = 0; i < 32; ++i) spawn(spawn, 0);
  simulator.run();
  return log;
}

TEST(EngineEquivalence, TortureScheduleExecutesIdenticallyOnBothEngines) {
  const auto fast = run_torture(sim::EngineKind::kFast);
  const auto legacy = run_torture(sim::EngineKind::kLegacyHeap);
  ASSERT_EQ(fast.size(), legacy.size());
  EXPECT_EQ(fast, legacy);
}

TEST(EngineEquivalence, SeededScheduleExplorationMatchesAcrossEngines) {
  // The explorer permutes same-cycle kWire commit order under seeded
  // shuffles; per-schedule latencies must be bit-identical whichever engine
  // executes them.
  check::ScheduleExplorerConfig cfg;
  cfg.schedules = 8;
  const check::ScheduleExplorer explorer(cfg);
  for (const bool extended : {true, false}) {
    exp::RunPoint p;
    p.config_label = extended ? "extended" : "baseline";
    p.cfg = extended ? soc::SocConfig::extended(32) : soc::SocConfig::baseline(32);
    p.n = 1024;
    p.m = 16;
    exp::RunPoint legacy_p = p;
    legacy_p.cfg.sim.legacy_heap_queue = true;
    const check::ScheduleReport fast = explorer.explore(p);
    const check::ScheduleReport legacy = explorer.explore(legacy_p);
    ASSERT_EQ(fast.runs.size(), legacy.runs.size());
    for (std::size_t i = 0; i < fast.runs.size(); ++i) {
      EXPECT_EQ(fast.runs[i].total, legacy.runs[i].total) << "schedule " << i;
    }
    EXPECT_TRUE(fast.clean());
    EXPECT_TRUE(legacy.clean());
    EXPECT_TRUE(fast.cycles_identical);
  }
}

TEST(EngineEquivalence, HeapSpillCounterCountsOnlyFatCaptures) {
  sim::Simulator simulator;  // default engine is kFast
  EXPECT_EQ(simulator.engine(), sim::EngineKind::kFast);
  simulator.schedule_at(1, [] {});
  EXPECT_EQ(simulator.event_heap_spills(), 0u);
  std::uint8_t blob[128] = {};
  simulator.schedule_at(2, [blob] { (void)blob; });
  EXPECT_EQ(simulator.event_heap_spills(), 1u);
  simulator.run();
}

// ---- paper pins on both engines -------------------------------------------

sim::Cycles daxpy_cycles(soc::SocConfig cfg, bool legacy, std::uint64_t n, unsigned m) {
  cfg.sim.legacy_heap_queue = legacy;
  return soc::run_daxpy(cfg, n, m).total();
}

TEST(FastPins, PaperNumbersIdenticalOnBothEngines) {
  for (const bool legacy : {false, true}) {
    const auto base = daxpy_cycles(soc::SocConfig::baseline(32), legacy, 1024, 32);
    const auto ext = daxpy_cycles(soc::SocConfig::extended(32), legacy, 1024, 32);
    EXPECT_EQ(base, 936u) << (legacy ? "legacy" : "fast");
    EXPECT_EQ(ext, 633u) << (legacy ? "legacy" : "fast");
    const double speedup = static_cast<double>(base) / static_cast<double>(ext);
    EXPECT_NEAR(speedup, 1.479, 0.002) << (legacy ? "legacy" : "fast");
  }
}

// ---- Soc / config plumbing -------------------------------------------------

TEST(SimCoreConfig, SocHonoursTheEngineAndZeroingFlags) {
  soc::SocConfig cfg = soc::SocConfig::extended(4);
  {
    soc::Soc soc(cfg);
    EXPECT_EQ(soc.simulator().engine(), sim::EngineKind::kFast);
  }
  cfg.sim.legacy_heap_queue = true;
  cfg.sim.eager_hbm_zero = true;  // must construct and run, just slower
  {
    soc::Soc soc(cfg);
    EXPECT_EQ(soc.simulator().engine(), sim::EngineKind::kLegacyHeap);
  }
}

TEST(SimCoreConfig, RoundTripsThroughConfigIo) {
  soc::SocConfig cfg = soc::SocConfig::extended(4);
  cfg.sim.legacy_heap_queue = true;
  cfg.sim.eager_hbm_zero = true;
  const std::string text = soc::save_text(cfg);
  EXPECT_NE(text.find("sim.legacy_heap_queue"), std::string::npos);
  const soc::SocConfig back = soc::load_text(text);
  EXPECT_TRUE(back.sim.legacy_heap_queue);
  EXPECT_TRUE(back.sim.eager_hbm_zero);
  const soc::SocConfig defaults = soc::load_text(soc::save_text(soc::SocConfig::extended(4)));
  EXPECT_FALSE(defaults.sim.legacy_heap_queue);
  EXPECT_FALSE(defaults.sim.eager_hbm_zero);
}

// ---- TraceSink dispatch contract -------------------------------------------

#ifdef MCO_FAST

TEST(TraceFast, CompiledOutSinkIsInertAndZeroCost) {
  EXPECT_TRUE(sim::TraceSink::kCompiledOut);
  sim::TraceSink sink;
  sink.enable();  // must be a no-op
  EXPECT_FALSE(sink.enabled());
  EXPECT_FALSE(sink.armed());
  sink.record(1, "who", "what", "detail");
  EXPECT_EQ(sink.stored(), 0u);
  EXPECT_TRUE(sink.records().empty());
}

#else  // !MCO_FAST

TEST(TraceDispatch, DormantSinkStoresNothing) {
  EXPECT_FALSE(sim::TraceSink::kCompiledOut);
  sim::TraceSink sink;
  EXPECT_FALSE(sink.armed());
  sink.record(1, "who", "what", "detail");
  EXPECT_EQ(sink.stored(), 0u);
}

TEST(TraceDispatch, RawObserverSeesRecordsWithoutStorage) {
  sim::TraceSink sink;
  struct Ctx {
    int seen = 0;
  } ctx;
  sink.set_observer(
      [](void* c, const sim::TraceRecord& rec) {
        auto* counter = static_cast<Ctx*>(c);
        ++counter->seen;
        EXPECT_EQ(rec.what, "evt");
      },
      &ctx);
  EXPECT_TRUE(sink.armed());
  EXPECT_FALSE(sink.enabled());
  for (int i = 0; i < 10; ++i) sink.record(static_cast<Cycle>(i), "unit", "evt", "d");
  EXPECT_EQ(ctx.seen, 10);
  EXPECT_EQ(sink.stored(), 0u);
}

TEST(TraceDispatch, StorageInternsStringsAndReusesArenaAfterClear) {
  sim::TraceSink sink;
  sink.enable();
  for (int i = 0; i < 1000; ++i) sink.record(static_cast<Cycle>(i), "unit", "evt", "detail");
  EXPECT_EQ(sink.stored(), 1000u);
  const std::size_t interned = sink.interned_bytes();
  // Three distinct strings interned once each, not 3000 copies.
  EXPECT_LE(interned, 64u);
  sink.clear();
  sink.enable();
  for (int i = 0; i < 1000; ++i) sink.record(static_cast<Cycle>(i), "unit", "evt", "detail");
  EXPECT_EQ(sink.interned_bytes(), interned);
  EXPECT_EQ(sink.records().size(), 1000u);
  EXPECT_EQ(sink.records()[0].who, "unit");
}

#endif  // MCO_FAST

}  // namespace
