// Integration tests on the full SoC: functional correctness of every kernel
// across designs and cluster counts, determinism, memory allocation, and
// structural invariants of the simulated machine.
#include <gtest/gtest.h>

#include <tuple>

#include "soc/soc.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using namespace mco::soc;

// ---- construction ----------------------------------------------------------

TEST(Soc, BuildsWithDefaultConfigs) {
  Soc soc(SocConfig::extended(32));
  EXPECT_EQ(soc.num_clusters(), 32u);
  EXPECT_EQ(soc.kernels().size(), 13u);
  EXPECT_EQ(soc.cluster(31).cluster_id(), 31u);
}

TEST(Soc, ZeroClustersRejected) {
  SocConfig cfg = SocConfig::extended(1);
  cfg.num_clusters = 0;
  EXPECT_THROW(Soc{cfg}, std::invalid_argument);
}

TEST(Soc, DerivedConfigsKeptConsistent) {
  SocConfig cfg = SocConfig::extended(4);
  cfg.num_clusters = 16;  // caller forgot to update sub-configs
  Soc soc(cfg);
  EXPECT_EQ(soc.num_clusters(), 16u);
  EXPECT_GE(soc.config().hbm.num_ports, 17u);
  EXPECT_NO_THROW(soc.address_map().tcdm_base(15));
}

TEST(Soc, AllocatorAlignsAndBoundsChecks) {
  Soc soc(SocConfig::extended(1));
  const mem::Addr a = soc.alloc(3);
  const mem::Addr b = soc.alloc(3);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GT(b, a);
  EXPECT_THROW(soc.alloc(1ull << 40), std::runtime_error);
}

TEST(Soc, AllocF64RoundTrips) {
  Soc soc(SocConfig::extended(1));
  const std::vector<double> v{1.0, 2.0, 3.0};
  const mem::Addr a = soc.alloc_f64(v);
  EXPECT_EQ(soc.read_f64(a, 3), v);
}

// ---- functional correctness for every kernel, both designs -----------------

struct KernelCase {
  const char* kernel;
  double tolerance;
};

class AllKernelsRun : public ::testing::TestWithParam<
                          std::tuple<KernelCase, unsigned /*M*/, bool /*extended*/>> {};

TEST_P(AllKernelsRun, ProducesCorrectResults) {
  const auto& [kc, m, extended] = GetParam();
  const SocConfig cfg = extended ? SocConfig::extended(32) : SocConfig::baseline(32);
  Soc soc(cfg);
  const auto r = run_verified(soc, kc.kernel, 384, m, /*seed=*/1234, kc.tolerance);
  EXPECT_GT(r.total(), 0u);
  // Every participating cluster ran exactly one job.
  for (unsigned i = 0; i < m; ++i) EXPECT_EQ(soc.cluster(i).jobs_executed(), 1u);
  for (unsigned i = m; i < soc.num_clusters(); ++i)
    EXPECT_EQ(soc.cluster(i).jobs_executed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllKernelsRun,
    ::testing::Combine(::testing::Values(KernelCase{"daxpy", 1e-9}, KernelCase{"saxpy", 1e-5},
                                         KernelCase{"axpby", 1e-9}, KernelCase{"scale", 1e-9},
                                         KernelCase{"vecadd", 1e-9}, KernelCase{"relu", 1e-9},
                                         KernelCase{"vecmul", 1e-9},
                                         KernelCase{"fill", 1e-9}, KernelCase{"memcpy", 1e-9},
                                         KernelCase{"dot", 1e-9}, KernelCase{"vecsum", 1e-9},
                                         KernelCase{"gemv", 1e-9}, KernelCase{"gemm", 1e-9}),
                       ::testing::Values(1u, 3u, 8u, 32u), ::testing::Bool()),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param).kernel) + "_M" +
             std::to_string(std::get<1>(param_info.param)) +
             (std::get<2>(param_info.param) ? "_ext" : "_base");
    });

// ---- odd sizes / edge cases --------------------------------------------------

class OddSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OddSizes, DaxpyCorrectForAwkwardN) {
  Soc soc(SocConfig::extended(32));
  EXPECT_NO_THROW(run_verified(soc, "daxpy", GetParam(), 32, 7));
}

INSTANTIATE_TEST_SUITE_P(Ns, OddSizes,
                         ::testing::Values(1, 2, 3, 31, 33, 255, 257, 1000, 1023, 1025));

TEST(EdgeCases, FewerElementsThanClusters) {
  // n=5 on M=32: 27 clusters get empty chunks but must still participate in
  // the team and signal completion.
  Soc soc(SocConfig::extended(32));
  const auto r = run_verified(soc, "daxpy", 5, 32, 7);
  EXPECT_EQ(soc.sync_unit().interrupts_fired(), 1u);
  EXPECT_EQ(r.num_clusters, 32u);
}

TEST(EdgeCases, SingleElement) {
  Soc soc(SocConfig::baseline(4));
  EXPECT_NO_THROW(run_verified(soc, "daxpy", 1, 4, 7));
}

TEST(EdgeCases, ReductionWithEmptyChunksIsStillExact) {
  Soc soc(SocConfig::extended(32));
  EXPECT_NO_THROW(run_verified(soc, "vecsum", 3, 32, 7, 1e-12));
}

// ---- determinism -------------------------------------------------------------

TEST(Determinism, IdenticalRunsProduceIdenticalCycles) {
  for (const bool extended : {false, true}) {
    const SocConfig cfg = extended ? SocConfig::extended(16) : SocConfig::baseline(16);
    const auto r1 = run_daxpy(cfg, 777, 16, /*seed=*/5);
    const auto r2 = run_daxpy(cfg, 777, 16, /*seed=*/5);
    EXPECT_EQ(r1.total(), r2.total());
    EXPECT_EQ(r1.ts.dispatch_done, r2.ts.dispatch_done);
  }
}

TEST(Determinism, SeedOnlyChangesDataNotTiming) {
  const auto r1 = run_daxpy(SocConfig::extended(8), 512, 8, 1);
  const auto r2 = run_daxpy(SocConfig::extended(8), 512, 8, 2);
  EXPECT_EQ(r1.total(), r2.total());
}

// ---- structural invariants ---------------------------------------------------

TEST(Invariants, DataVolumeThroughHbmMatchesKernel) {
  // DAXPY moves 3N doubles + the completion/epilogue traffic is not through
  // the DMA path, so DMA bytes must be exactly 3*N*8 per offload.
  Soc soc(SocConfig::extended(8));
  run_verified(soc, "daxpy", 512, 8, 3);
  std::uint64_t bytes = 0;
  for (unsigned i = 0; i < 8; ++i) bytes += soc.cluster(i).dma().bytes_moved();
  EXPECT_EQ(bytes, 3ull * 512 * 8);
}

TEST(Invariants, HbmBeatsMatchDmaBytes) {
  Soc soc(SocConfig::extended(4));
  run_verified(soc, "daxpy", 256, 4, 3);
  EXPECT_EQ(soc.hbm().beats_served(), 3ull * 256);  // one beat per double
}

TEST(Invariants, TeamBarrierEpisodesMatchOffloads) {
  Soc soc(SocConfig::extended(8));
  sim::Rng rng(4);
  auto job = prepare_workload(soc, soc.kernels().by_name("daxpy"), 128, 8, rng);
  soc.run_offload(job.args, 8);
  auto job2 = prepare_workload(soc, soc.kernels().by_name("scale"), 128, 8, rng);
  soc.run_offload(job2.args, 4);
  EXPECT_EQ(soc.team_barrier().episodes_completed(), 2u);
}

TEST(Invariants, NoSpuriousCreditsOrPolls) {
  Soc soc(SocConfig::extended(8));
  run_verified(soc, "daxpy", 256, 8, 3);
  EXPECT_EQ(soc.sync_unit().spurious_increments(), 0u);
  EXPECT_EQ(soc.host().polls(), 0u);
}

TEST(Invariants, WorkerBusyCyclesScaleWithWork) {
  Soc big(SocConfig::extended(2));
  run_verified(big, "daxpy", 4096, 2, 3);
  Soc small(SocConfig::extended(2));
  run_verified(small, "daxpy", 256, 2, 3);
  EXPECT_GT(big.cluster(0).worker(0).busy_cycles(),
            small.cluster(0).worker(0).busy_cycles() * 8);
}

TEST(Stats, DumpStatsInventoriesTheMachine) {
  Soc soc(SocConfig::extended(4));
  run_verified(soc, "daxpy", 256, 4, 3);
  const std::string csv = soc.dump_stats();
  EXPECT_NE(csv.find("hbm.beats_served,768"), std::string::npos);
  EXPECT_NE(csv.find("noc.multicasts,1"), std::string::npos);
  EXPECT_NE(csv.find("sync_unit.interrupts,1"), std::string::npos);
  EXPECT_NE(csv.find("runtime.offloads,1"), std::string::npos);
  EXPECT_NE(csv.find("cluster3.jobs,1"), std::string::npos);
  // Re-dumping is idempotent (counters are snapshots, not accumulators).
  EXPECT_EQ(csv, soc.dump_stats());
}

// ---- ISS-backed compute mode ----------------------------------------------------

TEST(IssCompute, DaxpyCorrectInIssMode) {
  for (const auto v : {kernels::Kernel::IssVariant::kScalar,
                       kernels::Kernel::IssVariant::kUnrolled4,
                       kernels::Kernel::IssVariant::kSsrFrep}) {
    SocConfig cfg = SocConfig::extended(8);
    cfg.cluster.use_iss_compute = true;
    cfg.cluster.iss_variant = v;
    Soc soc(cfg);
    EXPECT_NO_THROW(run_verified(soc, "daxpy", 777, 8, 51)) << static_cast<int>(v);
    EXPECT_EQ(soc.cluster(0).iss_fallbacks(), 0u);
  }
}

TEST(IssCompute, VariantChoiceChangesRuntimeInTheRightOrder) {
  sim::Cycles t[3];
  int i = 0;
  for (const auto v : {kernels::Kernel::IssVariant::kScalar,
                       kernels::Kernel::IssVariant::kUnrolled4,
                       kernels::Kernel::IssVariant::kSsrFrep}) {
    SocConfig cfg = SocConfig::extended(4);
    cfg.cluster.use_iss_compute = true;
    cfg.cluster.iss_variant = v;
    Soc soc(cfg);
    t[i++] = run_verified(soc, "daxpy", 2048, 4, 52).total();
  }
  EXPECT_GT(t[0], t[1]);  // scalar slower than unrolled
  EXPECT_GT(t[1], t[2]);  // unrolled slower than SSR+FREP
}

TEST(IssCompute, RateModeSitsBetweenScalarAndSsr) {
  // The calibrated 2.6 cycles/element must land between the two ISS
  // implementations at the whole-offload level too.
  SocConfig scalar_cfg = SocConfig::extended(4);
  scalar_cfg.cluster.use_iss_compute = true;
  scalar_cfg.cluster.iss_variant = kernels::Kernel::IssVariant::kScalar;
  SocConfig ssr_cfg = SocConfig::extended(4);
  ssr_cfg.cluster.use_iss_compute = true;
  ssr_cfg.cluster.iss_variant = kernels::Kernel::IssVariant::kSsrFrep;

  const auto rate = run_daxpy(SocConfig::extended(4), 2048, 4, 53).total();
  Soc a(scalar_cfg), b(ssr_cfg);
  const auto scalar = run_verified(a, "daxpy", 2048, 4, 53).total();
  const auto ssr = run_verified(b, "daxpy", 2048, 4, 53).total();
  EXPECT_LT(ssr, rate);
  EXPECT_LT(rate, scalar);
}

TEST(IssCompute, KernelsWithoutMicrocodeFallBackToRate) {
  // SAXPY is f32: the 64-bit SSR streams carry no microcode for it.
  SocConfig cfg = SocConfig::extended(4);
  cfg.cluster.use_iss_compute = true;
  Soc soc(cfg);
  const auto iss_run = run_verified(soc, "saxpy", 512, 4, 54, 1e-5).total();
  const auto rate_run = [&] {
    Soc plain(SocConfig::extended(4));
    return run_verified(plain, "saxpy", 512, 4, 54, 1e-5).total();
  }();
  EXPECT_EQ(iss_run, rate_run);  // identical schedule
  EXPECT_EQ(soc.cluster(0).iss_fallbacks(), 1u);
}

TEST(IssCompute, AllStreamKernelsCorrectInIssMode) {
  SocConfig cfg = SocConfig::extended(8);
  cfg.cluster.use_iss_compute = true;
  for (const char* k : {"scale", "relu", "vecadd", "vecmul", "memcpy", "fill", "axpby"}) {
    Soc soc(cfg);
    EXPECT_NO_THROW(run_verified(soc, k, 500, 8, 56)) << k;
    EXPECT_EQ(soc.cluster(0).iss_fallbacks(), 0u) << k;
  }
}

TEST(IssCompute, AxpbyStreamLoopIsLatencyBound) {
  // The axpby body has an intra-iteration dependency (fmul feeding fmadd),
  // so its ISS runtime exceeds the single-instruction-loop kernels'.
  SocConfig cfg = SocConfig::extended(4);
  cfg.cluster.use_iss_compute = true;
  Soc a(cfg), b(cfg);
  const auto axpby = run_verified(a, "axpby", 2048, 4, 57).total();
  const auto vecadd = run_verified(b, "vecadd", 2048, 4, 57).total();
  EXPECT_GT(axpby, vecadd);
}

TEST(IssCompute, WorksWithTiling) {
  SocConfig cfg = SocConfig::extended(1);
  cfg.cluster.use_iss_compute = true;
  Soc soc(cfg);
  EXPECT_NO_THROW(run_verified(soc, "daxpy", 16384, 1, 55));
  EXPECT_GT(soc.cluster(0).last_job_tiles(), 1u);
}

// ---- timing sanity across designs ---------------------------------------------

TEST(Timing, ExtendedNeverSlowerAtManyClusters) {
  for (const std::uint64_t n : {512ull, 1024ull, 4096ull}) {
    const auto base = run_daxpy(SocConfig::baseline(32), n, 32, 9);
    const auto ext = run_daxpy(SocConfig::extended(32), n, 32, 9);
    EXPECT_LT(ext.total(), base.total()) << n;
  }
}

TEST(Timing, MoreClustersReduceExtendedRuntime) {
  sim::Cycles prev = ~0ull;
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto r = run_daxpy(SocConfig::extended(32), 4096, m, 10);
    EXPECT_LT(r.total(), prev) << m;
    prev = r.total();
  }
}

TEST(Timing, RuntimeGrowsWithN) {
  sim::Cycles prev = 0;
  for (const std::uint64_t n : {128ull, 512ull, 2048ull, 8192ull}) {
    const auto r = run_daxpy(SocConfig::extended(16), n, 16, 11);
    EXPECT_GT(r.total(), prev) << n;
    prev = r.total();
  }
}

}  // namespace
