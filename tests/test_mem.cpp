// Unit tests for the memory subsystem: address decoding, backing stores, the
// bandwidth-shared HBM controller, TCDM and the DMA engine.
#include <gtest/gtest.h>

#include <vector>

#include "mem/address_map.h"
#include "mem/dma_engine.h"
#include "mem/hbm_controller.h"
#include "mem/main_memory.h"
#include "mem/tcdm.h"
#include "sim/simulator.h"

namespace {

using namespace mco;
using namespace mco::mem;

// ---- address map -----------------------------------------------------------

TEST(AddressMap, DecodesRegions) {
  const AddressMap map;
  EXPECT_EQ(map.region_of(0x8000'0000), Region::kHbm);
  EXPECT_EQ(map.region_of(0x1000'0000), Region::kTcdm);
  EXPECT_EQ(map.region_of(0x0200'0000), Region::kSyncUnit);
  EXPECT_EQ(map.region_of(0x0300'0000), Region::kMailbox);
  EXPECT_EQ(map.region_of(0x0000'0000), Region::kUnmapped);
}

TEST(AddressMap, TcdmHoleBetweenWindows) {
  const AddressMap map;  // 128 KiB usable in a 1 MiB stride
  EXPECT_EQ(map.region_of(0x1000'0000 + 128 * 1024), Region::kUnmapped);
  EXPECT_EQ(map.region_of(0x1010'0000), Region::kTcdm);  // cluster 1 base
}

TEST(AddressMap, ClusterOfTcdmAndMailbox) {
  const AddressMap map;
  EXPECT_EQ(map.cluster_of(map.tcdm_base(5) + 16), 5u);
  EXPECT_EQ(map.cluster_of(map.mailbox_base(31)), 31u);
}

TEST(AddressMap, TcdmOffset) {
  const AddressMap map;
  EXPECT_EQ(map.tcdm_offset(map.tcdm_base(3) + 0x40), 0x40u);
}

TEST(AddressMap, HbmOffsetThrowsOutsideHbm) {
  const AddressMap map;
  EXPECT_THROW(map.hbm_offset(0x1000'0000), std::out_of_range);
  EXPECT_EQ(map.hbm_offset(0x8000'0010), 0x10u);
}

TEST(AddressMap, ClusterIndexBoundsChecked) {
  const AddressMap map;  // 32 clusters
  EXPECT_THROW(map.tcdm_base(32), std::out_of_range);
  EXPECT_THROW(map.mailbox_base(99), std::out_of_range);
}

TEST(AddressMap, DescribeIsHumanReadable) {
  const AddressMap map;
  EXPECT_EQ(map.describe(map.tcdm_base(2) + 8), "cluster2.tcdm+0x8");
  EXPECT_EQ(map.describe(0x8000'0000), "hbm+0x0");
}

TEST(AddressMap, RejectsInvalidConfig) {
  AddressMapConfig cfg;
  cfg.num_clusters = 0;
  EXPECT_THROW(AddressMap{cfg}, std::invalid_argument);
  AddressMapConfig cfg2;
  cfg2.tcdm_size = cfg2.tcdm_stride + 1;
  EXPECT_THROW(AddressMap{cfg2}, std::invalid_argument);
}

// ---- main memory -----------------------------------------------------------

TEST(MainMemory, RoundTripsDoubles) {
  MainMemory m(4096);
  m.write_f64(16, 3.25);
  EXPECT_DOUBLE_EQ(m.read_f64(16), 3.25);
}

TEST(MainMemory, RoundTripsArrays) {
  MainMemory m(4096);
  const std::vector<double> v{1.0, -2.0, 3.5};
  m.write_f64_array(64, v);
  EXPECT_EQ(m.read_f64_array(64, 3), v);
}

TEST(MainMemory, BoundsChecked) {
  MainMemory m(64);
  EXPECT_THROW(m.read_u64(60), std::out_of_range);
  EXPECT_THROW(m.write_f64(64, 1.0), std::out_of_range);
  EXPECT_NO_THROW(m.write_f64(56, 1.0));
}

TEST(MainMemory, FillSetsBytes) {
  MainMemory m(64);
  m.fill(0, 8, 0xFF);
  EXPECT_EQ(m.read_u64(0), ~0ull);
}

TEST(MainMemory, ZeroSizeRejected) { EXPECT_THROW(MainMemory{0}, std::invalid_argument); }

// ---- hbm controller --------------------------------------------------------

TEST(HbmController, SingleTransferLatency) {
  sim::Simulator sim;
  HbmConfig cfg;
  cfg.beats_per_cycle = 12;
  cfg.request_latency = 8;
  cfg.num_ports = 4;
  HbmController hbm(sim, "hbm", cfg);
  sim::Cycle done_at = 0;
  // 24 beats at 12/cycle = 2 cycles of service after the request latency and
  // the 1-cycle tick alignment.
  hbm.request(0, 24, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, 8u + 2u);
  EXPECT_EQ(hbm.beats_served(), 24u);
  EXPECT_EQ(hbm.transfers_completed(), 1u);
}

TEST(HbmController, ZeroBeatTransferCompletesAfterLatencyOnly) {
  sim::Simulator sim;
  HbmController hbm(sim, "hbm", HbmConfig{12, 8, 2});
  sim::Cycle done_at = 0;
  hbm.request(1, 0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, 8u);
}

TEST(HbmController, FairSharingEqualTransfersFinishTogether) {
  sim::Simulator sim;
  HbmConfig cfg;
  cfg.beats_per_cycle = 12;
  cfg.request_latency = 0;
  cfg.num_ports = 4;
  HbmController hbm(sim, "hbm", cfg);
  std::vector<sim::Cycle> done(4, 0);
  for (unsigned p = 0; p < 4; ++p) {
    hbm.request(p, 120, [&, p] { done[p] = sim.now(); });
  }
  sim.run();
  // 480 beats total at 12/cycle = 40 cycles; fair round-robin keeps all four
  // within one cycle of each other.
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_GE(done[p], 40u);
    EXPECT_LE(done[p], 41u);
  }
}

TEST(HbmController, AggregateTimeIndependentOfRequesterCount) {
  // The mechanism behind the paper's N/4 term: the same total volume takes
  // the same time whether 1 or 8 ports move it.
  for (const unsigned ports : {1u, 2u, 4u, 8u}) {
    sim::Simulator sim;
    HbmConfig cfg;
    cfg.beats_per_cycle = 12;
    cfg.request_latency = 0;
    cfg.num_ports = 8;
    HbmController hbm(sim, "hbm", cfg);
    const std::uint64_t total_beats = 960;
    sim::Cycle last = 0;
    for (unsigned p = 0; p < ports; ++p) {
      hbm.request(p, total_beats / ports, [&] { last = std::max(last, sim.now()); });
    }
    sim.run();
    EXPECT_GE(last, 80u) << ports;
    EXPECT_LE(last, 81u) << ports;
  }
}

TEST(HbmController, PerPortFifoOrder) {
  sim::Simulator sim;
  HbmController hbm(sim, "hbm", HbmConfig{1, 0, 2});
  std::vector<int> order;
  hbm.request(0, 3, [&] { order.push_back(1); });
  hbm.request(0, 1, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(HbmController, BadPortThrows) {
  sim::Simulator sim;
  HbmController hbm(sim, "hbm", HbmConfig{12, 0, 2});
  EXPECT_THROW(hbm.request(2, 1, nullptr), std::out_of_range);
}

TEST(HbmController, BusyReflectsInFlightWork) {
  sim::Simulator sim;
  HbmController hbm(sim, "hbm", HbmConfig{12, 4, 2});
  EXPECT_FALSE(hbm.busy());
  hbm.request(0, 12, nullptr);
  EXPECT_TRUE(hbm.busy());
  sim.run();
  EXPECT_FALSE(hbm.busy());
}

TEST(HbmController, RejectsZeroBandwidthConfig) {
  sim::Simulator sim;
  EXPECT_THROW(HbmController(sim, "h", HbmConfig{0, 0, 1}), std::invalid_argument);
}

// ---- tcdm ------------------------------------------------------------------

TEST(Tcdm, RoundTrips) {
  sim::Simulator sim;
  Tcdm t(sim, "tcdm", TcdmConfig{});
  t.write_f64(8, 2.5);
  EXPECT_DOUBLE_EQ(t.read_f64(8), 2.5);
  t.write_u64(16, 0xDEAD);
  EXPECT_EQ(t.read_u64(16), 0xDEADu);
}

TEST(Tcdm, BoundsChecked) {
  sim::Simulator sim;
  Tcdm t(sim, "tcdm", TcdmConfig{64, 4, 8});
  EXPECT_THROW(t.read_f64(64), std::out_of_range);
  EXPECT_THROW(t.write_f64(60, 1.0), std::out_of_range);
}

TEST(Tcdm, BankInterleavingByWord) {
  sim::Simulator sim;
  Tcdm t(sim, "tcdm", TcdmConfig{1024, 4, 8});
  EXPECT_EQ(t.bank_of(0), 0u);
  EXPECT_EQ(t.bank_of(8), 1u);
  EXPECT_EQ(t.bank_of(32), 0u);  // wraps at 4 banks
  EXPECT_EQ(t.bank_of(33), 0u);  // same word
}

TEST(Tcdm, TracksTrafficStats) {
  sim::Simulator sim;
  Tcdm t(sim, "tcdm", TcdmConfig{});
  t.write_f64(0, 1.0);
  (void)t.read_f64(0);
  EXPECT_EQ(t.bytes_written(), 8u);
  EXPECT_EQ(t.bytes_read(), 8u);
}

// ---- dma engine ------------------------------------------------------------

struct DmaFixture : ::testing::Test {
  sim::Simulator sim;
  AddressMap map{};
  MainMemory main_mem{1 << 20};
  HbmController hbm{sim, "hbm", HbmConfig{12, 8, 4}};
  Tcdm tcdm{sim, "tcdm", TcdmConfig{}};
  DmaEngine dma{sim, "dma", DmaConfig{6}, hbm, 0, main_mem, tcdm, map};
};

TEST_F(DmaFixture, MovesDataIn) {
  const std::vector<double> v{1.5, 2.5, 3.5, 4.5};
  main_mem.write_f64_array(0x100, v);
  bool done = false;
  dma.transfer_in(map.hbm_base() + 0x100, 0x40, 32, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(tcdm.read_f64_array(0x40, 4), v);
}

TEST_F(DmaFixture, MovesDataOut) {
  const std::vector<double> v{-1.0, -2.0};
  tcdm.write_f64_array(0, v);
  dma.transfer_out(0, map.hbm_base() + 0x200, 16, nullptr);
  sim.run();
  EXPECT_EQ(main_mem.read_f64_array(0x200, 2), v);
}

TEST_F(DmaFixture, TimingIncludesSetupAndBeats) {
  sim::Cycle done_at = 0;
  // 96 bytes = 12 beats = 1 cycle of service at 12 beats/cycle.
  dma.transfer_in(map.hbm_base(), 0, 96, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, 6u /*setup*/ + 8u /*request latency*/ + 1u /*beats*/);
}

TEST_F(DmaFixture, RejectsNonHbmSource) {
  EXPECT_THROW(dma.transfer_in(0x1000'0000 /*tcdm addr*/, 0, 8, nullptr), std::out_of_range);
}

TEST_F(DmaFixture, CountsTransfers) {
  dma.transfer_in(map.hbm_base(), 0, 8, nullptr);
  dma.transfer_out(0, map.hbm_base() + 64, 8, nullptr);
  sim.run();
  EXPECT_EQ(dma.transfers_in(), 1u);
  EXPECT_EQ(dma.transfers_out(), 1u);
  EXPECT_EQ(dma.bytes_moved(), 16u);
}

TEST_F(DmaFixture, ZeroByteTransferCompletes) {
  bool done = false;
  dma.transfer_in(map.hbm_base(), 0, 0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

}  // namespace
