// Tests for SocConfig text (de)serialization and the Chrome trace exporter.
#include <gtest/gtest.h>

#include <cstdio>

#include "sim/trace_export.h"
#include "soc/config_io.h"
#include "soc/soc.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using namespace mco::soc;

// ---- config io -----------------------------------------------------------------

TEST(ConfigIo, SaveLoadRoundTripsDefaults) {
  const SocConfig original = SocConfig::extended(32);
  const SocConfig loaded = load_text(save_text(original));
  EXPECT_EQ(save_text(loaded), save_text(original));
  EXPECT_EQ(loaded.num_clusters, 32u);
  EXPECT_TRUE(loaded.features.multicast);
  EXPECT_TRUE(loaded.runtime.use_hw_sync);
}

TEST(ConfigIo, RoundTripsNonDefaultValues) {
  SocConfig cfg = SocConfig::baseline(7);
  cfg.hbm.beats_per_cycle = 24;
  cfg.cluster.dma_double_buffer = true;
  cfg.host.irq_take_cycles = 99;
  const SocConfig back = load_text(save_text(cfg));
  EXPECT_EQ(back.hbm.beats_per_cycle, 24u);
  EXPECT_TRUE(back.cluster.dma_double_buffer);
  EXPECT_EQ(back.host.irq_take_cycles, 99u);
  EXPECT_EQ(back.num_clusters, 7u);
}

TEST(ConfigIo, PartialFileOverridesBase) {
  const SocConfig cfg = load_text("num_clusters = 4\nfeatures.multicast = true\n"
                                  "noc.multicast_enabled = true\nhost.has_multicast_lsu = on\n"
                                  "runtime.use_multicast = yes\n");
  EXPECT_EQ(cfg.num_clusters, 4u);
  EXPECT_TRUE(cfg.features.multicast);
  EXPECT_FALSE(cfg.features.hw_sync);  // untouched default
}

TEST(ConfigIo, CommentsAndBlanksIgnored) {
  const SocConfig cfg = load_text("# header\n\n  num_clusters = 9  # trailing comment\n");
  EXPECT_EQ(cfg.num_clusters, 9u);
}

TEST(ConfigIo, UnknownKeyIsAnError) {
  EXPECT_THROW(load_text("num_cluster = 4\n"), std::invalid_argument);  // typo
}

TEST(ConfigIo, MalformedValueIsAnError) {
  EXPECT_THROW(load_text("num_clusters = many\n"), std::invalid_argument);
  EXPECT_THROW(load_text("features.multicast = maybe\n"), std::invalid_argument);
  EXPECT_THROW(load_text("just a line\n"), std::invalid_argument);
}

TEST(ConfigIo, ErrorsNameTheLine) {
  try {
    load_text("num_clusters = 4\nbogus.key = 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigIo, DerivedFieldsKeptConsistent) {
  const SocConfig cfg = load_text("num_clusters = 48\n");
  EXPECT_EQ(cfg.address_map.num_clusters, 48u);
  EXPECT_GE(cfg.hbm.num_ports, 49u);
}

TEST(ConfigIo, LoadedConfigBuildsARunnableSoc) {
  SocConfig base = SocConfig::extended(8);
  const SocConfig cfg = load_text(save_text(base));
  Soc soc(cfg);
  EXPECT_NO_THROW(run_verified(soc, "daxpy", 128, 8));
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path = "/tmp/mco_config_io_test.cfg";
  save_file(SocConfig::extended(16), path);
  const SocConfig cfg = load_file(path);
  EXPECT_EQ(cfg.num_clusters, 16u);
  std::remove(path.c_str());
  EXPECT_THROW(load_file("/nonexistent/x.cfg"), std::runtime_error);
}

TEST(ConfigIo, KeysAreUniqueAndNonEmpty) {
  const auto keys = config_keys();
  EXPECT_GT(keys.size(), 30u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_FALSE(keys[i].empty());
    for (std::size_t j = i + 1; j < keys.size(); ++j) EXPECT_NE(keys[i], keys[j]);
  }
}

TEST(ConfigIo, DescribeNamesTheDesign) {
  EXPECT_NE(describe(SocConfig::extended(32)).find("extended"), std::string::npos);
  EXPECT_NE(describe(SocConfig::baseline(32)).find("baseline"), std::string::npos);
  EXPECT_NE(describe(SocConfig::with_features(4, {true, false})).find("multicast-only"),
            std::string::npos);
}

// ---- chrome trace export ----------------------------------------------------------

TEST(ChromeTrace, EmitsValidSkeletonWithThreadNames) {
  sim::TraceSink sink;
  sink.enable();
  sink.record(10, "soc.cluster0", "wakeup", "");
  sink.record(20, "soc.hbm", "beat", "x=1");
  const std::string json = sim::to_chrome_trace(sink);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("soc.cluster0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":20"), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"x=1\""), std::string::npos);
}

TEST(ChromeTrace, EscapesSpecialCharacters) {
  sim::TraceSink sink;
  sink.enable();
  sink.record(1, "a", "ev", "quote\" back\\slash\nnewline");
  const std::string json = sim::to_chrome_trace(sink);
  EXPECT_NE(json.find("quote\\\""), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(ChromeTrace, EmptySinkGivesEmptyArray) {
  const sim::TraceSink sink;
  const std::string json = sim::to_chrome_trace(sink);
  EXPECT_NE(json.find("["), std::string::npos);
  EXPECT_NE(json.find("]"), std::string::npos);
}

TEST(ChromeTrace, FullOffloadTraceExports) {
  Soc soc(SocConfig::extended(4));
  soc.simulator().trace().enable();
  run_verified(soc, "daxpy", 128, 4);
  const std::string json = sim::to_chrome_trace(soc.simulator().trace());
  EXPECT_NE(json.find("multicast"), std::string::npos);
  EXPECT_NE(json.find("credit"), std::string::npos);
  // Every record produced one event line plus one metadata line per track.
  EXPECT_GT(json.size(), 1000u);
}

TEST(ChromeTrace, WriteFileErrors) {
  const sim::TraceSink sink;
  EXPECT_THROW(sim::write_chrome_trace(sink, "/nonexistent-dir/t.json"), std::runtime_error);
}

}  // namespace
