// Unit tests for the kernel library: payload protocol, chunking, plans,
// timing rates, and functional execution through a memory-only mini-harness
// (no event simulation — the cluster/timing path is covered by test_soc).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <utility>

#include "kernels/blas1.h"
#include "kernels/gemm.h"
#include "kernels/gemv.h"
#include "kernels/job_args.h"
#include "kernels/reductions.h"
#include "kernels/registry.h"
#include "mem/main_memory.h"
#include "mem/tcdm.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace mco;
using namespace mco::kernels;

// ---- split_chunk -----------------------------------------------------------

TEST(SplitChunk, EvenSplit) {
  const auto r = split_chunk(100, 3, 4);
  EXPECT_EQ(r.begin, 75u);
  EXPECT_EQ(r.count, 25u);
}

TEST(SplitChunk, RemainderGoesToFirstChunks) {
  // 10 over 4: 3,3,2,2
  EXPECT_EQ(split_chunk(10, 0, 4).count, 3u);
  EXPECT_EQ(split_chunk(10, 1, 4).count, 3u);
  EXPECT_EQ(split_chunk(10, 2, 4).count, 2u);
  EXPECT_EQ(split_chunk(10, 3, 4).count, 2u);
}

TEST(SplitChunk, FewerItemsThanParts) {
  EXPECT_EQ(split_chunk(2, 0, 4).count, 1u);
  EXPECT_EQ(split_chunk(2, 1, 4).count, 1u);
  EXPECT_EQ(split_chunk(2, 2, 4).count, 0u);
  EXPECT_EQ(split_chunk(2, 3, 4).count, 0u);
}

TEST(SplitChunk, Errors) {
  EXPECT_THROW(split_chunk(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(split_chunk(10, 4, 4), std::out_of_range);
}

class SplitChunkProperty : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>> {};

TEST_P(SplitChunkProperty, CoversExactlyOnceContiguouslyAndBalanced) {
  const auto [n, parts] = GetParam();
  std::uint64_t covered = 0;
  std::uint64_t next_begin = 0;
  std::uint64_t mx = 0, mn = n + 1;
  for (unsigned i = 0; i < parts; ++i) {
    const auto r = split_chunk(n, i, parts);
    EXPECT_EQ(r.begin, next_begin);
    next_begin += r.count;
    covered += r.count;
    mx = std::max(mx, r.count);
    mn = std::min(mn, r.count);
  }
  EXPECT_EQ(covered, n);
  EXPECT_LE(mx - mn, 1u);                                  // balanced
  EXPECT_EQ(mx, (n + parts - 1) / parts);                  // largest = ceil
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitChunkProperty,
                         ::testing::Combine(::testing::Values(1, 2, 7, 64, 1000, 1024, 65537),
                                            ::testing::Values(1, 2, 3, 8, 32, 64)));

// ---- payload protocol ------------------------------------------------------

TEST(Payload, HeaderRoundTrip) {
  JobArgs args;
  args.kernel_id = kDaxpyId;
  args.job_id = 77;
  args.n = 1024;
  const auto msg = marshal_payload(args, 32, {1, 2, 3});
  const auto h = parse_header(msg);
  EXPECT_EQ(h.job_id, 77u);
  EXPECT_EQ(h.kernel_id, kDaxpyId);
  EXPECT_EQ(h.num_clusters, 32u);
  EXPECT_EQ(h.n, 1024u);
  EXPECT_EQ(payload_args(msg), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Payload, ShortPayloadThrows) {
  noc::DispatchMessage msg{{1, 2}};
  EXPECT_THROW(parse_header(msg), std::invalid_argument);
}

TEST(Payload, ZeroClustersThrows) {
  EXPECT_THROW(marshal_payload(JobArgs{}, 0, {}), std::invalid_argument);
}

TEST(Payload, F64BitsRoundTrip) {
  for (const double v : {0.0, -1.5, 3.141592653589793, 1e300}) {
    EXPECT_EQ(bits_f64(f64_bits(v)), v);
  }
}

TEST(Payload, DaxpyDispatchIsSixWords) {
  // Header (3) + alpha + x + y: the per-cluster dispatch cost in the paper's
  // baseline is tied to this count.
  const DaxpyKernel k;
  JobArgs args;
  args.kernel_id = kDaxpyId;
  args.n = 8;
  args.in0 = 0x8000'0000;
  args.out0 = 0x8000'1000;
  EXPECT_EQ(dispatch_words(k, args), 6u);
}

// ---- registry --------------------------------------------------------------

TEST(Registry, StandardHasAllKernels) {
  const auto reg = KernelRegistry::standard();
  EXPECT_EQ(reg.size(), 13u);
  EXPECT_EQ(reg.by_name("daxpy").id(), kDaxpyId);
  EXPECT_EQ(reg.by_id(kGemvId).name(), "gemv");
}

TEST(Registry, UnknownLookupsThrow) {
  const auto reg = KernelRegistry::standard();
  EXPECT_THROW(reg.by_id(9999), std::out_of_range);
  EXPECT_THROW(reg.by_name("nope"), std::out_of_range);
}

TEST(Registry, DuplicateIdRejected) {
  KernelRegistry reg;
  reg.register_kernel(std::make_unique<DaxpyKernel>());
  EXPECT_THROW(reg.register_kernel(std::make_unique<DaxpyKernel>()), std::invalid_argument);
}

TEST(Registry, NullKernelRejected) {
  KernelRegistry reg;
  EXPECT_THROW(reg.register_kernel(nullptr), std::invalid_argument);
}

// ---- per-kernel properties (parameterized over the registry) ---------------

/// Build representative valid JobArgs for any kernel.
JobArgs representative_args(const Kernel& k, std::uint64_t n) {
  JobArgs args;
  args.kernel_id = k.id();
  args.n = n;
  args.alpha = 1.25;
  args.beta = -0.5;
  args.in0 = 0x8000'0000;
  args.in1 = 0x8001'0000;
  args.out0 = 0x8002'0000;
  args.out1 = 0x8003'0000;
  args.aux = 16;  // gemv cols
  return args;
}

class KernelProperty : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  KernelRegistry reg_ = KernelRegistry::standard();
  const Kernel& kernel() const { return reg_.by_id(GetParam()); }
};

TEST_P(KernelProperty, MarshalUnmarshalIsIdempotent) {
  const Kernel& k = kernel();
  const JobArgs args = representative_args(k, 64);
  const auto words = k.marshal_args(args);
  PayloadHeader h;
  h.kernel_id = k.id();
  h.job_id = args.job_id;
  h.n = args.n;
  h.num_clusters = 4;
  const JobArgs back = k.unmarshal(h, words);
  EXPECT_EQ(k.marshal_args(back), words);
  EXPECT_EQ(back.n, args.n);
  EXPECT_EQ(back.kernel_id, k.id());
}

TEST_P(KernelProperty, UnmarshalRejectsWrongWordCount) {
  const Kernel& k = kernel();
  const JobArgs args = representative_args(k, 64);
  auto words = k.marshal_args(args);
  words.push_back(0);
  PayloadHeader h;
  h.kernel_id = k.id();
  h.n = args.n;
  h.num_clusters = 1;
  EXPECT_THROW(k.unmarshal(h, words), std::invalid_argument);
}

TEST_P(KernelProperty, PlansPartitionAllItems) {
  const Kernel& k = kernel();
  for (const unsigned parts : {1u, 3u, 8u, 32u}) {
    const JobArgs args = representative_args(k, 100);
    std::uint64_t total = 0;
    for (unsigned i = 0; i < parts; ++i) total += k.plan_cluster(args, i, parts).items;
    EXPECT_EQ(total, 100u) << k.name() << " parts=" << parts;
  }
}

TEST_P(KernelProperty, PlanSegmentsFitFootprint) {
  const Kernel& k = kernel();
  const JobArgs args = representative_args(k, 64);
  const auto plan = k.plan_cluster(args, 0, 2);
  for (const auto& seg : plan.dma_in) {
    EXPECT_LE(seg.tcdm_off + seg.bytes, plan.tcdm_footprint());
  }
  for (const auto& seg : plan.dma_out) {
    EXPECT_LE(seg.tcdm_off + seg.bytes, plan.tcdm_footprint());
  }
}

TEST_P(KernelProperty, EveryClusterWritesOutputWhenItHasItems) {
  const Kernel& k = kernel();
  const JobArgs args = representative_args(k, 64);
  const auto plan = k.plan_cluster(args, 1, 4);
  ASSERT_GT(plan.items, 0u);
  EXPECT_GT(plan.bytes_out(), 0u) << k.name();
}

TEST_P(KernelProperty, EmptyChunkHasEmptyPlan) {
  const Kernel& k = kernel();
  const JobArgs args = representative_args(k, 2);
  const auto plan = k.plan_cluster(args, 3, 4);  // chunk 3 of 4 over n=2: empty
  EXPECT_EQ(plan.items, 0u);
  EXPECT_TRUE(plan.dma_in.empty());
  EXPECT_TRUE(plan.dma_out.empty());
}

TEST_P(KernelProperty, WorkerCyclesMonotoneInItems) {
  const Kernel& k = kernel();
  const JobArgs args = representative_args(k, 1024);
  sim::Cycles prev = 0;
  for (const std::uint64_t items : {0ull, 1ull, 10ull, 100ull, 1000ull}) {
    const sim::Cycles c = k.worker_cycles(args, items);
    EXPECT_GE(c, prev) << k.name();
    prev = c;
  }
  EXPECT_EQ(k.worker_cycles(args, 0), 0u);
}

TEST_P(KernelProperty, ValidateRejectsZeroN) {
  const Kernel& k = kernel();
  JobArgs args = representative_args(k, 0);
  EXPECT_THROW(k.validate(args), std::invalid_argument);
}

TEST_P(KernelProperty, ValidateRejectsWrongKernelId) {
  const Kernel& k = kernel();
  JobArgs args = representative_args(k, 8);
  args.kernel_id = k.id() + 1000;
  EXPECT_THROW(k.validate(args), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelProperty,
                         ::testing::Values(kDaxpyId, kSaxpyId, kAxpbyId, kScaleId, kVecAddId,
                                           kVecMulId, kReluId, kFillId, kMemcpyId, kDotId, kVecSumId,
                                           kGemvId, kGemmId),
                         [](const auto& param_info) {
                           return KernelRegistry::standard().by_id(param_info.param).name();
                         });

// ---- functional execution through a memory-only harness --------------------

/// Executes a kernel the way a cluster would — DMA-in per plan, execute,
/// DMA-out per plan — but with plain memcpy instead of timed DMA.
void run_functionally(const Kernel& k, const JobArgs& args, unsigned parts,
                      mem::MainMemory& main_mem, const mem::AddressMap& map,
                      sim::Simulator& sim) {
  for (unsigned i = 0; i < parts; ++i) {
    const auto plan = k.plan_cluster(args, i, parts);
    mem::Tcdm tcdm(sim, "t", mem::TcdmConfig{});
    ASSERT_LE(plan.tcdm_footprint(), tcdm.size());
    for (const auto& seg : plan.dma_in) {
      std::memcpy(tcdm.data(seg.tcdm_off, seg.bytes),
                  std::as_const(main_mem).data(map.hbm_offset(seg.hbm), seg.bytes), seg.bytes);
    }
    k.execute_cluster(tcdm, args, i, parts);
    for (const auto& seg : plan.dma_out) {
      std::memcpy(main_mem.data(map.hbm_offset(seg.hbm), seg.bytes),
                  std::as_const(tcdm).data(seg.tcdm_off, seg.bytes), seg.bytes);
    }
  }
  k.host_epilogue(main_mem, map, args, parts);
}

class FunctionalDaxpy : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>> {};

TEST_P(FunctionalDaxpy, MatchesReferenceForAnyPartitioning) {
  const auto [n, parts] = GetParam();
  sim::Simulator sim;
  mem::AddressMap map;
  mem::MainMemory main_mem(1 << 22);
  sim::Rng rng(n * 31 + parts);

  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  main_mem.write_f64_array(0, x);
  main_mem.write_f64_array(n * 8, y);

  DaxpyKernel k;
  JobArgs args;
  args.kernel_id = kDaxpyId;
  args.n = n;
  args.alpha = 2.5;
  args.in0 = map.hbm_base();
  args.out0 = map.hbm_base() + n * 8;
  run_functionally(k, args, parts, main_mem, map, sim);

  const auto got = main_mem.read_f64_array(n * 8, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(got[i], 2.5 * x[i] + y[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FunctionalDaxpy,
                         ::testing::Combine(::testing::Values(1, 7, 64, 1000, 1024),
                                            ::testing::Values(1, 2, 8, 32)));

TEST(FunctionalDot, PartialsAndEpilogueMatchReference) {
  sim::Simulator sim;
  mem::AddressMap map;
  mem::MainMemory main_mem(1 << 22);
  const std::uint64_t n = 777;
  const unsigned parts = 8;
  sim::Rng rng(5);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  main_mem.write_f64_array(0, x);
  main_mem.write_f64_array(n * 8, y);

  DotKernel k;
  JobArgs args;
  args.kernel_id = kDotId;
  args.n = n;
  args.in0 = map.hbm_base();
  args.in1 = map.hbm_base() + n * 8;
  args.out0 = map.hbm_base() + 2 * n * 8;
  args.out1 = map.hbm_base() + 2 * n * 8 + parts * 8;
  run_functionally(k, args, parts, main_mem, map, sim);

  const double expected = std::inner_product(x.begin(), x.end(), y.begin(), 0.0);
  const double got = main_mem.read_f64(map.hbm_offset(args.out1));
  EXPECT_NEAR(got, expected, 1e-9);
}

TEST(FunctionalGemv, MatchesReference) {
  sim::Simulator sim;
  mem::AddressMap map;
  mem::MainMemory main_mem(1 << 22);
  const std::uint64_t rows = 33;
  const std::uint64_t cols = 16;
  const unsigned parts = 4;
  sim::Rng rng(6);
  std::vector<double> a(rows * cols), x(cols);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : x) v = rng.uniform(-1, 1);
  main_mem.write_f64_array(0, a);
  main_mem.write_f64_array(rows * cols * 8, x);

  GemvKernel k;
  JobArgs args;
  args.kernel_id = kGemvId;
  args.n = rows;
  args.aux = cols;
  args.alpha = 0.5;
  args.in0 = map.hbm_base();
  args.in1 = map.hbm_base() + rows * cols * 8;
  args.out0 = map.hbm_base() + (rows * cols + cols) * 8;
  run_functionally(k, args, parts, main_mem, map, sim);

  const auto got = main_mem.read_f64_array((rows * cols + cols) * 8, rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    double acc = 0;
    for (std::uint64_t c = 0; c < cols; ++c) acc += a[r * cols + c] * x[c];
    ASSERT_NEAR(got[r], 0.5 * acc, 1e-12) << r;
  }
}

// ---- specific timing rates --------------------------------------------------

TEST(DaxpyRate, IsPaperCalibrated26CyclesPerElement) {
  const DaxpyKernel k;
  EXPECT_DOUBLE_EQ(k.rate().as_double(), 2.6);
  // ceil(2.6 * 4) = 11 — the worker share at M=32, N=1024.
  EXPECT_EQ(k.worker_cycles(JobArgs{}, 4), 11u);
  EXPECT_EQ(k.worker_cycles(JobArgs{}, 128), 333u);
}

TEST(GemvTiming, ScalesWithColumns) {
  const GemvKernel k;
  JobArgs narrow = representative_args(k, 8);
  narrow.aux = 8;
  JobArgs wide = representative_args(k, 8);
  wide.aux = 64;
  EXPECT_LT(k.worker_cycles(narrow, 10), k.worker_cycles(wide, 10));
}

TEST(ReductionEpilogue, CostGrowsWithClusters) {
  const DotKernel k;
  const JobArgs args = representative_args(k, 64);
  EXPECT_LT(k.host_epilogue_cycles(args, 1), k.host_epilogue_cycles(args, 32));
}

}  // namespace
