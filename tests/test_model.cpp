// Unit tests for the analytical model: prediction, fitting, MAPE, and the
// offload-decision solvers (paper Eq. (1)–(3)).
#include <gtest/gtest.h>

#include <cmath>

#include "model/decision.h"
#include "model/fitter.h"
#include "model/mape.h"
#include "model/runtime_model.h"
#include "model/validate.h"
#include "sim/rng.h"

namespace {

using namespace mco::model;

// ---- prediction ------------------------------------------------------------

TEST(RuntimeModel, PaperEq1Values) {
  const RuntimeModel m = paper_daxpy_model();
  // t̂(32, 1024) = 367 + 256 + 2.6*1024/256 = 633.4
  EXPECT_NEAR(m.predict(32, 1024), 633.4, 1e-9);
  EXPECT_NEAR(m.predict(1, 1024), 367 + 256 + 332.8, 1e-9);
}

TEST(RuntimeModel, ZeroMThrows) {
  EXPECT_THROW(paper_daxpy_model().predict(0, 10), std::invalid_argument);
}

TEST(RuntimeModel, SerialFractionApproachesOneAsMGrows) {
  const RuntimeModel m = paper_daxpy_model();
  EXPECT_LT(m.serial_fraction(1, 1024), m.serial_fraction(32, 1024));
  EXPECT_LT(m.serial_fraction(32, 1024), 1.0);
}

TEST(RuntimeModel, SelfSpeedupBoundedByAmdahl) {
  const RuntimeModel m = paper_daxpy_model();
  const double s32 = m.self_speedup(32, 1024);
  // Amdahl: speedup over the M=1 execution is bounded by 1/f where f is the
  // serial fraction of the M=1 runtime.
  const double bound = 1.0 / m.serial_fraction(1, 1024);
  EXPECT_GT(s32, 1.0);
  EXPECT_LT(s32, bound + 1e-9);
}

TEST(RuntimeModel, BestMIsMaxWhenNoPerClusterTerm) {
  EXPECT_EQ(paper_daxpy_model().best_m(1024, 32), 32u);
}

TEST(RuntimeModel, BestMInteriorWithPerClusterTerm) {
  // t = 380 + N/4 + 2.6N/(8M) + 9M has an interior minimum near sqrt(b*N/c).
  const RuntimeModel m{380, 0.25, 2.6 / 8.0, 9.0};
  const unsigned best = m.best_m(1024, 64);
  EXPECT_GE(best, 4u);
  EXPECT_LE(best, 8u);
}

TEST(RuntimeModel, DescribeMentionsAllTerms) {
  const std::string s = paper_daxpy_model().describe();
  EXPECT_NE(s.find("N/M"), std::string::npos);
}

// ---- fitting ---------------------------------------------------------------

std::vector<Sample> synth_samples(const RuntimeModel& truth, bool jitter) {
  std::vector<Sample> out;
  mco::sim::Rng rng(99);
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (const std::uint64_t n : {256ull, 512ull, 768ull, 1024ull}) {
      double t = truth.predict(m, n);
      if (jitter) t += rng.uniform(-1.0, 1.0);
      out.push_back(Sample{m, n, t});
    }
  }
  return out;
}

TEST(Fitter, RecoversExactCoefficients) {
  const RuntimeModel truth{367, 0.25, 0.325, 0};
  const auto fit = fit_runtime_model(synth_samples(truth, false));
  EXPECT_NEAR(fit.model.t0, truth.t0, 1e-6);
  EXPECT_NEAR(fit.model.a, truth.a, 1e-9);
  EXPECT_NEAR(fit.model.b, truth.b, 1e-9);
  EXPECT_DOUBLE_EQ(fit.model.c, 0.0);
  EXPECT_GT(fit.r_squared, 0.999999);
}

TEST(Fitter, RecoversWithMTerm) {
  const RuntimeModel truth{382, 0.25, 0.325, 9.0};
  const auto fit = fit_runtime_model(synth_samples(truth, false), FitOptions{true});
  EXPECT_NEAR(fit.model.c, 9.0, 1e-6);
  EXPECT_NEAR(fit.model.t0, 382.0, 1e-4);
}

TEST(Fitter, ToleratesNoise) {
  const RuntimeModel truth{367, 0.25, 0.325, 0};
  const auto fit = fit_runtime_model(synth_samples(truth, true));
  EXPECT_NEAR(fit.model.t0, truth.t0, 2.0);
  EXPECT_NEAR(fit.model.b, truth.b, 0.05);
  EXPECT_LT(fit.max_abs_residual, 5.0);
}

TEST(Fitter, TooFewSamplesThrows) {
  std::vector<Sample> s{{1, 10, 100.0}, {2, 10, 90.0}};
  EXPECT_THROW(fit_runtime_model(s), std::invalid_argument);
}

TEST(Fitter, SingularDesignThrows) {
  // All samples at the same (m, n): the design matrix is rank-1.
  std::vector<Sample> s(8, Sample{4, 256, 500.0});
  EXPECT_THROW(fit_runtime_model(s), std::invalid_argument);
}

TEST(Fitter, ZeroMSampleThrows) {
  std::vector<Sample> s{{0, 10, 1.0}, {1, 10, 1.0}, {2, 10, 1.0}};
  EXPECT_THROW(fit_runtime_model(s), std::invalid_argument);
}

// ---- MAPE ------------------------------------------------------------------

TEST(Mape, ZeroForPerfectModel) {
  const RuntimeModel m = paper_daxpy_model();
  const auto samples = synth_samples(m, false);
  EXPECT_NEAR(mape(m, samples), 0.0, 1e-12);
}

TEST(Mape, MatchesHandComputation) {
  const RuntimeModel m{0, 0, 1, 0};  // t̂ = N/M
  // Sample: m=1, n=100 → t̂=100; measured 110 → |10|/110 = 9.0909 %.
  const std::vector<Sample> s{{1, 100, 110.0}};
  EXPECT_NEAR(mape(m, s), 100.0 * 10.0 / 110.0, 1e-9);
}

TEST(Mape, GroupsByN) {
  const RuntimeModel m = paper_daxpy_model();
  auto samples = synth_samples(m, false);
  samples[0].t += samples[0].t * 0.10;  // corrupt one N=256 sample by 10%
  const auto by_n = mape_by_n(m, samples);
  EXPECT_GT(by_n.at(256), 1.0);
  EXPECT_NEAR(by_n.at(1024), 0.0, 1e-9);
}

TEST(Mape, EmptyThrows) { EXPECT_THROW(mape(paper_daxpy_model(), {}), std::invalid_argument); }

TEST(Mape, NonPositiveMeasurementThrows) {
  EXPECT_THROW(mape(paper_daxpy_model(), {{1, 10, 0.0}}), std::invalid_argument);
}

// ---- decision: Eq. (3) -----------------------------------------------------

TEST(Decision, PaperEq3ClosedForm) {
  const RuntimeModel m = paper_daxpy_model();
  // t_max = 700 at N = 1024: slack = 700 - 367 - 256 = 77,
  // M_min = ceil(0.325*1024 / 77) = ceil(4.32) = 5.
  const auto got = min_clusters_for_deadline(m, 1024, 700.0, 32);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 5u);
}

TEST(Decision, InfeasibleDeadlineIsNullopt) {
  const RuntimeModel m = paper_daxpy_model();
  // Even infinite M cannot beat the serial part 367 + N/4.
  EXPECT_FALSE(min_clusters_for_deadline(m, 1024, 600.0, 1024).has_value());
}

TEST(Decision, DeadlineNeedsMoreThanMMax) {
  const RuntimeModel m = paper_daxpy_model();
  EXPECT_FALSE(min_clusters_for_deadline(m, 1024, 700.0, 4).has_value());
}

TEST(Decision, LooseDeadlineNeedsOneCluster) {
  const RuntimeModel m = paper_daxpy_model();
  const auto got = min_clusters_for_deadline(m, 1024, 10000.0, 32);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

// Property: the closed form matches a brute-force scan for many (n, t_max).
class Eq3Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Eq3Property, ClosedFormMatchesScan) {
  const RuntimeModel m = paper_daxpy_model();
  const std::uint64_t n = GetParam();
  for (double t_max = 400; t_max < 1500; t_max += 13.0) {
    const auto closed = min_clusters_for_deadline(m, n, t_max, 64);
    std::optional<unsigned> scan;
    for (unsigned mm = 1; mm <= 64; ++mm) {
      if (m.predict(mm, n) <= t_max) {
        scan = mm;
        break;
      }
    }
    EXPECT_EQ(closed, scan) << "n=" << n << " t_max=" << t_max;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Eq3Property, ::testing::Values(256, 512, 768, 1024, 2048));

// ---- decision: Eq. (3) boundary behaviour (the serve layer's admission
// control leans on these exact edges; nullopt means "shed the job") ----------

TEST(Decision, DeadlineExactlyAtPredictionAdmitsThatM) {
  // t_max placed exactly on t̂(M, N): the inclusive deadline must admit M,
  // and the closed form must not overshoot to M+1 from float rounding.
  const RuntimeModel m = paper_daxpy_model();
  for (unsigned mm = 1; mm <= 64; ++mm) {
    const double t_exact = m.predict(mm, 1024);
    const auto got = min_clusters_for_deadline(m, 1024, t_exact, 64);
    ASSERT_TRUE(got.has_value()) << "M=" << mm;
    EXPECT_LE(m.predict(*got, 1024), t_exact) << "M=" << mm;
    if (*got > 1) {
      EXPECT_GT(m.predict(*got - 1, 1024), t_exact) << "M=" << mm;
    }
  }
}

TEST(Decision, ZeroSlackWithZeroWorkIsFeasible) {
  // N = 0: t̂(M, 0) = t0 for every M, so t_max == t0 is met by one cluster.
  const RuntimeModel m = paper_daxpy_model();
  const auto got = min_clusters_for_deadline(m, 0, m.t0, 8);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST(Decision, ZeroSlackWithWorkIsNullopt) {
  // slack == 0 with b·N > 0: the parallel term never vanishes at finite M.
  const RuntimeModel m = paper_daxpy_model();
  const double t_serial = m.t0 + m.a * 1024.0;
  EXPECT_FALSE(min_clusters_for_deadline(m, 1024, t_serial, 1024).has_value());
}

TEST(Decision, NegativeSlackIsNullopt) {
  const RuntimeModel m = paper_daxpy_model();
  EXPECT_FALSE(min_clusters_for_deadline(m, 0, m.t0 - 1.0, 8).has_value());
}

TEST(Decision, MmaxClampIsExact) {
  // A deadline exactly at t̂(m_max, N) is feasible; the same deadline with
  // m_max − 1 available clusters is not — the clamp is off-by-one free.
  const RuntimeModel m = paper_daxpy_model();
  const unsigned m_max = 16;
  const double t_exact = m.predict(m_max, 2048);
  const auto got = min_clusters_for_deadline(m, 2048, t_exact, m_max);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, m_max);
  EXPECT_FALSE(min_clusters_for_deadline(m, 2048, t_exact, m_max - 1).has_value());
}

TEST(Decision, ExactBoundariesMatchScanAcrossSizes) {
  const RuntimeModel m = paper_daxpy_model();
  for (const std::uint64_t n : {256ull, 512ull, 1000ull, 1024ull, 4096ull}) {
    for (unsigned mm = 1; mm <= 64; mm *= 2) {
      const double t_exact = m.predict(mm, n);
      const auto closed = min_clusters_for_deadline(m, n, t_exact, 64);
      std::optional<unsigned> scan;
      for (unsigned k = 1; k <= 64; ++k) {
        if (m.predict(k, n) <= t_exact) {
          scan = k;
          break;
        }
      }
      EXPECT_EQ(closed, scan) << "n=" << n << " M=" << mm;
    }
  }
}

TEST(Decision, QuadraticPathWithPerClusterTerm) {
  const RuntimeModel m{382, 0.25, 0.325, 9.0};
  // Scan-based result must satisfy the deadline and be minimal.
  const auto got = min_clusters_for_deadline(m, 1024, 760.0, 64);
  ASSERT_TRUE(got.has_value());
  EXPECT_LE(m.predict(*got, 1024), 760.0);
  if (*got > 1) {
    EXPECT_GT(m.predict(*got - 1, 1024), 760.0);
  }
}

// ---- decision: offload vs host ----------------------------------------------

TEST(Decision, OffloadWinsForLargeN) {
  const RuntimeModel m = paper_daxpy_model();
  const double t_host = 4.0 * 4096;  // scalar host, 4 cycles/element
  const auto d = decide_offload(m, 4096, t_host, 32);
  EXPECT_TRUE(d.offload);
  EXPECT_EQ(d.m, 32u);
  EXPECT_GT(d.speedup, 1.0);
}

TEST(Decision, HostWinsForTinyN) {
  const RuntimeModel m = paper_daxpy_model();
  const auto d = decide_offload(m, 16, 4.0 * 16, 32);
  EXPECT_FALSE(d.offload);
  EXPECT_EQ(d.m, 0u);
}

TEST(Decision, BreakEvenIsMonotoneBoundary) {
  const RuntimeModel m = paper_daxpy_model();
  const auto n0 = break_even_n(m, 32, 4.0);
  ASSERT_TRUE(n0.has_value());
  EXPECT_GT(m.predict(32, *n0 - 1), 4.0 * static_cast<double>(*n0 - 1));
  EXPECT_LT(m.predict(32, *n0), 4.0 * static_cast<double>(*n0));
}

TEST(Decision, BreakEvenNulloptWhenHostFasterPerElement) {
  const RuntimeModel m = paper_daxpy_model();
  // Offload slope at M=1 is 0.25 + 0.325 = 0.575 cycles/elem; a host at 0.5
  // cycles/elem never loses.
  EXPECT_FALSE(break_even_n(m, 1, 0.5).has_value());
}

TEST(Decision, ErrorsOnBadArguments) {
  const RuntimeModel m = paper_daxpy_model();
  EXPECT_THROW(min_clusters_for_deadline(m, 10, 100.0, 0), std::invalid_argument);
  EXPECT_THROW(break_even_n(m, 0, 4.0), std::invalid_argument);
  EXPECT_THROW(break_even_n(m, 1, 0.0), std::invalid_argument);
}

// ---- cross-validation and residuals ---------------------------------------------

TEST(CrossValidation, PerfectModelGeneralizesPerfectly) {
  const RuntimeModel truth = paper_daxpy_model();
  const auto cv = cross_validate_by_n(synth_samples(truth, false));
  EXPECT_NEAR(cv.worst_mape, 0.0, 1e-9);
  EXPECT_EQ(cv.held_out_mape.size(), 4u);
}

TEST(CrossValidation, NoisyDataStillGeneralizesWell) {
  const RuntimeModel truth = paper_daxpy_model();
  const auto cv = cross_validate_by_n(synth_samples(truth, true));
  EXPECT_LT(cv.worst_mape, 1.0);  // noise was ±1 cycle on ~500-cycle samples
  EXPECT_LE(cv.mean_mape, cv.worst_mape);
}

TEST(CrossValidation, NeedsThreeSizes) {
  std::vector<Sample> two;
  for (const unsigned m : {1u, 2u, 4u, 8u}) {
    two.push_back({m, 256, 100.0 + m});
    two.push_back({m, 512, 200.0 + m});
  }
  EXPECT_THROW(cross_validate_by_n(two), std::invalid_argument);
}

TEST(Residuals, UnbiasedForTruthModel) {
  const RuntimeModel truth = paper_daxpy_model();
  const auto st = residual_stats(truth, synth_samples(truth, false));
  EXPECT_NEAR(st.mean, 0.0, 1e-9);
  EXPECT_NEAR(st.rmse, 0.0, 1e-9);
}

TEST(Residuals, DetectsSystematicBias) {
  RuntimeModel biased = paper_daxpy_model();
  biased.t0 -= 10.0;  // under-predicts everything by 10 cycles
  const auto st = residual_stats(biased, synth_samples(paper_daxpy_model(), false));
  EXPECT_NEAR(st.mean, 10.0, 1e-9);
  EXPECT_NEAR(st.max_abs, 10.0, 1e-9);
  EXPECT_NEAR(st.rmse, 10.0, 1e-9);
}

TEST(Residuals, EmptyThrows) {
  EXPECT_THROW(residual_stats(paper_daxpy_model(), {}), std::invalid_argument);
}

}  // namespace
