// Unit/integration tests for the offload runtime: phases, feature gating,
// error handling, dispatch mechanics on a full SoC.
#include <gtest/gtest.h>

#include "kernels/blas1.h"
#include "soc/soc.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using namespace mco::soc;

kernels::JobArgs make_daxpy(Soc& soc, std::uint64_t n, sim::Rng& rng) {
  return prepare_workload(soc, soc.kernels().by_name("daxpy"), n, soc.num_clusters(), rng).args;
}

TEST(OffloadRuntime, PhasesAreMonotone) {
  Soc soc(SocConfig::extended(8));
  sim::Rng rng(1);
  const auto r = soc.run_offload(make_daxpy(soc, 256, rng), 8);
  EXPECT_LT(r.ts.call, r.ts.marshal_done);
  EXPECT_LE(r.ts.marshal_done, r.ts.sync_ready);
  EXPECT_LT(r.ts.sync_ready, r.ts.dispatch_done);
  EXPECT_LT(r.ts.dispatch_done, r.ts.completion);
  EXPECT_LT(r.ts.completion, r.ts.ret);
  EXPECT_EQ(r.total(), r.ts.ret - r.ts.call);
}

TEST(OffloadRuntime, PhaseBreakdownSumsToTotal) {
  Soc soc(SocConfig::baseline(4));
  sim::Rng rng(2);
  const auto r = soc.run_offload(make_daxpy(soc, 512, rng), 4);
  const auto p = r.phases();
  EXPECT_EQ(p.marshal + p.sync_setup + p.dispatch + p.wait + p.epilogue, r.total());
}

TEST(OffloadRuntime, BaselineDispatchGrowsLinearly) {
  sim::Cycles d4 = 0, d16 = 0;
  {
    Soc soc(SocConfig::baseline(16));
    sim::Rng rng(3);
    d4 = soc.run_offload(make_daxpy(soc, 1024, rng), 4).phases().dispatch;
  }
  {
    Soc soc(SocConfig::baseline(16));
    sim::Rng rng(3);
    d16 = soc.run_offload(make_daxpy(soc, 1024, rng), 16).phases().dispatch;
  }
  EXPECT_EQ(d16, 4 * d4);  // strictly linear sequential dispatch
}

TEST(OffloadRuntime, ExtendedDispatchIsConstant) {
  sim::Cycles d1 = 0, d32 = 0;
  {
    Soc soc(SocConfig::extended(32));
    sim::Rng rng(4);
    d1 = soc.run_offload(make_daxpy(soc, 1024, rng), 1).phases().dispatch;
  }
  {
    Soc soc(SocConfig::extended(32));
    sim::Rng rng(4);
    d32 = soc.run_offload(make_daxpy(soc, 1024, rng), 32).phases().dispatch;
  }
  EXPECT_EQ(d1, d32);
}

TEST(OffloadRuntime, ExtendedUsesMulticastAndIrq) {
  Soc soc(SocConfig::extended(8));
  sim::Rng rng(5);
  const auto r = soc.run_offload(make_daxpy(soc, 256, rng), 8);
  EXPECT_TRUE(r.used_multicast);
  EXPECT_TRUE(r.used_hw_sync);
  EXPECT_EQ(soc.interconnect().multicasts_sent(), 1u);
  EXPECT_EQ(soc.interconnect().unicasts_sent(), 0u);
  EXPECT_EQ(soc.sync_unit().interrupts_fired(), 1u);
  EXPECT_EQ(soc.host().irqs_taken(), 1u);
  EXPECT_EQ(soc.host().polls(), 0u);
}

TEST(OffloadRuntime, BaselineUsesUnicastsAndPolling) {
  Soc soc(SocConfig::baseline(8));
  sim::Rng rng(6);
  const auto r = soc.run_offload(make_daxpy(soc, 256, rng), 8);
  EXPECT_FALSE(r.used_multicast);
  EXPECT_FALSE(r.used_hw_sync);
  EXPECT_EQ(soc.interconnect().unicasts_sent(), 8u);
  EXPECT_EQ(soc.interconnect().multicasts_sent(), 0u);
  EXPECT_EQ(soc.shared_counter().amos_serviced(), 8u);
  EXPECT_GT(soc.host().polls(), 0u);
  EXPECT_EQ(soc.host().irqs_taken(), 0u);
}

TEST(OffloadRuntime, PayloadWordsReported) {
  Soc soc(SocConfig::extended(4));
  sim::Rng rng(7);
  const auto r = soc.run_offload(make_daxpy(soc, 64, rng), 4);
  EXPECT_EQ(r.payload_words, 6u);  // 3 header + alpha + x + y
  EXPECT_EQ(r.kernel, "daxpy");
  EXPECT_EQ(r.n, 64u);
  EXPECT_EQ(r.num_clusters, 4u);
}

TEST(OffloadRuntime, ZeroClustersRejected) {
  Soc soc(SocConfig::extended(4));
  sim::Rng rng(8);
  const auto args = make_daxpy(soc, 64, rng);
  EXPECT_THROW(soc.runtime().offload_async(args, 0, nullptr), std::invalid_argument);
}

TEST(OffloadRuntime, TooManyClustersRejected) {
  Soc soc(SocConfig::extended(4));
  sim::Rng rng(9);
  const auto args = make_daxpy(soc, 64, rng);
  EXPECT_THROW(soc.runtime().offload_async(args, 5, nullptr), std::invalid_argument);
}

TEST(OffloadRuntime, ConcurrentOffloadRejected) {
  Soc soc(SocConfig::extended(4));
  sim::Rng rng(10);
  const auto args = make_daxpy(soc, 64, rng);
  soc.runtime().offload_async(args, 2, nullptr);
  EXPECT_THROW(soc.runtime().offload_async(args, 2, nullptr), std::logic_error);
}

TEST(OffloadRuntime, InvalidArgsRejectedBeforeAnySideEffect) {
  Soc soc(SocConfig::extended(4));
  kernels::JobArgs bad;
  bad.kernel_id = kernels::kDaxpyId;
  bad.n = 0;
  EXPECT_THROW(soc.runtime().offload_async(bad, 2, nullptr), std::invalid_argument);
  EXPECT_FALSE(soc.runtime().busy());
  EXPECT_EQ(soc.simulator().pending(), 0u);
}

TEST(OffloadRuntime, MulticastConfigWithoutHardwareThrows) {
  SocConfig cfg = SocConfig::baseline(4);
  cfg.runtime.use_multicast = true;  // runtime asks for HW that is not there
  EXPECT_THROW(Soc{cfg}, std::invalid_argument);
}

TEST(OffloadRuntime, SequentialOffloadsOnOneSoc) {
  Soc soc(SocConfig::extended(8));
  sim::Rng rng(11);
  const auto a1 = make_daxpy(soc, 128, rng);
  const auto a2 = make_daxpy(soc, 128, rng);
  const auto r1 = soc.run_offload(a1, 8);
  const auto r2 = soc.run_offload(a2, 8);
  EXPECT_EQ(soc.runtime().offloads_completed(), 2u);
  EXPECT_NE(r1.job_id, r2.job_id);
  // Identical jobs cost identical cycles regardless of when they start.
  EXPECT_EQ(r1.total(), r2.total());
}

TEST(OffloadRuntime, JobIdsIncrease) {
  Soc soc(SocConfig::baseline(2));
  sim::Rng rng(12);
  const auto r1 = soc.run_offload(make_daxpy(soc, 64, rng), 2);
  const auto r2 = soc.run_offload(make_daxpy(soc, 64, rng), 2);
  EXPECT_LT(r1.job_id, r2.job_id);
}

TEST(OffloadRuntime, DotEpilogueCombinesOnHost) {
  Soc soc(SocConfig::extended(8));
  const auto r = run_verified(soc, "dot", 512, 8, /*seed=*/13, /*tolerance=*/1e-9);
  // Reduction epilogue shows up as extra host cycles after completion.
  EXPECT_GT(r.phases().epilogue, soc.config().runtime.return_cycles);
}

// Ablation wiring: each feature flips its mechanism independently.
TEST(OffloadRuntime, MulticastOnlyConfiguration) {
  Soc soc(SocConfig::with_features(8, SocFeatures{true, false}));
  sim::Rng rng(14);
  soc.run_offload(make_daxpy(soc, 256, rng), 8);
  EXPECT_EQ(soc.interconnect().multicasts_sent(), 1u);
  EXPECT_GT(soc.host().polls(), 0u);  // still software completion
}

TEST(OffloadRuntime, HwSyncOnlyConfiguration) {
  Soc soc(SocConfig::with_features(8, SocFeatures{false, true}));
  sim::Rng rng(15);
  soc.run_offload(make_daxpy(soc, 256, rng), 8);
  EXPECT_EQ(soc.interconnect().unicasts_sent(), 8u);
  EXPECT_EQ(soc.host().irqs_taken(), 1u);
}

// ---- host-fallback execution path -------------------------------------------

TEST(HostExecution, ComputesSameResultAsOffload) {
  // Run the same prepared job once offloaded and once on the host; both must
  // satisfy the workload oracle (same arithmetic via MemView).
  for (const char* kernel : {"daxpy", "vecmul", "dot", "gemv"}) {
    Soc off_soc(SocConfig::extended(8));
    sim::Rng rng1(21);
    auto job1 = prepare_workload(off_soc, off_soc.kernels().by_name(kernel),
                                 kernel == std::string("gemv") ? 64 : 512, 8, rng1);
    off_soc.run_offload(job1.args, 8);
    EXPECT_LT(job1.max_abs_error(off_soc), 1e-9) << kernel << " offload";

    Soc host_soc(SocConfig::extended(8));
    sim::Rng rng2(21);
    auto job2 = prepare_workload(host_soc, host_soc.kernels().by_name(kernel),
                                 kernel == std::string("gemv") ? 64 : 512, 8, rng2);
    host_soc.runtime().execute_on_host_blocking(job2.args);
    EXPECT_LT(job2.max_abs_error(host_soc), 1e-9) << kernel << " host";
  }
}

TEST(HostExecution, CostMatchesKernelHostModel) {
  Soc soc(SocConfig::extended(4));
  sim::Rng rng(22);
  const auto args = make_daxpy(soc, 256, rng);
  const auto r = soc.runtime().execute_on_host_blocking(args);
  const auto& cfg = soc.config().runtime;
  const sim::Cycles expected = cfg.host_call_cycles +
                               soc.kernels().by_id(args.kernel_id).host_execute_cycles(args) +
                               cfg.host_return_cycles;
  EXPECT_EQ(r.total(), expected);
}

TEST(HostExecution, SlowerThanOffloadForLargeN) {
  Soc host_soc(SocConfig::extended(16));
  sim::Rng rng(23);
  const auto args = make_daxpy(host_soc, 4096, rng);
  const auto host = host_soc.runtime().execute_on_host_blocking(args);
  Soc off_soc(SocConfig::extended(16));
  sim::Rng rng2(23);
  const auto args2 = make_daxpy(off_soc, 4096, rng2);
  const auto off = off_soc.run_offload(args2, 16);
  EXPECT_GT(host.total(), off.total());
}

TEST(HostExecution, FasterThanOffloadForTinyN) {
  Soc host_soc(SocConfig::extended(16));
  sim::Rng rng(24);
  const auto host = host_soc.runtime().execute_on_host_blocking(make_daxpy(host_soc, 16, rng));
  Soc off_soc(SocConfig::extended(16));
  sim::Rng rng2(24);
  const auto off = off_soc.run_offload(make_daxpy(off_soc, 16, rng2), 16);
  EXPECT_LT(host.total(), off.total());
}

TEST(HostExecution, ValidatesArguments) {
  Soc soc(SocConfig::extended(4));
  kernels::JobArgs bad;
  bad.kernel_id = kernels::kDaxpyId;
  bad.n = 0;
  EXPECT_THROW(soc.runtime().execute_on_host_blocking(bad), std::invalid_argument);
}

// ---- TCDM tiling through the full offload path --------------------------------

TEST(Tiling, LargeJobOnFewClustersIsCorrectAndTiled) {
  Soc soc(SocConfig::extended(2));
  const auto r = run_verified(soc, "daxpy", 32768, 2, 31);
  EXPECT_GT(soc.cluster(0).last_job_tiles(), 1u);
  EXPECT_EQ(r.n, 32768u);
}

TEST(Tiling, TiledRuntimeStillBeatsBaseline) {
  const auto base = run_daxpy(SocConfig::baseline(2), 32768, 2, 31);
  const auto ext = run_daxpy(SocConfig::extended(2), 32768, 2, 31);
  EXPECT_LT(ext.total(), base.total());
}

TEST(Tiling, DoubleBufferingPrefetchesAndSpeedsUpTiledJobs) {
  // Same huge job, single- vs double-buffered tiling: both must be correct;
  // double buffering overlaps tile k+1's DMA-in with tile k's compute and
  // must be strictly faster.
  sim::Cycles single = 0, dbuf = 0;
  for (const bool db : {false, true}) {
    SocConfig cfg = SocConfig::extended(1);
    cfg.cluster.dma_double_buffer = db;
    Soc soc(cfg);
    const auto r = run_verified(soc, "daxpy", 32768, 1, 41);
    EXPECT_GE(soc.cluster(0).last_job_tiles(), db ? 8u : 4u);
    (db ? dbuf : single) = r.total();
  }
  EXPECT_LT(dbuf, single);
}

TEST(Tiling, DoubleBufferingCorrectAcrossKernelsAndSizes) {
  SocConfig cfg = SocConfig::extended(2);
  cfg.cluster.dma_double_buffer = true;
  for (const char* k : {"daxpy", "scale", "vecadd", "memcpy"}) {
    for (const std::uint64_t n : {16381ull, 32768ull}) {
      Soc soc(cfg);
      EXPECT_NO_THROW(run_verified(soc, k, n, 2, 43)) << k << " n=" << n;
    }
  }
}

TEST(Tiling, DoubleBufferingNoEffectOnUntiledJobs) {
  sim::Cycles plain = 0, db = 0;
  for (const bool on : {false, true}) {
    SocConfig cfg = SocConfig::extended(8);
    cfg.cluster.dma_double_buffer = on;
    Soc soc(cfg);
    (on ? db : plain) = run_verified(soc, "daxpy", 1024, 8, 44).total();
  }
  EXPECT_EQ(plain, db);  // job fits TCDM: identical schedule
}

TEST(Tiling, DataVolumeUnchangedByTiling) {
  // Tiling reorganizes transfers but must not move more bytes.
  Soc soc(SocConfig::extended(1));
  run_verified(soc, "daxpy", 16384, 1, 31);
  EXPECT_EQ(soc.cluster(0).dma().bytes_moved(), 3ull * 16384 * 8);
}

TEST(OffloadRuntime, WatchdogCatchesNonCompletingOffload) {
  SocConfig cfg = SocConfig::baseline(4);
  cfg.runtime.watchdog_cycles = 50;  // way below any real offload latency
  Soc soc(cfg);
  sim::Rng rng(99);
  const auto args = make_daxpy(soc, 1024, rng);
  try {
    soc.run_offload(args, 4);
    FAIL() << "expected watchdog";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}

// ---- back-to-back offload sequences -------------------------------------------

std::vector<kernels::JobArgs> make_job_train(Soc& soc, unsigned count, std::uint64_t n,
                                             sim::Rng& rng) {
  std::vector<kernels::JobArgs> jobs;
  for (unsigned i = 0; i < count; ++i) jobs.push_back(make_daxpy(soc, n, rng));
  return jobs;
}

TEST(OffloadSequence, RunsAllJobsInOrder) {
  Soc soc(SocConfig::extended(8));
  sim::Rng rng(31);
  const auto r = soc.runtime().offload_sequence_blocking(make_job_train(soc, 4, 256, rng), 8,
                                                         /*pipelined=*/false);
  ASSERT_EQ(r.jobs.size(), 4u);
  for (std::size_t i = 1; i < r.jobs.size(); ++i) {
    EXPECT_GT(r.jobs[i].dispatched, r.jobs[i - 1].completed);
    EXPECT_LT(r.jobs[i - 1].job_id, r.jobs[i].job_id);
  }
  EXPECT_EQ(soc.runtime().offloads_completed(), 4u);
}

TEST(OffloadSequence, PipeliningHidesMarshalOfAllButFirstJob) {
  const unsigned jobs = 6;
  sim::Cycles serial = 0, pipelined = 0;
  for (const bool pipe : {false, true}) {
    Soc soc(SocConfig::extended(8));
    sim::Rng rng(32);
    const auto r = soc.runtime().offload_sequence_blocking(
        make_job_train(soc, jobs, 1024, rng), 8, pipe);
    (pipe ? pipelined : serial) = r.total();
  }
  EXPECT_LT(pipelined, serial);
  // Saving should be ~(jobs-1) * marshal cost (6 payload words => 96+18).
  const Soc probe(SocConfig::extended(8));
  const auto& rc = probe.config().runtime;
  const sim::Cycles marshal = rc.marshal_base_cycles + rc.marshal_per_word_cycles * 6;
  EXPECT_NEAR(static_cast<double>(serial - pipelined),
              static_cast<double>((jobs - 1) * marshal), 8.0 * jobs);
}

TEST(OffloadSequence, PipelinedResultsStillCorrect) {
  Soc soc(SocConfig::extended(8));
  sim::Rng rng(33);
  // Jobs chained on the same arrays: prepare manually so we can verify the
  // final composition y = a2*x + (a1*x + y0).
  const std::uint64_t n = 128;
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  const mem::Addr xa = soc.alloc_f64(x);
  const mem::Addr ya = soc.alloc_f64(y);
  kernels::JobArgs j1;
  j1.kernel_id = kernels::kDaxpyId;
  j1.n = n;
  j1.alpha = 2.0;
  j1.in0 = xa;
  j1.out0 = ya;
  kernels::JobArgs j2 = j1;
  j2.alpha = -0.5;
  soc.runtime().offload_sequence_blocking({j1, j2}, 8, /*pipelined=*/true);
  const auto got = soc.read_f64(ya, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(got[i], -0.5 * x[i] + (2.0 * x[i] + y[i])) << i;
  }
}

TEST(OffloadSequence, WorksOnBaselineDesignToo) {
  Soc soc(SocConfig::baseline(4));
  sim::Rng rng(34);
  const auto r = soc.runtime().offload_sequence_blocking(make_job_train(soc, 3, 256, rng), 4,
                                                         /*pipelined=*/true);
  EXPECT_EQ(r.jobs.size(), 3u);
  EXPECT_EQ(soc.shared_counter().amos_serviced(), 3u * 4u);
}

TEST(OffloadSequence, MixedKernelsInOneTrain) {
  Soc soc(SocConfig::extended(8));
  sim::Rng rng(35);
  auto j1 = prepare_workload(soc, soc.kernels().by_name("scale"), 200, 8, rng);
  auto j2 = prepare_workload(soc, soc.kernels().by_name("vecsum"), 200, 8, rng);
  const auto r =
      soc.runtime().offload_sequence_blocking({j1.args, j2.args}, 8, /*pipelined=*/true);
  EXPECT_EQ(r.jobs[0].kernel, "scale");
  EXPECT_EQ(r.jobs[1].kernel, "vecsum");
  EXPECT_LT(j1.max_abs_error(soc), 1e-9);
  EXPECT_LT(j2.max_abs_error(soc), 1e-9);
}

TEST(OffloadSequence, EmptyTrainRejected) {
  Soc soc(SocConfig::extended(4));
  EXPECT_THROW(soc.runtime().offload_sequence_blocking({}, 4, false), std::invalid_argument);
}

TEST(OffloadSequence, SequenceEquivalentToSingleOffloadsWhenNotPipelined) {
  sim::Cycles seq_total = 0, singles_total = 0;
  {
    Soc soc(SocConfig::extended(8));
    sim::Rng rng(36);
    seq_total =
        soc.runtime().offload_sequence_blocking(make_job_train(soc, 3, 512, rng), 8, false)
            .total();
  }
  {
    Soc soc(SocConfig::extended(8));
    sim::Rng rng(36);
    const auto jobs = make_job_train(soc, 3, 512, rng);
    const sim::Cycle t0 = soc.simulator().now();
    for (const auto& j : jobs) soc.run_offload(j, 8);
    singles_total = soc.simulator().now() - t0;
  }
  EXPECT_EQ(seq_total, singles_total);
}

}  // namespace
