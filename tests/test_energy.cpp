// Unit/integration tests for the energy model extension.
#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using namespace mco::energy;

TEST(EnergyCounters, SnapshotDeltaIsPerOffload) {
  soc::Soc soc(soc::SocConfig::extended(4));
  const EnergyCounters before = snapshot(soc);
  soc::run_verified(soc, "daxpy", 256, 4);
  const EnergyCounters after = snapshot(soc);
  const EnergyCounters d = after - before;
  EXPECT_EQ(d.hbm_beats, 3ull * 256);
  EXPECT_EQ(d.credits, 4u);
  EXPECT_EQ(d.irqs, 1u);
  EXPECT_EQ(d.amos, 0u);
  EXPECT_EQ(d.polls, 0u);
  EXPECT_GT(d.host_busy_cycles, 0u);
  EXPECT_GT(d.worker_busy_cycles, 0u);
}

TEST(EnergyCounters, BaselineShowsAmosAndPolls) {
  soc::Soc soc(soc::SocConfig::baseline(4));
  soc::run_verified(soc, "daxpy", 256, 4);
  const EnergyCounters c = snapshot(soc);
  EXPECT_EQ(c.amos, 4u);
  EXPECT_GT(c.polls, 0u);
  EXPECT_EQ(c.credits, 0u);
  EXPECT_EQ(c.irqs, 0u);
}

TEST(EnergyEstimate, TotalIsSumOfBreakdown) {
  EnergyCounters d;
  d.host_busy_cycles = 100;
  d.worker_busy_cycles = 800;
  d.hbm_beats = 768;
  d.dispatch_words = 24;
  d.credits = 4;
  d.irqs = 1;
  const EnergyReport r = estimate(EnergyConfig{}, d, 1000, 4, 8);
  const double sum = r.host_active_pj + r.host_idle_pj + r.workers_active_pj +
                     r.workers_idle_pj + r.hbm_pj + r.dispatch_pj + r.completion_pj +
                     r.leakage_pj;
  EXPECT_DOUBLE_EQ(r.total_pj(), sum);
  EXPECT_GT(r.total_pj(), 0.0);
}

TEST(EnergyEstimate, HandComputedComponents) {
  EnergyConfig cfg;
  cfg.host_active_cycle_pj = 10;
  cfg.host_idle_cycle_pj = 1;
  cfg.hbm_beat_pj = 100;
  cfg.cluster_leakage_cycle_pj = 2;
  EnergyCounters d;
  d.host_busy_cycles = 40;
  d.hbm_beats = 5;
  const EnergyReport r = estimate(cfg, d, 100, 3, 8);
  EXPECT_DOUBLE_EQ(r.host_active_pj, 400.0);
  EXPECT_DOUBLE_EQ(r.host_idle_pj, 60.0);  // (100-40) idle cycles
  EXPECT_DOUBLE_EQ(r.hbm_pj, 500.0);
  EXPECT_DOUBLE_EQ(r.leakage_pj, 2.0 * 100 * 3);
}

TEST(EnergyEstimate, RejectsEmptyAccelerator) {
  EXPECT_THROW(estimate(EnergyConfig{}, EnergyCounters{}, 10, 0, 8), std::invalid_argument);
  EXPECT_THROW(estimate(EnergyConfig{}, EnergyCounters{}, 10, 1, 0), std::invalid_argument);
}

TEST(EnergyMeasure, ExtendedCheaperThanBaselineAtManyClusters) {
  const EnergyConfig cfg;
  const auto base = measure_offload_energy(soc::SocConfig::baseline(32), cfg, "daxpy", 1024, 32);
  const auto ext = measure_offload_energy(soc::SocConfig::extended(32), cfg, "daxpy", 1024, 32);
  // The extended design is faster (less leakage/idle time) and replaces the
  // polling loop + atomics with cheap credits — it must win on energy too.
  EXPECT_LT(ext.report.total_pj(), base.report.total_pj());
  EXPECT_LT(ext.cycles, base.cycles);
}

TEST(EnergyMeasure, EnergyOptimalMIsBelowRuntimeOptimalM) {
  const EnergyConfig cfg;
  // Runtime-optimal M on the extended design is 32 (monotone decreasing),
  // but idle-worker + leakage energy grows with M, pushing the energy
  // optimum to fewer clusters.
  const unsigned m_e = energy_optimal_m(soc::SocConfig::extended(32), cfg, "daxpy", 1024, 32);
  EXPECT_LT(m_e, 32u);
  EXPECT_GE(m_e, 1u);
}

TEST(EnergyMeasure, EnergyGrowsWithProblemSize) {
  const EnergyConfig cfg;
  const auto small = measure_offload_energy(soc::SocConfig::extended(8), cfg, "daxpy", 256, 8);
  const auto big = measure_offload_energy(soc::SocConfig::extended(8), cfg, "daxpy", 4096, 8);
  EXPECT_GT(big.report.total_pj(), small.report.total_pj());
  EXPECT_GT(big.report.hbm_pj, small.report.hbm_pj * 10);  // data dominates growth
}

TEST(EnergyReportText, MentionsTotal) {
  EnergyReport r;
  r.hbm_pj = 5.0;
  EXPECT_NE(r.to_string().find("total"), std::string::npos);
}

TEST(EnergyEdp, ScalesWithDuration) {
  EnergyReport r;
  r.hbm_pj = 10.0;
  EXPECT_DOUBLE_EQ(r.edp(100), 1000.0);
}

}  // namespace
