// Unit tests for the host model: sequential timed execution, polling loops,
// interrupt handling, store-cost accounting.
#include <gtest/gtest.h>

#include <vector>

#include "host/host_core.h"
#include "host/interrupt_controller.h"
#include "sim/simulator.h"

namespace {

using namespace mco;
using namespace mco::host;

struct HostFixture : ::testing::Test {
  sim::Simulator sim;
  InterruptController intc{sim, "intc", 2};
  HostConfig cfg;
  HostFixture() {
    cfg.hbm_load_cycles = 36;
    cfg.poll_loop_overhead = 2;
    cfg.irq_take_cycles = 20;
    cfg.irq_handler_cycles = 52;
  }
};

TEST_F(HostFixture, ExecRunsAfterCost) {
  HostCore host(sim, "host", cfg, intc, 0);
  sim::Cycle at = 0;
  host.exec(17, [&] { at = sim.now(); });
  sim.run();
  EXPECT_EQ(at, 17u);
  EXPECT_EQ(host.busy_cycles(), 17u);
}

TEST_F(HostFixture, ExecChainsSequentially) {
  HostCore host(sim, "host", cfg, intc, 0);
  std::vector<sim::Cycle> at;
  host.exec(5, [&] {
    at.push_back(sim.now());
    host.exec(7, [&] { at.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(at, (std::vector<sim::Cycle>{5, 12}));
}

TEST_F(HostFixture, StoreCostUsesConfiguredRate) {
  HostCore host(sim, "host", cfg, intc, 0);  // default 3/2 cycles per word
  EXPECT_EQ(host.store_cost(6), 9u);
  EXPECT_EQ(host.store_cost(1), 2u);  // ceil(1.5)
  EXPECT_EQ(host.store_cost(0), 0u);
}

TEST_F(HostFixture, WaitForIrqResumesAfterTakeAndHandler) {
  HostCore host(sim, "host", cfg, intc, 0);
  sim::Cycle resumed = 0;
  host.wait_for_irq([&] { resumed = sim.now(); });
  sim.schedule_at(100, [&] { intc.raise(0); });
  sim.run();
  EXPECT_EQ(resumed, 100u + 20u + 52u);
  EXPECT_EQ(host.irqs_taken(), 1u);
}

TEST_F(HostFixture, IrqBeforeWaitIsLatched) {
  HostCore host(sim, "host", cfg, intc, 0);
  intc.raise(0);  // job finished before the host reached WFI
  sim::Cycle resumed = 0;
  sim.schedule_at(10, [&] { host.wait_for_irq([&] { resumed = sim.now(); }); });
  sim.run();
  EXPECT_EQ(resumed, 10u + 72u);
  EXPECT_TRUE(!intc.pending(0));
}

TEST_F(HostFixture, PollUntilIteratesAtFixedPeriod) {
  HostCore host(sim, "host", cfg, intc, 0);  // period 38
  bool flag = false;
  sim::Cycle detected = 0;
  sim.schedule_at(100, [&] { flag = true; });
  host.poll_until([&] { return flag; }, [&] { detected = sim.now(); });
  sim.run();
  // Polls end at 38, 76, 114; the first iteration ending at/after 100 wins.
  EXPECT_EQ(detected, 114u);
  EXPECT_EQ(host.polls(), 3u);
}

TEST_F(HostFixture, PollUntilImmediateConditionStillCostsOneIteration) {
  HostCore host(sim, "host", cfg, intc, 0);
  sim::Cycle detected = 0;
  host.poll_until([] { return true; }, [&] { detected = sim.now(); });
  sim.run();
  EXPECT_EQ(detected, 38u);
  EXPECT_EQ(host.polls(), 1u);
}

// ---- interrupt controller --------------------------------------------------

TEST(InterruptController, HandlerFiresOnRaise) {
  sim::Simulator sim;
  InterruptController intc(sim, "intc", 1);
  int hits = 0;
  intc.attach(0, [&] { ++hits; });
  intc.raise(0);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(intc.raises(), 1u);
}

TEST(InterruptController, HandlerIsOneShot) {
  sim::Simulator sim;
  InterruptController intc(sim, "intc", 1);
  int hits = 0;
  intc.attach(0, [&] { ++hits; });
  intc.raise(0);
  intc.raise(0);  // second raise latches pending, no handler
  EXPECT_EQ(hits, 1);
  EXPECT_TRUE(intc.pending(0));
}

TEST(InterruptController, PendingDeliveredOnAttach) {
  sim::Simulator sim;
  InterruptController intc(sim, "intc", 1);
  intc.raise(0);
  int hits = 0;
  intc.attach(0, [&] { ++hits; });
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(intc.pending(0));
}

TEST(InterruptController, LinesAreIndependent) {
  sim::Simulator sim;
  InterruptController intc(sim, "intc", 2);
  int a = 0, b = 0;
  intc.attach(0, [&] { ++a; });
  intc.attach(1, [&] { ++b; });
  intc.raise(1);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

TEST(InterruptController, BadLineThrows) {
  sim::Simulator sim;
  InterruptController intc(sim, "intc", 1);
  EXPECT_THROW(intc.raise(1), std::out_of_range);
  EXPECT_THROW(intc.attach(7, [] {}), std::out_of_range);
  EXPECT_THROW(InterruptController(sim, "i", 0), std::invalid_argument);
}

}  // namespace
