// Tests for the sharded serving fleet (serve/fleet.h): router admission and
// round-robin placement, same-kernel batch coalescing through the
// execute_batch seam, cross-shard work stealing (including its determinism),
// shard-scoped operator drain/restart, the per-shard serve_isolation shadows
// of check::ProtocolMonitor, and the byte-identity of the E22 fleet soak
// report across SweepRunner --jobs levels.
//
// Like test_serve.cpp, the Executor seam is scripted (FleetFakeExecutor):
// durations and batch offsets are pure functions of the job, so every test
// is an exact virtual-time schedule with hand-computable outcomes.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/protocol_monitor.h"
#include "exp/sweep_runner.h"
#include "scenario/scenario.h"
#include "scenario/scenario_runner.h"
#include "serve/fleet.h"
#include "serve/fleet_soak.h"
#include "serve/soak.h"
#include "serve/soc_executor.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace {

using namespace mco;
using serve::BatchExecutionOutcome;
using serve::ExecutionOutcome;
using serve::FleetConfig;
using serve::FleetRouter;
using serve::JobOutcome;
using serve::JobVerdict;
using serve::ServeJob;

// ---- helpers ---------------------------------------------------------------

/// Scripted executor for the fleet seam: fixed per-job duration, recorded
/// execute/execute_batch calls, optional scripted batch offsets.
class FleetFakeExecutor : public serve::Executor {
 public:
  explicit FleetFakeExecutor(sim::Cycles duration = 100) : duration_(duration) {}

  struct Call {
    std::vector<std::uint64_t> ids;  ///< one id = plain execute(); more = batch
    unsigned m = 0;
    bool probe = false;
  };
  std::vector<Call> calls;
  std::uint64_t restarts = 0;

  ExecutionOutcome execute(const ServeJob& job, unsigned m, bool probe) override {
    calls.push_back({{job.id}, m, probe});
    ExecutionOutcome out;
    out.duration = duration_;
    return out;
  }

  BatchExecutionOutcome execute_batch(const std::vector<ServeJob>& jobs, unsigned m) override {
    Call call;
    for (const ServeJob& j : jobs) call.ids.push_back(j.id);
    call.m = m;
    calls.push_back(call);
    BatchExecutionOutcome out;
    sim::Cycles offset = 0;
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      ExecutionOutcome one;
      offset += duration_;
      one.duration = offset;  // back-to-back completion offsets
      out.jobs.push_back(one);
    }
    return out;
  }

  void restart() override { ++restarts; }

 private:
  sim::Cycles duration_;
};

/// t̂(M, N) = 100 + N/M: admission math is exact integer arithmetic.
model::RuntimeModel linear_model() {
  model::RuntimeModel m;
  m.t0 = 100.0;
  m.b = 1.0;
  return m;
}

FleetConfig config(unsigned shards, unsigned clusters_per_shard, std::size_t max_batch = 4,
                   bool stealing = true) {
  FleetConfig cfg;
  cfg.num_shards = shards;
  cfg.clusters_per_shard = clusters_per_shard;
  cfg.model = linear_model();
  cfg.max_batch = max_batch;
  cfg.stealing = stealing;
  return cfg;
}

ServeJob job(std::uint64_t id, std::uint64_t n, sim::Cycle arrival, sim::Cycles t_max,
             unsigned priority = 0) {
  ServeJob j;
  j.id = id;
  j.n = n;
  j.arrival = arrival;
  j.t_max = t_max;
  j.priority = priority;
  return j;
}

/// Feed one synthetic who=="serve" instant into a monitor.
void feed(check::ProtocolMonitor& mon, sim::Cycle t, const std::string& what,
          const std::string& detail) {
  sim::TraceRecord rec;
  rec.time = t;
  rec.who = "serve";
  rec.what = what;
  rec.detail = detail;
  rec.phase = sim::TracePhase::kInstant;
  mon.observe(rec);
}

// ---- construction ----------------------------------------------------------

TEST(FleetConfigValidation, RejectsBadShapes) {
  FleetFakeExecutor e0, e1;
  FleetConfig zero_shards = config(0, 2);
  EXPECT_THROW(FleetRouter(zero_shards, {&e0}), std::invalid_argument);
  FleetConfig two = config(2, 2);
  EXPECT_THROW(FleetRouter(two, {&e0}), std::invalid_argument);         // count mismatch
  EXPECT_THROW(FleetRouter(two, {&e0, nullptr}), std::invalid_argument);  // null executor
  EXPECT_NO_THROW(FleetRouter(two, {&e0, &e1}));
}

// ---- placement -------------------------------------------------------------

TEST(FleetPlacement, RoundRobinOverShards) {
  FleetFakeExecutor e0, e1;
  FleetRouter fleet(config(2, 2), {&e0, &e1});
  // Four independent jobs, each fitting one cluster, arriving far apart.
  std::vector<ServeJob> jobs;
  for (std::uint64_t i = 0; i < 4; ++i) jobs.push_back(job(i + 1, 100, i * 1000, 5000));
  const std::vector<JobOutcome> out = fleet.run(jobs);
  for (const JobOutcome& o : out) EXPECT_EQ(o.verdict, JobVerdict::kMet);
  ASSERT_EQ(e0.calls.size(), 2u);
  ASSERT_EQ(e1.calls.size(), 2u);
  EXPECT_EQ(e0.calls[0].ids, std::vector<std::uint64_t>{1});
  EXPECT_EQ(e1.calls[0].ids, std::vector<std::uint64_t>{2});
  EXPECT_EQ(e0.calls[1].ids, std::vector<std::uint64_t>{3});
  EXPECT_EQ(e1.calls[1].ids, std::vector<std::uint64_t>{4});
}

TEST(FleetAdmission, UnmeetableDeadlineShedsAgainstFleetCap) {
  FleetFakeExecutor e0, e1;
  FleetRouter fleet(config(2, 2), {&e0, &e1});
  // t̂(2, 1000) = 600 > 500: even the whole healthiest shard cannot make it.
  const std::vector<JobOutcome> out = fleet.run({job(1, 1000, 0, 500)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kShed);
  EXPECT_EQ(out[0].reason, "deadline_unmeetable");
  EXPECT_TRUE(e0.calls.empty());
  EXPECT_TRUE(e1.calls.empty());
}

// ---- batching --------------------------------------------------------------

TEST(FleetBatching, CoalescesSameKernelQueueMates) {
  FleetFakeExecutor exec;
  FleetRouter fleet(config(1, 2), {&exec});
  // Every job needs the whole shard: t̂(1, 1000) = 1100 > 700 ≥ t̂(2, 1000).
  // Job 1 dispatches alone; 2..4 queue behind it and coalesce into one batch
  // when the shard frees at t = 100.
  std::vector<ServeJob> jobs;
  jobs.push_back(job(1, 1000, 0, 700));
  for (std::uint64_t i = 2; i <= 4; ++i) jobs.push_back(job(i, 1000, i, 900));
  const std::vector<JobOutcome> out = fleet.run(jobs);

  ASSERT_EQ(exec.calls.size(), 2u);
  EXPECT_EQ(exec.calls[0].ids, std::vector<std::uint64_t>{1});  // batch of 1 = plain execute
  EXPECT_EQ(exec.calls[1].ids, (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(exec.calls[1].m, 2u);

  // Completions fan out per job from the batch offsets (100, 200, 300 past
  // the dispatch at t = 100), and every deadline holds.
  EXPECT_EQ(out[1].end, 200u);
  EXPECT_EQ(out[2].end, 300u);
  EXPECT_EQ(out[3].end, 400u);
  for (const JobOutcome& o : out) EXPECT_EQ(o.verdict, JobVerdict::kMet);
  EXPECT_EQ(fleet.batches(), 1u);
  EXPECT_EQ(fleet.batched_jobs(), 3u);
  // The batch partition was released exactly once, at the last retirement.
  EXPECT_EQ(fleet.allocator(0).free_count(), 2u);
}

TEST(FleetBatching, MaxBatchOneDisablesCoalescing) {
  FleetFakeExecutor exec;
  FleetRouter fleet(config(1, 2, /*max_batch=*/1), {&exec});
  std::vector<ServeJob> jobs;
  jobs.push_back(job(1, 1000, 0, 700));
  for (std::uint64_t i = 2; i <= 4; ++i) jobs.push_back(job(i, 1000, i, 2000));
  fleet.run(jobs);
  ASSERT_EQ(exec.calls.size(), 4u);
  for (const FleetFakeExecutor::Call& c : exec.calls) EXPECT_EQ(c.ids.size(), 1u);
  EXPECT_EQ(fleet.batches(), 0u);
}

TEST(FleetBatching, DifferentKernelsDoNotCoalesce) {
  FleetFakeExecutor exec;
  FleetRouter fleet(config(1, 2), {&exec});
  std::vector<ServeJob> jobs;
  jobs.push_back(job(1, 1000, 0, 700));
  jobs.push_back(job(2, 1000, 2, 2000));
  ServeJob other = job(3, 1000, 3, 2000);
  other.kernel = "axpy_strided";
  jobs.push_back(other);
  fleet.run(jobs);
  // Job 2 dispatches at t = 100; job 3's kernel differs, so it waits for the
  // next free-up instead of riding along.
  ASSERT_EQ(exec.calls.size(), 3u);
  EXPECT_EQ(exec.calls[1].ids, std::vector<std::uint64_t>{2});
  EXPECT_EQ(exec.calls[2].ids, std::vector<std::uint64_t>{3});
}

// ---- work stealing ---------------------------------------------------------

/// Shared stealing fixture: every job needs a whole 2-cluster shard
/// (t̂(1, 1000) = 1100 > 1000 ≥ 600 = t̂(2, 1000)). Round-robin sends jobs
/// 1 and 3 to shard 0, jobs 2 and 4 to shard 1; shard 1's fake runs 20x
/// longer, so job 2 wedges it and job 4 queues behind.
std::vector<ServeJob> steal_jobs() {
  std::vector<ServeJob> jobs;
  for (std::uint64_t i = 0; i < 4; ++i) jobs.push_back(job(i + 1, 1000, i, 1000));
  return jobs;
}

TEST(FleetStealing, IdleShardPullsFromLongestBacklog) {
  FleetFakeExecutor fast;
  FleetFakeExecutor slow(2000);
  FleetRouter fleet(config(2, 2, /*max_batch=*/1), {&fast, &slow});
  const std::vector<JobOutcome> out = fleet.run(steal_jobs());
  // Shard 0 drains its own backlog at t = 200, goes idle, and pulls job 4
  // off the wedged shard — it makes its deadline on the thief.
  EXPECT_EQ(fleet.steals(), 1u);
  EXPECT_EQ(out[0].verdict, JobVerdict::kMet);
  EXPECT_EQ(out[1].verdict, JobVerdict::kMissed);  // the monster itself
  EXPECT_EQ(out[2].verdict, JobVerdict::kMet);
  EXPECT_EQ(out[3].verdict, JobVerdict::kMet);
  std::vector<std::uint64_t> shard0_ids;
  for (const FleetFakeExecutor::Call& c : fast.calls) shard0_ids.push_back(c.ids[0]);
  EXPECT_EQ(shard0_ids, (std::vector<std::uint64_t>{1, 3, 4}));
  ASSERT_EQ(slow.calls.size(), 1u);
  EXPECT_EQ(slow.calls[0].ids, std::vector<std::uint64_t>{2});
}

TEST(FleetStealing, OffMeansShardsServeOnlyTheirOwnQueue) {
  FleetFakeExecutor fast;
  FleetFakeExecutor slow(2000);
  FleetRouter fleet(config(2, 2, /*max_batch=*/1, /*stealing=*/false), {&fast, &slow});
  const std::vector<JobOutcome> out = fleet.run(steal_jobs());
  EXPECT_EQ(fleet.steals(), 0u);
  // Job 4 was stuck behind the monster on its routed shard: by the time the
  // shard freed up, its deadline had lapsed in the queue.
  EXPECT_EQ(out[3].verdict, JobVerdict::kShed);
  EXPECT_EQ(out[3].reason, "deadline_expired");
  ASSERT_EQ(slow.calls.size(), 1u);
  EXPECT_EQ(slow.calls[0].ids, std::vector<std::uint64_t>{2});
}

TEST(FleetStealing, StealOrderIsAPureFunctionOfTheTrace) {
  // Two independent replays of the same saturating seeded trace must emit
  // byte-identical serve_steal sequences (and there must be some to compare).
  serve::SoakTraceConfig tc = serve::fleet_trace_config(200);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  auto replay = [&]() {
    std::vector<std::unique_ptr<serve::SocExecutor>> execs;
    std::vector<serve::Executor*> ptrs;
    for (unsigned s = 0; s < 2; ++s) {
      serve::SocExecutorConfig xc;
      xc.soc = soc::SocConfig::extended(cfg.clusters_per_shard);
      xc.tolerance = cfg.tolerance;
      xc.workload_seed = cfg.workload_seed + s;
      xc.crash_penalty_cycles = cfg.crash_penalty_cycles;
      execs.push_back(std::make_unique<serve::SocExecutor>(xc));
      ptrs.push_back(execs.back().get());
    }
    serve::FleetConfig fc;
    fc.num_shards = 2;
    fc.clusters_per_shard = cfg.clusters_per_shard;
    fc.model = cfg.model;
    fc.max_queue = cfg.max_queue;
    fc.max_clusters_per_job = cfg.max_clusters_per_job;
    fc.health = cfg.health;
    FleetRouter fleet(fc, ptrs);
    std::vector<std::string> steals;
    fleet.trace().set_observer([&steals](const sim::TraceRecord& rec) {
      if (rec.what == "serve_steal")
        steals.push_back(std::to_string(rec.time) + " " + rec.detail);
    });
    fleet.run(trace);
    return steals;
  };
  const std::vector<std::string> first = replay();
  const std::vector<std::string> second = replay();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---- operators -------------------------------------------------------------

TEST(FleetOperators, DrainIsShardScoped) {
  FleetFakeExecutor e0, e1;
  FleetRouter fleet(config(2, 2, /*max_batch=*/1), {&e0, &e1});
  fleet.schedule_operator(0, serve::OperatorAction::kDrain, 0);
  std::vector<ServeJob> jobs;
  for (std::uint64_t i = 0; i < 4; ++i) jobs.push_back(job(i + 1, 100, i * 10 + 1, 5000));
  const std::vector<JobOutcome> out = fleet.run(jobs);
  for (const JobOutcome& o : out) EXPECT_EQ(o.verdict, JobVerdict::kMet);
  // Shard 0 refused admission for the whole run; shard 1 served everything.
  EXPECT_TRUE(e0.calls.empty());
  EXPECT_EQ(e1.calls.size(), 4u);
  EXPECT_TRUE(fleet.draining(0));
  EXPECT_FALSE(fleet.draining(1));
}

TEST(FleetOperators, AllShardsDrainingShedsArrivals) {
  FleetFakeExecutor e0;
  FleetRouter fleet(config(1, 2), {&e0});
  fleet.schedule_operator(0, serve::OperatorAction::kDrain, 0);
  const std::vector<JobOutcome> out = fleet.run({job(1, 100, 5, 5000)});
  EXPECT_EQ(out[0].verdict, JobVerdict::kShed);
  EXPECT_EQ(out[0].reason, "operator_shed");
}

TEST(FleetOperators, RestartAbortsInFlightWorkOnThatShardOnly) {
  FleetFakeExecutor e0(1000), e1(1000);
  FleetRouter fleet(config(2, 2), {&e0, &e1});
  fleet.schedule_operator(500, serve::OperatorAction::kRestart, 0);
  std::vector<ServeJob> jobs;
  jobs.push_back(job(1, 1000, 0, 90'000));  // -> shard 0, aborted at t = 500
  jobs.push_back(job(2, 1000, 1, 90'000));  // -> shard 1, completes at 1001
  const std::vector<JobOutcome> out = fleet.run(jobs);
  EXPECT_EQ(out[0].verdict, JobVerdict::kFailed);
  EXPECT_EQ(out[0].reason, "restarted");
  EXPECT_EQ(out[1].verdict, JobVerdict::kMet);
  EXPECT_EQ(fleet.restarts(), 1u);
  EXPECT_EQ(e0.restarts, 1u);
  EXPECT_EQ(e1.restarts, 0u);
  // Shard 0's partition was released by the abort; its clusters re-entered
  // through probation (the run only ends once the probe chain settles).
  EXPECT_EQ(fleet.allocator(0).free_count(), 2u);
}

TEST(FleetOperators, DoubleDrainThrowsAtFireTime) {
  FleetFakeExecutor e0;
  FleetRouter fleet(config(1, 2), {&e0});
  fleet.schedule_operator(0, serve::OperatorAction::kDrain, 0);
  fleet.schedule_operator(1, serve::OperatorAction::kDrain, 0);
  EXPECT_THROW(fleet.run({job(1, 100, 5, 5000)}), std::logic_error);
}

// ---- per-shard monitor shadows ---------------------------------------------

TEST(FleetMonitor, SameClusterOnDifferentShardsIsDisjoint) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=2 batch=1 clusters=0,1");
  feed(mon, 11, "serve_dispatch", "job=2 shard=1 m=2 batch=1 clusters=0,1");
  feed(mon, 20, "serve_complete", "job=1 shard=0 clusters=0,1");
  feed(mon, 21, "serve_complete", "job=2 shard=1 clusters=0,1");
  mon.finish();
  EXPECT_TRUE(mon.clean());
}

TEST(FleetMonitor, DoubleOccupancyOnOneShardIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=1 m=2 batch=1 clusters=0,1");
  feed(mon, 11, "serve_dispatch", "job=2 shard=1 m=2 batch=1 clusters=1,2");
  mon.finish();
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

TEST(FleetMonitor, RecordsWithoutShardKeyShadowAsShardZero) {
  check::ProtocolMonitor mon;
  // Legacy OffloadService records (no shard key) and explicit shard=0
  // records land on the same shadow: overlap is a violation.
  feed(mon, 10, "serve_dispatch", "job=1 m=2 clusters=0,1");
  feed(mon, 11, "serve_dispatch", "job=2 shard=0 m=2 batch=1 clusters=1,2");
  mon.finish();
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

TEST(FleetMonitor, BatchIntermediateCompletionsHoldThePartition) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 shard=0 m=2 batch=2 clusters=0,1");
  // Intermediate retirement: no clusters key, nothing released.
  feed(mon, 20, "serve_complete", "job=1 shard=0 batch_pos=0");
  feed(mon, 25, "serve_dispatch", "job=3 shard=0 m=1 batch=1 clusters=0");
  mon.finish();
  // Cluster 0 was still held by the batch when job 3 grabbed it, and it was
  // never released before the end of the run.
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

// ---- the real executor seam ------------------------------------------------

TEST(FleetSocExecutor, BatchOffsetsAreNonDecreasingAndPipelined) {
  serve::SocExecutorConfig xc;
  xc.soc = soc::SocConfig::extended(4);
  serve::SocExecutor exec(xc);
  std::vector<ServeJob> batch;
  for (std::uint64_t i = 1; i <= 3; ++i) batch.push_back(job(i, 512, 0, 0));
  const BatchExecutionOutcome out = exec.execute_batch(batch, 2);
  ASSERT_EQ(out.jobs.size(), 3u);
  EXPECT_GT(out.jobs[0].duration, 0u);
  for (std::size_t k = 1; k < out.jobs.size(); ++k)
    EXPECT_GE(out.jobs[k].duration, out.jobs[k - 1].duration);
  for (const ExecutionOutcome& o : out.jobs) EXPECT_TRUE(o.ok);
}

// ---- fleet scenarios (shards header + shard-scoped verbs) ------------------

TEST(FleetScenario, ShardScopedVerbsParse) {
  const scenario::ScenarioSpec s = scenario::load_scenario_text(
      "name = fleet\nshards = 2\nclusters = 2\nhorizon = 40000\n"
      "at 0 traffic steady unmeetable=0\n"
      "at 1000 drain shard=1\n"
      "at 2000 undrain shard=1\n"
      "at 3000 restart shard=0\n"
      "at 4000 drain\n"
      "at 5000 undrain\n"
      "expect violations == 0\n");
  EXPECT_EQ(s.shards, 2u);
  ASSERT_EQ(s.events.size(), 6u);
  EXPECT_EQ(s.events[1].kind, scenario::ScenarioEventKind::kDrain);
  EXPECT_EQ(s.events[1].shard, 1u);
  EXPECT_EQ(s.events[2].shard, 1u);
  EXPECT_EQ(s.events[3].kind, scenario::ScenarioEventKind::kRestart);
  EXPECT_EQ(s.events[3].shard, 0u);
  EXPECT_EQ(s.events[4].shard, 0u);  // no arg = shard 0
}

TEST(FleetScenario, RejectsShardOutOfRange) {
  EXPECT_THROW(scenario::load_scenario_text(
                   "shards = 2\nclusters = 2\nhorizon = 40000\n"
                   "at 0 traffic steady\nat 1000 drain shard=2\n"),
               std::invalid_argument);
}

TEST(FleetScenario, DrainPairingIsPerShard) {
  // Draining shard 0 then shard 1 is fine; re-draining shard 1 is not.
  EXPECT_NO_THROW(scenario::load_scenario_text(
      "shards = 2\nclusters = 2\nhorizon = 40000\nat 0 traffic steady\n"
      "at 1000 drain shard=0\nat 2000 drain shard=1\n"));
  EXPECT_THROW(scenario::load_scenario_text(
                   "shards = 2\nclusters = 2\nhorizon = 40000\nat 0 traffic steady\n"
                   "at 1000 drain shard=1\nat 2000 drain shard=1\n"),
               std::invalid_argument);
  EXPECT_THROW(scenario::load_scenario_text(
                   "shards = 2\nclusters = 2\nhorizon = 40000\nat 0 traffic steady\n"
                   "at 1000 undrain shard=1\n"),
               std::invalid_argument);
}

TEST(FleetScenario, TinyFleetEpisodeRunsCleanAndJudges) {
  const scenario::ScenarioSpec s = scenario::load_scenario_text(
      "name = tiny_fleet\nshards = 2\nclusters = 2\nhorizon = 40000\n"
      "at 0 traffic steady unmeetable=0\n"
      "at 5000 drain shard=1\n"
      "at 12000 undrain shard=1\n"
      "expect jobs > 0\nexpect violations == 0\nexpect drains == 1\n");
  const scenario::ScenarioResult r = scenario::run_scenario(s, {});
  EXPECT_EQ(r.name, "tiny_fleet");
  EXPECT_GT(r.jobs, 0u);
  EXPECT_EQ(r.soc_violations + r.serve_violations, 0u);
  EXPECT_EQ(r.drains, 1u);
  for (const auto& v : r.verdicts) EXPECT_TRUE(v.passed) << v.text;
  EXPECT_TRUE(r.passed);
  // The fleet path feeds the same byte-stable report schema.
  const std::string doc = scenario::scenario_report_json({r});
  EXPECT_NE(doc.find("\"name\": \"tiny_fleet\""), std::string::npos);
  EXPECT_EQ(doc, scenario::scenario_report_json({r}));
}

// ---- metrics & soak report -------------------------------------------------

TEST(FleetMetrics, InventoryIsRegisteredEagerly) {
  sim::StatsRegistry stats;
  serve::register_fleet_metrics(stats);
  for (const char* name : {"fleet.jobs_submitted", "fleet.jobs_dispatched", "fleet.steals",
                           "fleet.batches", "fleet.batched_jobs", "fleet.drain.entered",
                           "fleet.restarts"}) {
    EXPECT_EQ(stats.counter(name).value(), 0u) << name;
  }
}

TEST(FleetSoak, ReportIsByteIdenticalAcrossJobsLevels) {
  serve::SoakTraceConfig tc = serve::fleet_trace_config(120);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  const std::vector<serve::FleetSoakPoint> grid = serve::fleet_soak_grid();
  auto report_at = [&](unsigned jobs) {
    exp::SweepRunner runner(jobs);
    const std::vector<serve::FleetSoakResult> results =
        runner.map(grid, [&](const serve::FleetSoakPoint& pt) {
          return serve::run_fleet_point(pt, trace, cfg);
        });
    return serve::fleet_report_json(results, tc);
  };
  const std::string at1 = report_at(1);
  EXPECT_EQ(at1, report_at(4));
  EXPECT_EQ(at1, report_at(16));
}

TEST(FleetSoak, PointsRunCleanUnderTheMonitors) {
  serve::SoakTraceConfig tc = serve::fleet_trace_config(150);
  serve::FleetSoakConfig cfg;
  const std::vector<ServeJob> trace = serve::generate_trace(tc, cfg.model);
  for (const serve::FleetSoakPoint& pt : serve::fleet_soak_grid()) {
    const serve::FleetSoakResult r = serve::run_fleet_point(pt, trace, cfg);
    EXPECT_EQ(r.soc_violations, 0u) << pt.name;
    EXPECT_EQ(r.serve_violations, 0u) << pt.name;
    EXPECT_EQ(r.met + r.missed + r.shed + r.failed, r.jobs) << pt.name;
  }
}

}  // namespace
