// Unit tests for the util library: math helpers, strings, CSV, tables, CLI.
#include <gtest/gtest.h>

#include <cstdint>

#include "util/cli.h"
#include "util/csv.h"
#include "util/math.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace mco::util;

// ---- math ------------------------------------------------------------------

TEST(CeilDiv, ExactDivision) { EXPECT_EQ(ceil_div(12, 4), 3); }
TEST(CeilDiv, RoundsUp) { EXPECT_EQ(ceil_div(13, 4), 4); }
TEST(CeilDiv, Zero) { EXPECT_EQ(ceil_div(0, 7), 0); }
TEST(CeilDiv, One) { EXPECT_EQ(ceil_div(1, 7), 1); }
TEST(CeilDiv, Large64Bit) {
  EXPECT_EQ(ceil_div<std::uint64_t>(1ull << 40, 3), ((1ull << 40) + 2) / 3);
}

TEST(RoundUp, AlreadyAligned) { EXPECT_EQ(round_up(64, 8), 64); }
TEST(RoundUp, Unaligned) { EXPECT_EQ(round_up(65, 8), 72); }
TEST(RoundUp, Zero) { EXPECT_EQ(round_up(0, 8), 0); }

TEST(IsPow2, Powers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1ull << 63));
}
TEST(IsPow2, NonPowers) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Log2, FloorAndCeil) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(5), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(8), 3u);
}

TEST(Rate, ExactRate) {
  const Rate r{13, 5};  // 2.6 cycles/item
  EXPECT_EQ(r.cycles_for(5), 13u);
  EXPECT_EQ(r.cycles_for(10), 26u);
}
TEST(Rate, CeilsPartialItems) {
  const Rate r{13, 5};
  EXPECT_EQ(r.cycles_for(1), 3u);  // ceil(2.6)
  EXPECT_EQ(r.cycles_for(4), 11u);  // ceil(10.4)
}
TEST(Rate, ZeroItemsCostZero) { EXPECT_EQ((Rate{13, 5}.cycles_for(0)), 0u); }
TEST(Rate, AsDouble) { EXPECT_DOUBLE_EQ((Rate{13, 5}.as_double()), 2.6); }

// ---- strings ---------------------------------------------------------------

TEST(Format, Basic) { EXPECT_EQ(format("n=%d s=%s", 3, "x"), "n=3 s=x"); }
TEST(Format, Empty) { EXPECT_EQ(format("%s", ""), ""); }

TEST(Split, Simple) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "b");
}
TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}
TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, BothEnds) { EXPECT_EQ(trim("  x y\t\n"), "x y"); }
TEST(Trim, AllWhitespace) { EXPECT_EQ(trim(" \t "), ""); }
TEST(ToLower, Mixed) { EXPECT_EQ(to_lower("AbC1"), "abc1"); }
TEST(StartsWith, Cases) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(3u * 1024 * 1024), "3.0 MiB");
}
TEST(Fixed, Precision) { EXPECT_EQ(fixed(1.23456, 2), "1.23"); }

// ---- csv -------------------------------------------------------------------

TEST(Csv, SimpleRows) {
  CsvWriter w;
  w.cell("a").cell(1).cell(2.5);
  w.end_row();
  EXPECT_EQ(w.str(), "a,1,2.5\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter w;
  w.cell("has,comma").cell("has\"quote");
  w.end_row();
  EXPECT_EQ(w.str(), "\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Csv, RowHelper) {
  CsvWriter w;
  w.row({"m", "n", "t"});
  w.row({"1", "2", "3"});
  EXPECT_EQ(w.str(), "m,n,t\n1,2,3\n");
}

TEST(Csv, UnwritableFileThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

// ---- table -----------------------------------------------------------------

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Numeric cells right-align: "23" ends where header column ends.
  EXPECT_NE(s.find(" 1\n"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

// ---- cli -------------------------------------------------------------------

TEST(Cli, KeyEqualsValue) {
  const char* argv[] = {"prog", "--n=42"};
  const Cli cli(2, argv);
  EXPECT_EQ(cli.get_int("n", 0), 42);
}

TEST(Cli, KeySpaceValue) {
  const char* argv[] = {"prog", "--n", "7"};
  const Cli cli(3, argv);
  EXPECT_EQ(cli.get_int("n", 0), 7);
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  const Cli cli(2, argv);
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, DefaultWhenAbsent) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 99), 99);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cli.get("s", "d"), "d");
}

TEST(Cli, MalformedIntThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  const Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("n", 0), std::runtime_error);
}

TEST(Cli, MalformedBoolThrows) {
  const char* argv[] = {"prog", "--b=maybe"};
  const Cli cli(2, argv);
  EXPECT_THROW(cli.get_bool("b", false), std::runtime_error);
}

TEST(Cli, IntList) {
  const char* argv[] = {"prog", "--ms=1,2,4,8"};
  const Cli cli(2, argv);
  const auto v = cli.get_int_list("ms", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], 8);
}

TEST(Cli, Positional) {
  const char* argv[] = {"prog", "file.txt", "--n=1"};
  const Cli cli(3, argv);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "file.txt");
}

TEST(Cli, HexInteger) {
  const char* argv[] = {"prog", "--addr=0x80000000"};
  const Cli cli(2, argv);
  EXPECT_EQ(cli.get_int("addr", 0), 0x80000000ll);
}

}  // namespace
