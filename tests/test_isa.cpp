// Unit tests for the worker-core micro-ISA: functional semantics, pipeline
// timing (hand-computed stall patterns), FREP/SSR behaviour, and the DAXPY
// microkernel ladder that validates the calibrated compute rate.
#include <gtest/gtest.h>

#include "isa/core_model.h"
#include "isa/microkernels.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace mco;
using namespace mco::isa;

struct IsaFixture : ::testing::Test {
  sim::Simulator sim;
  mem::Tcdm tcdm{sim, "tcdm", mem::TcdmConfig{4096, 32, 8}};
  CoreModel core{tcdm};
};

// ---- functional semantics ----------------------------------------------------

TEST_F(IsaFixture, FldFsdRoundTrip) {
  tcdm.write_f64(64, 2.5);
  const Program p{fld(4, 1, 64), fsd(4, 1, 72), halt()};
  core.set_x(1, 0);
  const auto r = core.run(p);
  EXPECT_TRUE(r.halted);
  EXPECT_DOUBLE_EQ(tcdm.read_f64(72), 2.5);
  EXPECT_DOUBLE_EQ(core.f(4), 2.5);
}

TEST_F(IsaFixture, FpArithmetic) {
  core.set_f(4, 3.0);
  core.set_f(5, -2.0);
  core.set_f(6, 10.0);
  const Program p{fmadd(7, 4, 5, 6), fadd(8, 4, 5), fmul(9, 4, 5), fmax(10, 4, 5),
                  fmv(11, 4), halt()};
  core.run(p);
  EXPECT_DOUBLE_EQ(core.f(7), 3.0 * -2.0 + 10.0);
  EXPECT_DOUBLE_EQ(core.f(8), 1.0);
  EXPECT_DOUBLE_EQ(core.f(9), -6.0);
  EXPECT_DOUBLE_EQ(core.f(10), 3.0);
  EXPECT_DOUBLE_EQ(core.f(11), 3.0);
}

TEST_F(IsaFixture, AddiAndX0Hardwired) {
  const Program p{addi(1, 0, 42), addi(0, 1, 7), halt()};
  core.run(p);
  EXPECT_EQ(core.x(1), 42);
  EXPECT_EQ(core.x(0), 0);  // writes to x0 are ignored
}

TEST_F(IsaFixture, BranchLoopCountsCorrectly) {
  // x1 counts 0..5
  const Program p{addi(1, 0, 0), addi(2, 0, 5), addi(1, 1, 1), bne(1, 2, -1), halt()};
  core.run(p);
  EXPECT_EQ(core.x(1), 5);
}

TEST_F(IsaFixture, BltSemantics) {
  const Program p{addi(1, 0, 3), addi(2, 0, 5), blt(1, 2, 2), addi(3, 0, 99), halt()};
  core.run(p);
  EXPECT_EQ(core.x(3), 0);  // skipped by the taken blt
}

// ---- timing ------------------------------------------------------------------

TEST_F(IsaFixture, IndependentInstructionsIssueOnePerCycle) {
  const Program p{addi(1, 0, 1), addi(2, 0, 2), addi(3, 0, 3), halt()};
  const auto r = core.run(p);
  EXPECT_EQ(r.cycles, 4u);  // 3 addi + halt
}

TEST_F(IsaFixture, FpDependencyStallsConsumer) {
  core.set_f(4, 1.0);
  core.set_f(5, 1.0);
  // fadd issues at 0 (ready at 3); dependent fadd stalls to 3; halt at 4.
  const Program p{fadd(6, 4, 5), fadd(7, 6, 4), halt()};
  const auto r = core.run(p);
  EXPECT_EQ(r.cycles, 5u);
}

TEST_F(IsaFixture, LoadUseStall) {
  tcdm.write_f64(0, 1.0);
  // fld issues at 0 (ready 2); fsd of the loaded reg stalls to 2; halt 3.
  const Program p{fld(4, 1, 0), fsd(4, 1, 8), halt()};
  const auto r = core.run(p);
  EXPECT_EQ(r.cycles, 4u);
}

TEST_F(IsaFixture, TakenBranchPaysPenalty) {
  // Not-taken path: addi, bne(not taken), halt = 3 cycles.
  const Program p1{addi(1, 0, 1), bne(1, 1, 1), halt()};
  EXPECT_EQ(CoreModel(tcdm).run(p1).cycles, 3u);
  // Taken branch adds the 2-cycle flush: addi, bne(taken, +2 penalty), halt.
  const Program p2{addi(1, 0, 1), bne(1, 0, 1), halt()};
  EXPECT_EQ(CoreModel(tcdm).run(p2).cycles, 5u);
}

TEST_F(IsaFixture, FrepRepeatsWithZeroOverhead) {
  // frep x1 times over a single fadd: cycles = 1(frep) + n + 1(halt)
  // once the pipeline is limited by issue only (no dependency on itself:
  // accumulate into distinct regs? fadd f6 <- f4+f5 repeatedly is fine: its
  // sources are always ready after the first).
  core.set_x(1, 10);
  core.set_f(4, 1.0);
  core.set_f(5, 2.0);
  const Program p{frep(1, 1), fadd(6, 4, 5), halt()};
  const auto r = core.run(p);
  EXPECT_EQ(r.cycles, 1u + 10u + 1u);
  EXPECT_EQ(r.instructions, 1u + 10u + 1u);
}

TEST_F(IsaFixture, FrepCountZeroSkipsBody) {
  core.set_x(1, 0);
  const Program p{frep(1, 1), addi(2, 0, 9), halt()};
  core.run(p);
  EXPECT_EQ(core.x(2), 0);
}

// ---- SSR ---------------------------------------------------------------------

TEST_F(IsaFixture, SsrStreamsReadAndWrite) {
  tcdm.write_f64_array(0, std::vector<double>{1, 2, 3, 4});
  core.set_x(1, 0);    // read base
  core.set_x(2, 256);  // write base
  core.set_x(3, 4);
  core.set_f(10, 1.0);
  core.set_f(11, 0.0);
  // ft2 = 1.0*ft0 + 0.0 for each element == streaming copy.
  const Program p{ssr_cfg(0, 1, 8), ssr_cfg(2, 2, 8), ssr_enable(true), frep(3, 1),
                  fmadd(2, 10, 0, 11), ssr_enable(false), halt()};
  core.run(p);
  EXPECT_EQ(tcdm.read_f64_array(256, 4), (std::vector<double>{1, 2, 3, 4}));
}

TEST_F(IsaFixture, SsrUnconfiguredStreamThrows) {
  core.set_x(3, 1);
  const Program p{ssr_enable(true), fmadd(5, 10, 0, 11), halt()};
  EXPECT_THROW(core.run(p), std::logic_error);
}

TEST_F(IsaFixture, FldToStreamRegWhileSsrEnabledThrows) {
  const Program p{ssr_enable(true), fld(0, 1, 0), halt()};
  EXPECT_THROW(core.run(p), std::logic_error);
}

// ---- error handling ------------------------------------------------------------

TEST_F(IsaFixture, FallingOffProgramThrows) {
  const Program p{addi(1, 0, 1)};
  EXPECT_THROW(core.run(p), std::invalid_argument);
}

TEST_F(IsaFixture, BranchOutOfBoundsThrows) {
  const Program p{addi(1, 0, 1), bne(1, 0, 100), halt()};
  EXPECT_THROW(core.run(p), std::invalid_argument);
}

TEST_F(IsaFixture, NestedFrepThrows) {
  core.set_x(1, 2);
  const Program p{frep(1, 2), frep(1, 1), addi(2, 0, 1), halt()};
  EXPECT_THROW(core.run(p), std::invalid_argument);
}

TEST_F(IsaFixture, OutOfTcdmLoadThrows) {
  const Program p{fld(4, 1, 1 << 20), halt()};
  EXPECT_THROW(core.run(p), std::out_of_range);
}

TEST_F(IsaFixture, CycleBudgetStopsRunawayProgram) {
  const Program p{addi(1, 0, 0), bne(1, 2, 0), halt()};  // branch to self? rel 0 = self
  // rel 0 branches to itself forever (x2 defaults to 0 -> not taken actually);
  // force an infinite loop: bne x0-compare never equal.
  const Program loop{addi(1, 0, 1), bne(1, 0, 0), halt()};
  const auto r = core.run(loop, 1000);
  EXPECT_FALSE(r.halted);
  EXPECT_GE(r.cycles, 1000u);
  (void)p;
}

// ---- DAXPY microkernels ---------------------------------------------------------

class DaxpyMicro : public ::testing::TestWithParam<DaxpyVariant> {};

TEST_P(DaxpyMicro, ComputesCorrectResult) {
  const auto m = measure_daxpy(GetParam(), 64, 5);
  EXPECT_TRUE(m.verified) << to_string(GetParam());
  EXPECT_GT(m.cycles, 0u);
}

TEST_P(DaxpyMicro, RatePerElementIsStable) {
  // cycles/element at n=64 and n=256 should agree within the constant
  // setup's amortization (rate is a property of the loop, not the size).
  const auto small = measure_daxpy(GetParam(), 64, 5);
  const auto big = measure_daxpy(GetParam(), 256, 6);
  EXPECT_NEAR(small.cycles_per_element, big.cycles_per_element,
              0.2 + 16.0 / 64.0);
}

INSTANTIATE_TEST_SUITE_P(Variants, DaxpyMicro,
                         ::testing::Values(DaxpyVariant::kScalar, DaxpyVariant::kUnrolled4,
                                           DaxpyVariant::kSsrFrep),
                         [](const auto& param_info) { return std::string(to_string(param_info.param)); });

TEST(DaxpyMicroLadder, OptimizationLevelsOrderAsExpected) {
  const double scalar = measure_daxpy(DaxpyVariant::kScalar, 256).cycles_per_element;
  const double unrolled = measure_daxpy(DaxpyVariant::kUnrolled4, 256).cycles_per_element;
  const double ssr = measure_daxpy(DaxpyVariant::kSsrFrep, 256).cycles_per_element;
  EXPECT_GT(scalar, unrolled);
  EXPECT_GT(unrolled, ssr);
  EXPECT_NEAR(ssr, 1.0, 0.1);  // steady state: one fmadd issue per element
}

TEST(DaxpyMicroLadder, CalibratedRateIsBracketedByRealCode) {
  // The cluster model's 2.6 cycles/element (paper Eq. 1) must be attainable:
  // faster than naive compiled code, slower than hand-optimal SSR+FREP.
  const double scalar = measure_daxpy(DaxpyVariant::kScalar, 1024).cycles_per_element;
  const double ssr = measure_daxpy(DaxpyVariant::kSsrFrep, 1024).cycles_per_element;
  EXPECT_LT(ssr, 2.6);
  EXPECT_GT(scalar, 2.6);
}

TEST(DaxpyMicro, UnrolledRejectsNonMultipleOf4) {
  EXPECT_THROW(measure_daxpy(DaxpyVariant::kUnrolled4, 63), std::invalid_argument);
}

TEST(DaxpyMicro, ZeroElementsRejected) {
  EXPECT_THROW(measure_daxpy(DaxpyVariant::kScalar, 0), std::invalid_argument);
}

// ---- SUM microkernels: accumulator-chain effect ---------------------------------

TEST(SumMicro, BothVariantsComputeCorrectSums) {
  for (const auto v : {SumVariant::kSingleAccumulator, SumVariant::kSplitAccumulators}) {
    const auto m = measure_sum(v, 96, 9);
    EXPECT_TRUE(m.verified) << to_string(v);
  }
}

TEST(SumMicro, SingleAccumulatorSerializesOnFpLatency) {
  const auto m = measure_sum(SumVariant::kSingleAccumulator, 300);
  EXPECT_NEAR(m.cycles_per_element, 3.0, 0.1);  // fadd latency bound
}

TEST(SumMicro, SplitAccumulatorsReachIssueRate) {
  const auto m = measure_sum(SumVariant::kSplitAccumulators, 300);
  EXPECT_NEAR(m.cycles_per_element, 1.0, 0.1);
}

TEST(SumMicro, SplitNeedsMultipleOfThree) {
  EXPECT_THROW(measure_sum(SumVariant::kSplitAccumulators, 100), std::invalid_argument);
}

TEST(SumMicro, VecSumCalibratedRateIsBracketed) {
  // The cluster model uses 1.8 cycles/element for vecsum — between the
  // latency-bound naive loop and the issue-bound split-accumulator loop.
  const double naive = measure_sum(SumVariant::kSingleAccumulator, 900).cycles_per_element;
  const double split = measure_sum(SumVariant::kSplitAccumulators, 900).cycles_per_element;
  EXPECT_GT(naive, 1.8);
  EXPECT_LT(split, 1.8);
}

// ---- SSR stride variations --------------------------------------------------------

TEST_F(IsaFixture, SsrStridedGather) {
  // Read every second element (stride 16 bytes) and write them packed.
  tcdm.write_f64_array(0, std::vector<double>{1, 9, 2, 9, 3, 9, 4, 9});
  core.set_x(1, 0);
  core.set_x(2, 256);
  core.set_x(3, 4);
  core.set_f(10, 1.0);
  core.set_f(11, 0.0);
  const Program p{ssr_cfg(0, 1, 16), ssr_cfg(2, 2, 8), ssr_enable(true), frep(3, 1),
                  fmadd(2, 10, 0, 11), ssr_enable(false), halt()};
  core.run(p);
  EXPECT_EQ(tcdm.read_f64_array(256, 4), (std::vector<double>{1, 2, 3, 4}));
}

TEST_F(IsaFixture, SsrNegativeStrideReverses) {
  tcdm.write_f64_array(0, std::vector<double>{1, 2, 3, 4});
  core.set_x(1, 24);  // start at the last element
  core.set_x(2, 256);
  core.set_x(3, 4);
  core.set_f(10, 1.0);
  core.set_f(11, 0.0);
  const Program p{ssr_cfg(0, 1, -8), ssr_cfg(2, 2, 8), ssr_enable(true), frep(3, 1),
                  fmadd(2, 10, 0, 11), ssr_enable(false), halt()};
  core.run(p);
  EXPECT_EQ(tcdm.read_f64_array(256, 4), (std::vector<double>{4, 3, 2, 1}));
}

// ---- streaming elementwise bodies ---------------------------------------------------

class StreamOpCase : public ::testing::TestWithParam<StreamOp> {};

TEST_P(StreamOpCase, ComputesCorrectlyAndAtExpectedRate) {
  const StreamOp op = GetParam();
  sim::Simulator sim;
  mem::Tcdm tcdm(sim, "t", mem::TcdmConfig{8192, 32, 8});
  const std::uint64_t n = 64;
  sim::Rng rng(5);
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  tcdm.write_f64_array(0, a);
  tcdm.write_f64_array(n * 8, b);

  CoreModel core(tcdm);
  core.set_x(1, 0);
  core.set_x(2, static_cast<std::int64_t>(n * 8));
  core.set_x(6, static_cast<std::int64_t>(2 * n * 8));
  core.set_x(3, static_cast<std::int64_t>(n));
  const double alpha = 1.5;
  const double beta = -0.75;
  core.set_f(10, alpha);
  core.set_f(13, beta);
  core.set_f(11, 0.0);
  const auto r = core.run(build_elementwise_stream(op));
  ASSERT_TRUE(r.halted);

  const auto got = tcdm.read_f64_array(2 * n * 8, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    double expect = 0;
    switch (op) {
      case StreamOp::kCopy: expect = a[i]; break;
      case StreamOp::kScale: expect = alpha * a[i]; break;
      case StreamOp::kRelu: expect = std::max(a[i], 0.0); break;
      case StreamOp::kAdd: expect = a[i] + b[i]; break;
      case StreamOp::kMul: expect = a[i] * b[i]; break;
      case StreamOp::kAxpy: expect = alpha * a[i] + b[i]; break;
      case StreamOp::kAxpby: expect = alpha * a[i] + beta * b[i]; break;
      case StreamOp::kFill: expect = alpha; break;
    }
    ASSERT_DOUBLE_EQ(got[i], expect) << to_string(op) << " i=" << i;
  }
  // Single-instruction bodies run at ~1 cycle/element; axpby's dependent
  // 2-instruction body is FP-latency bound (~4/element).
  const double cpe = static_cast<double>(r.cycles) / static_cast<double>(n);
  if (op == StreamOp::kAxpby) {
    EXPECT_GT(cpe, 3.0);
  } else {
    EXPECT_LT(cpe, 1.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, StreamOpCase,
                         ::testing::Values(StreamOp::kCopy, StreamOp::kScale, StreamOp::kRelu,
                                           StreamOp::kAdd, StreamOp::kMul, StreamOp::kAxpy,
                                           StreamOp::kAxpby, StreamOp::kFill),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(StreamOpMeta, InputCountsMatchBodies) {
  EXPECT_EQ(stream_op_inputs(StreamOp::kFill), 0u);
  EXPECT_EQ(stream_op_inputs(StreamOp::kScale), 1u);
  EXPECT_EQ(stream_op_inputs(StreamOp::kAxpby), 2u);
}

TEST(CoreReuse, SameCoreRunsConsecutivePrograms) {
  sim::Simulator sim;
  mem::Tcdm tcdm(sim, "t", mem::TcdmConfig{1024, 4, 8});
  CoreModel core(tcdm);
  const Program p1{addi(1, 0, 5), halt()};
  const Program p2{addi(2, 1, 3), halt()};
  core.run(p1);
  const auto r2 = core.run(p2);
  EXPECT_TRUE(r2.halted);
  EXPECT_EQ(core.x(2), 8);  // state carries across runs, like a real core
}

}  // namespace
