// Tests for the src/serve layer: the first-fit partition allocator, the
// per-cluster circuit breaker, the deadline-aware OffloadService (admission,
// backpressure, priority drain, quarantine/probation, deterministic replay)
// and the serve_isolation invariant of check::ProtocolMonitor.
//
// The service's Executor seam is scripted here (FakeExecutor): durations and
// per-member failure verdicts are pure functions of the job, so every test
// is an exact virtual-time schedule with hand-computable outcomes. The soak
// harness (serve/soak.h) plugs a real simulated Soc into the same seam.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/protocol_monitor.h"
#include "serve/health_tracker.h"
#include "serve/offload_service.h"
#include "serve/partition_allocator.h"
#include "serve/soak.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace {

using namespace mco;
using serve::ClusterHealth;
using serve::ExecutionOutcome;
using serve::HealthConfig;
using serve::HealthTracker;
using serve::JobOutcome;
using serve::JobVerdict;
using serve::OffloadService;
using serve::PartitionAllocator;
using serve::ServeConfig;
using serve::ServeJob;

// ---- helpers ---------------------------------------------------------------

/// Scripted executor: outcomes are a pure function of (job, m, probe).
class FakeExecutor : public serve::Executor {
 public:
  using Fn = std::function<ExecutionOutcome(const ServeJob&, unsigned, bool)>;
  FakeExecutor() = default;
  explicit FakeExecutor(Fn fn) : fn_(std::move(fn)) {}

  struct Call {
    std::uint64_t id;
    unsigned m;
    bool probe;
  };
  std::vector<Call> calls;

  ExecutionOutcome execute(const ServeJob& job, unsigned m, bool probe) override {
    calls.push_back({job.id, m, probe});
    if (fn_) return fn_(job, m, probe);
    ExecutionOutcome out;
    out.duration = 100;
    return out;
  }

 private:
  Fn fn_;
};

/// t̂(M, N) = 100 + N/M: admission math is exact integer arithmetic.
model::RuntimeModel linear_model() {
  model::RuntimeModel m;
  m.t0 = 100.0;
  m.b = 1.0;
  return m;
}

ServeConfig config(unsigned clusters, std::size_t max_queue = 16) {
  ServeConfig cfg;
  cfg.num_clusters = clusters;
  cfg.model = linear_model();
  cfg.max_queue = max_queue;
  return cfg;
}

ServeJob job(std::uint64_t id, std::uint64_t n, sim::Cycle arrival, sim::Cycles t_max,
             unsigned priority = 0) {
  ServeJob j;
  j.id = id;
  j.n = n;
  j.arrival = arrival;
  j.t_max = t_max;
  j.priority = priority;
  return j;
}

/// Executor script that blames partition member 0 on a fixed set of job IDs
/// (ok stays true: degraded completion, cluster-level failure) and answers
/// probes with `probe_clean`.
FakeExecutor::Fn blame_first_member(std::vector<std::uint64_t> bad_ids, bool probe_clean) {
  return [bad_ids = std::move(bad_ids), probe_clean](const ServeJob& j, unsigned,
                                                     bool probe) -> ExecutionOutcome {
    ExecutionOutcome out;
    if (probe) {
      out.duration = 50;
      out.ok = probe_clean;
      if (!probe_clean) out.failed_members = {0};
      return out;
    }
    out.duration = 100;
    if (std::find(bad_ids.begin(), bad_ids.end(), j.id) != bad_ids.end()) {
      out.degraded = true;
      out.failed_members = {0};
    }
    return out;
  };
}

/// Feed one synthetic who=="serve" instant into a monitor.
void feed(check::ProtocolMonitor& mon, sim::Cycle t, const std::string& what,
          const std::string& detail) {
  sim::TraceRecord rec;
  rec.time = t;
  rec.who = "serve";
  rec.what = what;
  rec.detail = detail;
  rec.phase = sim::TracePhase::kInstant;
  mon.observe(rec);
}

// ---- PartitionAllocator ----------------------------------------------------

TEST(PartitionAllocator, StartsAllFree) {
  PartitionAllocator alloc(8);
  EXPECT_EQ(alloc.num_clusters(), 8u);
  EXPECT_EQ(alloc.free_count(), 8u);
  EXPECT_EQ(alloc.free_bitmap(), 0xFFull);
  for (unsigned c = 0; c < 8; ++c) EXPECT_TRUE(alloc.is_free(c));
}

TEST(PartitionAllocator, FirstFitTakesLowestFreeIndices) {
  PartitionAllocator alloc(8);
  const auto a = alloc.allocate(3, nullptr);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (std::vector<unsigned>{0, 1, 2}));
  const auto b = alloc.allocate(2, nullptr);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, (std::vector<unsigned>{3, 4}));
  alloc.release(1);
  const auto c = alloc.allocate(1, nullptr);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (std::vector<unsigned>{1}));
}

TEST(PartitionAllocator, AllocateSkipsIneligibleClusters) {
  PartitionAllocator alloc(6);
  const auto odd = alloc.allocate(2, [](unsigned c) { return c % 2 == 1; });
  ASSERT_TRUE(odd.has_value());
  EXPECT_EQ(*odd, (std::vector<unsigned>{1, 3}));
}

TEST(PartitionAllocator, FailedAllocationLeavesStateUntouched) {
  PartitionAllocator alloc(4);
  const auto too_big = alloc.allocate(3, [](unsigned c) { return c < 2; });
  EXPECT_FALSE(too_big.has_value());
  EXPECT_EQ(alloc.free_count(), 4u);
  const auto fits = alloc.allocate(2, nullptr);
  ASSERT_TRUE(fits.has_value());
  EXPECT_EQ(*fits, (std::vector<unsigned>{0, 1}));
}

TEST(PartitionAllocator, TryAcquireClaimsOneSpecificCluster) {
  PartitionAllocator alloc(4);
  EXPECT_TRUE(alloc.try_acquire(2));
  EXPECT_FALSE(alloc.is_free(2));
  EXPECT_FALSE(alloc.try_acquire(2));
  alloc.release(2);
  EXPECT_TRUE(alloc.try_acquire(2));
}

TEST(PartitionAllocator, DoubleReleaseThrows) {
  PartitionAllocator alloc(4);
  EXPECT_THROW(alloc.release(0), std::logic_error);
  ASSERT_TRUE(alloc.try_acquire(0));
  alloc.release(0);
  EXPECT_THROW(alloc.release(0), std::logic_error);
}

TEST(PartitionAllocator, RejectsFabricsBeyondOneBitmapWord) {
  EXPECT_THROW(PartitionAllocator(0), std::invalid_argument);
  EXPECT_THROW(PartitionAllocator(65), std::invalid_argument);
  PartitionAllocator full(64);
  EXPECT_EQ(full.free_count(), 64u);
  EXPECT_EQ(full.free_bitmap(), ~0ull);
}

// ---- HealthTracker ---------------------------------------------------------

TEST(HealthTracker, TripsAfterConsecutiveFailures) {
  HealthTracker h(2, HealthConfig{3, 2, 5000});
  EXPECT_FALSE(h.record_failure(0));
  EXPECT_FALSE(h.record_failure(0));
  EXPECT_EQ(h.state(0), ClusterHealth::kHealthy);
  EXPECT_TRUE(h.record_failure(0));
  EXPECT_EQ(h.state(0), ClusterHealth::kQuarantined);
  EXPECT_EQ(h.quarantines(), 1u);
  EXPECT_FALSE(h.available(0));
  EXPECT_TRUE(h.available(1));
}

TEST(HealthTracker, SuccessResetsTheFailureStreak) {
  HealthTracker h(1, HealthConfig{3, 2, 5000});
  h.record_failure(0);
  h.record_failure(0);
  h.record_success(0);
  EXPECT_EQ(h.consecutive_failures(0), 0u);
  h.record_failure(0);
  h.record_failure(0);
  EXPECT_EQ(h.state(0), ClusterHealth::kHealthy);
}

TEST(HealthTracker, ProbeOnHealthyClusterThrows) {
  HealthTracker h(1, HealthConfig{3, 2, 5000});
  EXPECT_THROW(h.record_probe(0, true), std::logic_error);
}

TEST(HealthTracker, CleanProbesEarnReadmission) {
  HealthTracker h(1, HealthConfig{1, 2, 5000});
  EXPECT_TRUE(h.record_failure(0));
  EXPECT_FALSE(h.record_probe(0, true));
  EXPECT_EQ(h.state(0), ClusterHealth::kProbation);
  EXPECT_TRUE(h.record_probe(0, true));
  EXPECT_EQ(h.state(0), ClusterHealth::kHealthy);
  EXPECT_EQ(h.readmissions(), 1u);
  EXPECT_EQ(h.consecutive_failures(0), 0u);
}

TEST(HealthTracker, DirtyProbeRestartsProbation) {
  HealthTracker h(1, HealthConfig{1, 2, 5000});
  EXPECT_TRUE(h.record_failure(0));
  EXPECT_FALSE(h.record_probe(0, true));
  EXPECT_EQ(h.state(0), ClusterHealth::kProbation);
  EXPECT_FALSE(h.record_probe(0, false));
  EXPECT_EQ(h.state(0), ClusterHealth::kQuarantined);
  EXPECT_EQ(h.clean_probes(0), 0u);
  EXPECT_EQ(h.readmissions(), 0u);
}

TEST(HealthTracker, QuarantineShrinksAvailableCount) {
  HealthTracker h(4, HealthConfig{1, 1, 5000});
  EXPECT_EQ(h.available_count(), 4u);
  h.record_failure(2);
  EXPECT_EQ(h.available_count(), 3u);
  h.record_probe(2, true);
  EXPECT_EQ(h.available_count(), 4u);
}

TEST(HealthTracker, RejectsDegenerateConfigs) {
  EXPECT_THROW(HealthTracker(0, HealthConfig{}), std::invalid_argument);
  EXPECT_THROW(HealthTracker(1, HealthConfig{0, 2, 5000}), std::invalid_argument);
  EXPECT_THROW(HealthTracker(1, HealthConfig{3, 0, 5000}), std::invalid_argument);
}

// ---- OffloadService: admission and SLO accounting --------------------------

TEST(OffloadService, ServesOneJobWithinDeadline) {
  FakeExecutor exec;
  OffloadService svc(config(1), exec);
  const auto outcomes = svc.run({job(1, 100, 0, 500)});
  ASSERT_EQ(outcomes.size(), 1u);
  const JobOutcome& out = outcomes[0];
  EXPECT_EQ(out.verdict, JobVerdict::kMet);
  EXPECT_EQ(out.m, 1u);
  EXPECT_EQ(out.clusters, (std::vector<unsigned>{0}));
  EXPECT_EQ(out.start, 0u);
  EXPECT_EQ(out.end, 100u);
  EXPECT_EQ(out.queue_wait, 0u);
  EXPECT_EQ(out.slack, 400);
  EXPECT_EQ(svc.makespan(), 100u);
}

TEST(OffloadService, AdmissionPicksTheMinimalPartition) {
  // t̂(M, 400) = 100 + 400/M: a 300-cycle deadline needs M = 2.
  FakeExecutor exec;
  OffloadService svc(config(4), exec);
  const auto outcomes = svc.run({job(1, 400, 0, 300)});
  EXPECT_EQ(outcomes[0].m, 2u);
  EXPECT_EQ(outcomes[0].clusters, (std::vector<unsigned>{0, 1}));
  ASSERT_EQ(exec.calls.size(), 1u);
  EXPECT_EQ(exec.calls[0].m, 2u);
}

TEST(OffloadService, ShedsUnmeetableDeadlineAtAdmission) {
  FakeExecutor exec;
  OffloadService svc(config(4), exec);
  // Even M=4 predicts 100 + 400/4 = 200 > 150: Eq. (3) returns nullopt.
  const auto outcomes = svc.run({job(1, 400, 10, 150)});
  EXPECT_EQ(outcomes[0].verdict, JobVerdict::kShed);
  EXPECT_EQ(outcomes[0].reason, "deadline_unmeetable");
  EXPECT_EQ(outcomes[0].end, 10u);
  EXPECT_EQ(outcomes[0].m, 0u);
  EXPECT_TRUE(exec.calls.empty());
}

TEST(OffloadService, PartitionCapLimitsAdmission) {
  ServeConfig cfg = config(4);
  cfg.max_clusters_per_job = 2;
  FakeExecutor exec;
  OffloadService svc(cfg, exec);
  // Needs M=3 (100 + 300/3 = 200), but the per-job cap is 2: shed.
  // A looser deadline fits under the cap and dispatches with M=1.
  const auto outcomes = svc.run({job(1, 300, 0, 200), job(2, 300, 1000, 400)});
  EXPECT_EQ(outcomes[0].verdict, JobVerdict::kShed);
  EXPECT_EQ(outcomes[0].reason, "deadline_unmeetable");
  EXPECT_EQ(outcomes[1].verdict, JobVerdict::kMet);
  EXPECT_EQ(outcomes[1].m, 1u);
}

TEST(OffloadService, TardyCompletionIsMissed) {
  FakeExecutor exec([](const ServeJob&, unsigned, bool) {
    ExecutionOutcome out;
    out.duration = 400;
    return out;
  });
  OffloadService svc(config(1), exec);
  const auto outcomes = svc.run({job(1, 100, 0, 250)});
  EXPECT_EQ(outcomes[0].verdict, JobVerdict::kMissed);
  EXPECT_EQ(outcomes[0].slack, -150);
  EXPECT_EQ(outcomes[0].end, 400u);
}

TEST(OffloadService, ExecutionFailureYieldsFailedVerdict) {
  FakeExecutor exec([](const ServeJob&, unsigned, bool) {
    ExecutionOutcome out;
    out.duration = 100;
    out.ok = false;
    out.failed_members = {0};
    return out;
  });
  OffloadService svc(config(2), exec);
  const auto outcomes = svc.run({job(1, 100, 0, 500)});
  EXPECT_EQ(outcomes[0].verdict, JobVerdict::kFailed);
  EXPECT_EQ(outcomes[0].reason, "execution_failed");
}

TEST(OffloadService, DegradedCompletionIsRecorded) {
  FakeExecutor exec(blame_first_member({1}, true));
  OffloadService svc(config(2), exec);
  const auto outcomes = svc.run({job(1, 100, 0, 500)});
  EXPECT_EQ(outcomes[0].verdict, JobVerdict::kMet);
  EXPECT_TRUE(outcomes[0].degraded);
}

// ---- OffloadService: queueing and backpressure -----------------------------

namespace queueing {

/// Job 1 occupies the single cluster for 1000 cycles; later jobs take 100.
FakeExecutor::Fn long_first_job() {
  return [](const ServeJob& j, unsigned, bool) {
    ExecutionOutcome out;
    out.duration = j.id == 1 ? 1000 : 100;
    return out;
  };
}

}  // namespace queueing

TEST(OffloadService, BackpressureQueuesUntilThePartitionFrees) {
  FakeExecutor exec(queueing::long_first_job());
  OffloadService svc(config(1), exec);
  const auto outcomes = svc.run({job(1, 100, 0, 5000), job(2, 100, 10, 5000)});
  EXPECT_EQ(outcomes[0].end, 1000u);
  EXPECT_EQ(outcomes[1].start, 1000u);
  EXPECT_EQ(outcomes[1].queue_wait, 990u);
  EXPECT_EQ(outcomes[1].end, 1100u);
  EXPECT_EQ(outcomes[1].verdict, JobVerdict::kMet);
}

TEST(OffloadService, ShedsWhenTheQueueOverflows) {
  FakeExecutor exec(queueing::long_first_job());
  OffloadService svc(config(1, /*max_queue=*/1), exec);
  const auto outcomes =
      svc.run({job(1, 100, 0, 5000), job(2, 100, 10, 5000), job(3, 100, 20, 5000)});
  EXPECT_EQ(outcomes[1].verdict, JobVerdict::kMet);  // queued, then served
  EXPECT_EQ(outcomes[2].verdict, JobVerdict::kShed);
  EXPECT_EQ(outcomes[2].reason, "queue_full");
  EXPECT_EQ(outcomes[2].end, 20u);
}

TEST(OffloadService, QueuedJobExpiresWhenCapacityFreesTooLate) {
  FakeExecutor exec(queueing::long_first_job());
  OffloadService svc(config(1), exec);
  // Job 2's deadline (10 + 200) lapses while job 1 still holds the cluster.
  const auto outcomes = svc.run({job(1, 100, 0, 5000), job(2, 100, 10, 200)});
  EXPECT_EQ(outcomes[1].verdict, JobVerdict::kShed);
  EXPECT_EQ(outcomes[1].reason, "deadline_expired");
  EXPECT_EQ(outcomes[1].end, 1000u);  // shed at the drain that found it expired
}

TEST(OffloadService, DrainsTheBacklogByPriorityThenArrival) {
  FakeExecutor exec(queueing::long_first_job());
  OffloadService svc(config(1), exec);
  const auto outcomes = svc.run({
      job(1, 100, 0, 9000),
      job(2, 100, 10, 9000, /*priority=*/0),
      job(3, 100, 20, 9000, /*priority=*/2),
      job(4, 100, 30, 9000, /*priority=*/2),
  });
  // Drain order: 3 (high priority, earlier arrival), 4, then 2.
  EXPECT_EQ(outcomes[2].start, 1000u);
  EXPECT_EQ(outcomes[3].start, 1100u);
  EXPECT_EQ(outcomes[1].start, 1200u);
  ASSERT_EQ(exec.calls.size(), 4u);
  EXPECT_EQ(exec.calls[1].id, 3u);
  EXPECT_EQ(exec.calls[2].id, 4u);
  EXPECT_EQ(exec.calls[3].id, 2u);
}

// ---- OffloadService: circuit breaker ---------------------------------------

namespace breaker {

/// Three m=1 jobs, spaced so each completes before the next arrives; every
/// one blames its only member — three consecutive failures on cluster 0.
std::vector<ServeJob> tripping_jobs() {
  return {job(1, 100, 0, 900), job(2, 100, 1000, 900), job(3, 100, 2000, 900)};
}

}  // namespace breaker

TEST(OffloadService, RepeatedFailuresQuarantineTheCluster) {
  FakeExecutor exec(blame_first_member({1, 2, 3}, true));
  sim::StatsRegistry stats;
  OffloadService svc(config(2), exec);
  svc.bind_stats(&stats);
  svc.run(breaker::tripping_jobs());
  EXPECT_EQ(svc.health().state(0), ClusterHealth::kQuarantined);
  EXPECT_EQ(svc.health().quarantines(), 1u);
  EXPECT_EQ(stats.counter_value("serve.quarantines"), 1u);
  EXPECT_EQ(stats.counter_value("serve.jobs_degraded"), 3u);
}

TEST(OffloadService, QuarantinedClusterIsSkippedByPlacement) {
  FakeExecutor exec(blame_first_member({1, 2, 3}, true));
  OffloadService svc(config(2), exec);
  std::vector<ServeJob> jobs = breaker::tripping_jobs();
  jobs.push_back(job(4, 100, 3000, 900));
  const auto outcomes = svc.run(jobs);
  EXPECT_EQ(outcomes[3].verdict, JobVerdict::kMet);
  EXPECT_EQ(outcomes[3].clusters, (std::vector<unsigned>{1}));
}

TEST(OffloadService, QuarantineShrinksEqThreeCapacity) {
  FakeExecutor exec(blame_first_member({1, 2, 3}, true));
  OffloadService svc(config(2), exec);
  std::vector<ServeJob> jobs = breaker::tripping_jobs();
  // Needs M=2 (100 + 400/2 = 300), but only cluster 1 is healthy: shed.
  jobs.push_back(job(4, 400, 3000, 300));
  const auto outcomes = svc.run(jobs);
  EXPECT_EQ(outcomes[3].verdict, JobVerdict::kShed);
  EXPECT_EQ(outcomes[3].reason, "deadline_unmeetable");
}

TEST(OffloadService, CleanProbesReadmitTheCluster) {
  FakeExecutor exec(blame_first_member({1, 2, 3}, /*probe_clean=*/true));
  sim::StatsRegistry stats;
  OffloadService svc(config(2), exec);
  svc.bind_stats(&stats);
  svc.trace().enable();
  std::vector<ServeJob> jobs = breaker::tripping_jobs();
  // A distant arrival keeps the event loop alive through the probe schedule
  // (quarantine at 2100, probes at 7100 and 12150 with the default 5000
  // backoff and probation_probes = 2), then lands on the re-admitted
  // cluster 0 again.
  jobs.push_back(job(4, 100, 20000, 900));
  const auto outcomes = svc.run(jobs);
  EXPECT_EQ(svc.health().state(0), ClusterHealth::kHealthy);
  EXPECT_EQ(svc.health().readmissions(), 1u);
  EXPECT_EQ(stats.counter_value("serve.probes"), 2u);
  EXPECT_EQ(stats.counter_value("serve.readmissions"), 1u);
  EXPECT_EQ(outcomes[3].clusters, (std::vector<unsigned>{0}));
  EXPECT_EQ(svc.trace().filter("serve_readmit").size(), 1u);
  const auto probe_calls = std::count_if(exec.calls.begin(), exec.calls.end(),
                                         [](const FakeExecutor::Call& c) { return c.probe; });
  EXPECT_EQ(probe_calls, 2);
}

TEST(OffloadService, DirtyProbesKeepTheClusterQuarantined) {
  FakeExecutor exec(blame_first_member({1, 2, 3}, /*probe_clean=*/false));
  sim::StatsRegistry stats;
  OffloadService svc(config(2), exec);
  svc.bind_stats(&stats);
  std::vector<ServeJob> jobs = breaker::tripping_jobs();
  jobs.push_back(job(4, 100, 8000, 900));
  const auto outcomes = svc.run(jobs);
  EXPECT_EQ(svc.health().state(0), ClusterHealth::kQuarantined);
  EXPECT_EQ(svc.health().readmissions(), 0u);
  EXPECT_GE(stats.counter_value("serve.probes"), 1u);
  EXPECT_EQ(outcomes[3].clusters, (std::vector<unsigned>{1}));
}

TEST(OffloadService, FullyQuarantinedFabricShedsExpiredQueueEntries) {
  // Single-cluster fabric, breaker trips, probes never come back clean: the
  // probe loop must keep re-examining the queue so the waiting job is shed
  // once its deadline lapses — and the run must terminate.
  FakeExecutor exec(blame_first_member({1, 2, 3}, /*probe_clean=*/false));
  OffloadService svc(config(1), exec);
  std::vector<ServeJob> jobs = breaker::tripping_jobs();
  jobs.push_back(job(4, 100, 3000, 6000));  // deadline 9000, capacity 0
  const auto outcomes = svc.run(jobs);
  EXPECT_EQ(outcomes[3].verdict, JobVerdict::kShed);
  EXPECT_EQ(outcomes[3].reason, "deadline_expired");
  EXPECT_EQ(svc.health().state(0), ClusterHealth::kQuarantined);
}

// ---- OffloadService: determinism and lifecycle ------------------------------

TEST(OffloadService, ReplayIsDeterministic) {
  const std::vector<ServeJob> jobs = {
      job(1, 100, 0, 5000),  job(2, 400, 10, 300, 1), job(3, 100, 20, 110),
      job(4, 300, 30, 5000), job(5, 100, 40, 5000, 2),
  };
  auto run_once = [&jobs]() {
    FakeExecutor exec(blame_first_member({2, 4}, true));
    OffloadService svc(config(2), exec);
    return svc.run(jobs);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].verdict, b[i].verdict) << i;
    EXPECT_EQ(a[i].start, b[i].start) << i;
    EXPECT_EQ(a[i].end, b[i].end) << i;
    EXPECT_EQ(a[i].clusters, b[i].clusters) << i;
    EXPECT_EQ(a[i].reason, b[i].reason) << i;
  }
}

TEST(OffloadService, VirtualTimeRestartsOnEveryRun) {
  FakeExecutor exec;
  OffloadService svc(config(2), exec);
  const std::vector<ServeJob> jobs = {job(1, 100, 0, 500), job(2, 100, 50, 500)};
  const auto first = svc.run(jobs);
  const auto second = svc.run(jobs);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].start, second[i].start) << i;
    EXPECT_EQ(first[i].end, second[i].end) << i;
    EXPECT_EQ(first[i].verdict, second[i].verdict) << i;
  }
}

TEST(OffloadService, RejectsZeroQueueCapacity) {
  ServeConfig cfg = config(1);
  cfg.max_queue = 0;
  FakeExecutor exec;
  EXPECT_THROW(OffloadService(cfg, exec), std::invalid_argument);
}

TEST(OffloadService, EmptyTraceIsANoOp) {
  FakeExecutor exec;
  OffloadService svc(config(2), exec);
  EXPECT_TRUE(svc.run({}).empty());
  EXPECT_EQ(svc.makespan(), 0u);
  EXPECT_TRUE(exec.calls.empty());
}

// ---- OffloadService: observability -----------------------------------------

TEST(OffloadService, MetricsAreRegisteredEagerly) {
  FakeExecutor exec;
  OffloadService svc(config(2), exec);
  sim::StatsRegistry stats;
  svc.bind_stats(&stats);
  for (const char* name : {"serve.jobs_submitted", "serve.jobs_dispatched", "serve.jobs_shed",
                           "serve.slo_met", "serve.slo_missed", "serve.probes",
                           "serve.quarantines", "serve.readmissions"}) {
    EXPECT_TRUE(stats.has_counter(name)) << name;
    EXPECT_EQ(stats.counter_value(name), 0u) << name;
  }
  for (const char* name : {"serve.queue_wait_cycles", "serve.queue_depth", "serve.slack_cycles",
                           "serve.tardiness_cycles"}) {
    EXPECT_TRUE(stats.has_histogram(name)) << name;
  }
}

TEST(OffloadService, CountersMatchTheOutcomeTally) {
  FakeExecutor exec([](const ServeJob& j, unsigned, bool) {
    ExecutionOutcome out;
    out.duration = j.id == 2 ? 400 : 100;  // job 2 blows its 250-cycle deadline
    return out;
  });
  sim::StatsRegistry stats;
  OffloadService svc(config(1), exec);
  svc.bind_stats(&stats);
  svc.run({job(1, 100, 0, 500), job(2, 100, 1000, 250), job(3, 400, 2000, 150)});
  EXPECT_EQ(stats.counter_value("serve.jobs_submitted"), 3u);
  EXPECT_EQ(stats.counter_value("serve.jobs_dispatched"), 2u);
  EXPECT_EQ(stats.counter_value("serve.slo_met"), 1u);
  EXPECT_EQ(stats.counter_value("serve.slo_missed"), 1u);
  EXPECT_EQ(stats.counter_value("serve.jobs_shed"), 1u);
  EXPECT_EQ(stats.counter_value("serve.jobs_failed"), 0u);
}

TEST(OffloadService, TraceCarriesTheServeVocabulary) {
  FakeExecutor exec(queueing::long_first_job());
  OffloadService svc(config(1), exec);
  svc.trace().enable();
  svc.run({job(1, 100, 0, 5000), job(2, 100, 10, 5000)});
  const auto dispatches = svc.trace().filter("serve_dispatch");
  ASSERT_EQ(dispatches.size(), 2u);
  EXPECT_EQ(dispatches[0].detail, "job=1 m=1 clusters=0");
  EXPECT_EQ(dispatches[0].who, "serve");
  const auto queued = svc.trace().filter("serve_queue");
  ASSERT_EQ(queued.size(), 1u);
  EXPECT_EQ(queued[0].detail, "job=2 depth=1");
  const auto completes = svc.trace().filter("serve_complete");
  ASSERT_EQ(completes.size(), 2u);
  EXPECT_EQ(completes[0].detail, "job=1 verdict=met clusters=0");
  EXPECT_TRUE(svc.trace().balanced());
  EXPECT_EQ(svc.trace().spans("serve_job").size(), 2u);
}

// ---- serve_isolation: the service against its own invariant -----------------

TEST(ServeIsolation, CleanServiceRunPassesTheMonitor) {
  // The full circuit-breaker arc — quarantine, probes, re-admission, queued
  // and shed jobs — produces an invariant-clean serve stream.
  FakeExecutor exec(blame_first_member({1, 2, 3}, true));
  OffloadService svc(config(2), exec);
  check::ProtocolMonitor monitor;
  monitor.attach(svc.trace());
  std::vector<ServeJob> jobs = breaker::tripping_jobs();
  jobs.push_back(job(4, 100, 20000, 900));
  jobs.push_back(job(5, 400, 20010, 150));  // unmeetable: shed
  svc.run(jobs);
  monitor.finish();
  EXPECT_TRUE(monitor.clean()) << monitor.to_json();
}

TEST(ServeIsolation, FlagsDispatchToAQuarantinedCluster) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_quarantine", "cluster=0");
  feed(mon, 20, "serve_dispatch", "job=1 m=1 clusters=0");
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

TEST(ServeIsolation, FlagsOverlappingPartitions) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 m=2 clusters=0,1");
  feed(mon, 20, "serve_dispatch", "job=2 m=1 clusters=1");
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

TEST(ServeIsolation, FlagsClustersStillHeldAtFinish) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_dispatch", "job=1 m=2 clusters=0,1");
  EXPECT_EQ(mon.total_violations(), 0u);
  mon.finish();
  EXPECT_GE(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

TEST(ServeIsolation, FlagsProbesOnHealthyClusters) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_probe", "cluster=2");
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

TEST(ServeIsolation, FlagsReadmissionOfHealthyClusters) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_readmit", "cluster=1");
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

TEST(ServeIsolation, ReleaseOfAnUnheldClusterIsAViolation) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_complete", "job=1 verdict=met clusters=3");
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

// ---- operator actions: drain / undrain / restart ----------------------------

TEST(HealthTracker, RestartQuarantinesEverythingAndClearsCounters) {
  HealthTracker t(2, HealthConfig{2, 2, 100});
  t.record_failure(0);
  t.record_failure(0);
  EXPECT_EQ(t.state(0), ClusterHealth::kQuarantined);
  t.record_probe(0, true);  // one clean probe banked: mid-probation
  EXPECT_EQ(t.state(0), ClusterHealth::kProbation);
  EXPECT_EQ(t.clean_probes(0), 1u);
  const std::uint64_t trips = t.quarantines();
  t.restart();
  EXPECT_EQ(t.quarantines(), trips);  // operator action, not a breaker trip
  for (unsigned c = 0; c < 2; ++c) {
    EXPECT_EQ(t.state(c), ClusterHealth::kQuarantined);
    EXPECT_EQ(t.clean_probes(c), 0u);
    EXPECT_EQ(t.consecutive_failures(c), 0u);
  }
  // Regression: probation progress earned before the restart must not count
  // toward re-admission after it. The first clean probe only enters
  // probation; only the second re-admits.
  EXPECT_FALSE(t.record_probe(0, true));
  EXPECT_EQ(t.state(0), ClusterHealth::kProbation);
  EXPECT_TRUE(t.record_probe(0, true));
  EXPECT_EQ(t.state(0), ClusterHealth::kHealthy);
}

TEST(OffloadService, ShedAndOperatorStringsAreStable) {
  EXPECT_STREQ(to_string(serve::ShedReason::kDeadlineUnmeetable), "deadline_unmeetable");
  EXPECT_STREQ(to_string(serve::ShedReason::kQueueFull), "queue_full");
  EXPECT_STREQ(to_string(serve::ShedReason::kDeadlineExpired), "deadline_expired");
  EXPECT_STREQ(to_string(serve::ShedReason::kStarved), "starved");
  EXPECT_STREQ(to_string(serve::ShedReason::kDrained), "drained");
  EXPECT_STREQ(to_string(serve::ShedReason::kOperatorShed), "operator_shed");
  EXPECT_STREQ(to_string(serve::OperatorAction::kDrain), "drain");
  EXPECT_STREQ(to_string(serve::OperatorAction::kUndrain), "undrain");
  EXPECT_STREQ(to_string(serve::OperatorAction::kRestart), "restart");
}

TEST(OffloadService, DrainShedsTheBacklogAndRefusesAdmission) {
  FakeExecutor exec;  // every job takes 100 cycles on its partition
  OffloadService svc(config(1), exec);
  sim::StatsRegistry stats;
  svc.bind_stats(&stats);
  svc.schedule_operator(20, serve::OperatorAction::kDrain);
  svc.schedule_operator(200, serve::OperatorAction::kUndrain);
  const auto out = svc.run({
      job(1, 100, 0, 5000),    // dispatched at 0, completes at 100
      job(2, 100, 10, 5000),   // queued behind it, shed by the drain at 20
      job(3, 100, 30, 5000),   // arrives inside the window: operator_shed
      job(4, 100, 250, 5000),  // after undrain: served normally
  });
  EXPECT_EQ(out[0].verdict, JobVerdict::kMet);
  EXPECT_EQ(out[1].verdict, JobVerdict::kShed);
  EXPECT_EQ(out[1].reason, "drained");
  EXPECT_EQ(out[1].end, 20u);
  EXPECT_EQ(out[2].verdict, JobVerdict::kShed);
  EXPECT_EQ(out[2].reason, "operator_shed");
  EXPECT_EQ(out[3].verdict, JobVerdict::kMet);
  EXPECT_FALSE(svc.draining());
  EXPECT_EQ(stats.counter_value("serve.drain.entered"), 1u);
  EXPECT_EQ(stats.counter_value("serve.drain.exited"), 1u);
  EXPECT_EQ(stats.counter_value("serve.drain.jobs_shed"), 2u);
}

TEST(OffloadService, DrainLetsInFlightWorkComplete) {
  FakeExecutor exec(queueing::long_first_job());
  OffloadService svc(config(1), exec);
  svc.schedule_operator(5, serve::OperatorAction::kDrain);
  const auto out = svc.run({job(1, 100, 0, 5000)});
  // The drain at t=5 does not abort the job dispatched at t=0.
  EXPECT_EQ(out[0].verdict, JobVerdict::kMet);
  EXPECT_TRUE(svc.draining());  // never undrained: state persists
}

TEST(OffloadService, DoubleDrainIsAnOperatorError) {
  FakeExecutor exec;
  OffloadService svc(config(1), exec);
  svc.schedule_operator(0, serve::OperatorAction::kDrain);
  svc.schedule_operator(10, serve::OperatorAction::kDrain);
  EXPECT_THROW(svc.run({}), std::logic_error);
}

TEST(OffloadService, UndrainWithoutDrainIsAnOperatorError) {
  FakeExecutor exec;
  OffloadService svc(config(1), exec);
  svc.schedule_operator(0, serve::OperatorAction::kUndrain);
  EXPECT_THROW(svc.run({}), std::logic_error);
}

TEST(OffloadService, RestartAbortsInFlightWorkAndReprobesTheFabric) {
  FakeExecutor exec([](const ServeJob&, unsigned, bool probe) {
    ExecutionOutcome out;
    out.duration = probe ? 50 : 1000;
    return out;
  });
  ServeConfig cfg = config(2);
  cfg.restart_penalty_cycles = 500;
  OffloadService svc(cfg, exec);
  sim::StatsRegistry stats;
  svc.bind_stats(&stats);
  svc.schedule_operator(100, serve::OperatorAction::kRestart);
  const auto out = svc.run({
      job(1, 100, 0, 5000),    // in flight at the restart: aborted
      job(2, 100, 2000, 5000), // after re-probation: served normally
  });
  EXPECT_EQ(out[0].verdict, JobVerdict::kFailed);
  EXPECT_EQ(out[0].reason, "restarted");
  EXPECT_EQ(out[0].end, 100u);
  EXPECT_EQ(out[1].verdict, JobVerdict::kMet);
  EXPECT_EQ(svc.restarts(), 1u);
  EXPECT_EQ(stats.counter_value("serve.restarts"), 1u);
  EXPECT_EQ(stats.counter_value("serve.restart.aborted_jobs"), 1u);
  // Every cluster was re-probed: probe wave at restart + penalty, then a
  // second clean canary each (default probation_probes = 2) to re-admit.
  unsigned probes = 0;
  for (const auto& c : exec.calls) probes += c.probe ? 1 : 0;
  EXPECT_EQ(probes, 4u);
  EXPECT_EQ(stats.counter_value("serve.probes"), 4u);
  // Re-admission after the operator restart counts as readmission activity.
  EXPECT_EQ(svc.health().readmissions(), 2u);
  EXPECT_EQ(svc.health().available_count(), 2u);
}

TEST(OffloadService, ScheduledCallbackFiresInVirtualTime) {
  FakeExecutor exec;
  OffloadService svc(config(1), exec);
  std::vector<std::string> order;
  svc.schedule_callback(10, [&] { order.push_back("callback"); });
  svc.schedule_operator(10, serve::OperatorAction::kDrain);
  svc.run({});
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "callback");  // same-cycle entries fire in schedule order
  EXPECT_TRUE(svc.draining());
  EXPECT_THROW(svc.schedule_callback(0, nullptr), std::invalid_argument);
}

TEST(OffloadService, OperatorEpisodeKeepsTheMonitorClean) {
  // drain -> restart -> undrain with work in flight and a backlog: the trace
  // must stay serve_isolation-clean end to end.
  FakeExecutor exec([](const ServeJob&, unsigned, bool probe) {
    ExecutionOutcome out;
    out.duration = probe ? 50 : 300;
    return out;
  });
  ServeConfig cfg = config(2);
  cfg.restart_penalty_cycles = 200;
  OffloadService svc(cfg, exec);
  check::ProtocolMonitor monitor;
  monitor.attach(svc.trace());
  svc.schedule_operator(50, serve::OperatorAction::kDrain);
  svc.schedule_operator(60, serve::OperatorAction::kRestart);
  svc.schedule_operator(400, serve::OperatorAction::kUndrain);
  svc.run({
      job(1, 100, 0, 5000),
      job(2, 100, 10, 5000),
      job(3, 100, 20, 5000),
      job(4, 100, 600, 5000),
  });
  monitor.finish();
  EXPECT_TRUE(monitor.clean()) << monitor.to_json();
  EXPECT_EQ(svc.restarts(), 1u);
}

TEST(ServeIsolation, FlagsDispatchDuringADrainWindow) {
  check::ProtocolMonitor mon;
  feed(mon, 10, "serve_drain", "backlog=0");
  feed(mon, 20, "serve_dispatch", "job=1 m=1 clusters=0");
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].invariant, "serve_isolation");
}

TEST(ServeIsolation, FlagsUnpairedDrainTransitions) {
  check::ProtocolMonitor undrain_first;
  feed(undrain_first, 10, "serve_undrain", "resume");
  EXPECT_EQ(undrain_first.total_violations(), 1u);
  check::ProtocolMonitor double_drain;
  feed(double_drain, 10, "serve_drain", "backlog=0");
  feed(double_drain, 20, "serve_drain", "backlog=0");
  EXPECT_EQ(double_drain.total_violations(), 1u);
}

// ---- soak harness -----------------------------------------------------------

TEST(Soak, GeneratedTraceIsDeterministicAndWellFormed) {
  serve::SoakTraceConfig cfg;
  cfg.num_jobs = 64;
  const model::RuntimeModel m = model::paper_daxpy_model();
  const auto a = serve::generate_trace(cfg, m);
  const auto b = serve::generate_trace(cfg, m);
  ASSERT_EQ(a.size(), 64u);
  sim::Cycle prev = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i + 1);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].t_max, b[i].t_max);
    EXPECT_GT(a[i].arrival, prev);
    prev = a[i].arrival;
    EXPECT_GT(a[i].n, 0u);
    EXPECT_EQ(a[i].n % 256, 0u);
    EXPECT_LT(a[i].priority, 3u);
  }
}

TEST(Soak, ScenarioCatalogCoversTheBreakerPath) {
  const auto scenarios = serve::soak_scenarios();
  ASSERT_GE(scenarios.size(), 3u);
  EXPECT_EQ(scenarios.front().name, "fault_free");
  bool has_sick = false;
  for (const auto& sc : scenarios) {
    if (sc.name == "sick_cluster") {
      has_sick = true;
      EXPECT_EQ(sc.fault.target_cluster, 0);
      EXPECT_GT(sc.fault.cluster_hang_prob, 0.0);
    }
  }
  EXPECT_TRUE(has_sick);
}

TEST(Soak, ReportDocumentIsStable) {
  serve::SoakResult r;
  r.scenario = "fault_free";
  r.jobs = 2;
  r.met = 2;
  r.met_elements = 512;
  r.slo_attainment = 1.0;
  r.makespan = 1000;
  r.goodput = 0.512;
  serve::SoakTraceConfig cfg;
  cfg.num_jobs = 2;
  const std::string doc = serve::soak_report_json({r}, cfg);
  EXPECT_NE(doc.find("\"schema\": \"mco-serve-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"fault_free\""), std::string::npos);
  EXPECT_NE(doc.find("\"slo_attainment\": 1.0000"), std::string::npos);
  EXPECT_NE(doc.find("\"serve_violations\": 0"), std::string::npos);
}

}  // namespace
