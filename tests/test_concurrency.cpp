// Concurrency regression tests for the "many concurrent instances" contract
// (soc/soc.h): any number of Soc simulations may run on concurrent threads.
//
// These tests are meaningful under any build but are specifically the
// payload of the TSan configuration (-DMCO_SANITIZE=thread), which turns a
// latent data race — e.g. a mutable shared kernel registry or a shared
// stats sink — into a hard failure. See tests/CMakeLists.txt for the
// tsan-gated ctest registration.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "exp/spec.h"
#include "exp/sweep_runner.h"
#include "kernels/registry.h"
#include "soc/soc.h"
#include "soc/workloads.h"

namespace mco {
namespace {

/// One verified DAXPY offload on a fresh Soc; returns the measured cycles.
sim::Cycles one_offload(const soc::SocConfig& cfg, std::uint64_t n, unsigned m) {
  soc::Soc soc(cfg);
  return soc::run_verified(soc, "daxpy", n, m, /*seed=*/42).total();
}

TEST(Concurrency, TwoSocsOnConcurrentThreadsMatchSerialResults) {
  // Serial reference.
  const sim::Cycles ref_base = one_offload(soc::SocConfig::baseline(32), 1024, 32);
  const sim::Cycles ref_ext = one_offload(soc::SocConfig::extended(32), 1024, 32);

  // The same two simulations, concurrently, several times over to give a
  // race detector scheduling variety.
  for (int round = 0; round < 4; ++round) {
    sim::Cycles base = 0;
    sim::Cycles ext = 0;
    std::thread t1([&] { base = one_offload(soc::SocConfig::baseline(32), 1024, 32); });
    std::thread t2([&] { ext = one_offload(soc::SocConfig::extended(32), 1024, 32); });
    t1.join();
    t2.join();
    EXPECT_EQ(base, ref_base);
    EXPECT_EQ(ext, ref_ext);
  }
}

TEST(Concurrency, ManyThreadsShareTheImmutableKernelRegistry) {
  const kernels::KernelRegistry& shared = kernels::KernelRegistry::shared();
  std::vector<std::thread> threads;
  std::vector<sim::Cycles> results(8, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      // Concurrent lookups on the shared registry + a Soc construction,
      // which also reads it.
      const kernels::Kernel& k = kernels::KernelRegistry::shared().by_name("daxpy");
      EXPECT_EQ(&k, &shared.by_name("daxpy"));
      results[i] = one_offload(soc::SocConfig::extended(8), 256, i % 4 + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], one_offload(soc::SocConfig::extended(8), 256, i % 4 + 1));
  }
}

TEST(Concurrency, EverySocSeesTheSameRegistryInstance) {
  soc::Soc a(soc::SocConfig::baseline(8));
  soc::Soc b(soc::SocConfig::extended(8));
  EXPECT_EQ(&a.kernels(), &b.kernels());
  EXPECT_EQ(&a.kernels(), &kernels::KernelRegistry::shared());
}

TEST(Concurrency, SweepRunnerParallelMatchesSerial) {
  exp::ExperimentSpec spec;
  spec.name = "tsan_sweep";
  spec.configs = {{"baseline", soc::SocConfig::baseline(32)},
                  {"extended", soc::SocConfig::extended(32)}};
  spec.ns = {256, 1024};
  spec.ms = {1, 8, 32};

  exp::SweepRunner serial(1);
  exp::SweepRunner parallel(4);
  const exp::ResultSet ref = serial.run(spec);
  const exp::ResultSet par = parallel.run(spec);
  ASSERT_EQ(ref.size(), par.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref.at(i).total, par.at(i).total) << "point " << i;
    EXPECT_EQ(ref.at(i).max_abs_error, par.at(i).max_abs_error) << "point " << i;
  }
  EXPECT_EQ(ref.to_json(), par.to_json());
}

}  // namespace
}  // namespace mco
