// Tests for the src/check layer: the ProtocolMonitor's invariant catalog
// (driven both by raw trace records and by a deliberately-broken sync unit),
// and the ScheduleExplorer's seeded same-cycle commit-order exploration.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "check/broken_credit_counter.h"
#include "check/protocol_monitor.h"
#include "check/schedule_explorer.h"
#include "exp/sweep_runner.h"
#include "fault/fault_injector.h"
#include "sim/simulator.h"
#include "soc/soc.h"
#include "soc/workloads.h"
#include "util/strings.h"

namespace {

using namespace mco;
using check::ProtocolMonitor;
using Bug = check::BrokenCreditCounter::Bug;

// ---- helpers ---------------------------------------------------------------

/// Feed one instant record straight into a monitor.
void feed(ProtocolMonitor& mon, sim::Cycle t, const std::string& who, const std::string& what,
          const std::string& detail = "") {
  sim::TraceRecord rec;
  rec.time = t;
  rec.who = who;
  rec.what = what;
  rec.detail = detail;
  rec.phase = sim::TracePhase::kInstant;
  mon.observe(rec);
}

std::set<std::string> invariants_hit(const ProtocolMonitor& mon) {
  std::set<std::string> out;
  for (const check::Violation& v : mon.violations()) out.insert(v.invariant);
  return out;
}

/// Drive one arm/credit epoch of a (possibly broken) counter under a monitor,
/// with the surrounding protocol records a real offload trace would carry.
struct EpochResult {
  std::uint64_t total = 0;
  std::set<std::string> invariants;
  std::string first;  ///< invariant of the first stored violation
};

EpochResult run_epoch(Bug bug) {
  sim::Simulator sim;
  ProtocolMonitor mon;
  mon.attach(sim.trace());
  check::BrokenCreditCounter unit(sim, "sync", bug);
  unit.set_irq_callback([] {});
  unit.arm(4);
  for (unsigned c = 0; c < 4; ++c) {
    sim.trace().record(0, "noc", "unicast", util::format("cluster=%u", c));
    sim.trace().record(0, util::format("soc.cluster%u.mailbox", c), "doorbell");
    sim.trace().record(0, util::format("soc.cluster%u", c), "wakeup");
    sim.trace().record(0, util::format("soc.cluster%u", c), "signal", "credit");
    unit.increment(c);
  }
  sim.run();
  mon.finish();
  EpochResult r;
  r.total = mon.total_violations();
  r.invariants = invariants_hit(mon);
  if (!mon.violations().empty()) r.first = mon.violations().front().invariant;
  return r;
}

exp::RunPoint make_point(const std::string& label, soc::SocConfig cfg, std::uint64_t n,
                         unsigned m, double tolerance = 1e-9) {
  exp::RunPoint p;
  p.config_label = label;
  p.cfg = std::move(cfg);
  p.kernel = "daxpy";
  p.n = n;
  p.m = m;
  p.seed = 42;
  p.tolerance = tolerance;
  return p;
}

// ---- invariant catalog -----------------------------------------------------

TEST(InvariantReference, ThirteenUniquelyNamedInvariants) {
  const auto& ref = check::invariant_reference();
  EXPECT_EQ(ref.size(), 13u);
  std::set<std::string> names;
  for (const auto& info : ref) {
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.statement, nullptr);
    names.insert(info.name);
  }
  EXPECT_EQ(names.size(), ref.size());
}

TEST(InvariantReference, EveryViolationNamesACatalogEntry) {
  // Violations produced anywhere in this test file must use catalog names;
  // spot-check the mapping on one known violation per path.
  std::set<std::string> catalog;
  for (const auto& info : check::invariant_reference()) catalog.insert(info.name);
  for (const Bug bug : {Bug::kLoseCredit, Bug::kDoubleCount, Bug::kEarlyIrq, Bug::kDuplicateIrq,
                        Bug::kPhantomCredit}) {
    for (const std::string& name : run_epoch(bug).invariants) {
      EXPECT_TRUE(catalog.count(name)) << name << " missing from invariant_reference()";
    }
  }
}

// ---- monitor unit tests, one invariant at a time ---------------------------

TEST(ProtocolMonitor, CleanStreamHasNoViolations) {
  ProtocolMonitor mon;
  feed(mon, 0, "runtime", "offload_start");
  feed(mon, 1, "noc", "multicast", "targets=2");
  feed(mon, 2, "soc.cluster0.mailbox", "doorbell");
  feed(mon, 2, "soc.cluster1.mailbox", "doorbell");
  feed(mon, 3, "soc.cluster0", "wakeup");
  feed(mon, 3, "soc.cluster1", "wakeup");
  feed(mon, 4, "sync", "arm", "threshold=2");
  feed(mon, 5, "soc.cluster0", "signal", "credit");
  feed(mon, 5, "sync", "credit", "count=1/2");
  feed(mon, 6, "soc.cluster1", "signal", "credit");
  feed(mon, 6, "sync", "credit", "count=2/2");
  feed(mon, 7, "intc", "irq");
  feed(mon, 8, "runtime", "offload_done");
  mon.finish();
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.records_seen(), 13u);
}

TEST(ProtocolMonitor, ArmWithZeroThreshold) {
  ProtocolMonitor mon;
  feed(mon, 0, "sync", "arm", "threshold=0");
  EXPECT_TRUE(invariants_hit(mon).count("arm_discipline"));
}

TEST(ProtocolMonitor, ReArmWithEpochPending) {
  ProtocolMonitor mon;
  feed(mon, 0, "sync", "arm", "threshold=2");
  feed(mon, 1, "sync", "credit", "count=1/2");
  feed(mon, 2, "sync", "arm", "threshold=2");
  EXPECT_TRUE(invariants_hit(mon).count("arm_discipline"));
}

TEST(ProtocolMonitor, CreditBeyondThreshold) {
  ProtocolMonitor mon;
  feed(mon, 0, "sync", "arm", "threshold=1");
  feed(mon, 1, "sync", "credit", "count=1/1");
  feed(mon, 2, "sync", "credit", "count=2/1");
  EXPECT_TRUE(invariants_hit(mon).count("credit_bounds"));
}

TEST(ProtocolMonitor, CreditCountJump) {
  ProtocolMonitor mon;
  feed(mon, 0, "sync", "arm", "threshold=4");
  feed(mon, 1, "sync", "credit", "count=3/4");
  EXPECT_TRUE(invariants_hit(mon).count("credit_bounds"));
}

TEST(ProtocolMonitor, CreditWhileUnarmed) {
  ProtocolMonitor mon;
  feed(mon, 0, "sync", "credit", "count=1/4");
  EXPECT_TRUE(invariants_hit(mon).count("credit_armed"));
}

TEST(ProtocolMonitor, IrqBeforeThreshold) {
  ProtocolMonitor mon;
  feed(mon, 0, "sync", "arm", "threshold=2");
  feed(mon, 1, "sync", "credit", "count=1/2");
  feed(mon, 2, "intc", "irq");
  EXPECT_TRUE(invariants_hit(mon).count("irq_threshold"));
}

TEST(ProtocolMonitor, SecondIrqInOneEpoch) {
  ProtocolMonitor mon;
  feed(mon, 0, "sync", "arm", "threshold=1");
  feed(mon, 1, "sync", "credit", "count=1/1");
  feed(mon, 2, "intc", "irq");
  feed(mon, 3, "intc", "irq");
  EXPECT_TRUE(invariants_hit(mon).count("irq_exactly_once"));
}

TEST(ProtocolMonitor, DoorbellWithoutDispatch) {
  ProtocolMonitor mon;
  feed(mon, 0, "soc.cluster3.mailbox", "doorbell");
  EXPECT_TRUE(invariants_hit(mon).count("dispatch_accounting"));
}

TEST(ProtocolMonitor, WakeupWithoutDoorbell) {
  ProtocolMonitor mon;
  feed(mon, 0, "noc", "unicast", "cluster=0");
  feed(mon, 1, "soc.cluster0", "wakeup");
  EXPECT_TRUE(invariants_hit(mon).count("dispatch_accounting"));
}

TEST(ProtocolMonitor, SignalWithoutWakeup) {
  ProtocolMonitor mon;
  feed(mon, 0, "noc", "unicast", "cluster=0");
  feed(mon, 1, "soc.cluster0.mailbox", "doorbell");
  feed(mon, 2, "soc.cluster0", "signal", "amo");
  EXPECT_TRUE(invariants_hit(mon).count("dispatch_accounting"));
}

TEST(ProtocolMonitor, MulticastExpandsToDenseTargetSet) {
  ProtocolMonitor mon;
  feed(mon, 0, "noc", "multicast", "targets=3");
  for (unsigned c = 0; c < 3; ++c)
    feed(mon, 1, util::format("soc.cluster%u.mailbox", c), "doorbell");
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(ProtocolMonitor, RecoveryActionWithoutWatchdog) {
  ProtocolMonitor mon;
  feed(mon, 0, "runtime", "offload_start");
  feed(mon, 1, "runtime", "redispatch", "cluster=2");
  EXPECT_TRUE(invariants_hit(mon).count("retry_discipline"));
}

TEST(ProtocolMonitor, WatchdogOutsideOffload) {
  ProtocolMonitor mon;
  feed(mon, 0, "runtime", "watchdog_timeout");
  EXPECT_TRUE(invariants_hit(mon).count("retry_discipline"));
}

TEST(ProtocolMonitor, RecoveryAfterWatchdogIsLegal) {
  ProtocolMonitor mon;
  feed(mon, 0, "runtime", "offload_start");
  feed(mon, 1, "runtime", "watchdog_timeout");
  feed(mon, 2, "runtime", "redispatch", "cluster=2");
  feed(mon, 3, "runtime", "cluster_failed", "cluster=2");
  feed(mon, 4, "runtime", "redistribute", "cluster=2");
  feed(mon, 5, "runtime", "offload_done");
  mon.finish();
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(ProtocolMonitor, OverlappingOffloads) {
  ProtocolMonitor mon;
  feed(mon, 0, "runtime", "offload_start");
  feed(mon, 1, "runtime", "offload_start");
  EXPECT_TRUE(invariants_hit(mon).count("offload_lifecycle"));
}

TEST(ProtocolMonitor, OffloadNeverCompletes) {
  ProtocolMonitor mon;
  feed(mon, 0, "runtime", "offload_start");
  mon.finish();
  EXPECT_TRUE(invariants_hit(mon).count("offload_lifecycle"));
}

TEST(ProtocolMonitor, SpanEndWithoutBegin) {
  ProtocolMonitor mon;
  sim::TraceRecord rec;
  rec.time = 0;
  rec.who = "host.runtime";
  rec.what = "offload";
  rec.phase = sim::TracePhase::kEnd;
  mon.observe(rec);
  EXPECT_TRUE(invariants_hit(mon).count("span_balance"));
}

TEST(ProtocolMonitor, SpanLeftOpenAtFinish) {
  ProtocolMonitor mon;
  sim::TraceRecord rec;
  rec.time = 0;
  rec.who = "host.runtime";
  rec.what = "offload";
  rec.phase = sim::TracePhase::kBegin;
  mon.observe(rec);
  mon.finish();
  EXPECT_TRUE(invariants_hit(mon).count("span_balance"));
}

TEST(ProtocolMonitor, ConservationCountsDropAndDupFaults) {
  // 3 signals, one dropped in flight, one duplicated: 3 + 1 - 1 = 3 applied.
  ProtocolMonitor mon;
  feed(mon, 0, "noc", "multicast", "targets=3");
  for (unsigned c = 0; c < 3; ++c) {
    feed(mon, 1, util::format("soc.cluster%u.mailbox", c), "doorbell");
    feed(mon, 1, util::format("soc.cluster%u", c), "wakeup");
    feed(mon, 2, util::format("soc.cluster%u", c), "signal", "credit");
  }
  feed(mon, 2, "fault", "credit_drop", "cluster=0");
  feed(mon, 2, "fault", "credit_dup", "cluster=1");
  feed(mon, 3, "sync", "arm", "threshold=3");
  feed(mon, 4, "sync", "credit", "count=1/3");
  feed(mon, 4, "sync", "credit", "count=2/3");
  feed(mon, 4, "sync", "credit", "count=3/3");
  mon.finish();
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(ProtocolMonitor, ConservationSkippedWhenCreditPathUnused) {
  // The AMO-polling baseline shares the injector's credit hook but never
  // arms a unit; fault records alone must not trip the ledger.
  ProtocolMonitor mon;
  feed(mon, 0, "fault", "credit_drop", "cluster=0");
  mon.finish();
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(ProtocolMonitor, HistoryWindowBoundsViolationContext) {
  check::ProtocolMonitorConfig cfg;
  cfg.history_window = 4;
  ProtocolMonitor mon(cfg);
  for (int i = 0; i < 32; ++i) feed(mon, static_cast<sim::Cycle>(i), "sync", "credit_spurious");
  feed(mon, 32, "sync", "credit", "count=1/4");  // unarmed -> violation
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_LE(mon.violations().front().window.size(), 4u);
}

TEST(ProtocolMonitor, MaxViolationsCapsStorageNotCounting) {
  check::ProtocolMonitorConfig cfg;
  cfg.max_violations = 3;
  ProtocolMonitor mon(cfg);
  for (int i = 0; i < 10; ++i)
    feed(mon, static_cast<sim::Cycle>(i), "sync", "credit", "count=1/4");
  EXPECT_EQ(mon.violations().size(), 3u);
  EXPECT_EQ(mon.total_violations(), 10u);
}

TEST(ProtocolMonitor, JsonDocumentCarriesSchemaAndViolations) {
  ProtocolMonitor mon;
  feed(mon, 7, "sync", "credit", "count=1/4");
  mon.finish();
  const std::string json = mon.to_json();
  EXPECT_NE(json.find("\"schema\": \"mco-violations-v1\""), std::string::npos);
  EXPECT_NE(json.find("credit_armed"), std::string::npos);
  EXPECT_NE(json.find("\"time\": 7"), std::string::npos);
}

TEST(ProtocolMonitor, ResetRestoresPristineState) {
  ProtocolMonitor mon;
  feed(mon, 0, "sync", "credit", "count=1/4");
  EXPECT_GT(mon.total_violations(), 0u);
  mon.reset();
  EXPECT_EQ(mon.total_violations(), 0u);
  EXPECT_EQ(mon.records_seen(), 0u);
  feed(mon, 0, "sync", "arm", "threshold=1");
  feed(mon, 1, "sync", "credit", "count=1/1");
  mon.finish();
  // signals ledger empty but arm was seen: 0 signals vs 1 applied -> flagged.
  EXPECT_TRUE(invariants_hit(mon).count("credit_conservation"));
}

// ---- the broken counter: five bug classes, five invariant classes ----------

TEST(BrokenCreditCounter, FaithfulModeIsClean) {
  EXPECT_EQ(run_epoch(Bug::kNone).total, 0u);
}

TEST(BrokenCreditCounter, FiveBugsFiveDistinctInvariantClasses) {
  const struct {
    Bug bug;
    const char* expect;
  } kCases[] = {
      {Bug::kLoseCredit, "credit_conservation"},
      {Bug::kDoubleCount, "credit_bounds"},
      {Bug::kEarlyIrq, "irq_threshold"},
      {Bug::kDuplicateIrq, "irq_exactly_once"},
      {Bug::kPhantomCredit, "credit_armed"},
  };
  std::set<std::string> primaries;
  for (const auto& c : kCases) {
    const EpochResult r = run_epoch(c.bug);
    EXPECT_GT(r.total, 0u) << "bug not caught: " << c.expect;
    EXPECT_EQ(r.first, c.expect) << "wrong primary invariant";
    primaries.insert(r.first);
  }
  EXPECT_EQ(primaries.size(), 5u) << "bug classes must map to distinct invariants";
}

// ---- monitor on the real SoC ----------------------------------------------

TEST(MonitorOnSoc, CleanOnExtendedOffloadAndZeroCost) {
  const sim::Cycles bare = soc::run_daxpy(soc::SocConfig::extended(32), 1024, 32, 42).total();
  soc::Soc soc(soc::SocConfig::extended(32));
  ProtocolMonitor mon;
  mon.attach(soc);
  const offload::OffloadResult r = soc::run_verified(soc, "daxpy", 1024, 32, 42);
  mon.finish();
  EXPECT_EQ(r.total(), bare) << "observer tap must not change simulated cycles";
  EXPECT_EQ(r.total(), 633u);
  EXPECT_TRUE(mon.clean());
  EXPECT_GT(mon.records_seen(), 0u);
  // Observer mode must not switch on trace storage.
  EXPECT_FALSE(soc.simulator().trace().enabled());
  EXPECT_TRUE(soc.simulator().trace().records().empty());
}

TEST(MonitorOnSoc, CleanOnBaselineOffload) {
  soc::Soc soc(soc::SocConfig::baseline(32));
  ProtocolMonitor mon;
  mon.attach(soc);
  const offload::OffloadResult r = soc::run_verified(soc, "daxpy", 1024, 32, 42);
  mon.finish();
  EXPECT_EQ(r.total(), 936u);
  EXPECT_TRUE(mon.clean());
}

TEST(MonitorOnSoc, CleanUnderEveryFaultScenario) {
  for (const fault::NamedScenario& sc : fault::scenario_catalog()) {
    for (const bool extended : {true, false}) {
      soc::SocConfig cfg = extended ? soc::SocConfig::extended(16) : soc::SocConfig::baseline(16);
      cfg.runtime.watchdog_wait_cycles = 2000;
      cfg.fault = sc.cfg;
      soc::Soc soc(cfg);
      ProtocolMonitor mon;
      mon.attach(soc);
      soc::run_verified(soc, "daxpy", 512, 16, 42, 1e-5);
      mon.finish();
      EXPECT_TRUE(mon.clean()) << sc.name << (extended ? "/extended: " : "/baseline: ")
                               << mon.to_json();
    }
  }
}

// ---- schedule explorer ------------------------------------------------------

TEST(ScheduleExplorer, RejectsZeroSchedules) {
  check::ScheduleExplorerConfig cfg;
  cfg.schedules = 0;
  EXPECT_THROW(check::ScheduleExplorer{cfg}, std::invalid_argument);
}

TEST(ScheduleExplorer, HeadlinePinsHoldOnEverySchedule) {
  check::ScheduleExplorerConfig cfg;
  cfg.schedules = 32;
  const check::ScheduleExplorer explorer(cfg);
  const check::ScheduleReport ext =
      explorer.explore(make_point("extended", soc::SocConfig::extended(32), 1024, 32));
  const check::ScheduleReport base =
      explorer.explore(make_point("baseline", soc::SocConfig::baseline(32), 1024, 32));
  ASSERT_EQ(ext.runs.size(), 32u);
  ASSERT_EQ(base.runs.size(), 32u);
  EXPECT_TRUE(ext.cycles_identical);
  EXPECT_TRUE(base.cycles_identical);
  EXPECT_EQ(ext.min_total, 633u);
  EXPECT_EQ(ext.max_total, 633u);
  EXPECT_EQ(base.min_total, 936u);
  EXPECT_TRUE(ext.clean());
  EXPECT_TRUE(base.clean());
}

TEST(ScheduleExplorer, FaultFreeGridIdenticalAndClean) {
  check::ScheduleExplorerConfig cfg;
  cfg.schedules = 32;
  const check::ScheduleExplorer explorer(cfg);
  for (const unsigned m : {1u, 4u, 16u, 64u}) {
    for (const bool extended : {true, false}) {
      const check::ScheduleReport rep = explorer.explore(make_point(
          extended ? "extended" : "baseline",
          extended ? soc::SocConfig::extended(64) : soc::SocConfig::baseline(64), 1024, m));
      EXPECT_TRUE(rep.cycles_identical) << "M=" << m;
      EXPECT_TRUE(rep.clean()) << "M=" << m;
      EXPECT_TRUE(rep.fault_free);
    }
  }
}

TEST(ScheduleExplorer, FaultScenariosStayCleanAndNumericallyCorrect) {
  check::ScheduleExplorerConfig cfg;
  cfg.schedules = 8;
  const check::ScheduleExplorer explorer(cfg);
  for (const fault::NamedScenario& sc : fault::scenario_catalog()) {
    soc::SocConfig c = soc::SocConfig::extended(16);
    c.runtime.watchdog_wait_cycles = 2000;
    c.fault = sc.cfg;
    const check::ScheduleReport rep =
        explorer.explore(make_point("extended/" + sc.name, c, 512, 16, 1e-5));
    EXPECT_FALSE(rep.fault_free) << sc.name;
    EXPECT_TRUE(rep.clean()) << sc.name;
    EXPECT_TRUE(rep.numerics_ok) << sc.name;
  }
}

TEST(ScheduleExplorer, DeterministicPerSeed) {
  check::ScheduleExplorerConfig cfg;
  cfg.schedules = 6;
  const check::ScheduleExplorer explorer(cfg);
  soc::SocConfig c = soc::SocConfig::extended(16);
  c.runtime.watchdog_wait_cycles = 2000;
  c.fault.credit_drop_prob = 0.25;
  const exp::RunPoint p = make_point("faulted", c, 512, 16, 1e-5);
  const check::ScheduleReport a = explorer.explore(p);
  const check::ScheduleReport b = explorer.explore(p);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].total, b.runs[i].total) << "schedule " << i;
    EXPECT_EQ(a.runs[i].violations, b.runs[i].violations) << "schedule " << i;
  }
}

TEST(ScheduleExplorer, ReportsIdenticalAtAnyJobsValue) {
  check::ScheduleExplorerConfig cfg;
  cfg.schedules = 4;
  const check::ScheduleExplorer explorer(cfg);
  std::vector<exp::RunPoint> points;
  for (const unsigned m : {2u, 8u, 32u})
    points.push_back(make_point("extended", soc::SocConfig::extended(32), 512, m));
  const auto run_with = [&](unsigned jobs) {
    exp::SweepRunner runner(jobs);
    return runner.map(points,
                      [&](const exp::RunPoint& p) { return explorer.explore(p); });
  };
  const std::vector<check::ScheduleReport> seq = run_with(1);
  const std::vector<check::ScheduleReport> par = run_with(4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].runs.size(), par[i].runs.size());
    EXPECT_EQ(seq[i].total_violations, par[i].total_violations);
    for (std::size_t k = 0; k < seq[i].runs.size(); ++k)
      EXPECT_EQ(seq[i].runs[k].total, par[i].runs[k].total);
  }
}

TEST(ScheduleExplorer, FullPermutationStillSatisfiesInvariants) {
  // Shuffling *every* same-cycle batch (not just wire) may legally move
  // cycle counts — but the protocol invariants must still hold.
  check::ScheduleExplorerConfig cfg;
  cfg.schedules = 6;
  cfg.wire_only = false;
  const check::ScheduleExplorer explorer(cfg);
  const check::ScheduleReport rep =
      explorer.explore(make_point("extended", soc::SocConfig::extended(16), 512, 16));
  EXPECT_EQ(rep.total_violations, 0u);
  EXPECT_TRUE(rep.numerics_ok);
}

// ---- commit-permuter kernel validation --------------------------------------

TEST(CommitPermuter, RejectsBadPermutations) {
  sim::Simulator sim;
  int ran = 0;
  sim.schedule_at(1, [&] { ++ran; }, sim::Priority::kWire);
  sim.schedule_at(1, [&] { ++ran; }, sim::Priority::kWire);
  sim.set_commit_permuter(
      [](sim::Cycle, sim::Priority, std::vector<std::size_t>& order) { order.pop_back(); });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(CommitPermuter, RejectsDuplicateIndices) {
  sim::Simulator sim;
  sim.schedule_at(1, [] {}, sim::Priority::kWire);
  sim.schedule_at(1, [] {}, sim::Priority::kWire);
  sim.set_commit_permuter([](sim::Cycle, sim::Priority, std::vector<std::size_t>& order) {
    for (std::size_t& i : order) i = 0;
  });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(CommitPermuter, ReversedBatchCommitsInReverse) {
  sim::Simulator sim;
  std::vector<int> committed;
  for (int i = 0; i < 4; ++i)
    sim.schedule_at(1, [&committed, i] { committed.push_back(i); }, sim::Priority::kWire);
  sim.set_commit_permuter([](sim::Cycle, sim::Priority, std::vector<std::size_t>& order) {
    std::reverse(order.begin(), order.end());
  });
  sim.run();
  EXPECT_EQ(committed, (std::vector<int>{3, 2, 1, 0}));
}

}  // namespace
