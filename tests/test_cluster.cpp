// Unit tests for the cluster: the doorbell → wakeup → team barrier → DMA →
// compute → DMA → signal state machine, driven without the host/offload
// runtime (payloads are delivered straight to the mailbox).
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "kernels/blas1.h"
#include "kernels/reductions.h"
#include "sim/rng.h"

namespace {

using namespace mco;
using namespace mco::cluster;

struct Harness {
  sim::Simulator sim;
  mem::AddressMap map{};
  mem::MainMemory main_mem{1 << 22};
  mem::HbmController hbm{sim, "hbm", mem::HbmConfig{12, 8, 8}};
  noc::NocConfig noc_cfg{};
  noc::Interconnect noc{sim, "noc", noc_cfg, 4};
  sync::TeamBarrier barrier{sim, "tb", sync::TeamBarrierConfig{}};
  kernels::KernelRegistry registry = kernels::KernelRegistry::standard();
  std::vector<std::unique_ptr<Cluster>> clusters;
  unsigned credits = 0;
  unsigned amos = 0;

  void build(unsigned count, CompletionPath completion = CompletionPath::kHardwareCredit) {
    ClusterConfig cfg;
    cfg.completion = completion;
    for (unsigned i = 0; i < count; ++i) {
      clusters.push_back(std::make_unique<Cluster>(sim, "cluster" + std::to_string(i), cfg, i,
                                                   registry, hbm, i, main_mem, map, noc,
                                                   barrier));
      noc.set_cluster_sink(i, [c = clusters.back().get()](const noc::DispatchMessage& m) {
        c->mailbox().deliver(m);
      });
    }
    noc.set_credit_sink([this](unsigned) { ++credits; });
    noc.set_amo_sink([this](unsigned) { ++amos; });
  }

  kernels::JobArgs daxpy_args(std::uint64_t n, std::vector<double>& x, std::vector<double>& y) {
    sim::Rng rng(3);
    x.resize(n);
    y.resize(n);
    for (auto& v : x) v = rng.uniform(-1, 1);
    for (auto& v : y) v = rng.uniform(-1, 1);
    main_mem.write_f64_array(0, x);
    main_mem.write_f64_array(n * 8, y);
    kernels::JobArgs args;
    args.kernel_id = kernels::kDaxpyId;
    args.n = n;
    args.alpha = 3.0;
    args.in0 = map.hbm_base();
    args.out0 = map.hbm_base() + n * 8;
    return args;
  }

  void dispatch(const kernels::JobArgs& args, unsigned num_clusters) {
    const auto& k = registry.by_id(args.kernel_id);
    const auto msg = kernels::marshal_payload(args, num_clusters, k.marshal_args(args));
    for (unsigned i = 0; i < num_clusters; ++i) clusters[i]->mailbox().deliver(msg);
  }
};

struct ClusterHarness : Harness, ::testing::Test {};

TEST_F(ClusterHarness, SingleClusterExecutesDaxpy) {
  build(1);
  std::vector<double> x, y;
  const auto args = daxpy_args(64, x, y);
  dispatch(args, 1);
  sim.run();
  EXPECT_EQ(clusters[0]->jobs_executed(), 1u);
  EXPECT_EQ(clusters[0]->items_processed(), 64u);
  EXPECT_EQ(credits, 1u);
  const auto got = main_mem.read_f64_array(64 * 8, 64);
  for (std::size_t i = 0; i < 64; ++i) ASSERT_DOUBLE_EQ(got[i], 3.0 * x[i] + y[i]);
}

TEST_F(ClusterHarness, FourClustersSplitTheWork) {
  build(4);
  std::vector<double> x, y;
  const auto args = daxpy_args(100, x, y);
  dispatch(args, 4);
  sim.run();
  std::uint64_t items = 0;
  for (const auto& c : clusters) {
    EXPECT_EQ(c->jobs_executed(), 1u);
    items += c->items_processed();
  }
  EXPECT_EQ(items, 100u);
  EXPECT_EQ(credits, 4u);
  const auto got = main_mem.read_f64_array(100 * 8, 100);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_DOUBLE_EQ(got[i], 3.0 * x[i] + y[i]);
}

TEST_F(ClusterHarness, SoftwareCompletionSendsAmos) {
  build(2, CompletionPath::kSoftwareAmo);
  std::vector<double> x, y;
  dispatch(daxpy_args(32, x, y), 2);
  sim.run();
  EXPECT_EQ(amos, 2u);
  EXPECT_EQ(credits, 0u);
}

TEST_F(ClusterHarness, TimingPhasesAreOrdered) {
  build(2);
  std::vector<double> x, y;
  dispatch(daxpy_args(128, x, y), 2);
  sim.run();
  const auto& t = clusters[1]->last_timing();
  ASSERT_TRUE(t.has_value());
  EXPECT_LT(t->doorbell, t->team_arrive);
  EXPECT_LT(t->team_arrive, t->job_start);
  EXPECT_LT(t->job_start, t->dma_in_done);
  EXPECT_LT(t->dma_in_done, t->compute_done);
  EXPECT_LT(t->compute_done, t->dma_out_done);
  EXPECT_LT(t->dma_out_done, t->signal_sent);
}

TEST_F(ClusterHarness, TeamMembersStartDataMovementTogether) {
  build(4);
  std::vector<double> x, y;
  dispatch(daxpy_args(64, x, y), 4);
  sim.run();
  const sim::Cycle start0 = clusters[0]->last_timing()->job_start;
  for (const auto& c : clusters) EXPECT_EQ(c->last_timing()->job_start, start0);
}

TEST_F(ClusterHarness, ComputePhaseShrinksWithMoreWorkers) {
  // Same chunk, 8 workers vs 1 worker: the compute phase must shrink.
  std::vector<sim::Cycles> compute(2);
  for (int i = 0; i < 2; ++i) {
    Harness h;  // fresh harness per configuration
    ClusterConfig cfg;
    cfg.num_workers = i == 0 ? 1 : 8;
    h.clusters.push_back(std::make_unique<Cluster>(h.sim, "c", cfg, 0, h.registry, h.hbm, 0,
                                                   h.main_mem, h.map, h.noc, h.barrier));
    h.noc.set_cluster_sink(0, [c = h.clusters.back().get()](const noc::DispatchMessage& m) {
      c->mailbox().deliver(m);
    });
    h.noc.set_credit_sink([](unsigned) {});
    std::vector<double> x, y;
    const auto args = h.daxpy_args(1024, x, y);
    h.dispatch(args, 1);
    h.sim.run();
    const auto& t = *h.clusters[0]->last_timing();
    compute[static_cast<std::size_t>(i)] = t.compute_done - t.dma_in_done;
  }
  EXPECT_GT(compute[0], compute[1] * 6);  // ~8x fewer cycles with 8 workers
}

TEST_F(ClusterHarness, OversizedChunkIsTiledThroughTcdm) {
  build(1);
  std::vector<double> x, y;
  // DAXPY n=16384 needs 256 KiB of TCDM on one cluster but only 128 KiB
  // exist: the cluster must process the chunk in (at least) two tiles and
  // still produce exact results.
  const auto args = daxpy_args(16384, x, y);
  dispatch(args, 1);
  sim.run();
  EXPECT_GE(clusters[0]->last_job_tiles(), 2u);
  EXPECT_EQ(clusters[0]->items_processed(), 16384u);
  const auto got = main_mem.read_f64_array(16384 * 8, 16384);
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_DOUBLE_EQ(got[i], 3.0 * x[i] + y[i]);
}

TEST_F(ClusterHarness, OversizedChunkWithoutTilingSupportThrows) {
  build(1);
  // DOT does not support range tiling (per-cluster partial accumulator).
  const std::uint64_t n = 16384;
  std::vector<double> big(n, 1.0);
  main_mem.write_f64_array(0, big);
  main_mem.write_f64_array(n * 8, big);
  kernels::JobArgs args;
  args.kernel_id = kernels::kDotId;
  args.n = n;
  args.in0 = map.hbm_base();
  args.in1 = map.hbm_base() + n * 8;
  args.out0 = map.hbm_base() + 2 * n * 8;
  args.out1 = map.hbm_base() + 2 * n * 8 + 64;
  dispatch(args, 1);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST_F(ClusterHarness, DispatchBeyondTeamSizeThrows) {
  build(2);
  std::vector<double> x, y;
  const auto args = daxpy_args(32, x, y);
  // Deliver a 1-cluster job to cluster 1: protocol violation.
  const auto& k = registry.by_id(args.kernel_id);
  const auto msg = kernels::marshal_payload(args, 1, k.marshal_args(args));
  clusters[1]->mailbox().deliver(msg);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST_F(ClusterHarness, BackToBackJobsDrainMailbox) {
  build(1);
  std::vector<double> x, y;
  const auto args = daxpy_args(16, x, y);
  dispatch(args, 1);
  dispatch(args, 1);  // second job queued while first runs
  sim.run();
  EXPECT_EQ(clusters[0]->jobs_executed(), 2u);
}

TEST_F(ClusterHarness, UnknownKernelIdThrows) {
  build(1);
  kernels::JobArgs args;
  args.kernel_id = 999;
  args.n = 4;
  clusters[0]->mailbox().deliver(kernels::marshal_payload(args, 1, {}));
  EXPECT_THROW(sim.run(), std::out_of_range);
}

TEST_F(ClusterHarness, ZeroWorkerConfigRejected) {
  ClusterConfig cfg;
  cfg.num_workers = 0;
  EXPECT_THROW(Cluster(sim, "bad", cfg, 0, registry, hbm, 0, main_mem, map, noc, barrier),
               std::invalid_argument);
}

}  // namespace
