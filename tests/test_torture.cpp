// Randomized end-to-end torture tests: long random offload sequences with
// mixed kernels, sizes, cluster counts and designs on shared SoCs. Every
// offload is functionally verified; every run also re-checks global
// invariants (no spurious credits, conservation of completion signals).
// Seeds are fixed — failures reproduce deterministically.
#include <gtest/gtest.h>

#include "soc/soc.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using namespace mco::soc;

class RandomWorkloadTorture : public ::testing::TestWithParam<std::uint64_t /*seed*/> {};

TEST_P(RandomWorkloadTorture, MixedJobsOnOneSocAllVerify) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  const bool extended = rng.next_below(2) == 1;
  const unsigned fabric = static_cast<unsigned>(rng.uniform_int(2, 16));
  Soc soc(extended ? SocConfig::extended(fabric) : SocConfig::baseline(fabric));

  const std::vector<std::string> kernels{"daxpy", "saxpy", "axpby", "scale", "vecadd",
                                         "vecmul", "relu",  "fill",  "memcpy", "dot",
                                         "vecsum"};
  std::uint64_t expected_signals = 0;
  for (int job = 0; job < 12; ++job) {
    const std::string& k = kernels[rng.next_below(kernels.size())];
    const auto n = static_cast<std::uint64_t>(rng.uniform_int(1, 700));
    const auto m = static_cast<unsigned>(rng.uniform_int(1, fabric));
    const double tol = k == "saxpy" ? 1e-5 : 1e-9;
    ASSERT_NO_THROW(run_verified(soc, k, n, m, seed * 100 + static_cast<std::uint64_t>(job),
                                 tol))
        << "seed=" << seed << " job=" << job << " kernel=" << k << " n=" << n << " m=" << m;
    expected_signals += m;
  }

  // Completion-signal conservation: every participating cluster signalled
  // exactly once per job, through exactly one mechanism.
  const std::uint64_t credits = soc.interconnect().credits_routed();
  const std::uint64_t amos = soc.interconnect().amos_routed();
  EXPECT_EQ(credits + amos, expected_signals);
  EXPECT_EQ(extended ? amos : credits, 0u);
  EXPECT_EQ(soc.sync_unit().spurious_increments(), 0u);
  EXPECT_EQ(soc.runtime().offloads_completed(), 12u);
  EXPECT_FALSE(soc.runtime().busy());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTorture,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

class RandomConfigTorture : public ::testing::TestWithParam<std::uint64_t /*seed*/> {};

TEST_P(RandomConfigTorture, PerturbedConfigsStillRunCorrectly) {
  // Random (but sane) latency/bandwidth perturbations must never break
  // functional correctness or the extended design's constant-dispatch
  // property — only shift cycle counts.
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  SocConfig cfg = SocConfig::extended(8);
  cfg.hbm.beats_per_cycle = static_cast<unsigned>(rng.uniform_int(4, 32));
  cfg.hbm.request_latency = static_cast<sim::Cycles>(rng.uniform_int(0, 30));
  cfg.noc.host_to_cluster_latency = static_cast<sim::Cycles>(rng.uniform_int(1, 40));
  cfg.cluster.wakeup_latency = static_cast<sim::Cycles>(rng.uniform_int(1, 60));
  cfg.cluster.barrier_latency = static_cast<sim::Cycles>(rng.uniform_int(1, 30));
  cfg.runtime.marshal_base_cycles = static_cast<sim::Cycles>(rng.uniform_int(10, 200));
  cfg.host.irq_take_cycles = static_cast<sim::Cycles>(rng.uniform_int(1, 60));

  Soc soc(cfg);
  EXPECT_NO_THROW(run_verified(soc, "daxpy", 512, 8, seed)) << "seed=" << seed;

  // Constant dispatch: same config, 1 vs 8 clusters.
  Soc a(cfg), b(cfg);
  const auto d1 = run_verified(a, "daxpy", 512, 1, seed).phases().dispatch;
  const auto d8 = run_verified(b, "daxpy", 512, 8, seed).phases().dispatch;
  EXPECT_EQ(d1, d8) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigTorture, ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(TortureSequences, LongPipelinedTrainStaysConsistent) {
  Soc soc(SocConfig::extended(4));
  sim::Rng rng(9090);
  std::vector<kernels::JobArgs> train;
  std::vector<std::function<double(Soc&)>> oracles;
  for (int i = 0; i < 20; ++i) {
    auto job = prepare_workload(soc, soc.kernels().by_name(i % 2 ? "scale" : "vecadd"), 300, 4,
                                rng);
    train.push_back(job.args);
    oracles.push_back(job.max_abs_error);
  }
  const auto r = soc.runtime().offload_sequence_blocking(std::move(train), 4, true);
  EXPECT_EQ(r.jobs.size(), 20u);
  for (const auto& oracle : oracles) EXPECT_LT(oracle(soc), 1e-9);
  // Monotone job completion times.
  for (std::size_t i = 1; i < r.jobs.size(); ++i) {
    EXPECT_GT(r.jobs[i].completed, r.jobs[i - 1].completed);
  }
}

}  // namespace
