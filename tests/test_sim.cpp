// Unit tests for the simulation kernel: event ordering, components, stats,
// trace, logging, RNG.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/component.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace mco::sim;

// ---- event queue -----------------------------------------------------------

TEST(Simulator, StartsAtCycleZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameCycleFifoAmongEqualPriority) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, PriorityBreaksSameCycleTies) {
  Simulator sim;
  std::vector<std::string> order;
  sim.schedule_at(5, [&] { order.push_back("cpu"); }, Priority::kCpu);
  sim.schedule_at(5, [&] { order.push_back("wire"); }, Priority::kWire);
  sim.schedule_at(5, [&] { order.push_back("mem"); }, Priority::kMemory);
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"wire", "mem", "cpu"}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Cycle seen = 0;
  sim.schedule_at(100, [&] { sim.schedule_in(5, [&] { seen = sim.now(); }); });
  sim.run();
  EXPECT_EQ(seen, 105u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [&] { EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error); });
  sim.run();
}

TEST(Simulator, EventsCanScheduleAtCurrentCycle) {
  Simulator sim;
  int hits = 0;
  sim.schedule_at(7, [&] { sim.schedule_at(7, [&] { ++hits; }); });
  sim.run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sim.now(), 7u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int hits = 0;
  sim.schedule_at(10, [&] { ++hits; });
  sim.schedule_at(20, [&] { ++hits; });
  sim.run_until(15);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(hits, 2);
}

TEST(Simulator, RunUntilAdvancesTimeOnEmptyQueue) {
  Simulator sim;
  sim.run_until(42);
  EXPECT_EQ(sim.now(), 42u);
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int hits = 0;
  sim.schedule_at(1, [&] {
    ++hits;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++hits; });
  sim.run();
  EXPECT_EQ(hits, 1);
  sim.run();  // resumes
  EXPECT_EQ(hits, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(static_cast<Cycle>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 10u);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int hits = 0;
  sim.schedule_at(1, [&] { ++hits; });
  sim.schedule_at(2, [&] { ++hits; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(hits, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

// ---- components ------------------------------------------------------------

TEST(Component, PathReflectsHierarchy) {
  Simulator sim;
  Component root(sim, "soc");
  Component mid(sim, "cluster3", &root);
  Component leaf(sim, "dma", &mid);
  EXPECT_EQ(leaf.path(), "soc.cluster3.dma");
  EXPECT_EQ(root.path(), "soc");
}

TEST(Component, ParentTracksChildren) {
  Simulator sim;
  Component root(sim, "soc");
  {
    Component child(sim, "c0", &root);
    EXPECT_EQ(root.children().size(), 1u);
  }
  EXPECT_TRUE(root.children().empty());  // destructor detaches
}

// ---- stats -----------------------------------------------------------------

TEST(Stats, CounterIncrements) {
  StatsRegistry reg;
  reg.counter("x").inc();
  reg.counter("x").inc(4);
  EXPECT_EQ(reg.counter_value("x"), 5u);
}

TEST(Stats, MissingCounterReadsZero) {
  const StatsRegistry reg;
  EXPECT_EQ(reg.counter_value("nope"), 0u);
}

TEST(Stats, AccumulatorMinMeanMax) {
  Accumulator a;
  a.sample(2.0);
  a.sample(4.0);
  a.sample(9.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  const Accumulator a;
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(Stats, DumpCsvIsDeterministicallyOrdered) {
  StatsRegistry reg;
  reg.counter("b").inc();
  reg.counter("a").inc();
  const std::string csv = reg.dump_csv();
  EXPECT_LT(csv.find("a,1"), csv.find("b,1"));
}

TEST(Stats, ResetAllClears) {
  StatsRegistry reg;
  reg.counter("x").inc(3);
  reg.accumulator("y").sample(1.0);
  reg.reset_all();
  EXPECT_EQ(reg.counter_value("x"), 0u);
  EXPECT_EQ(reg.accumulator("y").count(), 0u);
}

// ---- trace -----------------------------------------------------------------

TEST(Trace, DisabledByDefault) {
  TraceSink t;
  t.record(1, "a", "b");
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  TraceSink t;
  t.enable();
  t.record(5, "cluster0", "wakeup", "x");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].time, 5u);
  EXPECT_EQ(t.records()[0].who, "cluster0");
}

TEST(Trace, FilterByWhat) {
  TraceSink t;
  t.enable();
  t.record(1, "a", "x");
  t.record(2, "b", "y");
  t.record(3, "c", "x");
  const auto xs = t.filter("x");
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[1].time, 3u);
}

TEST(Trace, CsvHasHeaderAndRows) {
  TraceSink t;
  t.enable();
  t.record(1, "a", "b", "c");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("time,phase,who,what,detail"), std::string::npos);
  EXPECT_NE(csv.find("1,i,a,b,c"), std::string::npos);
}

// ---- logger ----------------------------------------------------------------

TEST(Logger, OffByDefault) {
  Logger log;
  log.log(0, LogLevel::kError, "x", "msg");
  EXPECT_EQ(log.records_emitted(), 0u);
}

TEST(Logger, SinkReceivesRecords) {
  Logger log;
  log.set_level(LogLevel::kInfo);
  std::vector<std::string> seen;
  log.set_sink([&](Cycle, LogLevel, const std::string&, const std::string& m) {
    seen.push_back(m);
  });
  log.log(1, LogLevel::kDebug, "x", "dropped");
  log.log(2, LogLevel::kWarn, "x", "kept");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "kept");
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RoughlyUniformMean) {
  Rng r(13);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += r.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

}  // namespace
