// Paper-level acceptance tests: every quantitative claim of Colagrande &
// Benini (DATE 2024) that this repository reproduces, asserted end-to-end
// against the simulator. If these pass, the benches regenerate the paper's
// figures with the right shapes.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "model/fitter.h"
#include "model/mape.h"
#include "model/runtime_model.h"
#include "model/decision.h"
#include "soc/workloads.h"

namespace {

using namespace mco;
using namespace mco::soc;

sim::Cycles daxpy_cycles(const SocConfig& cfg, std::uint64_t n, unsigned m) {
  return run_daxpy(cfg, n, m).total();
}

// §III / Fig. 1 (left): the baseline runtime has a global minimum because
// sequential dispatch overhead grows linearly while work shrinks.
TEST(Paper, BaselineRuntimeHasInteriorMinimum) {
  std::map<unsigned, sim::Cycles> t;
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    t[m] = daxpy_cycles(SocConfig::baseline(32), 1024, m);
  }
  unsigned best = 1;
  for (const auto& [m, v] : t) {
    if (v < t[best]) best = m;
  }
  EXPECT_GE(best, 4u);   // "above four clusters the overhead starts to dominate"
  EXPECT_LE(best, 8u);
  EXPECT_GT(t[32], t[best]);  // rises again at many clusters
  EXPECT_GT(t[1], t[best]);   // and is worse at one cluster
}

// §III: with multicast the overhead is constant, so runtime decreases
// monotonically up to 32 clusters.
TEST(Paper, ExtendedRuntimeMonotonicallyDecreasesUpTo32) {
  sim::Cycles prev = ~0ull;
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const sim::Cycles v = daxpy_cycles(SocConfig::extended(32), 1024, m);
    EXPECT_LT(v, prev) << "M=" << m;
    prev = v;
  }
}

// §III: "Offloading to more clusters would lead to negligible further
// improvements because of Amdahl's law."
TEST(Paper, NegligibleGainBeyond32Clusters) {
  const auto t32 = daxpy_cycles(SocConfig::extended(64), 1024, 32);
  const auto t64 = daxpy_cycles(SocConfig::extended(64), 1024, 64);
  EXPECT_LE(t64, t32);
  EXPECT_LT(static_cast<double>(t32 - t64) / static_cast<double>(t32), 0.03);
}

// Abstract / conclusion: up to 47.9 % speedup at N=1024, and §III: more than
// 300 cycles of difference at 32 clusters.
TEST(Paper, HeadlineSpeedupAndGapAt32Clusters) {
  const auto base = daxpy_cycles(SocConfig::baseline(32), 1024, 32);
  const auto ext = daxpy_cycles(SocConfig::extended(32), 1024, 32);
  EXPECT_GT(base - ext, 300u);
  const double speedup = static_cast<double>(base) / static_cast<double>(ext);
  EXPECT_NEAR(speedup, 1.479, 0.02);
}

// Fig. 1 (right): the speedup is always greater than one...
TEST(Paper, SpeedupAlwaysGreaterThanOne) {
  for (const std::uint64_t n : {1024ull, 2048ull, 4096ull}) {
    for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const auto base = daxpy_cycles(SocConfig::baseline(32), n, m);
      const auto ext = daxpy_cycles(SocConfig::extended(32), n, m);
      EXPECT_GT(base, ext) << "n=" << n << " m=" << m;
    }
  }
}

// ...and, for fixed M, decreases with the problem size (the overhead saving
// amortizes over a longer job).
TEST(Paper, SpeedupDecreasesWithProblemSize) {
  double prev = 1e9;
  for (const std::uint64_t n : {1024ull, 2048ull, 4096ull, 8192ull}) {
    const double s = static_cast<double>(daxpy_cycles(SocConfig::baseline(32), n, 32)) /
                     static_cast<double>(daxpy_cycles(SocConfig::extended(32), n, 32));
    EXPECT_LT(s, prev) << n;
    prev = s;
  }
}

// Eq. (1) + Eq. (2): the analytical model predicts the extended design's
// runtime with MAPE below 1 % for every validated problem size.
TEST(Paper, Eq1MapeBelowOnePercent) {
  const model::RuntimeModel m = model::paper_daxpy_model();
  std::vector<model::Sample> samples;
  for (const std::uint64_t n : {256ull, 512ull, 768ull, 1024ull}) {
    for (const unsigned mm : {1u, 2u, 4u, 8u, 16u, 32u}) {
      samples.push_back(model::Sample{
          mm, n, static_cast<double>(daxpy_cycles(SocConfig::extended(32), n, mm))});
    }
  }
  const auto by_n = model::mape_by_n(m, samples);
  for (const auto& [n, err] : by_n) {
    EXPECT_LT(err, 1.0) << "N=" << n;
  }
}

// A model *fitted* from simulated samples recovers coefficients close to the
// paper's Eq. (1) constants.
TEST(Paper, FittedModelMatchesEq1Constants) {
  std::vector<model::Sample> samples;
  for (const std::uint64_t n : {256ull, 512ull, 768ull, 1024ull, 2048ull}) {
    for (const unsigned mm : {1u, 2u, 4u, 8u, 16u, 32u}) {
      samples.push_back(model::Sample{
          mm, n, static_cast<double>(daxpy_cycles(SocConfig::extended(32), n, mm))});
    }
  }
  const auto fit = model::fit_runtime_model(samples);
  EXPECT_NEAR(fit.model.t0, 367.0, 8.0);
  EXPECT_NEAR(fit.model.a, 0.25, 0.01);
  EXPECT_NEAR(fit.model.b, 2.6 / 8.0, 0.02);
  EXPECT_GT(fit.r_squared, 0.999);
}

// The baseline design additionally needs the c·M dispatch term, and its
// fitted slope matches the per-cluster dispatch cost (~9 cycles/cluster).
TEST(Paper, BaselineFitRecoversDispatchSlope) {
  std::vector<model::Sample> samples;
  for (const std::uint64_t n : {256ull, 512ull, 1024ull, 2048ull}) {
    for (const unsigned mm : {1u, 2u, 4u, 8u, 16u, 32u}) {
      samples.push_back(model::Sample{
          mm, n, static_cast<double>(daxpy_cycles(SocConfig::baseline(32), n, mm))});
    }
  }
  const auto fit = model::fit_runtime_model(samples, model::FitOptions{true});
  EXPECT_NEAR(fit.model.c, 9.0, 1.5);
  EXPECT_NEAR(fit.model.a, 0.25, 0.01);
}

// Ablation (extension of the paper's analysis): each mechanism alone helps at
// 32 clusters, and multicast is the dominant contributor.
TEST(Paper, AblationOrderingAt32Clusters) {
  const std::uint64_t n = 1024;
  const auto base = daxpy_cycles(SocConfig::with_features(32, {false, false}), n, 32);
  const auto mc = daxpy_cycles(SocConfig::with_features(32, {true, false}), n, 32);
  const auto hw = daxpy_cycles(SocConfig::with_features(32, {false, true}), n, 32);
  const auto both = daxpy_cycles(SocConfig::with_features(32, {true, true}), n, 32);
  EXPECT_LT(mc, base);
  EXPECT_LT(hw, base);
  EXPECT_LT(both, mc);
  EXPECT_LT(both, hw);
  EXPECT_LT(base - hw, base - mc);  // multicast removes the linear term
}

// Eq. (3): the model-derived minimum cluster count actually meets the
// deadline in simulation, and one fewer cluster misses it.
TEST(Paper, Eq3DecisionsValidatedInSimulation) {
  const model::RuntimeModel m = model::paper_daxpy_model();
  const std::uint64_t n = 1024;
  for (const double t_max : {700.0, 750.0, 900.0}) {
    const auto m_min = model::min_clusters_for_deadline(m, n, t_max, 32);
    ASSERT_TRUE(m_min.has_value()) << t_max;
    const auto t = daxpy_cycles(SocConfig::extended(32), n, *m_min);
    EXPECT_LE(static_cast<double>(t), t_max * 1.01) << t_max;
    if (*m_min > 1) {
      const auto t_less = daxpy_cycles(SocConfig::extended(32), n, *m_min - 1);
      EXPECT_GT(static_cast<double>(t_less), t_max * 0.99) << t_max;
    }
  }
}

// E14 (extension): weak scaling hits the shared-bandwidth wall — constant
// per-cluster work, runtime still grows, and the data term's share rises.
TEST(Paper, WeakScalingIsBandwidthBound) {
  double prev_data_frac = 0.0;
  sim::Cycles prev_t = 0;
  for (const unsigned m : {1u, 4u, 16u}) {
    const std::uint64_t n = 1024ull * m;
    const auto t = daxpy_cycles(SocConfig::extended(16), n, m);
    const double data_frac = (static_cast<double>(n) / 4.0) / static_cast<double>(t);
    EXPECT_GT(t, prev_t);
    EXPECT_GT(data_frac, prev_data_frac);
    prev_t = t;
    prev_data_frac = data_frac;
  }
  EXPECT_GT(prev_data_frac, 0.8);  // ~bandwidth-bound at M=16
}

// run_verified's oracle must actually gate on the tolerance.
TEST(Paper, VerificationOracleRejectsOnTolerance) {
  Soc soc(SocConfig::extended(4));
  EXPECT_THROW(run_verified(soc, "daxpy", 64, 4, 7, /*tolerance=*/-1.0), std::runtime_error);
}

// Baseline stats inventory is consistent with its mechanisms.
TEST(Paper, BaselineStatsInventory) {
  Soc soc(SocConfig::baseline(4));
  run_verified(soc, "daxpy", 256, 4, 3);
  const std::string csv = soc.dump_stats();
  EXPECT_NE(csv.find("noc.unicasts,4"), std::string::npos);
  EXPECT_NE(csv.find("shared_counter.amos,4"), std::string::npos);
  EXPECT_NE(csv.find("sync_unit.interrupts,0"), std::string::npos);
  EXPECT_NE(csv.find("noc.multicasts,0"), std::string::npos);
}

}  // namespace
