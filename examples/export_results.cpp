// Export the paper's figure/table data as CSV files for external plotting.
//
// Produces, under --outdir (default "results/"):
//   fig1_left.csv    M, baseline_cycles, extended_cycles
//   fig1_right.csv   N, M, speedup
//   model_mape.csv   N, M, measured, predicted, abs_err_percent
//   ablation.csv     M, baseline, multicast_only, hw_sync_only, both
//   sweep.json       every simulated point, schema mco-sweep-v1
//
// Each figure is a declarative exp::ExperimentSpec; --jobs=N runs the
// underlying simulations on a thread pool (the emitted files are
// byte-identical for any job count).
//
// Usage: export_results [--outdir=results] [--quick] [--jobs=N]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "exp/sweep_runner.h"
#include "model/runtime_model.h"
#include "soc/observability.h"
#include "util/cli.h"
#include "util/csv.h"

namespace {

using namespace mco;

exp::ExperimentSpec fig1_left_spec(const std::vector<unsigned>& ms) {
  exp::ExperimentSpec spec;
  spec.name = "fig1_left";
  spec.configs = {{"baseline", soc::SocConfig::baseline(64)},
                  {"extended", soc::SocConfig::extended(64)}};
  spec.ms = ms;
  return spec;
}

exp::ExperimentSpec fig1_right_spec(const std::vector<unsigned>& ms) {
  exp::ExperimentSpec spec;
  spec.name = "fig1_right";
  spec.configs = {{"baseline", soc::SocConfig::baseline(32)},
                  {"extended", soc::SocConfig::extended(32)}};
  spec.ns = {1024, 2048, 4096, 8192, 16384};
  spec.ms = ms;
  return spec;
}

exp::ExperimentSpec model_mape_spec(const std::vector<unsigned>& ms) {
  exp::ExperimentSpec spec;
  spec.name = "model_mape";
  spec.configs = {{"extended", soc::SocConfig::extended(32)}};
  spec.ns = {256, 512, 768, 1024};
  spec.ms = ms;
  return spec;
}

exp::ExperimentSpec ablation_spec(const std::vector<unsigned>& ms) {
  exp::ExperimentSpec spec;
  spec.name = "ablation";
  spec.configs = {{"baseline", soc::SocConfig::with_features(32, {false, false})},
                  {"multicast_only", soc::SocConfig::with_features(32, {true, false})},
                  {"hw_sync_only", soc::SocConfig::with_features(32, {false, true})},
                  {"both", soc::SocConfig::with_features(32, {true, true})}};
  spec.ms = ms;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);
  const std::string outdir = cli.get("outdir", "results");
  const bool quick = cli.get_bool("quick", false);
  exp::SweepRunner runner(static_cast<unsigned>(cli.get_int("jobs", 1)));
  std::filesystem::create_directories(outdir);

  const std::vector<unsigned> ms = quick ? std::vector<unsigned>{1, 8, 32}
                                         : std::vector<unsigned>{1, 2, 4, 8, 16, 32, 64};
  std::vector<unsigned> ms32;
  for (const unsigned m : ms) {
    if (m <= 32) ms32.push_back(m);
  }

  std::vector<exp::ResultSet> all;

  {
    const exp::ResultSet rs = runner.run(fig1_left_spec(ms));
    util::CsvWriter csv(outdir + "/fig1_left.csv");
    csv.row({"M", "baseline_cycles", "extended_cycles"});
    for (const unsigned m : ms) {
      csv.cell(m)
          .cell(rs.cycles("baseline", "daxpy", 1024, m))
          .cell(rs.cycles("extended", "daxpy", 1024, m));
      csv.end_row();
    }
    std::printf("wrote %s/fig1_left.csv (%zu rows)\n", outdir.c_str(), csv.rows_written());
    all.push_back(rs);
  }

  {
    const exp::ResultSet rs = runner.run(fig1_right_spec(ms32));
    util::CsvWriter csv(outdir + "/fig1_right.csv");
    csv.row({"N", "M", "speedup"});
    for (const std::uint64_t n : {1024ull, 2048ull, 4096ull, 8192ull, 16384ull}) {
      for (const unsigned m : ms32) {
        const double s = static_cast<double>(rs.cycles("baseline", "daxpy", n, m)) /
                         static_cast<double>(rs.cycles("extended", "daxpy", n, m));
        csv.cell(n).cell(m).cell(s);
        csv.end_row();
      }
    }
    std::printf("wrote %s/fig1_right.csv (%zu rows)\n", outdir.c_str(), csv.rows_written());
    all.push_back(rs);
  }

  {
    const model::RuntimeModel paper = model::paper_daxpy_model();
    const exp::ResultSet rs = runner.run(model_mape_spec(ms32));
    util::CsvWriter csv(outdir + "/model_mape.csv");
    csv.row({"N", "M", "measured_cycles", "predicted_cycles", "abs_err_percent"});
    for (const std::uint64_t n : {256ull, 512ull, 768ull, 1024ull}) {
      for (const unsigned m : ms32) {
        const auto t = rs.cycles("extended", "daxpy", n, m);
        const double pred = paper.predict(m, n);
        csv.cell(n).cell(m).cell(t).cell(pred).cell(
            100.0 * std::abs(static_cast<double>(t) - pred) / static_cast<double>(t));
        csv.end_row();
      }
    }
    std::printf("wrote %s/model_mape.csv (%zu rows)\n", outdir.c_str(), csv.rows_written());
    all.push_back(rs);
  }

  {
    const exp::ResultSet rs = runner.run(ablation_spec(ms32));
    util::CsvWriter csv(outdir + "/ablation.csv");
    csv.row({"M", "baseline", "multicast_only", "hw_sync_only", "both"});
    for (const unsigned m : ms32) {
      csv.cell(m)
          .cell(rs.cycles("baseline", "daxpy", 1024, m))
          .cell(rs.cycles("multicast_only", "daxpy", 1024, m))
          .cell(rs.cycles("hw_sync_only", "daxpy", 1024, m))
          .cell(rs.cycles("both", "daxpy", 1024, m));
      csv.end_row();
    }
    std::printf("wrote %s/ablation.csv (%zu rows)\n", outdir.c_str(), csv.rows_written());
    all.push_back(rs);
  }

  // Machine-readable dump of every simulated point (one sweep per figure).
  {
    std::ofstream out(outdir + "/sweep.json");
    out << "[\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
      out << all[i].to_json();
      out << (i + 1 < all.size() ? ",\n" : "\n");
    }
    out << "]\n";
    std::printf("wrote %s/sweep.json (%zu sweeps)\n", outdir.c_str(), all.size());
  }

  soc::export_canonical_offload(obs, soc::SocConfig::extended(32), "daxpy", 1024, 32);
  std::printf("done.\n");
  return 0;
}
