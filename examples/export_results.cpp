// Export the paper's figure/table data as CSV files for external plotting.
//
// Produces, under --outdir (default "results/"):
//   fig1_left.csv    M, baseline_cycles, extended_cycles
//   fig1_right.csv   N, M, speedup
//   model_mape.csv   N, M, measured, predicted, abs_err_percent
//   ablation.csv     M, baseline, multicast_only, hw_sync_only, both
//
// Usage: export_results [--outdir=results] [--quick]
#include <cstdio>
#include <filesystem>

#include "model/runtime_model.h"
#include "soc/observability.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/csv.h"

namespace {

using namespace mco;

sim::Cycles daxpy_cycles(const soc::SocConfig& cfg, std::uint64_t n, unsigned m) {
  return soc::run_daxpy(cfg, n, m).total();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);
  const std::string outdir = cli.get("outdir", "results");
  const bool quick = cli.get_bool("quick", false);
  std::filesystem::create_directories(outdir);

  const std::vector<unsigned> ms = quick ? std::vector<unsigned>{1, 8, 32}
                                         : std::vector<unsigned>{1, 2, 4, 8, 16, 32, 64};

  {
    util::CsvWriter csv(outdir + "/fig1_left.csv");
    csv.row({"M", "baseline_cycles", "extended_cycles"});
    for (const unsigned m : ms) {
      csv.cell(m)
          .cell(daxpy_cycles(soc::SocConfig::baseline(64), 1024, m))
          .cell(daxpy_cycles(soc::SocConfig::extended(64), 1024, m));
      csv.end_row();
    }
    std::printf("wrote %s/fig1_left.csv (%zu rows)\n", outdir.c_str(), csv.rows_written());
  }

  {
    util::CsvWriter csv(outdir + "/fig1_right.csv");
    csv.row({"N", "M", "speedup"});
    for (const std::uint64_t n : {1024ull, 2048ull, 4096ull, 8192ull, 16384ull}) {
      for (const unsigned m : ms) {
        if (m > 32) continue;
        const double s =
            static_cast<double>(daxpy_cycles(soc::SocConfig::baseline(32), n, m)) /
            static_cast<double>(daxpy_cycles(soc::SocConfig::extended(32), n, m));
        csv.cell(n).cell(m).cell(s);
        csv.end_row();
      }
    }
    std::printf("wrote %s/fig1_right.csv (%zu rows)\n", outdir.c_str(), csv.rows_written());
  }

  {
    const model::RuntimeModel paper = model::paper_daxpy_model();
    util::CsvWriter csv(outdir + "/model_mape.csv");
    csv.row({"N", "M", "measured_cycles", "predicted_cycles", "abs_err_percent"});
    for (const std::uint64_t n : {256ull, 512ull, 768ull, 1024ull}) {
      for (const unsigned m : ms) {
        if (m > 32) continue;
        const auto t = daxpy_cycles(soc::SocConfig::extended(32), n, m);
        const double pred = paper.predict(m, n);
        csv.cell(n).cell(m).cell(t).cell(pred).cell(
            100.0 * std::abs(static_cast<double>(t) - pred) / static_cast<double>(t));
        csv.end_row();
      }
    }
    std::printf("wrote %s/model_mape.csv (%zu rows)\n", outdir.c_str(), csv.rows_written());
  }

  {
    util::CsvWriter csv(outdir + "/ablation.csv");
    csv.row({"M", "baseline", "multicast_only", "hw_sync_only", "both"});
    for (const unsigned m : ms) {
      if (m > 32) continue;
      csv.cell(m)
          .cell(daxpy_cycles(soc::SocConfig::with_features(32, {false, false}), 1024, m))
          .cell(daxpy_cycles(soc::SocConfig::with_features(32, {true, false}), 1024, m))
          .cell(daxpy_cycles(soc::SocConfig::with_features(32, {false, true}), 1024, m))
          .cell(daxpy_cycles(soc::SocConfig::with_features(32, {true, true}), 1024, m));
      csv.end_row();
    }
    std::printf("wrote %s/ablation.csv (%zu rows)\n", outdir.c_str(), csv.rows_written());
  }

  soc::export_canonical_offload(obs, soc::SocConfig::extended(32), "daxpy", 1024, 32);
  std::printf("done.\n");
  return 0;
}
