// Fault-recovery walkthrough: what the host's watchdog/retry/redistribute
// layer actually does, shown on two injected failures.
//
//  1. A straggler: one cluster reacts 5000 cycles late. The watchdog
//     expires, the host probes the victim, finds it busy, and waits it out —
//     no kill, no retry, correct result.
//  2. A permanent hang: one cluster never reacts to its doorbell, including
//     every retried dispatch. After max_retries the host declares it failed,
//     substitutes its barrier arrival and re-runs its chunk on a survivor —
//     degraded completion, numerically correct.
//
// Both runs print the host-observed phase timestamps and the recovery
// trace (watchdog_timeout / redispatch / cluster_failed / redistribute).
//
// Usage: fault_demo [--n=1024] [--clusters=8] [--victim=3]
#include <cstdio>
#include <string>

#include "soc/observability.h"
#include "soc/workloads.h"
#include "util/cli.h"

namespace {

using namespace mco;

void print_run(soc::Soc& soc, const offload::OffloadResult& r) {
  const auto& ts = r.ts;
  std::printf("  phase timestamps (cycle): call=%llu marshal_done=%llu sync_ready=%llu\n"
              "                            dispatch_done=%llu completion=%llu ret=%llu\n",
              static_cast<unsigned long long>(ts.call),
              static_cast<unsigned long long>(ts.marshal_done),
              static_cast<unsigned long long>(ts.sync_ready),
              static_cast<unsigned long long>(ts.dispatch_done),
              static_cast<unsigned long long>(ts.completion),
              static_cast<unsigned long long>(ts.ret));
  std::printf("  total=%llu cycles, degraded=%s, timeouts=%llu, probes=%llu, retries=%llu,\n"
              "  credits_recovered=%llu, redistributed=%llu, recovery_cycles=%llu\n",
              static_cast<unsigned long long>(r.total()), r.recovery.degraded ? "yes" : "no",
              static_cast<unsigned long long>(r.recovery.watchdog_timeouts),
              static_cast<unsigned long long>(r.recovery.probes),
              static_cast<unsigned long long>(r.recovery.retries),
              static_cast<unsigned long long>(r.recovery.credits_recovered),
              static_cast<unsigned long long>(r.recovery.clusters_redistributed),
              static_cast<unsigned long long>(r.recovery.recovery_cycles));
  if (!r.recovery.failed_clusters.empty()) {
    std::printf("  failed clusters:");
    for (const unsigned c : r.recovery.failed_clusters) std::printf(" %u", c);
    std::printf("\n");
  }
  std::printf("\n  recovery timeline:\n");
  for (const auto& rec : soc.simulator().trace().records()) {
    if (rec.what == "watchdog_timeout" || rec.what == "credit_recovered" ||
        rec.what == "redispatch" || rec.what == "cluster_failed" ||
        rec.what == "redistribute" || rec.what == "offload_done") {
      std::printf("  %10llu  %-16s %s\n", static_cast<unsigned long long>(rec.time),
                  rec.what.c_str(), rec.detail.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const auto m = static_cast<unsigned>(cli.get_int("clusters", 8));
  const auto victim = cli.get_int("victim", 3);
  if (victim < 0 || static_cast<unsigned>(victim) >= m) {
    std::fprintf(stderr, "fault_demo: --victim=%lld is not a cluster index (M=%u); "
                 "nothing would be injected\n", static_cast<long long>(victim), m);
    return 1;
  }

  std::printf("fault_demo: daxpy n=%llu over M=%u clusters, victim cluster %lld\n\n",
              static_cast<unsigned long long>(n), m, static_cast<long long>(victim));

  {
    std::printf("--- run 1: straggler (victim reacts 5000 cycles late) ---\n");
    soc::SocConfig cfg = soc::SocConfig::extended(m);
    cfg.runtime.watchdog_wait_cycles = 2000;
    cfg.fault.target_cluster = victim;
    cfg.fault.cluster_straggle_prob = 1.0;
    cfg.fault.straggle_cycles = 5000;
    soc::Soc soc(cfg);
    soc.simulator().trace().enable();
    const auto r = soc::run_verified(soc, "daxpy", n, m);
    print_run(soc, r);
    std::printf("  -> the probe saw the victim busy; the host waited, never killed it.\n\n");
  }

  {
    std::printf("--- run 2: permanent hang (victim never takes any dispatch) ---\n");
    soc::SocConfig cfg = soc::SocConfig::extended(m);
    cfg.runtime.watchdog_wait_cycles = 2000;
    cfg.fault.target_cluster = victim;
    cfg.fault.cluster_hang_prob = 1.0;
    soc::Soc soc(cfg);
    soc.simulator().trace().enable();
    const auto r = soc::run_verified(soc, "daxpy", n, m);
    print_run(soc, r);
    std::printf(
        "  -> %llu redispatches all hung; the victim was declared failed and its\n"
        "     chunk re-ran on a survivor. Result verified despite the dead cluster.\n",
        static_cast<unsigned long long>(r.recovery.retries));
  }

  if (obs.any()) {
    soc::SocConfig cfg = soc::SocConfig::extended(m);
    cfg.runtime.watchdog_wait_cycles = 2000;
    cfg.fault.target_cluster = victim;
    cfg.fault.cluster_hang_prob = 1.0;
    soc::export_canonical_offload(obs, cfg, "daxpy", n, m);
  }
  return 0;
}
