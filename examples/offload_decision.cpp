// Offload decision in practice (paper Eq. (3) + §III closing discussion).
//
// 1. Calibrate: run a few DAXPY offloads, *fit* the runtime model
//    t = t0 + a·N + b·N/M from the measurements (no RTL inspection needed).
// 2. Decide: for a range of problem sizes, compare the model-predicted
//    offload time (at the best M) against host execution and pick a side.
// 3. Validate: actually run the chosen strategy in the simulator — both
//    paths compute the same result through the same kernel arithmetic — and
//    check the decision was right by also timing the alternative.
//
// Usage: offload_decision [--clusters=32] [--tmax=700]
#include <cstdio>
#include <iostream>

#include "model/decision.h"
#include "model/fitter.h"
#include "soc/observability.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mco;
  const util::Cli cli(argc, argv);
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);
  const auto m_max = static_cast<unsigned>(cli.get_int("clusters", 32));

  // --- 1. calibrate the model from simulated measurements -------------------
  std::vector<model::Sample> samples;
  for (const std::uint64_t n : {256ull, 512ull, 1024ull, 2048ull}) {
    for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
      if (m > m_max) continue;
      samples.push_back(model::Sample{
          m, n,
          static_cast<double>(soc::run_daxpy(soc::SocConfig::extended(m_max), n, m).total())});
    }
  }
  const auto fit = model::fit_runtime_model(samples);
  std::printf("fitted DAXPY model: %s   (paper Eq.1: t0=367, a=0.25, b=0.325)\n\n",
              fit.model.describe().c_str());

  // --- 2 + 3. decide offload-vs-host per problem size and validate ----------
  util::TablePrinter table({"N", "decision", "M", "t_model", "t_offl(sim)", "t_host(sim)",
                            "decision right?"});
  for (const std::uint64_t n : {32ull, 64ull, 128ull, 256ull, 1024ull, 4096ull, 16384ull}) {
    // Host cost prediction from the kernel's own host model (4 cycles/elem).
    soc::Soc probe(soc::SocConfig::extended(m_max));
    sim::Rng rng(7);
    const auto job = soc::prepare_workload(probe, probe.kernels().by_name("daxpy"), n, m_max, rng);
    const double t_host_pred =
        static_cast<double>(probe.kernels().by_name("daxpy").host_execute_cycles(job.args));

    const model::OffloadDecision d = model::decide_offload(fit.model, n, t_host_pred, m_max);

    // Validate both paths in simulation (fresh SoCs for clean timing).
    soc::Soc off_soc(soc::SocConfig::extended(m_max));
    const auto off = soc::run_verified(off_soc, "daxpy", n, d.offload ? d.m : m_max);
    soc::Soc host_soc(soc::SocConfig::extended(m_max));
    sim::Rng rng2(7);
    auto host_job =
        soc::prepare_workload(host_soc, host_soc.kernels().by_name("daxpy"), n, m_max, rng2);
    const auto host_run = host_soc.runtime().execute_on_host_blocking(host_job.args);
    if (host_job.max_abs_error(host_soc) > 1e-9) {
      std::fprintf(stderr, "host path verification failed\n");
      return 1;
    }

    const bool offload_faster = off.total() < host_run.total();
    table.add_row({std::to_string(n), d.offload ? "offload" : "host",
                   d.offload ? std::to_string(d.m) : "-",
                   std::to_string(static_cast<std::uint64_t>(
                       d.offload ? d.t_offload : d.t_host)),
                   std::to_string(off.total()), std::to_string(host_run.total()),
                   d.offload == offload_faster ? "yes" : "NO"});
  }
  table.print(std::cout);

  // --- bonus: the paper's Eq. (3) deadline query -----------------------------
  const double t_max = cli.get_double("tmax", 700.0);
  const auto m_min = model::min_clusters_for_deadline(fit.model, 1024, t_max, m_max);
  if (m_min) {
    std::printf("\nEq.(3): to finish a 1024-point DAXPY within %.0f cycles, use >= %u clusters\n",
                t_max, *m_min);
  } else {
    std::printf("\nEq.(3): no cluster count can meet %.0f cycles for N=1024\n", t_max);
  }
  soc::export_canonical_offload(obs, soc::SocConfig::extended(m_max), "daxpy", 1024, m_max);
  return 0;
}
