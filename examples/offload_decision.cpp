// Offload decision in practice (paper Eq. (3) + §III closing discussion).
//
// 1. Calibrate: run a few DAXPY offloads, *fit* the runtime model
//    t = t0 + a·N + b·N/M from the measurements (no RTL inspection needed).
// 2. Decide: for a range of problem sizes, compare the model-predicted
//    offload time (at the best M) against host execution and pick a side.
// 3. Validate: actually run the chosen strategy in the simulator — both
//    paths compute the same result through the same kernel arithmetic — and
//    check the decision was right by also timing the alternative.
//
// The calibration grid and the validation runs execute on the
// exp::SweepRunner thread pool (--jobs=N), with byte-identical output.
//
// Usage: offload_decision [--clusters=32] [--tmax=700] [--jobs=1]
#include <cstdio>
#include <iostream>

#include "exp/sweep_runner.h"
#include "model/decision.h"
#include "model/fitter.h"
#include "soc/observability.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mco;
  const util::Cli cli(argc, argv);
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);
  const auto m_max = static_cast<unsigned>(cli.get_int("clusters", 32));
  exp::SweepRunner runner(static_cast<unsigned>(cli.get_int("jobs", 1)));

  // --- 1. calibrate the model from simulated measurements -------------------
  exp::ExperimentSpec calib;
  calib.name = "decision_calibration";
  calib.configs = {{"extended", soc::SocConfig::extended(m_max)}};
  calib.ns = {256, 512, 1024, 2048};
  calib.ms.clear();
  for (const unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    if (m <= m_max) calib.ms.push_back(m);
  }
  const exp::ResultSet calib_rs = runner.run(calib);
  std::vector<model::Sample> samples;
  for (const exp::PointResult& r : calib_rs.rows()) {
    samples.push_back(model::Sample{r.point.m, r.point.n, static_cast<double>(r.total)});
  }
  const auto fit = model::fit_runtime_model(samples);
  std::printf("fitted DAXPY model: %s   (paper Eq.1: t0=367, a=0.25, b=0.325)\n\n",
              fit.model.describe().c_str());

  // --- 2 + 3. decide offload-vs-host per problem size and validate ----------
  const std::vector<std::uint64_t> ns{32, 64, 128, 256, 1024, 4096, 16384};

  struct Validation {
    model::OffloadDecision d;
    sim::Cycles offload_cycles = 0;
    sim::Cycles host_cycles = 0;
  };
  const std::vector<Validation> validations = runner.map(ns, [&](const std::uint64_t& n) {
    Validation v;
    // Host cost prediction from the kernel's own host model (4 cycles/elem).
    soc::Soc probe(soc::SocConfig::extended(m_max));
    sim::Rng rng(7);
    const auto job = soc::prepare_workload(probe, probe.kernels().by_name("daxpy"), n, m_max, rng);
    const double t_host_pred =
        static_cast<double>(probe.kernels().by_name("daxpy").host_execute_cycles(job.args));
    v.d = model::decide_offload(fit.model, n, t_host_pred, m_max);

    // Validate both paths in simulation (fresh SoCs for clean timing).
    soc::Soc off_soc(soc::SocConfig::extended(m_max));
    const auto off = soc::run_verified(off_soc, "daxpy", n, v.d.offload ? v.d.m : m_max);
    v.offload_cycles = off.total();
    runner.note_cycles(v.offload_cycles);
    soc::Soc host_soc(soc::SocConfig::extended(m_max));
    sim::Rng rng2(7);
    auto host_job =
        soc::prepare_workload(host_soc, host_soc.kernels().by_name("daxpy"), n, m_max, rng2);
    const auto host_run = host_soc.runtime().execute_on_host_blocking(host_job.args);
    if (host_job.max_abs_error(host_soc) > 1e-9) {
      throw std::runtime_error("host path verification failed");
    }
    v.host_cycles = host_run.total();
    runner.note_cycles(v.host_cycles);
    return v;
  });

  util::TablePrinter table({"N", "decision", "M", "t_model", "t_offl(sim)", "t_host(sim)",
                            "decision right?"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const Validation& v = validations[i];
    const bool offload_faster = v.offload_cycles < v.host_cycles;
    table.add_row({std::to_string(ns[i]), v.d.offload ? "offload" : "host",
                   v.d.offload ? std::to_string(v.d.m) : "-",
                   std::to_string(static_cast<std::uint64_t>(
                       v.d.offload ? v.d.t_offload : v.d.t_host)),
                   std::to_string(v.offload_cycles), std::to_string(v.host_cycles),
                   v.d.offload == offload_faster ? "yes" : "NO"});
  }
  table.print(std::cout);

  // --- bonus: the paper's Eq. (3) deadline query -----------------------------
  const double t_max = cli.get_double("tmax", 700.0);
  const auto m_min = model::min_clusters_for_deadline(fit.model, 1024, t_max, m_max);
  if (m_min) {
    std::printf("\nEq.(3): to finish a 1024-point DAXPY within %.0f cycles, use >= %u clusters\n",
                t_max, *m_min);
  } else {
    std::printf("\nEq.(3): no cluster count can meet %.0f cycles for N=1024\n", t_max);
  }
  soc::export_canonical_offload(obs, soc::SocConfig::extended(m_max), "daxpy", 1024, m_max);
  return 0;
}
