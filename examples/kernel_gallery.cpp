// Gallery: offload every built-in kernel, verify its result against the
// host reference, and show runtime + data/compute character.
//
// The per-kernel offloads form one explicit sweep executed by the
// exp::SweepRunner, so --jobs=N runs them concurrently (same table bytes).
//
// Usage: kernel_gallery [--n=1024] [--clusters=16] [--jobs=1]
#include <cstdio>
#include <iostream>

#include "exp/sweep_runner.h"
#include "soc/observability.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mco;
  const util::Cli cli(argc, argv);
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const auto m = static_cast<unsigned>(cli.get_int("clusters", 16));
  exp::SweepRunner runner(static_cast<unsigned>(cli.get_int("jobs", 1)));

  std::printf("offloading every kernel: n=%llu, M=%u (extended design)\n\n",
              static_cast<unsigned long long>(n), m);

  soc::Soc probe(soc::SocConfig::extended(m));
  std::vector<exp::RunPoint> points;
  for (const kernels::Kernel* k : probe.kernels().all()) {
    exp::RunPoint p;
    p.config_label = "extended";
    p.cfg = soc::SocConfig::extended(m);
    p.kernel = k->name();
    // GEMV's n is a row count; keep its matrix TCDM-friendly.
    p.n = k->name() == "gemv" ? std::min<std::uint64_t>(n / 8, 96) : n;
    p.m = m;
    p.seed = 11;
    p.tolerance = k->name() == "saxpy" ? 1e-5 : 1e-9;
    points.push_back(std::move(p));
  }
  const exp::ResultSet rs = runner.run("kernel_gallery", points);

  util::TablePrinter table({"kernel", "cycles", "payload[words]", "bytes in", "bytes out",
                            "host-epilogue", "verified"});
  for (const kernels::Kernel* k : probe.kernels().all()) {
    const std::uint64_t kn = k->name() == "gemv" ? std::min<std::uint64_t>(n / 8, 96) : n;
    const exp::PointResult& r = rs.find("extended", k->name(), kn, m, /*seed=*/11);

    std::size_t bytes_in = 0;
    std::size_t bytes_out = 0;
    sim::Rng rng(1);
    soc::Soc plan_probe(soc::SocConfig::extended(m));
    const auto job = soc::prepare_workload(plan_probe, *k, kn, m, rng);
    for (unsigned i = 0; i < m; ++i) {
      const auto plan = k->plan_cluster(job.args, i, m);
      bytes_in += plan.bytes_in();
      bytes_out += plan.bytes_out();
    }
    const bool has_epilogue = k->host_epilogue_cycles(job.args, m) > 0;
    table.add_row({k->name(), std::to_string(r.total), std::to_string(r.payload_words),
                   util::human_bytes(bytes_in), util::human_bytes(bytes_out),
                   has_epilogue ? "yes" : "no", "yes"});
  }
  table.print(std::cout);
  std::printf("\nAll results checked against host-side references.\n");
  soc::export_canonical_offload(obs, soc::SocConfig::extended(m), "daxpy", n, m);
  return 0;
}
