// Quickstart: offload a DAXPY to the accelerator fabric and inspect the cost.
//
// Builds two SoCs — the baseline design (sequential dispatch + software
// polling) and the extended design (multicast + hardware credit counter) —
// runs the same functionally-verified DAXPY job on both, and prints the
// runtime and phase breakdown. This is the paper's headline experiment in
// ~40 lines of API use.
//
// Usage: quickstart [--n=1024] [--clusters=32]
#include <cstdio>
#include <iostream>

#include "soc/observability.h"
#include "soc/soc.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mco;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const auto m = static_cast<unsigned>(cli.get_int("clusters", 32));
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);

  util::TablePrinter table(
      {"design", "total[cycles]", "marshal", "sync", "dispatch", "wait", "epilogue"});

  offload::OffloadResult results[2];
  const char* names[2] = {"baseline", "extended"};
  for (int i = 0; i < 2; ++i) {
    const soc::SocConfig cfg =
        i == 0 ? soc::SocConfig::baseline(m) : soc::SocConfig::extended(m);
    soc::Soc soc(cfg);
    // The artifacts capture the extended run — the same run the table prints.
    if (i == 1) soc::arm_observability(soc, obs);
    results[i] = soc::run_verified(soc, "daxpy", n, m);
    if (i == 1) soc::export_observability(soc, obs);
    const auto p = results[i].phases();
    table.add_row({names[i], std::to_string(results[i].total()), std::to_string(p.marshal),
                   std::to_string(p.sync_setup), std::to_string(p.dispatch),
                   std::to_string(p.wait), std::to_string(p.epilogue)});
  }

  std::printf("DAXPY n=%llu on M=%u clusters (cycles @ 1 GHz == ns)\n\n",
              static_cast<unsigned long long>(n), m);
  table.print(std::cout);
  const double speedup = static_cast<double>(results[0].total()) /
                         static_cast<double>(results[1].total());
  std::printf("\nextended-over-baseline speedup: %.3fx (%+lld cycles)\n", speedup,
              static_cast<long long>(results[0].total()) -
                  static_cast<long long>(results[1].total()));
  std::printf("result verified against host reference: OK\n");
  if (!obs.trace_out.empty())
    std::printf("chrome trace written to %s\n", obs.trace_out.c_str());
  if (!obs.metrics_out.empty())
    std::printf("metrics written to %s\n", obs.metrics_out.c_str());
  return 0;
}
