// Protocol-checking walkthrough: the src/check layer in three acts.
//
//  1. Watch a clean offload. A ProtocolMonitor taps the trace stream of a
//     verified extended-design run (observer mode — no trace storage) and
//     prints its ledger: credits conserved, IRQ exactly once, spans balanced.
//  2. Catch a bug. The same monitor observes a BrokenCreditCounter — a
//     deliberately faulty sync unit — in each of its bug modes and names the
//     violated invariant, with the event-history window that convicts it.
//  3. Explore schedules. A ScheduleExplorer re-runs one grid point under
//     seeded permutations of every same-cycle wire batch and shows that the
//     paper's cycle count survives any legal commit order.
//
// Usage: check_demo [--n=1024] [--m=32] [--schedules=8]
#include <cstdio>
#include <string>

#include "check/broken_credit_counter.h"
#include "check/protocol_monitor.h"
#include "check/schedule_explorer.h"
#include "sim/simulator.h"
#include "soc/soc.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/strings.h"

namespace {

using namespace mco;

void print_violations(const check::ProtocolMonitor& mon) {
  for (const check::Violation& v : mon.violations()) {
    std::printf("    [%s] t=%llu %s: %s\n", v.invariant.c_str(),
                static_cast<unsigned long long>(v.time), v.subject.c_str(), v.message.c_str());
    for (const sim::TraceRecord& rec : v.window) {
      std::printf("        %6llu  %-28s %-16s %s\n",
                  static_cast<unsigned long long>(rec.time), rec.who.c_str(), rec.what.c_str(),
                  rec.detail.c_str());
    }
  }
}

/// Drive one arm/credit epoch of a (possibly broken) counter under a monitor,
/// emitting the surrounding protocol records (dispatch, doorbell, wakeup,
/// completion signal) the way a real offload's trace stream would.
void run_epoch(check::BrokenCreditCounter::Bug bug, const char* label) {
  sim::Simulator sim;
  check::ProtocolMonitor mon;
  mon.attach(sim.trace());
  check::BrokenCreditCounter unit(sim, "sync", bug);
  unit.set_irq_callback([] {});
  unit.arm(4);
  for (unsigned c = 0; c < 4; ++c) {
    sim.trace().record(0, "noc", "unicast", util::format("cluster=%u", c));
    sim.trace().record(0, util::format("soc.cluster%u.mailbox", c), "doorbell");
    sim.trace().record(0, util::format("soc.cluster%u", c), "wakeup");
    sim.trace().record(0, util::format("soc.cluster%u", c), "signal", "credit");
    unit.increment(c);
  }
  sim.run();
  mon.finish();
  std::printf("  %-16s -> %llu violation(s)%s\n", label,
              static_cast<unsigned long long>(mon.total_violations()),
              mon.clean() ? "  (faithful reference)" : "");
  print_violations(mon);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const unsigned m = static_cast<unsigned>(cli.get_int("m", 32));
  const unsigned schedules = static_cast<unsigned>(cli.get_int("schedules", 8));

  std::printf("=== 1. ProtocolMonitor on a clean offload (extended, N=%llu, M=%u) ===\n",
              static_cast<unsigned long long>(n), m);
  {
    soc::Soc soc(soc::SocConfig::extended(32));
    check::ProtocolMonitor mon;
    mon.attach(soc);
    const offload::OffloadResult r = soc::run_verified(soc, "daxpy", n, m, 42);
    mon.finish();
    std::printf("  %llu cycles, %llu trace records observed, %llu violation(s)\n",
                static_cast<unsigned long long>(r.total()),
                static_cast<unsigned long long>(mon.records_seen()),
                static_cast<unsigned long long>(mon.total_violations()));
    print_violations(mon);
    std::printf("\n  violation document:\n%s\n", mon.to_json().c_str());
  }

  std::printf("=== 2. The monitor vs. a broken sync unit ===\n");
  using Bug = check::BrokenCreditCounter::Bug;
  run_epoch(Bug::kNone, "faithful");
  run_epoch(Bug::kLoseCredit, "lose_credit");
  run_epoch(Bug::kDoubleCount, "double_count");
  run_epoch(Bug::kEarlyIrq, "early_irq");
  run_epoch(Bug::kDuplicateIrq, "duplicate_irq");
  run_epoch(Bug::kPhantomCredit, "phantom_credit");

  std::printf("\n=== 3. ScheduleExplorer: %u seeded commit orders ===\n", schedules);
  {
    check::ScheduleExplorerConfig ec;
    ec.schedules = schedules;
    const check::ScheduleExplorer explorer(ec);
    exp::RunPoint p;
    p.config_label = "extended";
    p.cfg = soc::SocConfig::extended(32);
    p.kernel = "daxpy";
    p.n = n;
    p.m = m;
    p.seed = 42;
    const check::ScheduleReport rep = explorer.explore(p);
    for (const check::ScheduleRun& run : rep.runs) {
      std::printf("  schedule %2u%s: %llu cycles, err=%.3e, %llu violation(s)\n", run.schedule,
                  run.schedule == 0 ? " (FIFO)" : "       ",
                  static_cast<unsigned long long>(run.total), run.max_abs_error,
                  static_cast<unsigned long long>(run.violations));
    }
    std::printf("  cycles identical across schedules: %s; clean: %s\n",
                rep.cycles_identical ? "yes" : "NO", rep.clean() ? "yes" : "NO");
  }
  return 0;
}
