// Trace inspection: the simulator's answer to an RTL waveform viewer.
//
// Enables the structured trace sink, runs one offload on each design, and
// prints the full event timeline — every dispatch, doorbell, barrier
// arrival, DMA completion, credit and interrupt with its cycle stamp. Can
// also dump the trace as CSV or Chrome-tracing JSON for external tooling
// (load the JSON in chrome://tracing or ui.perfetto.dev).
//
// Usage: trace_inspect [--n=256] [--clusters=4] [--design=extended|baseline]
//                      [--csv=trace.csv] [--chrome=trace.json]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "sim/trace_export.h"
#include "soc/observability.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace mco;
  const util::Cli cli(argc, argv);
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 256));
  const auto m = static_cast<unsigned>(cli.get_int("clusters", 4));
  const std::string design = cli.get("design", "extended");
  if (design != "extended" && design != "baseline") {
    std::fprintf(stderr, "unknown --design '%s' (use extended|baseline)\n", design.c_str());
    return 1;
  }

  soc::Soc soc(design == "extended" ? soc::SocConfig::extended(m)
                                    : soc::SocConfig::baseline(m));
  soc.simulator().trace().enable();
  const auto r = soc::run_verified(soc, "daxpy", n, m);

  std::printf("offload timeline: daxpy n=%llu M=%u, %s design, %llu cycles total\n\n",
              static_cast<unsigned long long>(n), m, design.c_str(),
              static_cast<unsigned long long>(r.total()));
  std::printf("%10s  %-22s %-14s %s\n", "cycle", "component", "event", "detail");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (const auto& rec : soc.simulator().trace().records()) {
    std::printf("%10llu  %-22s %-14s %s\n", static_cast<unsigned long long>(rec.time),
                rec.who.c_str(), rec.what.c_str(), rec.detail.c_str());
  }

  if (cli.has("chrome")) {
    const std::string path = cli.get("chrome", "trace.json");
    sim::write_chrome_trace(soc.simulator().trace(), path);
    std::printf("\nchrome trace written to %s (open in chrome://tracing)\n", path.c_str());
  }

  if (cli.has("csv")) {
    const std::string path = cli.get("csv", "trace.csv");
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    f << soc.simulator().trace().to_csv();
    std::printf("\ntrace written to %s (%zu records)\n", path.c_str(),
                soc.simulator().trace().records().size());
  }
  // Shared flags: same trace as --chrome, plus the full metrics inventory.
  soc::export_observability(soc, obs);
  if (!obs.trace_out.empty())
    std::printf("\nchrome trace written to %s\n", obs.trace_out.c_str());
  if (!obs.metrics_out.empty())
    std::printf("metrics written to %s\n", obs.metrics_out.c_str());
  return 0;
}
