// A small application built on the offload API: Richardson iteration on a
// diagonal system A = diag(d), mixing elementwise and reduction offloads.
//
//   ax  = d .* x        (vecmul)
//   r   = b             (memcpy)
//   r  -= ax            (daxpy, alpha = -1)
//   x  += omega * r     (daxpy)
//   rho = r . r         (dot, host combines the partials)
//
// Five back-to-back offloads per iteration — exactly the fine-grained,
// frequently-launched pattern whose overheads the paper optimizes. The loop
// runs on both designs with identical arithmetic; the residual trajectory is
// verified to converge and to match between designs, and the cycle + energy
// totals quantify what the extensions buy a real application.
//
// Usage: solver_pipeline [--n=1024] [--clusters=16] [--iters=8]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "energy/energy_model.h"
#include "kernels/blas1.h"
#include "kernels/reductions.h"
#include "soc/observability.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace mco;

struct SolveStats {
  sim::Cycles total_cycles = 0;
  std::vector<double> residuals;
  double energy_pj = 0.0;
  unsigned offloads = 0;
  double solution_error = 0.0;
};

SolveStats run_solver(const soc::SocConfig& cfg, std::uint64_t n, unsigned m, unsigned iters) {
  soc::Soc soc(cfg);
  sim::Rng rng(99);

  // System: A = diag(d), d in [1, 2]; exact solution xs; b = d .* xs.
  std::vector<double> d(n), xs(n), b(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    d[i] = rng.uniform(1.0, 2.0);
    xs[i] = rng.uniform(-1.0, 1.0);
    b[i] = d[i] * xs[i];
  }
  const mem::Addr d_a = soc.alloc_f64(d);
  const mem::Addr b_a = soc.alloc_f64(b);
  const mem::Addr x_a = soc.alloc_f64_zero(n);
  const mem::Addr ax_a = soc.alloc_f64_zero(n);
  const mem::Addr r_a = soc.alloc_f64_zero(n);
  const mem::Addr partials = soc.alloc_f64_zero(soc.num_clusters());
  const mem::Addr rho_a = soc.alloc_f64_zero(1);
  const double omega = 0.6;  // converges: spectral radius max|1 - omega*d| = 0.4

  const energy::EnergyConfig ecfg;
  const energy::EnergyCounters e0 = energy::snapshot(soc);
  const sim::Cycle t0 = soc.simulator().now();
  SolveStats stats;

  const auto offload = [&](kernels::JobArgs a) {
    stats.total_cycles += soc.run_offload(a, m).total();
    ++stats.offloads;
  };

  for (unsigned it = 0; it < iters; ++it) {
    kernels::JobArgs a;

    a = {};  // ax = d .* x
    a.kernel_id = kernels::kVecMulId;
    a.n = n;
    a.in0 = d_a;
    a.in1 = x_a;
    a.out0 = ax_a;
    offload(a);

    a = {};  // r = b
    a.kernel_id = kernels::kMemcpyId;
    a.n = n;
    a.in0 = b_a;
    a.out0 = r_a;
    offload(a);

    a = {};  // r -= ax
    a.kernel_id = kernels::kDaxpyId;
    a.n = n;
    a.alpha = -1.0;
    a.in0 = ax_a;
    a.out0 = r_a;
    offload(a);

    a = {};  // x += omega * r
    a.kernel_id = kernels::kDaxpyId;
    a.n = n;
    a.alpha = omega;
    a.in0 = r_a;
    a.out0 = x_a;
    offload(a);

    a = {};  // rho = r . r
    a.kernel_id = kernels::kDotId;
    a.n = n;
    a.in0 = r_a;
    a.in1 = r_a;
    a.out0 = partials;
    a.out1 = rho_a;
    offload(a);

    stats.residuals.push_back(soc.read_f64(rho_a, 1)[0]);
  }

  const sim::Cycle t1 = soc.simulator().now();
  const energy::EnergyCounters e1 = energy::snapshot(soc);
  stats.energy_pj =
      energy::estimate(ecfg, e1 - e0, t1 - t0, m, soc.config().cluster.num_workers).total_pj();

  const auto x_final = soc.read_f64(x_a, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    stats.solution_error = std::max(stats.solution_error, std::abs(x_final[i] - xs[i]));
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const soc::ObservabilityOptions obs = soc::observability_from_cli(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const auto m = static_cast<unsigned>(cli.get_int("clusters", 16));
  const auto iters = static_cast<unsigned>(cli.get_int("iters", 8));

  std::printf("Richardson iteration on A = diag(d): n=%llu, M=%u, %u iterations, "
              "5 offloads/iteration\n\n",
              static_cast<unsigned long long>(n), m, iters);

  const SolveStats ext = run_solver(soc::SocConfig::extended(m), n, m, iters);
  const SolveStats base = run_solver(soc::SocConfig::baseline(m), n, m, iters);

  std::printf("residual trajectory (extended design):\n");
  for (std::size_t i = 0; i < ext.residuals.size(); ++i) {
    std::printf("  iter %2zu: ||r||^2 = %.6e\n", i, ext.residuals[i]);
  }
  for (std::size_t i = 0; i < ext.residuals.size(); ++i) {
    if (ext.residuals[i] != base.residuals[i]) {
      std::fprintf(stderr, "designs diverged numerically at iteration %zu\n", i);
      return 1;
    }
  }
  std::printf("  (baseline design: identical trajectory, as required)\n\n");

  util::TablePrinter t({"design", "offloads", "total cycles", "energy [nJ]"});
  t.add_row({"baseline", std::to_string(base.offloads), std::to_string(base.total_cycles),
             util::format("%.1f", base.energy_pj / 1000.0)});
  t.add_row({"extended", std::to_string(ext.offloads), std::to_string(ext.total_cycles),
             util::format("%.1f", ext.energy_pj / 1000.0)});
  t.print(std::cout);
  std::printf("\nwhole-application speedup from the paper's extensions: %.3fx\n",
              static_cast<double>(base.total_cycles) / static_cast<double>(ext.total_cycles));
  std::printf("max |x - x_exact| after %u iterations: %.3e\n", iters, ext.solution_error);

  if (!(ext.residuals.back() < ext.residuals.front())) {
    std::fprintf(stderr, "residual did not decrease\n");
    return 1;
  }
  soc::export_canonical_offload(obs, soc::SocConfig::extended(m), "daxpy", n, m);
  return 0;
}
