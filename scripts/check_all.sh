#!/usr/bin/env bash
# Full robustness matrix: the plain build plus the sanitizer builds, each with
# its ctest suite, in separate build trees so they never contaminate each
# other. This is the "everything the repo can self-check" entry point:
#
#   build-check/plain    Release, full ctest suite (unit + golden pins +
#                        python-gated smokes: metrics_regression,
#                        bench_sweep_report, check_cli_errors)
#   build-check/asan     ASan+UBSan, tests only (benches uninteresting under
#                        ASan and ~10x slower; the test_scenario catalog suite
#                        runs every scenarios/*.scn episode under ASan here)
#   build-check/tsan     TSan, the concurrency + schedule-explorer + serve-soak
#                        + fleet-soak + chaos-scenario suites (the labelled
#                        "sanitize" ctest entries; benches stay on because
#                        tsan_serve_soak, tsan_fleet_soak and tsan_scenario
#                        drive their bench binaries with internal --jobs
#                        parallelism)
#   build-check/fast     -DMCO_FAST=ON: tracing compiled out of the inner
#                        loop. Runs test_fast (the only test binary in this
#                        mode — the rest assert on trace records) plus the
#                        golden/bench smokes, proving cycle counts, metrics
#                        goldens and the E21 speedup floor hold with the
#                        sink compiled out (docs/performance.md)
#
# Usage:
#   scripts/check_all.sh            # full matrix
#   scripts/check_all.sh plain      # one stage only (plain | asan | tsan | fast)
#   MCO_CHECK_JOBS=8 scripts/check_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${MCO_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}"
ROOT="build-check"
STAGES=("${@:-plain asan tsan fast}")
# Allow "check_all.sh plain asan" as separate args or one default string.
read -r -a STAGES <<<"${STAGES[*]}"

run_stage() {
  local name="$1"; shift
  local cmake_args=("$@")
  local dir="$ROOT/$name"
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "${cmake_args[@]}" >"$dir.configure.log" 2>&1 ||
    { cat "$dir.configure.log"; return 1; }
  echo "=== [$name] build (-j$JOBS) ==="
  cmake --build "$dir" -j"$JOBS" >"$dir.build.log" 2>&1 ||
    { tail -50 "$dir.build.log"; return 1; }
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    plain)
      mkdir -p "$ROOT"
      run_stage plain
      echo "=== [plain] ctest ==="
      (cd "$ROOT/plain" && ctest --output-on-failure -j"$JOBS")
      ;;
    asan)
      mkdir -p "$ROOT"
      run_stage asan -DMCO_SANITIZE=address -DMCO_BUILD_BENCHES=OFF \
        -DMCO_BUILD_EXAMPLES=OFF
      echo "=== [asan] ctest ==="
      (cd "$ROOT/asan" && ctest --output-on-failure -j"$JOBS")
      ;;
    tsan)
      mkdir -p "$ROOT"
      # Benches explicitly ON: tsan_serve_soak / tsan_fleet_soak /
      # tsan_scenario drive their bench binaries, and an older
      # build-check/tsan cache may still carry BENCHES=OFF.
      run_stage tsan -DMCO_SANITIZE=thread -DMCO_BUILD_BENCHES=ON \
        -DMCO_BUILD_EXAMPLES=OFF
      echo "=== [tsan] ctest (label: sanitize) ==="
      (cd "$ROOT/tsan" && ctest --output-on-failure -L sanitize)
      ;;
    fast)
      mkdir -p "$ROOT"
      run_stage fast -DMCO_FAST=ON -DMCO_BUILD_EXAMPLES=OFF
      echo "=== [fast] ctest (test_fast + golden/bench smokes) ==="
      (cd "$ROOT/fast" && ctest --output-on-failure -j"$JOBS")
      ;;
    *)
      echo "error: unknown stage '$stage' (want plain, asan, tsan or fast)" >&2
      exit 2
      ;;
  esac
done

echo "=== check_all: all stages passed ==="
