#!/usr/bin/env python3
"""Cross-check the observability and invariant name inventories, bidirectionally.

Sources of truth that must agree exactly:

  1. the ``metric_reference()`` table in ``src/soc/observability.cpp``
     (what the code declares it emits);
  2. the inventory tables in ``docs/observability.md`` (what the docs
     document): the first backticked token of every markdown table row;
  3. the ``invariant_reference()`` catalog in
     ``src/check/protocol_monitor.cpp`` vs the invariant-catalog table in
     ``docs/robustness.md`` (same extraction, scoped to its section);
  4. the ``scenario_keyword_reference()`` table in
     ``src/scenario/scenario.cpp`` (every header key, verb, traffic profile,
     fault preset, argument and verdict metric the chaos-scenario dialect
     accepts) vs the keyword-reference tables in ``docs/scenarios.md``
     (same extraction, scoped to its section);
  5. the ``dispatch_reference()`` catalog in ``src/sim/trace.cpp`` (every
     TraceSink dispatch tier the fast path distinguishes) vs the dispatch
     table in ``docs/performance.md`` (same extraction, scoped to its
     section);
  6. the ``MCO_*`` build options declared in the top-level ``CMakeLists.txt``
     vs the build-mode table in ``docs/performance.md`` — adding a build
     mode without documenting its performance semantics is an error.

The C++ side of the same check (``DocsCrossCheck.*`` in
``tests/test_trace_spans.cpp``) additionally verifies the reference against
the names an instrumented simulation actually registers; this script is the
no-build fast path (and the hook CI runs on doc-only edits).

Exit status 0 when the sets match; 1 with a per-name report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CPP = REPO / "src" / "soc" / "observability.cpp"
DOC = REPO / "docs" / "observability.md"
CHECK_CPP = REPO / "src" / "check" / "protocol_monitor.cpp"
ROBUSTNESS_DOC = REPO / "docs" / "robustness.md"
SCENARIO_CPP = REPO / "src" / "scenario" / "scenario.cpp"
SCENARIO_DOC = REPO / "docs" / "scenarios.md"
TRACE_CPP = REPO / "src" / "sim" / "trace.cpp"
PERFORMANCE_DOC = REPO / "docs" / "performance.md"
CMAKE_TOP = REPO / "CMakeLists.txt"


def reference_names(cpp_text: str) -> dict[str, str]:
    """Parse the {"name", "kind"} literals of metric_reference()."""
    body = re.search(
        r"metric_reference\(\)\s*\{.*?kReference\s*=\s*\{(.*?)\n\s*\};",
        cpp_text,
        re.DOTALL,
    )
    if not body:
        sys.exit(f"error: could not find the kReference table in {CPP}")
    names = {}
    for m in re.finditer(r'\{"([^"]+)",\s*"([^"]+)"\}', body.group(1)):
        name, kind = m.groups()
        if name in names:
            sys.exit(f"error: duplicate metric_reference() entry '{name}'")
        names[name] = kind
    return names


def documented_names(doc_text: str) -> set[str]:
    """First backticked token of every markdown table row (same extraction
    as DocsCrossCheck.ObservabilityDocMatchesReferenceBidirectionally)."""
    names = set()
    for line in doc_text.splitlines():
        stripped = line.lstrip()
        if not stripped.startswith("|"):
            continue
        m = re.search(r"`([^`]+)`", stripped)
        if m:
            names.add(m.group(1))
    return names


def invariant_names(cpp_text: str) -> set[str]:
    """Parse the entry names of invariant_reference(). Statements span
    concatenated string literals, so only match each entry's opening
    {"name" token inside the kReference initializer."""
    body = re.search(
        r"invariant_reference\(\)\s*\{.*?kReference\s*=\s*\{(.*?)\n\s*\};",
        cpp_text,
        re.DOTALL,
    )
    if not body:
        sys.exit(f"error: could not find the kReference table in {CHECK_CPP}")
    names = set()
    for m in re.finditer(r'\{"([a-z_]+)",', body.group(1)):
        name = m.group(1)
        if name in names:
            sys.exit(f"error: duplicate invariant_reference() entry '{name}'")
        names.add(name)
    return names


def documented_invariants(doc_text: str) -> set[str]:
    """First backticked token of table rows inside the invariant-catalog
    section only — the other tables in robustness.md (bug modes, failure
    matrix) legitimately use backticked first cells."""
    section = re.search(
        r"^## The invariant catalog$(.*?)(?=^## )", doc_text, re.DOTALL | re.MULTILINE
    )
    if not section:
        sys.exit(f"error: no '## The invariant catalog' section in {ROBUSTNESS_DOC}")
    return documented_names(section.group(1))


def keyword_names(cpp_text: str) -> dict[str, str]:
    """Parse the {"name", "kind"} literals of scenario_keyword_reference()."""
    body = re.search(
        r"scenario_keyword_reference\(\)\s*\{.*?kReference\s*=\s*\{(.*?)\n\s*\};",
        cpp_text,
        re.DOTALL,
    )
    if not body:
        sys.exit(f"error: could not find the kReference table in {SCENARIO_CPP}")
    # A name may repeat across kinds ("clusters" is both a header and a verb
    # argument) but never within one kind.
    entries = []
    for m in re.finditer(r'\{"([^"]+)",\s*"([^"]+)"\}', body.group(1)):
        name, kind = m.groups()
        if (name, kind) in entries:
            sys.exit(
                f"error: duplicate scenario_keyword_reference() entry '{name}' ({kind})")
        entries.append((name, kind))
    return entries


def documented_keywords(doc_text: str) -> set[str]:
    """First backticked token of table rows inside the keyword-reference
    section only — the catalog table earlier in scenarios.md legitimately
    uses backticked first cells (file names)."""
    section = re.search(
        r"^## Keyword reference$(.*?)(?=^## |\Z)", doc_text, re.DOTALL | re.MULTILINE
    )
    if not section:
        sys.exit(f"error: no '## Keyword reference' section in {SCENARIO_DOC}")
    return documented_names(section.group(1))


def dispatch_names(cpp_text: str) -> set[str]:
    """Parse the entry names of dispatch_reference(). Statements span
    concatenated string literals, so only match each entry's opening
    {"name" token inside the kReference initializer."""
    body = re.search(
        r"dispatch_reference\(\)\s*\{.*?kReference\s*=\s*\{(.*?)\n\s*\};",
        cpp_text,
        re.DOTALL,
    )
    if not body:
        sys.exit(f"error: could not find the kReference table in {TRACE_CPP}")
    names = set()
    for m in re.finditer(r'\{"([a-z_]+)",', body.group(1)):
        name = m.group(1)
        if name in names:
            sys.exit(f"error: duplicate dispatch_reference() entry '{name}'")
        names.add(name)
    return names


def documented_dispatch(doc_text: str) -> set[str]:
    """First backticked token of table rows inside the dispatch section of
    docs/performance.md only — its other tables (build modes, complexity)
    legitimately use backticked first cells."""
    section = re.search(
        r"^## TraceSink dispatch paths$(.*?)(?=^## |\Z)",
        doc_text, re.DOTALL | re.MULTILINE,
    )
    if not section:
        sys.exit(f"error: no '## TraceSink dispatch paths' section in {PERFORMANCE_DOC}")
    return documented_names(section.group(1))


def cmake_build_modes(cmake_text: str) -> set[str]:
    """Every MCO_* switch the top-level CMakeLists.txt declares, whether as
    an option() or a multi-value cache STRING."""
    names = set(re.findall(r"^option\((MCO_[A-Z_]+)", cmake_text, re.MULTILINE))
    names |= set(re.findall(r'^set\((MCO_[A-Z_]+)\s+"[^"]*"\s+CACHE\s+STRING',
                            cmake_text, re.MULTILINE))
    if not names:
        sys.exit(f"error: no MCO_* options found in {CMAKE_TOP}")
    return names


def documented_build_modes(doc_text: str) -> set[str]:
    section = re.search(
        r"^## Build modes$(.*?)(?=^## |\Z)", doc_text, re.DOTALL | re.MULTILINE
    )
    if not section:
        sys.exit(f"error: no '## Build modes' section in {PERFORMANCE_DOC}")
    return documented_names(section.group(1))


def cross_check(reference: set[str], documented: set[str],
                code_label: str, doc_name: str) -> bool:
    ok = True
    for name in sorted(reference - documented):
        print(f"UNDOCUMENTED: {name} is in {code_label} "
              f"but has no inventory row in {doc_name}")
        ok = False
    for name in sorted(documented - reference):
        print(f"STALE DOC: {name} is documented in {doc_name} "
              f"but missing from {code_label}")
        ok = False
    return ok


def main() -> int:
    reference = reference_names(CPP.read_text())
    documented = documented_names(DOC.read_text())

    ok = cross_check(set(reference), documented, "metric_reference()", DOC.name)
    if ok:
        kinds = {}
        for kind in reference.values():
            kinds[kind] = kinds.get(kind, 0) + 1
        summary = ", ".join(f"{n} {k}s" for k, n in sorted(kinds.items()))
        print(f"ok: {len(reference)} names in sync ({summary})")

    invariants = invariant_names(CHECK_CPP.read_text())
    inv_doc = documented_invariants(ROBUSTNESS_DOC.read_text())
    inv_ok = cross_check(invariants, inv_doc, "invariant_reference()",
                         ROBUSTNESS_DOC.name)
    if inv_ok:
        print(f"ok: {len(invariants)} invariants in sync")

    keywords = keyword_names(SCENARIO_CPP.read_text())
    kw_doc = documented_keywords(SCENARIO_DOC.read_text())
    kw_ok = cross_check({name for name, _ in keywords}, kw_doc,
                        "scenario_keyword_reference()", SCENARIO_DOC.name)
    if kw_ok:
        kinds = {}
        for _, kind in keywords:
            kinds[kind] = kinds.get(kind, 0) + 1
        summary = ", ".join(f"{n} {k}s" for k, n in sorted(kinds.items()))
        print(f"ok: {len(keywords)} scenario keywords in sync ({summary})")

    perf_doc = PERFORMANCE_DOC.read_text()
    dispatch = dispatch_names(TRACE_CPP.read_text())
    disp_ok = cross_check(dispatch, documented_dispatch(perf_doc),
                          "dispatch_reference()", PERFORMANCE_DOC.name)
    if disp_ok:
        print(f"ok: {len(dispatch)} trace dispatch paths in sync")

    modes = cmake_build_modes(CMAKE_TOP.read_text())
    mode_ok = cross_check(modes, documented_build_modes(perf_doc),
                          "CMakeLists.txt MCO_* options", PERFORMANCE_DOC.name)
    if mode_ok:
        print(f"ok: {len(modes)} build modes in sync")

    return 0 if ok and inv_ok and kw_ok and disp_ok and mode_ok else 1


if __name__ == "__main__":
    sys.exit(main())
