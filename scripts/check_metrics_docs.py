#!/usr/bin/env python3
"""Cross-check the observability name inventory, bidirectionally.

Sources of truth that must agree exactly:

  1. the ``metric_reference()`` table in ``src/soc/observability.cpp``
     (what the code declares it emits);
  2. the inventory tables in ``docs/observability.md`` (what the docs
     document): the first backticked token of every markdown table row.

The C++ side of the same check (``DocsCrossCheck.*`` in
``tests/test_trace_spans.cpp``) additionally verifies the reference against
the names an instrumented simulation actually registers; this script is the
no-build fast path (and the hook CI runs on doc-only edits).

Exit status 0 when the sets match; 1 with a per-name report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CPP = REPO / "src" / "soc" / "observability.cpp"
DOC = REPO / "docs" / "observability.md"


def reference_names(cpp_text: str) -> dict[str, str]:
    """Parse the {"name", "kind"} literals of metric_reference()."""
    body = re.search(
        r"metric_reference\(\)\s*\{.*?kReference\s*=\s*\{(.*?)\n\s*\};",
        cpp_text,
        re.DOTALL,
    )
    if not body:
        sys.exit(f"error: could not find the kReference table in {CPP}")
    names = {}
    for m in re.finditer(r'\{"([^"]+)",\s*"([^"]+)"\}', body.group(1)):
        name, kind = m.groups()
        if name in names:
            sys.exit(f"error: duplicate metric_reference() entry '{name}'")
        names[name] = kind
    return names


def documented_names(doc_text: str) -> set[str]:
    """First backticked token of every markdown table row (same extraction
    as DocsCrossCheck.ObservabilityDocMatchesReferenceBidirectionally)."""
    names = set()
    for line in doc_text.splitlines():
        stripped = line.lstrip()
        if not stripped.startswith("|"):
            continue
        m = re.search(r"`([^`]+)`", stripped)
        if m:
            names.add(m.group(1))
    return names


def main() -> int:
    reference = reference_names(CPP.read_text())
    documented = documented_names(DOC.read_text())

    ok = True
    for name in sorted(set(reference) - documented):
        print(f"UNDOCUMENTED: {name} ({reference[name]}) is in metric_reference() "
              f"but has no inventory row in {DOC.name}")
        ok = False
    for name in sorted(documented - set(reference)):
        print(f"STALE DOC: {name} is documented in {DOC.name} "
              f"but missing from metric_reference()")
        ok = False

    if ok:
        kinds = {}
        for kind in reference.values():
            kinds[kind] = kinds.get(kind, 0) + 1
        summary = ", ".join(f"{n} {k}s" for k, n in sorted(kinds.items()))
        print(f"ok: {len(reference)} names in sync ({summary})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
