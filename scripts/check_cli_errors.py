#!/usr/bin/env python3
"""CLI robustness smoke: malformed flags must fail fast, loudly and uniformly.

Every bench binary parses --jobs (exp::SweepRunner::jobs_from_args) and
--trace-out/--metrics-out (soc::observability_from_args) before doing any
work. This script drives one binary through the documented failure modes and
asserts the shared contract:

  * exit code 2 (not 0, not 1, not a crash);
  * a single-line diagnostic on stderr starting with "error:";
  * no table output on stdout (the failure happens before any simulation).

A positive control run at the end guards against the opposite regression
(valid flags suddenly rejected).

Bench-specific flags that fail fast before any simulation are held to the
same contract: bench_serve_soak's --serve-jobs, bench_fleet_soak's
--fleet-jobs, bench_fleet_chaos's --chaos-jobs, bench_integrity's
--integrity-jobs, and bench_scenario's
--scenario/--scenario-dir (a missing or malformed scenario file aborts the
whole catalog before the E20 banner prints). The --report-out flags follow
the E18 --violations-out precedent and are validated at write time, so they
are not fail-fast cases.

Usage:
  python3 scripts/check_cli_errors.py [--build build] [--bench bench_fig1_left]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# (label, extra argv, extra env) — every case must exit 2 with an error: line.
ERROR_CASES = [
    ("jobs zero", ["--jobs=0"], {}),
    ("jobs negative", ["--jobs=-4"], {}),
    ("jobs garbage", ["--jobs=banana"], {}),
    ("jobs trailing junk", ["--jobs=4x"], {}),
    ("jobs huge", ["--jobs=99999"], {}),
    ("jobs missing value", ["--jobs"], {}),
    ("jobs space-separated garbage", ["--jobs", "none"], {}),
    ("MCO_JOBS garbage", [], {"MCO_JOBS": "many"}),
    ("trace-out missing dir", ["--trace-out=/no/such/dir/trace.json"], {}),
    ("metrics-out missing dir", ["--metrics-out", "/no/such/dir/m.csv"], {}),
]

# Same contract, but for flags owned by one specific bench binary.
# (binary, label, extra argv) — must exit 2 with an "error:" line, no stdout.
BENCH_ERROR_CASES = [
    ("bench_serve_soak", "serve-jobs zero", ["--serve-jobs=0"]),
    ("bench_serve_soak", "serve-jobs garbage", ["--serve-jobs=lots"]),
    ("bench_serve_soak", "serve-jobs trailing junk", ["--serve-jobs=100x"]),
    ("bench_serve_soak", "serve-jobs huge", ["--serve-jobs=9999999"]),
    ("bench_fleet_soak", "fleet-jobs zero", ["--fleet-jobs=0"]),
    ("bench_fleet_soak", "fleet-jobs garbage", ["--fleet-jobs=lots"]),
    ("bench_fleet_soak", "fleet-jobs trailing junk", ["--fleet-jobs=100x"]),
    ("bench_fleet_soak", "fleet-jobs huge", ["--fleet-jobs=9999999"]),
    ("bench_fleet_chaos", "chaos-jobs zero", ["--chaos-jobs=0"]),
    ("bench_fleet_chaos", "chaos-jobs negative", ["--chaos-jobs=-1"]),
    ("bench_fleet_chaos", "chaos-jobs garbage", ["--chaos-jobs=lots"]),
    ("bench_fleet_chaos", "chaos-jobs trailing junk", ["--chaos-jobs=100x"]),
    ("bench_fleet_chaos", "chaos-jobs huge", ["--chaos-jobs=9999999"]),
    ("bench_integrity", "integrity-jobs zero", ["--integrity-jobs=0"]),
    ("bench_integrity", "integrity-jobs negative", ["--integrity-jobs=-1"]),
    ("bench_integrity", "integrity-jobs garbage", ["--integrity-jobs=lots"]),
    ("bench_integrity", "integrity-jobs trailing junk", ["--integrity-jobs=100x"]),
    ("bench_integrity", "integrity-jobs huge", ["--integrity-jobs=9999999"]),
    ("bench_scenario", "scenario missing file", ["--scenario=/no/such/episode.scn"]),
    ("bench_scenario", "scenario malformed file", [f"--scenario={REPO / 'README.md'}"]),
    ("bench_scenario", "scenario-dir missing", ["--scenario-dir=/no/such/dir"]),
    ("bench_scenario", "scenario-dir without catalog", [f"--scenario-dir={REPO / 'docs'}"]),
    ("bench_simspeed", "jobs garbage (simspeed)", ["--jobs=banana"]),
    ("bench_simspeed", "trace-out missing dir (simspeed)",
     ["--trace-out=/no/such/dir/trace.json"]),
    ("bench_simspeed", "metrics-out missing dir (simspeed)",
     ["--metrics-out=/no/such/dir/m.csv"]),
    ("bench_simspeed", "assert-speedup garbage", ["--assert-speedup=fast"]),
    ("bench_simspeed", "assert-speedup negative", ["--assert-speedup=-2"]),
    ("bench_simspeed", "assert-speedup trailing junk", ["--assert-speedup=3x"]),
    ("bench_simspeed", "reps zero", ["--reps=0"]),
    ("bench_simspeed", "reps garbage", ["--reps=many"]),
    ("bench_simspeed", "reps huge", ["--reps=1000"]),
]


def run(exe: Path, argv: list[str], env_extra: dict[str, str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop("MCO_JOBS", None)
    env.update(env_extra)
    return subprocess.run(
        [str(exe), *argv], env=env, capture_output=True, text=True, timeout=300)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build", help="CMake build directory")
    ap.add_argument("--bench", default="bench_fig1_left",
                    help="bench binary to exercise (any of them shares the parsers)")
    args = ap.parse_args()
    build = (REPO / args.build) if not Path(args.build).is_absolute() else Path(args.build)
    exe = build / "bench" / args.bench
    if not exe.exists():
        sys.exit(f"error: {exe} not built (cmake --build {build} first)")

    failures: list[str] = []
    for label, argv, env in ERROR_CASES:
        p = run(exe, argv, env)
        problems = []
        if p.returncode != 2:
            problems.append(f"exit {p.returncode} (want 2)")
        first = p.stderr.splitlines()[0] if p.stderr.splitlines() else ""
        if not first.startswith("error:"):
            problems.append(f"stderr {first!r} (want 'error: ...')")
        if p.stdout.strip():
            problems.append("produced stdout before failing")
        status = "ok" if not problems else "; ".join(problems)
        print(f"{label:32s} {status}")
        if problems:
            failures.append(f"{label}: {status}")

    for bench, label, argv in BENCH_ERROR_CASES:
        bench_exe = build / "bench" / bench
        if not bench_exe.exists():
            failures.append(f"{label}: {bench_exe} not built")
            continue
        p = run(bench_exe, argv, {})
        problems = []
        if p.returncode != 2:
            problems.append(f"exit {p.returncode} (want 2)")
        first = p.stderr.splitlines()[0] if p.stderr.splitlines() else ""
        if not first.startswith("error:"):
            problems.append(f"stderr {first!r} (want 'error: ...')")
        if p.stdout.strip():
            problems.append("produced stdout before failing")
        status = "ok" if not problems else "; ".join(problems)
        print(f"{label:32s} {status}")
        if problems:
            failures.append(f"{label}: {status}")

    # Positive control: valid flags still accepted.
    p = run(exe, ["--jobs=2", "--benchmark_filter=NONE"], {})
    if p.returncode != 0:
        failures.append(f"positive control: exit {p.returncode}, stderr: {p.stderr[:200]}")
    else:
        print(f"{'positive control':32s} ok")

    if failures:
        print()
        for f in failures:
            print(f"FAIL {f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
