#!/usr/bin/env python3
"""Bench-suite sweep report: wall-clock vs. simulated cycles trajectory.

Runs every paper-reproduction bench binary with the sweep engine's ``--jobs``
flag (tables only — google-benchmark cases are skipped via
``--benchmark_filter=NONE``), parses the deterministic machine-readable
footer each bench prints::

    [sweep] points=<N> sim_cycles=<C>

and appends one record per invocation to ``BENCH_sweep.json`` — a trajectory
file: each run of this script adds entries, so the file accumulates a history
of (simulator wall-clock, simulated cycles, points, jobs) across commits.
The simulated-cycle counts are scheduling-invariant, so any drift between two
records at the same bench/jobs is a real behaviour change, while wall-clock
differences measure host parallelism.

Usage:
  python3 scripts/bench_report.py [--build build] [--jobs 1] [--out BENCH_sweep.json]
                                  [--bench bench_fig1_left ...] [--label note]
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

BENCHES = [
    "bench_fig1_left",
    "bench_fig1_right",
    "bench_model_mape",
    "bench_headline",
    "bench_decision",
    "bench_ablation_features",
    "bench_phase_breakdown",
    "bench_kernel_sweep",
    "bench_energy",
    "bench_pipeline",
    "bench_isa_validation",
    "bench_sensitivity",
    "bench_iss_mode",
    "bench_weak_scaling",
    "bench_data_prep",
    "bench_fault_sweep",
    "bench_fleet_soak",
    "bench_fleet_chaos",
    "bench_integrity",
    "bench_simspeed",
]

FOOTER_RE = re.compile(r"^\[sweep\] points=(\d+) sim_cycles=(\d+)$", re.MULTILINE)
# bench_simspeed's machine line: engine-measured sim-cycles/wall-second on the
# E1 workload, for both the fast (calendar-queue) and legacy (heap) engines.
SIMSPEED_RE = re.compile(
    r"^\[simspeed\] workload=e1_daxpy sim_cycles_per_sec=(\S+) "
    r"legacy_sim_cycles_per_sec=(\S+) speedup_vs_legacy=(\S+)$",
    re.MULTILINE,
)
# bench_fleet_soak's machine lines: per-point SLO attainment of the E22
# shard-scaling/ablation grid (virtual-time only; served-jobs/wall-second is
# computed here from the whole-process wall, like the SIMSPEED series).
FLEET_RE = re.compile(
    r"^\[fleet\] point=(\S+) shards=(\d+) slo=(\S+) goodput=(\S+) "
    r"makespan=(\d+) steals=(\d+) batches=(\d+)$",
    re.MULTILINE,
)
FLEET_TOTALS_RE = re.compile(r"^(\d+) jobs x (\d+) points:", re.MULTILINE)
# bench_fleet_chaos's machine lines: per-point recovery verdicts of the E23
# fault-domain grid. time_to_recover is virtual-time (cycles/1000 = us), so
# drift between two records at the same point is a real behaviour change.
CHAOS_RE = re.compile(
    r"^\[chaos\] point=(\S+) shards=(\d+) budget=(\d+) slo=(\S+) slo_after=(\S+) "
    r"ttr_us=(\S+) p99_slack=(\S+) failovers=(\d+) lost=(\d+) stale=(\d+) "
    r"fails=(\d+) partitions=(\d+) heals=(\d+) violations=(\d+)$",
    re.MULTILINE,
)
# bench_integrity's machine lines: per-point corruption/attestation verdicts
# of the E24 grid. The escape rate (escapes over corrupted results) must be
# 0.0 on every attestation-on point and 1.0 on the blind ablation; the
# overhead series tracks the attestation bill as % of Eq.-(1) phase cycles.
INTEGRITY_RE = re.compile(
    r"^\[integrity\] point=(\S+) checks=(\d) audit=(\S+) rate=(\S+) slo=(\S+) "
    r"detected=(\d+) escapes=(\d+) retries=(\d+) int_failed=(\d+) audits=(\d+) "
    r"mismatches=(\d+) quarantines=(\d+) verify_cycles=(\d+) overhead_pct=(\S+) "
    r"violations=(\d+)$",
    re.MULTILINE,
)


def run_bench(binary: Path, jobs: int) -> dict:
    start = time.monotonic()
    proc = subprocess.run(
        [str(binary), f"--jobs={jobs}", "--benchmark_filter=NONE"],
        capture_output=True,
        text=True,
    )
    wall_s = time.monotonic() - start
    if proc.returncode != 0:
        raise RuntimeError(
            f"{binary.name} failed with exit code {proc.returncode}:\n{proc.stderr[-2000:]}"
        )
    m = FOOTER_RE.search(proc.stdout)
    if not m:
        raise RuntimeError(f"{binary.name}: no '[sweep] points=... sim_cycles=...' footer found")
    rec = {
        "bench": binary.name,
        "jobs": jobs,
        "points": int(m.group(1)),
        "sim_cycles": int(m.group(2)),
        "wall_seconds": round(wall_s, 3),
        # Headline series: simulated cycles per wall-second for this run. The
        # whole-process wall includes table printing and (for bench_simspeed)
        # the legacy-engine comparison runs, so the engine-only rate from E21's
        # own machine line is stored alongside when available.
        "sim_cycles_per_sec": round(int(m.group(2)) / wall_s, 1) if wall_s > 0 else 0.0,
    }
    s = SIMSPEED_RE.search(proc.stdout)
    if s:
        rec["engine_sim_cycles_per_sec"] = float(s.group(1))
        rec["legacy_sim_cycles_per_sec"] = float(s.group(2))
        rec["speedup_vs_legacy"] = float(s.group(3))
    fleet = FLEET_RE.findall(proc.stdout)
    if fleet:
        rec["fleet_slo_attainment"] = {point: float(slo) for point, _, slo, *_ in fleet}
        t = FLEET_TOTALS_RE.search(proc.stdout)
        if t and wall_s > 0:
            served = int(t.group(1)) * int(t.group(2))
            rec["fleet_jobs_per_sec"] = round(served / wall_s, 1)
    chaos = CHAOS_RE.findall(proc.stdout)
    if chaos:
        rec["time_to_recover_us"] = {row[0]: float(row[5]) for row in chaos}
        rec["chaos_slo_after_mark"] = {row[0]: float(row[4]) for row in chaos}
        rec["chaos_jobs_lost"] = {row[0]: int(row[8]) for row in chaos}
    integ = INTEGRITY_RE.findall(proc.stdout)
    if integ:
        rec["corruption_escape_rate"] = {
            row[0]: (int(row[6]) / (int(row[5]) + int(row[6]))
                     if int(row[5]) + int(row[6]) else 0.0)
            for row in integ}
        rec["integrity_overhead_pct"] = {row[0]: float(row[13]) for row in integ}
        rec["corruption_detected"] = {row[0]: int(row[5]) for row in integ}
    return rec


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build", help="build directory (default: build)")
    ap.add_argument("--jobs", type=int, default=1, help="sweep worker threads per bench")
    ap.add_argument("--out", default=str(REPO / "BENCH_sweep.json"),
                    help="trajectory file to append to")
    ap.add_argument("--bench", nargs="*", default=None,
                    help="subset of bench binaries (default: the full suite)")
    ap.add_argument("--label", default="", help="free-form note stored with this batch")
    args = ap.parse_args()

    bench_dir = (REPO / args.build / "bench").resolve()
    names = args.bench if args.bench else BENCHES
    missing = [n for n in names if not (bench_dir / n).exists()]
    if missing:
        print(f"error: bench binaries not found in {bench_dir}: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    batch = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "jobs": args.jobs,
        "label": args.label,
        "runs": [],
    }
    total_wall = 0.0
    total_cycles = 0
    for name in names:
        rec = run_bench(bench_dir / name, args.jobs)
        batch["runs"].append(rec)
        total_wall += rec["wall_seconds"]
        total_cycles += rec["sim_cycles"]
        print(f"{name:24s} jobs={args.jobs} points={rec['points']:5d} "
              f"sim_cycles={rec['sim_cycles']:12d} wall={rec['wall_seconds']:.3f}s")
    batch["total_wall_seconds"] = round(total_wall, 3)
    batch["total_sim_cycles"] = total_cycles

    out = Path(args.out)
    history = []
    if out.exists():
        history = json.loads(out.read_text())
        if not isinstance(history, list):
            print(f"error: {out} exists but is not a JSON list", file=sys.stderr)
            return 2
    prior = json.dumps(history, sort_keys=True)
    history.append(batch)
    out.write_text(json.dumps(history, indent=2) + "\n")

    # Trajectory-series invariants: every run in the new batch carries the
    # sim_cycles_per_sec series, and appending must not perturb prior batches.
    reread = json.loads(out.read_text())
    if json.dumps(reread[:-1], sort_keys=True) != prior:
        print("error: appending the new batch perturbed existing rows", file=sys.stderr)
        return 1
    missing_series = [r["bench"] for r in reread[-1]["runs"] if "sim_cycles_per_sec" not in r]
    if missing_series:
        print(f"error: runs missing sim_cycles_per_sec: {', '.join(missing_series)}",
              file=sys.stderr)
        return 1
    # The chaos bench must always carry its per-point recovery series — a
    # silent parse miss here would let time_to_recover drift unrecorded.
    missing_ttr = [r["bench"] for r in reread[-1]["runs"]
                   if r["bench"] == "bench_fleet_chaos" and "time_to_recover_us" not in r]
    if missing_ttr:
        print("error: bench_fleet_chaos run missing the time_to_recover_us series",
              file=sys.stderr)
        return 1
    # Likewise the integrity bench: losing the escape-rate series would let
    # a corruption leak drift unrecorded.
    missing_esc = [r["bench"] for r in reread[-1]["runs"]
                   if r["bench"] == "bench_integrity"
                   and "corruption_escape_rate" not in r]
    if missing_esc:
        print("error: bench_integrity run missing the corruption_escape_rate series",
              file=sys.stderr)
        return 1
    print(f"sim_cycles_per_sec series: {len(batch['runs'])} runs recorded, "
          f"{len(reread) - 1} prior batch(es) unchanged")
    print(f"\nappended batch of {len(batch['runs'])} runs to {out} "
          f"({total_wall:.1f}s wall, {total_cycles} simulated cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
