#!/usr/bin/env python3
"""E17 — metrics-regression harness.

Runs the canonical instrumented run of three anchor experiments through their
bench binaries' ``--metrics-out`` flag and compares the resulting
"mco-metrics-v1" documents against checked-in goldens:

  E1  bench_fig1_left        baseline design, DAXPY N=1024 M=32  (936-cycle row)
  E4  bench_headline         extended design, DAXPY N=1024 M=32  (633-cycle row)
  E7  bench_phase_breakdown  extended design, DAXPY N=1024 M=32  (phase table)

It also pins the E18 protocol-audit document: bench_schedule_stress's
``--violations-out`` dump ("mco-violations-v1") must match its golden
byte-for-byte — in particular the violation list must stay empty. Any
protocol regression (an invariant violation, or a fault-free cycle count
that moves under schedule permutation) changes the document and fails here.

The E19 serve-soak report ("mco-serve-v1", bench_serve_soak
``--report-out``) is pinned the same way: every scenario row must report
zero soc/serve protocol violations, and the whole document must match its
golden exactly — SLO attainment, goodput, quarantine and re-admission
counts are all deterministic aggregates of the seeded job trace.

The E20 chaos-scenario report ("mco-scenario-v1", bench_scenario
``--report-out``) is pinned the same way: every scenario row must report
zero violations *and* ``"passed": true`` (all declared ``expect`` verdicts
held), and the whole document must match its golden exactly.

The E23 fleet-chaos report ("mco-chaos-v1", bench_fleet_chaos
``--report-out``) is pinned the same way: every grid point must report zero
violations, the headline crash point must lose zero jobs to failover, and
the whole document — including each point's ``time_to_recover`` — must
match its golden exactly.

The E24 integrity report ("mco-integrity-v1", bench_integrity
``--report-out``) is pinned the same way: every grid point must report zero
violations, every attestation-on point must deliver zero corrupted results
(``escapes == 0`` at every corruption rate), the blind ablation must still
leak, and the whole document — detections, audit traffic, the verify-cycle
bill — must match its golden exactly.

The simulator is deterministic, so counters must match the goldens *exactly*
by default; ``--tol`` grants a relative tolerance for intentional
recalibrations (e.g. ``--tol 0.01`` while iterating on a latency model).
Histogram scalar fields (min/max/mean/percentiles) are compared with the same
tolerance; bucket vectors and key sets must always match exactly.

Usage:
  python3 scripts/metrics_regression.py [--build build] [--tol 0.0]
  python3 scripts/metrics_regression.py --update   # regenerate the goldens
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDENS = REPO / "goldens"

# (experiment id, bench binary) — the canonical --metrics-out run of each.
ANCHORS = [
    ("e1_fig1_left", "bench_fig1_left"),
    ("e4_headline", "bench_headline"),
    ("e7_phase_breakdown", "bench_phase_breakdown"),
]

# (experiment id, bench binary, extra flags) — compared byte-exactly as JSON.
VIOLATION_ANCHORS = [
    ("e18_schedule_stress", "bench_schedule_stress", ["--schedules=4", "--jobs=2"]),
]

# (experiment id, bench binary, extra flags) — "mco-serve-v1" documents,
# compared byte-exactly; every scenario row must be violation-free.
SERVE_ANCHORS = [
    ("e19_serve_soak", "bench_serve_soak", ["--serve-jobs=200", "--jobs=2"]),
]

# (experiment id, bench binary, extra flags) — "mco-scenario-v1" documents,
# compared byte-exactly; every row must be violation-free and verdict-clean.
SCENARIO_ANCHORS = [
    ("e20_scenarios", "bench_scenario", ["--jobs=2"]),
]

# (experiment id, bench binary, extra flags) — "mco-chaos-v1" documents,
# compared byte-exactly; every row must be violation-free and the headline
# crash point must lose zero jobs (its time_to_recover is pinned by the
# golden itself).
CHAOS_ANCHORS = [
    ("e23_fleet_chaos", "bench_fleet_chaos", ["--chaos-jobs=200", "--jobs=2"]),
]

# (experiment id, bench binary, extra flags) — "mco-integrity-v1" documents,
# compared byte-exactly; every row must be violation-free, rows with
# attestation on must deliver zero corrupted results, and the blind ablation
# row must demonstrably leak (escapes > 0, detections == 0) — if it stops
# leaking, the injector went dormant and the whole experiment is vacuous.
INTEGRITY_ANCHORS = [
    ("e24_integrity", "bench_integrity", ["--jobs=2"]),
]


def run_bench(build: Path, bench: str, out: Path, out_flag: str = "--metrics-out",
              extra: list[str] | None = None) -> None:
    exe = build / "bench" / bench
    if not exe.exists():
        sys.exit(f"error: {exe} not built (cmake --build {build} first)")
    # --benchmark_filter=NONE skips the google-benchmark cases: only the
    # deterministic table + the instrumented canonical run execute.
    subprocess.run(
        [str(exe), f"{out_flag}={out}", *(extra or []), "--benchmark_filter=NONE"],
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def close(a: float, b: float, tol: float) -> bool:
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    return scale > 0 and abs(a - b) / scale <= tol


def compare(exp: str, golden: dict, fresh: dict, tol: float) -> list[str]:
    errs: list[str] = []
    if fresh.get("schema") != golden.get("schema"):
        errs.append(f"{exp}: schema {fresh.get('schema')!r} != {golden.get('schema')!r}")

    for section in ("counters", "accumulators", "histograms"):
        gold, new = golden.get(section, {}), fresh.get(section, {})
        for name in sorted(set(gold) | set(new)):
            if name not in new:
                errs.append(f"{exp}: {section}.{name} disappeared")
                continue
            if name not in gold:
                errs.append(f"{exp}: {section}.{name} is new (run --update)")
                continue
            g, n = gold[name], new[name]
            if isinstance(g, dict):  # histogram / accumulator object
                if g.get("buckets") != n.get("buckets"):
                    errs.append(f"{exp}: {section}.{name}.buckets changed")
                for field in sorted(set(g) | set(n) - {"buckets"}):
                    if field == "buckets":
                        continue
                    gv, nv = g.get(field), n.get(field)
                    if gv is None or nv is None or not close(float(gv), float(nv), tol):
                        errs.append(
                            f"{exp}: {section}.{name}.{field} = {nv} (golden {gv})")
            elif not close(float(g), float(n), tol):
                errs.append(f"{exp}: {section}.{name} = {n} (golden {g})")
    return errs


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build", help="CMake build directory")
    ap.add_argument("--tol", type=float, default=0.0,
                    help="relative tolerance for scalar comparisons (default: exact)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the goldens from the current binaries")
    args = ap.parse_args()
    build = (REPO / args.build) if not Path(args.build).is_absolute() else Path(args.build)

    GOLDENS.mkdir(exist_ok=True)
    failures: list[str] = []
    for exp, bench in ANCHORS:
        golden_path = GOLDENS / f"{exp}.json"
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "metrics.json"
            run_bench(build, bench, out)
            fresh = json.loads(out.read_text())
        if args.update:
            golden_path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
            print(f"updated {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.exists():
            failures.append(f"{exp}: golden {golden_path} missing (run --update)")
            continue
        golden = json.loads(golden_path.read_text())
        errs = compare(exp, golden, fresh, args.tol)
        status = "ok" if not errs else f"{len(errs)} mismatches"
        print(f"{exp}: {status}")
        failures.extend(errs)

    for exp, bench, extra in VIOLATION_ANCHORS:
        golden_path = GOLDENS / f"{exp}.json"
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "violations.json"
            run_bench(build, bench, out, out_flag="--violations-out", extra=extra)
            fresh = json.loads(out.read_text())
        if fresh.get("total_violations", -1) != 0 or fresh.get("violations") != []:
            failures.append(f"{exp}: protocol violations reported: "
                            f"{json.dumps(fresh.get('violations'))[:400]}")
        if args.update:
            golden_path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
            print(f"updated {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.exists():
            failures.append(f"{exp}: golden {golden_path} missing (run --update)")
            continue
        golden = json.loads(golden_path.read_text())
        errs = [] if fresh == golden else [
            f"{exp}: violation document differs from golden "
            f"(fresh {json.dumps(fresh, sort_keys=True)[:200]}...)"]
        print(f"{exp}: {'ok' if not errs else 'document changed'}")
        failures.extend(errs)

    for exp, bench, extra in SERVE_ANCHORS:
        golden_path = GOLDENS / f"{exp}.json"
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "serve.json"
            run_bench(build, bench, out, out_flag="--report-out", extra=extra)
            fresh = json.loads(out.read_text())
        for row in fresh.get("scenarios", []):
            if row.get("soc_violations") != 0 or row.get("serve_violations") != 0:
                failures.append(
                    f"{exp}: scenario {row.get('name')!r} reports protocol "
                    f"violations: soc={row.get('soc_violations')} "
                    f"serve={row.get('serve_violations')}")
        if args.update:
            golden_path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
            print(f"updated {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.exists():
            failures.append(f"{exp}: golden {golden_path} missing (run --update)")
            continue
        golden = json.loads(golden_path.read_text())
        errs = [] if fresh == golden else [
            f"{exp}: serve report differs from golden "
            f"(fresh {json.dumps(fresh, sort_keys=True)[:200]}...)"]
        print(f"{exp}: {'ok' if not errs else 'document changed'}")
        failures.extend(errs)

    for exp, bench, extra in SCENARIO_ANCHORS:
        golden_path = GOLDENS / f"{exp}.json"
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "scenarios.json"
            run_bench(build, bench, out, out_flag="--report-out", extra=extra)
            fresh = json.loads(out.read_text())
        for row in fresh.get("scenarios", []):
            if row.get("soc_violations") != 0 or row.get("serve_violations") != 0:
                failures.append(
                    f"{exp}: scenario {row.get('name')!r} reports protocol "
                    f"violations: soc={row.get('soc_violations')} "
                    f"serve={row.get('serve_violations')}")
            if row.get("passed") is not True:
                failed = [v.get("text") for v in row.get("verdicts", [])
                          if not v.get("passed")]
                failures.append(
                    f"{exp}: scenario {row.get('name')!r} failed its verdicts: "
                    f"{failed}")
        if args.update:
            golden_path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
            print(f"updated {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.exists():
            failures.append(f"{exp}: golden {golden_path} missing (run --update)")
            continue
        golden = json.loads(golden_path.read_text())
        errs = [] if fresh == golden else [
            f"{exp}: scenario report differs from golden "
            f"(fresh {json.dumps(fresh, sort_keys=True)[:200]}...)"]
        print(f"{exp}: {'ok' if not errs else 'document changed'}")
        failures.extend(errs)

    for exp, bench, extra in CHAOS_ANCHORS:
        golden_path = GOLDENS / f"{exp}.json"
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "chaos.json"
            run_bench(build, bench, out, out_flag="--report-out", extra=extra)
            fresh = json.loads(out.read_text())
        for row in fresh.get("points", []):
            if row.get("soc_violations") != 0 or row.get("serve_violations") != 0:
                failures.append(
                    f"{exp}: point {row.get('name')!r} reports protocol "
                    f"violations: soc={row.get('soc_violations')} "
                    f"serve={row.get('serve_violations')}")
            if row.get("name") == "crash_1of4" and row.get("failover_lost") != 0:
                failures.append(
                    f"{exp}: headline crash point lost "
                    f"{row.get('failover_lost')} job(s) (exactly-once failover broken)")
        if args.update:
            golden_path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
            print(f"updated {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.exists():
            failures.append(f"{exp}: golden {golden_path} missing (run --update)")
            continue
        golden = json.loads(golden_path.read_text())
        errs = [] if fresh == golden else [
            f"{exp}: chaos report differs from golden "
            f"(fresh {json.dumps(fresh, sort_keys=True)[:200]}...)"]
        print(f"{exp}: {'ok' if not errs else 'document changed'}")
        failures.extend(errs)

    for exp, bench, extra in INTEGRITY_ANCHORS:
        golden_path = GOLDENS / f"{exp}.json"
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "integrity.json"
            run_bench(build, bench, out, out_flag="--report-out", extra=extra)
            fresh = json.loads(out.read_text())
        for row in fresh.get("points", []):
            if row.get("soc_violations") != 0 or row.get("serve_violations") != 0:
                failures.append(
                    f"{exp}: point {row.get('name')!r} reports protocol "
                    f"violations: soc={row.get('soc_violations')} "
                    f"serve={row.get('serve_violations')}")
            if row.get("checks") and row.get("escapes") != 0:
                failures.append(
                    f"{exp}: point {row.get('name')!r} delivered "
                    f"{row.get('escapes')} corrupted result(s) with attestation on")
            if not row.get("checks"):
                if row.get("escapes", 0) == 0 or row.get("detected", 0) != 0:
                    failures.append(
                        f"{exp}: blind point {row.get('name')!r} should leak "
                        f"(escapes={row.get('escapes')}, detected={row.get('detected')}) "
                        "— the injector looks dormant")
        if args.update:
            golden_path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
            print(f"updated {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.exists():
            failures.append(f"{exp}: golden {golden_path} missing (run --update)")
            continue
        golden = json.loads(golden_path.read_text())
        errs = [] if fresh == golden else [
            f"{exp}: integrity report differs from golden "
            f"(fresh {json.dumps(fresh, sort_keys=True)[:200]}...)"]
        print(f"{exp}: {'ok' if not errs else 'document changed'}")
        failures.extend(errs)

    if failures:
        print()
        for e in failures:
            print(f"FAIL {e}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
