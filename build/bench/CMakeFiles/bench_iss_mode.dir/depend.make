# Empty dependencies file for bench_iss_mode.
# This may be replaced when dependencies are built.
