file(REMOVE_RECURSE
  "CMakeFiles/bench_iss_mode.dir/bench_iss_mode.cpp.o"
  "CMakeFiles/bench_iss_mode.dir/bench_iss_mode.cpp.o.d"
  "bench_iss_mode"
  "bench_iss_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iss_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
