# Empty dependencies file for bench_model_mape.
# This may be replaced when dependencies are built.
