file(REMOVE_RECURSE
  "CMakeFiles/bench_model_mape.dir/bench_model_mape.cpp.o"
  "CMakeFiles/bench_model_mape.dir/bench_model_mape.cpp.o.d"
  "bench_model_mape"
  "bench_model_mape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_mape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
