file(REMOVE_RECURSE
  "CMakeFiles/bench_energy.dir/bench_energy.cpp.o"
  "CMakeFiles/bench_energy.dir/bench_energy.cpp.o.d"
  "bench_energy"
  "bench_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
