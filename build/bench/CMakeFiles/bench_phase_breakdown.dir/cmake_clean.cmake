file(REMOVE_RECURSE
  "CMakeFiles/bench_phase_breakdown.dir/bench_phase_breakdown.cpp.o"
  "CMakeFiles/bench_phase_breakdown.dir/bench_phase_breakdown.cpp.o.d"
  "bench_phase_breakdown"
  "bench_phase_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
