# Empty dependencies file for bench_phase_breakdown.
# This may be replaced when dependencies are built.
