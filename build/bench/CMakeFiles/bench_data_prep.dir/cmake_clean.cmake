file(REMOVE_RECURSE
  "CMakeFiles/bench_data_prep.dir/bench_data_prep.cpp.o"
  "CMakeFiles/bench_data_prep.dir/bench_data_prep.cpp.o.d"
  "bench_data_prep"
  "bench_data_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
