# Empty compiler generated dependencies file for bench_data_prep.
# This may be replaced when dependencies are built.
