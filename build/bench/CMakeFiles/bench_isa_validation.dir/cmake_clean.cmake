file(REMOVE_RECURSE
  "CMakeFiles/bench_isa_validation.dir/bench_isa_validation.cpp.o"
  "CMakeFiles/bench_isa_validation.dir/bench_isa_validation.cpp.o.d"
  "bench_isa_validation"
  "bench_isa_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isa_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
