# Empty dependencies file for bench_isa_validation.
# This may be replaced when dependencies are built.
