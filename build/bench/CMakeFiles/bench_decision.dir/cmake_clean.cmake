file(REMOVE_RECURSE
  "CMakeFiles/bench_decision.dir/bench_decision.cpp.o"
  "CMakeFiles/bench_decision.dir/bench_decision.cpp.o.d"
  "bench_decision"
  "bench_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
