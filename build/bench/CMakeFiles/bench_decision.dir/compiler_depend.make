# Empty compiler generated dependencies file for bench_decision.
# This may be replaced when dependencies are built.
