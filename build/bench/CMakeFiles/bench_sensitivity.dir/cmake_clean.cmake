file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity.dir/bench_sensitivity.cpp.o"
  "CMakeFiles/bench_sensitivity.dir/bench_sensitivity.cpp.o.d"
  "bench_sensitivity"
  "bench_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
