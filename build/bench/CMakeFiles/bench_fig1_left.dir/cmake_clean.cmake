file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_left.dir/bench_fig1_left.cpp.o"
  "CMakeFiles/bench_fig1_left.dir/bench_fig1_left.cpp.o.d"
  "bench_fig1_left"
  "bench_fig1_left.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_left.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
