# Empty compiler generated dependencies file for bench_fig1_left.
# This may be replaced when dependencies are built.
