file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_sweep.dir/bench_kernel_sweep.cpp.o"
  "CMakeFiles/bench_kernel_sweep.dir/bench_kernel_sweep.cpp.o.d"
  "bench_kernel_sweep"
  "bench_kernel_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
