# Empty dependencies file for bench_kernel_sweep.
# This may be replaced when dependencies are built.
