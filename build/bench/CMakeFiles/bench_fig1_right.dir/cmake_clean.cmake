file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_right.dir/bench_fig1_right.cpp.o"
  "CMakeFiles/bench_fig1_right.dir/bench_fig1_right.cpp.o.d"
  "bench_fig1_right"
  "bench_fig1_right.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_right.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
