# Empty dependencies file for bench_fig1_right.
# This may be replaced when dependencies are built.
