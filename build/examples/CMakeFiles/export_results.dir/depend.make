# Empty dependencies file for export_results.
# This may be replaced when dependencies are built.
