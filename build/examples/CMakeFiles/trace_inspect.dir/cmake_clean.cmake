file(REMOVE_RECURSE
  "CMakeFiles/trace_inspect.dir/trace_inspect.cpp.o"
  "CMakeFiles/trace_inspect.dir/trace_inspect.cpp.o.d"
  "trace_inspect"
  "trace_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
