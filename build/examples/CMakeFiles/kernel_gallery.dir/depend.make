# Empty dependencies file for kernel_gallery.
# This may be replaced when dependencies are built.
