file(REMOVE_RECURSE
  "CMakeFiles/kernel_gallery.dir/kernel_gallery.cpp.o"
  "CMakeFiles/kernel_gallery.dir/kernel_gallery.cpp.o.d"
  "kernel_gallery"
  "kernel_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
