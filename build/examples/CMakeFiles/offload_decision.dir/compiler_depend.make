# Empty compiler generated dependencies file for offload_decision.
# This may be replaced when dependencies are built.
