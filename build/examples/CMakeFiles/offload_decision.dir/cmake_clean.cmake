file(REMOVE_RECURSE
  "CMakeFiles/offload_decision.dir/offload_decision.cpp.o"
  "CMakeFiles/offload_decision.dir/offload_decision.cpp.o.d"
  "offload_decision"
  "offload_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
