# Empty dependencies file for solver_pipeline.
# This may be replaced when dependencies are built.
