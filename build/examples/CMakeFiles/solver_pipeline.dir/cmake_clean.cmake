file(REMOVE_RECURSE
  "CMakeFiles/solver_pipeline.dir/solver_pipeline.cpp.o"
  "CMakeFiles/solver_pipeline.dir/solver_pipeline.cpp.o.d"
  "solver_pipeline"
  "solver_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
