file(REMOVE_RECURSE
  "libmco_mem.a"
)
