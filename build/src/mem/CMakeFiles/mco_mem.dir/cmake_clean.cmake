file(REMOVE_RECURSE
  "CMakeFiles/mco_mem.dir/address_map.cpp.o"
  "CMakeFiles/mco_mem.dir/address_map.cpp.o.d"
  "CMakeFiles/mco_mem.dir/dma_engine.cpp.o"
  "CMakeFiles/mco_mem.dir/dma_engine.cpp.o.d"
  "CMakeFiles/mco_mem.dir/hbm_controller.cpp.o"
  "CMakeFiles/mco_mem.dir/hbm_controller.cpp.o.d"
  "CMakeFiles/mco_mem.dir/main_memory.cpp.o"
  "CMakeFiles/mco_mem.dir/main_memory.cpp.o.d"
  "CMakeFiles/mco_mem.dir/tcdm.cpp.o"
  "CMakeFiles/mco_mem.dir/tcdm.cpp.o.d"
  "libmco_mem.a"
  "libmco_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
