# Empty compiler generated dependencies file for mco_mem.
# This may be replaced when dependencies are built.
