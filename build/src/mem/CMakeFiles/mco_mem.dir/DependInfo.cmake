
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cpp" "src/mem/CMakeFiles/mco_mem.dir/address_map.cpp.o" "gcc" "src/mem/CMakeFiles/mco_mem.dir/address_map.cpp.o.d"
  "/root/repo/src/mem/dma_engine.cpp" "src/mem/CMakeFiles/mco_mem.dir/dma_engine.cpp.o" "gcc" "src/mem/CMakeFiles/mco_mem.dir/dma_engine.cpp.o.d"
  "/root/repo/src/mem/hbm_controller.cpp" "src/mem/CMakeFiles/mco_mem.dir/hbm_controller.cpp.o" "gcc" "src/mem/CMakeFiles/mco_mem.dir/hbm_controller.cpp.o.d"
  "/root/repo/src/mem/main_memory.cpp" "src/mem/CMakeFiles/mco_mem.dir/main_memory.cpp.o" "gcc" "src/mem/CMakeFiles/mco_mem.dir/main_memory.cpp.o.d"
  "/root/repo/src/mem/tcdm.cpp" "src/mem/CMakeFiles/mco_mem.dir/tcdm.cpp.o" "gcc" "src/mem/CMakeFiles/mco_mem.dir/tcdm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
