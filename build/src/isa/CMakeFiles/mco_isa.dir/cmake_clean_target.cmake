file(REMOVE_RECURSE
  "libmco_isa.a"
)
