file(REMOVE_RECURSE
  "CMakeFiles/mco_isa.dir/core_model.cpp.o"
  "CMakeFiles/mco_isa.dir/core_model.cpp.o.d"
  "CMakeFiles/mco_isa.dir/microkernels.cpp.o"
  "CMakeFiles/mco_isa.dir/microkernels.cpp.o.d"
  "libmco_isa.a"
  "libmco_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
