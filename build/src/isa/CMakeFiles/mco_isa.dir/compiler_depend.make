# Empty compiler generated dependencies file for mco_isa.
# This may be replaced when dependencies are built.
