# Empty dependencies file for mco_offload.
# This may be replaced when dependencies are built.
