file(REMOVE_RECURSE
  "libmco_offload.a"
)
