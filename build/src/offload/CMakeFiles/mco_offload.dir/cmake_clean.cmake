file(REMOVE_RECURSE
  "CMakeFiles/mco_offload.dir/offload_runtime.cpp.o"
  "CMakeFiles/mco_offload.dir/offload_runtime.cpp.o.d"
  "libmco_offload.a"
  "libmco_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
