file(REMOVE_RECURSE
  "libmco_model.a"
)
