file(REMOVE_RECURSE
  "CMakeFiles/mco_model.dir/decision.cpp.o"
  "CMakeFiles/mco_model.dir/decision.cpp.o.d"
  "CMakeFiles/mco_model.dir/fitter.cpp.o"
  "CMakeFiles/mco_model.dir/fitter.cpp.o.d"
  "CMakeFiles/mco_model.dir/mape.cpp.o"
  "CMakeFiles/mco_model.dir/mape.cpp.o.d"
  "CMakeFiles/mco_model.dir/runtime_model.cpp.o"
  "CMakeFiles/mco_model.dir/runtime_model.cpp.o.d"
  "CMakeFiles/mco_model.dir/validate.cpp.o"
  "CMakeFiles/mco_model.dir/validate.cpp.o.d"
  "libmco_model.a"
  "libmco_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
