
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/decision.cpp" "src/model/CMakeFiles/mco_model.dir/decision.cpp.o" "gcc" "src/model/CMakeFiles/mco_model.dir/decision.cpp.o.d"
  "/root/repo/src/model/fitter.cpp" "src/model/CMakeFiles/mco_model.dir/fitter.cpp.o" "gcc" "src/model/CMakeFiles/mco_model.dir/fitter.cpp.o.d"
  "/root/repo/src/model/mape.cpp" "src/model/CMakeFiles/mco_model.dir/mape.cpp.o" "gcc" "src/model/CMakeFiles/mco_model.dir/mape.cpp.o.d"
  "/root/repo/src/model/runtime_model.cpp" "src/model/CMakeFiles/mco_model.dir/runtime_model.cpp.o" "gcc" "src/model/CMakeFiles/mco_model.dir/runtime_model.cpp.o.d"
  "/root/repo/src/model/validate.cpp" "src/model/CMakeFiles/mco_model.dir/validate.cpp.o" "gcc" "src/model/CMakeFiles/mco_model.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
