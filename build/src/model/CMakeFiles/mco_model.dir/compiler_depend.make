# Empty compiler generated dependencies file for mco_model.
# This may be replaced when dependencies are built.
