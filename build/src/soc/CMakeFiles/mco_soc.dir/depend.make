# Empty dependencies file for mco_soc.
# This may be replaced when dependencies are built.
