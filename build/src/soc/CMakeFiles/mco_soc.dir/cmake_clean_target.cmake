file(REMOVE_RECURSE
  "libmco_soc.a"
)
