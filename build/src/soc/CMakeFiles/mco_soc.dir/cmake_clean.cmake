file(REMOVE_RECURSE
  "CMakeFiles/mco_soc.dir/config_io.cpp.o"
  "CMakeFiles/mco_soc.dir/config_io.cpp.o.d"
  "CMakeFiles/mco_soc.dir/soc.cpp.o"
  "CMakeFiles/mco_soc.dir/soc.cpp.o.d"
  "CMakeFiles/mco_soc.dir/workloads.cpp.o"
  "CMakeFiles/mco_soc.dir/workloads.cpp.o.d"
  "libmco_soc.a"
  "libmco_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
