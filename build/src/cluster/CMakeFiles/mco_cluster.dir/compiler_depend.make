# Empty compiler generated dependencies file for mco_cluster.
# This may be replaced when dependencies are built.
