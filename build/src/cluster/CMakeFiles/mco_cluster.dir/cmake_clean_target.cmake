file(REMOVE_RECURSE
  "libmco_cluster.a"
)
