file(REMOVE_RECURSE
  "CMakeFiles/mco_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mco_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/mco_cluster.dir/worker_core.cpp.o"
  "CMakeFiles/mco_cluster.dir/worker_core.cpp.o.d"
  "libmco_cluster.a"
  "libmco_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
