# Empty compiler generated dependencies file for mco_energy.
# This may be replaced when dependencies are built.
