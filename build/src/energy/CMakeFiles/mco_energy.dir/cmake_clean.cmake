file(REMOVE_RECURSE
  "CMakeFiles/mco_energy.dir/energy_model.cpp.o"
  "CMakeFiles/mco_energy.dir/energy_model.cpp.o.d"
  "libmco_energy.a"
  "libmco_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
