file(REMOVE_RECURSE
  "libmco_energy.a"
)
