
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/blas1.cpp" "src/kernels/CMakeFiles/mco_kernels.dir/blas1.cpp.o" "gcc" "src/kernels/CMakeFiles/mco_kernels.dir/blas1.cpp.o.d"
  "/root/repo/src/kernels/gemm.cpp" "src/kernels/CMakeFiles/mco_kernels.dir/gemm.cpp.o" "gcc" "src/kernels/CMakeFiles/mco_kernels.dir/gemm.cpp.o.d"
  "/root/repo/src/kernels/gemv.cpp" "src/kernels/CMakeFiles/mco_kernels.dir/gemv.cpp.o" "gcc" "src/kernels/CMakeFiles/mco_kernels.dir/gemv.cpp.o.d"
  "/root/repo/src/kernels/job_args.cpp" "src/kernels/CMakeFiles/mco_kernels.dir/job_args.cpp.o" "gcc" "src/kernels/CMakeFiles/mco_kernels.dir/job_args.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/kernels/CMakeFiles/mco_kernels.dir/kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/mco_kernels.dir/kernel.cpp.o.d"
  "/root/repo/src/kernels/reductions.cpp" "src/kernels/CMakeFiles/mco_kernels.dir/reductions.cpp.o" "gcc" "src/kernels/CMakeFiles/mco_kernels.dir/reductions.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/kernels/CMakeFiles/mco_kernels.dir/registry.cpp.o" "gcc" "src/kernels/CMakeFiles/mco_kernels.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/mco_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mco_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
