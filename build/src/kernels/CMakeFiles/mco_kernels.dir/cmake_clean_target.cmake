file(REMOVE_RECURSE
  "libmco_kernels.a"
)
