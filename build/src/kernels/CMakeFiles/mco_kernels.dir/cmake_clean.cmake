file(REMOVE_RECURSE
  "CMakeFiles/mco_kernels.dir/blas1.cpp.o"
  "CMakeFiles/mco_kernels.dir/blas1.cpp.o.d"
  "CMakeFiles/mco_kernels.dir/gemm.cpp.o"
  "CMakeFiles/mco_kernels.dir/gemm.cpp.o.d"
  "CMakeFiles/mco_kernels.dir/gemv.cpp.o"
  "CMakeFiles/mco_kernels.dir/gemv.cpp.o.d"
  "CMakeFiles/mco_kernels.dir/job_args.cpp.o"
  "CMakeFiles/mco_kernels.dir/job_args.cpp.o.d"
  "CMakeFiles/mco_kernels.dir/kernel.cpp.o"
  "CMakeFiles/mco_kernels.dir/kernel.cpp.o.d"
  "CMakeFiles/mco_kernels.dir/reductions.cpp.o"
  "CMakeFiles/mco_kernels.dir/reductions.cpp.o.d"
  "CMakeFiles/mco_kernels.dir/registry.cpp.o"
  "CMakeFiles/mco_kernels.dir/registry.cpp.o.d"
  "libmco_kernels.a"
  "libmco_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
