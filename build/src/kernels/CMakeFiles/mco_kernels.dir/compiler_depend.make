# Empty compiler generated dependencies file for mco_kernels.
# This may be replaced when dependencies are built.
