# CMake generated Testfile for 
# Source directory: /root/repo/src/host
# Build directory: /root/repo/build/src/host
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
