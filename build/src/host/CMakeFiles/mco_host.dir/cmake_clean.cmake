file(REMOVE_RECURSE
  "CMakeFiles/mco_host.dir/host_core.cpp.o"
  "CMakeFiles/mco_host.dir/host_core.cpp.o.d"
  "CMakeFiles/mco_host.dir/interrupt_controller.cpp.o"
  "CMakeFiles/mco_host.dir/interrupt_controller.cpp.o.d"
  "libmco_host.a"
  "libmco_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
