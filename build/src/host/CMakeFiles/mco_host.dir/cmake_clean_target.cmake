file(REMOVE_RECURSE
  "libmco_host.a"
)
