# Empty dependencies file for mco_host.
# This may be replaced when dependencies are built.
