
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/host_core.cpp" "src/host/CMakeFiles/mco_host.dir/host_core.cpp.o" "gcc" "src/host/CMakeFiles/mco_host.dir/host_core.cpp.o.d"
  "/root/repo/src/host/interrupt_controller.cpp" "src/host/CMakeFiles/mco_host.dir/interrupt_controller.cpp.o" "gcc" "src/host/CMakeFiles/mco_host.dir/interrupt_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
