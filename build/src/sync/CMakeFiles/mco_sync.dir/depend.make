# Empty dependencies file for mco_sync.
# This may be replaced when dependencies are built.
