file(REMOVE_RECURSE
  "libmco_sync.a"
)
