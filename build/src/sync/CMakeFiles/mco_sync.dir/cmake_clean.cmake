file(REMOVE_RECURSE
  "CMakeFiles/mco_sync.dir/credit_counter.cpp.o"
  "CMakeFiles/mco_sync.dir/credit_counter.cpp.o.d"
  "CMakeFiles/mco_sync.dir/mailbox.cpp.o"
  "CMakeFiles/mco_sync.dir/mailbox.cpp.o.d"
  "CMakeFiles/mco_sync.dir/shared_counter.cpp.o"
  "CMakeFiles/mco_sync.dir/shared_counter.cpp.o.d"
  "CMakeFiles/mco_sync.dir/team_barrier.cpp.o"
  "CMakeFiles/mco_sync.dir/team_barrier.cpp.o.d"
  "libmco_sync.a"
  "libmco_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
