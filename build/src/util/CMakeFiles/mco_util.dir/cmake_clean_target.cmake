file(REMOVE_RECURSE
  "libmco_util.a"
)
