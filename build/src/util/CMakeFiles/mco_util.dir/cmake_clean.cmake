file(REMOVE_RECURSE
  "CMakeFiles/mco_util.dir/cli.cpp.o"
  "CMakeFiles/mco_util.dir/cli.cpp.o.d"
  "CMakeFiles/mco_util.dir/csv.cpp.o"
  "CMakeFiles/mco_util.dir/csv.cpp.o.d"
  "CMakeFiles/mco_util.dir/strings.cpp.o"
  "CMakeFiles/mco_util.dir/strings.cpp.o.d"
  "CMakeFiles/mco_util.dir/table.cpp.o"
  "CMakeFiles/mco_util.dir/table.cpp.o.d"
  "libmco_util.a"
  "libmco_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
