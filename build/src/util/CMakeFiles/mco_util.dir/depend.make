# Empty dependencies file for mco_util.
# This may be replaced when dependencies are built.
