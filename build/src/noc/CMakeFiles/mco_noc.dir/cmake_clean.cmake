file(REMOVE_RECURSE
  "CMakeFiles/mco_noc.dir/interconnect.cpp.o"
  "CMakeFiles/mco_noc.dir/interconnect.cpp.o.d"
  "libmco_noc.a"
  "libmco_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
