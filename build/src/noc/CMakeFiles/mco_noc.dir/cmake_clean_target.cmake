file(REMOVE_RECURSE
  "libmco_noc.a"
)
