# Empty dependencies file for mco_noc.
# This may be replaced when dependencies are built.
