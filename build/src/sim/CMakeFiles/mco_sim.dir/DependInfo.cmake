
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/component.cpp" "src/sim/CMakeFiles/mco_sim.dir/component.cpp.o" "gcc" "src/sim/CMakeFiles/mco_sim.dir/component.cpp.o.d"
  "/root/repo/src/sim/logger.cpp" "src/sim/CMakeFiles/mco_sim.dir/logger.cpp.o" "gcc" "src/sim/CMakeFiles/mco_sim.dir/logger.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/sim/CMakeFiles/mco_sim.dir/rng.cpp.o" "gcc" "src/sim/CMakeFiles/mco_sim.dir/rng.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/mco_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mco_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/mco_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/mco_sim.dir/stats.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/mco_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/mco_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/mco_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/mco_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
