file(REMOVE_RECURSE
  "CMakeFiles/mco_sim.dir/component.cpp.o"
  "CMakeFiles/mco_sim.dir/component.cpp.o.d"
  "CMakeFiles/mco_sim.dir/logger.cpp.o"
  "CMakeFiles/mco_sim.dir/logger.cpp.o.d"
  "CMakeFiles/mco_sim.dir/rng.cpp.o"
  "CMakeFiles/mco_sim.dir/rng.cpp.o.d"
  "CMakeFiles/mco_sim.dir/simulator.cpp.o"
  "CMakeFiles/mco_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mco_sim.dir/stats.cpp.o"
  "CMakeFiles/mco_sim.dir/stats.cpp.o.d"
  "CMakeFiles/mco_sim.dir/trace.cpp.o"
  "CMakeFiles/mco_sim.dir/trace.cpp.o.d"
  "CMakeFiles/mco_sim.dir/trace_export.cpp.o"
  "CMakeFiles/mco_sim.dir/trace_export.cpp.o.d"
  "libmco_sim.a"
  "libmco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
