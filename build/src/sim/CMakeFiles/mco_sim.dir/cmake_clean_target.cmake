file(REMOVE_RECURSE
  "libmco_sim.a"
)
