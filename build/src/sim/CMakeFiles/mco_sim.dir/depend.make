# Empty dependencies file for mco_sim.
# This may be replaced when dependencies are built.
