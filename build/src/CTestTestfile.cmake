# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("mem")
subdirs("noc")
subdirs("sync")
subdirs("kernels")
subdirs("cluster")
subdirs("host")
subdirs("offload")
subdirs("soc")
subdirs("model")
subdirs("energy")
subdirs("isa")
