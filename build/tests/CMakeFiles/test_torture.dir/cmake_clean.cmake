file(REMOVE_RECURSE
  "CMakeFiles/test_torture.dir/test_torture.cpp.o"
  "CMakeFiles/test_torture.dir/test_torture.cpp.o.d"
  "test_torture"
  "test_torture.pdb"
  "test_torture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
