# Empty compiler generated dependencies file for test_sync.
# This may be replaced when dependencies are built.
