# Empty compiler generated dependencies file for test_config_io.
# This may be replaced when dependencies are built.
