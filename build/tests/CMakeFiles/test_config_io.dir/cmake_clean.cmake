file(REMOVE_RECURSE
  "CMakeFiles/test_config_io.dir/test_config_io.cpp.o"
  "CMakeFiles/test_config_io.dir/test_config_io.cpp.o.d"
  "test_config_io"
  "test_config_io.pdb"
  "test_config_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
