
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_noc.cpp" "tests/CMakeFiles/test_noc.dir/test_noc.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/test_noc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mco_model.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mco_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/mco_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/mco_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mco_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mco_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mco_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mco_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/mco_host.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mco_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mco_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
