# Empty compiler generated dependencies file for test_noc.
# This may be replaced when dependencies are built.
