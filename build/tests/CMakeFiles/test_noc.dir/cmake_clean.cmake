file(REMOVE_RECURSE
  "CMakeFiles/test_noc.dir/test_noc.cpp.o"
  "CMakeFiles/test_noc.dir/test_noc.cpp.o.d"
  "test_noc"
  "test_noc.pdb"
  "test_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
