file(REMOVE_RECURSE
  "CMakeFiles/test_extra.dir/test_extra.cpp.o"
  "CMakeFiles/test_extra.dir/test_extra.cpp.o.d"
  "test_extra"
  "test_extra.pdb"
  "test_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
