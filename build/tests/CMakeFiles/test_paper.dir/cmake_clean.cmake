file(REMOVE_RECURSE
  "CMakeFiles/test_paper.dir/test_paper.cpp.o"
  "CMakeFiles/test_paper.dir/test_paper.cpp.o.d"
  "test_paper"
  "test_paper.pdb"
  "test_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
