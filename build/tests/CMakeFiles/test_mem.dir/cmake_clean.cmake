file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/test_mem.cpp.o"
  "CMakeFiles/test_mem.dir/test_mem.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
