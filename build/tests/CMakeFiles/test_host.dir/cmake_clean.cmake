file(REMOVE_RECURSE
  "CMakeFiles/test_host.dir/test_host.cpp.o"
  "CMakeFiles/test_host.dir/test_host.cpp.o.d"
  "test_host"
  "test_host.pdb"
  "test_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
