# Empty compiler generated dependencies file for test_offload.
# This may be replaced when dependencies are built.
