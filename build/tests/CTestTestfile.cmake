# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_offload[1]_include.cmake")
include("/root/repo/build/tests/test_soc[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_config_io[1]_include.cmake")
include("/root/repo/build/tests/test_torture[1]_include.cmake")
include("/root/repo/build/tests/test_extra[1]_include.cmake")
include("/root/repo/build/tests/test_paper[1]_include.cmake")
