// Hand-written DAXPY microkernels at three optimization levels, mirroring
// what a compiler / hand-tuning would produce for a Snitch-class core:
//
//  * scalar   — textbook fld/fld/fmadd/fsd loop with pointer bumps and a
//               backward branch (what -O0/-O1 code looks like);
//  * unrolled — 4x unrolled loop body, amortizing the loop overhead and
//               separating loads from uses to hide latency (typical -O2);
//  * ssr_frep — SSR streams feed x and y, FREP repeats a single fmadd with
//               the store stream carrying results (hand-optimal Snitch code).
//
// measure_daxpy() runs a variant on real TCDM data, verifies the result
// against a reference, and reports cycles/element — the executable version
// of the paper's "inspecting the compiled application" that justifies the
// calibrated 2.6 cycles/element used by the cluster timing model.
#pragma once

#include <cstdint>

#include "isa/core_model.h"

namespace mco::isa {

enum class DaxpyVariant { kScalar, kUnrolled4, kSsrFrep };

const char* to_string(DaxpyVariant v);

/// Build the program for `variant`. Calling convention:
///   x1 = &x[0], x2 = &y[0] (TCDM byte offsets), x3 = element count,
///   f10 = alpha. y is updated in place.
/// For kUnrolled4 the count must be a multiple of 4; kSsrFrep requires
/// count >= 1. Violations throw std::invalid_argument at build time when
/// detectable, or fail verification in measure_daxpy.
Program build_daxpy(DaxpyVariant variant);

struct MicroMeasurement {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double cycles_per_element = 0.0;
  bool verified = false;
};

/// Run `variant` over `n` elements of fresh random data in a private TCDM,
/// verify y == alpha*x + y_old elementwise, and report the timing.
MicroMeasurement measure_daxpy(DaxpyVariant variant, std::uint64_t n, std::uint64_t seed = 1,
                               CoreTiming timing = {});

/// Vector-sum microkernels: the interesting microarchitectural effect is the
/// accumulator dependency — a single accumulator serializes on the FP
/// latency (3 cycles/element), while splitting into several accumulators
/// that are combined at the end restores 1 element/cycle issue.
enum class SumVariant { kSingleAccumulator, kSplitAccumulators };

const char* to_string(SumVariant v);

/// Build a sum program. Convention: x1 = &x, x3 = count, result in f20.
/// kSingleAccumulator uses SSR stream 0 + FREP over one fadd;
/// kSplitAccumulators uses three interleaved accumulators (count % 3 == 0).
Program build_sum(SumVariant variant);

/// Run and verify a sum over `n` random elements.
MicroMeasurement measure_sum(SumVariant variant, std::uint64_t n, std::uint64_t seed = 1,
                             CoreTiming timing = {});

/// Generic streaming elementwise bodies: one SSR/FREP loop per operation,
/// used by the kernel library's ISS compute mode for every f64 elementwise
/// kernel. Conventions: x1 = &in0, x2 = &in1 (binary ops), x6 = &out,
/// x3 = count, f10 = alpha, f13 = beta, f11 must stay 0.0.
enum class StreamOp {
  kCopy,   ///< out = in0
  kScale,  ///< out = alpha * in0
  kRelu,   ///< out = max(in0, 0)
  kAdd,    ///< out = in0 + in1
  kMul,    ///< out = in0 * in1
  kAxpy,   ///< out = alpha * in0 + in1
  kAxpby,  ///< out = alpha * in0 + beta * in1 (2-instruction body)
  kFill,   ///< out = alpha (no input stream)
};

const char* to_string(StreamOp op);

/// Number of input streams the operation consumes (0, 1 or 2).
unsigned stream_op_inputs(StreamOp op);

Program build_elementwise_stream(StreamOp op);

}  // namespace mco::isa
