// Cycle-accurate in-order worker-core model executing the micro-ISA.
//
// Pipeline model (Snitch-class single-issue core):
//  * one instruction issues per cycle, in order;
//  * issue stalls until all source registers are ready (scoreboard);
//  * FP ops (fmadd/fadd/fmul/fmax/fmv) have kFpLatency-cycle result latency,
//    fully pipelined;
//  * fld has kLoadLatency-cycle result latency (TCDM access, conflict-free
//    thanks to the bank interleaving the streamers assume);
//  * fsd retires in 1 cycle (store buffer);
//  * taken branches flush the front-end: kBranchPenalty extra cycles;
//  * frep repeats its body with zero loop overhead (the sequencer replays
//    instructions without re-fetch);
//  * SSR streams replace f0/f1 reads and f2 writes with auto-advancing
//    memory accesses at no issue cost (the FIFO hides the TCDM latency).
//
// Functional state (registers + TCDM contents) is fully modeled, so micro-
// kernels compute real results the tests verify against references.
#pragma once

#include <array>
#include <cstdint>

#include "isa/instruction.h"
#include "mem/tcdm.h"

namespace mco::isa {

struct CoreTiming {
  unsigned fp_latency = 3;
  unsigned load_latency = 2;
  unsigned branch_penalty = 2;  ///< extra cycles on a taken branch
};

/// Result of running a program to completion.
struct RunResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  ///< dynamic instruction count
  bool halted = false;             ///< false if the cycle budget ran out
};

class CoreModel {
 public:
  explicit CoreModel(mem::Tcdm& tcdm, CoreTiming timing = {});

  /// Integer / FP architectural state (x0 is hardwired to zero).
  void set_x(unsigned idx, std::int64_t v);
  std::int64_t x(unsigned idx) const;
  void set_f(unsigned idx, double v);
  double f(unsigned idx) const;

  /// Execute `program` from instruction 0 until kHalt or `max_cycles`.
  /// Throws std::out_of_range for bad register/memory accesses and
  /// std::invalid_argument for malformed programs (e.g. branch out of
  /// bounds, frep body past the end).
  RunResult run(const Program& program, std::uint64_t max_cycles = 10'000'000);

 private:
  struct Stream {
    bool configured = false;
    std::uint64_t addr = 0;
    std::int64_t stride = 0;
  };

  double read_f(unsigned idx, std::uint64_t& ready_cycle);
  void write_f(unsigned idx, double v, std::uint64_t ready_at);

  mem::Tcdm& tcdm_;
  CoreTiming timing_;
  std::array<std::int64_t, 16> xreg_{};
  std::array<double, 32> freg_{};
  std::array<std::uint64_t, 32> f_ready_{};  ///< cycle the register is ready
  std::array<Stream, kNumStreams> streams_{};
  bool ssr_enabled_ = false;
  std::uint64_t now_ = 0;
};

}  // namespace mco::isa
