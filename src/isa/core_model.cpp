#include "isa/core_model.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace mco::isa {

namespace {
void check_f(unsigned idx) {
  if (idx >= 32) throw std::out_of_range("CoreModel: fp register index");
}
void check_x(unsigned idx) {
  if (idx >= 16) throw std::out_of_range("CoreModel: integer register index");
}
}  // namespace

CoreModel::CoreModel(mem::Tcdm& tcdm, CoreTiming timing) : tcdm_(tcdm), timing_(timing) {}

void CoreModel::set_x(unsigned idx, std::int64_t v) {
  check_x(idx);
  if (idx != 0) xreg_[idx] = v;
}
std::int64_t CoreModel::x(unsigned idx) const {
  check_x(idx);
  return idx == 0 ? 0 : xreg_[idx];
}
void CoreModel::set_f(unsigned idx, double v) {
  check_f(idx);
  freg_[idx] = v;
}
double CoreModel::f(unsigned idx) const {
  check_f(idx);
  return freg_[idx];
}

double CoreModel::read_f(unsigned idx, std::uint64_t& ready_cycle) {
  check_f(idx);
  if (ssr_enabled_ && (idx == kSsrReadReg0 || idx == kSsrReadReg1)) {
    Stream& s = streams_[idx];
    if (!s.configured) throw std::logic_error("CoreModel: read from unconfigured SSR stream");
    const double v = tcdm_.read_f64(static_cast<std::size_t>(s.addr));
    s.addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(s.addr) + s.stride);
    // The stream FIFO prefetches; no dependency stall.
    return v;
  }
  ready_cycle = std::max(ready_cycle, f_ready_[idx]);
  return freg_[idx];
}

void CoreModel::write_f(unsigned idx, double v, std::uint64_t ready_at) {
  check_f(idx);
  if (ssr_enabled_ && idx == kSsrWriteReg) {
    Stream& s = streams_[kSsrWriteReg];
    if (!s.configured) throw std::logic_error("CoreModel: write to unconfigured SSR stream");
    tcdm_.write_f64(static_cast<std::size_t>(s.addr), v);
    s.addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(s.addr) + s.stride);
    return;
  }
  freg_[idx] = v;
  f_ready_[idx] = ready_at;
}

RunResult CoreModel::run(const Program& program, std::uint64_t max_cycles) {
  if (program.empty()) throw std::invalid_argument("CoreModel: empty program");
  RunResult result;
  std::size_t pc = 0;

  // frep state: replay [body_begin, body_end) `remaining` more times.
  std::size_t frep_begin = 0;
  std::size_t frep_end = 0;
  std::int64_t frep_remaining = 0;

  while (now_ < max_cycles) {
    if (pc >= program.size())
      throw std::invalid_argument("CoreModel: fell off the end of the program (missing halt?)");
    const Instr& in = program[pc];
    ++result.instructions;

    std::uint64_t issue = now_;  // stall point; sources may push it later
    bool taken_branch = false;
    std::size_t next_pc = pc + 1;

    switch (in.op) {
      case Op::kFld: {
        check_x(in.rs1);
        const auto addr = static_cast<std::size_t>(x(in.rs1) + in.imm);
        const double v = tcdm_.read_f64(addr);
        if (ssr_enabled_ && in.rd <= kSsrWriteReg)
          throw std::logic_error("CoreModel: fld to a streaming register while SSR enabled");
        write_f(in.rd, v, issue + timing_.load_latency);
        break;
      }
      case Op::kFsd: {
        check_x(in.rs1);
        const double v = read_f(in.rs2, issue);
        tcdm_.write_f64(static_cast<std::size_t>(x(in.rs1) + in.imm), v);
        break;
      }
      case Op::kFmadd: {
        const double a = read_f(in.rs1, issue);
        const double b = read_f(in.rs2, issue);
        const double c = read_f(in.rs3, issue);
        write_f(in.rd, a * b + c, issue + timing_.fp_latency);
        break;
      }
      case Op::kFadd: {
        const double a = read_f(in.rs1, issue);
        const double b = read_f(in.rs2, issue);
        write_f(in.rd, a + b, issue + timing_.fp_latency);
        break;
      }
      case Op::kFmul: {
        const double a = read_f(in.rs1, issue);
        const double b = read_f(in.rs2, issue);
        write_f(in.rd, a * b, issue + timing_.fp_latency);
        break;
      }
      case Op::kFmax: {
        const double a = read_f(in.rs1, issue);
        const double b = read_f(in.rs2, issue);
        write_f(in.rd, std::max(a, b), issue + timing_.fp_latency);
        break;
      }
      case Op::kFmv: {
        const double a = read_f(in.rs1, issue);
        write_f(in.rd, a, issue + timing_.fp_latency);
        break;
      }
      case Op::kAddi: {
        set_x(in.rd, x(in.rs1) + in.imm);
        break;
      }
      case Op::kBne:
      case Op::kBlt: {
        const std::int64_t a = x(in.rs1);
        const std::int64_t b = x(in.rs2);
        const bool cond = in.op == Op::kBne ? a != b : a < b;
        if (cond) {
          const std::int64_t target = static_cast<std::int64_t>(pc) + in.imm;
          if (target < 0 || static_cast<std::size_t>(target) >= program.size())
            throw std::invalid_argument("CoreModel: branch target out of bounds");
          next_pc = static_cast<std::size_t>(target);
          taken_branch = true;
        }
        break;
      }
      case Op::kFrep: {
        if (frep_remaining > 0)
          throw std::invalid_argument("CoreModel: nested frep not supported");
        if (in.imm <= 0 || pc + 1 + static_cast<std::size_t>(in.imm) > program.size())
          throw std::invalid_argument("CoreModel: frep body out of bounds");
        const std::int64_t count = x(in.rs1);
        if (count > 1) {
          frep_begin = pc + 1;
          frep_end = pc + 1 + static_cast<std::size_t>(in.imm);
          frep_remaining = count - 1;  // first pass falls through naturally
        }
        if (count == 0) next_pc = pc + 1 + static_cast<std::size_t>(in.imm);
        break;
      }
      case Op::kSsrCfg: {
        if (in.rd >= kNumStreams) throw std::out_of_range("CoreModel: stream index");
        check_x(in.rs1);
        streams_[in.rd].configured = true;
        streams_[in.rd].addr = static_cast<std::uint64_t>(x(in.rs1));
        streams_[in.rd].stride = in.imm;
        break;
      }
      case Op::kSsrEn: {
        ssr_enabled_ = in.imm != 0;
        break;
      }
      case Op::kHalt: {
        result.cycles = issue + 1;
        result.halted = true;
        now_ = issue + 1;
        return result;
      }
    }

    now_ = issue + 1;
    if (taken_branch) now_ += timing_.branch_penalty;

    // Hardware-loop sequencing: leaving the frep body re-enters it with no
    // fetch/branch cost until the repeat count is exhausted.
    if (frep_remaining > 0 && next_pc == frep_end) {
      --frep_remaining;
      next_pc = frep_begin;
    }
    pc = next_pc;
  }
  result.cycles = now_;
  return result;
}

}  // namespace mco::isa
