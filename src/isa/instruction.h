// Worker-core micro-ISA: a RISC-V-flavoured subset with Snitch's two ISA
// extensions — FREP hardware loops and SSR streaming registers.
//
// Purpose: the paper derives its compute-rate constant (2.6 cycles/element
// for DAXPY) "by inspecting the hardware and the compiled application".
// This module makes that inspection executable: kernels written as real
// instruction sequences run on a cycle-accurate in-order core model
// (src/isa/core_model.h) against TCDM contents, and their measured
// cycles/element validate (or refute) the calibrated rates used by the
// transaction-level cluster model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mco::isa {

enum class Op : std::uint8_t {
  kFld,    ///< fld  fd, imm(xs1)        : fd = mem[x[rs1] + imm]
  kFsd,    ///< fsd  fs2, imm(xs1)       : mem[x[rs1] + imm] = fs2
  kFmadd,  ///< fmadd fd, fs1, fs2, fs3  : fd = fs1 * fs2 + fs3
  kFadd,   ///< fadd fd, fs1, fs2
  kFmul,   ///< fmul fd, fs1, fs2
  kFmax,   ///< fmax fd, fs1, fs2
  kFmv,    ///< fmv  fd, fs1
  kAddi,   ///< addi xd, xs1, imm
  kBne,    ///< bne  xs1, xs2, imm       : relative instruction offset
  kBlt,    ///< blt  xs1, xs2, imm
  kFrep,   ///< frep xs1, imm            : repeat the next `imm` instructions
           ///<                            x[rs1] times (zero-overhead loop)
  kSsrCfg, ///< ssr.cfg rd(stream), xs1(base), xs2(stride regs? no: imm)
           ///<   configure stream `rd` (0..2): base x[rs1], stride imm bytes
  kSsrEn,  ///< ssr.enable / disable via imm (1/0)
  kHalt,   ///< stop execution
};

const char* to_string(Op op);

/// One instruction. Register fields index the fp file for f-typed operands
/// and the integer file for x-typed operands (see per-op comments above).
struct Instr {
  Op op = Op::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t rs3 = 0;
  std::int32_t imm = 0;

  std::string to_string() const;
};

// Assembler-style helpers (keep kernel definitions readable).
Instr fld(std::uint8_t fd, std::uint8_t xs, std::int32_t imm);
Instr fsd(std::uint8_t fs, std::uint8_t xs, std::int32_t imm);
Instr fmadd(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2, std::uint8_t fs3);
Instr fadd(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2);
Instr fmul(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2);
Instr fmax(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2);
Instr fmv(std::uint8_t fd, std::uint8_t fs1);
Instr addi(std::uint8_t xd, std::uint8_t xs, std::int32_t imm);
Instr bne(std::uint8_t xs1, std::uint8_t xs2, std::int32_t rel);
Instr blt(std::uint8_t xs1, std::uint8_t xs2, std::int32_t rel);
Instr frep(std::uint8_t xs_count, std::int32_t body_len);
Instr ssr_cfg(std::uint8_t stream, std::uint8_t xs_base, std::int32_t stride_bytes);
Instr ssr_enable(bool on);
Instr halt();

/// The three streaming registers: reads of f0/f1 pop read-streams 0/1,
/// writes to f2 push write-stream 2 (when SSR is enabled) — Snitch's ft0-ft2
/// convention.
inline constexpr std::uint8_t kSsrReadReg0 = 0;
inline constexpr std::uint8_t kSsrReadReg1 = 1;
inline constexpr std::uint8_t kSsrWriteReg = 2;
inline constexpr unsigned kNumStreams = 3;

using Program = std::vector<Instr>;

}  // namespace mco::isa
