#include "isa/microkernels.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "util/strings.h"

namespace mco::isa {

const char* to_string(DaxpyVariant v) {
  switch (v) {
    case DaxpyVariant::kScalar: return "scalar";
    case DaxpyVariant::kUnrolled4: return "unrolled4";
    case DaxpyVariant::kSsrFrep: return "ssr_frep";
  }
  return "?";
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kFld: return "fld";
    case Op::kFsd: return "fsd";
    case Op::kFmadd: return "fmadd";
    case Op::kFadd: return "fadd";
    case Op::kFmul: return "fmul";
    case Op::kFmax: return "fmax";
    case Op::kFmv: return "fmv";
    case Op::kAddi: return "addi";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kFrep: return "frep";
    case Op::kSsrCfg: return "ssr.cfg";
    case Op::kSsrEn: return "ssr.en";
    case Op::kHalt: return "halt";
  }
  return "?";
}

std::string Instr::to_string() const {
  return util::format("%s rd=%u rs1=%u rs2=%u rs3=%u imm=%d", isa::to_string(op), rd, rs1, rs2,
                      rs3, imm);
}

Instr fld(std::uint8_t fd, std::uint8_t xs, std::int32_t imm) {
  return Instr{Op::kFld, fd, xs, 0, 0, imm};
}
Instr fsd(std::uint8_t fs, std::uint8_t xs, std::int32_t imm) {
  return Instr{Op::kFsd, 0, xs, fs, 0, imm};
}
Instr fmadd(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2, std::uint8_t fs3) {
  return Instr{Op::kFmadd, fd, fs1, fs2, fs3, 0};
}
Instr fadd(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2) {
  return Instr{Op::kFadd, fd, fs1, fs2, 0, 0};
}
Instr fmul(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2) {
  return Instr{Op::kFmul, fd, fs1, fs2, 0, 0};
}
Instr fmax(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2) {
  return Instr{Op::kFmax, fd, fs1, fs2, 0, 0};
}
Instr fmv(std::uint8_t fd, std::uint8_t fs1) { return Instr{Op::kFmv, fd, fs1, 0, 0, 0}; }
Instr addi(std::uint8_t xd, std::uint8_t xs, std::int32_t imm) {
  return Instr{Op::kAddi, xd, xs, 0, 0, imm};
}
Instr bne(std::uint8_t xs1, std::uint8_t xs2, std::int32_t rel) {
  return Instr{Op::kBne, 0, xs1, xs2, 0, rel};
}
Instr blt(std::uint8_t xs1, std::uint8_t xs2, std::int32_t rel) {
  return Instr{Op::kBlt, 0, xs1, xs2, 0, rel};
}
Instr frep(std::uint8_t xs_count, std::int32_t body_len) {
  return Instr{Op::kFrep, 0, xs_count, 0, 0, body_len};
}
Instr ssr_cfg(std::uint8_t stream, std::uint8_t xs_base, std::int32_t stride_bytes) {
  return Instr{Op::kSsrCfg, stream, xs_base, 0, 0, stride_bytes};
}
Instr ssr_enable(bool on) { return Instr{Op::kSsrEn, 0, 0, 0, 0, on ? 1 : 0}; }
Instr halt() { return Instr{Op::kHalt, 0, 0, 0, 0, 0}; }

Program build_daxpy(DaxpyVariant variant) {
  // Convention: x1 = &x, x2 = &y, x3 = count, x4 = loop counter, f10 = alpha.
  switch (variant) {
    case DaxpyVariant::kScalar: {
      // loop: fld f4, 0(x1); fld f5, 0(x2); fmadd f6, f10, f4, f5;
      //       fsd f6, 0(x2); addi x1,x1,8; addi x2,x2,8; addi x4,x4,1;
      //       bne x4, x3, loop
      return Program{
          addi(4, 0, 0),        // 0: x4 = 0
          fld(4, 1, 0),         // 1: loop body
          fld(5, 2, 0),         // 2
          fmadd(6, 10, 4, 5),   // 3
          fsd(6, 2, 0),         // 4
          addi(1, 1, 8),        // 5
          addi(2, 2, 8),        // 6
          addi(4, 4, 1),        // 7
          bne(4, 3, -7),        // 8: back to 1
          halt(),               // 9
      };
    }
    case DaxpyVariant::kUnrolled4: {
      // 4x unrolled: loads grouped ahead of uses to hide load/FP latency,
      // one pointer bump + one branch per 4 elements. Count must be 4k.
      return Program{
          addi(4, 0, 0),        // 0: x4 = 0
          fld(4, 1, 0),         // 1: loop body (len 16)
          fld(5, 1, 8),
          fld(6, 1, 16),
          fld(7, 1, 24),
          fld(20, 2, 0),
          fld(21, 2, 8),
          fld(22, 2, 16),
          fld(23, 2, 24),
          fmadd(24, 10, 4, 20),
          fmadd(25, 10, 5, 21),
          fmadd(26, 10, 6, 22),
          fmadd(27, 10, 7, 23),
          fsd(24, 2, 0),
          fsd(25, 2, 8),
          fsd(26, 2, 16),
          fsd(27, 2, 24),
          addi(1, 1, 32),
          addi(2, 2, 32),
          addi(4, 4, 4),
          bne(4, 3, -19),       // back to 1
          halt(),
      };
    }
    case DaxpyVariant::kSsrFrep: {
      // Streams: 0 reads x, 1 reads y, 2 writes y. One fmadd per element,
      // replayed by the hardware loop — the fsd is absorbed by the write
      // stream, so the steady state is 1 instruction/element.
      return Program{
          ssr_cfg(0, 1, 8),       // stream0: x, stride 8
          ssr_cfg(1, 2, 8),       // stream1: y (reads)
          ssr_cfg(2, 2, 8),       // stream2: y (writes)
          ssr_enable(true),
          frep(3, 1),             // repeat next 1 instruction x3 times
          fmadd(2, 10, 0, 1),     // ft2 = alpha*ft0 + ft1  (all streaming)
          ssr_enable(false),
          halt(),
      };
    }
  }
  throw std::invalid_argument("build_daxpy: unknown variant");
}

const char* to_string(SumVariant v) {
  switch (v) {
    case SumVariant::kSingleAccumulator: return "sum_1acc";
    case SumVariant::kSplitAccumulators: return "sum_3acc";
  }
  return "?";
}

Program build_sum(SumVariant variant) {
  switch (variant) {
    case SumVariant::kSingleAccumulator: {
      // f20 += ft0 for every element: each fadd depends on the previous
      // one, so the loop runs at the FP latency, not the issue rate.
      return Program{
          ssr_cfg(0, 1, 8),
          ssr_enable(true),
          fmul(20, 20, 21),     // f20 = 0 (f21 left 0 by reset? ensure below)
          frep(3, 1),
          fadd(20, 20, 0),      // f20 += stream0
          ssr_enable(false),
          halt(),
      };
    }
    case SumVariant::kSplitAccumulators: {
      // Three round-robin accumulators break the dependency chain; a final
      // two fadds combine them. Count must be a multiple of 3.
      return Program{
          ssr_cfg(0, 1, 8),
          ssr_enable(true),
          fmul(20, 20, 21),     // zero the accumulators
          fmv(22, 20),
          fmv(23, 20),
          addi(4, 0, 0),        // x4 = iterations of the 3-element body
          frep(5, 3),           // x5 = count / 3
          fadd(20, 20, 0),
          fadd(22, 22, 0),
          fadd(23, 23, 0),
          ssr_enable(false),
          fadd(20, 20, 22),
          fadd(20, 20, 23),
          halt(),
      };
    }
  }
  throw std::invalid_argument("build_sum: unknown variant");
}

const char* to_string(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy: return "copy";
    case StreamOp::kScale: return "scale";
    case StreamOp::kRelu: return "relu";
    case StreamOp::kAdd: return "add";
    case StreamOp::kMul: return "mul";
    case StreamOp::kAxpy: return "axpy";
    case StreamOp::kAxpby: return "axpby";
    case StreamOp::kFill: return "fill";
  }
  return "?";
}

unsigned stream_op_inputs(StreamOp op) {
  switch (op) {
    case StreamOp::kFill: return 0;
    case StreamOp::kCopy:
    case StreamOp::kScale:
    case StreamOp::kRelu: return 1;
    case StreamOp::kAdd:
    case StreamOp::kMul:
    case StreamOp::kAxpy:
    case StreamOp::kAxpby: return 2;
  }
  return 0;
}

Program build_elementwise_stream(StreamOp op) {
  Program p;
  const unsigned ins = stream_op_inputs(op);
  if (ins >= 1) p.push_back(ssr_cfg(0, 1, 8));
  if (ins >= 2) p.push_back(ssr_cfg(1, 2, 8));
  p.push_back(ssr_cfg(2, 6, 8));
  p.push_back(ssr_enable(true));

  Program body;
  switch (op) {
    case StreamOp::kCopy: body = {fadd(2, 0, 11)}; break;          // in0 + 0
    case StreamOp::kScale: body = {fmul(2, 10, 0)}; break;         // alpha * in0
    case StreamOp::kRelu: body = {fmax(2, 0, 11)}; break;          // max(in0, 0)
    case StreamOp::kAdd: body = {fadd(2, 0, 1)}; break;
    case StreamOp::kMul: body = {fmul(2, 0, 1)}; break;
    case StreamOp::kAxpy: body = {fmadd(2, 10, 0, 1)}; break;
    case StreamOp::kAxpby:
      // t = beta * in1; out = alpha * in0 + t — the t dependency makes this
      // body run at the FP latency, a genuinely more expensive loop.
      body = {fmul(4, 13, 1), fmadd(2, 10, 0, 4)};
      break;
    case StreamOp::kFill: body = {fadd(2, 10, 11)}; break;         // alpha + 0
  }
  p.push_back(frep(3, static_cast<std::int32_t>(body.size())));
  p.insert(p.end(), body.begin(), body.end());
  p.push_back(ssr_enable(false));
  p.push_back(halt());
  return p;
}

MicroMeasurement measure_sum(SumVariant variant, std::uint64_t n, std::uint64_t seed,
                             CoreTiming timing) {
  if (n == 0) throw std::invalid_argument("measure_sum: n == 0");
  if (variant == SumVariant::kSplitAccumulators && n % 3 != 0)
    throw std::invalid_argument("measure_sum: split accumulators need n % 3 == 0");

  sim::Simulator sim;
  mem::TcdmConfig tcfg;
  tcfg.size_bytes = std::max<std::size_t>(static_cast<std::size_t>(n * 8), 1024);
  mem::Tcdm tcdm(sim, "tcdm", tcfg);

  sim::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  tcdm.write_f64_array(0, x);

  CoreModel core(tcdm, timing);
  core.set_x(1, 0);
  core.set_x(3, static_cast<std::int64_t>(n));
  core.set_x(5, static_cast<std::int64_t>(n / 3));
  core.set_f(20, 1.0);  // zeroed by the kernel's fmul against f21 = 0
  core.set_f(21, 0.0);

  const RunResult run = core.run(build_sum(variant));

  MicroMeasurement m;
  m.cycles = run.cycles;
  m.instructions = run.instructions;
  m.cycles_per_element = static_cast<double>(run.cycles) / static_cast<double>(n);
  m.verified = run.halted;
  double expected = 0.0;
  for (const double v : x) expected += v;
  // Split accumulators change the summation order; compare with tolerance.
  if (std::abs(core.f(20) - expected) > 1e-9) m.verified = false;
  return m;
}

MicroMeasurement measure_daxpy(DaxpyVariant variant, std::uint64_t n, std::uint64_t seed,
                               CoreTiming timing) {
  if (n == 0) throw std::invalid_argument("measure_daxpy: n == 0");
  if (variant == DaxpyVariant::kUnrolled4 && n % 4 != 0)
    throw std::invalid_argument("measure_daxpy: unrolled4 needs n % 4 == 0");

  sim::Simulator sim;
  mem::TcdmConfig tcfg;
  tcfg.size_bytes = std::max<std::size_t>(static_cast<std::size_t>(2 * n * 8), 1024);
  mem::Tcdm tcdm(sim, "tcdm", tcfg);

  sim::Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  tcdm.write_f64_array(0, x);
  tcdm.write_f64_array(n * 8, y);
  const double alpha = 1.75;

  CoreModel core(tcdm, timing);
  core.set_x(1, 0);
  core.set_x(2, static_cast<std::int64_t>(n * 8));
  core.set_x(3, static_cast<std::int64_t>(n));
  core.set_f(10, alpha);

  const RunResult run = core.run(build_daxpy(variant));

  MicroMeasurement m;
  m.cycles = run.cycles;
  m.instructions = run.instructions;
  m.cycles_per_element = static_cast<double>(run.cycles) / static_cast<double>(n);
  m.verified = run.halted;
  const auto got = tcdm.read_f64_array(n * 8, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (std::abs(got[i] - (alpha * x[i] + y[i])) > 1e-12) {
      m.verified = false;
      break;
    }
  }
  return m;
}

}  // namespace mco::isa
