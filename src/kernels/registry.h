// Kernel registry: id → kernel, as the cluster runtime resolves dispatches.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/kernel.h"

namespace mco::kernels {

class KernelRegistry {
 public:
  /// Registry preloaded with every built-in kernel.
  static KernelRegistry standard();

  /// Process-wide immutable registry of the built-in kernels. Initialized
  /// exactly once (thread-safe magic static) and never mutated afterwards,
  /// so any number of concurrently running simulations may resolve kernels
  /// through it without synchronization. Code that needs extra kernels
  /// builds its own registry via standard() + register_kernel() instead of
  /// mutating this one.
  static const KernelRegistry& shared();

  KernelRegistry() = default;

  /// Takes ownership; throws std::invalid_argument on duplicate id or name.
  void register_kernel(std::unique_ptr<Kernel> kernel);

  /// Throws std::out_of_range for unknown ids — an unknown id in a dispatch
  /// payload is a protocol violation, not a recoverable condition.
  const Kernel& by_id(std::uint32_t id) const;
  const Kernel& by_name(const std::string& name) const;

  bool has(std::uint32_t id) const { return kernels_.count(id) != 0; }
  std::size_t size() const { return kernels_.size(); }

  std::vector<const Kernel*> all() const;

 private:
  std::map<std::uint32_t, std::unique_ptr<Kernel>> kernels_;
  std::map<std::string, std::uint32_t> by_name_;
};

}  // namespace mco::kernels
