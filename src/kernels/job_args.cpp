#include "kernels/job_args.h"

#include <bit>
#include <stdexcept>

namespace mco::kernels {

noc::DispatchMessage marshal_payload(const JobArgs& args, unsigned num_clusters,
                                     const std::vector<std::uint64_t>& kernel_words,
                                     unsigned first_cluster) {
  if (num_clusters == 0) throw std::invalid_argument("marshal_payload: zero clusters");
  if (num_clusters > 0xFFFF || first_cluster > 0xFFFF)
    throw std::invalid_argument("marshal_payload: cluster field exceeds 16 bits");
  noc::DispatchMessage msg;
  msg.words.reserve(kHeaderWords + kernel_words.size());
  msg.words.push_back(args.job_id);
  msg.words.push_back((static_cast<std::uint64_t>(args.kernel_id) << 32) |
                      (static_cast<std::uint64_t>(first_cluster) << 16) |
                      static_cast<std::uint64_t>(num_clusters));
  msg.words.push_back(args.n);
  msg.words.insert(msg.words.end(), kernel_words.begin(), kernel_words.end());
  return msg;
}

PayloadHeader parse_header(const noc::DispatchMessage& msg) {
  if (msg.words.size() < kHeaderWords)
    throw std::invalid_argument("parse_header: payload shorter than header");
  PayloadHeader h;
  h.job_id = msg.words[0];
  h.kernel_id = static_cast<std::uint32_t>(msg.words[1] >> 32);
  h.first_cluster = static_cast<unsigned>((msg.words[1] >> 16) & 0xFFFFull);
  h.num_clusters = static_cast<unsigned>(msg.words[1] & 0xFFFFull);
  h.n = msg.words[2];
  if (h.num_clusters == 0) throw std::invalid_argument("parse_header: zero clusters in payload");
  return h;
}

std::vector<std::uint64_t> payload_args(const noc::DispatchMessage& msg) {
  if (msg.words.size() < kHeaderWords)
    throw std::invalid_argument("payload_args: payload shorter than header");
  return {msg.words.begin() + kHeaderWords, msg.words.end()};
}

ChunkRange split_chunk(std::uint64_t n, unsigned idx, unsigned parts) {
  if (parts == 0) throw std::invalid_argument("split_chunk: zero parts");
  if (idx >= parts) throw std::out_of_range("split_chunk: idx >= parts");
  const std::uint64_t base = n / parts;
  const std::uint64_t rem = n % parts;
  ChunkRange r;
  if (idx < rem) {
    r.count = base + 1;
    r.begin = idx * (base + 1);
  } else {
    r.count = base;
    r.begin = rem * (base + 1) + (idx - rem) * base;
  }
  return r;
}

std::uint64_t f64_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }

}  // namespace mco::kernels
