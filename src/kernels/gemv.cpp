#include "kernels/gemv.h"

#include <stdexcept>

namespace mco::kernels {

void GemvKernel::validate(const JobArgs& args) const {
  Kernel::validate(args);
  if (args.aux == 0) throw std::invalid_argument("gemv: aux (cols) must be > 0");
  if (args.in0 == 0) throw std::invalid_argument("gemv: null matrix in0");
  if (args.in1 == 0) throw std::invalid_argument("gemv: null vector in1");
  if (args.out0 == 0) throw std::invalid_argument("gemv: null output out0");
}

std::vector<std::uint64_t> GemvKernel::marshal_args(const JobArgs& args) const {
  return {f64_bits(args.alpha), args.in0, args.in1, args.out0, args.aux};
}

JobArgs GemvKernel::unmarshal(const PayloadHeader& h,
                              const std::vector<std::uint64_t>& words) const {
  if (words.size() != 5) throw std::invalid_argument("gemv: payload has wrong argument count");
  JobArgs args;
  args.kernel_id = h.kernel_id;
  args.job_id = h.job_id;
  args.n = h.n;
  args.alpha = bits_f64(words[0]);
  args.in0 = words[1];
  args.in1 = words[2];
  args.out0 = words[3];
  args.aux = words[4];
  return args;
}

ClusterPlan GemvKernel::plan_cluster(const JobArgs& args, unsigned idx, unsigned parts) const {
  const ChunkRange rows = split_chunk(args.n, idx, parts);
  const std::size_t cols = static_cast<std::size_t>(args.aux);
  ClusterPlan plan;
  plan.items = rows.count;
  if (rows.count == 0) return plan;

  const std::size_t x_bytes = cols * 8;
  const std::size_t a_bytes = static_cast<std::size_t>(rows.count) * cols * 8;
  const std::size_t y_bytes = static_cast<std::size_t>(rows.count) * 8;
  // Layout: x | A-chunk | y-chunk.
  plan.dma_in.push_back(DmaSeg{args.in1, 0, x_bytes});
  plan.dma_in.push_back(DmaSeg{args.in0 + rows.begin * cols * 8, x_bytes, a_bytes});
  plan.dma_out.push_back(DmaSeg{args.out0 + rows.begin * 8, x_bytes + a_bytes, y_bytes});
  return plan;
}

void GemvKernel::compute_rows(MemView& mem, const JobArgs& args, std::size_t a_off,
                              std::size_t x_off, std::size_t y_off, std::uint64_t rows) {
  const std::size_t cols = static_cast<std::size_t>(args.aux);
  for (std::uint64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      acc += mem.read_f64(a_off + (r * cols + c) * 8) * mem.read_f64(x_off + c * 8);
    }
    mem.write_f64(y_off + r * 8, args.alpha * acc);
  }
}

void GemvKernel::execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                                 unsigned parts) const {
  const ChunkRange rows = split_chunk(args.n, idx, parts);
  if (rows.count == 0) return;
  const std::size_t cols = static_cast<std::size_t>(args.aux);
  const std::size_t x_off = 0;
  const std::size_t a_off = cols * 8;
  const std::size_t y_off = a_off + static_cast<std::size_t>(rows.count) * cols * 8;
  TcdmView view(tcdm);
  compute_rows(view, args, a_off, x_off, y_off, rows.count);
}

void GemvKernel::host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                              const JobArgs& args) const {
  validate(args);
  HbmView view(mem);
  compute_rows(view, args, static_cast<std::size_t>(map.hbm_offset(args.in0)),
               static_cast<std::size_t>(map.hbm_offset(args.in1)),
               static_cast<std::size_t>(map.hbm_offset(args.out0)), args.n);
}

sim::Cycles GemvKernel::worker_cycles(const JobArgs& args, std::uint64_t rows) const {
  if (rows == 0) return 0;
  constexpr sim::Cycles kRowOverhead = 3;
  return rows * (rate().cycles_for(args.aux) + kRowOverhead);
}

sim::Cycles GemvKernel::host_execute_cycles(const JobArgs& args) const {
  // Scalar host: ~4 cycles per (row, col) multiply-accumulate.
  return host_rate().cycles_for(args.n * args.aux);
}

}  // namespace mco::kernels
