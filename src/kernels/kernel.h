// Offloadable kernel interface.
//
// A kernel couples three things:
//  1. a *dispatch* description: which argument words travel in the mailbox
//     payload (their count is what sequential dispatch pays per cluster);
//  2. a *data/compute plan* per cluster: DMA segments in/out of TCDM and the
//     number of work items, from which the cluster derives per-worker timing
//     via a calibrated cycles/item rate (DAXPY: 2.6, the paper's measured
//     inner-loop throughput including TCDM effects);
//  3. the *functional* execution: real arithmetic on the simulated memories,
//     so results are verifiable end-to-end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/job_args.h"
#include "mem/address_map.h"
#include "mem/main_memory.h"
#include "mem/tcdm.h"
#include "sim/time.h"
#include "util/math.h"

namespace mco::kernels {

/// One DMA segment of a cluster's plan.
struct DmaSeg {
  mem::Addr hbm = 0;         ///< physical HBM address
  std::size_t tcdm_off = 0;  ///< cluster-local TCDM byte offset
  std::size_t bytes = 0;
};

/// Per-cluster data movement + work description.
struct ClusterPlan {
  std::vector<DmaSeg> dma_in;
  std::vector<DmaSeg> dma_out;
  /// Work items this cluster processes (split over the worker cores).
  std::uint64_t items = 0;

  std::size_t tcdm_footprint() const;
  std::size_t bytes_in() const;
  std::size_t bytes_out() const;
};

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::uint32_t id() const = 0;
  virtual std::string name() const = 0;

  /// Validate generic + kernel-specific arguments; throws
  /// std::invalid_argument with a message naming the offending field.
  virtual void validate(const JobArgs& args) const;

  /// Kernel-specific payload words (appended after the 3 header words).
  virtual std::vector<std::uint64_t> marshal_args(const JobArgs& args) const = 0;

  /// Rebuild JobArgs from header + argument words (cluster-side parse).
  virtual JobArgs unmarshal(const PayloadHeader& h,
                            const std::vector<std::uint64_t>& words) const = 0;

  /// Data/compute plan for cluster `idx` of `parts`.
  virtual ClusterPlan plan_cluster(const JobArgs& args, unsigned idx, unsigned parts) const = 0;

  /// Whether the kernel can process an arbitrary sub-range of its items
  /// (enables TCDM tiling for chunks larger than the scratchpad). Kernels
  /// with cross-item state per cluster (reductions, GEMV row layout) opt out.
  virtual bool supports_tiling() const { return false; }

  /// Plan for an arbitrary item range [begin, begin+count). Only valid when
  /// supports_tiling(); the default throws std::logic_error.
  virtual ClusterPlan plan_range(const JobArgs& args, std::uint64_t begin,
                                 std::uint64_t count) const;

  /// Execute an arbitrary item range on TCDM (tiling counterpart of
  /// execute_cluster). `tcdm_base` shifts the kernel's buffer layout — used
  /// by double-buffered tiling where odd tiles live in the upper half of
  /// TCDM. Only valid when supports_tiling().
  virtual void execute_range(mem::Tcdm& tcdm, const JobArgs& args, std::uint64_t begin,
                             std::uint64_t count, std::size_t tcdm_base = 0) const;

  /// Whether the kernel can re-express a job over an arbitrary element
  /// sub-range as a standalone job. Fault recovery uses this to hand a failed
  /// cluster's chunk to a surviving cluster as a fresh one-cluster dispatch.
  /// Kernels with cross-item coupling (reductions, GEMV) opt out.
  virtual bool supports_subrange() const { return false; }

  /// JobArgs describing the standalone sub-job covering items
  /// [begin, begin + count) of `args` (same job_id). Only valid when
  /// supports_subrange(); the default throws std::logic_error.
  virtual JobArgs subrange_args(const JobArgs& args, std::uint64_t begin,
                                std::uint64_t count) const;

  /// Compute cycles for one worker core processing `items` work items.
  /// Default: ceil(items * rate). Zero items cost zero.
  virtual sim::Cycles worker_cycles(const JobArgs& args, std::uint64_t items) const;

  /// Calibrated per-item compute rate (cycles/item) for the default
  /// worker_cycles. Kernels with item-size-dependent cost override
  /// worker_cycles instead.
  virtual util::Rate rate() const = 0;

  /// Execute this cluster's whole chunk on TCDM (called after DMA-in; the
  /// per-worker split affects timing only, not functional behaviour).
  virtual void execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                               unsigned parts) const = 0;

  /// Host-side epilogue cost after all clusters completed (e.g. combining
  /// per-cluster reduction partials). Zero for map-style kernels.
  virtual sim::Cycles host_epilogue_cycles(const JobArgs& args, unsigned parts) const;

  /// Functional epilogue on main memory.
  virtual void host_epilogue(mem::MainMemory& mem, const mem::AddressMap& map,
                             const JobArgs& args, unsigned parts) const;

  /// Estimated cycles if the host executed the kernel itself (scalar core,
  /// no offload). Used by the offload-decision solver.
  virtual sim::Cycles host_execute_cycles(const JobArgs& args) const;

  /// Functionally execute the whole job on the host (no offload), operating
  /// directly on main memory. Kernels without a host path throw
  /// std::logic_error; all built-in kernels implement it.
  virtual void host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                            const JobArgs& args) const;

  /// Cycles/item of the host core for this kernel (default 4: a scalar
  /// in-order core without streaming FP units).
  virtual util::Rate host_rate() const { return {4, 1}; }

  // ---- instruction-level execution (optional) --------------------------------

  /// Inner-loop implementation selector for ISS-backed compute (see
  /// Cluster::use_iss_compute). Kernels without microcode return false from
  /// supports_iss() and the cluster falls back to the calibrated rate.
  enum class IssVariant { kScalar, kUnrolled4, kSsrFrep };

  virtual bool supports_iss() const { return false; }

  /// Execute one worker's sub-range of a tile on the cycle-accurate core
  /// model, *performing the arithmetic on the TCDM* and returning the
  /// measured cycles. `tcdm_base` is the tile's buffer base; the tile holds
  /// `tile_items` items of which this worker owns
  /// [worker_begin, worker_begin + worker_items). Default throws
  /// std::logic_error (guard with supports_iss()).
  virtual sim::Cycles run_on_iss(mem::Tcdm& tcdm, const JobArgs& args, std::size_t tcdm_base,
                                 std::uint64_t tile_items, std::uint64_t worker_begin,
                                 std::uint64_t worker_items, IssVariant variant) const;
};

/// Total number of payload words for a job (header + kernel args).
std::size_t dispatch_words(const Kernel& k, const JobArgs& args);

}  // namespace mco::kernels
