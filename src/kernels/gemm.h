// GEMM: dense matrix-matrix product, row-block-chunked across clusters.
//
// C = alpha * A × B with A (n×k), B (k×k, square) and C (n×k), all row-major
// f64. Cluster i receives a balanced block of A's rows plus a full copy of B
// — the classic inner-panel replication scheme. Compute per work item (one
// row of C) is k² multiply-accumulates, so unlike the BLAS-1 kernels the
// compute term dominates the data term even at small n, giving the sweep a
// workload where offloading pays off at much smaller item counts.
//
// Args: n = rows of A/C, aux = k (panel dimension), in0 = A, in1 = B,
// out0 = C, alpha = scale.
#pragma once

#include "kernels/kernel.h"
#include "kernels/mem_view.h"

namespace mco::kernels {

inline constexpr std::uint32_t kGemmId = 33;

class GemmKernel final : public Kernel {
 public:
  std::uint32_t id() const override { return kGemmId; }
  std::string name() const override { return "gemm"; }

  void validate(const JobArgs& args) const override;
  std::vector<std::uint64_t> marshal_args(const JobArgs& args) const override;
  JobArgs unmarshal(const PayloadHeader& h, const std::vector<std::uint64_t>& words) const override;
  ClusterPlan plan_cluster(const JobArgs& args, unsigned idx, unsigned parts) const override;
  void execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                       unsigned parts) const override;

  /// Per-row cost: k² multiply-accumulates at ~1.25 cycles each (streaming
  /// panel), plus per-row loop overhead.
  sim::Cycles worker_cycles(const JobArgs& args, std::uint64_t rows) const override;
  util::Rate rate() const override { return {5, 4}; }  // per MAC

  sim::Cycles host_execute_cycles(const JobArgs& args) const override;
  void host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                    const JobArgs& args) const override;

 private:
  static void compute_rows(MemView& mem, const JobArgs& args, std::size_t a_off,
                           std::size_t b_off, std::size_t c_off, std::uint64_t rows);
};

}  // namespace mco::kernels
