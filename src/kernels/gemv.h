// GEMV: dense matrix-vector product, row-chunked across clusters.
//
// y = alpha * A * x, with A a rows×cols row-major f64 matrix. Cluster i
// receives a balanced chunk of rows plus a full copy of x — so unlike DAXPY
// the *aggregate* DMA volume grows with M (M copies of x), giving the
// kernel-sweep experiment a workload whose data term is not M-independent.
//
// Args: n = rows, aux = cols, in0 = A, in1 = x, out0 = y, alpha = scale.
// Work item = one row; per-row compute cost scales with cols.
#pragma once

#include "kernels/kernel.h"
#include "kernels/mem_view.h"

namespace mco::kernels {

inline constexpr std::uint32_t kGemvId = 32;

class GemvKernel final : public Kernel {
 public:
  std::uint32_t id() const override { return kGemvId; }
  std::string name() const override { return "gemv"; }

  void validate(const JobArgs& args) const override;
  std::vector<std::uint64_t> marshal_args(const JobArgs& args) const override;
  JobArgs unmarshal(const PayloadHeader& h, const std::vector<std::uint64_t>& words) const override;
  ClusterPlan plan_cluster(const JobArgs& args, unsigned idx, unsigned parts) const override;
  void execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                       unsigned parts) const override;

  /// Per-row cost: ~1.25 cycles per column (fmadd chain with streaming
  /// loads) plus a small row-loop overhead.
  sim::Cycles worker_cycles(const JobArgs& args, std::uint64_t rows) const override;
  util::Rate rate() const override { return {5, 4}; }  // per (row, col) pair

  sim::Cycles host_execute_cycles(const JobArgs& args) const override;
  void host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                    const JobArgs& args) const override;

 private:
  /// Shared row loop: y[r] = alpha * A[r,:]·x for rows [0, rows), with A, x
  /// and y at the given byte offsets of `mem`.
  static void compute_rows(MemView& mem, const JobArgs& args, std::size_t a_off,
                           std::size_t x_off, std::size_t y_off, std::uint64_t rows);
};

}  // namespace mco::kernels
