#include "kernels/registry.h"

#include <stdexcept>

#include "kernels/blas1.h"
#include "kernels/gemm.h"
#include "kernels/gemv.h"
#include "kernels/reductions.h"
#include "util/strings.h"

namespace mco::kernels {

KernelRegistry KernelRegistry::standard() {
  KernelRegistry r;
  r.register_kernel(std::make_unique<DaxpyKernel>());
  r.register_kernel(std::make_unique<SaxpyKernel>());
  r.register_kernel(std::make_unique<AxpbyKernel>());
  r.register_kernel(std::make_unique<ScaleKernel>());
  r.register_kernel(std::make_unique<VecAddKernel>());
  r.register_kernel(std::make_unique<VecMulKernel>());
  r.register_kernel(std::make_unique<ReluKernel>());
  r.register_kernel(std::make_unique<FillKernel>());
  r.register_kernel(std::make_unique<MemcpyKernel>());
  r.register_kernel(std::make_unique<DotKernel>());
  r.register_kernel(std::make_unique<VecSumKernel>());
  r.register_kernel(std::make_unique<GemvKernel>());
  r.register_kernel(std::make_unique<GemmKernel>());
  return r;
}

const KernelRegistry& KernelRegistry::shared() {
  static const KernelRegistry kShared = standard();
  return kShared;
}

void KernelRegistry::register_kernel(std::unique_ptr<Kernel> kernel) {
  if (!kernel) throw std::invalid_argument("KernelRegistry: null kernel");
  const std::uint32_t id = kernel->id();
  const std::string name = kernel->name();
  if (kernels_.count(id))
    throw std::invalid_argument(util::format("KernelRegistry: duplicate id %u", id));
  if (by_name_.count(name))
    throw std::invalid_argument("KernelRegistry: duplicate name " + name);
  by_name_[name] = id;
  kernels_[id] = std::move(kernel);
}

const Kernel& KernelRegistry::by_id(std::uint32_t id) const {
  const auto it = kernels_.find(id);
  if (it == kernels_.end())
    throw std::out_of_range(util::format("KernelRegistry: unknown kernel id %u", id));
  return *it->second;
}

const Kernel& KernelRegistry::by_name(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) throw std::out_of_range("KernelRegistry: unknown kernel " + name);
  return by_id(it->second);
}

std::vector<const Kernel*> KernelRegistry::all() const {
  std::vector<const Kernel*> out;
  out.reserve(kernels_.size());
  for (const auto& [id, k] : kernels_) out.push_back(k.get());
  return out;
}

}  // namespace mco::kernels
