// Uniform byte-addressed view over a memory (TCDM or main memory).
//
// Kernels express their arithmetic once against this interface; the cluster
// path binds it to the cluster's TCDM after DMA-in, and the host-fallback
// path binds it to main memory directly. This guarantees the offloaded and
// host executions of a kernel are the same code — so the offload-decision
// experiments compare *where* to run, never *what* runs.
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>

#include "mem/main_memory.h"
#include "mem/tcdm.h"

namespace mco::kernels {

class MemView {
 public:
  virtual ~MemView() = default;

  virtual double read_f64(std::size_t offset) const = 0;
  virtual void write_f64(std::size_t offset, double v) = 0;

  /// Raw byte access for non-f64 element types (e.g. SAXPY's f32).
  virtual const std::uint8_t* raw(std::size_t offset, std::size_t n) const = 0;
  virtual std::uint8_t* raw_mut(std::size_t offset, std::size_t n) = 0;

  float read_f32(std::size_t offset) const {
    float v;
    std::memcpy(&v, raw(offset, 4), 4);
    return v;
  }
  void write_f32(std::size_t offset, float v) { std::memcpy(raw_mut(offset, 4), &v, 4); }
};

/// View over a cluster's TCDM (offsets are cluster-local byte offsets).
class TcdmView final : public MemView {
 public:
  explicit TcdmView(mem::Tcdm& tcdm) : tcdm_(tcdm) {}
  double read_f64(std::size_t offset) const override { return tcdm_.read_f64(offset); }
  void write_f64(std::size_t offset, double v) override { tcdm_.write_f64(offset, v); }
  const std::uint8_t* raw(std::size_t offset, std::size_t n) const override {
    return std::as_const(tcdm_).data(offset, n);
  }
  std::uint8_t* raw_mut(std::size_t offset, std::size_t n) override {
    return tcdm_.data(offset, n);
  }

 private:
  mem::Tcdm& tcdm_;
};

/// View over main memory (offsets are HBM-relative byte offsets).
class HbmView final : public MemView {
 public:
  explicit HbmView(mem::MainMemory& mem) : mem_(mem) {}
  double read_f64(std::size_t offset) const override { return mem_.read_f64(offset); }
  void write_f64(std::size_t offset, double v) override { mem_.write_f64(offset, v); }
  const std::uint8_t* raw(std::size_t offset, std::size_t n) const override {
    return std::as_const(mem_).data(offset, n);
  }
  std::uint8_t* raw_mut(std::size_t offset, std::size_t n) override {
    return mem_.data(offset, n);
  }

 private:
  mem::MainMemory& mem_;
};

}  // namespace mco::kernels
