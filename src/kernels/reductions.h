// Reduction kernels: per-cluster partials + host epilogue.
//
// Reductions cannot finish on the accelerator alone when clusters do not
// communicate with each other: each cluster reduces its chunk to one partial,
// DMAs the partial to a per-cluster slot in HBM, and the *host* combines the
// M partials after the completion signal. The combine cost shows up as a
// host epilogue term that grows (mildly) with M — a qualitatively different
// overhead profile from DAXPY, exercised by the kernel-sweep experiment.
#pragma once

#include "kernels/kernel.h"
#include "kernels/mem_view.h"

namespace mco::kernels {

inline constexpr std::uint32_t kDotId = 16;
inline constexpr std::uint32_t kVecSumId = 17;

/// Common scaffolding: chunked inputs, one f64 partial per cluster written to
/// out0[cluster], final scalar written to out1[0] by the host epilogue.
class ReductionKernel : public Kernel {
 public:
  std::vector<std::uint64_t> marshal_args(const JobArgs& args) const override;
  JobArgs unmarshal(const PayloadHeader& h, const std::vector<std::uint64_t>& words) const override;
  ClusterPlan plan_cluster(const JobArgs& args, unsigned idx, unsigned parts) const override;
  void execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                       unsigned parts) const override;
  void validate(const JobArgs& args) const override;

  /// Host reads M partials (HBM loads) and adds them: per-partial cost.
  sim::Cycles host_epilogue_cycles(const JobArgs& args, unsigned parts) const override;
  void host_epilogue(mem::MainMemory& mem, const mem::AddressMap& map, const JobArgs& args,
                     unsigned parts) const override;

  /// Host fallback: reduce the whole input directly in main memory and write
  /// the scalar to out1 (partials are not touched).
  void host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                    const JobArgs& args) const override;

 protected:
  /// Number of input arrays (1 for sum, 2 for dot).
  virtual unsigned num_inputs() const = 0;
  /// Reduce one chunk to a scalar; `ins` are byte offsets into `mem`.
  virtual double reduce_chunk(const MemView& mem, const JobArgs& args,
                              const std::vector<std::size_t>& ins, std::uint64_t count) const = 0;
};

/// DOT: r = sum_i x[i] * y[i]. Args: in0 = x, in1 = y, out0 = partials[M],
/// out1 = result scalar.
class DotKernel final : public ReductionKernel {
 public:
  std::uint32_t id() const override { return kDotId; }
  std::string name() const override { return "dot"; }
  util::Rate rate() const override { return {2, 1}; }

 protected:
  unsigned num_inputs() const override { return 2; }
  double reduce_chunk(const MemView& mem, const JobArgs& args,
                      const std::vector<std::size_t>& ins, std::uint64_t count) const override;
};

/// VECSUM: r = sum_i x[i]. Args: in0 = x, out0 = partials[M], out1 = result.
class VecSumKernel final : public ReductionKernel {
 public:
  std::uint32_t id() const override { return kVecSumId; }
  std::string name() const override { return "vecsum"; }
  util::Rate rate() const override { return {9, 5}; }

 protected:
  unsigned num_inputs() const override { return 1; }
  double reduce_chunk(const MemView& mem, const JobArgs& args,
                      const std::vector<std::size_t>& ins, std::uint64_t count) const override;
};

}  // namespace mco::kernels
