#include "kernels/reductions.h"

#include <stdexcept>

namespace mco::kernels {

std::vector<std::uint64_t> ReductionKernel::marshal_args(const JobArgs& args) const {
  // in0 [, in1], partials base, result address.
  std::vector<std::uint64_t> words;
  words.push_back(args.in0);
  if (num_inputs() == 2) words.push_back(args.in1);
  words.push_back(args.out0);
  words.push_back(args.out1);
  return words;
}

JobArgs ReductionKernel::unmarshal(const PayloadHeader& h,
                                   const std::vector<std::uint64_t>& words) const {
  const std::size_t expect = num_inputs() == 2 ? 4u : 3u;
  if (words.size() != expect)
    throw std::invalid_argument(name() + ": payload has wrong argument count");
  JobArgs args;
  args.kernel_id = h.kernel_id;
  args.job_id = h.job_id;
  args.n = h.n;
  std::size_t i = 0;
  args.in0 = words[i++];
  if (num_inputs() == 2) args.in1 = words[i++];
  args.out0 = words[i++];
  args.out1 = words[i++];
  return args;
}

void ReductionKernel::validate(const JobArgs& args) const {
  Kernel::validate(args);
  if (args.in0 == 0) throw std::invalid_argument(name() + ": null input array in0");
  if (num_inputs() == 2 && args.in1 == 0)
    throw std::invalid_argument(name() + ": null input array in1");
  if (args.out0 == 0) throw std::invalid_argument(name() + ": null partials array out0");
  if (args.out1 == 0) throw std::invalid_argument(name() + ": null result address out1");
}

ClusterPlan ReductionKernel::plan_cluster(const JobArgs& args, unsigned idx,
                                          unsigned parts) const {
  const ChunkRange chunk = split_chunk(args.n, idx, parts);
  ClusterPlan plan;
  plan.items = chunk.count;
  if (chunk.count == 0) return plan;

  const std::size_t chunk_bytes = static_cast<std::size_t>(chunk.count) * 8;
  std::size_t tcdm_off = 0;
  plan.dma_in.push_back(DmaSeg{args.in0 + chunk.begin * 8, tcdm_off, chunk_bytes});
  tcdm_off += chunk_bytes;
  if (num_inputs() == 2) {
    plan.dma_in.push_back(DmaSeg{args.in1 + chunk.begin * 8, tcdm_off, chunk_bytes});
    tcdm_off += chunk_bytes;
  }
  // One partial per cluster, written right after the input buffers.
  plan.dma_out.push_back(DmaSeg{args.out0 + idx * 8, tcdm_off, 8});
  return plan;
}

void ReductionKernel::execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                                      unsigned parts) const {
  const ChunkRange chunk = split_chunk(args.n, idx, parts);
  if (chunk.count == 0) return;
  const std::size_t chunk_bytes = static_cast<std::size_t>(chunk.count) * 8;
  std::vector<std::size_t> ins{0};
  std::size_t tcdm_off = chunk_bytes;
  if (num_inputs() == 2) {
    ins.push_back(tcdm_off);
    tcdm_off += chunk_bytes;
  }
  const TcdmView view(tcdm);
  const double partial = reduce_chunk(view, args, ins, chunk.count);
  tcdm.write_f64(tcdm_off, partial);
}

void ReductionKernel::host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                                   const JobArgs& args) const {
  validate(args);
  const HbmView view(mem);
  std::vector<std::size_t> ins{static_cast<std::size_t>(map.hbm_offset(args.in0))};
  if (num_inputs() == 2) ins.push_back(static_cast<std::size_t>(map.hbm_offset(args.in1)));
  const double total = reduce_chunk(view, args, ins, args.n);
  mem.write_f64(map.hbm_offset(args.out1), total);
}

sim::Cycles ReductionKernel::host_epilogue_cycles(const JobArgs& /*args*/, unsigned parts) const {
  // One uncached HBM load + one add per partial, pipelined loads: model as
  // a fixed miss + per-partial beat.
  constexpr sim::Cycles kFirstLoad = 30;
  constexpr sim::Cycles kPerPartial = 4;
  return kFirstLoad + kPerPartial * parts;
}

void ReductionKernel::host_epilogue(mem::MainMemory& mem, const mem::AddressMap& map,
                                    const JobArgs& args, unsigned parts) const {
  double total = 0.0;
  for (unsigned i = 0; i < parts; ++i) {
    // Clusters whose chunk was empty (n < parts) never wrote their slot —
    // skip them rather than trusting stale memory.
    if (split_chunk(args.n, i, parts).count == 0) continue;
    total += mem.read_f64(map.hbm_offset(args.out0 + i * 8));
  }
  mem.write_f64(map.hbm_offset(args.out1), total);
}

double DotKernel::reduce_chunk(const MemView& mem, const JobArgs& /*args*/,
                               const std::vector<std::size_t>& ins,
                               std::uint64_t count) const {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    acc += mem.read_f64(ins[0] + i * 8) * mem.read_f64(ins[1] + i * 8);
  }
  return acc;
}

double VecSumKernel::reduce_chunk(const MemView& mem, const JobArgs& /*args*/,
                                  const std::vector<std::size_t>& ins,
                                  std::uint64_t count) const {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    acc += mem.read_f64(ins[0] + i * 8);
  }
  return acc;
}

}  // namespace mco::kernels
