// Elementwise (BLAS-1-style) kernels.
//
// All operate on contiguous arrays in HBM, split into balanced per-cluster
// chunks. TCDM layout: input chunks packed from offset 0 in declaration
// order; the output chunk aliases its matching input when the operation is
// in-place (DAXPY writes y over y).
//
// Kernel ids are stable ABI: they travel in dispatch payloads.
#pragma once

#include <optional>

#include "isa/microkernels.h"
#include "kernels/kernel.h"
#include "kernels/mem_view.h"

namespace mco::kernels {

inline constexpr std::uint32_t kDaxpyId = 1;
inline constexpr std::uint32_t kSaxpyId = 2;
inline constexpr std::uint32_t kAxpbyId = 3;
inline constexpr std::uint32_t kScaleId = 4;
inline constexpr std::uint32_t kVecAddId = 5;
inline constexpr std::uint32_t kReluId = 6;
inline constexpr std::uint32_t kFillId = 7;
inline constexpr std::uint32_t kMemcpyId = 8;
inline constexpr std::uint32_t kVecMulId = 9;

/// Shared scaffolding for elementwise kernels: balanced chunking, packed
/// TCDM layout, rate-based worker timing. Concrete kernels provide the
/// streamed arrays and the arithmetic.
class ElementwiseKernel : public Kernel {
 public:
  std::vector<std::uint64_t> marshal_args(const JobArgs& args) const override;
  JobArgs unmarshal(const PayloadHeader& h, const std::vector<std::uint64_t>& words) const override;
  ClusterPlan plan_cluster(const JobArgs& args, unsigned idx, unsigned parts) const override;
  void execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                       unsigned parts) const override;
  void validate(const JobArgs& args) const override;

  /// Elementwise kernels process any contiguous item range, so oversized
  /// chunks can be tiled through TCDM.
  bool supports_tiling() const override { return true; }
  ClusterPlan plan_range(const JobArgs& args, std::uint64_t begin,
                         std::uint64_t count) const override;
  void execute_range(mem::Tcdm& tcdm, const JobArgs& args, std::uint64_t begin,
                     std::uint64_t count, std::size_t tcdm_base = 0) const override;

  /// A contiguous sub-range is itself an elementwise job: shift every array
  /// base by begin elements and shrink n to count.
  bool supports_subrange() const override { return true; }
  JobArgs subrange_args(const JobArgs& args, std::uint64_t begin,
                        std::uint64_t count) const override;

  /// Host fallback: the same apply() arithmetic, bound to main memory.
  void host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                    const JobArgs& args) const override;

  /// ISS compute: f64 elementwise kernels with a streaming micro-op run
  /// their inner loop on the worker-core model (see isa::StreamOp). The
  /// IssVariant selector is ignored here — these kernels have exactly one
  /// (streaming) implementation; DAXPY overrides with three.
  bool supports_iss() const override { return iss_stream_op().has_value(); }
  sim::Cycles run_on_iss(mem::Tcdm& tcdm, const JobArgs& args, std::size_t tcdm_base,
                         std::uint64_t tile_items, std::uint64_t worker_begin,
                         std::uint64_t worker_items, IssVariant variant) const override;

 protected:
  /// Which JobArgs fields travel in the payload (marshalling order). The
  /// count directly sets the dispatch cost — more arguments, more stores.
  enum class Field : std::uint8_t { kAlpha, kBeta, kIn0, kIn1, kOut0, kOut1, kAux };
  virtual std::vector<Field> arg_fields() const {
    return {Field::kAlpha, Field::kIn0, Field::kOut0};
  }

  /// Bytes per element (8 for f64 kernels, 4 for SAXPY).
  virtual std::size_t elem_bytes() const { return 8; }

  /// Streaming micro-op for ISS compute, or nullopt when the kernel has no
  /// microcode (f32 kernels; kernels with no 1-to-2-instruction body).
  virtual std::optional<isa::StreamOp> iss_stream_op() const { return std::nullopt; }
  /// HBM base addresses streamed in, in TCDM packing order.
  virtual std::vector<mem::Addr> input_arrays(const JobArgs& args) const = 0;
  /// HBM base address written out.
  virtual mem::Addr output_array(const JobArgs& args) const = 0;
  /// Elementwise math on this cluster's chunk. `ins` are TCDM byte offsets
  /// matching input_arrays order; `out` likewise.
  virtual void apply(MemView& mem, const JobArgs& args,
                     const std::vector<std::size_t>& ins, std::size_t out,
                     std::uint64_t count) const = 0;
};

/// DAXPY: y[i] += alpha * x[i] (f64). The paper's benchmark kernel.
/// Args: alpha, in0 = x, out0 = y (in-place on y). Rate 2.6 cycles/element.
class DaxpyKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kDaxpyId; }
  std::string name() const override { return "daxpy"; }
  util::Rate rate() const override { return {13, 5}; }

  /// DAXPY carries real microcode (see isa/microkernels.h): a cluster in
  /// ISS compute mode runs the selected inner loop on the worker-core model
  /// instead of charging the calibrated 2.6 cycles/element.
  bool supports_iss() const override { return true; }
  sim::Cycles run_on_iss(mem::Tcdm& tcdm, const JobArgs& args, std::size_t tcdm_base,
                         std::uint64_t tile_items, std::uint64_t worker_begin,
                         std::uint64_t worker_items, IssVariant variant) const override;

 protected:
  std::vector<mem::Addr> input_arrays(const JobArgs& a) const override { return {a.in0, a.out0}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

/// SAXPY: y[i] += alpha * x[i] (f32). Two elements per 64-bit beat, so the
/// data term is halved relative to DAXPY at equal n.
class SaxpyKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kSaxpyId; }
  std::string name() const override { return "saxpy"; }
  util::Rate rate() const override { return {13, 10}; }

 protected:
  std::size_t elem_bytes() const override { return 4; }
  std::vector<mem::Addr> input_arrays(const JobArgs& a) const override { return {a.in0, a.out0}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

/// AXPBY: y[i] = alpha * x[i] + beta * y[i] (f64).
class AxpbyKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kAxpbyId; }
  std::string name() const override { return "axpby"; }
  util::Rate rate() const override { return {14, 5}; }

 protected:
  std::optional<isa::StreamOp> iss_stream_op() const override { return isa::StreamOp::kAxpby; }
  std::vector<Field> arg_fields() const override {
    return {Field::kAlpha, Field::kBeta, Field::kIn0, Field::kOut0};
  }
  std::vector<mem::Addr> input_arrays(const JobArgs& a) const override { return {a.in0, a.out0}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

/// SCALE: y[i] = alpha * x[i] (f64, out-of-place).
class ScaleKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kScaleId; }
  std::string name() const override { return "scale"; }
  util::Rate rate() const override { return {9, 5}; }

 protected:
  std::optional<isa::StreamOp> iss_stream_op() const override { return isa::StreamOp::kScale; }
  std::vector<mem::Addr> input_arrays(const JobArgs& a) const override { return {a.in0}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

/// VECADD: z[i] = x[i] + y[i] (f64, three distinct arrays).
class VecAddKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kVecAddId; }
  std::string name() const override { return "vecadd"; }
  util::Rate rate() const override { return {12, 5}; }

 protected:
  std::optional<isa::StreamOp> iss_stream_op() const override { return isa::StreamOp::kAdd; }
  std::vector<Field> arg_fields() const override {
    return {Field::kIn0, Field::kIn1, Field::kOut0};
  }
  std::vector<mem::Addr> input_arrays(const JobArgs& a) const override { return {a.in0, a.in1}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

/// VECMUL: z[i] = x[i] * y[i] (f64, elementwise Hadamard product; the
/// diagonal-matrix apply of the solver example).
class VecMulKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kVecMulId; }
  std::string name() const override { return "vecmul"; }
  util::Rate rate() const override { return {12, 5}; }

 protected:
  std::optional<isa::StreamOp> iss_stream_op() const override { return isa::StreamOp::kMul; }
  std::vector<Field> arg_fields() const override {
    return {Field::kIn0, Field::kIn1, Field::kOut0};
  }
  std::vector<mem::Addr> input_arrays(const JobArgs& a) const override { return {a.in0, a.in1}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

/// RELU: y[i] = max(x[i], 0) (f64).
class ReluKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kReluId; }
  std::string name() const override { return "relu"; }
  util::Rate rate() const override { return {8, 5}; }

 protected:
  std::optional<isa::StreamOp> iss_stream_op() const override { return isa::StreamOp::kRelu; }
  std::vector<mem::Addr> input_arrays(const JobArgs& a) const override { return {a.in0}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

/// FILL: y[i] = alpha. No DMA-in at all — the cheapest possible data phase,
/// useful to isolate dispatch/sync overheads experimentally.
class FillKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kFillId; }
  std::string name() const override { return "fill"; }
  util::Rate rate() const override { return {1, 1}; }

 protected:
  std::optional<isa::StreamOp> iss_stream_op() const override { return isa::StreamOp::kFill; }
  std::vector<Field> arg_fields() const override { return {Field::kAlpha, Field::kOut0}; }
  std::vector<mem::Addr> input_arrays(const JobArgs&) const override { return {}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

/// MEMCPY: y[i] = x[i]. Bandwidth-dominated; compute nearly free.
class MemcpyKernel final : public ElementwiseKernel {
 public:
  std::uint32_t id() const override { return kMemcpyId; }
  std::string name() const override { return "memcpy"; }
  util::Rate rate() const override { return {1, 2}; }

 protected:
  std::optional<isa::StreamOp> iss_stream_op() const override { return isa::StreamOp::kCopy; }
  std::vector<mem::Addr> input_arrays(const JobArgs& a) const override { return {a.in0}; }
  mem::Addr output_array(const JobArgs& a) const override { return a.out0; }
  void apply(MemView& mem, const JobArgs& args, const std::vector<std::size_t>& ins,
             std::size_t out, std::uint64_t count) const override;
};

}  // namespace mco::kernels
