// Job arguments and the register-level dispatch payload protocol.
//
// An offload is described entirely by a handful of words the host writes to
// each cluster's mailbox (no in-memory descriptor fetch): a header of three
// words plus kernel-specific argument words. The payload size is what the
// host pays per cluster in the baseline design (sequential stores) and once
// in total with the multicast extension — which is exactly the overhead the
// paper's Fig. 1 (left) measures.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/address_map.h"
#include "noc/message.h"

namespace mco::kernels {

/// Kernel-independent job description. Individual kernels interpret the
/// generic fields (see each kernel's doc comment for its conventions).
struct JobArgs {
  std::uint32_t kernel_id = 0;
  std::uint64_t job_id = 0;
  std::uint64_t n = 0;       ///< problem size (elements, or rows for GEMV)
  double alpha = 0.0;        ///< scalar operand
  double beta = 0.0;         ///< second scalar operand
  mem::Addr in0 = 0;         ///< first input array (HBM)
  mem::Addr in1 = 0;         ///< second input array (HBM)
  mem::Addr out0 = 0;        ///< output array (HBM)
  mem::Addr out1 = 0;        ///< secondary output (e.g. reduction result)
  std::uint64_t aux = 0;     ///< kernel-specific (e.g. GEMV row length)
};

/// Payload header layout (3 words):
///   w0 = job_id
///   w1 = (kernel_id << 32) | (first_cluster << 16) | num_clusters
///   w2 = n
/// `first_cluster` is the base of the dispatch window: a cluster with id c
/// computes relative rank c - first_cluster among num_clusters participants.
/// The primary offload uses first_cluster = 0; fault recovery re-dispatches a
/// failed cluster's chunk to a single survivor by pointing a one-cluster
/// window at it. Both fields are 16-bit (up to 65535 clusters).
inline constexpr std::size_t kHeaderWords = 3;

/// Build the header + kernel argument words into a dispatch message.
noc::DispatchMessage marshal_payload(const JobArgs& args, unsigned num_clusters,
                                     const std::vector<std::uint64_t>& kernel_words,
                                     unsigned first_cluster = 0);

/// Parsed header.
struct PayloadHeader {
  std::uint64_t job_id = 0;
  std::uint32_t kernel_id = 0;
  unsigned first_cluster = 0;
  unsigned num_clusters = 0;
  std::uint64_t n = 0;
};

/// Parse the header; throws std::invalid_argument on short payloads.
PayloadHeader parse_header(const noc::DispatchMessage& msg);

/// Kernel-specific words (everything after the header).
std::vector<std::uint64_t> payload_args(const noc::DispatchMessage& msg);

/// Balanced work split: element range of chunk `idx` out of `parts` over `n`
/// items. The first n % parts chunks get one extra item, so the largest
/// chunk is ceil(n / parts) — which is what bounds the parallel runtime term.
struct ChunkRange {
  std::uint64_t begin = 0;
  std::uint64_t count = 0;
};
ChunkRange split_chunk(std::uint64_t n, unsigned idx, unsigned parts);

/// Bit-exact double <-> u64 for payload words.
std::uint64_t f64_bits(double v);
double bits_f64(std::uint64_t bits);

}  // namespace mco::kernels
