#include "kernels/gemm.h"

#include <stdexcept>

#include "kernels/mem_view.h"

namespace mco::kernels {

void GemmKernel::validate(const JobArgs& args) const {
  Kernel::validate(args);
  if (args.aux == 0) throw std::invalid_argument("gemm: aux (k) must be > 0");
  if (args.in0 == 0) throw std::invalid_argument("gemm: null matrix in0 (A)");
  if (args.in1 == 0) throw std::invalid_argument("gemm: null matrix in1 (B)");
  if (args.out0 == 0) throw std::invalid_argument("gemm: null output out0 (C)");
}

std::vector<std::uint64_t> GemmKernel::marshal_args(const JobArgs& args) const {
  return {f64_bits(args.alpha), args.in0, args.in1, args.out0, args.aux};
}

JobArgs GemmKernel::unmarshal(const PayloadHeader& h,
                              const std::vector<std::uint64_t>& words) const {
  if (words.size() != 5) throw std::invalid_argument("gemm: payload has wrong argument count");
  JobArgs args;
  args.kernel_id = h.kernel_id;
  args.job_id = h.job_id;
  args.n = h.n;
  args.alpha = bits_f64(words[0]);
  args.in0 = words[1];
  args.in1 = words[2];
  args.out0 = words[3];
  args.aux = words[4];
  return args;
}

ClusterPlan GemmKernel::plan_cluster(const JobArgs& args, unsigned idx, unsigned parts) const {
  const ChunkRange rows = split_chunk(args.n, idx, parts);
  const std::size_t k = static_cast<std::size_t>(args.aux);
  ClusterPlan plan;
  plan.items = rows.count;
  if (rows.count == 0) return plan;

  const std::size_t b_bytes = k * k * 8;
  const std::size_t a_bytes = static_cast<std::size_t>(rows.count) * k * 8;
  const std::size_t c_bytes = a_bytes;  // C block has the same shape as A's
  // Layout: B panel | A block | C block.
  plan.dma_in.push_back(DmaSeg{args.in1, 0, b_bytes});
  plan.dma_in.push_back(DmaSeg{args.in0 + rows.begin * k * 8, b_bytes, a_bytes});
  plan.dma_out.push_back(DmaSeg{args.out0 + rows.begin * k * 8, b_bytes + a_bytes, c_bytes});
  return plan;
}

void GemmKernel::compute_rows(MemView& mem, const JobArgs& args, std::size_t a_off,
                              std::size_t b_off, std::size_t c_off, std::uint64_t rows) {
  const std::size_t k = static_cast<std::size_t>(args.aux);
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < k; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        acc += mem.read_f64(a_off + (r * k + i) * 8) * mem.read_f64(b_off + (i * k + j) * 8);
      }
      mem.write_f64(c_off + (r * k + j) * 8, args.alpha * acc);
    }
  }
}

void GemmKernel::execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                                 unsigned parts) const {
  const ChunkRange rows = split_chunk(args.n, idx, parts);
  if (rows.count == 0) return;
  const std::size_t k = static_cast<std::size_t>(args.aux);
  const std::size_t b_off = 0;
  const std::size_t a_off = k * k * 8;
  const std::size_t c_off = a_off + static_cast<std::size_t>(rows.count) * k * 8;
  TcdmView view(tcdm);
  compute_rows(view, args, a_off, b_off, c_off, rows.count);
}

sim::Cycles GemmKernel::worker_cycles(const JobArgs& args, std::uint64_t rows) const {
  if (rows == 0) return 0;
  constexpr sim::Cycles kRowOverhead = 6;
  return rows * (rate().cycles_for(args.aux * args.aux) + kRowOverhead);
}

sim::Cycles GemmKernel::host_execute_cycles(const JobArgs& args) const {
  return host_rate().cycles_for(args.n * args.aux * args.aux);
}

void GemmKernel::host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                              const JobArgs& args) const {
  validate(args);
  HbmView view(mem);
  compute_rows(view, args, static_cast<std::size_t>(map.hbm_offset(args.in0)),
               static_cast<std::size_t>(map.hbm_offset(args.in1)),
               static_cast<std::size_t>(map.hbm_offset(args.out0)), args.n);
}

}  // namespace mco::kernels
