#include "kernels/kernel.h"

#include <stdexcept>

namespace mco::kernels {

std::size_t ClusterPlan::tcdm_footprint() const {
  std::size_t end = 0;
  for (const auto& s : dma_in) end = std::max(end, s.tcdm_off + s.bytes);
  for (const auto& s : dma_out) end = std::max(end, s.tcdm_off + s.bytes);
  return end;
}

std::size_t ClusterPlan::bytes_in() const {
  std::size_t b = 0;
  for (const auto& s : dma_in) b += s.bytes;
  return b;
}

std::size_t ClusterPlan::bytes_out() const {
  std::size_t b = 0;
  for (const auto& s : dma_out) b += s.bytes;
  return b;
}

void Kernel::validate(const JobArgs& args) const {
  if (args.n == 0) throw std::invalid_argument(name() + ": n must be > 0");
  if (args.kernel_id != id())
    throw std::invalid_argument(name() + ": kernel_id does not match kernel");
}

sim::Cycles Kernel::worker_cycles(const JobArgs& /*args*/, std::uint64_t items) const {
  return rate().cycles_for(items);
}

ClusterPlan Kernel::plan_range(const JobArgs& /*args*/, std::uint64_t /*begin*/,
                               std::uint64_t /*count*/) const {
  throw std::logic_error(name() + ": kernel does not support range tiling");
}

void Kernel::execute_range(mem::Tcdm& /*tcdm*/, const JobArgs& /*args*/, std::uint64_t /*begin*/,
                           std::uint64_t /*count*/, std::size_t /*tcdm_base*/) const {
  throw std::logic_error(name() + ": kernel does not support range tiling");
}

JobArgs Kernel::subrange_args(const JobArgs& /*args*/, std::uint64_t /*begin*/,
                              std::uint64_t /*count*/) const {
  throw std::logic_error(name() + ": kernel does not support sub-range re-dispatch");
}

sim::Cycles Kernel::host_epilogue_cycles(const JobArgs& /*args*/, unsigned /*parts*/) const {
  return 0;
}

void Kernel::host_epilogue(mem::MainMemory& /*mem*/, const mem::AddressMap& /*map*/,
                           const JobArgs& /*args*/, unsigned /*parts*/) const {}

sim::Cycles Kernel::host_execute_cycles(const JobArgs& args) const {
  return host_rate().cycles_for(args.n);
}

void Kernel::host_execute(mem::MainMemory& /*mem*/, const mem::AddressMap& /*map*/,
                          const JobArgs& /*args*/) const {
  throw std::logic_error(name() + ": no host execution path");
}

sim::Cycles Kernel::run_on_iss(mem::Tcdm& /*tcdm*/, const JobArgs& /*args*/,
                               std::size_t /*tcdm_base*/, std::uint64_t /*tile_items*/,
                               std::uint64_t /*worker_begin*/, std::uint64_t /*worker_items*/,
                               IssVariant /*variant*/) const {
  throw std::logic_error(name() + ": no ISS microcode");
}

std::size_t dispatch_words(const Kernel& k, const JobArgs& args) {
  return kHeaderWords + k.marshal_args(args).size();
}

}  // namespace mco::kernels
