#include "kernels/blas1.h"

#include "kernels/mem_view.h"
#include "isa/microkernels.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace mco::kernels {

std::vector<std::uint64_t> ElementwiseKernel::marshal_args(const JobArgs& args) const {
  std::vector<std::uint64_t> out;
  for (const Field f : arg_fields()) {
    switch (f) {
      case Field::kAlpha: out.push_back(f64_bits(args.alpha)); break;
      case Field::kBeta: out.push_back(f64_bits(args.beta)); break;
      case Field::kIn0: out.push_back(args.in0); break;
      case Field::kIn1: out.push_back(args.in1); break;
      case Field::kOut0: out.push_back(args.out0); break;
      case Field::kOut1: out.push_back(args.out1); break;
      case Field::kAux: out.push_back(args.aux); break;
    }
  }
  return out;
}

JobArgs ElementwiseKernel::unmarshal(const PayloadHeader& h,
                                     const std::vector<std::uint64_t>& words) const {
  const std::vector<Field> fields = arg_fields();
  if (words.size() != fields.size())
    throw std::invalid_argument(name() + ": payload has wrong argument count");
  JobArgs args;
  args.kernel_id = h.kernel_id;
  args.job_id = h.job_id;
  args.n = h.n;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    switch (fields[i]) {
      case Field::kAlpha: args.alpha = bits_f64(words[i]); break;
      case Field::kBeta: args.beta = bits_f64(words[i]); break;
      case Field::kIn0: args.in0 = words[i]; break;
      case Field::kIn1: args.in1 = words[i]; break;
      case Field::kOut0: args.out0 = words[i]; break;
      case Field::kOut1: args.out1 = words[i]; break;
      case Field::kAux: args.aux = words[i]; break;
    }
  }
  return args;
}

void ElementwiseKernel::validate(const JobArgs& args) const {
  Kernel::validate(args);
  for (const mem::Addr a : input_arrays(args)) {
    if (a == 0) throw std::invalid_argument(name() + ": null input array");
  }
  if (output_array(args) == 0) throw std::invalid_argument(name() + ": null output array");
}

JobArgs ElementwiseKernel::subrange_args(const JobArgs& args, std::uint64_t begin,
                                         std::uint64_t count) const {
  if (begin + count > args.n)
    throw std::out_of_range(name() + ": sub-range exceeds job size");
  if (count == 0) throw std::invalid_argument(name() + ": empty sub-range");
  JobArgs sub = args;
  const std::uint64_t shift = begin * elem_bytes();
  if (sub.in0 != 0) sub.in0 += shift;
  if (sub.in1 != 0) sub.in1 += shift;
  if (sub.out0 != 0) sub.out0 += shift;
  if (sub.out1 != 0) sub.out1 += shift;
  sub.n = count;
  return sub;
}

ClusterPlan ElementwiseKernel::plan_range(const JobArgs& args, std::uint64_t begin,
                                          std::uint64_t count) const {
  const std::size_t eb = elem_bytes();
  const mem::Addr out_base = output_array(args);

  ClusterPlan plan;
  plan.items = count;
  if (count == 0) return plan;

  const std::size_t range_bytes = static_cast<std::size_t>(count) * eb;
  std::size_t tcdm_off = 0;
  std::size_t out_tcdm_off = std::size_t(-1);
  for (const mem::Addr in_base : input_arrays(args)) {
    DmaSeg seg{in_base + begin * eb, tcdm_off, range_bytes};
    if (in_base == out_base) out_tcdm_off = tcdm_off;
    plan.dma_in.push_back(seg);
    tcdm_off += range_bytes;
  }
  if (out_tcdm_off == std::size_t(-1)) {
    out_tcdm_off = tcdm_off;  // dedicated output buffer
  }
  plan.dma_out.push_back(DmaSeg{out_base + begin * eb, out_tcdm_off, range_bytes});
  return plan;
}

ClusterPlan ElementwiseKernel::plan_cluster(const JobArgs& args, unsigned idx,
                                            unsigned parts) const {
  const ChunkRange chunk = split_chunk(args.n, idx, parts);
  return plan_range(args, chunk.begin, chunk.count);
}

void ElementwiseKernel::execute_range(mem::Tcdm& tcdm, const JobArgs& args,
                                      std::uint64_t /*begin*/, std::uint64_t count,
                                      std::size_t tcdm_base) const {
  if (count == 0) return;
  TcdmView view(tcdm);
  const std::size_t eb = elem_bytes();
  const std::size_t range_bytes = static_cast<std::size_t>(count) * eb;
  const mem::Addr out_base = output_array(args);

  std::vector<std::size_t> in_offs;
  std::size_t tcdm_off = tcdm_base;
  std::size_t out_off = std::size_t(-1);
  for (const mem::Addr in_base : input_arrays(args)) {
    in_offs.push_back(tcdm_off);
    if (in_base == out_base) out_off = tcdm_off;
    tcdm_off += range_bytes;
  }
  if (out_off == std::size_t(-1)) out_off = tcdm_off;
  apply(view, args, in_offs, out_off, count);
}

void ElementwiseKernel::host_execute(mem::MainMemory& mem, const mem::AddressMap& map,
                                     const JobArgs& args) const {
  validate(args);
  HbmView view(mem);
  std::vector<std::size_t> in_offs;
  for (const mem::Addr a : input_arrays(args)) {
    in_offs.push_back(static_cast<std::size_t>(map.hbm_offset(a)));
  }
  const std::size_t out_off = static_cast<std::size_t>(map.hbm_offset(output_array(args)));
  apply(view, args, in_offs, out_off, args.n);
}

void ElementwiseKernel::execute_cluster(mem::Tcdm& tcdm, const JobArgs& args, unsigned idx,
                                        unsigned parts) const {
  const ChunkRange chunk = split_chunk(args.n, idx, parts);
  execute_range(tcdm, args, chunk.begin, chunk.count);
}

sim::Cycles ElementwiseKernel::run_on_iss(mem::Tcdm& tcdm, const JobArgs& args,
                                          std::size_t tcdm_base, std::uint64_t tile_items,
                                          std::uint64_t worker_begin,
                                          std::uint64_t worker_items,
                                          IssVariant /*variant*/) const {
  const auto op = iss_stream_op();
  if (!op) return Kernel::run_on_iss(tcdm, args, tcdm_base, tile_items, worker_begin,
                                     worker_items, IssVariant::kSsrFrep);
  if (worker_items == 0) return 0;
  if (elem_bytes() != 8)
    throw std::logic_error(name() + ": ISS streams are 64-bit only");

  // Recompute the tile's buffer layout exactly as plan_range laid it out.
  const std::size_t range_bytes = static_cast<std::size_t>(tile_items) * 8;
  const mem::Addr out_base = output_array(args);
  std::vector<std::size_t> in_offs;
  std::size_t off = tcdm_base;
  std::size_t out_off = std::size_t(-1);
  for (const mem::Addr in : input_arrays(args)) {
    in_offs.push_back(off);
    if (in == out_base) out_off = off;
    off += range_bytes;
  }
  if (out_off == std::size_t(-1)) out_off = off;

  const std::size_t shift = static_cast<std::size_t>(worker_begin) * 8;
  isa::CoreModel core(tcdm);
  if (!in_offs.empty()) core.set_x(1, static_cast<std::int64_t>(in_offs[0] + shift));
  if (in_offs.size() >= 2) core.set_x(2, static_cast<std::int64_t>(in_offs[1] + shift));
  core.set_x(6, static_cast<std::int64_t>(out_off + shift));
  core.set_x(3, static_cast<std::int64_t>(worker_items));
  core.set_f(10, args.alpha);
  core.set_f(13, args.beta);
  core.set_f(11, 0.0);
  const isa::RunResult r = core.run(isa::build_elementwise_stream(*op));
  if (!r.halted) throw std::runtime_error(name() + ": ISS run exceeded the cycle budget");
  return r.cycles;
}

sim::Cycles DaxpyKernel::run_on_iss(mem::Tcdm& tcdm, const JobArgs& args,
                                    std::size_t tcdm_base, std::uint64_t tile_items,
                                    std::uint64_t worker_begin, std::uint64_t worker_items,
                                    IssVariant variant) const {
  if (worker_items == 0) return 0;
  // Tile layout (plan_range): x chunk at base, y chunk right after it.
  const std::size_t x_off = tcdm_base + static_cast<std::size_t>(worker_begin) * 8;
  const std::size_t y_off =
      tcdm_base + static_cast<std::size_t>(tile_items + worker_begin) * 8;

  const auto run = [&](isa::DaxpyVariant v, std::size_t xo, std::size_t yo,
                       std::uint64_t count) -> sim::Cycles {
    isa::CoreModel core(tcdm);
    core.set_x(1, static_cast<std::int64_t>(xo));
    core.set_x(2, static_cast<std::int64_t>(yo));
    core.set_x(3, static_cast<std::int64_t>(count));
    core.set_f(10, args.alpha);
    const isa::RunResult r = core.run(isa::build_daxpy(v));
    if (!r.halted) throw std::runtime_error("daxpy: ISS run exceeded the cycle budget");
    return r.cycles;
  };

  switch (variant) {
    case IssVariant::kScalar:
      return run(isa::DaxpyVariant::kScalar, x_off, y_off, worker_items);
    case IssVariant::kSsrFrep:
      return run(isa::DaxpyVariant::kSsrFrep, x_off, y_off, worker_items);
    case IssVariant::kUnrolled4: {
      // Main body 4x-unrolled, scalar tail for the remainder.
      const std::uint64_t main = worker_items & ~3ull;
      sim::Cycles cycles = 0;
      if (main > 0) cycles += run(isa::DaxpyVariant::kUnrolled4, x_off, y_off, main);
      if (worker_items > main) {
        cycles += run(isa::DaxpyVariant::kScalar, x_off + main * 8, y_off + main * 8,
                      worker_items - main);
      }
      return cycles;
    }
  }
  throw std::invalid_argument("daxpy: unknown ISS variant");
}

// ---- arithmetic ------------------------------------------------------------

void DaxpyKernel::apply(MemView& mem, const JobArgs& args,
                        const std::vector<std::size_t>& ins, std::size_t out,
                        std::uint64_t count) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    const double x = mem.read_f64(ins[0] + i * 8);
    const double y = mem.read_f64(ins[1] + i * 8);
    mem.write_f64(out + i * 8, args.alpha * x + y);
  }
}

void SaxpyKernel::apply(MemView& mem, const JobArgs& args,
                        const std::vector<std::size_t>& ins, std::size_t out,
                        std::uint64_t count) const {
  const float alpha = static_cast<float>(args.alpha);
  for (std::uint64_t i = 0; i < count; ++i) {
    const float x = mem.read_f32(ins[0] + i * 4);
    const float y = mem.read_f32(ins[1] + i * 4);
    mem.write_f32(out + i * 4, alpha * x + y);
  }
}

void AxpbyKernel::apply(MemView& mem, const JobArgs& args,
                        const std::vector<std::size_t>& ins, std::size_t out,
                        std::uint64_t count) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    const double x = mem.read_f64(ins[0] + i * 8);
    const double y = mem.read_f64(ins[1] + i * 8);
    mem.write_f64(out + i * 8, args.alpha * x + args.beta * y);
  }
}

void ScaleKernel::apply(MemView& mem, const JobArgs& args,
                        const std::vector<std::size_t>& ins, std::size_t out,
                        std::uint64_t count) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    mem.write_f64(out + i * 8, args.alpha * mem.read_f64(ins[0] + i * 8));
  }
}

void VecAddKernel::apply(MemView& mem, const JobArgs& /*args*/,
                         const std::vector<std::size_t>& ins, std::size_t out,
                         std::uint64_t count) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    mem.write_f64(out + i * 8,
                   mem.read_f64(ins[0] + i * 8) + mem.read_f64(ins[1] + i * 8));
  }
}

void VecMulKernel::apply(MemView& mem, const JobArgs& /*args*/,
                         const std::vector<std::size_t>& ins, std::size_t out,
                         std::uint64_t count) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    mem.write_f64(out + i * 8,
                  mem.read_f64(ins[0] + i * 8) * mem.read_f64(ins[1] + i * 8));
  }
}

void ReluKernel::apply(MemView& mem, const JobArgs& /*args*/,
                       const std::vector<std::size_t>& ins, std::size_t out,
                       std::uint64_t count) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    mem.write_f64(out + i * 8, std::max(mem.read_f64(ins[0] + i * 8), 0.0));
  }
}

void FillKernel::apply(MemView& mem, const JobArgs& args,
                       const std::vector<std::size_t>& /*ins*/, std::size_t out,
                       std::uint64_t count) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    mem.write_f64(out + i * 8, args.alpha);
  }
}

void MemcpyKernel::apply(MemView& mem, const JobArgs& /*args*/,
                         const std::vector<std::size_t>& ins, std::size_t out,
                         std::uint64_t count) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    mem.write_f64(out + i * 8, mem.read_f64(ins[0] + i * 8));
  }
}

}  // namespace mco::kernels
