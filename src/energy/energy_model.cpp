#include "energy/energy_model.h"

#include <limits>
#include <stdexcept>

#include "soc/workloads.h"
#include "util/strings.h"

namespace mco::energy {

EnergyCounters EnergyCounters::operator-(const EnergyCounters& rhs) const {
  EnergyCounters d;
  d.host_busy_cycles = host_busy_cycles - rhs.host_busy_cycles;
  d.worker_busy_cycles = worker_busy_cycles - rhs.worker_busy_cycles;
  d.hbm_beats = hbm_beats - rhs.hbm_beats;
  d.dispatch_words = dispatch_words - rhs.dispatch_words;
  d.amos = amos - rhs.amos;
  d.polls = polls - rhs.polls;
  d.credits = credits - rhs.credits;
  d.irqs = irqs - rhs.irqs;
  return d;
}

EnergyCounters snapshot(soc::Soc& soc) {
  EnergyCounters c;
  c.host_busy_cycles = soc.host().busy_cycles();
  for (unsigned i = 0; i < soc.num_clusters(); ++i) {
    auto& cl = soc.cluster(i);
    for (unsigned w = 0; w < cl.config().num_workers; ++w) {
      c.worker_busy_cycles += cl.worker(w).busy_cycles();
    }
  }
  c.hbm_beats = soc.hbm().beats_served();
  // Dispatch traffic: every unicast carries the payload once, a multicast
  // carries it once per target. We approximate the payload length with the
  // words actually sent, which the interconnect does not retain — so price
  // messages instead (words ≈ 6 for the built-in kernels).
  c.dispatch_words = 6 * (soc.interconnect().unicasts_sent() +
                          soc.interconnect().multicasts_sent());
  c.amos = soc.shared_counter().amos_serviced();
  c.polls = soc.host().polls();
  c.credits = soc.interconnect().credits_routed();
  c.irqs = soc.host().irqs_taken();
  return c;
}

EnergyReport estimate(const EnergyConfig& cfg, const EnergyCounters& delta,
                      sim::Cycles duration, unsigned num_clusters,
                      unsigned workers_per_cluster) {
  if (num_clusters == 0 || workers_per_cluster == 0)
    throw std::invalid_argument("energy::estimate: empty accelerator");
  EnergyReport r;
  const double dur = static_cast<double>(duration);

  r.host_active_pj = cfg.host_active_cycle_pj * static_cast<double>(delta.host_busy_cycles);
  const double host_idle_cycles =
      dur > static_cast<double>(delta.host_busy_cycles)
          ? dur - static_cast<double>(delta.host_busy_cycles)
          : 0.0;
  r.host_idle_pj = cfg.host_idle_cycle_pj * host_idle_cycles;

  const double worker_cycles_total =
      dur * static_cast<double>(num_clusters) * static_cast<double>(workers_per_cluster);
  const double active = static_cast<double>(delta.worker_busy_cycles);
  r.workers_active_pj = cfg.worker_active_cycle_pj * active;
  r.workers_idle_pj =
      cfg.worker_idle_cycle_pj * (worker_cycles_total > active ? worker_cycles_total - active : 0.0);

  r.hbm_pj = cfg.hbm_beat_pj * static_cast<double>(delta.hbm_beats);
  r.dispatch_pj = cfg.dispatch_word_pj * static_cast<double>(delta.dispatch_words);
  r.completion_pj = cfg.amo_pj * static_cast<double>(delta.amos) +
                    cfg.poll_iteration_pj * static_cast<double>(delta.polls) +
                    cfg.credit_write_pj * static_cast<double>(delta.credits) +
                    cfg.irq_pj * static_cast<double>(delta.irqs);
  r.leakage_pj = cfg.cluster_leakage_cycle_pj * dur * static_cast<double>(num_clusters);
  return r;
}

std::string EnergyReport::to_string() const {
  return util::format(
      "host %.0f+%.0f pJ, workers %.0f+%.0f pJ, hbm %.0f pJ, dispatch %.0f pJ, "
      "completion %.0f pJ, leakage %.0f pJ -> total %.0f pJ",
      host_active_pj, host_idle_pj, workers_active_pj, workers_idle_pj, hbm_pj, dispatch_pj,
      completion_pj, leakage_pj, total_pj());
}

OffloadEnergy measure_offload_energy(const soc::SocConfig& soc_cfg, const EnergyConfig& cfg,
                                     const std::string& kernel, std::uint64_t n, unsigned m,
                                     std::uint64_t seed) {
  soc::Soc soc(soc_cfg);
  const EnergyCounters before = snapshot(soc);
  const offload::OffloadResult r = soc::run_verified(soc, kernel, n, m, seed, 1e-5);
  const EnergyCounters after = snapshot(soc);
  OffloadEnergy out;
  out.cycles = r.total();
  // Only the clusters participating in the job are powered for it; idle
  // clusters are assumed power-gated by the platform.
  out.report = estimate(cfg, after - before, r.total(), m,
                        soc.config().cluster.num_workers);
  return out;
}

unsigned energy_optimal_m(const soc::SocConfig& soc_cfg, const EnergyConfig& cfg,
                          const std::string& kernel, std::uint64_t n, unsigned m_max) {
  if (m_max == 0) throw std::invalid_argument("energy_optimal_m: m_max == 0");
  unsigned best = 1;
  double best_pj = std::numeric_limits<double>::infinity();
  for (unsigned m = 1; m <= m_max; ++m) {
    const double pj = measure_offload_energy(soc_cfg, cfg, kernel, n, m).report.total_pj();
    if (pj < best_pj) {
      best_pj = pj;
      best = m;
    }
  }
  return best;
}

}  // namespace mco::energy
