// Event-based energy model for offload execution.
//
// The paper's introduction notes that offload overheads "add up to the
// runtime and energy consumption of the job execution on the accelerator"
// but evaluates runtime only; this module extends the reproduction with an
// energy account. Every architectural event the simulator already counts
// (host cycles, worker cycles, HBM beats, dispatch stores, atomics, polls,
// interrupts) is priced with a representative 22nm-class energy, and static
// leakage is charged for the whole offload duration — so the trade-off the
// model exposes is real: more clusters shorten the run but burn more idle
// and leakage power, making the energy-optimal cluster count smaller than
// the runtime-optimal one.
#pragma once

#include <cstdint>
#include <string>

#include "soc/soc.h"

namespace mco::energy {

/// Per-event energies in picojoules. Defaults are representative of a 22nm
/// FDX-class implementation (CVA6 host, Snitch-like workers, HBM2 memory);
/// absolute values are indicative, relative magnitudes drive the analysis.
struct EnergyConfig {
  double host_active_cycle_pj = 45.0;  ///< CVA6 executing
  double host_idle_cycle_pj = 4.0;     ///< CVA6 in WFI / stalled
  double worker_active_cycle_pj = 9.0; ///< small FP core computing
  double worker_idle_cycle_pj = 0.8;   ///< clock-gated worker
  double hbm_beat_pj = 250.0;          ///< one 64-bit beat through HBM
  double dispatch_word_pj = 8.0;       ///< one mailbox store traversing the NoC
  double amo_pj = 60.0;                ///< uncached atomic round trip
  double poll_iteration_pj = 140.0;    ///< uncached host load + loop
  double credit_write_pj = 12.0;       ///< credit store to the sync unit
  double irq_pj = 40.0;                ///< interrupt delivery + entry
  double cluster_leakage_cycle_pj = 1.5;  ///< per powered cluster, per cycle
};

/// Raw event counts extracted from a Soc's components.
struct EnergyCounters {
  std::uint64_t host_busy_cycles = 0;
  std::uint64_t worker_busy_cycles = 0;
  std::uint64_t hbm_beats = 0;
  std::uint64_t dispatch_words = 0;
  std::uint64_t amos = 0;
  std::uint64_t polls = 0;
  std::uint64_t credits = 0;
  std::uint64_t irqs = 0;

  EnergyCounters operator-(const EnergyCounters& rhs) const;
};

/// Read the current cumulative counters from a SoC.
EnergyCounters snapshot(soc::Soc& soc);

/// Energy account of one offload, in picojoules.
struct EnergyReport {
  double host_active_pj = 0;
  double host_idle_pj = 0;
  double workers_active_pj = 0;
  double workers_idle_pj = 0;
  double hbm_pj = 0;
  double dispatch_pj = 0;
  double completion_pj = 0;  ///< credits/AMOs + polls + IRQ
  double leakage_pj = 0;

  double total_pj() const {
    return host_active_pj + host_idle_pj + workers_active_pj + workers_idle_pj + hbm_pj +
           dispatch_pj + completion_pj + leakage_pj;
  }
  /// Energy-delay product in pJ·cycles.
  double edp(sim::Cycles duration) const { return total_pj() * static_cast<double>(duration); }

  std::string to_string() const;
};

/// Price a counter delta over `duration` cycles with `num_clusters` powered
/// clusters of `workers_per_cluster` workers each.
EnergyReport estimate(const EnergyConfig& cfg, const EnergyCounters& delta,
                      sim::Cycles duration, unsigned num_clusters,
                      unsigned workers_per_cluster);

/// Convenience: run one verified offload on a fresh SoC and return its
/// energy report together with the runtime.
struct OffloadEnergy {
  sim::Cycles cycles = 0;
  EnergyReport report;
};
OffloadEnergy measure_offload_energy(const soc::SocConfig& soc_cfg, const EnergyConfig& cfg,
                                     const std::string& kernel, std::uint64_t n, unsigned m,
                                     std::uint64_t seed = 42);

/// Energy-optimal cluster count for a kernel/size, scanning M in [1, m_max].
unsigned energy_optimal_m(const soc::SocConfig& soc_cfg, const EnergyConfig& cfg,
                          const std::string& kernel, std::uint64_t n, unsigned m_max);

}  // namespace mco::energy
