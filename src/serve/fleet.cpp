#include "serve/fleet.h"

#include <algorithm>
#include <stdexcept>

#include "model/decision.h"
#include "util/strings.h"

namespace mco::serve {
namespace {

std::string cluster_list(const std::vector<unsigned>& clusters) {
  std::string out;
  for (const unsigned c : clusters) {
    if (!out.empty()) out += ',';
    out += std::to_string(c);
  }
  return out;
}

std::string job_track(std::uint64_t id) {
  return util::format("serve.job%llu", static_cast<unsigned long long>(id));
}

}  // namespace

void register_fleet_metrics(sim::StatsRegistry& stats) {
  for (const char* name :
       {"fleet.jobs_submitted", "fleet.jobs_dispatched", "fleet.jobs_queued", "fleet.jobs_shed",
        "fleet.jobs_failed", "fleet.jobs_degraded", "fleet.slo_met", "fleet.slo_missed",
        "fleet.probes", "fleet.quarantines", "fleet.readmissions", "fleet.steals",
        "fleet.batches", "fleet.batched_jobs", "fleet.drain.entered", "fleet.drain.exited",
        "fleet.drain.jobs_shed", "fleet.restarts", "fleet.restart.aborted_jobs",
        "fleet.shard_fails", "fleet.shard_partitions", "fleet.shard_heals",
        "fleet.failover_redispatches", "fleet.failover_requeues", "fleet.failover_lost",
        "fleet.failover_stale_completions", "fleet.integrity.detected",
        "fleet.integrity.escapes", "fleet.integrity.retries", "fleet.integrity.failed",
        "fleet.integrity.audits", "fleet.integrity.audit_mismatches", "recovery.arcs"}) {
    stats.counter(name);
  }
  stats.histogram("fleet.queue_wait_cycles", 256.0, 64);
  stats.histogram("fleet.queue_depth", 1.0, 64);
  stats.histogram("fleet.batch_size", 1.0, 16);
  stats.histogram("fleet.slack_cycles", 256.0, 64);
  stats.histogram("fleet.tardiness_cycles", 256.0, 64);
  // Sampled by the fleet-chaos harness (serve/fleet_chaos.h): one
  // time-to-recover measurement per fail→heal arc of an episode.
  stats.histogram("recovery.time_to_recover_cycles", 4096.0, 64);
}

FleetRouter::FleetRouter(const FleetConfig& cfg, std::vector<Executor*> executors) : cfg_(cfg) {
  if (cfg_.num_shards == 0) throw std::invalid_argument("FleetRouter: zero shards");
  if (cfg_.clusters_per_shard == 0)
    throw std::invalid_argument("FleetRouter: zero clusters per shard");
  if (cfg_.max_queue == 0) throw std::invalid_argument("FleetRouter: zero max_queue");
  if (cfg_.max_batch == 0) throw std::invalid_argument("FleetRouter: zero max_batch");
  if (executors.size() != cfg_.num_shards)
    throw std::invalid_argument("FleetRouter: one executor per shard required");
  if (cfg_.max_clusters_per_job == 0 || cfg_.max_clusters_per_job > cfg_.clusters_per_shard)
    cfg_.max_clusters_per_job = cfg_.clusters_per_shard;
  shards_.reserve(cfg_.num_shards);
  for (unsigned s = 0; s < cfg_.num_shards; ++s) {
    if (executors[s] == nullptr) throw std::invalid_argument("FleetRouter: null executor");
    shards_.emplace_back(cfg_.clusters_per_shard, cfg_.health, executors[s]);
  }
}

void FleetRouter::bind_stats(sim::StatsRegistry* stats) {
  stats_ = stats;
  if (stats_) register_fleet_metrics(*stats_);
}

const HealthTracker& FleetRouter::health(unsigned shard) const {
  return shards_.at(shard).health;
}

const PartitionAllocator& FleetRouter::allocator(unsigned shard) const {
  return shards_.at(shard).alloc;
}

void FleetRouter::set_health_config(const HealthConfig& cfg) {
  cfg_.health = cfg;
  for (Shard& s : shards_) s.health.set_config(cfg);
}

bool FleetRouter::draining(unsigned shard) const { return shards_.at(shard).draining; }

bool FleetRouter::dead(unsigned shard) const { return shards_.at(shard).dead; }

bool FleetRouter::partitioned(unsigned shard) const { return shards_.at(shard).partitioned; }

void FleetRouter::push_event(sim::Cycle time, EventKind kind, std::size_t index, unsigned shard,
                             std::size_t sub) {
  events_.push(Event{time, next_seq_++, kind, index, shard, sub});
}

unsigned FleetRouter::shard_capacity_cap(const Shard& s) const {
  unsigned avail = 0;
  for (unsigned c = 0; c < cfg_.clusters_per_shard; ++c) {
    if (s.health.available(c) && !s.cluster_drained[c]) ++avail;
  }
  return std::min(cfg_.max_clusters_per_job, avail);
}

unsigned FleetRouter::fleet_capacity_cap() const {
  unsigned cap = 0;
  for (const Shard& s : shards_) {
    if (!shard_unavailable(s)) cap = std::max(cap, shard_capacity_cap(s));
  }
  return cap;
}

bool FleetRouter::all_unavailable() const {
  for (const Shard& s : shards_) {
    if (!shard_unavailable(s)) return false;
  }
  return true;
}

bool FleetRouter::fleet_idle() const {
  if (pending_arrivals_ != 0) return false;
  for (const Shard& s : shards_) {
    if (!s.queue.empty() || s.active_jobs != 0) return false;
  }
  return true;
}

void FleetRouter::sample_queue_depth(const Shard& s) {
  if (stats_) stats_->histogram("fleet.queue_depth").sample(static_cast<double>(s.queue.size()));
}

void FleetRouter::shed(std::size_t slot, sim::Cycle now, ShedReason reason) {
  const ServeJob& job = (*jobs_)[slot];
  JobOutcome& out = outcomes_[slot];
  out.job_id = job.id;
  out.verdict = JobVerdict::kShed;
  out.reason = to_string(reason);
  out.arrival = job.arrival;
  out.end = now;
  settled_[slot] = true;
  if (stats_) {
    stats_->counter("fleet.jobs_shed").inc();
    if (reason == ShedReason::kDrained || reason == ShedReason::kOperatorShed)
      stats_->counter("fleet.drain.jobs_shed").inc();
  }
  trace_.record(now, "serve", "serve_shed",
                util::format("job=%llu reason=%s", static_cast<unsigned long long>(job.id),
                             to_string(reason)));
}

std::vector<std::size_t> FleetRouter::service_order(const std::vector<std::size_t>& queue) const {
  std::vector<std::size_t> order = queue;
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    const ServeJob& ja = (*jobs_)[a];
    const ServeJob& jb = (*jobs_)[b];
    if (ja.priority != jb.priority) return ja.priority > jb.priority;
    if (ja.arrival != jb.arrival) return ja.arrival < jb.arrival;
    return ja.id < jb.id;
  });
  return order;
}

bool FleetRouter::try_dispatch(unsigned si, std::size_t slot, sim::Cycle now) {
  Shard& s = shards_[si];
  const ServeJob& job = (*jobs_)[slot];
  const sim::Cycle deadline = job.arrival + job.t_max;
  if (now >= deadline) {
    shed(slot, now, ShedReason::kDeadlineExpired);
    return true;
  }
  const unsigned cap = shard_capacity_cap(s);
  if (cap == 0) return false;  // fully quarantined shard: wait for re-admission
  const auto m = model::min_clusters_for_deadline(cfg_.model, job.n,
                                                  static_cast<double>(deadline - now), cap);
  // This shard cannot meet the deadline at its current healthy capacity.
  // Unlike the single service, the job is NOT shed: fleet-wide admission
  // already vetted it, so it keeps waiting for this shard to heal — or for a
  // healthier shard to steal it. (It sheds as deadline_expired if neither
  // happens in time.)
  if (!m) return false;
  // Disjointness constraint: a convicted job must never be re-placed on a
  // (shard, cluster) pair that served one of its convicted attempts.
  const std::vector<std::pair<unsigned, unsigned>>& avoid = integrity_avoid_[slot];
  auto clusters = s.alloc.allocate(*m, [&s, &avoid, si](unsigned c) {
    if (!s.health.available(c) || s.cluster_drained[c]) return false;
    for (const auto& [sh, cl] : avoid) {
      if (sh == si && cl == c) return false;
    }
    return true;
  });
  if (!clusters) return false;  // backpressure: wait for a partition to free up

  // Same-kernel coalescing: pull up to max_batch-1 not-yet-expired queue
  // mates (in service order) into this dispatch. Mates ride the head job's
  // partition; they leave the backlog here.
  std::vector<std::size_t> batch{slot};
  if (cfg_.max_batch > 1 && !s.queue.empty()) {
    for (const std::size_t cand : service_order(s.queue)) {
      if (batch.size() >= cfg_.max_batch) break;
      if (cand == slot) continue;
      const ServeJob& cj = (*jobs_)[cand];
      if (cj.kernel != job.kernel) continue;
      if (now >= cj.arrival + cj.t_max) continue;  // expired mates shed in their own turn
      // Convicted jobs re-run alone: a mate rides the head job's partition,
      // which was allocated without consulting the mate's avoid-set.
      if (!integrity_avoid_[cand].empty()) continue;
      batch.push_back(cand);
    }
    for (std::size_t i = 1; i < batch.size(); ++i) {
      s.queue.erase(std::find(s.queue.begin(), s.queue.end(), batch[i]));
    }
    if (batch.size() > 1) sample_queue_depth(s);
  }
  dispatch_batch(si, batch, *m, *clusters, now);
  return true;
}

void FleetRouter::dispatch_batch(unsigned si, const std::vector<std::size_t>& slots, unsigned m,
                                 const std::vector<unsigned>& clusters, sim::Cycle now) {
  Shard& s = shards_[si];
  BatchExecutionOutcome batch_out;
  if (slots.size() == 1) {
    // A batch of one takes the single-offload path (retry/recovery capable)
    // — identical to what the unsharded service would run.
    batch_out.jobs.push_back(s.exec->execute((*jobs_)[slots[0]], m, /*probe=*/false));
  } else {
    std::vector<ServeJob> batch_jobs;
    batch_jobs.reserve(slots.size());
    for (const std::size_t slot : slots) batch_jobs.push_back((*jobs_)[slot]);
    batch_out = s.exec->execute_batch(batch_jobs, m);
    if (batch_out.jobs.size() != slots.size())
      throw std::logic_error("FleetRouter: execute_batch returned a mismatched job count");
    for (std::size_t k = 1; k < batch_out.jobs.size(); ++k) {
      if (batch_out.jobs[k].duration < batch_out.jobs[k - 1].duration)
        throw std::logic_error("FleetRouter: batch completion offsets must be non-decreasing");
    }
  }

  const std::size_t handle = inflight_.size();
  std::vector<unsigned> epochs;
  epochs.reserve(slots.size());
  for (const std::size_t slot : slots) epochs.push_back(failovers_[slot]);
  inflight_.push_back(InFlightBatch{si, slots, clusters, std::move(batch_out), std::move(epochs)});
  s.active_jobs += slots.size();

  for (std::size_t k = 0; k < slots.size(); ++k) {
    const std::size_t slot = slots[k];
    const ServeJob& job = (*jobs_)[slot];
    JobOutcome& out = outcomes_[slot];
    out.job_id = job.id;
    out.m = m;
    out.clusters = clusters;
    out.arrival = job.arrival;
    out.start = now;
    out.queue_wait = now - job.arrival;
    if (stats_) {
      stats_->counter("fleet.jobs_dispatched").inc();
      stats_->histogram("fleet.queue_wait_cycles").sample(static_cast<double>(out.queue_wait));
    }
    trace_.begin_span(now, job_track(job.id), "serve_job",
                      util::format("n=%llu m=%u shard=%u",
                                   static_cast<unsigned long long>(job.n), m, si));
    push_event(now + inflight_[handle].outcome.jobs[k].duration, EventKind::kCompletion, handle,
               si, k);
  }
  if (stats_) {
    stats_->histogram("fleet.batch_size").sample(static_cast<double>(slots.size()));
    if (slots.size() > 1) {
      stats_->counter("fleet.batches").inc();
      stats_->counter("fleet.batched_jobs").inc(slots.size());
    }
  }
  if (slots.size() > 1) {
    ++batches_;
    batched_jobs_ += slots.size();
  }
  trace_.record(now, "serve", "serve_dispatch",
                util::format("job=%llu shard=%u m=%u batch=%zu clusters=%s",
                             static_cast<unsigned long long>((*jobs_)[slots[0]].id), si, m,
                             slots.size(), cluster_list(clusters).c_str()));
}

void FleetRouter::drain_shard_queue(unsigned si, sim::Cycle now) {
  Shard& s = shards_[si];
  if (shard_down(s)) return;  // unreachable shard: nothing to place, nothing to steal
  if (!s.draining && !s.queue.empty()) {
    // One pass in service order; jobs that still cannot be placed keep
    // waiting. Batch mates consumed mid-pass are skipped by the membership
    // check.
    for (const std::size_t slot : service_order(s.queue)) {
      const auto it = std::find(s.queue.begin(), s.queue.end(), slot);
      if (it == s.queue.end()) continue;  // coalesced into an earlier batch
      if (try_dispatch(si, slot, now)) {
        s.queue.erase(std::find(s.queue.begin(), s.queue.end(), slot));
        sample_queue_depth(s);
      }
    }
  }
  if (cfg_.stealing && !s.draining && s.queue.empty()) steal_work(si, now);
}

std::optional<std::pair<unsigned, std::size_t>> FleetRouter::pick_steal_victim(
    unsigned si) const {
  if (cfg_.steal_policy == StealPolicy::kBacklogHead) {
    // Head of the longest queue, ties to the lowest shard id.
    std::size_t best = shards_.size();
    for (std::size_t v = 0; v < shards_.size(); ++v) {
      if (v == si || shard_down(shards_[v]) || shards_[v].queue.empty()) continue;
      if (best == shards_.size() || shards_[v].queue.size() > shards_[best].queue.size()) best = v;
    }
    if (best == shards_.size()) return std::nullopt;
    return std::make_pair(static_cast<unsigned>(best), service_order(shards_[best].queue)[0]);
  }
  // kTightestSlack: the queued job closest to its deadline anywhere in the
  // fleet. All candidates share `now`, so the earliest deadline IS the
  // tightest slack; ties to lower arrival, then lower job id, then lower
  // shard id — a total order, so the pick is a pure function of the trace.
  std::optional<std::pair<unsigned, std::size_t>> best;
  sim::Cycle best_deadline = 0;
  for (std::size_t v = 0; v < shards_.size(); ++v) {
    if (v == si || shard_down(shards_[v])) continue;
    for (const std::size_t slot : shards_[v].queue) {
      const ServeJob& job = (*jobs_)[slot];
      const sim::Cycle deadline = job.arrival + job.t_max;
      if (!best || deadline < best_deadline ||
          (deadline == best_deadline &&
           (job.arrival < (*jobs_)[best->second].arrival ||
            (job.arrival == (*jobs_)[best->second].arrival &&
             job.id < (*jobs_)[best->second].id)))) {
        best = std::make_pair(static_cast<unsigned>(v), slot);
        best_deadline = deadline;
      }
    }
  }
  return best;
}

void FleetRouter::steal_work(unsigned si, sim::Cycle now) {
  // Idle-shard pull: while this shard can place work and someone else has a
  // backlog, take the victim job chosen by the configured policy. Pure
  // function of the trace: victim choice, job choice and the placement check
  // are all deterministic.
  for (;;) {
    const auto victim = pick_steal_victim(si);
    if (!victim) return;
    const auto [v, slot] = *victim;
    const bool placed = try_dispatch(si, slot, now);
    if (!placed) return;  // thief out of capacity: stop pulling
    Shard& vs = shards_[v];
    vs.queue.erase(std::find(vs.queue.begin(), vs.queue.end(), slot));
    sample_queue_depth(vs);
    // A shed (expired deadline) also empties the victim's slot but is not a
    // successful steal; only count jobs that actually moved. A dispatched
    // job is not yet settled (its verdict lands at completion); a shed one is.
    if (!settled_[slot]) {
      ++steals_;
      if (stats_) stats_->counter("fleet.steals").inc();
      trace_.record(now, "serve", "serve_steal",
                    util::format("job=%llu from=%u to=%u",
                                 static_cast<unsigned long long>((*jobs_)[slot].id), v, si));
    }
  }
}

bool FleetRouter::audit_selected(std::uint64_t job_id) const {
  // splitmix64 of (seed, id): a stable per-job lottery, independent of
  // arrival order, placement and host parallelism.
  std::uint64_t x = cfg_.integrity.audit_seed ^ (job_id + 0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < cfg_.integrity.audit_fraction;
}

void FleetRouter::complete_job(InFlightBatch& f, std::size_t pos, sim::Cycle now) {
  Shard& s = shards_[f.shard];
  const std::size_t slot = f.slots[pos];
  const ServeJob& job = (*jobs_)[slot];
  const ExecutionOutcome& exec = f.outcome.jobs[pos];
  trace_.end_span(now, job_track(job.id));

  // Result attestation verdicts first: a digest mismatch convicts exactly
  // the corrupted members; an audit mismatch cannot localize the fault, so
  // it convicts the whole partition. Audits only run on clean batch-of-one
  // completions (a batch shares one offload train; re-running one member is
  // not a comparable execution).
  std::vector<unsigned> convicted_members = exec.corrupted_members;
  bool via_audit = false;
  if (convicted_members.empty() && exec.ok && f.slots.size() == 1 &&
      cfg_.integrity.audit_fraction > 0.0 && audit_selected(job.id)) {
    ++audits_;
    if (stats_) stats_->counter("fleet.integrity.audits").inc();
    // Modeled dual execution: a real re-run regenerates its workload (the
    // executor's RNG advances per job), so the comparator's verdict is the
    // simulation's silent-corruption oracle instead of a byte diff.
    const bool mismatch = exec.silent_corruption;
    trace_.record(now, "serve", "serve_audit",
                  util::format("job=%llu shard=%u mismatch=%d",
                               static_cast<unsigned long long>(job.id), f.shard,
                               mismatch ? 1 : 0));
    if (mismatch) {
      ++audit_mismatches_;
      if (stats_) stats_->counter("fleet.integrity.audit_mismatches").inc();
      via_audit = true;
      for (unsigned i = 0; i < f.clusters.size(); ++i) convicted_members.push_back(i);
    }
  }

  // Health attribution: partition-relative failed members back to shard-local
  // cluster IDs, then credit/debit every participant. Convicted members are
  // debited in convict_result, after the serve_corruption record.
  std::vector<bool> failed(f.clusters.size(), false);
  for (const unsigned rel : exec.failed_members) {
    if (rel < failed.size()) failed[rel] = true;
  }
  std::vector<bool> convicted(f.clusters.size(), false);
  for (const unsigned rel : convicted_members) {
    if (rel < convicted.size()) convicted[rel] = true;
  }
  for (std::size_t i = 0; i < f.clusters.size(); ++i) {
    const unsigned c = f.clusters[i];
    if (convicted[i]) continue;
    if (failed[i]) {
      if (s.health.record_failure(c)) {
        if (stats_) stats_->counter("fleet.quarantines").inc();
        trace_.record(now, "serve", "serve_quarantine",
                      util::format("shard=%u cluster=%u", f.shard, c));
        schedule_probe(f.shard, c, now);
      }
    } else {
      s.health.record_success(c);
    }
  }

  if (!convicted_members.empty()) {
    // The result is refused: the job does not retire here — it re-routes (or
    // fails) once the batch closes.
    convict_result(f, pos, convicted_members, via_audit, now);
    return;
  }

  JobOutcome& out = outcomes_[slot];
  out.end = now;
  out.degraded = exec.degraded;
  out.retries = exec.retries;
  out.watchdog_timeouts = exec.watchdog_timeouts;
  const sim::Cycle deadline = job.arrival + job.t_max;
  out.slack = static_cast<std::int64_t>(deadline) - static_cast<std::int64_t>(now);
  if (!exec.ok) {
    out.verdict = JobVerdict::kFailed;
    out.reason = "execution_failed";
    if (stats_) stats_->counter("fleet.jobs_failed").inc();
  } else if (out.slack >= 0) {
    out.verdict = JobVerdict::kMet;
    if (stats_) {
      stats_->counter("fleet.slo_met").inc();
      stats_->histogram("fleet.slack_cycles").sample(static_cast<double>(out.slack));
    }
  } else {
    out.verdict = JobVerdict::kMissed;
    if (stats_) {
      stats_->counter("fleet.slo_missed").inc();
      stats_->histogram("fleet.tardiness_cycles").sample(static_cast<double>(-out.slack));
    }
  }
  if (exec.degraded && stats_) stats_->counter("fleet.jobs_degraded").inc();
  settled_[slot] = true;

  // Escape accounting (simulation oracle): a silently corrupted result that
  // retires with a delivered verdict got past every defense. The record is
  // stamped so the serve_integrity invariant can convict it from the trace —
  // unless attestation was off (blind=1), in which case the escape is the
  // config's stated choice, not a protocol breach.
  const bool escaped = exec.silent_corruption &&
                       (out.verdict == JobVerdict::kMet || out.verdict == JobVerdict::kMissed);
  std::string flags;
  if (escaped) {
    ++corruption_escapes_;
    if (stats_) stats_->counter("fleet.integrity.escapes").inc();
    flags = exec.integrity_checked ? " corrupt=1" : " corrupt=1 blind=1";
  }

  ++f.completed;
  --s.active_jobs;
  const bool last = f.completed == f.slots.size();
  // Only the batch's last completion carries the clusters= key: the
  // partition is held until the whole train retires, and the monitor's
  // occupancy shadow releases on exactly that record.
  if (last) {
    trace_.record(now, "serve", "serve_complete",
                  util::format("job=%llu shard=%u verdict=%s%s clusters=%s",
                               static_cast<unsigned long long>(job.id), f.shard,
                               to_string(out.verdict), flags.c_str(),
                               cluster_list(f.clusters).c_str()));
    s.alloc.release(f.clusters);
  } else {
    trace_.record(now, "serve", "serve_complete",
                  util::format("job=%llu shard=%u verdict=%s%s batch_pos=%zu",
                               static_cast<unsigned long long>(job.id), f.shard,
                               to_string(out.verdict), flags.c_str(), pos));
  }
}

void FleetRouter::convict_result(InFlightBatch& f, std::size_t pos,
                                 const std::vector<unsigned>& members, bool via_audit,
                                 sim::Cycle now) {
  Shard& s = shards_[f.shard];
  const std::size_t slot = f.slots[pos];
  const ServeJob& job = (*jobs_)[slot];
  corruptions_detected_ += members.size();
  if (stats_) stats_->counter("fleet.integrity.detected").inc(members.size());
  // Feed the breaker: a cluster that returns poisoned bytes is as sick as
  // one that hangs. Trips are collected first so every serve_quarantine
  // record lands after the serve_corruption record that justifies it — the
  // ordering the serve_integrity invariant checks.
  std::vector<unsigned> convicted_clusters;
  std::vector<unsigned> tripped;
  for (const unsigned rel : members) {
    if (rel >= f.clusters.size()) continue;
    const unsigned c = f.clusters[rel];
    convicted_clusters.push_back(c);
    if (s.health.record_failure(c)) tripped.push_back(c);
  }
  ++f.completed;
  --s.active_jobs;
  const bool last = f.completed == f.slots.size();
  std::string detail =
      util::format("job=%llu shard=%u members=%s", static_cast<unsigned long long>(job.id),
                   f.shard, cluster_list(convicted_clusters).c_str());
  if (via_audit) detail += " source=audit";
  if (!tripped.empty()) detail += util::format(" tripped=%s", cluster_list(tripped).c_str());
  // Mirrors serve_complete: the clusters= key rides exactly the batch-final
  // record, releasing the monitor's occupancy shadow.
  if (last) {
    detail += util::format(" clusters=%s", cluster_list(f.clusters).c_str());
  } else {
    detail += util::format(" batch_pos=%zu", pos);
  }
  trace_.record(now, "serve", "serve_corruption", detail);
  for (const unsigned c : tripped) {
    if (stats_) stats_->counter("fleet.quarantines").inc();
    trace_.record(now, "serve", "serve_quarantine",
                  util::format("shard=%u cluster=%u", f.shard, c));
    schedule_probe(f.shard, c, now);
  }
  if (last) s.alloc.release(f.clusters);
  f.convicted.push_back(slot);
}

void FleetRouter::integrity_failover(std::size_t slot, unsigned from,
                                     const std::vector<unsigned>& used, sim::Cycle now) {
  const ServeJob& job = (*jobs_)[slot];
  JobOutcome& out = outcomes_[slot];
  if (integrity_epochs_[slot] >= cfg_.integrity.retry_budget) {
    // Budget spent: every attempt came back convicted.
    out.job_id = job.id;
    out.verdict = JobVerdict::kFailed;
    out.reason = "integrity_failed";
    out.arrival = job.arrival;
    out.end = now;
    out.slack =
        static_cast<std::int64_t>(job.arrival + job.t_max) - static_cast<std::int64_t>(now);
    out.integrity_retries = integrity_epochs_[slot];
    settled_[slot] = true;
    ++integrity_failed_jobs_;
    if (stats_) {
      stats_->counter("fleet.jobs_failed").inc();
      stats_->counter("fleet.integrity.failed").inc();
    }
    trace_.record(now, "serve", "serve_complete",
                  util::format("job=%llu shard=%u verdict=failed reason=integrity_failed",
                               static_cast<unsigned long long>(job.id), from));
    return;
  }
  ++integrity_epochs_[slot];
  out.integrity_retries = integrity_epochs_[slot];
  for (const unsigned c : used) integrity_avoid_[slot].emplace_back(from, c);
  ++integrity_retries_;
  if (stats_) stats_->counter("fleet.integrity.retries").inc();
  trace_.record(now, "serve", "serve_integrity_retry",
                util::format("job=%llu epoch=%u from=%u",
                             static_cast<unsigned long long>(job.id), integrity_epochs_[slot],
                             from));
  route_arrival(slot, now);
}

void FleetRouter::complete(const Event& ev) {
  InFlightBatch& f = inflight_[ev.index];
  if (f.done) return;  // aborted by a shard restart/crash: stale completion
  if (f.orphaned) {
    // The shard partitioned after this batch dispatched: its jobs were
    // failed over, so this completion must not retire anything. While the
    // link is cut it is invisible to the router — buffer it; after a heal it
    // surfaces immediately, straight through the epoch ledger.
    Shard& s = shards_[f.shard];
    if (s.partitioned) {
      s.stale_buffer.emplace_back(ev.index, ev.sub);
    } else {
      stale_retire(f, ev.sub, ev.time);
    }
    return;
  }
  complete_job(f, ev.sub, ev.time);
  if (f.completed == f.slots.size()) {
    f.done = true;
    const unsigned shard = f.shard;
    const std::vector<unsigned> used = f.clusters;
    const std::vector<std::size_t> convicted = std::move(f.convicted);
    // Convicted jobs re-route only after the batch closed: the partition is
    // already released, and the re-dispatches below may grow inflight_ —
    // `f` is dangling from here on.
    for (const std::size_t slot : convicted) integrity_failover(slot, shard, used, ev.time);
    drain_shard_queue(shard, ev.time);
  }
}

void FleetRouter::stale_retire(InFlightBatch& f, std::size_t pos, sim::Cycle now, bool resume) {
  const std::size_t slot = f.slots[pos];
  const ServeJob& job = (*jobs_)[slot];
  ++stale_completions_;
  if (stats_) stats_->counter("fleet.failover_stale_completions").inc();
  ++f.completed;
  const bool last = f.completed == f.slots.size();
  // Like serve_complete, only the last position carries the clusters= key —
  // the monitor's occupancy shadow releases the partition on exactly that
  // record, without treating it as a (second) retirement of the job.
  if (last) {
    trace_.record(now, "serve", "serve_stale_completion",
                  util::format("job=%llu epoch=%u shard=%u clusters=%s",
                               static_cast<unsigned long long>(job.id), f.epochs[pos], f.shard,
                               cluster_list(f.clusters).c_str()));
    f.done = true;
    shards_[f.shard].alloc.release(f.clusters);
    // The freed partition can serve again once the shard itself is back.
    if (resume && !shard_down(shards_[f.shard])) drain_shard_queue(f.shard, now);
  } else {
    trace_.record(now, "serve", "serve_stale_completion",
                  util::format("job=%llu epoch=%u shard=%u batch_pos=%zu",
                               static_cast<unsigned long long>(job.id), f.epochs[pos], f.shard,
                               pos));
  }
}

void FleetRouter::failover(std::size_t slot, unsigned from, bool redispatch, sim::Cycle now) {
  const ServeJob& job = (*jobs_)[slot];
  JobOutcome& out = outcomes_[slot];
  if (failovers_[slot] >= cfg_.failover_budget) {
    // Budget spent: the job is lost with the shard.
    out.job_id = job.id;
    out.verdict = JobVerdict::kFailed;
    out.reason = "shard_lost";
    out.arrival = job.arrival;
    out.end = now;
    out.slack =
        static_cast<std::int64_t>(job.arrival + job.t_max) - static_cast<std::int64_t>(now);
    out.failovers = failovers_[slot];
    settled_[slot] = true;
    ++failover_lost_;
    if (stats_) {
      stats_->counter("fleet.jobs_failed").inc();
      stats_->counter("fleet.failover_lost").inc();
    }
    trace_.record(now, "serve", "serve_complete",
                  util::format("job=%llu shard=%u verdict=failed reason=shard_lost",
                               static_cast<unsigned long long>(job.id), from));
    return;
  }
  ++failovers_[slot];
  out.failovers = failovers_[slot];
  if (redispatch) {
    ++failover_redispatches_;
    if (stats_) stats_->counter("fleet.failover_redispatches").inc();
  } else {
    ++failover_requeues_;
    if (stats_) stats_->counter("fleet.failover_requeues").inc();
  }
  trace_.record(now, "serve", "serve_failover",
                util::format("job=%llu epoch=%u from=%u",
                             static_cast<unsigned long long>(job.id), failovers_[slot], from));
  route_arrival(slot, now);
}

void FleetRouter::schedule_probe(unsigned si, unsigned cluster, sim::Cycle now) {
  push_event(now + cfg_.health.probe_backoff_cycles, EventKind::kProbeDue, cluster, si);
}

void FleetRouter::start_probe(unsigned si, unsigned cluster, sim::Cycle now) {
  // Probing only matters while there is (or may come) work to serve; once
  // the run has drained, letting the probe chain die terminates the event
  // loop. The next run() re-arms probes for still-quarantined clusters.
  if (fleet_idle()) return;
  Shard& s = shards_[si];
  if (shard_down(s)) return;  // probe chain dies with the shard; heal re-arms it
  if (s.health.state(cluster) == ClusterHealth::kHealthy) return;  // stale event
  if (!s.alloc.try_acquire(cluster)) {
    schedule_probe(si, cluster, now);  // defensive: cluster somehow busy, back off
    return;
  }
  ServeJob probe;
  probe.id = 1'000'000'000ull + si * 1'000'000ull + cluster;  // synthetic id
  probe.n = cfg_.probe_n;
  probe.arrival = now;
  ExecutionOutcome exec = s.exec->execute(probe, 1, /*probe=*/true);
  // A probe that returns digest-mismatched bytes is as dirty as one that
  // fails: sick silicon stays quarantined. (The silent-corruption oracle is
  // deliberately NOT consulted — readmission is a protocol decision.)
  const bool clean = exec.ok && exec.failed_members.empty() && exec.corrupted_members.empty();
  s.probes[cluster] = Probe{std::move(exec), clean};
  if (stats_) stats_->counter("fleet.probes").inc();
  trace_.record(now, "serve", "serve_probe", util::format("shard=%u cluster=%u", si, cluster));
  push_event(now + s.probes[cluster]->outcome.duration, EventKind::kProbeDone, cluster, si);
}

void FleetRouter::finish_probe(const Event& ev, sim::Cycle now) {
  const unsigned si = ev.shard;
  const auto cluster = static_cast<unsigned>(ev.index);
  Shard& s = shards_[si];
  if (!s.probes[cluster]) return;  // aborted by a shard restart: stale event
  const Probe probe = *s.probes[cluster];
  s.probes[cluster].reset();
  s.alloc.release(cluster);
  const bool readmitted = s.health.record_probe(cluster, probe.clean);
  trace_.record(now, "serve", "serve_probe_done",
                util::format("shard=%u cluster=%u clean=%d", si, cluster, probe.clean ? 1 : 0));
  if (readmitted) {
    if (stats_) stats_->counter("fleet.readmissions").inc();
    trace_.record(now, "serve", "serve_readmit",
                  util::format("shard=%u cluster=%u", si, cluster));
  } else {
    schedule_probe(si, cluster, now);
  }
  // Re-examine the backlog either way (see OffloadService::finish_probe) —
  // and let the healed shard steal if its own queue is already empty.
  drain_shard_queue(si, now);
}

void FleetRouter::schedule_operator(sim::Cycle time, OperatorAction action, unsigned shard) {
  if (shard >= cfg_.num_shards)
    throw std::invalid_argument("FleetRouter: operator action on an unknown shard");
  if (action == OperatorAction::kDrainClusters || action == OperatorAction::kUndrainClusters)
    throw std::invalid_argument("FleetRouter: cluster-subset operator needs a cluster list");
  pending_operators_.push_back(PendingOperator{time, action, shard, {}, nullptr});
}

void FleetRouter::schedule_operator(sim::Cycle time, OperatorAction action, unsigned shard,
                                    std::vector<unsigned> clusters) {
  if (shard >= cfg_.num_shards)
    throw std::invalid_argument("FleetRouter: operator action on an unknown shard");
  if (action != OperatorAction::kDrainClusters && action != OperatorAction::kUndrainClusters)
    throw std::invalid_argument("FleetRouter: cluster list only valid for cluster-subset drains");
  if (clusters.empty())
    throw std::invalid_argument("FleetRouter: empty cluster list in a cluster-subset drain");
  std::vector<bool> seen(cfg_.clusters_per_shard, false);
  for (const unsigned c : clusters) {
    if (c >= cfg_.clusters_per_shard)
      throw std::invalid_argument(
          util::format("FleetRouter: cluster %u out of range (shards have %u)", c,
                       cfg_.clusters_per_shard));
    if (seen[c])
      throw std::invalid_argument(
          util::format("FleetRouter: duplicate cluster %u in a cluster-subset drain", c));
    seen[c] = true;
  }
  pending_operators_.push_back(PendingOperator{time, action, shard, std::move(clusters), nullptr});
}

void FleetRouter::schedule_plan(const fault::FleetFaultPlan& plan) {
  if (plan.num_shards() != cfg_.num_shards)
    throw std::invalid_argument("FleetRouter: fault plan sized for a different fleet");
  for (const fault::FleetFaultEvent& ev : plan.events()) {
    switch (ev.kind) {
      case fault::FleetFaultKind::kShardCrash:
        schedule_operator(ev.at, OperatorAction::kFail, ev.shard);
        break;
      case fault::FleetFaultKind::kRouterPartition:
        schedule_operator(ev.at, OperatorAction::kPartition, ev.shard);
        break;
      case fault::FleetFaultKind::kHeal:
        schedule_operator(ev.at, OperatorAction::kHeal, ev.shard);
        break;
    }
  }
}

void FleetRouter::schedule_callback(sim::Cycle time, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("FleetRouter: null scheduled callback");
  pending_operators_.push_back(
      PendingOperator{time, OperatorAction::kDrain, 0, {}, std::move(fn)});
}

void FleetRouter::apply_operator(const PendingOperator& op, sim::Cycle now) {
  switch (op.action) {
    case OperatorAction::kDrain: do_drain(op.shard, now); break;
    case OperatorAction::kUndrain: do_undrain(op.shard, now); break;
    case OperatorAction::kRestart: do_restart(op.shard, now); break;
    case OperatorAction::kFail: do_fail(op.shard, now); break;
    case OperatorAction::kHeal: do_heal(op.shard, now); break;
    case OperatorAction::kPartition: do_partition(op.shard, now); break;
    case OperatorAction::kDrainClusters: do_drain_clusters(op.shard, op.clusters, now); break;
    case OperatorAction::kUndrainClusters:
      do_undrain_clusters(op.shard, op.clusters, now);
      break;
  }
}

void FleetRouter::do_drain(unsigned si, sim::Cycle now) {
  Shard& s = shards_[si];
  if (shard_down(s))
    throw std::logic_error("FleetRouter: drain of a crashed/partitioned shard");
  if (s.draining)
    throw std::logic_error("FleetRouter: drain while the shard is already draining");
  s.draining = true;
  if (stats_) stats_->counter("fleet.drain.entered").inc();
  trace_.record(now, "serve", "serve_drain",
                util::format("shard=%u backlog=%zu", si, s.queue.size()));
  // Shed this shard's backlog in queue (arrival) order; its in-flight work
  // keeps running, and the rest of the fleet keeps serving.
  const std::vector<std::size_t> backlog = s.queue;
  s.queue.clear();
  for (const std::size_t slot : backlog) shed(slot, now, ShedReason::kDrained);
  sample_queue_depth(s);
}

void FleetRouter::do_undrain(unsigned si, sim::Cycle now) {
  Shard& s = shards_[si];
  if (shard_down(s))
    throw std::logic_error("FleetRouter: undrain of a crashed/partitioned shard");
  if (!s.draining)
    throw std::logic_error("FleetRouter: undrain while the shard is not draining");
  s.draining = false;
  if (stats_) stats_->counter("fleet.drain.exited").inc();
  trace_.record(now, "serve", "serve_undrain", util::format("shard=%u resume", si));
  // The shard re-enters service with an empty queue: go steal stragglers.
  drain_shard_queue(si, now);
}

void FleetRouter::do_restart(unsigned si, sim::Cycle now) {
  Shard& s = shards_[si];
  if (shard_down(s))
    throw std::logic_error("FleetRouter: restart of a crashed/partitioned shard");
  ++restarts_;
  if (stats_) stats_->counter("fleet.restarts").inc();
  // Abort this shard's in-flight batches first (spans ended, clusters
  // released, outcomes settled as failed/"restarted") so the monitor's
  // occupancy shadow for the shard is empty before the quarantine records.
  // Batch positions retire strictly in order, so [completed, size) is
  // exactly the not-yet-done tail.
  for (InFlightBatch& f : inflight_) {
    if (f.done || f.shard != si) continue;
    if (f.orphaned) {
      // Leftover from an earlier partition of this shard: the jobs already
      // failed over, so retire the not-yet-surfaced tail through the epoch
      // ledger (releases the partition on the last position).
      while (!f.done) stale_retire(f, f.completed, now, /*resume=*/false);
      continue;
    }
    f.done = true;
    // Convicted positions already completed (span ended, active_jobs
    // decremented) but their retry was still pending on the batch closing:
    // the restart takes them down with the rest.
    for (const std::size_t slot : f.convicted) {
      const ServeJob& job = (*jobs_)[slot];
      JobOutcome& out = outcomes_[slot];
      out.job_id = job.id;
      out.end = now;
      out.verdict = JobVerdict::kFailed;
      out.reason = "restarted";
      out.slack =
          static_cast<std::int64_t>(job.arrival + job.t_max) - static_cast<std::int64_t>(now);
      settled_[slot] = true;
      if (stats_) {
        stats_->counter("fleet.jobs_failed").inc();
        stats_->counter("fleet.restart.aborted_jobs").inc();
      }
      trace_.record(now, "serve", "serve_complete",
                    util::format("job=%llu shard=%u verdict=failed reason=restarted",
                                 static_cast<unsigned long long>(job.id), si));
    }
    f.convicted.clear();
    for (std::size_t pos = f.completed; pos < f.slots.size(); ++pos) {
      const std::size_t slot = f.slots[pos];
      const ServeJob& job = (*jobs_)[slot];
      trace_.end_span(now, job_track(job.id));
      --s.active_jobs;
      JobOutcome& out = outcomes_[slot];
      out.end = now;
      out.verdict = JobVerdict::kFailed;
      out.reason = "restarted";
      out.slack =
          static_cast<std::int64_t>(job.arrival + job.t_max) - static_cast<std::int64_t>(now);
      settled_[slot] = true;
      if (stats_) {
        stats_->counter("fleet.jobs_failed").inc();
        stats_->counter("fleet.restart.aborted_jobs").inc();
      }
      const bool last = pos + 1 == f.slots.size();
      trace_.record(now, "serve", "serve_complete",
                    last ? util::format("job=%llu shard=%u verdict=failed clusters=%s",
                                        static_cast<unsigned long long>(job.id), si,
                                        cluster_list(f.clusters).c_str())
                         : util::format("job=%llu shard=%u verdict=failed batch_pos=%zu",
                                        static_cast<unsigned long long>(job.id), si, pos));
    }
    s.alloc.release(f.clusters);
  }
  // Outstanding probes die with the old Soc — no health verdict is recorded.
  for (unsigned c = 0; c < cfg_.clusters_per_shard; ++c) {
    if (!s.probes[c]) continue;
    s.probes[c].reset();
    s.alloc.release(c);
    trace_.record(now, "serve", "serve_probe_done",
                  util::format("shard=%u cluster=%u clean=0", si, c));
  }
  s.exec->restart();
  s.health.restart();
  trace_.record(now, "serve", "serve_restart",
                util::format("shard=%u num_clusters=%u", si, cfg_.clusters_per_shard));
  // Every cluster of the shard re-enters through canary probation; the
  // first probe wave waits out the rebuild penalty.
  for (unsigned c = 0; c < cfg_.clusters_per_shard; ++c) {
    trace_.record(now, "serve", "serve_quarantine", util::format("shard=%u cluster=%u", si, c));
    push_event(now + cfg_.restart_penalty_cycles, EventKind::kProbeDue, c, si);
  }
}

void FleetRouter::do_fail(unsigned si, sim::Cycle now) {
  Shard& s = shards_[si];
  if (shard_down(s))
    throw std::logic_error("FleetRouter: fail of a shard that is already down");
  ++shard_fails_;
  if (stats_) stats_->counter("fleet.shard_fails").inc();
  std::size_t inflight_jobs = 0;
  for (const InFlightBatch& f : inflight_) {
    if (!f.done && !f.orphaned && f.shard == si) inflight_jobs += f.slots.size() - f.completed;
  }
  // The monitor clears its entire occupancy shadow for the shard on this
  // record (crash-stop: everything on the fabric is gone), so the abort
  // below needs no per-batch release records.
  trace_.record(now, "serve", "serve_fail",
                util::format("shard=%u inflight=%zu queued=%zu", si, inflight_jobs,
                             s.queue.size()));
  s.dead = true;
  // Crash-stop every in-flight batch. Orphaned leftovers from an earlier
  // partition already failed their jobs over — only release their clusters;
  // live batches also end spans and collect their jobs for failover.
  std::vector<std::size_t> displaced;
  for (InFlightBatch& f : inflight_) {
    if (f.done || f.shard != si) continue;
    f.done = true;
    if (!f.orphaned) {
      // Convicted positions already completed; their pending integrity retry
      // rides the crash failover path like any displaced in-flight job (the
      // avoid-set and integrity epoch stick to the slot).
      for (const std::size_t slot : f.convicted) displaced.push_back(slot);
      f.convicted.clear();
      for (std::size_t pos = f.completed; pos < f.slots.size(); ++pos) {
        const std::size_t slot = f.slots[pos];
        trace_.end_span(now, job_track((*jobs_)[slot].id));
        --s.active_jobs;
        displaced.push_back(slot);
      }
    }
    s.alloc.release(f.clusters);
  }
  // Outstanding probes die with the shard (no health verdict, no record —
  // the serve_fail wipe above covers their occupancy).
  for (unsigned c = 0; c < cfg_.clusters_per_shard; ++c) {
    if (!s.probes[c]) continue;
    s.probes[c].reset();
    s.alloc.release(c);
  }
  // In-flight jobs re-dispatch first (they were closest to done), then the
  // backlog, both in deterministic order.
  const std::vector<std::size_t> backlog = s.queue;
  s.queue.clear();
  sample_queue_depth(s);
  for (const std::size_t slot : displaced) failover(slot, si, /*redispatch=*/true, now);
  for (const std::size_t slot : backlog) failover(slot, si, /*redispatch=*/false, now);
}

void FleetRouter::do_partition(unsigned si, sim::Cycle now) {
  Shard& s = shards_[si];
  if (shard_down(s))
    throw std::logic_error("FleetRouter: partition of a shard that is already down");
  ++shard_partitions_;
  if (stats_) stats_->counter("fleet.shard_partitions").inc();
  // Outstanding probes are abandoned like a restart's: their bookkeeping
  // lives router-side, so release them *before* the partition record while
  // the monitor still sees a reachable shard.
  for (unsigned c = 0; c < cfg_.clusters_per_shard; ++c) {
    if (!s.probes[c]) continue;
    s.probes[c].reset();
    s.alloc.release(c);
    trace_.record(now, "serve", "serve_probe_done",
                  util::format("shard=%u cluster=%u clean=0", si, c));
  }
  std::size_t inflight_jobs = 0;
  for (const InFlightBatch& f : inflight_) {
    if (!f.done && !f.orphaned && f.shard == si) inflight_jobs += f.slots.size() - f.completed;
  }
  trace_.record(now, "serve", "serve_partition",
                util::format("shard=%u inflight=%zu queued=%zu", si, inflight_jobs,
                             s.queue.size()));
  s.partitioned = true;
  // The shard keeps executing behind the cut link, so in-flight batches stay
  // allocated (their clusters release when the stale completions surface).
  // The router must assume the work is lost: fail the jobs over now.
  std::vector<std::size_t> displaced;
  for (InFlightBatch& f : inflight_) {
    if (f.done || f.orphaned || f.shard != si) continue;
    f.orphaned = true;
    // Pending integrity retries fail over with the in-flight jobs (see
    // do_fail); the stale completions that eventually surface are positions
    // past f.completed, which never include these.
    for (const std::size_t slot : f.convicted) displaced.push_back(slot);
    f.convicted.clear();
    for (std::size_t pos = f.completed; pos < f.slots.size(); ++pos) {
      const std::size_t slot = f.slots[pos];
      trace_.end_span(now, job_track((*jobs_)[slot].id));
      --s.active_jobs;
      displaced.push_back(slot);
    }
  }
  const std::vector<std::size_t> backlog = s.queue;
  s.queue.clear();
  sample_queue_depth(s);
  for (const std::size_t slot : displaced) failover(slot, si, /*redispatch=*/true, now);
  for (const std::size_t slot : backlog) failover(slot, si, /*redispatch=*/false, now);
}

void FleetRouter::do_heal(unsigned si, sim::Cycle now) {
  Shard& s = shards_[si];
  if (!shard_down(s))
    throw std::logic_error("FleetRouter: heal of a shard that is not down");
  ++heals_;
  if (stats_) stats_->counter("fleet.shard_heals").inc();
  if (s.dead) {
    // Crash heal: the fabric is rebuilt from scratch, so every cluster
    // re-enters through canary probation behind the boot penalty — the
    // second half of a restart.
    s.dead = false;
    trace_.record(now, "serve", "serve_heal", util::format("shard=%u mode=crash", si));
    s.exec->restart();
    s.health.restart();
    for (unsigned c = 0; c < cfg_.clusters_per_shard; ++c) {
      trace_.record(now, "serve", "serve_quarantine", util::format("shard=%u cluster=%u", si, c));
      push_event(now + cfg_.restart_penalty_cycles, EventKind::kProbeDue, c, si);
    }
    return;
  }
  // Partition heal: the fabric was healthy all along, only unreachable.
  // Completions buffered behind the cut link surface now, each suppressed by
  // the epoch ledger (the jobs were failed over at partition time); then the
  // shard resumes serving immediately.
  s.partitioned = false;
  trace_.record(now, "serve", "serve_heal",
                util::format("shard=%u mode=partition stale=%zu", si, s.stale_buffer.size()));
  const auto buffered = std::move(s.stale_buffer);
  s.stale_buffer.clear();
  for (const auto& [handle, pos] : buffered) stale_retire(inflight_[handle], pos, now);
  // Clusters still quarantined from before the partition resume probing.
  for (unsigned c = 0; c < cfg_.clusters_per_shard; ++c) {
    if (s.health.state(c) != ClusterHealth::kHealthy && !s.probes[c]) schedule_probe(si, c, now);
  }
  drain_shard_queue(si, now);
}

void FleetRouter::do_drain_clusters(unsigned si, const std::vector<unsigned>& clusters,
                                    sim::Cycle now) {
  Shard& s = shards_[si];
  if (shard_down(s))
    throw std::logic_error("FleetRouter: cluster drain of a crashed/partitioned shard");
  for (const unsigned c : clusters) {
    if (s.cluster_drained[c])
      throw std::logic_error(
          util::format("FleetRouter: drain of already-drained cluster %u on shard %u", c, si));
  }
  for (const unsigned c : clusters) s.cluster_drained[c] = true;
  if (stats_) stats_->counter("fleet.drain.entered").inc();
  trace_.record(now, "serve", "serve_drain_clusters",
                util::format("shard=%u clusters=%s", si, cluster_list(clusters).c_str()));
  // In-flight work on the drained clusters finishes; queued jobs simply see
  // less capacity (and shed as deadline_expired if the subset was the
  // difference). No backlog shed: the shard is still serving.
}

void FleetRouter::do_undrain_clusters(unsigned si, const std::vector<unsigned>& clusters,
                                      sim::Cycle now) {
  Shard& s = shards_[si];
  if (shard_down(s))
    throw std::logic_error("FleetRouter: cluster undrain of a crashed/partitioned shard");
  for (const unsigned c : clusters) {
    if (!s.cluster_drained[c])
      throw std::logic_error(
          util::format("FleetRouter: undrain of cluster %u on shard %u, which is not drained",
                       c, si));
  }
  for (const unsigned c : clusters) s.cluster_drained[c] = false;
  if (stats_) stats_->counter("fleet.drain.exited").inc();
  trace_.record(now, "serve", "serve_undrain_clusters",
                util::format("shard=%u clusters=%s", si, cluster_list(clusters).c_str()));
  drain_shard_queue(si, now);
}

void FleetRouter::route_arrival(std::size_t slot, sim::Cycle now) {
  const ServeJob& job = (*jobs_)[slot];
  if (all_unavailable()) {
    shed(slot, now, ShedReason::kOperatorShed);
    return;
  }
  // Eq.-(3) admission against fleet-wide healthy capacity: the best any
  // non-draining shard could field. A zero cap (every serving shard fully
  // quarantined) is backpressure, not a shed — the job queues and waits for
  // a re-admission, like the single service's wait-on-zero-capacity path.
  const unsigned cap = fleet_capacity_cap();
  if (cap > 0) {
    const auto m = model::min_clusters_for_deadline(
        cfg_.model, job.n, static_cast<double>(job.t_max), cap);
    if (!m) {
      shed(slot, now, ShedReason::kDeadlineUnmeetable);
      return;
    }
  }
  // Round-robin placement over the non-draining shards. Deliberately
  // backlog-blind (see the header): stealing repairs the imbalance.
  unsigned si = 0;
  for (unsigned tried = 0; tried < cfg_.num_shards; ++tried) {
    si = rr_next_;
    rr_next_ = (rr_next_ + 1) % cfg_.num_shards;
    if (!shard_unavailable(shards_[si])) break;
  }
  Shard& s = shards_[si];
  if (try_dispatch(si, slot, now)) return;
  if (s.queue.size() < cfg_.max_queue) {
    s.queue.push_back(slot);
    sample_queue_depth(s);
    if (stats_) stats_->counter("fleet.jobs_queued").inc();
    trace_.record(now, "serve", "serve_queue",
                  util::format("job=%llu shard=%u depth=%zu",
                               static_cast<unsigned long long>(job.id), si, s.queue.size()));
    // The enqueue is the wake-up for idle peers: a shard with nothing in
    // flight never sees a completion event, so without this pull an idle
    // shard would sit dark while a backlog grows one slot over. Ascending
    // shard id keeps the pull order a pure function of the trace.
    if (cfg_.stealing) {
      for (unsigned t = 0; t < cfg_.num_shards; ++t) {
        if (t == si || shard_unavailable(shards_[t]) || !shards_[t].queue.empty()) continue;
        steal_work(t, now);
      }
    }
  } else {
    shed(slot, now, ShedReason::kQueueFull);
  }
}

std::vector<JobOutcome> FleetRouter::run(const std::vector<ServeJob>& jobs) {
  jobs_ = &jobs;
  outcomes_.assign(jobs.size(), JobOutcome{});
  settled_.assign(jobs.size(), false);
  events_ = {};
  next_seq_ = 0;
  inflight_.clear();
  failovers_.assign(jobs.size(), 0);
  integrity_epochs_.assign(jobs.size(), 0);
  integrity_avoid_.assign(jobs.size(), {});
  for (Shard& s : shards_) {
    s.queue.clear();
    s.stale_buffer.clear();
    std::fill(s.probes.begin(), s.probes.end(), std::nullopt);
    s.active_jobs = 0;
  }
  makespan_ = 0;
  pending_arrivals_ = jobs.size();
  rr_next_ = 0;  // placement is a pure function of the trace, per run

  // Arm scheduled operators/callbacks before the arrivals: a same-cycle
  // operator action precedes a same-cycle arrival (lower insertion seq).
  operators_ = std::move(pending_operators_);
  pending_operators_.clear();
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    push_event(operators_[i].time, EventKind::kOperator, i, operators_[i].shard);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    push_event(jobs[i].arrival, EventKind::kArrival, i, 0);
  }
  // Clusters still quarantined from a previous run() resume probing —
  // except on shards that ended the last run crashed or partitioned, which
  // cannot field probes until a heal.
  if (!jobs.empty()) {
    for (unsigned si = 0; si < cfg_.num_shards; ++si) {
      if (shard_down(shards_[si])) continue;
      for (unsigned c = 0; c < cfg_.clusters_per_shard; ++c) {
        if (shards_[si].health.state(c) != ClusterHealth::kHealthy) schedule_probe(si, c, 0);
      }
    }
  }

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    makespan_ = std::max(makespan_, ev.time);
    switch (ev.kind) {
      case EventKind::kArrival:
        --pending_arrivals_;
        if (stats_) stats_->counter("fleet.jobs_submitted").inc();
        route_arrival(ev.index, ev.time);
        break;
      case EventKind::kCompletion: complete(ev); break;
      case EventKind::kProbeDue:
        start_probe(ev.shard, static_cast<unsigned>(ev.index), ev.time);
        break;
      case EventKind::kProbeDone: finish_probe(ev, ev.time); break;
      case EventKind::kOperator: {
        const PendingOperator& op = operators_[ev.index];
        if (op.fn) {
          op.fn();
        } else {
          apply_operator(op, ev.time);
        }
        break;
      }
    }
  }

  // A shard still partitioned at the horizon surfaces its buffered
  // completions as stale retirements so every batch closes (the jobs
  // themselves were settled at failover time).
  for (Shard& s : shards_) {
    const auto buffered = std::move(s.stale_buffer);
    s.stale_buffer.clear();
    for (const auto& [handle, pos] : buffered)
      stale_retire(inflight_[handle], pos, makespan_, /*resume=*/false);
  }
  // End-of-run starvation: whatever is still queued can never run.
  for (Shard& s : shards_) {
    for (const std::size_t slot : s.queue) shed(slot, makespan_, ShedReason::kStarved);
    s.queue.clear();
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!settled_[i])
      throw std::logic_error(util::format("FleetRouter: job slot %zu never settled", i));
  }
  jobs_ = nullptr;
  return outcomes_;
}

}  // namespace mco::serve
