// E24 integrity sweep: silent-data-corruption pressure against an attested
// fleet, with escape-rate and attestation-overhead accounting.
//
// Every grid point replays the same deterministic high-pressure trace
// (fleet_soak.h's E22 generator) against a 4-shard fleet whose shard-0
// executor is built sick: its fault injector corrupts offload results at a
// scripted per-chunk probability without failing them (payload word flips,
// truncated chunk writes, lying completion metadata, stale-buffer reads —
// see fault/fault_injector.h). The rows prove the tentpole property from
// two sides: with per-chunk attestation on, every corrupted result is
// convicted before its verdict is delivered (corruption_escapes == 0 at
// every rate — checksum-blind stale reads are caught by the audit fraction
// instead), and with attestation off the same pressure demonstrably leaks
// (escapes > 0, detections == 0). The attestation bill is reported as
// verify cycles per delivered result and as a percentage of the episode
// makespan. Point-level parallelism (exp::SweepRunner::map in
// bench_integrity) writes into index-addressed slots; the
// "mco-integrity-v1" report is byte-identical at --jobs 1/4/16.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "serve/fleet.h"
#include "serve/fleet_soak.h"

namespace mco::serve {

/// One row of the E24 grid: a corruption environment for the sick shard-0
/// executor plus the defense configuration (attestation toggle, audit
/// fraction, batch cap — audits only see batch-of-one completions, so the
/// audit-backstop rows pin max_batch = 1).
struct FleetIntegrityPoint {
  std::string name;
  unsigned num_shards = 4;
  /// Per-chunk digest attestation at the gather (runtime.integrity.enabled
  /// on every shard's Soc). Off = the blind ablation row.
  bool checks = true;
  /// Fraction of clean batch-of-one completions dual-executed and compared.
  double audit_fraction = 0.0;
  std::size_t max_batch = 4;  ///< 1 keeps every completion auditable
  /// Corruption environment of shard 0's Soc (the other shards stay
  /// healthy). Probabilities of 0 everywhere = the clean control.
  fault::FaultConfig corruption;
  /// Nominal per-chunk rate, echoed into the report row.
  double rate = 0.0;
};

/// The E24 grid: clean control, payload-flip dose-response (low/high), the
/// all-detectable-modes mix, the checksum-blind stale-read row saved by a
/// full audit, a sampled-audit flip row, and the attestation-off ablation
/// that must leak.
std::vector<FleetIntegrityPoint> fleet_integrity_grid();

/// Aggregates of one integrity point.
struct FleetIntegrityResult {
  std::string name;
  unsigned shards = 0;
  bool checks = false;
  double audit_fraction = 0.0;
  double rate = 0.0;
  std::size_t jobs = 0;
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  double slo_attainment = 0.0;  ///< met / jobs
  sim::Cycle makespan = 0;
  std::uint64_t detected = 0;          ///< corrupted results convicted
  std::uint64_t escapes = 0;           ///< corrupted verdicts delivered
  std::uint64_t integrity_retries = 0; ///< disjoint re-executions
  std::uint64_t integrity_failed = 0;  ///< convictions past the retry budget
  std::uint64_t audits = 0;            ///< clean completions dual-executed
  std::uint64_t audit_mismatches = 0;  ///< audits that convicted
  std::uint64_t quarantines = 0;       ///< breaker trips, summed over shards
  std::uint64_t verify_cycles = 0;     ///< attestation bill, summed over shards
  double overhead_pct = 0.0;           ///< 100 * verify_cycles / makespan
  std::uint64_t soc_violations = 0;
  std::uint64_t serve_violations = 0;  ///< incl. serve_integrity
};

/// Serve `trace` through one FleetRouter built per `point`: shard 0's Soc
/// carries the point's corruption config from cycle 0, every shard's
/// runtime attests per the point's `checks` toggle, and the router's
/// conviction machinery runs with the point's audit fraction. A
/// check::ProtocolMonitor watches the fleet trace (serve_isolation +
/// serve_exactly_once + serve_integrity).
FleetIntegrityResult run_fleet_integrity_point(const FleetIntegrityPoint& point,
                                               const std::vector<ServeJob>& trace,
                                               const FleetSoakConfig& cfg);

/// "mco-integrity-v1" JSON: one row per grid point, aggregate fields only —
/// the bench_integrity golden that determinism tests byte-compare.
std::string integrity_report_json(const std::vector<FleetIntegrityResult>& results,
                                  const SoakTraceConfig& trace_cfg);

}  // namespace mco::serve
