#include "serve/offload_service.h"

#include <algorithm>
#include <stdexcept>

#include "model/decision.h"
#include "util/strings.h"

namespace mco::serve {
namespace {

std::string cluster_list(const std::vector<unsigned>& clusters) {
  std::string out;
  for (const unsigned c : clusters) {
    if (!out.empty()) out += ',';
    out += std::to_string(c);
  }
  return out;
}

std::string job_track(std::uint64_t id) {
  return util::format("serve.job%llu", static_cast<unsigned long long>(id));
}

}  // namespace

const char* to_string(JobVerdict v) {
  switch (v) {
    case JobVerdict::kMet: return "met";
    case JobVerdict::kMissed: return "missed";
    case JobVerdict::kShed: return "shed";
    case JobVerdict::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::kDeadlineUnmeetable: return "deadline_unmeetable";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kDeadlineExpired: return "deadline_expired";
    case ShedReason::kStarved: return "starved";
    case ShedReason::kDrained: return "drained";
    case ShedReason::kOperatorShed: return "operator_shed";
  }
  return "?";
}

const char* to_string(OperatorAction a) {
  switch (a) {
    case OperatorAction::kDrain: return "drain";
    case OperatorAction::kUndrain: return "undrain";
    case OperatorAction::kRestart: return "restart";
    case OperatorAction::kFail: return "fail";
    case OperatorAction::kHeal: return "heal";
    case OperatorAction::kPartition: return "partition";
    case OperatorAction::kDrainClusters: return "drain_clusters";
    case OperatorAction::kUndrainClusters: return "undrain_clusters";
  }
  return "?";
}

BatchExecutionOutcome Executor::execute_batch(const std::vector<ServeJob>& jobs, unsigned m) {
  BatchExecutionOutcome out;
  sim::Cycles offset = 0;
  for (const ServeJob& job : jobs) {
    ExecutionOutcome one = execute(job, m, /*probe=*/false);
    offset += one.duration;
    one.duration = offset;  // per-job runtime -> completion offset from batch start
    out.jobs.push_back(std::move(one));
  }
  return out;
}

void register_serve_metrics(sim::StatsRegistry& stats) {
  for (const char* name :
       {"serve.jobs_submitted", "serve.jobs_dispatched", "serve.jobs_queued", "serve.jobs_shed",
        "serve.jobs_failed", "serve.jobs_degraded", "serve.slo_met", "serve.slo_missed",
        "serve.probes", "serve.quarantines", "serve.readmissions", "serve.drain.entered",
        "serve.drain.exited", "serve.drain.jobs_shed", "serve.restarts",
        "serve.restart.aborted_jobs"}) {
    stats.counter(name);
  }
  stats.histogram("serve.queue_wait_cycles", 256.0, 64);
  stats.histogram("serve.queue_depth", 1.0, 64);
  stats.histogram("serve.slack_cycles", 256.0, 64);
  stats.histogram("serve.tardiness_cycles", 256.0, 64);
}

OffloadService::OffloadService(const ServeConfig& cfg, Executor& executor)
    : cfg_(cfg),
      executor_(executor),
      alloc_(cfg.num_clusters),
      health_(cfg.num_clusters, cfg.health),
      probes_(cfg.num_clusters) {
  if (cfg_.max_queue == 0) throw std::invalid_argument("OffloadService: zero max_queue");
  if (cfg_.max_clusters_per_job == 0 || cfg_.max_clusters_per_job > cfg_.num_clusters)
    cfg_.max_clusters_per_job = cfg_.num_clusters;
}

void OffloadService::bind_stats(sim::StatsRegistry* stats) {
  stats_ = stats;
  if (stats_) register_serve_metrics(*stats_);
}

void OffloadService::push_event(sim::Cycle time, EventKind kind, std::size_t index) {
  events_.push(Event{time, next_seq_++, kind, index});
}

unsigned OffloadService::capacity_cap() const {
  return std::min(cfg_.max_clusters_per_job, health_.available_count());
}

void OffloadService::sample_queue_depth() {
  if (stats_) stats_->histogram("serve.queue_depth").sample(static_cast<double>(queue_.size()));
}

void OffloadService::shed(std::size_t slot, sim::Cycle now, ShedReason reason) {
  const ServeJob& job = (*jobs_)[slot];
  JobOutcome& out = outcomes_[slot];
  out.job_id = job.id;
  out.verdict = JobVerdict::kShed;
  out.reason = to_string(reason);
  out.arrival = job.arrival;
  out.end = now;
  settled_[slot] = true;
  if (stats_) {
    stats_->counter("serve.jobs_shed").inc();
    if (reason == ShedReason::kDrained || reason == ShedReason::kOperatorShed)
      stats_->counter("serve.drain.jobs_shed").inc();
  }
  trace_.record(now, "serve", "serve_shed",
                util::format("job=%llu reason=%s", static_cast<unsigned long long>(job.id),
                             to_string(reason)));
}

bool OffloadService::try_dispatch(std::size_t slot, sim::Cycle now) {
  const ServeJob& job = (*jobs_)[slot];
  const sim::Cycle deadline = job.arrival + job.t_max;
  if (now >= deadline) {
    shed(slot, now, ShedReason::kDeadlineExpired);
    return true;
  }
  const unsigned cap = capacity_cap();
  if (cap == 0) return false;  // fully quarantined fabric: wait for re-admission
  const auto m = model::min_clusters_for_deadline(cfg_.model, job.n,
                                                  static_cast<double>(deadline - now), cap);
  if (!m) {
    shed(slot, now, ShedReason::kDeadlineUnmeetable);
    return true;
  }
  auto clusters = alloc_.allocate(*m, [this](unsigned c) { return health_.available(c); });
  if (!clusters) return false;  // backpressure: wait for a partition to free up

  ExecutionOutcome exec = executor_.execute(job, *m, /*probe=*/false);
  const std::size_t handle = inflight_.size();
  inflight_.push_back(InFlight{slot, *clusters, std::move(exec)});
  ++active_jobs_;

  JobOutcome& out = outcomes_[slot];
  out.job_id = job.id;
  out.m = *m;
  out.clusters = *clusters;
  out.arrival = job.arrival;
  out.start = now;
  out.queue_wait = now - job.arrival;

  if (stats_) {
    stats_->counter("serve.jobs_dispatched").inc();
    stats_->histogram("serve.queue_wait_cycles").sample(static_cast<double>(out.queue_wait));
  }
  trace_.record(now, "serve", "serve_dispatch",
                util::format("job=%llu m=%u clusters=%s", static_cast<unsigned long long>(job.id),
                             *m, cluster_list(*clusters).c_str()));
  trace_.begin_span(now, job_track(job.id), "serve_job",
                    util::format("n=%llu m=%u", static_cast<unsigned long long>(job.n), *m));
  push_event(now + inflight_[handle].outcome.duration, EventKind::kCompletion, handle);
  return true;
}

void OffloadService::drain_queue(sim::Cycle now) {
  if (draining_ || queue_.empty()) return;
  // Service order: priority desc, then arrival asc, then id asc. One pass;
  // jobs that still cannot be placed keep waiting.
  std::vector<std::size_t> order = queue_;
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    const ServeJob& ja = (*jobs_)[a];
    const ServeJob& jb = (*jobs_)[b];
    if (ja.priority != jb.priority) return ja.priority > jb.priority;
    if (ja.arrival != jb.arrival) return ja.arrival < jb.arrival;
    return ja.id < jb.id;
  });
  for (const std::size_t slot : order) {
    if (try_dispatch(slot, now)) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), slot));
      sample_queue_depth();
    }
  }
}

void OffloadService::complete(const Event& ev) {
  InFlight& f = inflight_[ev.index];
  if (f.done) return;  // aborted by an operator restart: stale completion
  f.done = true;
  const ServeJob& job = (*jobs_)[f.slot];
  const sim::Cycle now = ev.time;
  trace_.end_span(now, job_track(job.id));

  // Health attribution: map partition-relative failed members back to
  // logical cluster IDs, then credit/debit every participant.
  std::vector<bool> failed(f.clusters.size(), false);
  for (const unsigned rel : f.outcome.failed_members) {
    if (rel < failed.size()) failed[rel] = true;
  }
  for (std::size_t i = 0; i < f.clusters.size(); ++i) {
    const unsigned c = f.clusters[i];
    if (failed[i]) {
      if (health_.record_failure(c)) {
        if (stats_) stats_->counter("serve.quarantines").inc();
        trace_.record(now, "serve", "serve_quarantine", util::format("cluster=%u", c));
        schedule_probe(c, now);
      }
    } else {
      health_.record_success(c);
    }
  }
  alloc_.release(f.clusters);
  --active_jobs_;

  JobOutcome& out = outcomes_[f.slot];
  out.end = now;
  out.degraded = f.outcome.degraded;
  out.retries = f.outcome.retries;
  out.watchdog_timeouts = f.outcome.watchdog_timeouts;
  const sim::Cycle deadline = job.arrival + job.t_max;
  out.slack = static_cast<std::int64_t>(deadline) - static_cast<std::int64_t>(now);
  if (!f.outcome.ok) {
    out.verdict = JobVerdict::kFailed;
    out.reason = "execution_failed";
    if (stats_) stats_->counter("serve.jobs_failed").inc();
  } else if (out.slack >= 0) {
    out.verdict = JobVerdict::kMet;
    if (stats_) {
      stats_->counter("serve.slo_met").inc();
      stats_->histogram("serve.slack_cycles").sample(static_cast<double>(out.slack));
    }
  } else {
    out.verdict = JobVerdict::kMissed;
    if (stats_) {
      stats_->counter("serve.slo_missed").inc();
      stats_->histogram("serve.tardiness_cycles").sample(static_cast<double>(-out.slack));
    }
  }
  if (f.outcome.degraded && stats_) stats_->counter("serve.jobs_degraded").inc();
  settled_[f.slot] = true;
  trace_.record(now, "serve", "serve_complete",
                util::format("job=%llu verdict=%s clusters=%s",
                             static_cast<unsigned long long>(job.id), to_string(out.verdict),
                             cluster_list(f.clusters).c_str()));
  drain_queue(now);
}

void OffloadService::schedule_probe(unsigned cluster, sim::Cycle now) {
  push_event(now + cfg_.health.probe_backoff_cycles, EventKind::kProbeDue, cluster);
}

void OffloadService::start_probe(unsigned cluster, sim::Cycle now) {
  // Probing only matters while there is (or may come) work to serve; once
  // the run has drained, letting the probe chain die terminates the event
  // loop. The next run() re-arms probes for still-quarantined clusters.
  if (pending_arrivals_ == 0 && queue_.empty() && active_jobs_ == 0) return;
  if (health_.state(cluster) == ClusterHealth::kHealthy) return;  // stale event
  if (!alloc_.try_acquire(cluster)) {
    schedule_probe(cluster, now);  // defensive: cluster somehow busy, back off
    return;
  }
  ServeJob probe;
  probe.id = 1'000'000'000ull + cluster;  // synthetic id, outside job-trace range
  probe.n = cfg_.probe_n;
  probe.arrival = now;
  ExecutionOutcome exec = executor_.execute(probe, 1, /*probe=*/true);
  const bool clean = exec.ok && exec.failed_members.empty();
  probes_[cluster] = Probe{std::move(exec), clean};
  if (stats_) stats_->counter("serve.probes").inc();
  trace_.record(now, "serve", "serve_probe", util::format("cluster=%u", cluster));
  push_event(now + probes_[cluster]->outcome.duration, EventKind::kProbeDone, cluster);
}

void OffloadService::finish_probe(const Event& ev, sim::Cycle now) {
  const auto cluster = static_cast<unsigned>(ev.index);
  if (!probes_[cluster]) return;  // aborted by an operator restart: stale event
  const Probe probe = *probes_[cluster];
  probes_[cluster].reset();
  alloc_.release(cluster);
  const bool readmitted = health_.record_probe(cluster, probe.clean);
  trace_.record(now, "serve", "serve_probe_done",
                util::format("cluster=%u clean=%d", cluster, probe.clean ? 1 : 0));
  if (readmitted) {
    if (stats_) stats_->counter("serve.readmissions").inc();
    trace_.record(now, "serve", "serve_readmit", util::format("cluster=%u", cluster));
  } else {
    schedule_probe(cluster, now);
  }
  // Re-examine the backlog either way: after a re-admission capacity grew,
  // and after a dirty probe queued jobs whose deadlines have since lapsed
  // must be shed — otherwise a fully-quarantined fabric whose probes never
  // come back clean would keep probing forever over an unshrinking queue.
  drain_queue(now);
}

void OffloadService::schedule_operator(sim::Cycle time, OperatorAction action) {
  pending_operators_.push_back(PendingOperator{time, action, nullptr});
}

void OffloadService::schedule_callback(sim::Cycle time, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("OffloadService: null scheduled callback");
  pending_operators_.push_back(PendingOperator{time, OperatorAction::kDrain, std::move(fn)});
}

void OffloadService::apply_operator(OperatorAction action, sim::Cycle now) {
  switch (action) {
    case OperatorAction::kDrain: do_drain(now); break;
    case OperatorAction::kUndrain: do_undrain(now); break;
    case OperatorAction::kRestart: do_restart(now); break;
    case OperatorAction::kFail:
    case OperatorAction::kHeal:
    case OperatorAction::kPartition:
    case OperatorAction::kDrainClusters:
    case OperatorAction::kUndrainClusters:
      throw std::logic_error(util::format(
          "OffloadService: operator '%s' is fleet-only (needs FleetRouter)",
          to_string(action)));
  }
}

void OffloadService::do_drain(sim::Cycle now) {
  if (draining_)
    throw std::logic_error("OffloadService: drain while already draining");
  draining_ = true;
  if (stats_) stats_->counter("serve.drain.entered").inc();
  trace_.record(now, "serve", "serve_drain", util::format("backlog=%zu", queue_.size()));
  // Shed the backlog in queue (arrival) order; in-flight work keeps running.
  const std::vector<std::size_t> backlog = queue_;
  queue_.clear();
  for (const std::size_t slot : backlog) shed(slot, now, ShedReason::kDrained);
  sample_queue_depth();
}

void OffloadService::do_undrain(sim::Cycle now) {
  if (!draining_)
    throw std::logic_error("OffloadService: undrain while not draining");
  draining_ = false;
  if (stats_) stats_->counter("serve.drain.exited").inc();
  trace_.record(now, "serve", "serve_undrain", "resume");
  drain_queue(now);
}

void OffloadService::do_restart(sim::Cycle now) {
  ++restarts_;
  if (stats_) stats_->counter("serve.restarts").inc();
  // Abort in-flight jobs first (spans ended, clusters released, outcomes
  // settled as failed/"restarted") so the monitor's occupancy map is empty
  // before the fabric-wide quarantine records land.
  for (InFlight& f : inflight_) {
    if (f.done) continue;
    f.done = true;
    const ServeJob& job = (*jobs_)[f.slot];
    trace_.end_span(now, job_track(job.id));
    alloc_.release(f.clusters);
    --active_jobs_;
    JobOutcome& out = outcomes_[f.slot];
    out.end = now;
    out.verdict = JobVerdict::kFailed;
    out.reason = "restarted";
    out.slack =
        static_cast<std::int64_t>(job.arrival + job.t_max) - static_cast<std::int64_t>(now);
    settled_[f.slot] = true;
    if (stats_) {
      stats_->counter("serve.jobs_failed").inc();
      stats_->counter("serve.restart.aborted_jobs").inc();
    }
    trace_.record(now, "serve", "serve_complete",
                  util::format("job=%llu verdict=failed clusters=%s",
                               static_cast<unsigned long long>(job.id),
                               cluster_list(f.clusters).c_str()));
  }
  // Outstanding probes die with the old Soc — no health verdict is recorded
  // (the rebuilt fabric starts its probation from scratch anyway).
  for (unsigned c = 0; c < cfg_.num_clusters; ++c) {
    if (!probes_[c]) continue;
    probes_[c].reset();
    alloc_.release(c);
    trace_.record(now, "serve", "serve_probe_done", util::format("cluster=%u clean=0", c));
  }
  executor_.restart();
  health_.restart();
  trace_.record(now, "serve", "serve_restart",
                util::format("num_clusters=%u", cfg_.num_clusters));
  // Every cluster re-enters through canary probation; the first probe wave
  // waits out the rebuild penalty. (Not a breaker trip: serve.quarantines
  // and HealthTracker::quarantines() track faults, not operator actions.)
  for (unsigned c = 0; c < cfg_.num_clusters; ++c) {
    trace_.record(now, "serve", "serve_quarantine", util::format("cluster=%u", c));
    push_event(now + cfg_.restart_penalty_cycles, EventKind::kProbeDue, c);
  }
}

std::vector<JobOutcome> OffloadService::run(const std::vector<ServeJob>& jobs) {
  jobs_ = &jobs;
  outcomes_.assign(jobs.size(), JobOutcome{});
  settled_.assign(jobs.size(), false);
  events_ = {};
  next_seq_ = 0;
  queue_.clear();
  inflight_.clear();
  std::fill(probes_.begin(), probes_.end(), std::nullopt);
  makespan_ = 0;
  active_jobs_ = 0;
  pending_arrivals_ = jobs.size();

  // Arm scheduled operators/callbacks before the arrivals: a same-cycle
  // operator action precedes a same-cycle arrival (lower insertion seq).
  operators_ = std::move(pending_operators_);
  pending_operators_.clear();
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    push_event(operators_[i].time, EventKind::kOperator, i);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    push_event(jobs[i].arrival, EventKind::kArrival, i);
  }
  // Clusters still quarantined from a previous run() resume probing.
  if (!jobs.empty()) {
    for (unsigned c = 0; c < cfg_.num_clusters; ++c) {
      if (health_.state(c) != ClusterHealth::kHealthy) schedule_probe(c, 0);
    }
  }

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    makespan_ = std::max(makespan_, ev.time);
    switch (ev.kind) {
      case EventKind::kArrival: {
        --pending_arrivals_;
        if (stats_) stats_->counter("serve.jobs_submitted").inc();
        if (draining_) {
          shed(ev.index, ev.time, ShedReason::kOperatorShed);
          break;
        }
        if (!try_dispatch(ev.index, ev.time)) {
          if (queue_.size() < cfg_.max_queue) {
            queue_.push_back(ev.index);
            sample_queue_depth();
            if (stats_) stats_->counter("serve.jobs_queued").inc();
            trace_.record(ev.time, "serve", "serve_queue",
                          util::format("job=%llu depth=%zu",
                                       static_cast<unsigned long long>(jobs[ev.index].id),
                                       queue_.size()));
          } else {
            shed(ev.index, ev.time, ShedReason::kQueueFull);
          }
        }
        break;
      }
      case EventKind::kCompletion: complete(ev); break;
      case EventKind::kProbeDue: start_probe(static_cast<unsigned>(ev.index), ev.time); break;
      case EventKind::kProbeDone: finish_probe(ev, ev.time); break;
      case EventKind::kOperator: {
        const PendingOperator& op = operators_[ev.index];
        if (op.fn) {
          op.fn();
        } else {
          apply_operator(op.action, ev.time);
        }
        break;
      }
    }
  }

  // End-of-run starvation: whatever is still queued can never run.
  for (const std::size_t slot : queue_) shed(slot, makespan_, ShedReason::kStarved);
  queue_.clear();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!settled_[i])
      throw std::logic_error(util::format("OffloadService: job slot %zu never settled", i));
  }
  jobs_ = nullptr;
  return outcomes_;
}

}  // namespace mco::serve
