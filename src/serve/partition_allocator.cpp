#include "serve/partition_allocator.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::serve {

PartitionAllocator::PartitionAllocator(unsigned num_clusters) : num_clusters_(num_clusters) {
  if (num_clusters == 0) throw std::invalid_argument("PartitionAllocator: zero clusters");
  if (num_clusters > 64)
    throw std::invalid_argument(
        util::format("PartitionAllocator: %u clusters exceed the 64-bit bitmap", num_clusters));
  free_ = num_clusters == 64 ? ~0ull : (1ull << num_clusters) - 1;
}

void PartitionAllocator::check_index(unsigned cluster) const {
  if (cluster >= num_clusters_)
    throw std::out_of_range(
        util::format("PartitionAllocator: cluster %u of %u", cluster, num_clusters_));
}

unsigned PartitionAllocator::free_count() const {
  unsigned n = 0;
  for (std::uint64_t b = free_; b != 0; b &= b - 1) ++n;
  return n;
}

bool PartitionAllocator::is_free(unsigned cluster) const {
  check_index(cluster);
  return (free_ >> cluster) & 1ull;
}

std::optional<std::vector<unsigned>> PartitionAllocator::allocate(
    unsigned m, const std::function<bool(unsigned)>& eligible) {
  if (m == 0) throw std::invalid_argument("PartitionAllocator: zero-cluster partition");
  std::vector<unsigned> picked;
  picked.reserve(m);
  for (unsigned c = 0; c < num_clusters_ && picked.size() < m; ++c) {
    if (((free_ >> c) & 1ull) && (!eligible || eligible(c))) picked.push_back(c);
  }
  if (picked.size() < m) return std::nullopt;
  for (const unsigned c : picked) free_ &= ~(1ull << c);
  return picked;
}

bool PartitionAllocator::try_acquire(unsigned cluster) {
  check_index(cluster);
  if (!((free_ >> cluster) & 1ull)) return false;
  free_ &= ~(1ull << cluster);
  return true;
}

void PartitionAllocator::release(unsigned cluster) {
  check_index(cluster);
  if ((free_ >> cluster) & 1ull)
    throw std::logic_error(
        util::format("PartitionAllocator: double release of cluster %u", cluster));
  free_ |= 1ull << cluster;
}

void PartitionAllocator::release(const std::vector<unsigned>& clusters) {
  for (const unsigned c : clusters) release(c);
}

}  // namespace mco::serve
