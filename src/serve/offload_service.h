// Deadline-aware offload service: admission control + health-partitioned
// dispatch over one accelerator fabric.
//
// The service sits above the single-offload machinery (offload/
// offload_runtime.h) and serves a deterministic stream of jobs, each with a
// problem size, a relative deadline t_max and a priority. Three mechanisms
// interlock:
//
//  * Admission (Eq. 3). On arrival, model::min_clusters_for_deadline decides
//    the minimum partition that can still meet the deadline given the
//    currently healthy capacity. Jobs are admitted, queued behind a bounded
//    backlog, or shed with an explicit Rejected reason — never silently.
//  * Partitioning. Concurrent offloads occupy disjoint cluster subsets,
//    handed out first-fit over a free bitmap (serve/partition_allocator.h).
//    When no partition fits, admitted jobs wait in the queue (backpressure)
//    and are re-examined each time capacity frees up.
//  * Health. Per-cluster recovery verdicts feed a circuit breaker
//    (serve/health_tracker.h). Quarantined clusters vanish from both the
//    allocator and the Eq.-(3) capacity until probation probes re-admit them.
//
// Time is virtual: the service keeps its own cycle clock and event queue.
// Job durations come from an Executor — the soak harness plugs in a real
// simulated Soc (serve/soc_executor.h), the unit tests plug in scripted
// fakes. Everything (admission order, placement, probe schedule) is a pure
// function of the job trace and the executor's outcomes, so a replayed trace
// is bit-identical regardless of host parallelism.
//
// Operators can intervene: scheduled drain/undrain/restart actions (see
// OperatorAction) gate admission, shed the backlog with explicit reasons and
// rebuild the executor behind a full-fabric canary re-probation — the
// chaos-scenario engine (scenario/) scripts these against the same
// virtual-time event loop.
//
// Every decision is observable: per-job SLO outcomes land in sim/stats
// (serve.* counters and histograms, see register_serve_metrics), and the
// service's private TraceSink carries who=="serve" instants
// (serve_dispatch/serve_complete/serve_queue/serve_shed/serve_probe/
// serve_quarantine/serve_readmit/serve_drain/serve_undrain/serve_restart)
// plus one serve_job span per dispatched job — the records
// check::ProtocolMonitor's serve_isolation invariant watches.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "model/runtime_model.h"
#include "serve/health_tracker.h"
#include "serve/partition_allocator.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace mco::serve {

/// One request in the served stream. Deadlines are relative to arrival:
/// the job meets its SLO iff it completes by `arrival + t_max`.
struct ServeJob {
  std::uint64_t id = 0;
  std::string kernel = "daxpy";
  std::uint64_t n = 0;            ///< problem size (elements)
  sim::Cycle arrival = 0;         ///< service-time arrival cycle
  sim::Cycles t_max = 0;          ///< relative deadline, cycles
  unsigned priority = 0;          ///< higher drains from the queue first
};

/// Terminal classification of one job.
enum class JobVerdict {
  kMet,     ///< completed at or before its deadline
  kMissed,  ///< completed, but after the deadline
  kShed,    ///< rejected by admission control (see JobOutcome::reason)
  kFailed,  ///< dispatched but the execution permanently failed
};

const char* to_string(JobVerdict v);

/// Why a job was shed (JobOutcome::reason carries to_string(reason)).
enum class ShedReason {
  kDeadlineUnmeetable,  ///< Eq.-(3): no partition size can meet the deadline
  kQueueFull,           ///< bounded backlog overflowed on arrival
  kDeadlineExpired,     ///< deadline lapsed while waiting in the queue
  kStarved,             ///< still queued when the run drained
  kDrained,             ///< backlog shed by an operator drain
  kOperatorShed,        ///< arrived while the service was draining
};

const char* to_string(ShedReason r);

/// Per-job SLO outcome, emitted for every submitted job.
struct JobOutcome {
  std::uint64_t job_id = 0;
  JobVerdict verdict = JobVerdict::kShed;
  std::string reason;             ///< non-empty for kShed / kFailed
  unsigned m = 0;                 ///< partition size (0 when shed)
  std::vector<unsigned> clusters; ///< logical cluster IDs served on
  sim::Cycle arrival = 0;
  sim::Cycle start = 0;           ///< dispatch cycle (0 when shed)
  sim::Cycle end = 0;             ///< completion cycle (shed: decision cycle)
  sim::Cycles queue_wait = 0;     ///< start − arrival
  std::int64_t slack = 0;         ///< deadline − end (negative = tardy)
  bool degraded = false;
  unsigned retries = 0;
  unsigned watchdog_timeouts = 0;
  /// Times the job was re-dispatched to a surviving shard after its shard
  /// crashed or partitioned (fleet failover; always 0 on a single service).
  unsigned failovers = 0;
  /// Times the job was re-executed on a disjoint partition after a digest
  /// mismatch or audit conviction (fleet integrity; 0 on a single service).
  unsigned integrity_retries = 0;
};

/// What one dispatched offload did, as the service's executor reports it.
struct ExecutionOutcome {
  sim::Cycles duration = 0;       ///< service-time cycles start→completion
  bool ok = true;                 ///< result numerically acceptable
  bool degraded = false;          ///< completed minus permanently-failed members
  /// Partition-relative indices (0..m-1) of members that permanently failed
  /// their chunk; the service maps them back to logical cluster IDs for
  /// health attribution.
  std::vector<unsigned> failed_members;
  unsigned retries = 0;
  unsigned watchdog_timeouts = 0;
  /// Partition-relative indices whose chunk digest failed verification
  /// (detected silent-data corruption; empty when the integrity layer is
  /// off). A corrupted member is distinct from a failed one: it completed,
  /// with wrong bytes.
  std::vector<unsigned> corrupted_members;
  /// Ground-truth oracle, NOT protocol-visible: the result carries corrupted
  /// bytes no digest flagged (stale-read corruption, or any corruption with
  /// checks off). Escape accounting and the audit comparator read this;
  /// routing decisions must not.
  bool silent_corruption = false;
  /// True when the executor ran with result attestation on
  /// (runtime.integrity.enabled): an escape under checks is an invariant
  /// breach, an escape without them is merely blind.
  bool integrity_checked = false;
};

/// What one coalesced batch of jobs did. `jobs[k].duration` is job k's
/// completion *offset from the batch dispatch cycle* (not an individual
/// runtime), so offsets must be non-decreasing in batch order — the fleet
/// layer fans one completion event out per job straight from them.
struct BatchExecutionOutcome {
  std::vector<ExecutionOutcome> jobs;
};

/// Duration/fault source for dispatched jobs. The service calls execute()
/// at dispatch time, in deterministic order; implementations must be pure
/// functions of (job, m, call order) for replay determinism.
class Executor {
 public:
  virtual ~Executor() = default;
  /// Run `job` on an m-cluster partition. `probe` marks single-cluster
  /// canary offloads on quarantined clusters.
  virtual ExecutionOutcome execute(const ServeJob& job, unsigned m, bool probe) = 0;
  /// Run a same-kernel batch back to back on one m-cluster partition,
  /// returning per-job completion offsets (see BatchExecutionOutcome). The
  /// default runs execute() per job and accumulates the offsets, so scripted
  /// test fakes stay trivially correct; SocExecutor overrides it with one
  /// pipelined offload sequence (offload_runtime.h) that hides every
  /// marshalling phase but the first.
  virtual BatchExecutionOutcome execute_batch(const std::vector<ServeJob>& jobs, unsigned m);
  /// Operator restart: tear down and rebuild the backing fabric. The default
  /// is a no-op so scripted test fakes stay trivially correct.
  virtual void restart() {}
  /// Swap the live fault environment (chaos-scenario `inject` events). The
  /// default ignores it; executors without an injector have nothing to swap.
  virtual void set_fault(const fault::FaultConfig& cfg) { (void)cfg; }
};

struct ServeConfig {
  unsigned num_clusters = 8;
  /// Eq.-(1) model used for Eq.-(3) admission decisions.
  model::RuntimeModel model;
  /// Bounded backlog: admitted-but-unplaced jobs beyond this are shed with
  /// reason "queue_full".
  std::size_t max_queue = 16;
  /// Cap on any single job's partition (0 = whole fabric).
  unsigned max_clusters_per_job = 0;
  HealthConfig health;
  /// Problem size of probe (canary) offloads sent to quarantined clusters.
  std::uint64_t probe_n = 256;
  /// Service-time delay between an operator restart and the first canary
  /// probe wave on the rebuilt fabric (Soc teardown + cold boot).
  sim::Cycles restart_penalty_cycles = 20'000;
};

/// Operator interventions a scenario can schedule against a service. The
/// first three act on a single service or shard cooperatively; the rest are
/// fleet-level fault-domain events (fault/fleet_fault.h) and cluster-subset
/// drains that only serve::FleetRouter implements — a plain OffloadService
/// rejects them at fire time.
enum class OperatorAction {
  kDrain,    ///< stop admitting; shed the backlog; let in-flight work finish
  kUndrain,  ///< resume admission
  kRestart,  ///< abort in-flight work, rebuild the executor, re-probe everything
  kFail,       ///< crash-stop the shard: in-flight work lost, jobs fail over
  kHeal,       ///< bring a crashed/partitioned shard back into service
  kPartition,  ///< cut the router link: shard runs on, completions invisible
  kDrainClusters,    ///< drain a cluster subset of one shard
  kUndrainClusters,  ///< return a drained cluster subset to service
};

const char* to_string(OperatorAction a);

class OffloadService {
 public:
  OffloadService(const ServeConfig& cfg, Executor& executor);

  /// Attach a registry; serve.* metrics are registered eagerly so an idle
  /// service still exports a complete (all-zero) inventory.
  void bind_stats(sim::StatsRegistry* stats);

  /// The service's private trace stream (who=="serve" records plus
  /// per-job serve_job spans). Enable or attach a monitor before run().
  sim::TraceSink& trace() { return trace_; }

  const HealthTracker& health() const { return health_; }
  const PartitionAllocator& allocator() const { return alloc_; }

  /// Scripted mid-episode reconfiguration (the scenario dialect's `set
  /// health.*` verb): swaps the breaker thresholds, keeping per-cluster
  /// states and streaks.
  void set_health_config(const HealthConfig& cfg) {
    cfg_.health = cfg;
    health_.set_config(cfg);
  }

  /// Serve one job trace to completion (all arrivals processed, all
  /// in-flight work drained, leftover queue entries shed as "starved").
  /// Returns one outcome per job, in job order. Virtual time restarts at 0
  /// on every call; health/allocator/draining state carries over.
  std::vector<JobOutcome> run(const std::vector<ServeJob>& jobs);

  /// Completion cycle of the last event in the most recent run().
  sim::Cycle makespan() const { return makespan_; }

  /// True while the service refuses admission (between drain and undrain).
  bool draining() const { return draining_; }
  /// Operator restarts performed so far (across runs).
  std::uint64_t restarts() const { return restarts_; }

  /// Schedule an operator action at virtual cycle `time` of the *next*
  /// run(). Same-cycle operators fire before same-cycle arrivals, in the
  /// order they were scheduled. A drain while already draining (or an
  /// undrain while not) is an operator error and throws at fire time.
  void schedule_operator(sim::Cycle time, OperatorAction action);
  /// Schedule an arbitrary callback at virtual cycle `time` of the next
  /// run() — the scenario engine's hook for timed fault-environment swaps.
  /// Callbacks must not re-enter the service.
  void schedule_callback(sim::Cycle time, std::function<void()> fn);

 private:
  enum class EventKind { kArrival, kCompletion, kProbeDue, kProbeDone, kOperator };
  struct Event {
    sim::Cycle time = 0;
    std::uint64_t seq = 0;  ///< insertion order: deterministic tie-break
    EventKind kind = EventKind::kArrival;
    std::size_t index = 0;  ///< job slot (arrival/completion) or cluster id
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  struct InFlight {
    std::size_t slot = 0;
    std::vector<unsigned> clusters;
    ExecutionOutcome outcome;
    bool done = false;  ///< settled early (operator restart): completion is stale
  };
  struct Probe {
    ExecutionOutcome outcome;
    bool clean = false;
  };

  void push_event(sim::Cycle time, EventKind kind, std::size_t index);
  /// Admission capacity for one job: healthy clusters, capped by
  /// max_clusters_per_job.
  unsigned capacity_cap() const;
  void shed(std::size_t slot, sim::Cycle now, ShedReason reason);
  void apply_operator(OperatorAction action, sim::Cycle now);
  void do_drain(sim::Cycle now);
  void do_undrain(sim::Cycle now);
  void do_restart(sim::Cycle now);
  /// Try to place queue slot `slot` now. True when dispatched or shed
  /// (i.e. the slot left the queue); false when it must keep waiting.
  bool try_dispatch(std::size_t slot, sim::Cycle now);
  /// Re-examine the backlog (priority desc, arrival asc, id asc) after
  /// capacity changed.
  void drain_queue(sim::Cycle now);
  void complete(const Event& ev);
  void schedule_probe(unsigned cluster, sim::Cycle now);
  void start_probe(unsigned cluster, sim::Cycle now);
  void finish_probe(const Event& ev, sim::Cycle now);
  void sample_queue_depth();

  ServeConfig cfg_;
  Executor& executor_;
  PartitionAllocator alloc_;
  HealthTracker health_;
  sim::TraceSink trace_;
  sim::StatsRegistry* stats_ = nullptr;

  // Per-run state.
  const std::vector<ServeJob>* jobs_ = nullptr;
  std::vector<JobOutcome> outcomes_;
  std::vector<bool> settled_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::size_t> queue_;            ///< backlog of job slots
  std::vector<InFlight> inflight_;            ///< keyed by completion index
  std::vector<std::optional<Probe>> probes_;  ///< keyed by cluster
  std::size_t pending_arrivals_ = 0;          ///< arrivals not yet processed
  std::size_t active_jobs_ = 0;               ///< dispatched, not yet complete
  sim::Cycle makespan_ = 0;

  // Operator state. `draining_` persists across runs like health; the
  // scheduled operator/callback list is consumed by the next run(). One list
  // for both so same-cycle entries fire in scheduling order.
  bool draining_ = false;
  std::uint64_t restarts_ = 0;
  struct PendingOperator {
    sim::Cycle time = 0;
    OperatorAction action = OperatorAction::kDrain;
    std::function<void()> fn;  ///< when set, a scheduled callback instead
  };
  std::vector<PendingOperator> pending_operators_;
  std::vector<PendingOperator> operators_;    ///< armed for the current run
};

/// Eagerly create every serve.* counter and histogram in `stats` so the
/// exported inventory is complete even before (or without) any traffic.
/// OffloadService::bind_stats calls this; tests and benches may too.
void register_serve_metrics(sim::StatsRegistry& stats);

}  // namespace mco::serve
