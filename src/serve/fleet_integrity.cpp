#include "serve/fleet_integrity.h"

#include <memory>

#include "check/protocol_monitor.h"
#include "serve/soc_executor.h"
#include "util/strings.h"

namespace mco::serve {

namespace {

/// The sick lane every corruption row targets: physical cluster 0 of shard
/// 0. The admission solver picks the minimal partition that meets the
/// deadline, so cluster 0 is the fleet's hottest lane — corruption planted
/// there is exercised by nearly every job the shard serves.
fault::FaultConfig corrupt_lane(double flip, double truncate, double meta, double stale) {
  fault::FaultConfig c;
  c.target_cluster = 0;
  c.payload_flip_prob = flip;
  c.chunk_truncate_prob = truncate;
  c.meta_corrupt_prob = meta;
  c.stale_read_prob = stale;
  return c;
}

}  // namespace

std::vector<FleetIntegrityPoint> fleet_integrity_grid() {
  std::vector<FleetIntegrityPoint> grid;
  {
    // Clean control: attestation on, nothing to catch — pins the overhead
    // bill on an honest fleet and proves zero false convictions.
    FleetIntegrityPoint p;
    p.name = "control";
    grid.push_back(std::move(p));
  }
  {
    // Dose-response, low end: sparse word flips on the hot lane.
    FleetIntegrityPoint p;
    p.name = "flip_low";
    p.rate = 0.01;
    p.corruption = corrupt_lane(p.rate, 0, 0, 0);
    grid.push_back(std::move(p));
  }
  {
    // Dose-response, high end: ~4x the detections of flip_low, and exactly
    // the pressure the blind_off ablation leaks under. Every conviction
    // feeds the breaker as a failure (clean successes in between keep the
    // streak below the default threshold — the scripted-threshold quarantine
    // arc is scenarios/sick_silicon_quarantine.scn's job).
    FleetIntegrityPoint p;
    p.name = "flip_high";
    p.rate = 0.08;
    p.corruption = corrupt_lane(p.rate, 0, 0, 0);
    grid.push_back(std::move(p));
  }
  {
    // All three digest-detectable modes at once (flips, truncated chunk
    // writes, lying completion metadata).
    FleetIntegrityPoint p;
    p.name = "mix_detectable";
    p.rate = 0.01;
    p.corruption = corrupt_lane(p.rate, p.rate, p.rate, 0);
    grid.push_back(std::move(p));
  }
  {
    // The checksum-blind mode: stale-buffer reads verify cleanly, so only
    // the audit can convict them — full audit fraction, batch-of-one so
    // every completion is auditable.
    FleetIntegrityPoint p;
    p.name = "stale_audit";
    p.rate = 0.02;
    p.corruption = corrupt_lane(0, 0, 0, p.rate);
    p.audit_fraction = 1.0;
    p.max_batch = 1;
    grid.push_back(std::move(p));
  }
  {
    // Sampled audit riding along a digest-detectable fault: the audit
    // lottery fires on a quarter of clean completions, the digests still
    // catch every flip.
    FleetIntegrityPoint p;
    p.name = "flip_audit";
    p.rate = 0.01;
    p.corruption = corrupt_lane(p.rate, 0, 0, 0);
    p.audit_fraction = 0.25;
    grid.push_back(std::move(p));
  }
  {
    // The ablation that motivates the whole layer: same flip pressure as
    // flip_high with attestation off — corrupt results sail through as
    // delivered verdicts (escapes > 0, detections == 0).
    FleetIntegrityPoint p;
    p.name = "blind_off";
    p.checks = false;
    p.rate = 0.08;
    p.corruption = corrupt_lane(p.rate, 0, 0, 0);
    grid.push_back(std::move(p));
  }
  return grid;
}

FleetIntegrityResult run_fleet_integrity_point(const FleetIntegrityPoint& point,
                                               const std::vector<ServeJob>& trace,
                                               const FleetSoakConfig& cfg) {
  std::vector<std::unique_ptr<SocExecutor>> execs;
  std::vector<Executor*> exec_ptrs;
  execs.reserve(point.num_shards);
  for (unsigned s = 0; s < point.num_shards; ++s) {
    SocExecutorConfig xc;
    xc.soc = soc::SocConfig::extended(cfg.clusters_per_shard);
    xc.soc.runtime.integrity.enabled = point.checks;
    if (s == 0) xc.soc.fault = point.corruption;
    xc.tolerance = cfg.tolerance;
    xc.workload_seed = cfg.workload_seed + s;
    xc.crash_penalty_cycles = cfg.crash_penalty_cycles;
    execs.push_back(std::make_unique<SocExecutor>(xc));
    exec_ptrs.push_back(execs.back().get());
  }

  FleetConfig fc;
  fc.num_shards = point.num_shards;
  fc.clusters_per_shard = cfg.clusters_per_shard;
  fc.model = cfg.model;
  fc.max_queue = cfg.max_queue;
  fc.max_clusters_per_job = cfg.max_clusters_per_job;
  fc.health = cfg.health;
  fc.max_batch = point.max_batch;
  fc.integrity.audit_fraction = point.audit_fraction;
  FleetRouter fleet(fc, exec_ptrs);

  check::ProtocolMonitor fleet_monitor;
  fleet_monitor.attach(fleet.trace());

  FleetIntegrityResult r;
  r.name = point.name;
  r.shards = point.num_shards;
  r.checks = point.checks;
  r.audit_fraction = point.audit_fraction;
  r.rate = point.rate;
  r.jobs = trace.size();
  const std::vector<JobOutcome> outcomes = fleet.run(trace);
  fleet_monitor.finish();

  for (const JobOutcome& o : outcomes) {
    switch (o.verdict) {
      case JobVerdict::kMet: ++r.met; break;
      case JobVerdict::kMissed: ++r.missed; break;
      case JobVerdict::kShed: ++r.shed; break;
      case JobVerdict::kFailed: ++r.failed; break;
    }
  }
  r.slo_attainment = r.jobs ? static_cast<double>(r.met) / static_cast<double>(r.jobs) : 0.0;
  r.makespan = fleet.makespan();
  r.detected = fleet.corruptions_detected();
  r.escapes = fleet.corruption_escapes();
  r.integrity_retries = fleet.integrity_retries();
  r.integrity_failed = fleet.integrity_failed_jobs();
  r.audits = fleet.audits();
  r.audit_mismatches = fleet.audit_mismatches();
  std::uint64_t busy_cycles = 0;
  for (unsigned s = 0; s < point.num_shards; ++s) {
    r.quarantines += fleet.health(s).quarantines();
    // The attestation bill, straight from the runtime's phase counters.
    // Counters live on each shard's Soc; corruption never crashes a Soc, so
    // no cycles are lost to rebuilds on this grid.
    sim::StatsRegistry& st = execs[s]->soc().simulator().stats();
    r.verify_cycles += st.counter("runtime.phase.verify_cycles").value();
    for (const char* phase :
         {"runtime.phase.marshal_cycles", "runtime.phase.sync_setup_cycles",
          "runtime.phase.dispatch_cycles", "runtime.phase.wait_cycles",
          "runtime.phase.verify_cycles", "runtime.phase.epilogue_cycles"}) {
      busy_cycles += st.counter(phase).value();
    }
    r.soc_violations += execs[s]->total_violations();
  }
  // The attestation share of everything the runtimes charged: makespan
  // would double-count shard parallelism, so the denominator is the
  // fleet-wide sum of Eq.-(1) phase cycles.
  r.overhead_pct =
      busy_cycles ? 100.0 * static_cast<double>(r.verify_cycles) / static_cast<double>(busy_cycles)
                  : 0.0;
  r.serve_violations = fleet_monitor.total_violations();
  return r;
}

std::string integrity_report_json(const std::vector<FleetIntegrityResult>& results,
                                  const SoakTraceConfig& trace_cfg) {
  std::string out = "{\n  \"schema\": \"mco-integrity-v1\",\n";
  out += util::format("  \"jobs\": %zu,\n", trace_cfg.num_jobs);
  out += util::format("  \"seed\": %llu,\n",
                      static_cast<unsigned long long>(trace_cfg.seed));
  out += "  \"points\": [";
  bool first = true;
  for (const FleetIntegrityResult& r : results) {
    out += first ? "\n" : ",\n";
    first = false;
    out += util::format(
        "    {\"name\": \"%s\", \"shards\": %u, \"checks\": %s, "
        "\"audit_fraction\": %.2f, \"rate\": %.3f, "
        "\"met\": %llu, \"missed\": %llu, \"shed\": %llu, \"failed\": %llu, "
        "\"slo_attainment\": %.4f, \"makespan\": %llu, "
        "\"detected\": %llu, \"escapes\": %llu, \"integrity_retries\": %llu, "
        "\"integrity_failed\": %llu, \"audits\": %llu, \"audit_mismatches\": %llu, "
        "\"quarantines\": %llu, \"verify_cycles\": %llu, \"overhead_pct\": %.3f, "
        "\"soc_violations\": %llu, \"serve_violations\": %llu}",
        r.name.c_str(), r.shards, r.checks ? "true" : "false", r.audit_fraction, r.rate,
        static_cast<unsigned long long>(r.met), static_cast<unsigned long long>(r.missed),
        static_cast<unsigned long long>(r.shed), static_cast<unsigned long long>(r.failed),
        r.slo_attainment, static_cast<unsigned long long>(r.makespan),
        static_cast<unsigned long long>(r.detected), static_cast<unsigned long long>(r.escapes),
        static_cast<unsigned long long>(r.integrity_retries),
        static_cast<unsigned long long>(r.integrity_failed),
        static_cast<unsigned long long>(r.audits),
        static_cast<unsigned long long>(r.audit_mismatches),
        static_cast<unsigned long long>(r.quarantines),
        static_cast<unsigned long long>(r.verify_cycles), r.overhead_pct,
        static_cast<unsigned long long>(r.soc_violations),
        static_cast<unsigned long long>(r.serve_violations));
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mco::serve
