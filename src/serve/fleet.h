// Sharded multi-SoC serving fleet: router/admission front-end over N
// per-shard schedulers, with same-kernel job batching and cross-shard work
// stealing.
//
// The fleet splits the monolithic OffloadService into layered pieces:
//
//  * FleetRouter (this file) owns Eq.-(3) admission against *fleet-wide*
//    healthy capacity, round-robin placement over the non-draining shards,
//    the per-shard bounded queues, and the single fleet-level virtual-time
//    event loop every decision runs on.
//  * Each shard wraps today's executor/allocator/health-tracker trio
//    (serve/soc_executor.h, serve/partition_allocator.h,
//    serve/health_tracker.h) — one independent fabric, one circuit breaker,
//    one probe pipeline, exactly the per-SoC mechanics of OffloadService.
//  * Batching: when a shard frees capacity, adjacent same-kernel jobs in its
//    service order coalesce (up to max_batch) into one
//    Executor::execute_batch call — backed by the pipelined
//    offload_sequence path (offload/offload_runtime.h), which hides every
//    marshalling phase but the first. Completions fan back out per job from
//    the batch's completion offsets; the partition is held until the last
//    job of the batch retires.
//  * Work stealing: whenever a shard ends up with free healthy capacity and
//    an empty queue (a completion, re-admission or undrain), it pulls jobs
//    from other shards' backlogs until it can no longer place one. Victim
//    selection is a config policy: kBacklogHead (default) takes the head of
//    the longest backlog (ties to the lowest shard id); kTightestSlack takes
//    the queued job with the least remaining slack anywhere in the fleet —
//    deadline-aware rescue of the job closest to expiring. Round-robin
//    placement is deliberately backlog-blind — stealing is the mechanism
//    that repairs its imbalance, which is exactly what the E22 ablation
//    quantifies.
//  * End-to-end integrity: when an executor reports digest-mismatched
//    members (detected silent data corruption), the router refuses the
//    result, convicts the corrupted clusters through the HealthTracker
//    breaker (repeat offenders quarantine as sick silicon), and re-executes
//    the job under a bounded `integrity.retry_budget` on a partition
//    disjoint from every previously-convicted (shard, cluster) pair; an
//    exhausted budget retires the job as "integrity_failed". A seeded
//    `integrity.audit_fraction` of clean single-job completions is
//    additionally dual-executed (modeled: the audit verdict is the
//    simulation's silent-corruption oracle, since a real re-run regenerates
//    its workload); a mismatch convicts the whole partition and enters the
//    same retry path. A silently corrupted result that still retires is
//    counted as an escape and stamped corrupt=1 on its serve_complete
//    record (blind=1 when attestation was off) — check::ProtocolMonitor's
//    serve_integrity invariant convicts any undetected-met escape.
//  * Fault domains: each shard is a crash-stop fault domain
//    (fault/fleet_fault.h). A crash (OperatorAction::kFail) kills every
//    in-flight offload on the shard; a router partition (kPartition) leaves
//    the shard executing but makes its completions invisible until a heal.
//    Either way the router fails the shard's queued and in-flight jobs over
//    to survivors under a per-job `failover_budget`, tagging each
//    re-dispatch with an epoch. Completions that surface later from a
//    partitioned shard are checked against the epoch ledger and suppressed
//    as `serve_stale_completion` — a job retires exactly once, which
//    check::ProtocolMonitor's serve_exactly_once invariant enforces from
//    the trace. A heal after a crash rebuilds the executor behind full
//    canary re-probation (like a restart); a heal after a partition replays
//    the buffered stale completions and resumes serving immediately.
//
// Determinism contract (unchanged from OffloadService): one event loop in
// virtual time, (time, insertion-seq) event ordering, and placement,
// batching and stealing all pure functions of the job trace and the
// executors' outcomes. A replayed trace is bit-identical at any host
// parallelism; the E22 report is byte-identical at any --jobs.
//
// Observability: fleet.* counters and histograms (register_fleet_metrics,
// documented in docs/observability.md) and a private TraceSink whose
// who=="serve" records carry a shard=<s> key — check::ProtocolMonitor's
// serve_isolation invariant keeps per-shard occupancy shadows from them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "fault/fleet_fault.h"
#include "model/runtime_model.h"
#include "serve/health_tracker.h"
#include "serve/offload_service.h"
#include "serve/partition_allocator.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace mco::serve {

/// Victim-job selection policy for cross-shard work stealing.
enum class StealPolicy {
  /// Head of the longest backlog (ties to the lowest shard id) — the
  /// original load-balancing pull.
  kBacklogHead,
  /// The queued job with the least remaining slack (deadline − now) across
  /// every reachable shard; ties to lower arrival, then lower job id, then
  /// lower shard id. Deadline-aware rescue (ROADMAP: deadline-aware
  /// stealing).
  kTightestSlack,
};

struct FleetConfig {
  unsigned num_shards = 4;
  unsigned clusters_per_shard = 8;
  /// Eq.-(1) model used for Eq.-(3) admission decisions (fleet-wide cap =
  /// the healthiest non-draining shard's available capacity).
  model::RuntimeModel model;
  /// Bounded backlog per shard; overflow on the routed shard sheds with
  /// reason "queue_full".
  std::size_t max_queue = 16;
  /// Cap on any single job's partition (0 = whole shard).
  unsigned max_clusters_per_job = 0;
  HealthConfig health;
  /// Same-kernel coalescing: max jobs per execute_batch call. 1 disables
  /// batching (every dispatch is a single execute()).
  std::size_t max_batch = 4;
  /// Cross-shard work stealing for stragglers. Off = a shard only ever
  /// serves its own queue.
  bool stealing = true;
  /// How a stealing shard picks its victim job (see StealPolicy).
  StealPolicy steal_policy = StealPolicy::kBacklogHead;
  /// Problem size of probe (canary) offloads sent to quarantined clusters.
  std::uint64_t probe_n = 256;
  /// Service-time delay between a shard restart and its first canary probe
  /// wave (Soc teardown + cold boot).
  sim::Cycles restart_penalty_cycles = 20'000;
  /// Per-job failover budget: how many times a job displaced by a shard
  /// crash/partition may be re-dispatched to a survivor before it is failed
  /// with reason "shard_lost". 0 disables failover entirely.
  unsigned failover_budget = 1;
  /// End-to-end result integrity (detection itself lives in the executor's
  /// runtime — runtime.integrity / fault SDC probabilities; this block only
  /// governs what the router does about it).
  struct IntegrityConfig {
    /// How many times a job whose result was convicted (digest mismatch or
    /// audit) may be re-executed on a disjoint partition before it retires
    /// as "integrity_failed". 0 fails convicted jobs immediately.
    unsigned retry_budget = 1;
    /// Fraction of clean batch-of-one completions dual-executed to catch
    /// checksum-blind escapes (stale-read corruption). Selection is a pure
    /// seeded hash of the job id — deterministic and replay-stable.
    double audit_fraction = 0.0;
    std::uint64_t audit_seed = 0x9E3779B97F4A7C15ull;
  } integrity;
};

/// Router/admission front-end over N per-shard schedulers. One Executor per
/// shard (index-aligned with shard ids); each must honor the Executor purity
/// contract independently.
class FleetRouter {
 public:
  FleetRouter(const FleetConfig& cfg, std::vector<Executor*> executors);

  /// Attach a registry; fleet.* metrics are registered eagerly so an idle
  /// fleet still exports a complete (all-zero) inventory.
  void bind_stats(sim::StatsRegistry* stats);

  /// The fleet's private trace stream: who=="serve" records with a
  /// shard=<s> key, plus per-job serve_job spans.
  sim::TraceSink& trace() { return trace_; }

  const HealthTracker& health(unsigned shard) const;
  const PartitionAllocator& allocator(unsigned shard) const;
  unsigned num_shards() const { return cfg_.num_shards; }

  /// Scripted mid-episode reconfiguration (the scenario dialect's `set`
  /// verb). Health swaps apply to every shard's breaker, keeping per-cluster
  /// states and streaks; integrity swaps only govern convictions judged
  /// after the call.
  void set_health_config(const HealthConfig& cfg);
  void set_integrity(const FleetConfig::IntegrityConfig& cfg) { cfg_.integrity = cfg; }

  /// Serve one job trace to completion (all arrivals processed, all
  /// in-flight work drained, leftovers shed as "starved"). Returns one
  /// outcome per job, in job order. Virtual time restarts at 0 on every
  /// call, as does the round-robin pointer; health/allocator/draining state
  /// carries over.
  std::vector<JobOutcome> run(const std::vector<ServeJob>& jobs);

  /// Completion cycle of the last event in the most recent run().
  sim::Cycle makespan() const { return makespan_; }

  /// True while shard `shard` refuses admission (drain .. undrain window).
  bool draining(unsigned shard) const;
  /// True while shard `shard` is crash-stopped (fail .. heal window).
  bool dead(unsigned shard) const;
  /// True while the router's link to shard `shard` is cut.
  bool partitioned(unsigned shard) const;
  /// Operator restarts performed so far, summed over shards.
  std::uint64_t restarts() const { return restarts_; }
  /// Jobs pulled across shards so far (across runs).
  std::uint64_t steals() const { return steals_; }
  /// execute_batch calls with >= 2 jobs, and the jobs they carried.
  std::uint64_t batches() const { return batches_; }
  std::uint64_t batched_jobs() const { return batched_jobs_; }
  /// Fault-domain aggregates (across runs): crash/partition/heal events
  /// applied, jobs failed over (in-flight redispatches vs. queued requeues),
  /// jobs lost to an exhausted failover budget, and completions from a
  /// partitioned shard suppressed by the epoch ledger.
  std::uint64_t shard_fails() const { return shard_fails_; }
  std::uint64_t shard_partitions() const { return shard_partitions_; }
  std::uint64_t heals() const { return heals_; }
  std::uint64_t failover_redispatches() const { return failover_redispatches_; }
  std::uint64_t failover_requeues() const { return failover_requeues_; }
  std::uint64_t failover_lost() const { return failover_lost_; }
  std::uint64_t stale_completions() const { return stale_completions_; }
  /// Integrity aggregates (across runs): digest-mismatched members detected,
  /// silently corrupted results that retired anyway (oracle count), disjoint
  /// re-executions performed, jobs retired as integrity_failed, audit
  /// dual-executions and the convictions they produced.
  std::uint64_t corruptions_detected() const { return corruptions_detected_; }
  std::uint64_t corruption_escapes() const { return corruption_escapes_; }
  std::uint64_t integrity_retries() const { return integrity_retries_; }
  std::uint64_t integrity_failed_jobs() const { return integrity_failed_jobs_; }
  std::uint64_t audits() const { return audits_; }
  std::uint64_t audit_mismatches() const { return audit_mismatches_; }

  /// Schedule a shard-scoped operator action at virtual cycle `time` of the
  /// *next* run(). Same-cycle operators fire before same-cycle arrivals, in
  /// scheduling order. Draining an already-draining shard (or undraining a
  /// non-draining one) throws at fire time, like OffloadService; so do
  /// fail/partition of a shard that is already down, heal of one that is
  /// not, and restart/drain/undrain of a down shard.
  void schedule_operator(sim::Cycle time, OperatorAction action, unsigned shard);
  /// Cluster-subset variant: kDrainClusters / kUndrainClusters only.
  /// `clusters` must be non-empty, in-range, duplicate-free shard-local ids.
  void schedule_operator(sim::Cycle time, OperatorAction action, unsigned shard,
                         std::vector<unsigned> clusters);
  /// Arm every event of a fleet fault plan (crash/partition/heal) as
  /// operator actions for the next run().
  void schedule_plan(const fault::FleetFaultPlan& plan);
  /// Schedule an arbitrary callback at virtual cycle `time` of the next
  /// run() — the scenario engine's hook for timed fault-environment swaps.
  /// Callbacks must not re-enter the router.
  void schedule_callback(sim::Cycle time, std::function<void()> fn);

 private:
  struct PendingOperator;
  enum class EventKind { kArrival, kCompletion, kProbeDue, kProbeDone, kOperator };
  struct Event {
    sim::Cycle time = 0;
    std::uint64_t seq = 0;  ///< insertion order: deterministic tie-break
    EventKind kind = EventKind::kArrival;
    std::size_t index = 0;  ///< job slot / batch handle / cluster / operator
    unsigned shard = 0;
    std::size_t sub = 0;    ///< job position within a batch (kCompletion)
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  struct Probe {
    ExecutionOutcome outcome;
    bool clean = false;
  };
  struct Shard {
    Shard(unsigned clusters, const HealthConfig& health_cfg, Executor* executor)
        : alloc(clusters), health(clusters, health_cfg), exec(executor), probes(clusters),
          cluster_drained(clusters, false) {}
    PartitionAllocator alloc;
    HealthTracker health;
    Executor* exec;
    std::vector<std::size_t> queue;  ///< backlog of job slots
    bool draining = false;
    bool dead = false;         ///< crash-stopped (fail .. heal window)
    bool partitioned = false;  ///< router link cut (partition .. heal window)
    std::vector<std::optional<Probe>> probes;  ///< keyed by shard-local cluster
    std::vector<bool> cluster_drained;         ///< operator cluster-subset drain
    std::size_t active_jobs = 0;               ///< dispatched, not yet complete
    /// Completions that surfaced while the shard was partitioned, replayed
    /// through the epoch ledger at heal time: (batch handle, batch position).
    std::vector<std::pair<std::size_t, std::size_t>> stale_buffer;
  };
  struct InFlightBatch {
    unsigned shard = 0;
    std::vector<std::size_t> slots;  ///< job slots in batch order
    std::vector<unsigned> clusters;
    BatchExecutionOutcome outcome;   ///< jobs[k].duration = completion offset
    std::vector<unsigned> epochs;    ///< per-slot failover epoch at dispatch
    std::size_t completed = 0;
    bool done = false;  ///< settled early (shard restart/crash): completions are stale
    /// Shard partitioned after dispatch: the jobs were failed over, so every
    /// remaining completion is stale and must retire through the ledger.
    bool orphaned = false;
    /// Batch positions whose result was convicted (digest mismatch / audit).
    /// Their retry re-dispatch is deferred to the batch-final completion so
    /// the partition is released before the job re-routes (dispatching
    /// mid-batch would also grow inflight_ under a live reference).
    std::vector<std::size_t> convicted;
  };

  void push_event(sim::Cycle time, EventKind kind, std::size_t index, unsigned shard,
                  std::size_t sub = 0);
  /// Fleet-wide Eq.-(3) capacity: the best serving shard's healthy
  /// un-drained count, capped by max_clusters_per_job.
  unsigned fleet_capacity_cap() const;
  unsigned shard_capacity_cap(const Shard& s) const;
  /// Crashed or partitioned: the shard is not reachable from the router.
  static bool shard_down(const Shard& s) { return s.dead || s.partitioned; }
  /// Down or draining: the shard takes no new work.
  static bool shard_unavailable(const Shard& s) { return s.draining || shard_down(s); }
  bool all_unavailable() const;
  void shed(std::size_t slot, sim::Cycle now, ShedReason reason);
  void route_arrival(std::size_t slot, sim::Cycle now);
  /// Service order of a backlog: priority desc, arrival asc, id asc.
  std::vector<std::size_t> service_order(const std::vector<std::size_t>& queue) const;
  /// Try to place `slot` on shard `si` now, coalescing same-kernel queue
  /// mates when batching allows. True when the slot left the queue
  /// (dispatched or shed); false when it must keep waiting.
  bool try_dispatch(unsigned si, std::size_t slot, sim::Cycle now);
  void dispatch_batch(unsigned si, const std::vector<std::size_t>& slots, unsigned m,
                      const std::vector<unsigned>& clusters, sim::Cycle now);
  /// Re-examine shard `si`'s backlog after its capacity changed, then let it
  /// steal if it drained its own queue.
  void drain_shard_queue(unsigned si, sim::Cycle now);
  /// Idle-shard pull: while `si` has free healthy capacity and an empty
  /// queue, take the victim job chosen by cfg_.steal_policy and dispatch it
  /// here.
  void steal_work(unsigned si, sim::Cycle now);
  /// Pick the next steal victim: (shard, slot) or nullopt when no reachable
  /// backlog has one. Pure function of the trace under either policy.
  std::optional<std::pair<unsigned, std::size_t>> pick_steal_victim(unsigned si) const;
  void complete(const Event& ev);
  void complete_job(InFlightBatch& f, std::size_t pos, sim::Cycle now);
  void schedule_probe(unsigned si, unsigned cluster, sim::Cycle now);
  void start_probe(unsigned si, unsigned cluster, sim::Cycle now);
  void finish_probe(const Event& ev, sim::Cycle now);
  void apply_operator(const PendingOperator& op, sim::Cycle now);
  void do_drain(unsigned si, sim::Cycle now);
  void do_undrain(unsigned si, sim::Cycle now);
  void do_restart(unsigned si, sim::Cycle now);
  void do_fail(unsigned si, sim::Cycle now);
  void do_partition(unsigned si, sim::Cycle now);
  void do_heal(unsigned si, sim::Cycle now);
  void do_drain_clusters(unsigned si, const std::vector<unsigned>& clusters, sim::Cycle now);
  void do_undrain_clusters(unsigned si, const std::vector<unsigned>& clusters, sim::Cycle now);
  /// Re-route one job displaced by a shard crash/partition: bump its epoch
  /// and re-dispatch to a survivor, or fail it as "shard_lost" when the
  /// budget is spent. `redispatch` distinguishes in-flight jobs from queued.
  void failover(std::size_t slot, unsigned from, bool redispatch, sim::Cycle now);
  /// Deterministic audit lottery: seeded hash of the job id vs
  /// integrity.audit_fraction.
  bool audit_selected(std::uint64_t job_id) const;
  /// Handle one convicted batch position at completion time: count +
  /// conviction records, feed the breaker for every convicted cluster,
  /// advance the batch (the convicted job does NOT retire here).
  void convict_result(InFlightBatch& f, std::size_t pos,
                      const std::vector<unsigned>& members, bool via_audit, sim::Cycle now);
  /// Re-route one convicted job: bump its integrity epoch, extend its
  /// avoid-set with the convicted partition, and re-dispatch — or retire it
  /// as "integrity_failed" when the retry budget is spent.
  void integrity_failover(std::size_t slot, unsigned from,
                          const std::vector<unsigned>& used, sim::Cycle now);
  /// Retire one stale completion (from a partitioned shard) through the
  /// epoch ledger: count + trace it, advance the batch, release the
  /// partition on the last position — but never touch the job's outcome.
  /// `resume` re-examines the shard's backlog after the release; callers
  /// already iterating inflight_ must pass false (dispatches would grow it).
  void stale_retire(InFlightBatch& f, std::size_t pos, sim::Cycle now, bool resume = true);
  void sample_queue_depth(const Shard& s);
  bool fleet_idle() const;

  FleetConfig cfg_;
  std::vector<Shard> shards_;
  sim::TraceSink trace_;
  sim::StatsRegistry* stats_ = nullptr;

  // Per-run state.
  const std::vector<ServeJob>* jobs_ = nullptr;
  std::vector<JobOutcome> outcomes_;
  std::vector<bool> settled_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t next_seq_ = 0;
  std::vector<InFlightBatch> inflight_;  ///< keyed by batch handle
  std::vector<unsigned> failovers_;      ///< per-slot failover epoch (per run)
  std::vector<unsigned> integrity_epochs_;  ///< per-slot conviction retries (per run)
  /// Per-slot disjointness constraint: (shard, shard-local cluster) pairs a
  /// convicted job must never be re-placed on.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> integrity_avoid_;
  std::size_t pending_arrivals_ = 0;
  unsigned rr_next_ = 0;  ///< round-robin placement pointer (reset per run)
  sim::Cycle makespan_ = 0;

  // Cross-run aggregates.
  std::uint64_t restarts_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_jobs_ = 0;
  std::uint64_t shard_fails_ = 0;
  std::uint64_t shard_partitions_ = 0;
  std::uint64_t heals_ = 0;
  std::uint64_t failover_redispatches_ = 0;
  std::uint64_t failover_requeues_ = 0;
  std::uint64_t failover_lost_ = 0;
  std::uint64_t stale_completions_ = 0;
  std::uint64_t corruptions_detected_ = 0;
  std::uint64_t corruption_escapes_ = 0;
  std::uint64_t integrity_retries_ = 0;
  std::uint64_t integrity_failed_jobs_ = 0;
  std::uint64_t audits_ = 0;
  std::uint64_t audit_mismatches_ = 0;

  struct PendingOperator {
    sim::Cycle time = 0;
    OperatorAction action = OperatorAction::kDrain;
    unsigned shard = 0;
    std::vector<unsigned> clusters;  ///< kDrainClusters / kUndrainClusters only
    std::function<void()> fn;  ///< when set, a scheduled callback instead
  };
  std::vector<PendingOperator> pending_operators_;
  std::vector<PendingOperator> operators_;  ///< armed for the current run
};

/// Eagerly create every fleet.* counter and histogram in `stats` so the
/// exported inventory is complete even before (or without) any traffic.
/// FleetRouter::bind_stats calls this; tests and benches may too.
void register_fleet_metrics(sim::StatsRegistry& stats);

}  // namespace mco::serve
