// Sharded multi-SoC serving fleet: router/admission front-end over N
// per-shard schedulers, with same-kernel job batching and cross-shard work
// stealing.
//
// The fleet splits the monolithic OffloadService into layered pieces:
//
//  * FleetRouter (this file) owns Eq.-(3) admission against *fleet-wide*
//    healthy capacity, round-robin placement over the non-draining shards,
//    the per-shard bounded queues, and the single fleet-level virtual-time
//    event loop every decision runs on.
//  * Each shard wraps today's executor/allocator/health-tracker trio
//    (serve/soc_executor.h, serve/partition_allocator.h,
//    serve/health_tracker.h) — one independent fabric, one circuit breaker,
//    one probe pipeline, exactly the per-SoC mechanics of OffloadService.
//  * Batching: when a shard frees capacity, adjacent same-kernel jobs in its
//    service order coalesce (up to max_batch) into one
//    Executor::execute_batch call — backed by the pipelined
//    offload_sequence path (offload/offload_runtime.h), which hides every
//    marshalling phase but the first. Completions fan back out per job from
//    the batch's completion offsets; the partition is held until the last
//    job of the batch retires.
//  * Work stealing: whenever a shard ends up with free healthy capacity and
//    an empty queue (a completion, re-admission or undrain), it pulls jobs
//    from the longest backlog in the fleet (ties to the lowest shard id),
//    head-of-service-order first, until it can no longer place one. Round-
//    robin placement is deliberately backlog-blind — stealing is the
//    mechanism that repairs its imbalance, which is exactly what the E22
//    ablation quantifies.
//
// Determinism contract (unchanged from OffloadService): one event loop in
// virtual time, (time, insertion-seq) event ordering, and placement,
// batching and stealing all pure functions of the job trace and the
// executors' outcomes. A replayed trace is bit-identical at any host
// parallelism; the E22 report is byte-identical at any --jobs.
//
// Observability: fleet.* counters and histograms (register_fleet_metrics,
// documented in docs/observability.md) and a private TraceSink whose
// who=="serve" records carry a shard=<s> key — check::ProtocolMonitor's
// serve_isolation invariant keeps per-shard occupancy shadows from them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "model/runtime_model.h"
#include "serve/health_tracker.h"
#include "serve/offload_service.h"
#include "serve/partition_allocator.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace mco::serve {

struct FleetConfig {
  unsigned num_shards = 4;
  unsigned clusters_per_shard = 8;
  /// Eq.-(1) model used for Eq.-(3) admission decisions (fleet-wide cap =
  /// the healthiest non-draining shard's available capacity).
  model::RuntimeModel model;
  /// Bounded backlog per shard; overflow on the routed shard sheds with
  /// reason "queue_full".
  std::size_t max_queue = 16;
  /// Cap on any single job's partition (0 = whole shard).
  unsigned max_clusters_per_job = 0;
  HealthConfig health;
  /// Same-kernel coalescing: max jobs per execute_batch call. 1 disables
  /// batching (every dispatch is a single execute()).
  std::size_t max_batch = 4;
  /// Cross-shard work stealing for stragglers. Off = a shard only ever
  /// serves its own queue.
  bool stealing = true;
  /// Problem size of probe (canary) offloads sent to quarantined clusters.
  std::uint64_t probe_n = 256;
  /// Service-time delay between a shard restart and its first canary probe
  /// wave (Soc teardown + cold boot).
  sim::Cycles restart_penalty_cycles = 20'000;
};

/// Router/admission front-end over N per-shard schedulers. One Executor per
/// shard (index-aligned with shard ids); each must honor the Executor purity
/// contract independently.
class FleetRouter {
 public:
  FleetRouter(const FleetConfig& cfg, std::vector<Executor*> executors);

  /// Attach a registry; fleet.* metrics are registered eagerly so an idle
  /// fleet still exports a complete (all-zero) inventory.
  void bind_stats(sim::StatsRegistry* stats);

  /// The fleet's private trace stream: who=="serve" records with a
  /// shard=<s> key, plus per-job serve_job spans.
  sim::TraceSink& trace() { return trace_; }

  const HealthTracker& health(unsigned shard) const;
  const PartitionAllocator& allocator(unsigned shard) const;
  unsigned num_shards() const { return cfg_.num_shards; }

  /// Serve one job trace to completion (all arrivals processed, all
  /// in-flight work drained, leftovers shed as "starved"). Returns one
  /// outcome per job, in job order. Virtual time restarts at 0 on every
  /// call, as does the round-robin pointer; health/allocator/draining state
  /// carries over.
  std::vector<JobOutcome> run(const std::vector<ServeJob>& jobs);

  /// Completion cycle of the last event in the most recent run().
  sim::Cycle makespan() const { return makespan_; }

  /// True while shard `shard` refuses admission (drain .. undrain window).
  bool draining(unsigned shard) const;
  /// Operator restarts performed so far, summed over shards.
  std::uint64_t restarts() const { return restarts_; }
  /// Jobs pulled across shards so far (across runs).
  std::uint64_t steals() const { return steals_; }
  /// execute_batch calls with >= 2 jobs, and the jobs they carried.
  std::uint64_t batches() const { return batches_; }
  std::uint64_t batched_jobs() const { return batched_jobs_; }

  /// Schedule a shard-scoped operator action at virtual cycle `time` of the
  /// *next* run(). Same-cycle operators fire before same-cycle arrivals, in
  /// scheduling order. Draining an already-draining shard (or undraining a
  /// non-draining one) throws at fire time, like OffloadService.
  void schedule_operator(sim::Cycle time, OperatorAction action, unsigned shard);
  /// Schedule an arbitrary callback at virtual cycle `time` of the next
  /// run() — the scenario engine's hook for timed fault-environment swaps.
  /// Callbacks must not re-enter the router.
  void schedule_callback(sim::Cycle time, std::function<void()> fn);

 private:
  enum class EventKind { kArrival, kCompletion, kProbeDue, kProbeDone, kOperator };
  struct Event {
    sim::Cycle time = 0;
    std::uint64_t seq = 0;  ///< insertion order: deterministic tie-break
    EventKind kind = EventKind::kArrival;
    std::size_t index = 0;  ///< job slot / batch handle / cluster / operator
    unsigned shard = 0;
    std::size_t sub = 0;    ///< job position within a batch (kCompletion)
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  struct Probe {
    ExecutionOutcome outcome;
    bool clean = false;
  };
  struct Shard {
    Shard(unsigned clusters, const HealthConfig& health_cfg, Executor* executor)
        : alloc(clusters), health(clusters, health_cfg), exec(executor), probes(clusters) {}
    PartitionAllocator alloc;
    HealthTracker health;
    Executor* exec;
    std::vector<std::size_t> queue;  ///< backlog of job slots
    bool draining = false;
    std::vector<std::optional<Probe>> probes;  ///< keyed by shard-local cluster
    std::size_t active_jobs = 0;               ///< dispatched, not yet complete
  };
  struct InFlightBatch {
    unsigned shard = 0;
    std::vector<std::size_t> slots;  ///< job slots in batch order
    std::vector<unsigned> clusters;
    BatchExecutionOutcome outcome;   ///< jobs[k].duration = completion offset
    std::size_t completed = 0;
    bool done = false;  ///< settled early (shard restart): completions are stale
  };

  void push_event(sim::Cycle time, EventKind kind, std::size_t index, unsigned shard,
                  std::size_t sub = 0);
  /// Fleet-wide Eq.-(3) capacity: the best non-draining shard's healthy
  /// count, capped by max_clusters_per_job.
  unsigned fleet_capacity_cap() const;
  unsigned shard_capacity_cap(const Shard& s) const;
  bool all_draining() const;
  void shed(std::size_t slot, sim::Cycle now, ShedReason reason);
  void route_arrival(std::size_t slot, sim::Cycle now);
  /// Service order of a backlog: priority desc, arrival asc, id asc.
  std::vector<std::size_t> service_order(const std::vector<std::size_t>& queue) const;
  /// Try to place `slot` on shard `si` now, coalescing same-kernel queue
  /// mates when batching allows. True when the slot left the queue
  /// (dispatched or shed); false when it must keep waiting.
  bool try_dispatch(unsigned si, std::size_t slot, sim::Cycle now);
  void dispatch_batch(unsigned si, const std::vector<std::size_t>& slots, unsigned m,
                      const std::vector<unsigned>& clusters, sim::Cycle now);
  /// Re-examine shard `si`'s backlog after its capacity changed, then let it
  /// steal if it drained its own queue.
  void drain_shard_queue(unsigned si, sim::Cycle now);
  /// Idle-shard pull: while `si` has free healthy capacity and an empty
  /// queue, take the head job of the longest backlog (ties to the lowest
  /// shard id) and dispatch it here.
  void steal_work(unsigned si, sim::Cycle now);
  void complete(const Event& ev);
  void complete_job(InFlightBatch& f, std::size_t pos, sim::Cycle now);
  void schedule_probe(unsigned si, unsigned cluster, sim::Cycle now);
  void start_probe(unsigned si, unsigned cluster, sim::Cycle now);
  void finish_probe(const Event& ev, sim::Cycle now);
  void apply_operator(OperatorAction action, unsigned si, sim::Cycle now);
  void do_drain(unsigned si, sim::Cycle now);
  void do_undrain(unsigned si, sim::Cycle now);
  void do_restart(unsigned si, sim::Cycle now);
  void sample_queue_depth(const Shard& s);
  bool fleet_idle() const;

  FleetConfig cfg_;
  std::vector<Shard> shards_;
  sim::TraceSink trace_;
  sim::StatsRegistry* stats_ = nullptr;

  // Per-run state.
  const std::vector<ServeJob>* jobs_ = nullptr;
  std::vector<JobOutcome> outcomes_;
  std::vector<bool> settled_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t next_seq_ = 0;
  std::vector<InFlightBatch> inflight_;  ///< keyed by batch handle
  std::size_t pending_arrivals_ = 0;
  unsigned rr_next_ = 0;  ///< round-robin placement pointer (reset per run)
  sim::Cycle makespan_ = 0;

  // Cross-run aggregates.
  std::uint64_t restarts_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_jobs_ = 0;

  struct PendingOperator {
    sim::Cycle time = 0;
    OperatorAction action = OperatorAction::kDrain;
    unsigned shard = 0;
    std::function<void()> fn;  ///< when set, a scheduled callback instead
  };
  std::vector<PendingOperator> pending_operators_;
  std::vector<PendingOperator> operators_;  ///< armed for the current run
};

/// Eagerly create every fleet.* counter and histogram in `stats` so the
/// exported inventory is complete even before (or without) any traffic.
/// FleetRouter::bind_stats calls this; tests and benches may too.
void register_fleet_metrics(sim::StatsRegistry& stats);

}  // namespace mco::serve
