// Executor backing the serving layer with a real simulated Soc.
//
// Each dispatched job runs as one cycle-accurate offload on a long-lived Soc
// (fault injector and recovery layer per the SocConfig); the measured
// latency becomes the job's service-time duration and the recovery stats
// become its health verdicts. The service's logical partition of size m maps
// onto physical clusters [0, m) — the runtime always dispatches from cluster
// 0 — so the recovery layer's failed-cluster IDs are already the
// partition-relative indices the service expects.
//
// The backing Soc is a shared resource across jobs: the HBM heap is rewound
// before every job, and if an offload dies entirely (host watchdog abort, no
// survivors left) the executor rebuilds a fresh Soc, charges the job a fixed
// crash penalty, blames every partition member, and keeps serving. A
// check::ProtocolMonitor optionally rides along on the Soc's trace sink; its
// violation count survives rebuilds.
#pragma once

#include <cstdint>
#include <memory>

#include "check/protocol_monitor.h"
#include "serve/offload_service.h"
#include "sim/rng.h"
#include "soc/config.h"
#include "soc/soc.h"

namespace mco::serve {

struct SocExecutorConfig {
  soc::SocConfig soc;
  /// Max |measured − expected| accepted as a numerically OK job (fault
  /// scenarios keep the PR 1 recovery tolerance).
  double tolerance = 1e-5;
  /// Seed of the workload-content RNG (advances deterministically per job).
  std::uint64_t workload_seed = 42;
  /// Service-time duration charged to a job whose offload aborted outright.
  sim::Cycles crash_penalty_cycles = 200'000;
  /// Attach a ProtocolMonitor to the backing Soc's trace sink.
  bool monitor = true;
};

class SocExecutor : public Executor {
 public:
  explicit SocExecutor(const SocExecutorConfig& cfg);

  ExecutionOutcome execute(const ServeJob& job, unsigned m, bool probe) override;

  /// Coalesced batch: one pipelined offload sequence (the host marshals job
  /// k+1 under job k's accelerator time), per-job completion offsets from
  /// the sequence trace, one numerical verdict per job after the train
  /// retires. An aborted sequence charges every job the crash penalty and
  /// blames the whole partition, like a crashed single offload.
  BatchExecutionOutcome execute_batch(const std::vector<ServeJob>& jobs, unsigned m) override;

  /// Operator restart: retire the live monitor cleanly (between jobs every
  /// span is closed, so end-of-run checks apply) and rebuild a fresh Soc.
  void restart() override;
  /// Swap the fault environment: subsequent jobs run on a fresh Soc built
  /// with `cfg` (the injector's seed stream restarts deterministically).
  void set_fault(const fault::FaultConfig& cfg) override;

  soc::Soc& soc() { return *soc_; }
  /// Offloads that aborted and forced a Soc rebuild.
  std::uint64_t crashes() const { return crashes_; }
  /// Operator-initiated rebuilds (restart()).
  std::uint64_t restarts() const { return restarts_; }
  /// Protocol-invariant violations across the executor's whole life,
  /// including Socs discarded by rebuilds. finish()es the live monitor.
  std::uint64_t total_violations();

 private:
  void build_soc();
  /// finish() the live monitor and bank its violations before a rebuild.
  void retire_monitor();

  SocExecutorConfig cfg_;
  sim::Rng rng_;
  std::unique_ptr<soc::Soc> soc_;
  std::unique_ptr<check::ProtocolMonitor> monitor_;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t retired_violations_ = 0;  ///< from rebuilt-away Socs
};

}  // namespace mco::serve
