// SLO soak harness: thousands of deadline-bearing jobs through the serving
// layer, across fault scenarios, with golden-pinnable aggregates.
//
// One soak scenario = one OffloadService over one long-lived SocExecutor
// built with a named fault configuration. The seeded job trace is shared
// across scenarios, so their aggregate rows differ only by what the faults
// (and the circuit breaker's reaction to them) did to SLO attainment and
// goodput. Everything is deterministic: the trace comes from one sim::Rng,
// the service replay is serial per scenario, and scenario-level parallelism
// (exp::SweepRunner::map in bench_serve_soak) writes into index-addressed
// slots — the "mco-serve-v1" report is byte-identical at --jobs 1 and
// --jobs N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "model/runtime_model.h"
#include "serve/offload_service.h"

namespace mco::serve {

/// Shape of the generated job stream.
struct SoakTraceConfig {
  std::size_t num_jobs = 1000;
  std::uint64_t seed = 42;
  /// Problem sizes: n = 256 * uniform[1, n_scale_max].
  std::uint64_t n_scale_max = 16;
  /// Inter-arrival gap, uniform[gap_min, gap_max] cycles.
  sim::Cycles gap_min = 200;
  sim::Cycles gap_max = 3000;
  /// Deadline = t̂(m_target, n) * uniform[slack_min, slack_max) with
  /// m_target drawn from {1, 2, 4, 8} — tight enough that queueing and
  /// faults produce real misses, loose enough that most jobs can be served.
  double slack_min = 0.95;
  double slack_max = 1.8;
  /// Roughly one job in `unmeetable_one_in` gets a deadline below t0 — a
  /// guaranteed Eq.-(3) shed, keeping the admission path exercised.
  std::uint64_t unmeetable_one_in = 32;
};

/// Deterministic job stream for `model` (the admission model; deadlines are
/// drawn relative to its predictions).
std::vector<ServeJob> generate_trace(const SoakTraceConfig& cfg,
                                     const model::RuntimeModel& model);

/// One named fault environment for a soak run.
struct SoakScenario {
  std::string name;
  fault::FaultConfig fault;  ///< all-zero = fault-free
  /// PR 1 recovery knobs of the backing runtime (only bind when the
  /// scenario injects faults; fault-free runs keep the seed timing paths).
  sim::Cycles watchdog_wait_cycles = 2000;
  unsigned max_retries = 2;
};

/// The E19 scenario set: fault-free control, a lost-completion scenario, the
/// all-points chaos mix, and a targeted "sick cluster" that repeatedly hangs
/// one physical cluster — the one that demonstrably trips the circuit
/// breaker and earns probation re-admission.
std::vector<SoakScenario> soak_scenarios(std::uint64_t seed = 0x5EEDull);

/// Service/executor parameters shared by every scenario of a soak run.
struct SoakRunConfig {
  unsigned num_clusters = 8;
  /// Admission model (Eq. 3); defaults to the paper's DAXPY fit.
  model::RuntimeModel model = model::paper_daxpy_model();
  std::size_t max_queue = 16;
  unsigned max_clusters_per_job = 8;
  /// Soak health policy is twitchier than the service default: first-fit
  /// spreads a sick physical cluster's blame over the low logical IDs, so a
  /// shorter streak and a single clean probe keep the breaker's full
  /// quarantine -> probation -> re-admission cycle observable within one
  /// trace.
  HealthConfig health{/*failure_threshold=*/2, /*probation_probes=*/1,
                      /*probe_backoff_cycles=*/5'000};
  double tolerance = 1e-5;
  std::uint64_t workload_seed = 42;
  /// Kept small relative to inter-arrival gaps so a crashed offload stalls
  /// its partition without starving the whole trace.
  sim::Cycles crash_penalty_cycles = 20'000;
};

/// Aggregates of one scenario's soak, plus the per-job outcomes.
struct SoakResult {
  std::string scenario;
  std::size_t jobs = 0;
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;
  double slo_attainment = 0.0;     ///< met / jobs
  std::uint64_t met_elements = 0;  ///< Σ n over SLO-met jobs
  double goodput = 0.0;            ///< met_elements / makespan (elems/cycle)
  sim::Cycle makespan = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t probes = 0;
  std::uint64_t crashes = 0;            ///< Soc rebuilds (aborted offloads)
  std::uint64_t soc_violations = 0;     ///< protocol invariants, backing Soc
  std::uint64_t serve_violations = 0;   ///< serve_isolation etc., service trace
  std::vector<JobOutcome> outcomes;
};

/// Run `trace` through one service instance under `scenario`. A
/// check::ProtocolMonitor watches the backing Soc and a second one watches
/// the service's own trace (the serve_isolation invariant).
SoakResult run_soak_scenario(const SoakScenario& scenario, const std::vector<ServeJob>& trace,
                             const SoakRunConfig& cfg);

/// "mco-serve-v1" JSON: one row per scenario, aggregate fields only — the
/// bench_serve_soak golden that scripts/metrics_regression.py pins.
std::string soak_report_json(const std::vector<SoakResult>& results,
                             const SoakTraceConfig& trace_cfg);

}  // namespace mco::serve
