#include "serve/soc_executor.h"

#include <exception>

#include "soc/workloads.h"

namespace mco::serve {

SocExecutor::SocExecutor(const SocExecutorConfig& cfg) : cfg_(cfg), rng_(cfg.workload_seed) {
  build_soc();
}

void SocExecutor::build_soc() {
  soc_ = std::make_unique<soc::Soc>(cfg_.soc);
  if (cfg_.monitor) {
    monitor_ = std::make_unique<check::ProtocolMonitor>();
    monitor_->attach(*soc_);
  }
}

ExecutionOutcome SocExecutor::execute(const ServeJob& job, unsigned m, bool /*probe*/) {
  ExecutionOutcome out;
  try {
    soc_->reset_heap();
    const kernels::Kernel& kernel = soc_->kernels().by_name(job.kernel);
    soc::PreparedJob prepared =
        soc::prepare_workload(*soc_, kernel, job.n, soc_->num_clusters(), rng_);
    const offload::OffloadResult result = soc_->run_offload(prepared.args, m);
    out.duration = result.total();
    // A corrupted result is routed through the integrity machinery
    // (detection → disjoint retry, escape → oracle accounting), not the
    // numeric-failure path: ok stays true so the service doesn't double-count
    // the job as an execution failure.
    out.corrupted_members.assign(result.integrity.corrupted_clusters.begin(),
                                 result.integrity.corrupted_clusters.end());
    out.silent_corruption = !result.integrity.silent_clusters.empty();
    out.integrity_checked = result.integrity.checks_enabled;
    out.ok = prepared.max_abs_error(*soc_) <= cfg_.tolerance ||
             result.integrity.any_corruption();
    out.degraded = result.recovery.degraded;
    // The runtime dispatches to physical clusters [0, m), so the recovery
    // layer's failed-cluster IDs are already partition-relative.
    out.failed_members.assign(result.recovery.failed_clusters.begin(),
                              result.recovery.failed_clusters.end());
    out.retries = static_cast<unsigned>(result.recovery.retries);
    out.watchdog_timeouts = static_cast<unsigned>(result.recovery.watchdog_timeouts);
  } catch (const std::exception&) {
    // The offload aborted outright (host watchdog, no survivors). Charge a
    // fixed penalty, blame the whole partition, and rebuild the Soc — a
    // mid-offload abort leaves the old instance (and its trace spans) in an
    // undefined state, so its monitor is retired without end-of-run checks.
    ++crashes_;
    if (monitor_) retired_violations_ += monitor_->total_violations();
    build_soc();
    out.duration = cfg_.crash_penalty_cycles;
    out.ok = false;
    out.failed_members.clear();
    for (unsigned i = 0; i < m; ++i) out.failed_members.push_back(i);
  }
  return out;
}

BatchExecutionOutcome SocExecutor::execute_batch(const std::vector<ServeJob>& jobs, unsigned m) {
  BatchExecutionOutcome out;
  try {
    soc_->reset_heap();
    // Prepare every workload up front (the batch shares one heap epoch), then
    // run the whole train as a single pipelined offload sequence.
    std::vector<soc::PreparedJob> prepared;
    std::vector<kernels::JobArgs> args;
    prepared.reserve(jobs.size());
    args.reserve(jobs.size());
    for (const ServeJob& job : jobs) {
      const kernels::Kernel& kernel = soc_->kernels().by_name(job.kernel);
      prepared.push_back(soc::prepare_workload(*soc_, kernel, job.n, soc_->num_clusters(), rng_));
      args.push_back(prepared.back().args);
    }
    const offload::SequenceResult seq =
        soc_->run_offload_sequence(std::move(args), m, /*pipelined=*/true);
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      ExecutionOutcome one;
      one.duration = seq.completion_offset(k);
      const offload::IntegrityReport& integ = seq.jobs[k].integrity;
      one.corrupted_members.assign(integ.corrupted_clusters.begin(),
                                   integ.corrupted_clusters.end());
      one.silent_corruption = !integ.silent_clusters.empty();
      one.integrity_checked = integ.checks_enabled;
      one.ok = prepared[k].max_abs_error(*soc_) <= cfg_.tolerance || integ.any_corruption();
      out.jobs.push_back(std::move(one));
    }
  } catch (const std::exception&) {
    // The train aborted. Same discipline as a crashed single offload: rebuild
    // the Soc, charge each job the crash penalty (a shared offset — the whole
    // train died at once), blame the whole partition.
    ++crashes_;
    if (monitor_) retired_violations_ += monitor_->total_violations();
    build_soc();
    out.jobs.clear();
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      ExecutionOutcome one;
      one.duration = cfg_.crash_penalty_cycles;
      one.ok = false;
      for (unsigned i = 0; i < m; ++i) one.failed_members.push_back(i);
      out.jobs.push_back(std::move(one));
    }
  }
  return out;
}

void SocExecutor::retire_monitor() {
  if (!monitor_) return;
  monitor_->finish();
  retired_violations_ += monitor_->total_violations();
}

void SocExecutor::restart() {
  retire_monitor();
  build_soc();
  ++restarts_;
}

void SocExecutor::set_fault(const fault::FaultConfig& cfg) {
  cfg_.soc.fault = cfg;
  retire_monitor();
  build_soc();
}

std::uint64_t SocExecutor::total_violations() {
  if (!monitor_) return retired_violations_;
  monitor_->finish();
  return retired_violations_ + monitor_->total_violations();
}

}  // namespace mco::serve
