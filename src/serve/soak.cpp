#include "serve/soak.h"

#include "check/protocol_monitor.h"
#include "serve/soc_executor.h"
#include "sim/rng.h"
#include "util/strings.h"

namespace mco::serve {

std::vector<ServeJob> generate_trace(const SoakTraceConfig& cfg,
                                     const model::RuntimeModel& model) {
  sim::Rng rng(cfg.seed);
  std::vector<ServeJob> jobs;
  jobs.reserve(cfg.num_jobs);
  sim::Cycle arrival = 0;
  for (std::size_t i = 0; i < cfg.num_jobs; ++i) {
    ServeJob job;
    job.id = i + 1;
    job.n = 256 * (rng.next_below(cfg.n_scale_max) + 1);
    arrival += cfg.gap_min + rng.next_below(cfg.gap_max - cfg.gap_min + 1);
    job.arrival = arrival;
    const unsigned m_target = 1u << rng.next_below(4);
    const double slack = rng.uniform(cfg.slack_min, cfg.slack_max);
    job.t_max = static_cast<sim::Cycles>(model.predict(m_target, job.n) * slack);
    job.priority = static_cast<unsigned>(rng.next_below(3));
    if (cfg.unmeetable_one_in > 0 && rng.next_below(cfg.unmeetable_one_in) == 0) {
      // Guaranteed Eq.-(3) shed: below the constant offload overhead, no M
      // can meet this deadline.
      job.t_max = static_cast<sim::Cycles>(model.t0 / 2.0);
    }
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<SoakScenario> soak_scenarios(std::uint64_t seed) {
  std::vector<SoakScenario> out;
  out.push_back(SoakScenario{"fault_free", fault::FaultConfig{}, 2000, 2});
  fault::FaultConfig credit_drop;
  credit_drop.seed = seed;
  credit_drop.credit_drop_prob = 0.25;
  out.push_back(SoakScenario{"credit_drop", credit_drop, 2000, 2});
  fault::FaultConfig chaos;
  for (const fault::NamedScenario& sc : fault::scenario_catalog(seed)) {
    if (sc.name == "chaos") chaos = sc.cfg;
  }
  out.push_back(SoakScenario{"chaos", chaos, 2000, 2});
  // One physical cluster wedges on most doorbells: first-fit keeps blaming
  // the same low logical IDs, so the breaker trips, probes run and (between
  // hangs) probation re-admits — the circuit-breaker path, end to end.
  fault::FaultConfig sick;
  sick.seed = seed;
  sick.target_cluster = 0;
  sick.cluster_hang_prob = 0.9;
  out.push_back(SoakScenario{"sick_cluster", sick, 2000, 1});
  return out;
}

SoakResult run_soak_scenario(const SoakScenario& scenario, const std::vector<ServeJob>& trace,
                             const SoakRunConfig& cfg) {
  SocExecutorConfig xc;
  xc.soc = soc::SocConfig::extended(cfg.num_clusters);
  xc.soc.runtime.watchdog_wait_cycles = scenario.watchdog_wait_cycles;
  xc.soc.runtime.max_retries = scenario.max_retries;
  xc.soc.fault = scenario.fault;
  xc.tolerance = cfg.tolerance;
  xc.workload_seed = cfg.workload_seed;
  xc.crash_penalty_cycles = cfg.crash_penalty_cycles;
  SocExecutor exec(xc);

  ServeConfig sc;
  sc.num_clusters = cfg.num_clusters;
  sc.model = cfg.model;
  sc.max_queue = cfg.max_queue;
  sc.max_clusters_per_job = cfg.max_clusters_per_job;
  sc.health = cfg.health;
  OffloadService service(sc, exec);

  sim::StatsRegistry stats;
  service.bind_stats(&stats);
  check::ProtocolMonitor serve_monitor;
  serve_monitor.attach(service.trace());

  SoakResult r;
  r.scenario = scenario.name;
  r.jobs = trace.size();
  r.outcomes = service.run(trace);
  serve_monitor.finish();

  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    const JobOutcome& out = r.outcomes[i];
    switch (out.verdict) {
      case JobVerdict::kMet:
        ++r.met;
        r.met_elements += trace[i].n;
        break;
      case JobVerdict::kMissed: ++r.missed; break;
      case JobVerdict::kShed: ++r.shed; break;
      case JobVerdict::kFailed: ++r.failed; break;
    }
    if (out.degraded) ++r.degraded;
  }

  r.slo_attainment = r.jobs ? static_cast<double>(r.met) / static_cast<double>(r.jobs) : 0.0;
  r.makespan = service.makespan();
  r.goodput =
      r.makespan ? static_cast<double>(r.met_elements) / static_cast<double>(r.makespan) : 0.0;
  r.quarantines = service.health().quarantines();
  r.readmissions = service.health().readmissions();
  r.probes = stats.counter_value("serve.probes");
  r.crashes = exec.crashes();
  r.soc_violations = exec.total_violations();
  r.serve_violations = serve_monitor.total_violations();
  return r;
}

std::string soak_report_json(const std::vector<SoakResult>& results,
                             const SoakTraceConfig& trace_cfg) {
  std::string out = "{\n  \"schema\": \"mco-serve-v1\",\n";
  out += util::format("  \"jobs\": %zu,\n", trace_cfg.num_jobs);
  out += util::format("  \"seed\": %llu,\n",
                      static_cast<unsigned long long>(trace_cfg.seed));
  out += "  \"scenarios\": [";
  bool first = true;
  for (const SoakResult& r : results) {
    out += first ? "\n" : ",\n";
    first = false;
    out += util::format(
        "    {\"name\": \"%s\", \"met\": %llu, \"missed\": %llu, \"shed\": %llu, "
        "\"failed\": %llu, \"degraded\": %llu, \"slo_attainment\": %.4f, "
        "\"met_elements\": %llu, \"goodput\": %.6f, \"makespan\": %llu, "
        "\"quarantines\": %llu, \"readmissions\": %llu, \"probes\": %llu, "
        "\"crashes\": %llu, \"soc_violations\": %llu, \"serve_violations\": %llu}",
        r.scenario.c_str(), static_cast<unsigned long long>(r.met),
        static_cast<unsigned long long>(r.missed), static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.failed), static_cast<unsigned long long>(r.degraded),
        r.slo_attainment, static_cast<unsigned long long>(r.met_elements), r.goodput,
        static_cast<unsigned long long>(r.makespan),
        static_cast<unsigned long long>(r.quarantines),
        static_cast<unsigned long long>(r.readmissions),
        static_cast<unsigned long long>(r.probes), static_cast<unsigned long long>(r.crashes),
        static_cast<unsigned long long>(r.soc_violations),
        static_cast<unsigned long long>(r.serve_violations));
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mco::serve
