#include "serve/health_tracker.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::serve {

const char* to_string(ClusterHealth h) {
  switch (h) {
    case ClusterHealth::kHealthy: return "healthy";
    case ClusterHealth::kQuarantined: return "quarantined";
    case ClusterHealth::kProbation: return "probation";
  }
  return "?";
}

HealthTracker::HealthTracker(unsigned num_clusters, HealthConfig cfg) : cfg_(cfg) {
  if (num_clusters == 0) throw std::invalid_argument("HealthTracker: zero clusters");
  if (cfg_.failure_threshold == 0)
    throw std::invalid_argument("HealthTracker: zero failure_threshold");
  if (cfg_.probation_probes == 0)
    throw std::invalid_argument("HealthTracker: zero probation_probes");
  state_.resize(num_clusters);
}

HealthTracker::Entry& HealthTracker::at(unsigned cluster) {
  if (cluster >= state_.size())
    throw std::out_of_range(util::format("HealthTracker: cluster %u of %zu", cluster,
                                         state_.size()));
  return state_[cluster];
}

const HealthTracker::Entry& HealthTracker::at(unsigned cluster) const {
  return const_cast<HealthTracker*>(this)->at(cluster);
}

ClusterHealth HealthTracker::state(unsigned cluster) const { return at(cluster).state; }

unsigned HealthTracker::available_count() const {
  unsigned n = 0;
  for (const Entry& e : state_) {
    if (e.state == ClusterHealth::kHealthy) ++n;
  }
  return n;
}

unsigned HealthTracker::consecutive_failures(unsigned cluster) const {
  return at(cluster).consecutive_failures;
}

unsigned HealthTracker::clean_probes(unsigned cluster) const { return at(cluster).clean_probes; }

void HealthTracker::record_success(unsigned cluster) {
  Entry& e = at(cluster);
  if (e.state != ClusterHealth::kHealthy) return;  // probes report via record_probe
  e.consecutive_failures = 0;
}

bool HealthTracker::record_failure(unsigned cluster) {
  Entry& e = at(cluster);
  if (e.state != ClusterHealth::kHealthy) return false;  // already tripped
  if (++e.consecutive_failures < cfg_.failure_threshold) return false;
  e.state = ClusterHealth::kQuarantined;
  e.clean_probes = 0;
  ++quarantines_;
  return true;
}

bool HealthTracker::record_probe(unsigned cluster, bool clean) {
  Entry& e = at(cluster);
  if (e.state == ClusterHealth::kHealthy)
    throw std::logic_error(util::format("HealthTracker: probe on healthy cluster %u", cluster));
  if (!clean) {
    // Dirty probe: probation starts over.
    e.clean_probes = 0;
    e.state = ClusterHealth::kQuarantined;
    return false;
  }
  ++e.clean_probes;
  e.state = ClusterHealth::kProbation;
  if (e.clean_probes < cfg_.probation_probes) return false;
  e.state = ClusterHealth::kHealthy;
  e.consecutive_failures = 0;
  e.clean_probes = 0;
  ++readmissions_;
  return true;
}

void HealthTracker::restart() {
  for (Entry& e : state_) {
    e.state = ClusterHealth::kQuarantined;
    e.consecutive_failures = 0;
    e.clean_probes = 0;
  }
}

}  // namespace mco::serve
