// Per-cluster health: a circuit breaker with probation re-admission.
//
// The serving layer (serve/offload_service.h) feeds this tracker one verdict
// per cluster per completed offload, derived from the runtime's recovery
// stats (offload/offload_result.h): a cluster that permanently failed its
// chunk counts as a failure, every other participant as a success. A run of
// `failure_threshold` consecutive failures trips the breaker — the cluster
// is quarantined, the partition allocator skips it and the Eq.-(3) admission
// capacity shrinks accordingly. Quarantined clusters are then probed with
// single-cluster canary offloads; `probation_probes` consecutive clean
// probes re-admit the cluster (a dirty probe resets the probation count).
//
// The tracker is plain bookkeeping: no simulator, no threads, fully
// deterministic. One instance lives inside each OffloadService.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace mco::serve {

/// Health state of one cluster, as the allocator sees it. Quarantined and
/// Probation both exclude the cluster from regular allocation; Probation
/// means at least one clean probe has already landed.
enum class ClusterHealth { kHealthy, kQuarantined, kProbation };

const char* to_string(ClusterHealth h);

struct HealthConfig {
  /// Consecutive failed offloads that trip the circuit breaker.
  unsigned failure_threshold = 3;
  /// Consecutive clean probe offloads that re-admit a quarantined cluster.
  unsigned probation_probes = 2;
  /// Service-time delay from quarantine (or from a finished probe) to the
  /// next probe offload on that cluster.
  sim::Cycles probe_backoff_cycles = 5000;
};

class HealthTracker {
 public:
  HealthTracker(unsigned num_clusters, HealthConfig cfg);

  unsigned num_clusters() const { return static_cast<unsigned>(state_.size()); }
  const HealthConfig& config() const { return cfg_; }
  /// Operator reconfiguration mid-run (the scenario dialect's `set
  /// health.*` verb): thresholds change, per-cluster states and streak
  /// counters carry over. A cluster already at or past a lowered
  /// failure_threshold trips on its *next* failure, not retroactively.
  void set_config(const HealthConfig& cfg) { cfg_ = cfg; }

  ClusterHealth state(unsigned cluster) const;
  /// True when the cluster may serve regular jobs (kHealthy).
  bool available(unsigned cluster) const { return state(cluster) == ClusterHealth::kHealthy; }
  /// Number of clusters currently available to regular jobs — the Eq.-(3)
  /// admission capacity.
  unsigned available_count() const;

  unsigned consecutive_failures(unsigned cluster) const;
  unsigned clean_probes(unsigned cluster) const;

  /// One offload on `cluster` completed without blaming it.
  void record_success(unsigned cluster);
  /// One offload permanently failed on `cluster`. Returns true when this
  /// failure tripped the breaker (kHealthy → kQuarantined).
  bool record_failure(unsigned cluster);
  /// A probe offload on a quarantined cluster finished. Returns true when
  /// the cluster was re-admitted (probation complete, state back to
  /// kHealthy with a clean failure streak).
  bool record_probe(unsigned cluster, bool clean);

  /// Operator restart of the whole fabric: every cluster — healthy,
  /// quarantined or mid-probation — drops to kQuarantined with all streak
  /// counters cleared, so re-admission always requires a fresh run of
  /// `probation_probes` clean canaries. Clean counters earned before the
  /// restart must not survive it (a rebuilt Soc voids old evidence), and the
  /// transition is an operator action, not a breaker trip: quarantines() is
  /// left untouched.
  void restart();

  std::uint64_t quarantines() const { return quarantines_; }
  std::uint64_t readmissions() const { return readmissions_; }

 private:
  struct Entry {
    ClusterHealth state = ClusterHealth::kHealthy;
    unsigned consecutive_failures = 0;
    unsigned clean_probes = 0;
  };
  Entry& at(unsigned cluster);
  const Entry& at(unsigned cluster) const;

  HealthConfig cfg_;
  std::vector<Entry> state_;
  std::uint64_t quarantines_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace mco::serve
