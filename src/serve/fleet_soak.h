// E22 fleet soak: one seeded high-pressure job trace served by fleets of
// varying shard count, with batching/stealing ablations.
//
// Every grid point replays the *same* deterministic trace (serve/soak.h's
// generator with tighter inter-arrival gaps — enough offered load to
// saturate a single 8-cluster shard), so the rows differ only by what the
// fleet topology and the two mechanisms under test (same-kernel batching,
// cross-shard stealing) did to SLO attainment and goodput. Point-level
// parallelism (exp::SweepRunner::map in bench_fleet_soak) writes into
// index-addressed slots; the "mco-fleet-v1" report is byte-identical at
// --jobs 1 and --jobs N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/fleet.h"
#include "serve/soak.h"

namespace mco::serve {

/// The shared E22 trace: the E19 generator, pressed ~2.5x harder (shorter
/// gaps) so a 1-shard fleet visibly queues and misses while a 4-shard fleet
/// does not. `num_jobs` scales via bench_fleet_soak --fleet-jobs.
SoakTraceConfig fleet_trace_config(std::size_t num_jobs);

/// One row of the E22 grid: a fleet topology plus the mechanism toggles.
struct FleetSoakPoint {
  std::string name;       ///< row label, e.g. "4shard" / "4shard_nosteal"
  unsigned num_shards = 4;
  std::size_t max_batch = 4;  ///< 1 disables same-kernel batching
  bool stealing = true;
};

/// The E22 grid: shard-count scaling {1, 2, 4, 8} with both mechanisms on,
/// plus the 4-shard ablations (no-batch, no-steal, neither).
std::vector<FleetSoakPoint> fleet_soak_grid();

/// Fleet/executor parameters shared by every point of an E22 run. Shards are
/// fault-free (E22 measures scheduling, not recovery — E19/E20 own faults);
/// each shard's workload RNG is seeded workload_seed + shard id.
struct FleetSoakConfig {
  unsigned clusters_per_shard = 8;
  model::RuntimeModel model = model::paper_daxpy_model();
  std::size_t max_queue = 16;
  unsigned max_clusters_per_job = 8;
  HealthConfig health{/*failure_threshold=*/2, /*probation_probes=*/1,
                      /*probe_backoff_cycles=*/5'000};
  double tolerance = 1e-5;
  std::uint64_t workload_seed = 42;
  sim::Cycles crash_penalty_cycles = 20'000;
};

/// Aggregates of one grid point's soak.
struct FleetSoakResult {
  std::string name;
  unsigned shards = 0;
  std::size_t max_batch = 1;
  bool stealing = false;
  std::size_t jobs = 0;
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  double slo_attainment = 0.0;     ///< met / jobs
  std::uint64_t met_elements = 0;  ///< Σ n over SLO-met jobs
  double goodput = 0.0;            ///< met_elements / makespan (elems/cycle)
  sim::Cycle makespan = 0;
  std::uint64_t steals = 0;
  std::uint64_t batches = 0;       ///< execute_batch calls with >= 2 jobs
  std::uint64_t batched_jobs = 0;  ///< jobs those calls carried
  double mean_batch = 0.0;         ///< batched_jobs / batches (0 when none)
  std::uint64_t quarantines = 0;   ///< summed over shards
  std::uint64_t crashes = 0;       ///< Soc rebuilds, summed over shards
  std::uint64_t soc_violations = 0;
  std::uint64_t serve_violations = 0;  ///< serve_isolation on the fleet trace
};

/// Serve `trace` through one FleetRouter built per `point`. A
/// check::ProtocolMonitor watches each backing Soc and another watches the
/// fleet's own trace (per-shard serve_isolation shadows).
FleetSoakResult run_fleet_point(const FleetSoakPoint& point, const std::vector<ServeJob>& trace,
                                const FleetSoakConfig& cfg);

/// "mco-fleet-v1" JSON: one row per grid point, aggregate fields only — the
/// bench_fleet_soak golden that determinism tests byte-compare.
std::string fleet_report_json(const std::vector<FleetSoakResult>& results,
                              const SoakTraceConfig& trace_cfg);

}  // namespace mco::serve
