// Deterministic cluster-partition allocator: first-fit over a free bitmap.
//
// The serving layer runs concurrent offloads on disjoint cluster subsets of
// one fabric. This allocator owns the occupancy bitmap: a request for m
// clusters takes the m lowest-indexed clusters that are both free and pass
// the caller's eligibility predicate (the service passes "not quarantined").
// First-fit over a fixed index order makes placement a pure function of the
// request history, so a replayed job trace always produces the same
// partitions — the bit-identical `--jobs` guarantee of the soak harness
// rests on this.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace mco::serve {

class PartitionAllocator {
 public:
  /// Fabrics up to 64 clusters (one machine word of bitmap).
  explicit PartitionAllocator(unsigned num_clusters);

  unsigned num_clusters() const { return num_clusters_; }
  unsigned free_count() const;
  bool is_free(unsigned cluster) const;
  /// Bit i set = cluster i free.
  std::uint64_t free_bitmap() const { return free_; }

  /// First-fit: the `m` lowest-indexed clusters that are free and eligible,
  /// marked busy on success. nullopt (and no state change) when fewer than
  /// `m` clusters qualify.
  std::optional<std::vector<unsigned>> allocate(
      unsigned m, const std::function<bool(unsigned)>& eligible);

  /// Claim one specific cluster (probe offloads target their quarantined
  /// cluster directly). False when it is already busy.
  bool try_acquire(unsigned cluster);

  void release(unsigned cluster);
  void release(const std::vector<unsigned>& clusters);

 private:
  void check_index(unsigned cluster) const;

  unsigned num_clusters_;
  std::uint64_t free_;
};

}  // namespace mco::serve
