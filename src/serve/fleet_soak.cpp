#include "serve/fleet_soak.h"

#include <memory>

#include "check/protocol_monitor.h"
#include "serve/soc_executor.h"
#include "util/strings.h"

namespace mco::serve {

SoakTraceConfig fleet_trace_config(std::size_t num_jobs) {
  SoakTraceConfig tc;
  tc.num_jobs = num_jobs;
  // ~8x the E19 arrival pressure: mean gap ~200 cycles against a mean
  // per-job service time sized for an 8-cluster shard. One shard saturates
  // hard (its bounded queue overflows and deadlines slip); the backlog that
  // forms even at four shards is what batching coalesces and stealing
  // rebalances, so the E22 ablation columns separate.
  tc.gap_min = 50;
  tc.gap_max = 350;
  return tc;
}

std::vector<FleetSoakPoint> fleet_soak_grid() {
  return {
      {"1shard", 1, 4, true},
      {"2shard", 2, 4, true},
      {"4shard", 4, 4, true},
      {"8shard", 8, 4, true},
      {"4shard_nobatch", 4, 1, true},
      {"4shard_nosteal", 4, 4, false},
      {"4shard_neither", 4, 1, false},
  };
}

FleetSoakResult run_fleet_point(const FleetSoakPoint& point, const std::vector<ServeJob>& trace,
                                const FleetSoakConfig& cfg) {
  std::vector<std::unique_ptr<SocExecutor>> execs;
  std::vector<Executor*> exec_ptrs;
  execs.reserve(point.num_shards);
  for (unsigned s = 0; s < point.num_shards; ++s) {
    SocExecutorConfig xc;
    xc.soc = soc::SocConfig::extended(cfg.clusters_per_shard);
    xc.tolerance = cfg.tolerance;
    xc.workload_seed = cfg.workload_seed + s;
    xc.crash_penalty_cycles = cfg.crash_penalty_cycles;
    execs.push_back(std::make_unique<SocExecutor>(xc));
    exec_ptrs.push_back(execs.back().get());
  }

  FleetConfig fc;
  fc.num_shards = point.num_shards;
  fc.clusters_per_shard = cfg.clusters_per_shard;
  fc.model = cfg.model;
  fc.max_queue = cfg.max_queue;
  fc.max_clusters_per_job = cfg.max_clusters_per_job;
  fc.health = cfg.health;
  fc.max_batch = point.max_batch;
  fc.stealing = point.stealing;
  FleetRouter fleet(fc, exec_ptrs);

  sim::StatsRegistry stats;
  fleet.bind_stats(&stats);
  check::ProtocolMonitor fleet_monitor;
  fleet_monitor.attach(fleet.trace());

  FleetSoakResult r;
  r.name = point.name;
  r.shards = point.num_shards;
  r.max_batch = point.max_batch;
  r.stealing = point.stealing;
  r.jobs = trace.size();
  const std::vector<JobOutcome> outcomes = fleet.run(trace);
  fleet_monitor.finish();

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    switch (outcomes[i].verdict) {
      case JobVerdict::kMet:
        ++r.met;
        r.met_elements += trace[i].n;
        break;
      case JobVerdict::kMissed: ++r.missed; break;
      case JobVerdict::kShed: ++r.shed; break;
      case JobVerdict::kFailed: ++r.failed; break;
    }
  }
  r.slo_attainment = r.jobs ? static_cast<double>(r.met) / static_cast<double>(r.jobs) : 0.0;
  r.makespan = fleet.makespan();
  r.goodput =
      r.makespan ? static_cast<double>(r.met_elements) / static_cast<double>(r.makespan) : 0.0;
  r.steals = fleet.steals();
  r.batches = fleet.batches();
  r.batched_jobs = fleet.batched_jobs();
  r.mean_batch =
      r.batches ? static_cast<double>(r.batched_jobs) / static_cast<double>(r.batches) : 0.0;
  for (unsigned s = 0; s < point.num_shards; ++s) {
    r.quarantines += fleet.health(s).quarantines();
    r.crashes += execs[s]->crashes();
    r.soc_violations += execs[s]->total_violations();
  }
  r.serve_violations = fleet_monitor.total_violations();
  return r;
}

std::string fleet_report_json(const std::vector<FleetSoakResult>& results,
                              const SoakTraceConfig& trace_cfg) {
  std::string out = "{\n  \"schema\": \"mco-fleet-v1\",\n";
  out += util::format("  \"jobs\": %zu,\n", trace_cfg.num_jobs);
  out += util::format("  \"seed\": %llu,\n",
                      static_cast<unsigned long long>(trace_cfg.seed));
  out += "  \"points\": [";
  bool first = true;
  for (const FleetSoakResult& r : results) {
    out += first ? "\n" : ",\n";
    first = false;
    out += util::format(
        "    {\"name\": \"%s\", \"shards\": %u, \"max_batch\": %zu, \"stealing\": %s, "
        "\"met\": %llu, \"missed\": %llu, \"shed\": %llu, \"failed\": %llu, "
        "\"slo_attainment\": %.4f, \"met_elements\": %llu, \"goodput\": %.6f, "
        "\"makespan\": %llu, \"steals\": %llu, \"batches\": %llu, \"batched_jobs\": %llu, "
        "\"mean_batch\": %.2f, \"quarantines\": %llu, \"crashes\": %llu, "
        "\"soc_violations\": %llu, \"serve_violations\": %llu}",
        r.name.c_str(), r.shards, r.max_batch, r.stealing ? "true" : "false",
        static_cast<unsigned long long>(r.met), static_cast<unsigned long long>(r.missed),
        static_cast<unsigned long long>(r.shed), static_cast<unsigned long long>(r.failed),
        r.slo_attainment, static_cast<unsigned long long>(r.met_elements), r.goodput,
        static_cast<unsigned long long>(r.makespan), static_cast<unsigned long long>(r.steals),
        static_cast<unsigned long long>(r.batches),
        static_cast<unsigned long long>(r.batched_jobs), r.mean_batch,
        static_cast<unsigned long long>(r.quarantines),
        static_cast<unsigned long long>(r.crashes),
        static_cast<unsigned long long>(r.soc_violations),
        static_cast<unsigned long long>(r.serve_violations));
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mco::serve
