#include "serve/fleet_chaos.h"

#include <memory>

#include "check/protocol_monitor.h"
#include "serve/soc_executor.h"
#include "sim/stats.h"
#include "util/strings.h"

namespace mco::serve {

sim::Cycle time_to_recover(const std::vector<ServeJob>& trace,
                           const std::vector<JobOutcome>& outcomes, sim::Cycle mark,
                           sim::Cycle horizon, double target) {
  if (trace.empty() || horizon < mark) return 0;
  const std::size_t windows =
      static_cast<std::size_t>((horizon - mark) / kRecoverWindowCycles) + 1;
  std::vector<std::uint64_t> jobs(windows, 0);
  std::vector<std::uint64_t> met(windows, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].arrival < mark || trace[i].arrival > horizon) continue;
    const auto w = static_cast<std::size_t>((trace[i].arrival - mark) / kRecoverWindowCycles);
    ++jobs[w];
    if (outcomes[i].verdict == JobVerdict::kMet) ++met[w];
  }
  // The last window that misses the target bounds the recovery point:
  // everything after it sustains the SLO.
  std::size_t last_bad = windows;  // windows = none bad
  for (std::size_t w = 0; w < windows; ++w) {
    if (jobs[w] == 0) continue;
    const double slo = static_cast<double>(met[w]) / static_cast<double>(jobs[w]);
    if (slo < target) last_bad = w;
  }
  if (last_bad == windows) return 0;
  if (last_bad + 1 >= windows) return horizon - mark;  // never recovered
  return static_cast<sim::Cycle>(last_bad + 1) * kRecoverWindowCycles;
}

double p99_slack(const std::vector<ServeJob>& trace, const std::vector<JobOutcome>& outcomes,
                 sim::Cycle mark) {
  sim::Histogram tardiness(4096.0, 64);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].arrival < mark) continue;
    const JobVerdict v = outcomes[i].verdict;
    if (v != JobVerdict::kMet && v != JobVerdict::kMissed) continue;  // never completed
    const sim::Cycle deadline = trace[i].arrival + trace[i].t_max;
    const sim::Cycle end = outcomes[i].end;
    tardiness.sample(end > deadline ? static_cast<double>(end - deadline) : 0.0);
  }
  return -tardiness.p99();
}

std::vector<FleetChaosPoint> fleet_chaos_grid(std::size_t num_jobs) {
  // The E22 trace's mean inter-arrival gap is 200 cycles, so the episode
  // spans roughly 200 * num_jobs cycles. Hits land at ~25% of it — deep in
  // saturation — and heal after a 60k-cycle outage (3x the restart penalty,
  // so the crash-heal probe wave is fully exercised too).
  const auto horizon = static_cast<sim::Cycle>(200 * num_jobs);
  const sim::Cycle hit = horizon / 4;
  const sim::Cycles outage = 60'000;

  std::vector<FleetChaosPoint> grid;
  {
    FleetChaosPoint p;
    p.name = "control";
    p.plan = fault::FleetFaultPlan(4);
    grid.push_back(std::move(p));
  }
  {
    // Headline: one of four shards crash-stops mid-saturation; its in-flight
    // and queued jobs fail over to the three survivors.
    FleetChaosPoint p;
    p.name = "crash_1of4";
    p.plan = fault::FleetFaultPlan(4);
    p.plan.add_crash(hit, 1);
    p.plan.add_heal(hit + outage, 1);
    p.mark = hit;
    grid.push_back(std::move(p));
  }
  {
    // The exactly-once hazard: the partitioned shard keeps retiring jobs the
    // router already failed over; the heal replays them as suppressed stale
    // completions.
    FleetChaosPoint p;
    p.name = "partition_1of4";
    p.plan = fault::FleetFaultPlan(4);
    p.plan.add_partition(hit, 2);
    p.plan.add_heal(hit + outage, 2);
    p.mark = hit;
    grid.push_back(std::move(p));
  }
  {
    // Staggered double crash: half the fleet is gone at the overlap.
    FleetChaosPoint p;
    p.name = "crash_2of4";
    p.plan = fault::FleetFaultPlan(4);
    p.plan.add_crash(hit, 1);
    p.plan.add_crash(hit + outage / 2, 3);
    p.plan.add_heal(hit + outage, 1);
    p.plan.add_heal(hit + outage + outage / 2, 3);
    p.mark = hit;
    grid.push_back(std::move(p));
  }
  {
    // Budget ablation: with failover_budget = 0 every displaced job is lost
    // (verdict failed, reason shard_lost) instead of re-dispatched.
    FleetChaosPoint p;
    p.name = "crash_budget0";
    p.failover_budget = 0;
    p.plan = fault::FleetFaultPlan(4);
    p.plan.add_crash(hit, 1);
    p.plan.add_heal(hit + outage, 1);
    p.mark = hit;
    grid.push_back(std::move(p));
  }
  {
    // Seeded storm: three random crash/partition arcs over the episode with
    // one shard always surviving (fault/fleet_fault.h's generator).
    FleetChaosPoint p;
    p.name = "storm";
    fault::FleetFaultPlanConfig pc;
    pc.num_shards = 4;
    pc.arcs = 3;
    pc.horizon = horizon;
    p.plan = fault::random_fleet_fault_plan(pc);
    p.mark = p.plan.events().empty() ? 0 : p.plan.events().front().at;
    grid.push_back(std::move(p));
  }
  return grid;
}

FleetChaosResult run_fleet_chaos_point(const FleetChaosPoint& point,
                                       const std::vector<ServeJob>& trace,
                                       const FleetSoakConfig& cfg) {
  std::vector<std::unique_ptr<SocExecutor>> execs;
  std::vector<Executor*> exec_ptrs;
  execs.reserve(point.num_shards);
  for (unsigned s = 0; s < point.num_shards; ++s) {
    SocExecutorConfig xc;
    xc.soc = soc::SocConfig::extended(cfg.clusters_per_shard);
    xc.tolerance = cfg.tolerance;
    xc.workload_seed = cfg.workload_seed + s;
    xc.crash_penalty_cycles = cfg.crash_penalty_cycles;
    execs.push_back(std::make_unique<SocExecutor>(xc));
    exec_ptrs.push_back(execs.back().get());
  }

  FleetConfig fc;
  fc.num_shards = point.num_shards;
  fc.clusters_per_shard = cfg.clusters_per_shard;
  fc.model = cfg.model;
  fc.max_queue = cfg.max_queue;
  fc.max_clusters_per_job = cfg.max_clusters_per_job;
  fc.health = cfg.health;
  fc.failover_budget = point.failover_budget;
  FleetRouter fleet(fc, exec_ptrs);

  sim::StatsRegistry stats;
  fleet.bind_stats(&stats);
  check::ProtocolMonitor fleet_monitor;
  fleet_monitor.attach(fleet.trace());

  fleet.schedule_plan(point.plan);

  FleetChaosResult r;
  r.name = point.name;
  r.shards = point.num_shards;
  r.failover_budget = point.failover_budget;
  r.jobs = trace.size();
  const std::vector<JobOutcome> outcomes = fleet.run(trace);
  fleet_monitor.finish();

  std::uint64_t jobs_after = 0;
  std::uint64_t met_after = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    switch (outcomes[i].verdict) {
      case JobVerdict::kMet: ++r.met; break;
      case JobVerdict::kMissed: ++r.missed; break;
      case JobVerdict::kShed: ++r.shed; break;
      case JobVerdict::kFailed: ++r.failed; break;
    }
    if (trace[i].arrival >= point.mark) {
      ++jobs_after;
      if (outcomes[i].verdict == JobVerdict::kMet) ++met_after;
    }
  }
  r.slo_attainment = r.jobs ? static_cast<double>(r.met) / static_cast<double>(r.jobs) : 0.0;
  r.slo_after_mark =
      jobs_after ? static_cast<double>(met_after) / static_cast<double>(jobs_after) : 0.0;
  r.makespan = fleet.makespan();
  r.shard_fails = fleet.shard_fails();
  r.shard_partitions = fleet.shard_partitions();
  r.heals = fleet.heals();
  r.failover_redispatches = fleet.failover_redispatches();
  r.failover_requeues = fleet.failover_requeues();
  r.failover_lost = fleet.failover_lost();
  r.stale_completions = fleet.stale_completions();
  const sim::Cycle horizon = trace.empty() ? 0 : trace.back().arrival;
  r.time_to_recover = time_to_recover(trace, outcomes, point.mark, horizon);
  r.p99_slack = p99_slack(trace, outcomes, point.mark);
  for (unsigned s = 0; s < point.num_shards; ++s) {
    r.soc_violations += execs[s]->total_violations();
  }
  r.serve_violations = fleet_monitor.total_violations();

  // Mirror the recovery verdicts into the registry so the observability
  // inventory carries them alongside the fleet.failover_* counters.
  std::uint64_t arcs = 0;
  for (const fault::FleetFaultEvent& ev : point.plan.events()) {
    if (ev.kind != fault::FleetFaultKind::kHeal) ++arcs;
  }
  for (std::uint64_t a = 0; a < arcs; ++a) stats.counter("recovery.arcs").inc();
  stats.histogram("recovery.time_to_recover_cycles")
      .sample(static_cast<double>(r.time_to_recover));
  return r;
}

std::string chaos_report_json(const std::vector<FleetChaosResult>& results,
                              const SoakTraceConfig& trace_cfg) {
  std::string out = "{\n  \"schema\": \"mco-chaos-v1\",\n";
  out += util::format("  \"jobs\": %zu,\n", trace_cfg.num_jobs);
  out += util::format("  \"seed\": %llu,\n",
                      static_cast<unsigned long long>(trace_cfg.seed));
  out += "  \"points\": [";
  bool first = true;
  for (const FleetChaosResult& r : results) {
    out += first ? "\n" : ",\n";
    first = false;
    out += util::format(
        "    {\"name\": \"%s\", \"shards\": %u, \"failover_budget\": %u, "
        "\"met\": %llu, \"missed\": %llu, \"shed\": %llu, \"failed\": %llu, "
        "\"slo_attainment\": %.4f, \"slo_after_mark\": %.4f, \"makespan\": %llu, "
        "\"shard_fails\": %llu, \"shard_partitions\": %llu, \"heals\": %llu, "
        "\"failover_redispatches\": %llu, \"failover_requeues\": %llu, "
        "\"failover_lost\": %llu, \"stale_completions\": %llu, "
        "\"time_to_recover\": %llu, \"p99_slack\": %.1f, "
        "\"soc_violations\": %llu, \"serve_violations\": %llu}",
        r.name.c_str(), r.shards, r.failover_budget, static_cast<unsigned long long>(r.met),
        static_cast<unsigned long long>(r.missed), static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.failed), r.slo_attainment, r.slo_after_mark,
        static_cast<unsigned long long>(r.makespan),
        static_cast<unsigned long long>(r.shard_fails),
        static_cast<unsigned long long>(r.shard_partitions),
        static_cast<unsigned long long>(r.heals),
        static_cast<unsigned long long>(r.failover_redispatches),
        static_cast<unsigned long long>(r.failover_requeues),
        static_cast<unsigned long long>(r.failover_lost),
        static_cast<unsigned long long>(r.stale_completions),
        static_cast<unsigned long long>(r.time_to_recover), r.p99_slack,
        static_cast<unsigned long long>(r.soc_violations),
        static_cast<unsigned long long>(r.serve_violations));
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mco::serve
