// E23 fleet chaos: shard crash/partition arcs against a saturated fleet,
// with exactly-once failover accounting and time-to-recover verdicts.
//
// Every grid point replays the same deterministic high-pressure trace
// (fleet_soak.h's E22 generator) against a 4-shard fleet, then kills or
// partitions shards mid-saturation per a scripted fault::FleetFaultPlan.
// The row aggregates prove the tentpole properties: no job is lost or
// double-executed across a failover (the serve_exactly_once monitor
// invariant stays clean), and SLO attainment recovers to the target within
// a pinned time_to_recover after the hit. Point-level parallelism
// (exp::SweepRunner::map in bench_fleet_chaos) writes into index-addressed
// slots; the "mco-chaos-v1" report is byte-identical at --jobs 1/4/16.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fleet_fault.h"
#include "serve/fleet.h"
#include "serve/fleet_soak.h"

namespace mco::serve {

/// Recovery judgement parameters, shared by the scenario runner's
/// `time_to_recover` verdict and the E23 chaos rows: arrivals are bucketed
/// into fixed windows and the fleet counts as recovered from the first
/// window after which every non-empty window meets the SLO target.
inline constexpr sim::Cycles kRecoverWindowCycles = 10'000;
inline constexpr double kRecoverTarget = 0.90;

/// Cycles from `mark` until SLO attainment is *sustained* at or above
/// `target`: arrivals at or after `mark` are bucketed into
/// kRecoverWindowCycles windows; the result is the start offset of the
/// earliest window such that every later non-empty window has
/// met/jobs >= target. 0 when the fleet never dipped after the mark;
/// horizon - mark when it never recovers.
sim::Cycle time_to_recover(const std::vector<ServeJob>& trace,
                           const std::vector<JobOutcome>& outcomes, sim::Cycle mark,
                           sim::Cycle horizon, double target = kRecoverTarget);

/// Negated 99th-percentile tardiness (cycles past the deadline, 0 when on
/// time) over jobs arriving at or after `mark` that actually completed
/// (met or missed). >= 0 means at most 1% of completions were tardy.
double p99_slack(const std::vector<ServeJob>& trace, const std::vector<JobOutcome>& outcomes,
                 sim::Cycle mark);

/// One row of the E23 grid: a fleet shape, a per-job failover budget and a
/// scripted fault arc. `mark` is the first hit's cycle — recovery metrics
/// are measured from it (0 for the fault-free control).
struct FleetChaosPoint {
  std::string name;
  unsigned num_shards = 4;
  unsigned failover_budget = 1;
  fault::FleetFaultPlan plan{4};
  sim::Cycle mark = 0;
};

/// The E23 grid, scripted against the horizon implied by `num_jobs` E22
/// arrivals: fault-free control, the headline 1-of-4 crash at saturation,
/// a router partition with stale-completion replay, a staggered double
/// crash, a zero-budget crash (jobs on the dead shard are lost), and a
/// seeded random storm (fault::random_fleet_fault_plan).
std::vector<FleetChaosPoint> fleet_chaos_grid(std::size_t num_jobs);

/// Aggregates of one chaos point.
struct FleetChaosResult {
  std::string name;
  unsigned shards = 0;
  unsigned failover_budget = 0;
  std::size_t jobs = 0;
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  double slo_attainment = 0.0;  ///< met / jobs, whole episode
  double slo_after_mark = 0.0;  ///< met / jobs over arrivals >= mark
  sim::Cycle makespan = 0;
  std::uint64_t shard_fails = 0;
  std::uint64_t shard_partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t failover_redispatches = 0;
  std::uint64_t failover_requeues = 0;
  std::uint64_t failover_lost = 0;
  std::uint64_t stale_completions = 0;
  sim::Cycle time_to_recover = 0;  ///< cycles from mark (see above)
  double p99_slack = 0.0;          ///< cycles; >= 0 means <= 1% tardy
  std::uint64_t soc_violations = 0;
  std::uint64_t serve_violations = 0;  ///< incl. serve_exactly_once
};

/// Serve `trace` through one FleetRouter built per `point`, with the
/// point's fault plan armed as scheduled operators. A check::ProtocolMonitor
/// watches the fleet trace (serve_isolation + serve_exactly_once); the
/// recovery.* registry metrics are sampled from the computed verdicts.
FleetChaosResult run_fleet_chaos_point(const FleetChaosPoint& point,
                                       const std::vector<ServeJob>& trace,
                                       const FleetSoakConfig& cfg);

/// "mco-chaos-v1" JSON: one row per grid point, aggregate fields only — the
/// bench_fleet_chaos golden that determinism tests byte-compare.
std::string chaos_report_json(const std::vector<FleetChaosResult>& results,
                              const SoakTraceConfig& trace_cfg);

}  // namespace mco::serve
