#include "cluster/worker_core.h"

#include <stdexcept>

namespace mco::cluster {

WorkerCore::WorkerCore(sim::Simulator& sim, std::string name, WorkerConfig cfg, Component* parent)
    : Component(sim, std::move(name), parent), cfg_(cfg) {}

void WorkerCore::run(sim::Cycles compute_cycles, std::function<void()> done) {
  if (busy_) throw std::logic_error(path() + ": run while busy");
  busy_ = true;
  const sim::Cycles total = cfg_.setup_cycles + compute_cycles;
  busy_cycles_ += total;
  ++chunks_run_;
  defer(total, [this, cb = std::move(done)] {
    busy_ = false;
    if (cb) cb();
  });
}

}  // namespace mco::cluster
