// Accelerator cluster: 8 worker cores + 1 DMA core + TCDM + mailbox.
//
// The cluster-side half of an offload. On a mailbox doorbell the cluster
// wakes from WFI, parses the dispatch payload, plans its chunk, DMAs inputs
// into TCDM, computes (workers in parallel, then a hardware barrier),
// DMAs results out, and signals completion — either by a credit write to the
// dedicated sync unit (extended design) or by an atomic increment on the
// shared-memory counter the host polls (baseline design).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/worker_core.h"
#include "kernels/registry.h"
#include "mem/dma_engine.h"
#include "mem/tcdm.h"
#include "noc/interconnect.h"
#include "sim/component.h"
#include "sync/mailbox.h"
#include "sync/team_barrier.h"

namespace mco::fault {
class FaultInjector;
}

namespace mco::cluster {

/// How a cluster signals job completion to the host.
enum class CompletionPath {
  kHardwareCredit,  ///< credit write to the dedicated sync unit (extension)
  kSoftwareAmo,     ///< atomic add on a shared-memory counter (baseline)
};

struct ClusterConfig {
  unsigned num_workers = 8;
  /// Doorbell → runtime entry (WFI exit, vector jump, icache-resident stub).
  sim::Cycles wakeup_latency = 20;
  /// Mailbox FIFO read per payload word.
  sim::Cycles parse_cycles_per_word = 2;
  /// Chunk planning (bounds computation, DMA descriptor preparation).
  sim::Cycles plan_cycles = 12;
  /// Broadcasting the go-signal to the worker cores.
  sim::Cycles worker_wake_cycles = 4;
  /// Hardware barrier propagation after the last worker arrives.
  sim::Cycles barrier_latency = 9;
  /// Issuing the completion store (credit write or AMO).
  sim::Cycles completion_issue_cycles = 4;
  /// Double-buffer tiled jobs: prefetch tile k+1's inputs (into the other
  /// half of TCDM) while tile k computes. Off by default — the paper's
  /// runtime is single-buffered; enable to study the optimization.
  bool dma_double_buffer = false;
  /// Execute kernels with microcode on the cycle-accurate worker-core ISS
  /// instead of the calibrated rate (kernels without microcode fall back to
  /// the rate; see iss_fallbacks()). Off by default: the calibrated rate is
  /// what reproduces the paper's Eq. (1).
  bool use_iss_compute = false;
  kernels::Kernel::IssVariant iss_variant = kernels::Kernel::IssVariant::kSsrFrep;

  WorkerConfig worker;
  mem::TcdmConfig tcdm;
  mem::DmaConfig dma;
  CompletionPath completion = CompletionPath::kHardwareCredit;
};

/// Per-job cluster-side timestamps (for the phase-breakdown experiment).
struct ClusterJobTiming {
  sim::Cycle doorbell = 0;
  sim::Cycle team_arrive = 0;    ///< after wakeup+parse+plan, at the barrier
  sim::Cycle job_start = 0;      ///< team released, data movement begins
  sim::Cycle dma_in_done = 0;
  sim::Cycle compute_done = 0;   ///< after barrier
  sim::Cycle dma_out_done = 0;
  sim::Cycle signal_sent = 0;
};

class Cluster : public sim::Component {
 public:
  Cluster(sim::Simulator& sim, std::string name, ClusterConfig cfg, unsigned cluster_id,
          const kernels::KernelRegistry& registry, mem::HbmController& hbm, unsigned hbm_port,
          mem::MainMemory& main_mem, const mem::AddressMap& map, noc::Interconnect& noc,
          sync::TeamBarrier& team_barrier, Component* parent = nullptr);

  const ClusterConfig& config() const { return cfg_; }
  unsigned cluster_id() const { return cluster_id_; }

  /// Wire the fault injector (nullptr = fault-free); forwarded to the DMA
  /// engine. Doorbell wakeups then consult it for hang/straggler faults.
  void set_fault_injector(fault::FaultInjector* fi);

  sync::Mailbox& mailbox() { return mailbox_; }
  mem::Tcdm& tcdm() { return tcdm_; }
  mem::DmaEngine& dma() { return dma_; }
  const WorkerCore& worker(unsigned i) const { return *workers_.at(i); }

  bool busy() const { return busy_; }
  std::uint64_t jobs_executed() const { return jobs_executed_; }
  std::uint64_t items_processed() const { return items_processed_; }
  /// Tiles the last job's chunk was split into (1 = fit TCDM directly).
  std::uint64_t last_job_tiles() const { return last_job_tiles_; }
  /// Jobs that requested ISS compute but ran on the calibrated rate because
  /// the kernel has no microcode.
  std::uint64_t iss_fallbacks() const { return iss_fallbacks_; }

  /// Timing of the most recently completed job (nullopt before the first).
  const std::optional<ClusterJobTiming>& last_timing() const { return last_timing_; }

  // ---- host recovery surface -----------------------------------------------
  // The probe port the watchdog reads over the NoC (status registers any real
  // runtime exposes) and the kill port it writes to retire a stale dispatch.

  /// A dispatch is sitting in the mailbox, not yet consumed.
  bool has_pending_dispatch() const { return !mailbox_.empty(); }
  /// job_id of the most recently *completed* job (0 before the first).
  std::uint64_t last_completed_job_id() const { return last_completed_job_id_; }
  /// Discard queued dispatches (host kill before re-issuing). Only meaningful
  /// while the cluster is idle — the host must not kill a running cluster.
  void abort_pending();

 private:
  void on_doorbell();
  void begin_job();
  void parse_and_plan();
  void start_dma_in();
  void ensure_tile_in_issued(std::size_t tile);
  void maybe_resume(std::size_t tile);
  void after_tile_in();
  std::size_t tile_tcdm_base(std::size_t tile) const;
  void start_compute();
  void finish_compute();
  void start_dma_out();
  void next_tile_or_signal();
  void signal_completion();
  void job_done();

  ClusterConfig cfg_;
  unsigned cluster_id_;
  fault::FaultInjector* fault_ = nullptr;
  const kernels::KernelRegistry& registry_;
  noc::Interconnect& noc_;
  sync::TeamBarrier& team_barrier_;

  mem::Tcdm tcdm_;
  mem::DmaEngine dma_;
  sync::Mailbox mailbox_;
  std::vector<std::unique_ptr<WorkerCore>> workers_;

  // In-flight job state.
  bool busy_ = false;
  kernels::JobArgs args_;
  const kernels::Kernel* kernel_ = nullptr;
  unsigned job_clusters_ = 0;
  unsigned job_rank_ = 0;  ///< this cluster's rank within the dispatch window
  bool tiled_ = false;                       ///< chunk split across TCDM tiles
  std::vector<kernels::ClusterPlan> tiles_;  ///< one plan per tile
  std::vector<kernels::ChunkRange> tile_ranges_;
  std::vector<bool> tile_in_done_;           ///< inputs resident in TCDM
  std::vector<std::size_t> tile_in_pending_; ///< outstanding DMA-in segments
  std::size_t prefetched_upto_ = 0;          ///< tiles whose DMA-in was issued
  static constexpr std::size_t kNoTile = static_cast<std::size_t>(-1);
  std::size_t waiting_tile_ = kNoTile;       ///< tile the pipeline stalls on
  std::size_t current_tile_ = 0;
  std::uint64_t job_items_ = 0;
  std::size_t dma_pending_ = 0;
  unsigned workers_pending_ = 0;
  ClusterJobTiming timing_;

  std::uint64_t jobs_executed_ = 0;
  std::uint64_t items_processed_ = 0;
  std::uint64_t last_completed_job_id_ = 0;
  std::uint64_t last_job_tiles_ = 0;
  std::uint64_t iss_fallbacks_ = 0;
  bool iss_executed_tile_ = false;  ///< this tile's math already done on the ISS
  std::optional<ClusterJobTiming> last_timing_;
};

}  // namespace mco::cluster
