#include "cluster/cluster.h"

#include <stdexcept>

#include "fault/fault_injector.h"
#include "util/math.h"
#include "util/strings.h"

namespace mco::cluster {

Cluster::Cluster(sim::Simulator& sim, std::string name, ClusterConfig cfg, unsigned cluster_id,
                 const kernels::KernelRegistry& registry, mem::HbmController& hbm,
                 unsigned hbm_port, mem::MainMemory& main_mem, const mem::AddressMap& map,
                 noc::Interconnect& noc, sync::TeamBarrier& team_barrier, Component* parent)
    : Component(sim, std::move(name), parent),
      cfg_(cfg),
      cluster_id_(cluster_id),
      registry_(registry),
      noc_(noc),
      team_barrier_(team_barrier),
      tcdm_(sim, "tcdm", cfg.tcdm, this),
      dma_(sim, "dma", cfg.dma, hbm, hbm_port, main_mem, tcdm_, map, this),
      mailbox_(sim, "mailbox", this) {
  if (cfg_.num_workers == 0) throw std::invalid_argument(path() + ": zero workers");
  workers_.reserve(cfg_.num_workers);
  for (unsigned i = 0; i < cfg_.num_workers; ++i) {
    workers_.push_back(
        std::make_unique<WorkerCore>(sim, util::format("core%u", i), cfg_.worker, this));
  }
  mailbox_.set_doorbell([this] { on_doorbell(); });
}

void Cluster::set_fault_injector(fault::FaultInjector* fi) {
  fault_ = fi;
  dma_.set_fault_injector(fi, cluster_id_);
}

void Cluster::on_doorbell() {
  // One job at a time; further dispatches wait in the mailbox and are
  // drained when the current job finishes.
  if (busy_) return;
  if (fault_ && fault_->enabled()) {
    const auto f = fault_->on_wakeup(cluster_id_);
    if (f.hang) {
      // The cluster never exits WFI: the dispatch sits in the mailbox and the
      // cluster stays idle until the host's watchdog intervenes.
      return;
    }
    if (f.extra_delay > 0) {
      // Straggler: the cluster owns the dispatch immediately (so a host probe
      // reads it as running, not lost) but takes extra cycles to get going.
      busy_ = true;
      defer(f.extra_delay, [this] { begin_job(); });
      return;
    }
  }
  begin_job();
}

void Cluster::begin_job() {
  busy_ = true;
  timing_ = ClusterJobTiming{};
  timing_.doorbell = now();
  sim().trace().record(now(), path(), "wakeup");
  sim().trace().begin_span(now(), path(), "job");
  sim().trace().begin_span(now(), path(), "wakeup_parse");
  defer(cfg_.wakeup_latency, [this] { parse_and_plan(); });
}

void Cluster::parse_and_plan() {
  if (mailbox_.empty()) {
    // The host killed the dispatch between the doorbell and the runtime
    // reaching the FIFO (recovery race); go back to sleep.
    busy_ = false;
    sim().trace().end_span(now(), path());  // wakeup_parse
    sim().trace().end_span(now(), path());  // job
    sim().logger().log(now(), sim::LogLevel::kWarn, path(), "dispatch vanished before parse");
    return;
  }
  const noc::DispatchMessage msg = mailbox_.pop();
  const kernels::PayloadHeader header = kernels::parse_header(msg);
  kernel_ = &registry_.by_id(header.kernel_id);
  args_ = kernel_->unmarshal(header, kernels::payload_args(msg));
  job_clusters_ = header.num_clusters;
  if (cluster_id_ < header.first_cluster ||
      cluster_id_ - header.first_cluster >= job_clusters_) {
    throw std::logic_error(util::format(
        "%s: dispatched to cluster %u but job window is [%u, %u)", path().c_str(), cluster_id_,
        header.first_cluster, header.first_cluster + job_clusters_));
  }
  job_rank_ = cluster_id_ - header.first_cluster;
  // Build the tile schedule: one plan if the chunk fits TCDM, otherwise the
  // chunk is processed in TCDM-sized tiles (DMA-in, compute, DMA-out per
  // tile) for kernels that support arbitrary item ranges.
  tiles_.clear();
  tile_ranges_.clear();
  current_tile_ = 0;
  const kernels::ClusterPlan full = kernel_->plan_cluster(args_, job_rank_, job_clusters_);
  job_items_ = full.items;
  if (full.tcdm_footprint() <= tcdm_.size()) {
    tiled_ = false;
    const kernels::ChunkRange chunk = kernels::split_chunk(args_.n, job_rank_, job_clusters_);
    tiles_.push_back(full);
    tile_ranges_.push_back(chunk);
  } else if (kernel_->supports_tiling()) {
    tiled_ = true;
    const kernels::ChunkRange chunk = kernels::split_chunk(args_.n, job_rank_, job_clusters_);
    // Double buffering ping-pongs tiles between the two halves of TCDM, so
    // each tile only gets half the budget.
    const std::size_t budget = cfg_.dma_double_buffer ? tcdm_.size() / 2 : tcdm_.size();
    std::uint64_t num_tiles = util::ceil_div<std::uint64_t>(full.tcdm_footprint(), budget);
    for (bool fits = false; !fits; ++num_tiles) {
      tiles_.clear();
      tile_ranges_.clear();
      fits = true;
      for (std::uint64_t t = 0; t < num_tiles && fits; ++t) {
        const kernels::ChunkRange sub =
            kernels::split_chunk(chunk.count, static_cast<unsigned>(t),
                                 static_cast<unsigned>(num_tiles));
        const kernels::ChunkRange range{chunk.begin + sub.begin, sub.count};
        kernels::ClusterPlan plan = kernel_->plan_range(args_, range.begin, range.count);
        // Ceil splitting can leave the first tile one element over; retry
        // with one more tile in that (rare) case.
        fits = plan.tcdm_footprint() <= budget;
        if (cfg_.dma_double_buffer && (t % 2) == 1) {
          for (auto& seg : plan.dma_in) seg.tcdm_off += budget;
          for (auto& seg : plan.dma_out) seg.tcdm_off += budget;
        }
        tiles_.push_back(std::move(plan));
        tile_ranges_.push_back(range);
      }
    }
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "tiled",
                util::format("tiles=%llu", static_cast<unsigned long long>(num_tiles)));
  } else {
    throw std::runtime_error(util::format(
        "%s: job '%s' n=%llu needs %zu B of TCDM but only %zu B available, and the kernel "
        "does not support tiling; use more clusters",
        path().c_str(), kernel_->name().c_str(), static_cast<unsigned long long>(args_.n),
        full.tcdm_footprint(), tcdm_.size()));
  }
  last_job_tiles_ = tiles_.size();
  tile_in_done_.assign(tiles_.size(), false);
  tile_in_pending_.assign(tiles_.size(), 0);
  prefetched_upto_ = 0;
  waiting_tile_ = kNoTile;

  const sim::Cycles parse_cost =
      cfg_.parse_cycles_per_word * msg.size_words() + cfg_.plan_cycles;
  defer(parse_cost, [this] {
    // SPMD team start: the whole team begins together, so the last cluster
    // to be dispatched gates everyone (what makes sequential dispatch fully
    // serial with execution).
    timing_.team_arrive = now();
    sim().trace().end_span(now(), path());  // wakeup_parse
    sim().trace().begin_span(now(), path(), "team_wait");
    team_barrier_.arrive(job_clusters_, [this] {
      timing_.job_start = now();
      sim().trace().end_span(now(), path());  // team_wait
      start_dma_in();
    });
  });
}

std::size_t Cluster::tile_tcdm_base(std::size_t tile) const {
  if (!tiled_ || !cfg_.dma_double_buffer) return 0;
  return (tile % 2) * (tcdm_.size() / 2);
}

void Cluster::ensure_tile_in_issued(std::size_t tile) {
  // Issue DMA-ins strictly in tile order up to and including `tile`.
  while (prefetched_upto_ <= tile && prefetched_upto_ < tiles_.size()) {
    const std::size_t k = prefetched_upto_++;
    const kernels::ClusterPlan& plan = tiles_[k];
    if (plan.dma_in.empty()) {
      tile_in_done_[k] = true;
      maybe_resume(k);
      continue;
    }
    tile_in_pending_[k] = plan.dma_in.size();
    for (const auto& seg : plan.dma_in) {
      dma_.transfer_in(seg.hbm, seg.tcdm_off, seg.bytes, [this, k] {
        if (--tile_in_pending_[k] == 0) {
          tile_in_done_[k] = true;
          if (sim::TraceSink& tr = sim().trace(); tr.armed())
            tr.record(now(), path(), "dma_in_done", util::format("tile=%zu", k));
          maybe_resume(k);
        }
      });
    }
  }
}

void Cluster::maybe_resume(std::size_t tile) {
  if (waiting_tile_ == tile) {
    waiting_tile_ = kNoTile;
    after_tile_in();
  }
}

void Cluster::start_dma_in() {
  // The span measures the control-flow stall waiting for this tile's inputs,
  // not the DMA engine's occupancy — with double buffering the prefetch for
  // tile k+1 overlaps tile k's compute, which would break span nesting.
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.begin_span(now(), path(), "dma_in", util::format("tile=%zu", current_tile_));
  ensure_tile_in_issued(current_tile_);
  if (tile_in_done_[current_tile_]) {
    after_tile_in();
  } else {
    waiting_tile_ = current_tile_;
  }
}

void Cluster::after_tile_in() {
  timing_.dma_in_done = now();
  sim().trace().end_span(now(), path());  // dma_in
  // Double buffering: prefetch the next tile's inputs into the other half
  // of TCDM while this tile computes.
  if (tiled_ && cfg_.dma_double_buffer && current_tile_ + 1 < tiles_.size()) {
    ensure_tile_in_issued(current_tile_ + 1);
  }
  start_compute();
}

void Cluster::start_compute() {
  // Split this tile's items across the workers; the slowest worker (ceil
  // share) bounds the phase. Workers with zero items still run setup.
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.begin_span(now(), path(), "compute", util::format("tile=%zu", current_tile_));
  workers_pending_ = cfg_.num_workers;
  const bool use_iss = cfg_.use_iss_compute && kernel_->supports_iss();
  if (cfg_.use_iss_compute && !use_iss && current_tile_ == 0) ++iss_fallbacks_;
  iss_executed_tile_ = use_iss;
  defer(cfg_.worker_wake_cycles, [this, use_iss] {
    const std::uint64_t items = tiles_[current_tile_].items;
    const std::size_t base = tile_tcdm_base(current_tile_);
    for (unsigned w = 0; w < cfg_.num_workers; ++w) {
      const kernels::ChunkRange share = kernels::split_chunk(items, w, cfg_.num_workers);
      // ISS mode measures the worker's cycles by actually executing its
      // microcoded inner loop on the TCDM (functional + timing in one run);
      // rate mode charges the calibrated cycles and the arithmetic happens
      // at the cluster barrier instead.
      const sim::Cycles cycles =
          use_iss ? kernel_->run_on_iss(tcdm_, args_, base, items, share.begin, share.count,
                                        cfg_.iss_variant)
                  : kernel_->worker_cycles(args_, share.count);
      workers_[w]->run(cycles, [this] {
        if (--workers_pending_ == 0) finish_compute();
      });
    }
  });
}

void Cluster::finish_compute() {
  defer(cfg_.barrier_latency, [this] {
    // Functional execution happens "at the barrier": all DMA-in data is in
    // TCDM, and results must be there before DMA-out copies them back.
    // (Unless the ISS already performed it while timing the workers.)
    if (iss_executed_tile_) {
    } else if (tiled_) {
      const kernels::ChunkRange& range = tile_ranges_[current_tile_];
      kernel_->execute_range(tcdm_, args_, range.begin, range.count,
                             tile_tcdm_base(current_tile_));
    } else {
      kernel_->execute_cluster(tcdm_, args_, job_rank_, job_clusters_);
    }
    timing_.compute_done = now();
    sim().trace().record(now(), path(), "compute_done");
    sim().trace().end_span(now(), path());  // compute
    start_dma_out();
  });
}

void Cluster::start_dma_out() {
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.begin_span(now(), path(), "dma_out", util::format("tile=%zu", current_tile_));
  const kernels::ClusterPlan& plan = tiles_[current_tile_];
  if (plan.dma_out.empty()) {
    timing_.dma_out_done = now();
    sim().trace().end_span(now(), path());  // dma_out (zero-length: nothing to copy)
    next_tile_or_signal();
    return;
  }
  dma_pending_ = plan.dma_out.size();
  for (const auto& seg : plan.dma_out) {
    dma_.transfer_out(seg.tcdm_off, seg.hbm, seg.bytes, [this] {
      if (--dma_pending_ == 0) {
        timing_.dma_out_done = now();
        sim().trace().record(now(), path(), "dma_out_done");
        sim().trace().end_span(now(), path());  // dma_out
        next_tile_or_signal();
      }
    });
  }
}

void Cluster::next_tile_or_signal() {
  if (current_tile_ + 1 < tiles_.size()) {
    ++current_tile_;
    start_dma_in();
    return;
  }
  signal_completion();
}

void Cluster::signal_completion() {
  sim().trace().begin_span(now(), path(), "notify");
  defer(cfg_.completion_issue_cycles, [this] {
    timing_.signal_sent = now();
    sim().trace().record(now(), path(), "signal",
                         cfg_.completion == CompletionPath::kHardwareCredit ? "credit" : "amo");
    if (cfg_.completion == CompletionPath::kHardwareCredit) {
      noc_.send_credit(cluster_id_);
    } else {
      noc_.send_amo(cluster_id_);
    }
    sim().trace().end_span(now(), path());  // notify
    job_done();
  });
}

void Cluster::job_done() {
  ++jobs_executed_;
  items_processed_ += job_items_;
  last_completed_job_id_ = args_.job_id;
  last_timing_ = timing_;
  sim().trace().end_span(now(), path());  // job
  busy_ = false;
  kernel_ = nullptr;
  // Drain any dispatch that arrived while busy — through on_doorbell so a
  // queued job re-rolls the wakeup fault, like a fresh doorbell would.
  if (!mailbox_.empty()) on_doorbell();
}

void Cluster::abort_pending() {
  if (busy_)
    throw std::logic_error(path() + ": abort_pending on a running cluster");
  mailbox_.clear();
}

}  // namespace mco::cluster
